// Three-way oracle: for a broad instruction sample, the text assembler must
// reproduce the exact machine word from the disassembler's rendering of it:
//   assemble_text(disassemble(decode(word))) == word.
// This closes the loop between three independently-written components.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/decoder.h"
#include "isa/disasm.h"
#include "isa/text_asm.h"

namespace coyote::isa {
namespace {

std::vector<std::uint32_t> sample_words() {
  Assembler as(0x1000);
  // Scalar ALU.
  as.add(a0, a1, a2);
  as.sub(t0, t1, t2);
  as.sll(s2, s3, s4);
  as.sltu(a5, a6, a7);
  as.xor_(s5, s6, s7);
  as.or_(t3, t4, t5);
  as.and_(s8, s9, s10);
  as.addi(a0, a0, -2048);
  as.addi(a1, a1, 2047);
  as.slti(a2, a3, -1);
  as.sltiu(a4, a5, 100);
  as.xori(t0, t1, 0x7F);
  as.ori(t2, t3, 0x55);
  as.andi(s0, s1, -16);
  // M extension.
  as.mul(a0, a1, a2);
  as.mulh(a3, a4, a5);
  as.mulhu(t0, t1, t2);
  as.mulhsu(s2, s3, s4);
  as.div(a0, a1, a2);
  as.divu(a3, a4, a5);
  as.rem(t0, t1, t2);
  as.remu(s2, s3, s4);
  as.mulw(a0, a1, a2);
  as.divw(a3, a4, a5);
  as.remw(t0, t1, t2);
  // Loads/stores (disassembled as "op rd, imm(rs1)").
  as.lb(a0, -1, sp);
  as.lh(a1, 2, sp);
  as.lw(a2, 4, gp);
  as.ld(a3, 8, tp);
  as.lbu(a4, 1, s0);
  as.lhu(a5, 2, s1);
  as.lwu(a6, 4, s2);
  as.sb(a0, -1, sp);
  as.sh(a1, 2, sp);
  as.sw(a2, 4, gp);
  as.sd(a3, 8, tp);
  as.fld(fa0, 16, a0);
  as.fsd(fa1, -8, a1);
  // System.
  as.ecall();
  as.ebreak();
  return as.finish();
}

TEST(RoundTripOracle, AssembleDisassembleDecode) {
  for (const std::uint32_t word : sample_words()) {
    const DecodedInst inst = decode(word);
    ASSERT_NE(inst.op, Op::kIllegal);
    const std::string text = disassemble(inst);
    AssembledText reassembled;
    ASSERT_NO_THROW(reassembled = assemble_text(text))
        << "text: " << text;
    ASSERT_EQ(reassembled.words.size(), 1u) << "text: " << text;
    EXPECT_EQ(reassembled.words[0], word)
        << "text '" << text << "' round-tripped to a different encoding";
  }
}

TEST(RoundTripOracle, VectorMemoryForms) {
  Assembler as(0);
  as.vle64(v8, a0);
  as.vse64(v8, a1);
  as.vle32(v4, a2);
  as.vse32(v4, a3);
  for (const std::uint32_t word : as.finish()) {
    const std::string text = disassemble(decode(word));
    const auto reassembled = assemble_text(text);
    ASSERT_EQ(reassembled.words.size(), 1u);
    EXPECT_EQ(reassembled.words[0], word) << text;
  }
}

TEST(RoundTripOracle, AtomicForms) {
  // Disassembler renders AMOs with the generic "op rd, rs1, rs2" form,
  // which is *not* the memory-operand syntax the text assembler expects —
  // so go the other way: text -> word -> decode -> semantic fields.
  const struct {
    const char* text;
    Op op;
  } cases[] = {
      {"amoadd.d a0, a1, (a2)", Op::kAmoaddD},
      {"amoswap.w t0, t1, (t2)", Op::kAmoswapW},
      {"lr.d s2, (s3)", Op::kLrD},
      {"sc.d s4, s5, (s6)", Op::kScD},
  };
  for (const auto& test_case : cases) {
    const auto assembled = assemble_text(test_case.text);
    ASSERT_EQ(assembled.words.size(), 1u);
    EXPECT_EQ(decode(assembled.words[0]).op, test_case.op) << test_case.text;
  }
}

}  // namespace
}  // namespace coyote::isa
