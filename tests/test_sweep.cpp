// Sweep-engine contract tests: grid expansion, failure isolation, and the
// headline determinism guarantee — a multi-threaded sweep produces a
// bit-identical results table to a serial one. The CI ThreadSanitizer job
// runs this binary to prove the parallel path is also race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/config_io.h"
#include "sweep/point_record.h"
#include "sweep/sweep.h"

namespace coyote::sweep {
namespace {

/// A small but real campaign: 2x2x2 grid + one explicit point = 9 points
/// of a 4-core matmul, small enough for CI, varied enough that different
/// points take different times (stealing actually interleaves).
SweepEngine::Options with_jobs(unsigned jobs) {
  SweepEngine::Options options;
  options.jobs = jobs;
  return options;
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 20;
  spec.seed = 17;
  spec.base.set("topo.cores", "4");
  spec.base.set("topo.cores_per_tile", "2");
  spec.base.set("core.l1d_kb", "4");
  spec.axes = {
      {"l2.size_kb", {"8", "16"}},
      {"l2.banks_per_tile", {"1", "2"}},
      {"l2.mapping", {"set-interleave", "page-to-bank"}},
  };
  simfw::ConfigMap extra;
  extra.set("noc.latency", "32");
  spec.extra_points.push_back(extra);
  return spec;
}

TEST(SweepSpec, AxisFromTokenParsesValueLists) {
  const SweepAxis axis = axis_from_token("l2.size_kb=128,256,512");
  EXPECT_EQ(axis.key, "l2.size_kb");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"128", "256", "512"}));
  EXPECT_EQ(axis_from_token("l2.sharing=private").values.size(), 1u);
  EXPECT_THROW(axis_from_token("novalue"), ConfigError);
  EXPECT_THROW(axis_from_token("key="), ConfigError);
  EXPECT_THROW(axis_from_token("key=a,,b"), ConfigError);
}

TEST(SweepSpec, ExpandIsTheOrderedCartesianProductPlusExtras) {
  const SweepSpec spec = small_spec();
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u * 2u * 2u + 1u);
  // Last axis fastest: first two points differ only in l2.mapping.
  EXPECT_EQ(points[0].get("l2.mapping"), "set-interleave");
  EXPECT_EQ(points[1].get("l2.mapping"), "page-to-bank");
  EXPECT_EQ(points[0].get("l2.size_kb"), points[1].get("l2.size_kb"));
  // First axis slowest: second half of the grid has the larger L2.
  EXPECT_EQ(points[0].get("l2.size_kb"), "8");
  EXPECT_EQ(points[4].get("l2.size_kb"), "16");
  // Base overrides reach every point; the extra point overlays the base.
  for (const auto& point : points) {
    EXPECT_EQ(point.get("topo.cores"), "4");
  }
  EXPECT_EQ(points.back().get("noc.latency"), "32");
  // All points distinct.
  std::set<std::map<std::string, std::string>> unique;
  for (const auto& point : points) unique.insert(point.values());
  EXPECT_EQ(unique.size(), points.size());
}

TEST(SweepEngine, ParallelSweepBitIdenticalToSerial) {
  const SweepSpec spec = small_spec();
  SweepEngine::Options serial;
  serial.jobs = 1;
  SweepEngine::Options parallel;
  parallel.jobs = 4;
  const SweepReport a = SweepEngine(serial).run(spec);
  const SweepReport b = SweepEngine(parallel).run(spec);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.num_failed(), 0u);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_TRUE(a.points[i].ok) << i;
    EXPECT_EQ(a.points[i].run.cycles, b.points[i].run.cycles) << i;
    EXPECT_EQ(a.points[i].run.instructions, b.points[i].run.instructions)
        << i;
    EXPECT_EQ(a.points[i].config.values(), b.points[i].config.values()) << i;
    EXPECT_EQ(a.points[i].to_json(), b.points[i].to_json()) << i;
  }
  // The whole table — the artefact users diff — matches byte for byte.
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(SweepEngine, PointsVisitDistinctConfigsAndRankDeterministically) {
  const SweepReport report = SweepEngine(with_jobs(2)).run(small_spec());
  const PointResult* best = report.best_by_cycles();
  ASSERT_NE(best, nullptr);
  for (const PointResult& point : report.points) {
    if (point.ok) {
      EXPECT_GE(point.run.cycles, best->run.cycles);
    }
  }
}

TEST(SweepEngine, ThrowingPointIsRecordedNotFatal) {
  SweepSpec spec = small_spec();
  spec.axes = {
      {"l2.size_kb", {"8", "16"}},
      // "bogus" fails config_from_map; the campaign must survive it.
      {"l2.sharing", {"shared", "bogus"}},
  };
  spec.extra_points.clear();
  SweepEngine::Options options;
  options.jobs = 4;
  options.max_attempts = 2;
  const SweepReport report = SweepEngine(options).run(spec);
  ASSERT_EQ(report.points.size(), 4u);
  EXPECT_EQ(report.num_failed(), 2u);
  for (const PointResult& point : report.points) {
    if (!point.ok) {
      // Failed points keep the raw (unnormalisable) config so the table
      // still names what was attempted.
      EXPECT_EQ(point.config.get("l2.sharing"), "bogus");
      EXPECT_EQ(point.attempts, 2u);
      EXPECT_NE(point.error.find("l2.sharing"), std::string::npos);
      EXPECT_NE(point.to_json().find("\"result\": null"),
                std::string::npos);
    } else {
      EXPECT_EQ(point.config.get("l2.sharing"), "shared");
      EXPECT_EQ(point.attempts, 1u);
      EXPECT_TRUE(point.error.empty());
    }
  }
}

TEST(SweepEngine, CycleBudgetFailsPointInsteadOfHanging) {
  SweepSpec spec = small_spec();
  spec.axes.clear();
  spec.extra_points.clear();
  SweepEngine::Options options;
  options.jobs = 1;
  options.max_attempts = 1;
  options.max_cycles = 10;  // nothing finishes in 10 cycles
  const SweepReport report = SweepEngine(options).run(spec);
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_EQ(report.num_failed(), 1u);
  EXPECT_NE(report.points[0].error.find("cycle budget"), std::string::npos);
}

TEST(SweepEngine, CustomRunnerModeCarriesMetrics) {
  std::vector<simfw::ConfigMap> points(3);
  points[1].set("topo.cores", "2");
  std::atomic<int> calls{0};
  const auto runner = [&calls](const core::SimConfig& config,
                               PointResult& point) {
    ++calls;
    point.metrics.emplace_back("cores", config.num_cores);
    core::RunResult result;
    result.cycles = 100 + config.num_cores;
    result.all_exited = true;
    return result;
  };
  const SweepReport report =
      SweepEngine(with_jobs(3)).run(std::move(points), runner, "custom-label");
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(report.workload, "custom-label");
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_EQ(report.points[1].run.cycles, 102u);
  EXPECT_EQ(report.points[1].metrics.front().second, 2.0);
  EXPECT_NE(report.to_json().find("\"schema_version\": 1"),
            std::string::npos);
  EXPECT_NE(report.to_json().find("\"kind\": \"sweep\""), std::string::npos);
}

TEST(SweepEngine, WallClockTimeoutIsRetriedThenRecorded) {
  SweepSpec spec = small_spec();
  spec.axes.clear();
  spec.extra_points.clear();
  SweepEngine::Options options;
  options.jobs = 1;
  options.max_attempts = 2;
  options.point_timeout_s = 1e-9;     // impossibly tight: always blows
  options.timeout_probe_cycles = 256; // probe early so the test is fast
  const SweepReport report = SweepEngine(options).run(spec);
  ASSERT_EQ(report.points.size(), 1u);
  const PointResult& point = report.points[0];
  EXPECT_FALSE(point.ok);
  EXPECT_EQ(point.attempts, 2u);  // retried once with a doubled budget
  EXPECT_EQ(point.status, "timeout");
  EXPECT_NE(point.error.find("wall-clock"), std::string::npos)
      << point.error;
  EXPECT_NE(point.to_json().find("\"status\": \"timeout\""),
            std::string::npos);
}

TEST(SweepEngine, GenerousWallClockBudgetDoesNotPerturbResults) {
  SweepSpec spec = small_spec();
  spec.axes.clear();
  spec.extra_points.clear();
  SweepEngine::Options plain;
  plain.jobs = 1;
  SweepEngine::Options timed;
  timed.jobs = 1;
  timed.point_timeout_s = 3600.0;  // never triggers
  const SweepReport a = SweepEngine(plain).run(spec);
  const SweepReport b = SweepEngine(timed).run(spec);
  ASSERT_EQ(a.points.size(), 1u);
  ASSERT_TRUE(a.points[0].ok);
  ASSERT_TRUE(b.points[0].ok);
  // Probe slicing must not change the simulated outcome or the table.
  EXPECT_EQ(a.points[0].run.cycles, b.points[0].run.cycles);
  EXPECT_EQ(a.to_json(), b.to_json());
}

// ------------------------------------------------- corrupt .done records --
// A resume directory is campaign state that survives crashes — which is
// exactly when half-written files happen. Chopped, garbage or stolen
// records must demote the point to "re-run", never crash the campaign or
// leak a wrong row into the table.

SweepSpec chop_spec() {
  SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 12;
  spec.seed = 5;
  spec.base.set("topo.cores", "4");
  spec.axes.push_back({"l2.size_kb", {"128", "256"}});
  return spec;
}

TEST(SweepResumeCorruption, ByteChoppedDoneRecordsReRunCleanly) {
  const std::string dir = ::testing::TempDir() + "sweep_chopped_done";
  std::filesystem::remove_all(dir);
  SweepEngine::Options options;
  options.jobs = 1;
  options.resume_dir = dir;
  const SweepSpec spec = chop_spec();
  const std::string fresh = SweepEngine(options).run(spec).to_json(false);

  const std::string path = dir + "/point0.done";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string bytes = whole.str();
  in.close();
  ASSERT_GT(bytes.size(), 16u);

  // Truncate the record at a spread of offsets: mid-magic, mid-version,
  // mid-config, mid-metrics, one byte short of complete. Every variant
  // must re-run point 0 and still produce the identical table.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{6}, std::size_t{11},
        bytes.size() / 3, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_EQ(SweepEngine(options).run(spec).to_json(false), fresh)
        << "truncated to " << keep << " bytes";
  }
}

TEST(SweepResumeCorruption, GarbageDoneRecordReRunsCleanly) {
  const std::string dir = ::testing::TempDir() + "sweep_garbage_done";
  std::filesystem::remove_all(dir);
  SweepEngine::Options options;
  options.jobs = 1;
  options.resume_dir = dir;
  const SweepSpec spec = chop_spec();
  const std::string fresh = SweepEngine(options).run(spec).to_json(false);

  {
    std::ofstream out(dir + "/point0.done",
                      std::ios::binary | std::ios::trunc);
    out << "this was never a done record";
  }
  {
    // Right magic, hostile body: a declared string length far past EOF.
    std::ofstream out(dir + "/point1.done",
                      std::ios::binary | std::ios::trunc);
    const std::uint32_t magic = 0x43594B44;
    const std::uint32_t version = kPointRecordVersion;
    const std::uint32_t huge = 0x7fffffff;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    out.write(reinterpret_cast<const char*>(&huge), 4);
  }
  EXPECT_EQ(SweepEngine(options).run(spec).to_json(false), fresh);
}

TEST(SweepReport, JsonExcludesHostTimingByDefault) {
  SweepSpec spec = small_spec();
  spec.axes.clear();
  spec.extra_points.clear();
  const SweepReport report = SweepEngine(with_jobs(1)).run(spec);
  const std::string table = report.to_json();
  EXPECT_EQ(table.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(table.find("mips"), std::string::npos);
  const std::string with_host = report.to_json(/*include_host_timing=*/true);
  EXPECT_NE(with_host.find("wall_seconds"), std::string::npos);
}

}  // namespace
}  // namespace coyote::sweep
