#include "memhier/noc.h"

#include <gtest/gtest.h>

namespace coyote::memhier {
namespace {

TEST(Noc, CrossbarIsUniformFixedLatency) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  NocConfig config;
  config.model = NocModel::kIdealCrossbar;
  config.crossbar_latency = 7;
  Noc noc(&root, config, 4, 2);
  EXPECT_EQ(noc.traverse(noc.tile_node(0), noc.tile_node(3)), 7u);
  EXPECT_EQ(noc.traverse(noc.tile_node(2), noc.mc_node(1)), 7u);
  EXPECT_EQ(noc.traverse(noc.tile_node(1), noc.tile_node(1)), 7u);
  EXPECT_EQ(root.find("noc")->stats().find_counter("messages").get(), 3u);
}

TEST(Noc, MeshLatencyScalesWithDistance) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  NocConfig config;
  config.model = NocModel::kMeshOracle;
  config.mesh_router_latency = 2;
  config.mesh_hop_latency = 3;
  config.mesh_width = 4;
  Noc noc(&root, config, 16, 0);
  // Node layout: node = y*4 + x.
  EXPECT_EQ(noc.latency(0, 0), 2u);              // same node
  EXPECT_EQ(noc.latency(0, 1), 2u + 3u);         // one hop
  EXPECT_EQ(noc.latency(0, 5), 2u + 2 * 3u);     // (1,1)
  EXPECT_EQ(noc.latency(0, 15), 2u + 6 * 3u);    // (3,3)
  EXPECT_EQ(noc.latency(15, 0), noc.latency(0, 15));  // symmetric
}

TEST(Noc, MeshCountsHops) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  NocConfig config;
  config.model = NocModel::kMeshOracle;
  config.mesh_width = 2;
  Noc noc(&root, config, 4, 1);
  noc.traverse(0, 3);  // 2 hops
  noc.traverse(1, 2);  // 2 hops
  EXPECT_EQ(root.find("noc")->stats().find_counter("hops").get(), 4u);
}

TEST(Noc, ContendedMeshRejectsTraverse) {
  // The contended mesh delivers through transmit(); any surviving
  // traverse() call site is a wiring bug and must fail loudly.
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  NocConfig config;
  config.model = NocModel::kMesh2D;
  config.mesh_width = 2;
  Noc noc(&root, config, 4, 0);
  EXPECT_TRUE(noc.contended());
  EXPECT_THROW(noc.traverse(0, 3), SimError);
}

TEST(Noc, McNodesFollowTileNodes) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  Noc noc(&root, NocConfig{}, 4, 2);
  EXPECT_EQ(noc.mc_node(0), 4u);
  EXPECT_EQ(noc.mc_node(1), 5u);
}

TEST(Noc, LatencyQueryHasNoSideEffects) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  Noc noc(&root, NocConfig{}, 2, 1);
  (void)noc.latency(0, 1);
  EXPECT_EQ(root.find("noc")->stats().find_counter("messages").get(), 0u);
}

TEST(Noc, ZeroMeshWidthRejected) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  NocConfig config;
  config.model = NocModel::kMesh2D;
  config.mesh_width = 0;
  EXPECT_THROW(Noc(&root, config, 2, 1), ConfigError);
}

}  // namespace
}  // namespace coyote::memhier
