#include "memhier/memctrl.h"

#include <gtest/gtest.h>

#include <vector>

namespace coyote::memhier {
namespace {

struct McHarness {
  simfw::Scheduler sched;
  simfw::Unit root{&sched, "top"};
  Noc noc;
  std::unique_ptr<MemoryController> mc;
  simfw::DataOutPort<MemRequest> req_out{&root, "req_out"};
  simfw::DataInPort<MemResponse> resp_in{&root, "resp_in"};
  std::vector<std::pair<Cycle, MemResponse>> responses;

  explicit McHarness(MemCtrlConfig config)
      : noc(&root, NocConfig{.crossbar_latency = 0}, 1, 1) {
    mc = std::make_unique<MemoryController>(&root, "mc0", 0, config, &noc, 1);
    req_out.bind(mc->req_in());
    mc->resp_out(0).bind(resp_in);
    resp_in.register_handler([this](const MemResponse& response) {
      responses.push_back({sched.now(), response});
    });
  }

  void send(Addr line, MemOp op = MemOp::kLoad) {
    req_out.send(MemRequest{line, op, 0, 0, 0}, 0);
  }
};

TEST(MemoryController, FixedLatencyResponse) {
  MemCtrlConfig config;
  config.model = McModel::kFixedLatency;
  config.latency = 100;
  config.cycles_per_request = 0;  // infinite bandwidth
  McHarness harness(config);
  harness.send(0x1000);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 1u);
  EXPECT_EQ(harness.responses[0].first, 100u);
  EXPECT_EQ(harness.responses[0].second.line_addr, 0x1000u);
}

TEST(MemoryController, BandwidthLimitSerializesRequests) {
  MemCtrlConfig config;
  config.latency = 50;
  config.cycles_per_request = 10;
  McHarness harness(config);
  for (int i = 0; i < 4; ++i) harness.send(0x1000 + 64 * i);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 4u);
  // Service slots at 0, 10, 20, 30 -> responses at 50, 60, 70, 80.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(harness.responses[i].first, 50u + 10 * i);
  }
  EXPECT_EQ(harness.mc->stats().find_counter("queue_delay_cycles").get(),
            0u + 10 + 20 + 30);
}

TEST(MemoryController, WritebacksAbsorbedSilently) {
  MemCtrlConfig config;
  McHarness harness(config);
  harness.send(0x1000, MemOp::kWriteback);
  harness.sched.run_to_completion();
  EXPECT_TRUE(harness.responses.empty());
  EXPECT_EQ(harness.mc->stats().find_counter("writes").get(), 1u);
  EXPECT_EQ(harness.mc->stats().find_counter("reads").get(), 0u);
}

TEST(MemoryController, DramRowBufferHitsAndMisses) {
  MemCtrlConfig config;
  config.model = McModel::kDramRowBuffer;
  config.cycles_per_request = 0;
  config.dram_banks = 1;  // single internal bank: strict row locality
  config.row_bytes = 2048;
  config.row_hit_latency = 40;
  config.row_miss_latency = 140;
  McHarness harness(config);

  harness.send(0x0000);        // row 0: miss (cold)
  harness.send(0x0040);        // row 0: hit
  harness.send(0x0800);        // row 1: miss
  harness.send(0x0840);        // row 1: hit
  harness.send(0x0000);        // row 0 again: miss (row 1 open)
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 5u);
  EXPECT_EQ(harness.mc->stats().find_counter("row_hits").get(), 2u);
  EXPECT_EQ(harness.mc->stats().find_counter("row_misses").get(), 3u);
  // Responses arrive in completion order: the two row hits (40) first, then
  // the three row misses (140).
  std::vector<Cycle> times;
  for (const auto& [cycle, response] : harness.responses) {
    times.push_back(cycle);
  }
  EXPECT_EQ(times, (std::vector<Cycle>{40, 40, 140, 140, 140}));
}

TEST(MemoryController, DramBanksTrackRowsIndependently) {
  MemCtrlConfig config;
  config.model = McModel::kDramRowBuffer;
  config.cycles_per_request = 0;
  config.dram_banks = 2;
  config.row_bytes = 2048;
  McHarness harness(config);
  // Lines alternate between internal banks (line >> 6 parity).
  harness.send(0x0000);  // bank 0, miss
  harness.send(0x0040);  // bank 1, miss
  harness.send(0x0080);  // bank 0, hit (same row)
  harness.send(0x00C0);  // bank 1, hit
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.mc->stats().find_counter("row_hits").get(), 2u);
  EXPECT_EQ(harness.mc->stats().find_counter("row_misses").get(), 2u);
}

TEST(MemoryController, BadDramGeometryRejected) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  Noc noc(&root, NocConfig{}, 1, 1);
  MemCtrlConfig config;
  config.model = McModel::kDramRowBuffer;
  config.row_bytes = 1000;  // not a power of two
  EXPECT_THROW(MemoryController(&root, "mc", 0, config, &noc, 1),
               ConfigError);
}

}  // namespace
}  // namespace coyote::memhier
