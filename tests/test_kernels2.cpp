// Tests for the extension kernels: BLAS-1 AXPY/DOT and the multicore FFT.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "core/simulator.h"
#include "kernels/kernels.h"

namespace coyote::kernels {
namespace {

core::SimConfig config_for(std::uint32_t cores) {
  core::SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 4;
  config.num_mcs = 2;
  return config;
}

class AxpyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AxpyTest, MatchesReference) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = Blas1Workload::generate(1000, 7);
  workload.install(sim.memory());
  const auto program = build_axpy_vector(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  const auto expected = workload.axpy_reference();
  const auto actual = workload.axpy_result(sim.memory());
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-13) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, AxpyTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

class DotTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DotTest, MatchesReference) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = Blas1Workload::generate(3000, 8);
  workload.install(sim.memory());
  const auto program = build_dot_vector(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  EXPECT_NEAR(workload.dot_reference(),
              workload.dot_result(sim.memory(), cores), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, DotTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(Blas1, EmptyRangeCoresStillExit) {
  // More cores than elements: idle cores must still write a zero partial.
  core::Simulator sim(config_for(8));
  const auto workload = Blas1Workload::generate(5, 9);
  workload.install(sim.memory());
  const auto program = build_dot_vector(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  EXPECT_NEAR(workload.dot_reference(),
              workload.dot_result(sim.memory(), 8), 1e-12);
}

// ----------------------------------------------------------- stencil2d --

class Stencil2dTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint32_t>> {};

TEST_P(Stencil2dTest, MatchesReference) {
  const auto [nx, ny, cores] = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = Stencil2dWorkload::generate(nx, ny, 23);
  workload.install(sim.memory());
  const auto program = build_stencil2d_vector(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-13) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndCores, Stencil2dTest,
    ::testing::Combine(::testing::Values(std::size_t{3}, std::size_t{17},
                                         std::size_t{40}),
                       ::testing::Values(std::size_t{3}, std::size_t{33},
                                         std::size_t{64}),
                       ::testing::Values(1u, 4u, 8u)),
    [](const auto& info) {
      return "nx" + std::to_string(std::get<0>(info.param)) + "_ny" +
             std::to_string(std::get<1>(info.param)) + "_cores" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Stencil2d, BoundaryRowsAndColumnsUntouched) {
  core::Simulator sim(config_for(4));
  const auto workload = Stencil2dWorkload::generate(16, 24, 29);
  workload.install(sim.memory());
  const auto program = build_stencil2d_vector(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  const auto out = workload.result(sim.memory());
  for (std::size_t j = 0; j < workload.ny; ++j) {
    EXPECT_EQ(out[j], workload.src[j]);  // first row
    EXPECT_EQ(out[(workload.nx - 1) * workload.ny + j],
              workload.src[(workload.nx - 1) * workload.ny + j]);
  }
  for (std::size_t i = 0; i < workload.nx; ++i) {
    EXPECT_EQ(out[i * workload.ny], workload.src[i * workload.ny]);
    EXPECT_EQ(out[i * workload.ny + workload.ny - 1],
              workload.src[i * workload.ny + workload.ny - 1]);
  }
}

TEST(Stencil2d, TinyGridRejected) {
  EXPECT_THROW(Stencil2dWorkload::generate(2, 8, 1), ConfigError);
  EXPECT_THROW(Stencil2dWorkload::generate(8, 2, 1), ConfigError);
}

// ----------------------------------------------------------------- fft --

// Independent O(n^2) DFT used to validate the host reference itself.
void naive_dft(const std::vector<double>& in_re,
               const std::vector<double>& in_im, std::vector<double>& out_re,
               std::vector<double>& out_im) {
  const std::size_t n = in_re.size();
  out_re.assign(n, 0.0);
  out_im.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * 3.14159265358979323846 *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += std::complex<double>(in_re[t], in_im[t]) *
             std::polar(1.0, angle);
    }
    out_re[k] = acc.real();
    out_im[k] = acc.imag();
  }
}

TEST(Fft, HostReferenceAgreesWithNaiveDft) {
  const auto workload = FftWorkload::generate(64, 4);
  std::vector<double> fft_re;
  std::vector<double> fft_im;
  workload.reference(fft_re, fft_im);
  std::vector<double> dft_re;
  std::vector<double> dft_im;
  naive_dft(workload.in_re, workload.in_im, dft_re, dft_im);
  for (std::size_t i = 0; i < workload.n; ++i) {
    ASSERT_NEAR(fft_re[i], dft_re[i], 1e-9) << i;
    ASSERT_NEAR(fft_im[i], dft_im[i], 1e-9) << i;
  }
}

class FftTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(FftTest, SimulatedMatchesHost) {
  const auto [n, cores] = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = FftWorkload::generate(n, 5);
  workload.install(sim.memory());
  const auto program = build_fft_scalar(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(2'000'000'000ULL).all_exited);

  std::vector<double> expected_re;
  std::vector<double> expected_im;
  workload.reference(expected_re, expected_im);
  std::vector<double> actual_re;
  std::vector<double> actual_im;
  workload.result(sim.memory(), actual_re, actual_im);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(expected_re[i], actual_re[i], 1e-9) << "re " << i;
    ASSERT_NEAR(expected_im[i], actual_im[i], 1e-9) << "im " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCores, FftTest,
    ::testing::Combine(::testing::Values(std::size_t{8}, std::size_t{64},
                                         std::size_t{512}),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_cores" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftWorkload::generate(48, 1), ConfigError);
  EXPECT_THROW(FftWorkload::generate(1, 1), ConfigError);
}

TEST(Fft, DeterministicSimulatedCycles) {
  const auto cycles_once = [] {
    core::Simulator sim(config_for(4));
    const auto workload = FftWorkload::generate(256, 6);
    workload.install(sim.memory());
    const auto program = build_fft_scalar(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(2'000'000'000ULL);
    EXPECT_TRUE(result.all_exited);
    return result.cycles;
  };
  EXPECT_EQ(cycles_once(), cycles_once());
}

}  // namespace
}  // namespace coyote::kernels
