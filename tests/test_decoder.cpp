#include "isa/decoder.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace coyote::isa {
namespace {

// Golden encodings cross-checked against the RISC-V ISA manual / GNU as.
TEST(Decoder, GoldenScalarEncodings) {
  {
    const auto inst = decode(0x02A58513);  // addi a0, a1, 42
    EXPECT_EQ(inst.op, Op::kAddi);
    EXPECT_EQ(inst.rd, 10);
    EXPECT_EQ(inst.rs1, 11);
    EXPECT_EQ(inst.imm, 42);
  }
  {
    const auto inst = decode(0x123452B7);  // lui t0, 0x12345
    EXPECT_EQ(inst.op, Op::kLui);
    EXPECT_EQ(inst.rd, 5);
    EXPECT_EQ(inst.imm, static_cast<std::int64_t>(0x12345000));
  }
  {
    const auto inst = decode(0x008000EF);  // jal ra, +8
    EXPECT_EQ(inst.op, Op::kJal);
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.imm, 8);
  }
  {
    const auto inst = decode(0x00C13823);  // sd a2, 16(sp)
    EXPECT_EQ(inst.op, Op::kSd);
    EXPECT_EQ(inst.rs1, 2);
    EXPECT_EQ(inst.rs2, 12);
    EXPECT_EQ(inst.imm, 16);
  }
  {
    const auto inst = decode(0x00B50863);  // beq a0, a1, +16
    EXPECT_EQ(inst.op, Op::kBeq);
    EXPECT_EQ(inst.rs1, 10);
    EXPECT_EQ(inst.rs2, 11);
    EXPECT_EQ(inst.imm, 16);
  }
  {
    const auto inst = decode(0x02C58533);  // mul a0, a1, a2
    EXPECT_EQ(inst.op, Op::kMul);
    EXPECT_EQ(inst.rd, 10);
  }
  {
    const auto inst = decode(0x00053507);  // fld fa0, 0(a0)
    EXPECT_EQ(inst.op, Op::kFld);
    EXPECT_EQ(inst.rd, 10);
    EXPECT_EQ(inst.rs1, 10);
    EXPECT_EQ(inst.imm, 0);
  }
  EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
  EXPECT_EQ(decode(0x00100073).op, Op::kEbreak);
}

TEST(Decoder, GoldenVectorEncodings) {
  {
    const auto inst = decode(0x0DA572D7);  // vsetvli t0, a0, e64,m4,ta,ma
    EXPECT_EQ(inst.op, Op::kVsetvli);
    EXPECT_EQ(inst.rd, 5);
    EXPECT_EQ(inst.rs1, 10);
    EXPECT_EQ(inst.imm, 0xDA);
  }
  {
    const auto inst = decode(0x02057407);  // vle64.v v8, (a0)
    EXPECT_EQ(inst.op, Op::kVle64);
    EXPECT_EQ(inst.rd, 8);
    EXPECT_EQ(inst.rs1, 10);
    EXPECT_TRUE(inst.vm);
  }
  {
    const auto inst = decode(0x022180D7);  // vadd.vv v1, v2, v3
    EXPECT_EQ(inst.op, Op::kVaddVV);
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.rs2, 2);
    EXPECT_EQ(inst.rs1, 3);
    EXPECT_TRUE(inst.vm);
  }
}

TEST(Decoder, NegativeImmediates) {
  // addi a0, a0, -1 = 0xFFF50513
  const auto inst = decode(0xFFF50513);
  EXPECT_EQ(inst.op, Op::kAddi);
  EXPECT_EQ(inst.imm, -1);
}

TEST(Decoder, CompressedEncodingsAreIllegal) {
  EXPECT_EQ(decode(0x00000001).op, Op::kIllegal);  // c.nop-ish
  EXPECT_EQ(decode(0x00004502).op, Op::kIllegal);
  EXPECT_EQ(decode(0x00000000).op, Op::kIllegal);
}

TEST(Decoder, UnknownMajorOpcodeIsIllegal) {
  EXPECT_EQ(decode(0x0000007F).op, Op::kIllegal);
  EXPECT_EQ(decode(0xFFFFFFFF).op, Op::kIllegal);
}

TEST(Decoder, BadFunctFieldsAreIllegal) {
  // OP with funct7 = 0x7F.
  EXPECT_EQ(decode(0xFE000033).op, Op::kIllegal);
  // Branch funct3 = 2 is reserved.
  EXPECT_EQ(decode(0x00002063).op, Op::kIllegal);
  // Load funct3 = 7 is reserved.
  EXPECT_EQ(decode(0x00007003).op, Op::kIllegal);
}

TEST(Decoder, SegmentVectorLoadsUnsupported) {
  // vle64 with nf=1 (two-field segment): nf bits [31:29] = 1.
  EXPECT_EQ(decode(0x02057407 | (1u << 29)).op, Op::kIllegal);
}

TEST(Decoder, IllegalKeepsRawWord) {
  const auto inst = decode(0xDEADBEFF);
  EXPECT_EQ(inst.op, Op::kIllegal);
  EXPECT_EQ(inst.raw, 0xDEADBEFFu);
}

TEST(InstAttributes, LoadStoreClassification) {
  EXPECT_TRUE(is_load(Op::kLd));
  EXPECT_TRUE(is_load(Op::kFld));
  EXPECT_TRUE(is_load(Op::kVle64));
  EXPECT_TRUE(is_load(Op::kVluxei64));
  EXPECT_FALSE(is_load(Op::kSd));
  EXPECT_TRUE(is_store(Op::kSd));
  EXPECT_TRUE(is_store(Op::kVse64));
  EXPECT_TRUE(is_store(Op::kVsuxei64));
  EXPECT_FALSE(is_store(Op::kLd));
  EXPECT_TRUE(is_vector(Op::kVsetvli));
  EXPECT_TRUE(is_vector(Op::kVfmaccVF));
  EXPECT_FALSE(is_vector(Op::kAdd));
  EXPECT_TRUE(is_branch_or_jump(Op::kBeq));
  EXPECT_TRUE(is_branch_or_jump(Op::kJalr));
  EXPECT_FALSE(is_branch_or_jump(Op::kAdd));
}

TEST(InstAttributes, SourceAndDestRegs) {
  {
    const auto inst = decode(0x02A58513);  // addi a0, a1, 42
    const auto srcs = source_regs(inst);
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(srcs[0], (RegRef{RegFile::kX, 11}));
    const auto dsts = dest_regs(inst);
    ASSERT_EQ(dsts.size(), 1u);
    EXPECT_EQ(dsts[0], (RegRef{RegFile::kX, 10}));
  }
  {
    // x0 never appears: addi zero, zero, 0 (canonical nop).
    const auto inst = decode(0x00000013);
    EXPECT_TRUE(source_regs(inst).empty());
    EXPECT_TRUE(dest_regs(inst).empty());
  }
  {
    const auto inst = decode(0x00053507);  // fld fa0, 0(a0)
    const auto srcs = source_regs(inst);
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(srcs[0].file, RegFile::kX);
    const auto dsts = dest_regs(inst);
    ASSERT_EQ(dsts.size(), 1u);
    EXPECT_EQ(dsts[0], (RegRef{RegFile::kF, 10}));
  }
  {
    const auto inst = decode(0x02057407);  // vle64.v v8, (a0)
    const auto dsts = dest_regs(inst);
    ASSERT_EQ(dsts.size(), 1u);
    EXPECT_EQ(dsts[0], (RegRef{RegFile::kV, 8}));
  }
}

TEST(InstAttributes, MaskedVectorOpReadsV0) {
  // vadd.vv v1, v2, v3, v0.t (vm=0).
  const auto inst = decode(0x022180D7 & ~(1u << 25));
  const auto srcs = source_regs(inst);
  bool reads_v0 = false;
  for (const auto& reg : srcs) {
    if (reg.file == RegFile::kV && reg.index == 0) reads_v0 = true;
  }
  EXPECT_TRUE(reads_v0);
}

TEST(InstAttributes, VectorStoreReadsDataRegister) {
  // vse64.v v8, (a0): the "vd" field is really vs3 (a source).
  const auto inst = decode(0x02057427);  // vse64.v v8,(a0)
  ASSERT_EQ(inst.op, Op::kVse64);
  bool reads_v8 = false;
  for (const auto& reg : source_regs(inst)) {
    if (reg.file == RegFile::kV && reg.index == 8) reads_v8 = true;
  }
  EXPECT_TRUE(reads_v8);
  EXPECT_TRUE(dest_regs(inst).empty());
}

TEST(InstAttributes, OpNamesAreUnique) {
  std::set<std::string> names;
  for (std::uint16_t op = 1; op < static_cast<std::uint16_t>(Op::kOpCount);
       ++op) {
    const std::string name = op_name(static_cast<Op>(op));
    EXPECT_NE(name, "?") << "missing name for op " << op;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

}  // namespace
}  // namespace coyote::isa
