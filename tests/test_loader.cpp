// Tests for the ELF64 loader + proxy-kernel syscall layer (src/loader).
// Covers the writer<->parser round trip, actionable rejection of malformed
// images, the committed RV64 fixtures running to guest exit through the
// Workload API, a menu-kernel-vs-ELF cycle-for-cycle differential, v3
// checkpoints that carry the proxy-kernel state and refuse a rebuilt
// binary, and sweep determinism over a workload.elf axis.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "common/error.h"
#include "core/config_io.h"
#include "core/simulator.h"
#include "isa/text_asm.h"
#include "kernels/program_menu.h"
#include "loader/elf.h"
#include "loader/elf_writer.h"
#include "loader/syscall.h"
#include "loader/workload.h"
#include "sweep/sweep.h"

namespace coyote::loader {
namespace {

using core::SimConfig;
using core::Simulator;

constexpr Cycle kBudget = 100'000'000;

std::string fixture(const std::string& name) {
  return std::string(COYOTE_FIXTURE_DIR) + "/" + name;
}

SimConfig small_config(std::uint32_t cores = 2) {
  SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = cores;
  config.l2_banks_per_tile = 1;
  config.num_mcs = 1;
  return config;
}

std::vector<std::uint8_t> words_to_bytes(
    const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 4);
  for (const std::uint32_t word : words) {
    bytes.push_back(static_cast<std::uint8_t>(word));
    bytes.push_back(static_cast<std::uint8_t>(word >> 8));
    bytes.push_back(static_cast<std::uint8_t>(word >> 16));
    bytes.push_back(static_cast<std::uint8_t>(word >> 24));
  }
  return bytes;
}

/// Assembles `source` and wraps it into an ELF64 image (entry = _start).
std::vector<std::uint8_t> elf_from_asm(const std::string& source) {
  const isa::AssembledText assembled = isa::assemble_text(source);
  ElfWriterSpec spec;
  spec.entry = assembled.symbols.at("_start");
  ElfWriterSegment segment;
  segment.vaddr = assembled.base;
  segment.bytes = words_to_bytes(assembled.words);
  spec.segments.push_back(std::move(segment));
  spec.symbols = assembled.symbols;
  return write_elf64(spec);
}

std::string write_temp_elf(const std::string& name,
                           const std::vector<std::uint8_t>& bytes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

// ---------------------------------------------------------------- parsing

TEST(ElfWriter, RoundTripsThroughParser) {
  ElfWriterSpec spec;
  spec.entry = 0x10010;
  ElfWriterSegment segment;
  segment.vaddr = 0x10000;
  segment.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  segment.memsz = 32;  // 24-byte bss tail
  spec.segments.push_back(segment);
  spec.symbols["tohost"] = 0x11000;
  spec.symbols["_start"] = 0x10010;

  ElfWriterSegment bss_home;  // keeps 0x11000 inside the load span
  bss_home.vaddr = 0x11000;
  bss_home.bytes = {0, 0, 0, 0, 0, 0, 0, 0};
  spec.segments.push_back(bss_home);

  const std::vector<std::uint8_t> bytes = write_elf64(spec);
  const ElfImage image = parse_elf64(bytes, "round-trip");

  EXPECT_EQ(image.entry, 0x10010u);
  ASSERT_EQ(image.segments.size(), 2u);
  EXPECT_EQ(image.segments[0].vaddr, 0x10000u);
  EXPECT_EQ(image.segments[0].filesz, 8u);
  EXPECT_EQ(image.segments[0].memsz, 32u);
  EXPECT_EQ(image.load_min, 0x10000u);
  EXPECT_EQ(image.load_max, 0x11008u);
  EXPECT_EQ(image.symbols.at("tohost"), 0x11000u);
  EXPECT_EQ(image.symbols.at("_start"), 0x10010u);
  EXPECT_EQ(image.content_hash, fnv1a64(bytes.data(), bytes.size()));
  EXPECT_NE(image.content_hash, 0u);
}

TEST(ElfParser, RejectsMalformedImagesWithActionableErrors) {
  ElfWriterSpec spec;
  spec.entry = 0x10000;
  ElfWriterSegment segment;
  segment.vaddr = 0x10000;
  segment.bytes = {0x13, 0x00, 0x00, 0x00};  // nop
  spec.segments.push_back(segment);
  const std::vector<std::uint8_t> good = write_elf64(spec);
  ASSERT_NO_THROW(parse_elf64(good, "good"));

  const auto expect_error = [&](std::vector<std::uint8_t> bytes,
                                const std::string& needle) {
    try {
      parse_elf64(bytes, "bad.elf");
      FAIL() << "expected ConfigError containing '" << needle << "'";
    } catch (const ConfigError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message was: " << error.what();
    }
  };

  std::vector<std::uint8_t> truncated(good.begin(), good.begin() + 10);
  expect_error(truncated, "smaller than the 64-byte ELF64 header");

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] = 0x00;
  expect_error(bad_magic, "not an ELF");

  std::vector<std::uint8_t> elf32 = good;
  elf32[4] = 1;  // ELFCLASS32
  expect_error(elf32, "64-bit");

  std::vector<std::uint8_t> big_endian = good;
  big_endian[5] = 2;  // ELFDATA2MSB
  expect_error(big_endian, "little-endian");

  std::vector<std::uint8_t> x86 = good;
  x86[0x12] = 62;  // EM_X86_64
  x86[0x13] = 0;
  expect_error(x86, "x86-64");

  std::vector<std::uint8_t> pie = good;
  pie[0x10] = 3;  // ET_DYN
  expect_error(pie, "-static -no-pie");

  std::vector<std::uint8_t> no_load = good;
  no_load[0x38] = 0;  // e_phnum = 0
  expect_error(no_load, "nothing to load");
}

TEST(ElfParser, ReadFileRejectsMissingPath) {
  EXPECT_THROW(read_file("/nonexistent/no-such-file.elf"), ConfigError);
}

// --------------------------------------------------- fixtures end to end

TEST(Workload, HelloFixtureRunsToGuestExit) {
  SimConfig config = small_config();
  config.workload.elf = fixture("hello.elf");
  Simulator sim(config);
  const core::WorkloadInfo info = load_workload(sim);
  EXPECT_EQ(info.kind, "elf");
  EXPECT_NE(info.content_hash, 0u);

  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.guest_status(), 0);
  for (std::uint32_t id = 0; id < config.num_cores; ++id) {
    EXPECT_EQ(sim.core(id).hart().console(), "hello from coyote elf\n");
  }
}

TEST(Workload, SyscallsFixtureExercisesProxyKernel) {
  SimConfig config = small_config();
  config.workload.elf = fixture("syscalls.elf");
  Simulator sim(config);
  load_workload(sim);
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.guest_status(), 0)
      << "console: " << sim.core(0).hart().console();
  EXPECT_EQ(sim.core(0).hart().console(), "syscalls ok\n");
}

TEST(Workload, TohostFixtureExitsThroughHtif) {
  SimConfig config = small_config(1);
  config.workload.elf = fixture("tohost42.elf");
  Simulator sim(config);
  load_workload(sim);
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.guest_status(), 42);
}

TEST(Workload, ElfRunsAreDeterministic) {
  SimConfig config = small_config();
  config.workload.elf = fixture("syscalls.elf");
  Simulator first(config);
  load_workload(first);
  const auto a = first.run(kBudget);
  Simulator second(config);
  load_workload(second);
  const auto b = second.run(kBudget);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Workload, MenuKernelAndElfImageRunCycleForCycle) {
  // Build a menu kernel the normal way, snapshot its full memory image
  // (code + generated workload data) into an ELF, reload through the ELF
  // path, and demand a cycle-for-cycle identical run.
  const SimConfig config = small_config();
  Simulator menu_sim(config);
  const kernels::Program program = kernels::build_named_kernel(
      "axpy", config.num_cores, 64, 7, menu_sim.memory());

  ElfWriterSpec spec;
  spec.entry = program.entry;
  ElfWriterSegment code;
  code.vaddr = program.base;
  code.bytes = words_to_bytes(program.words);
  spec.segments.push_back(std::move(code));
  for (const Addr page : menu_sim.memory().resident_page_indices()) {
    ElfWriterSegment data;
    data.vaddr = page * iss::SparseMemory::kPageSize;
    const std::uint8_t* bytes = menu_sim.memory().page_data(page);
    data.bytes.assign(bytes, bytes + iss::SparseMemory::kPageSize);
    spec.segments.push_back(std::move(data));
  }
  const std::vector<std::uint8_t> elf = write_elf64(spec);

  menu_sim.load_program(program.base, program.words, program.entry);
  const auto menu_result = menu_sim.run(kBudget);
  ASSERT_TRUE(menu_result.all_exited);

  Simulator elf_sim(config);
  const ElfImage image = parse_elf64(elf, "menu.elf");
  load_elf64(elf, elf_sim.memory(), "menu.elf");
  elf_sim.reset_cores(image.entry);
  const auto elf_result = elf_sim.run(kBudget);

  EXPECT_TRUE(elf_result.all_exited);
  EXPECT_EQ(elf_result.cycles, menu_result.cycles);
  EXPECT_EQ(elf_result.instructions, menu_result.instructions);
  EXPECT_EQ(elf_result.exit_codes, menu_result.exit_codes);
}

// --------------------------------------------------------- checkpointing

// A guest that parks state in the proxy kernel (a grown brk) before a long
// ALU loop, then checks the break survived. If a checkpoint cut inside the
// loop dropped the emulator state, the restored run exits 1, not 0.
const char* const kBrkLoopSource = R"(
.org 0x10000
_start:
    li a0, 0
    li a7, 214
    ecall                  # brk(0) -> s1
    mv s1, a0
    li t0, 8192
    add a0, s1, t0
    li a7, 214
    ecall                  # grow the heap two pages
    li s0, 20000
loop:
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 214
    ecall                  # brk(0) must still be s1 + 8192
    li t0, 8192
    add t1, s1, t0
    bne a0, t1, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
)";

TEST(Checkpoint, ElfWorkloadRestoresBitIdentically) {
  const std::vector<std::uint8_t> elf = elf_from_asm(kBrkLoopSource);
  const std::string path = write_temp_elf("coyote_brk_loop.elf", elf);

  SimConfig config = small_config();
  config.workload.elf = path;

  // Uninterrupted reference run.
  Simulator reference(config);
  load_workload(reference);
  const auto reference_result = reference.run(kBudget);
  ASSERT_TRUE(reference_result.all_exited);
  ASSERT_EQ(reference_result.guest_status(), 0);

  // Cut mid-loop, serialize, restore, continue.
  Simulator first(config);
  const core::WorkloadInfo info = load_workload(first);
  const auto cut = first.run_to_quiesce(1000, kBudget);
  ASSERT_TRUE(cut.quiesced);
  ASSERT_FALSE(cut.all_exited);

  std::stringstream stream;
  ckpt::write_checkpoint(first, info, stream);

  ckpt::CheckpointMeta meta;
  auto restored = ckpt::restore_checkpoint(stream, &meta);
  EXPECT_EQ(meta.version, ckpt::kCheckpointVersion);
  EXPECT_EQ(meta.workload_kind, "elf");
  EXPECT_EQ(meta.workload_ref, path);
  EXPECT_EQ(meta.workload_hash, fnv1a64(elf.data(), elf.size()));
  ASSERT_NE(restored->syscall_emulator(), nullptr)
      << "restore must re-attach the proxy kernel";

  const auto first_rest = first.run(kBudget);
  const auto restored_rest = restored->run(kBudget);
  EXPECT_TRUE(restored_rest.all_exited);
  EXPECT_EQ(restored_rest.cycles, first_rest.cycles);
  EXPECT_EQ(restored_rest.instructions, first_rest.instructions);
  EXPECT_EQ(restored_rest.guest_status(), 0)
      << "brk state was lost across the checkpoint";
  EXPECT_EQ(cut.cycles + restored_rest.cycles, reference_result.cycles);

  std::filesystem::remove(path);
}

TEST(Checkpoint, VerifyElfMatchesRefusesRebuiltBinary) {
  const std::vector<std::uint8_t> elf = elf_from_asm(kBrkLoopSource);
  const std::string path = write_temp_elf("coyote_verify.elf", elf);
  const std::uint64_t hash = fnv1a64(elf.data(), elf.size());

  EXPECT_NO_THROW(verify_elf_matches(path, hash));
  try {
    verify_elf_matches(path, hash ^ 1);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("different build"),
              std::string::npos)
        << "message was: " << error.what();
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------ workload plumbing

TEST(Workload, ResumeLabelDistinguishesBinaries) {
  SimConfig kernel_config;
  kernel_config.workload.kernel = "axpy";
  kernel_config.workload.size = 64;
  kernel_config.workload.seed = 7;
  EXPECT_EQ(resume_label(kernel_config), "axpy size=64 seed=7");

  SimConfig elf_config;
  elf_config.workload.elf = fixture("hello.elf");
  const std::string label = resume_label(elf_config);
  EXPECT_EQ(label.rfind("elf:", 0), 0u) << label;
  EXPECT_NE(label.find("hello.elf#"), std::string::npos) << label;

  // A different binary at the same path must yield a different label.
  SimConfig other_config;
  other_config.workload.elf = fixture("tohost42.elf");
  EXPECT_NE(resume_label(elf_config), resume_label(other_config));
}

TEST(Workload, ElfTakesPrecedenceOverKernelKey) {
  SimConfig config;
  config.workload.kernel = "axpy";
  config.workload.elf = fixture("hello.elf");
  EXPECT_EQ(resolve_workload_info(config).kind, "elf");
}

TEST(Workload, ConfigIoRoundTripsWorkloadKeys) {
  SimConfig config;
  config.workload.kernel = "fft";
  config.workload.elf = "a/b/c.elf";
  config.workload.size = 48;
  config.workload.seed = 7;
  const SimConfig back = core::config_from_map(core::config_to_map(config));
  EXPECT_EQ(back.workload.kernel, "fft");
  EXPECT_EQ(back.workload.elf, "a/b/c.elf");
  EXPECT_EQ(back.workload.size, 48u);
  EXPECT_EQ(back.workload.seed, 7u);
}

// ----------------------------------------------------------------- sweep

TEST(Sweep, WorkloadElfAxisIsDeterministicAcrossJobs) {
  sweep::SweepSpec spec;
  spec.kernel = "elf-smoke";
  spec.base.set("topo.cores", "2");
  spec.base.set("topo.cores_per_tile", "2");
  spec.base.set("l2.banks_per_tile", "1");
  spec.base.set("mc.count", "1");
  spec.base.set("workload.elf", fixture("hello.elf"));
  spec.axes.push_back(sweep::axis_from_token("core.l1d_kb=16,32"));

  sweep::SweepEngine::Options serial;
  serial.jobs = 1;
  serial.progress = sweep::ProgressMode::kNone;
  sweep::SweepEngine::Options wide;
  wide.jobs = 4;
  wide.progress = sweep::ProgressMode::kNone;

  const std::string a = sweep::SweepEngine(serial).run(spec).to_json();
  const std::string b = sweep::SweepEngine(wide).run(spec).to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"all_exited\": true"), std::string::npos) << a;
}

}  // namespace
}  // namespace coyote::loader
