// Tests for the contended 2D-mesh NoC (noc.model=mesh): the MeshRouterNet
// unit model (XY routing, round-robin arbitration, credit backpressure,
// hand-computed hotspot delivery cycles, same-pair ordering), the
// crossbar-vs-mesh functional differential over every menu kernel and the
// committed ELF fixtures, the degenerate-mesh == hop-latency-oracle
// cycle-for-cycle equivalence, mesh determinism (batched/literal, sweep
// jobs counts, checkpoint restore, fault-campaign digests) and the
// config-surface negative paths for topo.mesh / noc.*.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "core/config_io.h"
#include "core/run_summary.h"
#include "core/simulator.h"
#include "fault/differential.h"
#include "fault/fault.h"
#include "kernels/program_menu.h"
#include "loader/workload.h"
#include "memhier/mesh_router.h"
#include "memhier/msg.h"
#include "memhier/noc.h"
#include "simfw/unit.h"
#include "sweep/sweep.h"

namespace coyote {
namespace {

using core::SimConfig;
using core::Simulator;

constexpr std::uint64_t kSeed = 9;
constexpr Cycle kBudget = 500'000'000;

// ======================================================= router unit model

/// Records (tag, delivery cycle) pairs in delivery order.
struct DeliveryLog {
  std::vector<std::pair<int, Cycle>> events;
  std::function<void()> at(simfw::Scheduler& sched, int tag) {
    return [this, &sched, tag] { events.emplace_back(tag, sched.now()); };
  }
};

memhier::MeshRouterNet::Config router_config(std::uint32_t width,
                                             std::uint32_t height,
                                             Cycle router_latency,
                                             Cycle hop_latency,
                                             std::uint64_t bandwidth,
                                             std::uint32_t buffer_flits) {
  memhier::MeshRouterNet::Config config;
  config.width = width;
  config.height = height;
  config.router_latency = router_latency;
  config.hop_latency = hop_latency;
  config.link_bandwidth = bandwidth;
  config.buffer_flits = buffer_flits;
  return config;
}

TEST(MeshRouter, XyRoutingTakesXThenYAndLandsOnTime) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  // Infinite bandwidth/buffers: pure routing, no contention.
  memhier::MeshRouterNet net(&sched, router_config(3, 3, 2, 3, 0, 0),
                             root.stats());
  DeliveryLog log;
  // node = y*3 + x. 0 -> 8 is (0,0) -> (2,2): E, E, S, S; manhattan 4.
  net.inject(0, 8, 1, 0, kInvalidCore, log.at(sched, 0));
  // 7 -> 3 is (1,2) -> (0,1): W, N; manhattan 2.
  net.inject(7, 3, 1, 0, kInvalidCore, log.at(sched, 1));
  sched.run_to_completion();
  ASSERT_EQ(log.events.size(), 2u);
  // delivery = inject + pre_delay + router_latency + hop_latency * hops.
  EXPECT_EQ(log.events[0], (std::pair<int, Cycle>{1, 2 + 3 * 2}));
  EXPECT_EQ(log.events[1], (std::pair<int, Cycle>{0, 2 + 3 * 4}));
  const auto flits = [&](const std::string& name) {
    return root.stats().find_counter(name).get();
  };
  // The XY path is visible in the per-link flit counters.
  EXPECT_EQ(flits("link0_e_flits"), 1u);
  EXPECT_EQ(flits("link1_e_flits"), 1u);
  EXPECT_EQ(flits("link2_s_flits"), 1u);
  EXPECT_EQ(flits("link5_s_flits"), 1u);
  EXPECT_EQ(flits("link7_w_flits"), 1u);
  EXPECT_EQ(flits("link6_n_flits"), 1u);
  // No YX leakage: the y-first alternative would have used these.
  EXPECT_EQ(flits("link0_s_flits"), 0u);
  EXPECT_EQ(flits("link7_n_flits"), 0u);
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.delivered(), 2u);
}

TEST(MeshRouter, RoundRobinAlternatesBetweenContendingInputPorts) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  // 3x1 chain, 1 flit/cycle links: streams from node 0 (arriving on the
  // west in-port of router 1) and node 1 (local port) contend for link
  // 1->2. Hand-computed: B0@2, then strict W/local alternation.
  memhier::MeshRouterNet net(&sched, router_config(3, 1, 1, 1, 1, 0),
                             root.stats());
  DeliveryLog log;
  for (int k = 0; k < 3; ++k) {
    net.inject(0, 2, 1, k, kInvalidCore, log.at(sched, 10 + k));  // A_k
    net.inject(1, 2, 1, k, kInvalidCore, log.at(sched, 20 + k));  // B_k
  }
  sched.run_to_completion();
  const std::vector<std::pair<int, Cycle>> expected = {
      {20, 2}, {10, 3}, {21, 4}, {11, 5}, {22, 6}, {12, 7}};
  EXPECT_EQ(log.events, expected);
  EXPECT_TRUE(net.quiescent());
}

TEST(MeshRouter, CreditBackpressureStallsThroughAFullBuffer) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  // 3x1 chain, 2-flit messages into 2-flit buffers: each input buffer holds
  // exactly one message, so link 0->1 can only re-grant once its previous
  // message has won link 1->2 and freed the west-in buffer at router 1.
  memhier::MeshRouterNet net(&sched, router_config(3, 1, 1, 1, 1, 2),
                             root.stats());
  DeliveryLog log;
  // Injection (= seq) order: A0 B0 A1 B1 A2 B2; A from node 0, B from 1.
  for (int k = 0; k < 3; ++k) {
    net.inject(0, 2, 2, k, kInvalidCore, log.at(sched, 10 + k));
    net.inject(1, 2, 2, k, kInvalidCore, log.at(sched, 20 + k));
  }
  sched.run_to_completion();
  const std::vector<std::pair<int, Cycle>> expected = {
      {20, 2}, {10, 4}, {21, 6}, {11, 8}, {22, 10}, {12, 12}};
  EXPECT_EQ(log.events, expected);
  // Hand-computed queue/wait accounting for the same schedule: A2 alone
  // stalls 4 cycles on the full west-in buffer (cycles 3..7).
  EXPECT_EQ(root.stats().find_counter("wait_cycles").get(), 21u);
  EXPECT_EQ(root.stats().find_counter("link0_e_peak_queue_flits").get(), 4u);
  EXPECT_EQ(root.stats().find_counter("link1_e_peak_queue_flits").get(), 6u);
  EXPECT_EQ(root.stats().find_counter("peak_queue_flits").get(), 6u);
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.delivered(), 6u);
}

TEST(MeshRouter, ManyToOneHotspotDeliversAtHandComputedCycles) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  // 2x2 mesh, everyone sends to node 3 in two waves. XY funnels node 0's
  // messages through router 1, where they contend with node 1's locals.
  memhier::MeshRouterNet net(&sched, router_config(2, 2, 1, 1, 1, 0),
                             root.stats());
  DeliveryLog log;
  int tag = 0;
  for (const Cycle wave : {Cycle{0}, Cycle{1}}) {
    for (const std::uint32_t src : {0u, 1u, 2u}) {
      net.inject(src, 3, 1, wave, kInvalidCore, log.at(sched, tag++));
    }
  }
  sched.run_to_completion();
  // M0..M2 = wave 0 from nodes 0,1,2; M3..M5 = wave 1. Same-cycle
  // deliveries (M1,M2 and M0,M5) drain in injection order.
  const std::vector<std::pair<int, Cycle>> expected = {
      {1, 2}, {2, 2}, {0, 3}, {5, 3}, {4, 4}, {3, 5}};
  EXPECT_EQ(log.events, expected);
  // Only M3 and M4 ever waited for the hot link (one cycle each).
  EXPECT_EQ(root.stats().find_counter("wait_cycles").get(), 2u);
  EXPECT_EQ(net.delivered(), 6u);
}

TEST(MeshRouter, SameSourceDestinationPairNeverReorders) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  memhier::MeshRouterNet net(&sched, router_config(2, 2, 1, 1, 1, 4),
                             root.stats());
  DeliveryLog log;
  // Watched stream: node 0 -> 3 with varying sizes and injection times,
  // racing cross traffic from nodes 1 and 2 into the same destination.
  for (int k = 0; k < 12; ++k) {
    net.inject(0, 3, static_cast<std::uint32_t>(k % 3 + 1), k / 3,
               kInvalidCore, log.at(sched, 100 + k));
  }
  for (int k = 0; k < 8; ++k) {
    net.inject(1, 3, static_cast<std::uint32_t>(k % 2 + 1), k / 2,
               kInvalidCore, log.at(sched, 200 + k));
    net.inject(2, 3, static_cast<std::uint32_t>(k % 2 + 1), k / 2,
               kInvalidCore, log.at(sched, 300 + k));
  }
  sched.run_to_completion();
  ASSERT_EQ(log.events.size(), 28u);
  EXPECT_EQ(net.delivered(), 28u);
  // Per-stream delivery order must equal injection order: XY gives one
  // path per pair, queues are FIFOs, grants are message-granular and the
  // drain sorts same-cycle ejections by injection sequence.
  for (const int base : {100, 200, 300}) {
    int last = -1;
    for (const auto& [tag, cycle] : log.events) {
      if (tag < base || tag >= base + 100) continue;
      EXPECT_GT(tag, last) << "stream " << base << " reordered";
      last = tag;
    }
  }
}

TEST(MeshRouter, InfiniteResourcesReproduceTheHopLatencyOracle) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  memhier::MeshRouterNet net(&sched, router_config(4, 4, 2, 1, 0, 0),
                             root.stats());
  DeliveryLog log;
  int tag = 0;
  for (std::uint32_t src = 0; src < 16; ++src) {
    for (const std::uint32_t dst : {0u, 5u, 15u}) {
      net.inject(src, dst, 3, 0, kInvalidCore, log.at(sched, tag++));
    }
  }
  sched.run_to_completion();
  ASSERT_EQ(log.events.size(), 48u);
  tag = 0;
  for (std::uint32_t src = 0; src < 16; ++src) {
    for (const std::uint32_t dst : {0u, 5u, 15u}) {
      const Cycle manhattan =
          static_cast<Cycle>((src % 4 > dst % 4 ? src % 4 - dst % 4
                                                : dst % 4 - src % 4) +
                             (src / 4 > dst / 4 ? src / 4 - dst / 4
                                                : dst / 4 - src / 4));
      bool found = false;
      for (const auto& [t, cycle] : log.events) {
        if (t != tag) continue;
        EXPECT_EQ(cycle, 2 + manhattan) << "src " << src << " dst " << dst;
        found = true;
      }
      EXPECT_TRUE(found) << tag;
      ++tag;
    }
  }
  // Nothing ever waited: the degenerate mesh is contention-free.
  EXPECT_EQ(root.stats().find_counter("wait_cycles").get(), 0u);
}

TEST(MeshRouter, SaveStateRequiresQuiescence) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  memhier::MeshRouterNet net(&sched, router_config(2, 2, 1, 1, 1, 0),
                             root.stats());
  net.inject(0, 3, 1, 0, kInvalidCore, [] {});
  std::ostringstream sink;
  BinWriter w(sink);
  EXPECT_THROW(net.save_state(w), SimError);
  sched.run_to_completion();
  EXPECT_TRUE(net.quiescent());
  EXPECT_NO_THROW(net.save_state(w));
}

TEST(MeshRouter, ResidualStateRoundTripsThroughSaveLoad) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  const auto config = router_config(3, 2, 1, 1, 1, 4);
  memhier::MeshRouterNet net(&sched, config, root.stats());
  for (int k = 0; k < 10; ++k) {
    net.inject(static_cast<std::uint32_t>(k % 5), 5, 2, k / 2, kInvalidCore,
               [] {});
  }
  sched.run_to_completion();
  ASSERT_TRUE(net.quiescent());
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  {
    BinWriter w(blob);
    net.save_state(w);
  }
  // Restoring into a fresh net and re-saving must reproduce the bytes:
  // next-free cycles and round-robin pointers survive exactly.
  simfw::Scheduler sched2;
  simfw::Unit root2(&sched2, "top");
  memhier::MeshRouterNet restored(&sched2, config, root2.stats());
  {
    BinReader r(blob);
    restored.load_state(r);
  }
  std::ostringstream again;
  {
    BinWriter w(again);
    restored.save_state(w);
  }
  EXPECT_EQ(blob.str(), again.str());
}

TEST(MeshRouter, FlitMathMatchesMessageSizes) {
  EXPECT_EQ(memhier::flits_for(1, 16), 1u);
  EXPECT_EQ(memhier::flits_for(16, 16), 1u);
  EXPECT_EQ(memhier::flits_for(17, 16), 2u);
  EXPECT_EQ(memhier::flits_for(80, 16), 5u);
  EXPECT_EQ(memhier::flits_for(0, 16), 1u);  // header-only floor
}

// ================================================ config negative paths --

TEST(MeshConfig, MalformedTopoMeshGeometriesAreRejected) {
  for (const char* bad : {"4", "x4", "4x", "0x4", "4x0", "4xx4", "4x4x4",
                          "axb", " 4x4", "4x4 ", "-1x4"}) {
    simfw::ConfigMap map;
    map.set("topo.mesh", bad);
    EXPECT_THROW(core::config_from_map(map), ConfigError)
        << "topo.mesh=" << bad << " accepted";
  }
  // The error names the key and shows the expected shape.
  try {
    simfw::ConfigMap map;
    map.set("topo.mesh", "4x");
    core::config_from_map(map);
    FAIL() << "malformed topo.mesh accepted";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("topo.mesh"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("WxH"), std::string::npos)
        << error.what();
  }
}

TEST(MeshConfig, UnseatableMeshGeometryIsActionablyRejected) {
  simfw::ConfigMap map;
  map.set("noc.model", "mesh");
  map.set("topo.cores", "8");
  map.set("topo.cores_per_tile", "2");  // 4 tiles
  map.set("mc.count", "2");             // + 2 MCs = 6 nodes
  map.set("topo.mesh", "2x2");          // only 4 seats
  try {
    core::config_from_map(map);
    FAIL() << "unseatable topo.mesh accepted";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("seats"), std::string::npos) << what;
    EXPECT_NE(what.find("2x2"), std::string::npos) << what;
    EXPECT_NE(what.find("topo.mesh"), std::string::npos) << what;
  }
}

TEST(MeshConfig, ContendedMeshKnobsValidateUnderMeshModel) {
  const auto reject = [](const char* key, const char* value) {
    simfw::ConfigMap map;
    map.set("noc.model", "mesh");
    map.set(key, value);
    EXPECT_THROW(core::config_from_map(map), ConfigError)
        << key << "=" << value;
  };
  reject("noc.flit_bytes", "0");
  reject("noc.mesh_router_latency", "0");
  // A 64-byte line + 16-byte header needs 5 flits of 16 bytes; a 4-flit
  // buffer can never hold a data message and would wedge the mesh.
  reject("noc.buffer_flits", "4");
  reject("noc.mesh_width", "0");
  reject("noc.flit_bytes", "banana");
  reject("noc.link_bandwidth", "");
  // buffer_flits=0 means infinite and is always acceptable.
  simfw::ConfigMap ok;
  ok.set("noc.model", "mesh");
  ok.set("noc.buffer_flits", "0");
  EXPECT_NO_THROW(core::config_from_map(ok));
}

TEST(MeshConfig, NocConstructorRejectsUnseatableGeometry) {
  simfw::Scheduler sched;
  simfw::Unit root(&sched, "top");
  memhier::NocConfig config;
  config.model = memhier::NocModel::kMesh2D;
  config.mesh_width = 2;
  config.mesh_height = 1;  // 2 seats for 4 tiles + 1 MC
  EXPECT_THROW(memhier::Noc(&root, config, 4, 1), ConfigError);
}

TEST(MeshConfig, MeshKeysRoundTripThroughConfigIo) {
  simfw::ConfigMap map;
  map.set("noc.model", "mesh");
  map.set("topo.mesh", "3x2");
  map.set("noc.link_bandwidth", "2");
  map.set("noc.buffer_flits", "16");
  map.set("noc.flit_bytes", "32");
  map.set("noc.mesh_router_latency", "3");
  const SimConfig parsed = core::config_from_map(map);
  EXPECT_EQ(parsed.noc.model, memhier::NocModel::kMesh2D);
  EXPECT_EQ(parsed.noc.mesh_width, 3u);
  EXPECT_EQ(parsed.noc.mesh_height, 2u);
  const simfw::ConfigMap emitted = core::config_to_map(parsed);
  EXPECT_EQ(emitted.get("noc.model"), "mesh");
  EXPECT_EQ(emitted.get("topo.mesh"), "3x2");
  EXPECT_EQ(emitted.get("noc.link_bandwidth"), "2");
  const SimConfig reparsed = core::config_from_map(emitted);
  EXPECT_EQ(core::config_to_map(reparsed).values(), emitted.values());
}

// ============================================== functional differential --

// Small problem sizes so the kernel matrix stays fast (same table as the
// checkpoint/dbb differentials).
std::uint64_t test_size(const std::string& kernel) {
  if (kernel.rfind("matmul", 0) == 0) return 16;
  if (kernel.rfind("spmv", 0) == 0) return 48;
  if (kernel == "stencil_sync") return 512;
  if (kernel.rfind("stencil2d", 0) == 0) return 24;
  if (kernel.rfind("stencil", 0) == 0) return 2048;
  if (kernel == "fft") return 128;
  return 1024;  // histogram, axpy, dot
}

SimConfig small_config() {
  SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 2;  // 2 tiles + 2 MCs = 4 mesh nodes
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  return config;
}

SimConfig mesh_config() {
  SimConfig config = small_config();
  config.noc.model = memhier::NocModel::kMesh2D;
  config.noc.mesh_width = 2;  // 2x2
  return config;
}

struct Outcome {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::vector<std::int64_t> exit_codes;
  std::string report;
};

Outcome run_named(const SimConfig& config, const std::string& kernel) {
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      kernel, config.num_cores, test_size(kernel), kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited) << kernel;
  // Note: the mesh may legitimately hold in-flight messages here — run()
  // stops the moment every core exits, not at a quiesce point. Quiescence
  // is asserted where it is guaranteed (run_to_quiesce checkpoint cuts).
  Outcome out;
  out.cycles = result.cycles;
  out.instructions = result.instructions;
  out.exit_codes = result.exit_codes;
  out.report = sim.report(simfw::ReportFormat::kText);
  return out;
}

void expect_identical(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.exit_codes, b.exit_codes);
  EXPECT_EQ(a.report, b.report);
}

TEST(MeshDifferential, EveryMenuKernelIsFunctionallyEqualToCrossbar) {
  // The mesh changes timing, never results: every self-checking kernel
  // must exit with the same (passing) status codes under both networks.
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    SCOPED_TRACE(info.name);
    const Outcome crossbar = run_named(small_config(), info.name);
    const Outcome mesh = run_named(mesh_config(), info.name);
    EXPECT_EQ(crossbar.exit_codes, mesh.exit_codes);
    for (const std::int64_t code : mesh.exit_codes) EXPECT_EQ(code, 0);
  }
}

TEST(MeshDifferential, ElfFixturesAreFunctionallyEqualToCrossbar) {
  for (const char* name : {"hello.elf", "syscalls.elf", "tohost42.elf"}) {
    SCOPED_TRACE(name);
    const auto run_fixture = [&](bool mesh) {
      SimConfig config;
      config.num_cores = 2;
      config.cores_per_tile = 2;  // 1 tile + 1 MC = 2 mesh nodes
      config.l2_banks_per_tile = 2;
      config.num_mcs = 1;
      if (mesh) {
        config.noc.model = memhier::NocModel::kMesh2D;
        config.noc.mesh_width = 2;  // 2x1
      }
      config.workload.elf = std::string(COYOTE_FIXTURE_DIR) + "/" + name;
      Simulator sim(config);
      loader::load_workload(sim);
      const auto result = sim.run(kBudget);
      EXPECT_TRUE(result.all_exited) << name;
      return result.exit_codes;
    };
    EXPECT_EQ(run_fixture(false), run_fixture(true));
  }
}

// The acceptance pin: with infinite buffers and bandwidth the contended
// mesh must be indistinguishable — cycle-for-cycle, counter-for-counter
// (modulo the mesh-only link statistics), trace-byte-for-trace-byte —
// from the uncontended hop-latency oracle it replaces.
SimConfig degenerate_mesh_config() {
  SimConfig config = mesh_config();
  config.noc.link_bandwidth = 0;  // infinite
  config.noc.buffer_flits = 0;    // infinite
  return config;
}

SimConfig oracle_config() {
  SimConfig config = small_config();
  config.noc.model = memhier::NocModel::kMeshOracle;
  config.noc.mesh_width = 2;
  return config;
}

TEST(MeshDifferential, DegenerateMeshMatchesOracleCycleForCycle) {
  for (const char* kernel : {"matmul_scalar", "spmv_scalar", "histogram"}) {
    for (const bool mesi : {false, true}) {
      SCOPED_TRACE(std::string(kernel) + (mesi ? " mesi" : " none"));
      SimConfig mesh = degenerate_mesh_config();
      SimConfig oracle = oracle_config();
      if (mesi) {
        mesh.coherence = core::Coherence::kMesi;
        oracle.coherence = core::Coherence::kMesi;
      }
      const Outcome a = run_named(oracle, kernel);
      const Outcome b = run_named(mesh, kernel);
      EXPECT_EQ(a.cycles, b.cycles);
      EXPECT_EQ(a.instructions, b.instructions);
      EXPECT_EQ(a.exit_codes, b.exit_codes);
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(MeshDifferential, DegenerateMeshTraceIsByteIdenticalToOracle) {
  const std::string dir = ::testing::TempDir();
  const auto run_traced = [&](SimConfig config, const std::string& base) {
    config.enable_trace = true;
    config.trace_basename = dir + base;
    (void)run_named(config, "matmul_scalar");
  };
  run_traced(oracle_config(), "mesh_oracle");
  run_traced(degenerate_mesh_config(), "mesh_degenerate");
  // Identical event streams: same misses, same fills, same timestamps —
  // and no congestion events, because nothing ever waits.
  EXPECT_EQ(slurp(dir + "mesh_oracle.prv"), slurp(dir + "mesh_degenerate.prv"));
}

// ======================================================== determinism ----

TEST(MeshDeterminism, RepeatedRunsAreIdentical) {
  expect_identical(run_named(mesh_config(), "matmul_scalar"),
                   run_named(mesh_config(), "matmul_scalar"));
}

TEST(MeshDeterminism, BatchedMatchesLiteralLoop) {
  for (const bool mesi : {false, true}) {
    SCOPED_TRACE(mesi ? "mesi" : "none");
    SimConfig batched = mesh_config();
    SimConfig literal = mesh_config();
    if (mesi) {
      batched.coherence = core::Coherence::kMesi;
      literal.coherence = core::Coherence::kMesi;
    }
    literal.batched_stepping = false;
    expect_identical(run_named(batched, "matmul_scalar"),
                     run_named(literal, "matmul_scalar"));
    expect_identical(run_named(batched, "spmv_scalar"),
                     run_named(literal, "spmv_scalar"));
  }
}

TEST(MeshDeterminism, SweepIsIdenticalAcrossJobCounts) {
  const auto report_json = [](unsigned jobs) {
    sweep::SweepSpec spec;
    spec.kernel = "matmul_scalar";
    spec.size = 12;
    spec.seed = 5;
    spec.base.set("topo.cores", "4");
    spec.base.set("topo.cores_per_tile", "2");
    spec.base.set("mc.count", "2");
    spec.base.set("noc.mesh_width", "2");
    spec.axes.push_back({"noc.model", {"crossbar", "mesh-oracle", "mesh"}});
    spec.axes.push_back({"noc.link_bandwidth", {"1", "2"}});
    sweep::SweepEngine::Options options;
    options.jobs = jobs;
    const auto report = sweep::SweepEngine(options).run(spec);
    EXPECT_EQ(report.num_ok(), report.points.size());
    return report.to_json(/*include_host_timing=*/false);
  };
  EXPECT_EQ(report_json(1), report_json(4));
}

TEST(MeshDeterminism, CheckpointRestoreIsCycleAndTraceIdentical) {
  const std::string dir = ::testing::TempDir();
  const std::string kernel = "matmul_scalar";
  const auto traced_mesh = [&](const std::string& base) {
    SimConfig config = mesh_config();
    config.enable_trace = true;
    config.trace_basename = dir + base;
    return config;
  };
  const auto collect = [](Simulator& sim, const core::RunResult& result) {
    Outcome out;
    out.cycles = sim.scheduler().now();
    out.instructions = sim.root()
                           .find("orchestrator")
                           ->stats()
                           .find_counter("instructions")
                           .get();
    out.exit_codes = result.exit_codes;
    out.report = sim.report(simfw::ReportFormat::kText);
    return out;
  };
  // Uninterrupted leg.
  Outcome full;
  {
    const SimConfig config = traced_mesh("mesh_ckpt_full");
    Simulator sim(config);
    const auto program = kernels::build_named_kernel(
        kernel, config.num_cores, test_size(kernel), kSeed, sim.memory());
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(kBudget);
    ASSERT_TRUE(result.all_exited);
    full = collect(sim, result);
  }
  // Split leg: cut at the first quiesce point at/after a midpoint, restore
  // into a fresh simulator and continue. In-flight router state is covered
  // by the quiesce invariant; residual pacing state rides the checkpoint.
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  bool cut_ok = false;
  for (const Cycle midpoint : {full.cycles / 2, full.cycles / 4,
                               full.cycles / 8, full.cycles / 16, Cycle{1}}) {
    const SimConfig config = traced_mesh("mesh_ckpt_split");
    Simulator first(config);
    const auto program = kernels::build_named_kernel(
        kernel, config.num_cores, test_size(kernel), kSeed, first.memory());
    first.load_program(program.base, program.words, program.entry);
    const auto cut =
        first.run_to_quiesce(std::max<Cycle>(midpoint, 1), kBudget);
    if (!cut.quiesced) continue;
    EXPECT_TRUE(first.noc().quiescent());
    blob.str(std::string());
    ckpt::write_checkpoint(first, kernel, blob);
    cut_ok = true;
    break;
  }
  ASSERT_TRUE(cut_ok) << "no quiesce point found under the mesh";
  ckpt::CheckpointMeta meta;
  auto restored = ckpt::restore_checkpoint(blob, &meta);
  EXPECT_EQ(meta.version, ckpt::kCheckpointVersion);
  EXPECT_EQ(meta.config.get("noc.model"), "mesh");
  const auto result = restored->run(kBudget);
  ASSERT_TRUE(result.all_exited);
  const Outcome split = collect(*restored, result);
  EXPECT_EQ(full.cycles, split.cycles);
  EXPECT_EQ(full.instructions, split.instructions);
  EXPECT_EQ(full.exit_codes, split.exit_codes);
  EXPECT_EQ(slurp(dir + "mesh_ckpt_full.prv"),
            slurp(dir + "mesh_ckpt_split.prv"));
}

TEST(MeshDeterminism, FaultCampaignDigestsAreReproducible) {
  // A 50-injection campaign under the contended mesh: the same plan run
  // twice must classify identically with equal end-state digests, and the
  // drop/retransmit machinery must ride the mesh without wedging.
  SimConfig config = mesh_config();
  config.fault.enable = true;
  config.fault.seed = 21;
  config.fault.count = 50;
  config.fault.targets = "mem+reg+noc+mc";
  config.fault.window_end = 50'000;
  const fault::FaultPlan plan = fault::FaultPlan::generate(config);
  ASSERT_EQ(plan.events.size(), 50u);
  const auto build = [&] {
    auto sim = std::make_unique<Simulator>(config);
    const auto program = kernels::build_named_kernel(
        "matmul_scalar", config.num_cores, 16, kSeed, sim->memory());
    sim->load_program(program.base, program.words, program.entry);
    return sim;
  };
  auto golden = build();
  const std::uint64_t digest = fault::run_golden(*golden, kBudget);
  auto first = build();
  const fault::InjectionResult a =
      fault::run_injected(*first, plan, kBudget, digest);
  auto second = build();
  const fault::InjectionResult b =
      fault::run_injected(*second, plan, kBudget, digest);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.detail, b.detail);
}

// ==================================================== summary & stats ----

TEST(MeshSummary, MeshRunsEmitSchemaV4WithNocBlock) {
  const SimConfig config = mesh_config();
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 256, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(kBudget);
  ASSERT_TRUE(result.all_exited);
  const std::string json =
      core::run_summary_json("axpy", sim, result, /*host_timing=*/false);
  EXPECT_NE(json.find("\"schema_version\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"noc\": {"), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"mesh\""), std::string::npos);
  EXPECT_NE(json.find("\"delivered\":"), std::string::npos);
  // Every transmitted message was delivered and the network drained.
  const auto& stats = sim.root().find("noc")->stats();
  EXPECT_GT(stats.find_counter("delivered").get(), 0u);
  EXPECT_EQ(stats.find_counter("delivered").get(),
            stats.find_counter("messages").get());
  EXPECT_TRUE(sim.noc().quiescent());
}

TEST(MeshSummary, CrossbarRunsKeepSchemaV3WithoutNocBlock) {
  const SimConfig config = small_config();
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 256, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(kBudget);
  ASSERT_TRUE(result.all_exited);
  const std::string json =
      core::run_summary_json("axpy", sim, result, /*host_timing=*/false);
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"noc\": {"), std::string::npos) << json;
}

}  // namespace
}  // namespace coyote
