// Simulator facade: configuration validation, topology construction,
// reporting, and end-to-end kernels through the public API.
#include "core/simulator.h"

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "testutil.h"

namespace coyote::core {
namespace {

using test::emit_exit;
using namespace coyote::isa;

TEST(SimConfig, Validation) {
  SimConfig config;
  config.num_cores = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.core.line_bytes = 64;
  config.l2_bank.line_bytes = 128;
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.interleave_quantum = 0;
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.mc_interleave_bytes = 32;  // below line size
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  EXPECT_NO_THROW(config.validate());
}

TEST(SimConfig, TopologyDerivation) {
  SimConfig config;
  config.num_cores = 20;
  config.cores_per_tile = 8;
  config.l2_banks_per_tile = 2;
  EXPECT_EQ(config.num_tiles(), 3u);
  EXPECT_EQ(config.num_l2_banks(), 6u);
}

TEST(Simulator, BuildsRequestedTopology) {
  SimConfig config;
  config.num_cores = 16;
  config.cores_per_tile = 8;
  config.l2_banks_per_tile = 4;
  config.num_mcs = 3;
  Simulator sim(config);
  EXPECT_EQ(sim.num_cores(), 16u);
  EXPECT_EQ(sim.num_l2_banks(), 8u);
  EXPECT_NE(sim.root().find("tile0"), nullptr);
  EXPECT_NE(sim.root().find("tile1"), nullptr);
  EXPECT_EQ(sim.root().find("tile2"), nullptr);
  EXPECT_NE(sim.root().find("tile0.l2bank0"), nullptr);
  EXPECT_NE(sim.root().find("tile1.l2bank7"), nullptr);
  EXPECT_NE(sim.root().find("mc2"), nullptr);
  EXPECT_NE(sim.root().find("noc"), nullptr);
  EXPECT_NE(sim.root().find("orchestrator"), nullptr);
  EXPECT_NE(sim.root().find("tile0.core0"), nullptr);
  EXPECT_NE(sim.root().find("tile1.core15"), nullptr);
}

TEST(Simulator, ReportFormatsRender) {
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 2;
  Simulator sim(config);
  Assembler as(0x1000);
  emit_exit(as);
  sim.load_program(0x1000, as.finish(), 0x1000);
  ASSERT_TRUE(sim.run(100000).all_exited);

  const std::string text = sim.report(simfw::ReportFormat::kText);
  EXPECT_NE(text.find("top.orchestrator:"), std::string::npos);
  EXPECT_NE(text.find("instructions"), std::string::npos);
  const std::string csv = sim.report(simfw::ReportFormat::kCsv);
  EXPECT_NE(csv.find("top.tile0.core0,instructions,statistic"),
            std::string::npos);
  const std::string json = sim.report(simfw::ReportFormat::kJson);
  EXPECT_NE(json.find("\"top.mc0\""), std::string::npos);
}

TEST(Simulator, RunResultMipsComputed) {
  SimConfig config;
  config.num_cores = 1;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(16, 2);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 1);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(100'000'000);
  ASSERT_TRUE(result.all_exited);
  EXPECT_GT(result.instructions, 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.mips, 0.0);
}

TEST(Simulator, VlenIsConfigurable) {
  SimConfig config;
  config.num_cores = 1;
  config.core.vector.vlen_bits = 1024;
  Simulator sim(config);
  EXPECT_EQ(sim.core(0).hart().vlenb(), 128u);
}

TEST(Simulator, ReloadAllowsBackToBackRuns) {
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 2;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(8, 2);
  const auto program = kernels::build_matmul_scalar(workload, 2);

  workload.install(sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  const auto first = workload.result(sim.memory());

  // Reinstall and rerun on the same simulator instance.
  workload.install(sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  EXPECT_EQ(first, workload.result(sim.memory()));
}

TEST(Simulator, DramMcModeRunsEndToEnd) {
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 2;
  config.mc.model = memhier::McModel::kDramRowBuffer;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(12, 8);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 2);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  const auto row_hits = sim.mc(0).stats().find_counter("row_hits").get();
  const auto row_misses = sim.mc(0).stats().find_counter("row_misses").get();
  EXPECT_GT(row_hits + row_misses, 0u);
}

TEST(Simulator, MeshNocRunsEndToEnd) {
  SimConfig config;
  config.num_cores = 8;
  config.cores_per_tile = 2;  // 4 tiles
  config.noc.model = memhier::NocModel::kMesh2D;
  config.noc.mesh_width = 2;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(16, 4);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  EXPECT_GT(sim.noc().stats().find_counter("hops").get(), 0u);
}

TEST(Simulator, MeshNocIsSlowerThanZeroLatencyCrossbar) {
  const auto cycles_with = [](memhier::NocConfig noc) {
    SimConfig config;
    config.num_cores = 4;
    config.cores_per_tile = 1;  // 4 tiles: distance matters
    config.noc = noc;
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(16, 4);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(100'000'000);
    EXPECT_TRUE(result.all_exited);
    return result.cycles;
  };
  memhier::NocConfig fast;
  fast.crossbar_latency = 0;
  memhier::NocConfig slow;
  slow.crossbar_latency = 50;
  EXPECT_LT(cycles_with(fast), cycles_with(slow));
}

}  // namespace
}  // namespace coyote::core
