#include "memhier/mapping.h"

#include <gtest/gtest.h>

#include <vector>

namespace coyote::memhier {
namespace {

TEST(Mapping, SetInterleaveRotatesPerLine) {
  BankMapper mapper(MappingPolicy::kSetInterleave, 4, 64);
  EXPECT_EQ(mapper.bank_of(0x0000), 0u);
  EXPECT_EQ(mapper.bank_of(0x0040), 1u);
  EXPECT_EQ(mapper.bank_of(0x0080), 2u);
  EXPECT_EQ(mapper.bank_of(0x00C0), 3u);
  EXPECT_EQ(mapper.bank_of(0x0100), 0u);
}

TEST(Mapping, PageToBankKeepsPagesTogether) {
  BankMapper mapper(MappingPolicy::kPageToBank, 4, 64, 4096);
  // Every line of page 0 lands in bank 0.
  for (Addr line = 0; line < 4096; line += 64) {
    EXPECT_EQ(mapper.bank_of(line), 0u);
  }
  EXPECT_EQ(mapper.bank_of(4096), 1u);
  EXPECT_EQ(mapper.bank_of(2 * 4096), 2u);
  EXPECT_EQ(mapper.bank_of(4 * 4096), 0u);
}

TEST(Mapping, NonPow2BankCount) {
  BankMapper mapper(MappingPolicy::kSetInterleave, 3, 64);
  std::vector<int> hits(3, 0);
  for (Addr line = 0; line < 64 * 300; line += 64) {
    ++hits[mapper.bank_of(line)];
  }
  EXPECT_EQ(hits[0], 100);
  EXPECT_EQ(hits[1], 100);
  EXPECT_EQ(hits[2], 100);
}

TEST(Mapping, ZeroBanksRejected) {
  EXPECT_THROW(BankMapper(MappingPolicy::kSetInterleave, 0, 64), ConfigError);
  EXPECT_THROW(McMapper(0, 4096), ConfigError);
}

TEST(Mapping, PolicyNamesRoundTrip) {
  EXPECT_EQ(mapping_policy_from_string("page-to-bank"),
            MappingPolicy::kPageToBank);
  EXPECT_EQ(mapping_policy_from_string("set-interleave"),
            MappingPolicy::kSetInterleave);
  EXPECT_THROW(mapping_policy_from_string("bogus"), ConfigError);
  EXPECT_STREQ(mapping_policy_name(MappingPolicy::kPageToBank),
               "page-to-bank");
}

TEST(Mapping, McInterleaveGranularity) {
  McMapper mapper(2, 4096);
  EXPECT_EQ(mapper.mc_of(0), 0u);
  EXPECT_EQ(mapper.mc_of(4095), 0u);
  EXPECT_EQ(mapper.mc_of(4096), 1u);
  EXPECT_EQ(mapper.mc_of(8192), 0u);
}

// Property: both policies spread a dense sequential scan evenly.
TEST(Mapping, PoliciesBalanceSequentialTraffic) {
  for (const auto policy :
       {MappingPolicy::kPageToBank, MappingPolicy::kSetInterleave}) {
    BankMapper mapper(policy, 8, 64, 4096);
    std::vector<std::uint64_t> per_bank(8, 0);
    for (Addr addr = 0; addr < 8 * 64 * 4096; addr += 64) {
      ++per_bank[mapper.bank_of(addr)];
    }
    for (const auto count : per_bank) {
      EXPECT_EQ(count, per_bank[0]) << mapping_policy_name(policy);
    }
  }
}

}  // namespace
}  // namespace coyote::memhier
