#include "simfw/params.h"

#include <gtest/gtest.h>

namespace coyote::simfw {
namespace {

TEST(Parameter, TypedDefaultsAndSet) {
  Parameter size("size_kb", std::uint64_t{512}, "L2 size");
  EXPECT_EQ(size.as<std::uint64_t>(), 512u);
  EXPECT_TRUE(size.is_default());
  size.set(std::uint64_t{1024});
  EXPECT_EQ(size.as<std::uint64_t>(), 1024u);
  EXPECT_FALSE(size.is_default());
}

TEST(Parameter, TypeMismatchThrows) {
  Parameter flag("flag", true, "");
  EXPECT_THROW(flag.set(std::int64_t{1}), ConfigError);
  EXPECT_THROW(flag.as<double>(), ConfigError);
}

TEST(Parameter, ValidatorRejects) {
  Parameter ways("ways", std::uint64_t{8}, "",
                 [](const Parameter::Value& value) {
                   return std::get<std::uint64_t>(value) > 0;
                 });
  EXPECT_THROW(ways.set(std::uint64_t{0}), ConfigError);
  ways.set(std::uint64_t{4});
  EXPECT_EQ(ways.as<std::uint64_t>(), 4u);
}

TEST(Parameter, ParseFromStringPerType) {
  Parameter flag("b", false, "");
  flag.set_from_string("true");
  EXPECT_TRUE(flag.as<bool>());
  flag.set_from_string("0");
  EXPECT_FALSE(flag.as<bool>());
  EXPECT_THROW(flag.set_from_string("yes"), ConfigError);

  Parameter count("i", std::int64_t{0}, "");
  count.set_from_string("-42");
  EXPECT_EQ(count.as<std::int64_t>(), -42);
  count.set_from_string("0x10");
  EXPECT_EQ(count.as<std::int64_t>(), 16);
  EXPECT_THROW(count.set_from_string("zzz"), ConfigError);

  Parameter ratio("d", 1.5, "");
  ratio.set_from_string("2.25");
  EXPECT_DOUBLE_EQ(ratio.as<double>(), 2.25);

  Parameter name("s", std::string("abc"), "");
  name.set_from_string("hello");
  EXPECT_EQ(name.as<std::string>(), "hello");
}

TEST(Parameter, ToString) {
  EXPECT_EQ(Parameter("a", true, "").to_string(), "true");
  EXPECT_EQ(Parameter("a", std::int64_t{-3}, "").to_string(), "-3");
  EXPECT_EQ(Parameter("a", std::uint64_t{7}, "").to_string(), "7");
  EXPECT_EQ(Parameter("a", std::string("xy"), "").to_string(), "xy");
}

TEST(ParameterSet, AddGetHas) {
  ParameterSet params;
  params.add("size", std::uint64_t{64}, "");
  params.add("policy", std::string("lru"), "");
  EXPECT_TRUE(params.has("size"));
  EXPECT_FALSE(params.has("absent"));
  EXPECT_EQ(params.as<std::string>("policy"), "lru");
  EXPECT_THROW(params.get("absent"), ConfigError);
  EXPECT_THROW(params.add("size", std::uint64_t{1}, ""), ConfigError);
}

TEST(ConfigMap, TokenParsing) {
  ConfigMap config;
  config.set_from_token("l2.size_kb=1024");
  EXPECT_TRUE(config.has("l2.size_kb"));
  EXPECT_EQ(config.get("l2.size_kb"), "1024");
  EXPECT_THROW(config.set_from_token("novalue"), ConfigError);
  EXPECT_THROW(config.set_from_token("=x"), ConfigError);
}

TEST(ConfigMap, ApplyPrefix) {
  ParameterSet params;
  params.add("size_kb", std::uint64_t{256}, "");
  params.add("ways", std::uint64_t{8}, "");
  ConfigMap config;
  config.set("l2.size_kb", "512");
  config.set("noc.latency", "9");  // different prefix: ignored
  EXPECT_EQ(config.apply("l2", params), 1u);
  EXPECT_EQ(params.as<std::uint64_t>("size_kb"), 512u);
  EXPECT_EQ(params.as<std::uint64_t>("ways"), 8u);
}

TEST(ConfigMap, ApplyUnknownKeyThrows) {
  ParameterSet params;
  params.add("size_kb", std::uint64_t{256}, "");
  ConfigMap config;
  config.set("l2.sizekb", "512");  // typo
  EXPECT_THROW(config.apply("l2", params), ConfigError);
}

}  // namespace
}  // namespace coyote::simfw
