// Tests for the checkpoint/restore + fast-forward sampling subsystem
// (src/ckpt). The load-bearing property is bit-identity: a run that is cut
// at a quiesce point, serialized, restored into a fresh process-state
// simulator and continued must be indistinguishable — same cycle count,
// same statistics tree, byte-identical Paraver trace — from the run that
// was never interrupted. The differential tests check that for every menu
// kernel under both coherence protocols.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/fastforward.h"
#include "common/error.h"
#include "core/config_io.h"
#include "core/simulator.h"
#include "isa/text_asm.h"
#include "kernels/program_menu.h"
#include "sweep/sweep.h"

namespace coyote::ckpt {
namespace {

using core::SimConfig;
using core::Simulator;

constexpr std::uint64_t kSeed = 9;
constexpr Cycle kBudget = 500'000'000;

// Small problem sizes so the full differential matrix (every menu kernel ×
// both coherence protocols, each cell simulated twice) stays fast.
std::uint64_t test_size(const std::string& kernel) {
  if (kernel.rfind("matmul", 0) == 0) return 16;
  if (kernel.rfind("spmv", 0) == 0) return 48;
  if (kernel == "stencil_sync") return 512;
  if (kernel.rfind("stencil2d", 0) == 0) return 24;
  if (kernel.rfind("stencil", 0) == 0) return 2048;
  if (kernel == "fft") return 128;
  return 1024;  // histogram, axpy, dot
}

SimConfig small_config(bool mesi, const std::string& trace_basename) {
  SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 4;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  if (mesi) config.coherence = core::Coherence::kMesi;
  if (!trace_basename.empty()) {
    config.enable_trace = true;
    config.trace_basename = trace_basename;
  }
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Outcome {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::vector<std::int64_t> exit_codes;
  std::string report;
};

// Totals from the authoritative machine state (absolute clock, the
// orchestrator's instruction counter), so outcomes of continued runs and
// uninterrupted runs are directly comparable.
Outcome collect(Simulator& sim, const core::RunResult& result) {
  Outcome out;
  out.cycles = sim.scheduler().now();
  out.instructions = sim.root()
                         .find("orchestrator")
                         ->stats()
                         .find_counter("instructions")
                         .get();
  out.exit_codes = result.exit_codes;
  out.report = sim.report(simfw::ReportFormat::kText);
  return out;
}

Outcome run_full(const SimConfig& config, const std::string& kernel) {
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      kernel, config.num_cores, test_size(kernel), kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited) << kernel;
  return collect(sim, result);
}

// Runs to the first quiesce point at/after a midpoint, serializes, restores
// into a brand-new simulator and continues to completion there. Dense
// kernels (vector streams that keep the memory system busy end to end) may
// have no quiesce point late in the run, so the cut is searched from the
// halfway mark toward the start until one exists.
Outcome run_split(const SimConfig& config, const std::string& kernel,
                  Cycle total_cycles) {
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  Cycle cut_cycle = 0;
  bool cut_ok = false;
  for (const Cycle midpoint :
       {total_cycles / 2, total_cycles / 4, total_cycles / 8,
        total_cycles / 16, Cycle{1}}) {
    Simulator first(config);
    const auto program = kernels::build_named_kernel(
        kernel, config.num_cores, test_size(kernel), kSeed, first.memory());
    first.load_program(program.base, program.words, program.entry);
    const auto cut = first.run_to_quiesce(std::max<Cycle>(midpoint, 1),
                                          kBudget);
    if (!cut.quiesced) continue;
    cut_cycle = first.scheduler().now();
    blob.str(std::string());
    write_checkpoint(first, kernel, blob);
    cut_ok = true;
    break;
  }  // the cut simulator is gone; only its serialized image survives
  EXPECT_TRUE(cut_ok) << kernel << ": no quiesce point found anywhere";
  if (!cut_ok) return run_full(config, kernel);

  CheckpointMeta meta;
  auto restored = restore_checkpoint(blob, &meta);
  EXPECT_EQ(meta.version, kCheckpointVersion);
  EXPECT_EQ(meta.workload, kernel);
  EXPECT_EQ(meta.cycle, cut_cycle);
  const auto result = restored->run(kBudget);
  EXPECT_TRUE(result.all_exited) << kernel;
  return collect(*restored, result);
}

// Strips the decoded-block cache counter lines from a report. Those
// counters describe host-side state: blocks are never checkpointed, so a
// restored run rebuilds them cold and its dbb hit/miss counts legitimately
// differ from the uninterrupted run's. Every simulated counter must still
// match to the byte.
std::string strip_dbb_lines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("dbb_") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

void expect_identical(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.exit_codes, b.exit_codes);
  // The text report renders every counter of every unit — one comparison
  // covers the whole machine's statistics state.
  EXPECT_EQ(strip_dbb_lines(a.report), strip_dbb_lines(b.report));
}

void differential(const std::string& kernel, bool mesi) {
  SCOPED_TRACE(kernel + (mesi ? " (mesi)" : " (non-coherent)"));
  const std::string dir = ::testing::TempDir();
  const std::string tag = kernel + (mesi ? "_mesi" : "_none");
  const std::string full_base = dir + "ckpt_full_" + tag;
  const std::string split_base = dir + "ckpt_split_" + tag;

  const Outcome full = run_full(small_config(mesi, full_base), kernel);
  const Outcome split =
      run_split(small_config(mesi, split_base), kernel, full.cycles);

  expect_identical(full, split);
  EXPECT_EQ(slurp(full_base + ".prv"), slurp(split_base + ".prv"));
}

TEST(CheckpointDifferential, EveryKernelNonCoherent) {
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    differential(info.name, /*mesi=*/false);
  }
}

TEST(CheckpointDifferential, EveryKernelMesi) {
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    differential(info.name, /*mesi=*/true);
  }
}

// Decoded blocks are host state, not guest state: the checkpoint stream
// must not contain them, and a restored simulator must re-decode from the
// restored memory image — observable as fresh dbb build counters — while
// every simulated outcome stays identical (covered by the differentials
// above).
TEST(CheckpointDifferential, RestoreRebuildsDecodedBlocksCold) {
  const SimConfig config = small_config(false, "");
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "matmul_scalar", config.num_cores, 16, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run_to_quiesce(2000, kBudget).quiesced);
  ASSERT_GT(sim.core(0).dbb_stats().misses, 0u);  // warm at the cut

  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(sim, "matmul_scalar", blob);
  auto restored = restore_checkpoint(blob);
  // Nothing dispatched yet: the restored cache starts empty.
  EXPECT_EQ(restored->core(0).dbb_stats().misses, 0u);
  EXPECT_EQ(restored->core(0).dbb_stats().hits, 0u);
  const auto result = restored->run(kBudget);
  EXPECT_TRUE(result.all_exited);
  // The continuation re-decoded blocks from the restored memory image.
  EXPECT_GT(restored->core(0).dbb_stats().misses, 0u);
}

// ------------------------------------------------------------- header --

TEST(CheckpointMeta, HeaderRoundTripsWithoutRestoring) {
  const SimConfig config = small_config(false, "");
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 1024, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto cut = sim.run_to_quiesce(100, kBudget);
  ASSERT_TRUE(cut.quiesced);

  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(sim, "axpy n=1024", blob);

  const CheckpointMeta meta = read_checkpoint_meta(blob);
  EXPECT_EQ(meta.version, kCheckpointVersion);
  EXPECT_EQ(meta.workload, "axpy n=1024");
  EXPECT_EQ(meta.cycle, sim.scheduler().now());
  EXPECT_EQ(meta.config.values(), core::config_to_map(config).values());
}

TEST(Checkpoint, RefusesToCutWithEventsInFlight) {
  const SimConfig config = small_config(false, "");
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "matmul_scalar", config.num_cores, 16, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  sim.run(5);  // cold-start ifetch/L1 misses are in flight now
  ASSERT_TRUE(sim.scheduler().has_pending());
  std::ostringstream blob(std::ios::binary);
  EXPECT_THROW(write_checkpoint(sim, "matmul_scalar", blob), SimError);
}

TEST(Checkpoint, RejectsCorruptInput) {
  const SimConfig config = small_config(false, "");
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 1024, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run_to_quiesce(100, kBudget).quiesced);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(sim, "axpy", blob);
  const std::string image = blob.str();

  {  // bad magic
    std::string bad = image;
    bad[0] ^= 0xFF;
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(restore_checkpoint(is), std::exception);
  }
  {  // future version
    std::string bad = image;
    bad[4] = 99;
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW(restore_checkpoint(is), std::exception);
  }
  {  // truncated mid-stream
    std::istringstream is(image.substr(0, image.size() / 2),
                          std::ios::binary);
    EXPECT_THROW(restore_checkpoint(is), std::exception);
  }
}

// Integrity footer regressions: the trailing CRC-32 catches corruption the
// structural parse would swallow, and every failure names a byte offset so
// a damaged file can actually be triaged.
TEST(Checkpoint, CorruptionIsDetectedAndNamesTheOffset) {
  const SimConfig config = small_config(false, "");
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 1024, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run_to_quiesce(100, kBudget).quiesced);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(sim, "axpy", blob);
  const std::string image = blob.str();

  // The pristine image restores (and its CRC verifies).
  {
    std::istringstream is(image, std::ios::binary);
    EXPECT_NE(restore_checkpoint(is), nullptr);
  }
  // A single flipped bit deep in the payload — past the header, where the
  // structure still parses — must trip the CRC check, not restore quietly.
  {
    std::string bad = image;
    bad[bad.size() / 2] ^= 0x10;
    std::istringstream is(bad, std::ios::binary);
    try {
      restore_checkpoint(is);
      FAIL() << "bit-flipped checkpoint restored";
    } catch (const SimError& error) {
      const std::string what = error.what();
      // Either a structural field became implausible (message carries the
      // offending offset) or the payload parsed and the CRC caught it.
      EXPECT_TRUE(what.find("CRC mismatch") != std::string::npos ||
                  what.find("offset") != std::string::npos)
          << what;
    }
  }
  // A flipped byte in the stored footer itself is also corruption.
  {
    std::string bad = image;
    bad[bad.size() - 2] ^= 0xFF;
    std::istringstream is(bad, std::ios::binary);
    try {
      restore_checkpoint(is);
      FAIL() << "checkpoint with corrupt CRC footer restored";
    } catch (const SimError& error) {
      EXPECT_NE(std::string(error.what()).find("CRC mismatch"),
                std::string::npos)
          << error.what();
    }
  }
  // Truncation (e.g. a disk that filled up mid-write) names the offset at
  // which the stream ran dry.
  {
    std::istringstream is(image.substr(0, image.size() - 3),
                          std::ios::binary);
    try {
      restore_checkpoint(is);
      FAIL() << "truncated checkpoint restored";
    } catch (const SimError& error) {
      EXPECT_NE(std::string(error.what()).find("truncated input at offset"),
                std::string::npos)
          << error.what();
    }
  }
}

// ------------------------------------------------------- fast-forward --

TEST(FastForward, FullSkipExecutesExactlyTheDetailedInstructionStream) {
  // Detailed reference.
  const Outcome detailed = run_full(small_config(false, ""), "axpy");

  // Functional-only execution of the same program, to completion.
  SimConfig config = small_config(false, "");
  config.ffwd_instructions = ~std::uint64_t{0};
  config.ffwd_stop_at_roi = false;
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 1024, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const FfwdResult ffwd = fast_forward(sim);
  EXPECT_TRUE(ffwd.all_exited);
  EXPECT_EQ(ffwd.instructions, detailed.instructions);
  EXPECT_EQ(sim.scheduler().now(), 0u);  // functional time does not advance

  // The handover run observes the exits and reports the same codes.
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.exit_codes, detailed.exit_codes);
}

TEST(FastForward, PartialSkipPlusDetailedCoversTheWholeProgram) {
  const Outcome detailed = run_full(small_config(false, ""), "axpy");

  SimConfig config = small_config(false, "");
  config.ffwd_instructions = 50;  // per core, well short of the program
  config.ffwd_stop_at_roi = false;
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      "axpy", config.num_cores, 1024, kSeed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const FfwdResult ffwd = fast_forward(sim);
  EXPECT_FALSE(ffwd.all_exited);
  EXPECT_EQ(ffwd.instructions, 50u * config.num_cores);

  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.exit_codes, detailed.exit_codes);
  // Skipped + detailed instructions account for the whole program.
  const std::uint64_t timed = sim.root()
                                  .find("orchestrator")
                                  ->stats()
                                  .find_counter("instructions")
                                  .get();
  EXPECT_EQ(ffwd.instructions + timed, detailed.instructions);
}

TEST(FastForward, StopsAtRoiMarker) {
  // ~40 warm-up instructions, then a roi_begin CSR write, then the ROI.
  const auto assembled = isa::assemble_text(R"(
    .org 0x1000
      li   t0, 20
    warm:
      addi t0, t0, -1
      bnez t0, warm
      csrw 0x800, x0
      li   t1, 20
    roi:
      addi t1, t1, -1
      bnez t1, roi
      li   a7, 93
      li   a0, 0
      ecall
  )");
  SimConfig config = small_config(false, "");
  config.ffwd_instructions = 100'000;
  Simulator sim(config);
  sim.load_program(assembled.base, assembled.words, assembled.base);
  const FfwdResult ffwd = fast_forward(sim);
  EXPECT_TRUE(ffwd.roi_reached);
  EXPECT_FALSE(ffwd.all_exited);
  // Stopped at the marker, nowhere near the budget.
  EXPECT_LT(ffwd.instructions, 200u);
  // Detailed simulation finishes the ROI.
  const auto result = sim.run(kBudget);
  EXPECT_TRUE(result.all_exited);
  for (const std::int64_t code : result.exit_codes) EXPECT_EQ(code, 0);
}

TEST(FastForward, WarmupReducesColdMissesInTheRoi) {
  const auto misses_after = [](bool warmup) {
    SimConfig config = small_config(false, "");
    config.ffwd_instructions = 5000;
    config.ffwd_warmup = warmup;
    config.ffwd_stop_at_roi = false;
    Simulator sim(config);
    const auto program = kernels::build_named_kernel(
        "matmul_scalar", config.num_cores, 16, kSeed, sim.memory());
    sim.load_program(program.base, program.words, program.entry);
    fast_forward(sim);
    EXPECT_TRUE(sim.run(kBudget).all_exited);
    std::uint64_t misses = 0;
    for (CoreId id = 0; id < config.num_cores; ++id) {
      misses += sim.core(id).counters().l1d_misses;
      misses += sim.core(id).counters().l1i_misses;
    }
    return misses;
  };
  // matmul re-reads its operand matrices, so warmed arrays must save the
  // detailed phase a measurable number of cold misses.
  EXPECT_LT(misses_after(true), misses_after(false));
}

TEST(FastForward, WarmupWindowBoundsWarmingWork) {
  // A SMARTS-style window warms only the budget's tail. A window covering
  // the whole budget is exactly full warming; a tail-only window warms
  // less state than full warming but still more than none.
  const auto misses_after = [](std::uint64_t window, bool warmup) {
    SimConfig config = small_config(false, "");
    config.ffwd_instructions = 5000;
    config.ffwd_warmup = warmup;
    config.ffwd_warmup_window = window;
    config.ffwd_stop_at_roi = false;
    Simulator sim(config);
    const auto program = kernels::build_named_kernel(
        "matmul_scalar", config.num_cores, 16, kSeed, sim.memory());
    sim.load_program(program.base, program.words, program.entry);
    fast_forward(sim);
    EXPECT_TRUE(sim.run(kBudget).all_exited);
    std::uint64_t misses = 0;
    for (CoreId id = 0; id < config.num_cores; ++id) {
      misses += sim.core(id).counters().l1d_misses;
      misses += sim.core(id).counters().l1i_misses;
    }
    return misses;
  };
  const std::uint64_t full = misses_after(0, true);
  const std::uint64_t whole_budget = misses_after(5000, true);
  const std::uint64_t oversized = misses_after(1 << 20, true);
  const std::uint64_t tail = misses_after(200, true);
  const std::uint64_t cold = misses_after(200, false);
  EXPECT_EQ(whole_budget, full);  // window == budget: identical warming
  EXPECT_EQ(oversized, full);     // window > budget clamps to full warming
  EXPECT_LE(full, tail);          // partial warming can't beat full warming
  EXPECT_LT(tail, cold);          // but must still beat no warming at all
}

TEST(FastForward, ComposesWithCheckpointing) {
  // The intended sampling recipe: skip the prefix functionally, cut a
  // checkpoint at the handover point, then compare continuing directly
  // against restoring the checkpoint and continuing.
  SimConfig config = small_config(false, "");
  config.ffwd_instructions = 2000;
  config.ffwd_stop_at_roi = false;

  const auto fresh = [&]() {
    auto sim = std::make_unique<Simulator>(config);
    const auto program = kernels::build_named_kernel(
        "matmul_scalar", config.num_cores, 16, kSeed, sim->memory());
    sim->load_program(program.base, program.words, program.entry);
    fast_forward(*sim);
    return sim;
  };

  auto direct = fresh();
  const Outcome a = collect(*direct, direct->run(kBudget));

  auto cut = fresh();
  ASSERT_TRUE(cut->run_to_quiesce(0, kBudget).quiesced);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(*cut, "matmul_scalar", blob);
  cut.reset();
  auto restored = restore_checkpoint(blob);
  const Outcome b = collect(*restored, restored->run(kBudget));

  expect_identical(a, b);
}

// ------------------------------------------------------- sweep resume --

// Resume directories persist on purpose (that is the feature), so each
// test starts from a clean one or earlier invocations' records leak in.
std::string fresh_resume_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

sweep::SweepSpec resume_spec() {
  sweep::SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 12;
  spec.seed = 5;
  spec.base.set("topo.cores", "4");
  spec.axes.push_back({"l2.size_kb", {"128", "256"}});
  return spec;
}

std::string sweep_json(const sweep::SweepEngine::Options& options) {
  const auto report = sweep::SweepEngine(options).run(resume_spec());
  return report.to_json(/*include_host_timing=*/false);
}

TEST(SweepResume, CompletedAndResumedCampaignsMatchAFreshRun) {
  sweep::SweepEngine::Options plain;
  plain.jobs = 1;
  const std::string fresh = sweep_json(plain);

  const std::string dir = fresh_resume_dir("sweep_resume_done");
  sweep::SweepEngine::Options resumable = plain;
  resumable.resume_dir = dir;
  resumable.checkpoint_interval = 2000;  // force several mid-run cuts
  EXPECT_EQ(sweep_json(resumable), fresh);

  // Completed points left .done records; a re-run serves them verbatim.
  EXPECT_TRUE(std::ifstream(dir + "/point0.done").good());
  EXPECT_TRUE(std::ifstream(dir + "/point1.done").good());
  EXPECT_FALSE(std::ifstream(dir + "/point0.ckpt").good());
  EXPECT_EQ(sweep_json(resumable), fresh);
}

TEST(SweepResume, InterruptedPointsContinueFromTheirCheckpoints) {
  sweep::SweepEngine::Options plain;
  plain.jobs = 1;
  const auto fresh_report = sweep::SweepEngine(plain).run(resume_spec());
  const std::string fresh = fresh_report.to_json(false);
  Cycle shortest = ~Cycle{0};
  for (const auto& point : fresh_report.points) {
    shortest = std::min(shortest, point.run.cycles);
  }

  // "Interrupt" the campaign by giving it a cycle budget no point can
  // meet: every point fails, but leaves its latest quiesce checkpoint.
  const std::string dir = fresh_resume_dir("sweep_resume_interrupted");
  sweep::SweepEngine::Options interrupted = plain;
  interrupted.resume_dir = dir;
  interrupted.checkpoint_interval = shortest / 10;
  interrupted.max_cycles = shortest / 2;
  interrupted.max_attempts = 1;
  const auto failed = sweep::SweepEngine(interrupted).run(resume_spec());
  ASSERT_EQ(failed.num_ok(), 0u);
  ASSERT_TRUE(std::ifstream(dir + "/point0.ckpt").good());

  // Lifting the budget resumes every point from its checkpoint; the final
  // table is bit-identical to the never-interrupted campaign.
  sweep::SweepEngine::Options resumed = plain;
  resumed.resume_dir = dir;
  resumed.checkpoint_interval = shortest / 10;
  EXPECT_EQ(sweep_json(resumed), fresh);
}

TEST(SweepResume, StaleRecordsFromAnotherCampaignAreIgnored) {
  const std::string dir = fresh_resume_dir("sweep_resume_stale");
  sweep::SweepEngine::Options options;
  options.jobs = 1;
  options.resume_dir = dir;
  options.checkpoint_interval = 2000;
  const std::string first = sweep_json(options);

  // Same directory, different campaign: the old point0/point1 records do
  // not match the new configs and must be re-run, not reused.
  sweep::SweepSpec other = resume_spec();
  other.axes[0].values = {"64", "512"};
  sweep::SweepEngine::Options plain;
  plain.jobs = 1;
  const auto fresh_other = sweep::SweepEngine(plain).run(other);
  const auto resumed_other = sweep::SweepEngine(options).run(other);
  EXPECT_EQ(resumed_other.to_json(false), fresh_other.to_json(false));
  // And the original campaign still round-trips from its refreshed records.
  EXPECT_EQ(sweep_json(options), first);
}

}  // namespace
}  // namespace coyote::ckpt
