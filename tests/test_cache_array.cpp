#include "memhier/cache_array.h"

#include <gtest/gtest.h>

namespace coyote::memhier {
namespace {

CacheArray::Config small_config() {
  // 4 sets x 2 ways x 64B lines = 512B.
  return CacheArray::Config{512, 2, 64};
}

TEST(CacheArray, GeometryDerivation) {
  CacheArray cache(small_config());
  EXPECT_EQ(cache.sets(), 4u);
  EXPECT_EQ(cache.ways(), 2u);
  EXPECT_EQ(cache.line_bytes(), 64u);
  EXPECT_EQ(cache.line_of(0x12345), 0x12340u);
}

TEST(CacheArray, BadGeometryRejected) {
  EXPECT_THROW(CacheArray(CacheArray::Config{500, 2, 64}), ConfigError);
  EXPECT_THROW(CacheArray(CacheArray::Config{512, 0, 64}), ConfigError);
  EXPECT_THROW(CacheArray(CacheArray::Config{512, 2, 48}), ConfigError);
  EXPECT_THROW(CacheArray(CacheArray::Config{512, 3, 64}), ConfigError);
}

TEST(CacheArray, MissThenHitAfterInsert) {
  CacheArray cache(small_config());
  EXPECT_FALSE(cache.lookup(0x1000));
  const auto evicted = cache.insert(0x1000, false);
  EXPECT_FALSE(evicted.valid);
  EXPECT_TRUE(cache.lookup(0x1000));
  EXPECT_TRUE(cache.lookup(0x103F));  // same line
  EXPECT_FALSE(cache.lookup(0x1040)); // next line
}

TEST(CacheArray, LruEvictionOrder) {
  CacheArray cache(small_config());
  // Three lines mapping to the same set (set stride = 4 lines = 256B).
  const Addr line_a = 0x0000;
  const Addr line_b = 0x0100;
  const Addr line_c = 0x0200;
  cache.insert(line_a, false);
  cache.insert(line_b, false);
  // Touch A so B becomes LRU.
  EXPECT_TRUE(cache.lookup(line_a));
  const auto evicted = cache.insert(line_c, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.line_addr, line_b);
  EXPECT_TRUE(cache.probe(line_a));
  EXPECT_FALSE(cache.probe(line_b));
  EXPECT_TRUE(cache.probe(line_c));
}

TEST(CacheArray, DirtyBitTracksWrites) {
  CacheArray cache(small_config());
  cache.insert(0x1000, false);
  EXPECT_FALSE(cache.is_dirty(0x1000));
  EXPECT_TRUE(cache.mark_dirty(0x1000));
  EXPECT_TRUE(cache.is_dirty(0x1000));
  EXPECT_FALSE(cache.mark_dirty(0x9999000));  // absent line
}

TEST(CacheArray, DirtyEvictionReported) {
  CacheArray cache(small_config());
  cache.insert(0x0000, true);
  cache.insert(0x0100, false);
  const auto evicted = cache.insert(0x0200, false);  // evicts dirty 0x0000
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.dirty);
  EXPECT_EQ(evicted.line_addr, 0x0000u);
}

TEST(CacheArray, DifferentSetsDoNotConflict) {
  CacheArray cache(small_config());
  for (Addr line = 0; line < 512; line += 64) {
    cache.insert(line, false);
  }
  EXPECT_EQ(cache.resident_lines(), 8u);  // fits exactly
  for (Addr line = 0; line < 512; line += 64) {
    EXPECT_TRUE(cache.probe(line));
  }
}

TEST(CacheArray, InvalidateRemovesAndReportsDirty) {
  CacheArray cache(small_config());
  cache.insert(0x1000, true);
  EXPECT_TRUE(cache.invalidate(0x1000));
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_FALSE(cache.invalidate(0x1000));
  cache.insert(0x2000, false);
  cache.invalidate_all();
  EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST(CacheArray, ProbeDoesNotPerturbLru) {
  CacheArray cache(small_config());
  cache.insert(0x0000, false);
  cache.insert(0x0100, false);
  // Probe A (no LRU update); A should still be the LRU victim.
  EXPECT_TRUE(cache.probe(0x0000));
  const auto evicted = cache.insert(0x0200, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.line_addr, 0x0000u);
}

TEST(CacheArray, FifoIgnoresHitRecency) {
  CacheArray::Config config = small_config();
  config.replacement = Replacement::kFifo;
  CacheArray cache(config);
  cache.insert(0x0000, false);
  cache.insert(0x0100, false);
  // Touch the oldest line; under FIFO it is still the victim.
  EXPECT_TRUE(cache.lookup(0x0000));
  const auto evicted = cache.insert(0x0200, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.line_addr, 0x0000u);
}

TEST(CacheArray, RandomEvictsSomeValidWay) {
  CacheArray::Config config = small_config();
  config.replacement = Replacement::kRandom;
  CacheArray cache(config);
  cache.insert(0x0000, false);
  cache.insert(0x0100, false);
  const auto evicted = cache.insert(0x0200, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.line_addr == 0x0000 || evicted.line_addr == 0x0100);
  // The inserted line is resident; exactly one of the old two survived.
  EXPECT_TRUE(cache.probe(0x0200));
  EXPECT_EQ(cache.resident_lines(), 2u);
}

TEST(CacheArray, RandomIsDeterministicPerArray) {
  const auto run_once = [] {
    CacheArray::Config config = small_config();
    config.replacement = Replacement::kRandom;
    CacheArray cache(config);
    std::vector<Addr> evictions;
    for (Addr line = 0; line < 64 * 256; line += 256) {  // one set, many
      const auto evicted = cache.insert(line, false);
      if (evicted.valid) evictions.push_back(evicted.line_addr);
    }
    return evictions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CacheArray, RandomPrefersFreeWays) {
  CacheArray::Config config = small_config();
  config.replacement = Replacement::kRandom;
  CacheArray cache(config);
  // With a free way available no eviction may happen.
  EXPECT_FALSE(cache.insert(0x0000, false).valid);
  EXPECT_FALSE(cache.insert(0x0100, false).valid);
}

// Parameterized sweep over geometries: filling exactly `capacity` distinct
// lines must never evict; the next line in a full set must.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(CacheGeometry, FillWithoutEviction) {
  const auto [size, ways, line] = GetParam();
  CacheArray cache(CacheArray::Config{size, ways, line});
  const std::uint64_t lines = size / line;
  for (std::uint64_t i = 0; i < lines; ++i) {
    // Walk set-major so every set fills evenly.
    const auto evicted = cache.insert(i * line, false);
    EXPECT_FALSE(evicted.valid) << "line " << i;
  }
  EXPECT_EQ(cache.resident_lines(), lines);
  const auto evicted = cache.insert(lines * line, false);
  EXPECT_TRUE(evicted.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024, 1, 64),      // direct mapped
                      std::make_tuple(4096, 4, 64),
                      std::make_tuple(32768, 8, 64),
                      std::make_tuple(2048, 2, 128),
                      std::make_tuple(65536, 16, 64),
                      std::make_tuple(512, 8, 64)));     // fully associative

}  // namespace
}  // namespace coyote::memhier
