// Paraver trace production: file triple, header shape, record format, and
// end-to-end generation from a traced simulation.
#include "core/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/simulator.h"
#include "kernels/kernels.h"

namespace coyote::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TraceFiles {
  std::string base;
  explicit TraceFiles(std::string basename) : base(std::move(basename)) {}
  ~TraceFiles() {
    for (const char* ext : {".prv", ".pcf", ".row"}) {
      std::remove((base + ext).c_str());
    }
  }
};

TEST(Trace, WritesTripleWithHeader) {
  TraceFiles files("/tmp/coyote_trace_test1");
  ParaverTraceWriter writer(files.base, 4);
  writer.record(10, 0, TraceEvent::kL1DMiss, 0x1000);
  writer.record(12, 3, TraceEvent::kL1IMiss, 0x2000);
  writer.finish(100);

  const std::string prv = slurp(files.base + ".prv");
  EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);  // starts with magic
  EXPECT_NE(prv.find(":100:1(4):1:1(4:1)"), std::string::npos);
  EXPECT_NE(prv.find("2:1:1:1:1:10:42001001:4096"), std::string::npos);
  EXPECT_NE(prv.find("2:4:1:1:4:12:42001002:8192"), std::string::npos);

  const std::string pcf = slurp(files.base + ".pcf");
  EXPECT_NE(pcf.find("EVENT_TYPE"), std::string::npos);
  EXPECT_NE(pcf.find("42001001"), std::string::npos);
  EXPECT_NE(pcf.find("L1D miss"), std::string::npos);

  const std::string row = slurp(files.base + ".row");
  EXPECT_NE(row.find("LEVEL THREAD SIZE 4"), std::string::npos);
  EXPECT_NE(row.find("core.0"), std::string::npos);
  EXPECT_NE(row.find("core.3"), std::string::npos);
}

TEST(Trace, RecordCountTracks) {
  ParaverTraceWriter writer("/tmp/coyote_trace_unused", 1);
  EXPECT_EQ(writer.record_count(), 0u);
  writer.record(1, 0, TraceEvent::kL1DMiss, 1);
  writer.record(2, 0, TraceEvent::kL1DMiss, 2);
  EXPECT_EQ(writer.record_count(), 2u);
}

TEST(Trace, EndToEndSimulationProducesMissEvents) {
  TraceFiles files("/tmp/coyote_trace_e2e");
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 2;
  config.enable_trace = true;
  config.trace_basename = files.base;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(16, 5);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 2);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(100'000'000);
  ASSERT_TRUE(result.all_exited);

  ASSERT_NE(sim.trace(), nullptr);
  EXPECT_GT(sim.trace()->record_count(), 0u);

  const std::string prv = slurp(files.base + ".prv");
  // Miss events (type 42001001) from both cores appear.
  EXPECT_NE(prv.find(":42001001:"), std::string::npos);
  EXPECT_NE(prv.find("2:1:1:1:1:"), std::string::npos);
  EXPECT_NE(prv.find("2:2:1:1:2:"), std::string::npos);
  // Fill events too.
  EXPECT_NE(prv.find(":42001004:"), std::string::npos);
}

TEST(Trace, StateRecordsEmittedSortedByBegin) {
  TraceFiles files("/tmp/coyote_trace_states");
  ParaverTraceWriter writer(files.base, 2);
  // Recorded out of begin order (as wake-ups naturally arrive).
  writer.record_state(12, 15, 1, TraceState::kStalled);
  writer.record_state(10, 20, 0, TraceState::kStalled);
  writer.record(11, 0, TraceEvent::kL1DMiss, 0x40);
  writer.finish(30);
  const std::string prv = slurp(files.base + ".prv");
  const auto first_state = prv.find("1:1:1:1:1:10:20:5");
  const auto second_state = prv.find("1:2:1:1:2:12:15:5");
  const auto event = prv.find("2:1:1:1:1:11:");
  ASSERT_NE(first_state, std::string::npos);
  ASSERT_NE(second_state, std::string::npos);
  ASSERT_NE(event, std::string::npos);
  EXPECT_LT(first_state, second_state);   // sorted by begin
  EXPECT_LT(first_state, event);
  const std::string pcf = slurp(files.base + ".pcf");
  EXPECT_NE(pcf.find("STATES"), std::string::npos);
  EXPECT_NE(pcf.find("Stalled on fill"), std::string::npos);
}

TEST(Trace, EndToEndEmitsStallStates) {
  TraceFiles files("/tmp/coyote_trace_stall");
  SimConfig config;
  config.num_cores = 1;
  config.enable_trace = true;
  config.trace_basename = files.base;
  config.mc.latency = 300;  // long stalls: intervals guaranteed
  Simulator sim(config);
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(64, 4096, 8, 19), 20);
  workload.install(sim.memory());
  const auto program = kernels::build_spmv_scalar(workload, 1);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  const std::string prv = slurp(files.base + ".prv");
  EXPECT_NE(prv.find("\n1:1:1:1:1:"), std::string::npos);  // a state record
}

TEST(Trace, DisabledByDefault) {
  SimConfig config;
  config.num_cores = 1;
  Simulator sim(config);
  EXPECT_EQ(sim.trace(), nullptr);
}

}  // namespace
}  // namespace coyote::core
