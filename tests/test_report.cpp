#include "simfw/report.h"

#include <gtest/gtest.h>

#include "simfw/unit.h"

namespace coyote::simfw {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() {
    Counter& hits = leaf_.stats().counter("hits", "hit count");
    hits += 42;
    leaf_.stats().statistic("ratio", "a ratio", [] { return 0.5; });
  }

  Scheduler sched_;
  Unit root_{&sched_, "top"};
  Unit mid_{&root_, "tile0"};
  Unit leaf_{&mid_, "bank0"};
};

TEST_F(ReportTest, TextContainsPathsAndValues) {
  const std::string text = Report(root_).to_string(ReportFormat::kText);
  EXPECT_NE(text.find("top.tile0.bank0:"), std::string::npos);
  EXPECT_NE(text.find("hits"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("ratio"), std::string::npos);
  EXPECT_NE(text.find("0.5000"), std::string::npos);
}

TEST_F(ReportTest, TextSkipsEmptyUnits) {
  const std::string text = Report(root_).to_string(ReportFormat::kText);
  // tile0 has no stats of its own, so it should not get a section header.
  EXPECT_EQ(text.find("top.tile0:\n"), std::string::npos);
}

TEST_F(ReportTest, CsvHasHeaderAndRows) {
  const std::string csv = Report(root_).to_string(ReportFormat::kCsv);
  EXPECT_NE(csv.find("unit,name,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("top.tile0.bank0,hits,counter,42"), std::string::npos);
  EXPECT_NE(csv.find("top.tile0.bank0,ratio,statistic,0.5"),
            std::string::npos);
}

TEST_F(ReportTest, JsonIsWellFormedish) {
  const std::string json = Report(root_).to_string(ReportFormat::kJson);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"top.tile0.bank0\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 42"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ReportTest, DistributionsRenderInAllFormats) {
  auto& dist = leaf_.stats().distribution("latency", "request latency");
  dist.sample(4);
  dist.sample(12);
  const std::string text = Report(root_).to_string(ReportFormat::kText);
  EXPECT_NE(text.find("latency"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("mean=8.00"), std::string::npos);
  const std::string csv = Report(root_).to_string(ReportFormat::kCsv);
  EXPECT_NE(csv.find("latency.count,distribution,2"), std::string::npos);
  EXPECT_NE(csv.find("latency.max,distribution,12"), std::string::npos);
  const std::string json = Report(root_).to_string(ReportFormat::kJson);
  EXPECT_NE(json.find("\"latency\": {\"count\": 2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ReportTest, SubtreeReport) {
  const std::string text = Report(leaf_).to_string(ReportFormat::kText);
  EXPECT_NE(text.find("top.tile0.bank0:"), std::string::npos);
}

}  // namespace
}  // namespace coyote::simfw
