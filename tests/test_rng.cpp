#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace coyote {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Xoshiro256 rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform(-3.0, 5.0);
    ASSERT_GE(value, -3.0);
    ASSERT_LT(value, 5.0);
  }
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), SplitMix64(8).next());
}

TEST(Rng, KnownSplitMixVector) {
  // Reference value for SplitMix64(0): first output.
  SplitMix64 mix(0);
  EXPECT_EQ(mix.next(), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace coyote
