// CoreModel: L1 modelling, miss/MSHR bookkeeping, RAW-dependency stalls,
// ifetch stalls and writeback generation — the "Spike side" contract that
// the Orchestrator is built on.
#include "iss/core_model.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace coyote::iss {
namespace {

using isa::Assembler;
using test::emit_exit;
using namespace coyote::isa;

constexpr Addr kData = 0x20000;

struct CoreHarness {
  SparseMemory memory;
  CoreConfig config;
  std::unique_ptr<CoreModel> core;
  CoreStepResult result;
  std::vector<LineRequest> writebacks;
  Cycle cycle = 0;

  explicit CoreHarness(CoreConfig cfg = {}) : config(cfg) {
    core = std::make_unique<CoreModel>(0, &memory, config);
  }

  void load(Assembler& as) {
    memory.poke_words(as.base(), as.finish());
    core->reset(as.base());
  }

  /// One step; auto-fills i-fetch misses immediately to focus tests on data
  /// behaviour (unless auto_fill_ifetch is false).
  void step(bool auto_fill_ifetch = true) {
    core->step(result, cycle++);
    if (auto_fill_ifetch && result.status == StepStatus::kIFetchStall) {
      for (const auto& request : result.requests) {
        if (request.is_ifetch) {
          writebacks.clear();
          core->fill(request.line_addr, writebacks);
        }
      }
    }
  }

  /// Steps until `status` is returned or the core halts. Fills every miss
  /// `fill_after` steps after it was requested (0 = immediately).
  void run_all(std::uint64_t max_steps = 100000) {
    std::vector<LineRequest> pending;
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      core->step(result, cycle++);
      for (const auto& request : result.requests) {
        if (!request.is_writeback) pending.push_back(request);
      }
      if (result.exited) return;
      if (result.status == StepStatus::kHalted && pending.empty()) return;
      // Service one outstanding line per step (keeps stalls observable).
      if (!pending.empty()) {
        writebacks.clear();
        core->fill(pending.front().line_addr, writebacks);
        pending.erase(pending.begin());
        for (const auto& wb : writebacks) {
          EXPECT_TRUE(wb.is_writeback);
        }
      }
    }
    FAIL() << "core did not halt";
  }
};

TEST(CoreModel, IFetchMissOnFirstInstruction) {
  CoreHarness harness;
  Assembler as(0x1000);
  emit_exit(as);
  harness.load(as);

  harness.step(/*auto_fill_ifetch=*/false);
  EXPECT_EQ(harness.result.status, StepStatus::kIFetchStall);
  ASSERT_EQ(harness.result.requests.size(), 1u);
  EXPECT_TRUE(harness.result.requests[0].is_ifetch);
  EXPECT_EQ(harness.result.requests[0].line_addr, 0x1000u);

  // Still stalled until the fill arrives; no duplicate requests.
  harness.step(/*auto_fill_ifetch=*/false);
  EXPECT_EQ(harness.result.status, StepStatus::kIFetchStall);
  EXPECT_TRUE(harness.result.requests.empty());

  harness.writebacks.clear();
  harness.core->fill(0x1000, harness.writebacks);
  harness.step(false);
  EXPECT_EQ(harness.result.status, StepStatus::kRetired);
}

TEST(CoreModel, SequentialFetchesHitTheLine) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.nop();
  as.nop();
  as.nop();
  emit_exit(as);
  harness.load(as);
  harness.run_all();
  const auto& counters = harness.core->counters();
  // 6 instructions (3 nops + li/li/ecall) in 24B = one fetch line.
  EXPECT_EQ(counters.l1i_misses, 1u);
  EXPECT_EQ(counters.instructions, 6u);
}

TEST(CoreModel, LoadMissDoesNotStallTheLoadItself) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(a1, 0, s1);    // miss
  as.li(a2, 7);        // independent: must retire while miss in flight
  emit_exit(as);
  harness.load(as);

  // Drive manually: fetch line first.
  harness.step();  // ifetch stall + fill
  // li s1 expands to multiple instructions; execute until the ld retires.
  LineRequest data_miss{};
  bool got_miss = false;
  for (int i = 0; i < 20 && !got_miss; ++i) {
    harness.step();
    for (const auto& request : harness.result.requests) {
      if (!request.is_ifetch && !request.is_writeback) {
        data_miss = request;
        got_miss = true;
      }
    }
  }
  ASSERT_TRUE(got_miss);
  EXPECT_EQ(data_miss.line_addr, kData);
  EXPECT_EQ(harness.result.status, StepStatus::kRetired);  // load retired

  // Independent instruction retires while the miss is outstanding.
  harness.step();
  EXPECT_EQ(harness.result.status, StepStatus::kRetired);
  EXPECT_EQ(harness.core->hart().x(a2), 7u);
  EXPECT_EQ(harness.core->outstanding_misses(), 1u);
}

TEST(CoreModel, RawDependencyStallsConsumer) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(a1, 0, s1);        // miss
  as.addi(a2, a1, 1);      // RAW on a1
  emit_exit(as);
  harness.memory.write<std::uint64_t>(kData, 41);
  harness.load(as);

  harness.step();  // ifetch
  // Run until the ld retires.
  Addr miss_line = 0;
  while (true) {
    harness.step();
    bool done = false;
    for (const auto& request : harness.result.requests) {
      if (!request.is_ifetch) {
        miss_line = request.line_addr;
        done = true;
      }
    }
    if (done) break;
  }
  // The consumer must now RAW-stall (repeatedly).
  harness.step();
  EXPECT_EQ(harness.result.status, StepStatus::kRawStall);
  harness.step();
  EXPECT_EQ(harness.result.status, StepStatus::kRawStall);
  EXPECT_GE(harness.core->counters().raw_stall_cycles, 2u);

  // Fill; consumer proceeds.
  harness.writebacks.clear();
  harness.core->fill(miss_line, harness.writebacks);
  harness.step();
  EXPECT_EQ(harness.result.status, StepStatus::kRetired);
  EXPECT_EQ(harness.core->hart().x(a2), 42u);
}

TEST(CoreModel, StoreMissDoesNotStall) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(a1, 9);
  as.sd(a1, 0, s1);      // store miss: retires immediately
  as.li(a2, 1);          // keeps running
  emit_exit(as);
  harness.load(as);
  // Never fill the store's line; the program must still halt.
  std::uint64_t store_misses = 0;
  for (int i = 0; i < 1000; ++i) {
    harness.step();
    for (const auto& request : harness.result.requests) {
      if (request.is_store) ++store_misses;
    }
    if (harness.result.status == StepStatus::kHalted ||
        (harness.result.status == StepStatus::kRetired &&
         harness.result.exited)) {
      break;
    }
  }
  EXPECT_EQ(store_misses, 1u);
  EXPECT_TRUE(harness.result.exited);
  EXPECT_EQ(harness.memory.read<std::uint64_t>(kData), 9u);
}

TEST(CoreModel, SameLineMissesMergeIntoOneRequest) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(a1, 0, s1);
  as.ld(a2, 8, s1);      // same 64B line
  emit_exit(as);
  harness.load(as);
  std::uint64_t data_requests = 0;
  for (int i = 0; i < 50; ++i) {
    harness.step();
    for (const auto& request : harness.result.requests) {
      if (!request.is_ifetch) ++data_requests;
    }
    if (harness.result.status == StepStatus::kRawStall) break;
    if (harness.result.exited) break;
  }
  EXPECT_EQ(data_requests, 1u);
  EXPECT_EQ(harness.core->outstanding_misses(), 1u);
  // One fill clears the merged MSHR and both destination registers.
  harness.writebacks.clear();
  harness.core->fill(kData, harness.writebacks);
  EXPECT_EQ(harness.core->outstanding_misses(), 0u);
}

TEST(CoreModel, L1HitsAfterFill) {
  CoreHarness harness;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(a1, 0, s1);
  as.ld(a2, 16, s1);
  as.ld(a3, 32, s1);
  emit_exit(as);
  harness.load(as);
  harness.run_all();
  const auto& counters = harness.core->counters();
  EXPECT_EQ(counters.l1d_misses, 1u);
  EXPECT_EQ(counters.l1d_accesses, 3u);
  EXPECT_EQ(counters.loads, 3u);
}

TEST(CoreModel, DirtyEvictionProducesWriteback) {
  CoreConfig config;
  config.l1d_size_bytes = 128;  // 2 lines, 2 ways, 1 set
  config.l1d_ways = 2;
  CoreHarness harness(config);
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(a1, 5);
  as.sd(a1, 0, s1);          // dirty line A
  as.ld(a2, 64, s1);         // line B (same set: the L1D has 1 set)
  as.ld(a3, 128, s1);        // line C -> evicts dirty A on fill
  emit_exit(as);
  harness.load(as);

  std::vector<LineRequest> pending;
  bool saw_writeback = false;
  for (int i = 0; i < 2000; ++i) {
    harness.core->step(harness.result, harness.cycle++);
    for (const auto& request : harness.result.requests) {
      if (request.is_writeback) {
        saw_writeback = true;
      } else {
        pending.push_back(request);
      }
    }
    if (!pending.empty()) {
      harness.writebacks.clear();
      harness.core->fill(pending.front().line_addr, harness.writebacks);
      pending.erase(pending.begin());
      for (const auto& wb : harness.writebacks) {
        EXPECT_TRUE(wb.is_writeback);
        EXPECT_EQ(wb.line_addr, kData);
        saw_writeback = true;
      }
    } else if (harness.result.status == StepStatus::kHalted) {
      break;
    }
  }
  EXPECT_TRUE(saw_writeback);
  EXPECT_GE(harness.core->counters().writebacks, 1u);
}

TEST(CoreModel, ModelL1DisabledNeverMisses) {
  CoreConfig config;
  config.model_l1 = false;
  CoreHarness harness(config);
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(a1, 0, s1);
  emit_exit(as);
  harness.load(as);
  for (int i = 0; i < 100; ++i) {
    harness.step(false);
    EXPECT_TRUE(harness.result.requests.empty());
    if (harness.result.exited) break;
  }
  EXPECT_TRUE(harness.result.exited);
  EXPECT_EQ(harness.core->counters().l1d_misses, 0u);
  EXPECT_EQ(harness.core->counters().loads, 1u);
}

TEST(CoreModel, UnexpectedFillThrows) {
  CoreHarness harness;
  Assembler as(0x1000);
  emit_exit(as);
  harness.load(as);
  std::vector<LineRequest> writebacks;
  EXPECT_THROW(harness.core->fill(0xABC000, writebacks), SimError);
}

TEST(CoreModel, HaltedCoreStaysHalted) {
  CoreHarness harness;
  Assembler as(0x1000);
  emit_exit(as, 3);
  harness.load(as);
  harness.run_all();
  EXPECT_EQ(harness.result.exit_code, 3);
  harness.step();
  EXPECT_EQ(harness.result.status, StepStatus::kHalted);
  EXPECT_TRUE(harness.core->halted());
}

TEST(CoreModel, VectorGatherProducesMultipleLineMisses) {
  CoreHarness harness;
  // Offsets land in 4 distinct lines.
  const std::uint64_t offsets[] = {0, 64, 128, 192};
  harness.memory.poke_array(kData, offsets, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.vle64(v4, s1);                   // one line (indices)
  as.li(s2, static_cast<std::int64_t>(kData + 0x1000));
  as.vluxei64(v8, s2, v4);            // gathers 4 distinct lines
  emit_exit(as);
  harness.load(as);

  std::set<Addr> gather_lines;
  std::vector<LineRequest> pending;
  for (int i = 0; i < 2000; ++i) {
    harness.core->step(harness.result, harness.cycle++);
    for (const auto& request : harness.result.requests) {
      if (!request.is_ifetch && !request.is_writeback &&
          request.line_addr >= kData + 0x1000) {
        gather_lines.insert(request.line_addr);
      }
      if (!request.is_writeback) pending.push_back(request);
    }
    if (harness.result.status == StepStatus::kHalted) break;
    if (!pending.empty()) {
      harness.writebacks.clear();
      harness.core->fill(pending.front().line_addr, harness.writebacks);
      pending.erase(pending.begin());
    }
  }
  EXPECT_EQ(gather_lines.size(), 4u);
}

}  // namespace
}  // namespace coyote::iss
