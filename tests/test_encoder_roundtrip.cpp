// Property tests: every instruction the Assembler can emit decodes back to
// the intended opcode and operand fields. The encoder and decoder are
// written independently (field composition vs field extraction), so
// agreement is strong evidence both match the ISA manual.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/decoder.h"

namespace coyote::isa {
namespace {

DecodedInst encode_one(void (*emit)(Assembler&)) {
  Assembler as(0x1000);
  emit(as);
  return decode(as.finish().at(0));
}

template <typename Fn>
DecodedInst with(Fn&& emit) {
  Assembler as(0x1000);
  emit(as);
  return decode(as.finish().at(0));
}

TEST(EncoderRoundTrip, RTypeSweep) {
  Xoshiro256 rng(1);
  struct Case {
    Op op;
    void (Assembler::*emit)(Xreg, Xreg, Xreg);
  };
  const Case cases[] = {
      {Op::kAdd, &Assembler::add},   {Op::kSub, &Assembler::sub},
      {Op::kSll, &Assembler::sll},   {Op::kSlt, &Assembler::slt},
      {Op::kSltu, &Assembler::sltu}, {Op::kXor, &Assembler::xor_},
      {Op::kSrl, &Assembler::srl},   {Op::kSra, &Assembler::sra},
      {Op::kOr, &Assembler::or_},    {Op::kAnd, &Assembler::and_},
      {Op::kAddw, &Assembler::addw}, {Op::kSubw, &Assembler::subw},
      {Op::kMul, &Assembler::mul},   {Op::kMulh, &Assembler::mulh},
      {Op::kMulhu, &Assembler::mulhu}, {Op::kMulhsu, &Assembler::mulhsu},
      {Op::kDiv, &Assembler::div},   {Op::kDivu, &Assembler::divu},
      {Op::kRem, &Assembler::rem},   {Op::kRemu, &Assembler::remu},
      {Op::kMulw, &Assembler::mulw}, {Op::kDivw, &Assembler::divw},
      {Op::kRemw, &Assembler::remw},
  };
  for (const Case& test_case : cases) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto rd = static_cast<Xreg>(rng.below(32));
      const auto rs1 = static_cast<Xreg>(rng.below(32));
      const auto rs2 = static_cast<Xreg>(rng.below(32));
      Assembler as(0);
      (as.*test_case.emit)(rd, rs1, rs2);
      const auto inst = decode(as.finish().at(0));
      ASSERT_EQ(inst.op, test_case.op) << op_name(test_case.op);
      EXPECT_EQ(inst.rd, rd);
      EXPECT_EQ(inst.rs1, rs1);
      EXPECT_EQ(inst.rs2, rs2);
    }
  }
}

TEST(EncoderRoundTrip, ITypeImmediates) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto rd = static_cast<Xreg>(rng.below(32));
    const auto rs1 = static_cast<Xreg>(rng.below(32));
    const auto imm = static_cast<std::int32_t>(rng.below(4096)) - 2048;
    Assembler as(0);
    as.addi(rd, rs1, imm);
    as.xori(rd, rs1, imm);
    as.andi(rd, rs1, imm);
    as.lw(rd, imm, rs1);
    as.ld(rd, imm, rs1);
    as.jalr(rd, rs1, imm);
    const auto& words = as.finish();
    const Op expected[] = {Op::kAddi, Op::kXori, Op::kAndi,
                           Op::kLw,   Op::kLd,   Op::kJalr};
    for (std::size_t i = 0; i < words.size(); ++i) {
      const auto inst = decode(words[i]);
      ASSERT_EQ(inst.op, expected[i]);
      EXPECT_EQ(inst.imm, imm);
      EXPECT_EQ(inst.rd, rd);
      EXPECT_EQ(inst.rs1, rs1);
    }
  }
}

TEST(EncoderRoundTrip, StoreOffsets) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto rs1 = static_cast<Xreg>(rng.below(32));
    const auto rs2 = static_cast<Xreg>(rng.below(32));
    const auto imm = static_cast<std::int32_t>(rng.below(4096)) - 2048;
    Assembler as(0);
    as.sd(rs2, imm, rs1);
    as.sw(rs2, imm, rs1);
    as.sb(rs2, imm, rs1);
    for (const auto word : as.finish()) {
      const auto inst = decode(word);
      EXPECT_TRUE(inst.op == Op::kSd || inst.op == Op::kSw ||
                  inst.op == Op::kSb);
      EXPECT_EQ(inst.imm, imm);
      EXPECT_EQ(inst.rs1, rs1);
      EXPECT_EQ(inst.rs2, rs2);
    }
  }
}

TEST(EncoderRoundTrip, Shifts64BitShamt) {
  for (unsigned shamt = 0; shamt < 64; ++shamt) {
    Assembler as(0);
    as.slli(t0, t1, shamt);
    as.srli(t0, t1, shamt);
    as.srai(t0, t1, shamt);
    const auto& words = as.finish();
    EXPECT_EQ(decode(words[0]).op, Op::kSlli);
    EXPECT_EQ(decode(words[1]).op, Op::kSrli);
    EXPECT_EQ(decode(words[2]).op, Op::kSrai);
    for (const auto word : words) {
      EXPECT_EQ(decode(word).imm, shamt);
    }
  }
}

TEST(EncoderRoundTrip, UTypeAndCsr) {
  const auto lui = with([](Assembler& as) { as.lui(a0, 0xFFFFF); });
  EXPECT_EQ(lui.op, Op::kLui);
  EXPECT_EQ(lui.imm, sign_extend(0xFFFFFull << 12, 32));

  const auto auipc = with([](Assembler& as) { as.auipc(a1, 0x1); });
  EXPECT_EQ(auipc.op, Op::kAuipc);
  EXPECT_EQ(auipc.imm, 0x1000);

  const auto csrr = with([](Assembler& as) { as.csrr(t2, 0xC00); });
  EXPECT_EQ(csrr.op, Op::kCsrrs);
  EXPECT_EQ(csrr.imm, 0xC00);
  EXPECT_EQ(csrr.rd, t2);
  EXPECT_EQ(csrr.rs1, zero);
}

TEST(EncoderRoundTrip, FpOps) {
  const auto fadd = with([](Assembler& as) { as.fadd_d(fa0, fa1, fa2); });
  EXPECT_EQ(fadd.op, Op::kFaddD);
  EXPECT_EQ(fadd.rd, fa0);
  EXPECT_EQ(fadd.rs1, fa1);
  EXPECT_EQ(fadd.rs2, fa2);

  const auto fma = with([](Assembler& as) {
    as.fmadd_d(ft0, ft1, ft2, ft3);
  });
  EXPECT_EQ(fma.op, Op::kFmaddD);
  EXPECT_EQ(fma.rd, ft0);
  EXPECT_EQ(fma.rs1, ft1);
  EXPECT_EQ(fma.rs2, ft2);
  EXPECT_EQ(fma.rs3, ft3);

  EXPECT_EQ(with([](Assembler& as) { as.fld(fa3, -8, sp); }).op, Op::kFld);
  EXPECT_EQ(with([](Assembler& as) { as.fsd(fa3, 24, sp); }).op, Op::kFsd);
  EXPECT_EQ(with([](Assembler& as) { as.fmv_d_x(fa0, a0); }).op, Op::kFmvDX);
  EXPECT_EQ(with([](Assembler& as) { as.fmv_x_d(a0, fa0); }).op, Op::kFmvXD);
  EXPECT_EQ(with([](Assembler& as) { as.fcvt_d_l(fa0, a0); }).op,
            Op::kFcvtDL);
  EXPECT_EQ(with([](Assembler& as) { as.fcvt_l_d(a0, fa0); }).op,
            Op::kFcvtLD);
  EXPECT_EQ(with([](Assembler& as) { as.feq_d(a0, fa0, fa1); }).op,
            Op::kFeqD);
  EXPECT_EQ(with([](Assembler& as) { as.fsqrt_d(fa0, fa1); }).op,
            Op::kFsqrtD);
}

TEST(EncoderRoundTrip, VectorConfig) {
  const auto vsetvli = with([](Assembler& as) {
    as.vsetvli(t0, a0, Sew::kE64, Lmul::kM4);
  });
  EXPECT_EQ(vsetvli.op, Op::kVsetvli);
  EXPECT_EQ(vsetvli.rd, t0);
  EXPECT_EQ(vsetvli.rs1, a0);
  EXPECT_EQ(vsetvli.imm & 0x7, 2);         // LMUL=4 code
  EXPECT_EQ((vsetvli.imm >> 3) & 0x7, 3);  // SEW=64 code

  const auto vsetivli = with([](Assembler& as) {
    as.vsetivli(t0, 16, Sew::kE32, Lmul::kM1);
  });
  EXPECT_EQ(vsetivli.op, Op::kVsetivli);
  EXPECT_EQ(vsetivli.uimm, 16);
}

TEST(EncoderRoundTrip, VectorMemory) {
  struct Case {
    Op op;
    void (*emit)(Assembler&);
  };
  const Case cases[] = {
      {Op::kVle64, [](Assembler& as) { as.vle64(v8, a0); }},
      {Op::kVle32, [](Assembler& as) { as.vle32(v8, a0); }},
      {Op::kVse64, [](Assembler& as) { as.vse64(v8, a0); }},
      {Op::kVlse64, [](Assembler& as) { as.vlse64(v8, a0, t0); }},
      {Op::kVsse64, [](Assembler& as) { as.vsse64(v8, a0, t0); }},
      {Op::kVluxei64, [](Assembler& as) { as.vluxei64(v8, a0, v16); }},
      {Op::kVsuxei64, [](Assembler& as) { as.vsuxei64(v8, a0, v16); }},
  };
  for (const Case& test_case : cases) {
    const auto inst = encode_one(test_case.emit);
    ASSERT_EQ(inst.op, test_case.op) << op_name(test_case.op);
    EXPECT_EQ(inst.rd, v8);
    EXPECT_EQ(inst.rs1, a0);
    EXPECT_TRUE(inst.vm);
  }
  // Masked form.
  const auto masked = with([](Assembler& as) { as.vle64(v8, a0, false); });
  EXPECT_EQ(masked.op, Op::kVle64);
  EXPECT_FALSE(masked.vm);
}

TEST(EncoderRoundTrip, VectorArithmetic) {
  struct Case {
    Op op;
    void (*emit)(Assembler&);
  };
  const Case cases[] = {
      {Op::kVaddVV, [](Assembler& as) { as.vadd_vv(v1, v2, v3); }},
      {Op::kVaddVX, [](Assembler& as) { as.vadd_vx(v1, v2, a0); }},
      {Op::kVaddVI, [](Assembler& as) { as.vadd_vi(v1, v2, -5); }},
      {Op::kVsubVV, [](Assembler& as) { as.vsub_vv(v1, v2, v3); }},
      {Op::kVmulVV, [](Assembler& as) { as.vmul_vv(v1, v2, v3); }},
      {Op::kVmaccVV, [](Assembler& as) { as.vmacc_vv(v1, v2, v3); }},
      {Op::kVsllVI, [](Assembler& as) { as.vsll_vi(v1, v2, 3); }},
      {Op::kVmvVV, [](Assembler& as) { as.vmv_v_v(v1, v2); }},
      {Op::kVmvVX, [](Assembler& as) { as.vmv_v_x(v1, a0); }},
      {Op::kVmvVI, [](Assembler& as) { as.vmv_v_i(v1, 7); }},
      {Op::kVidV, [](Assembler& as) { as.vid_v(v1); }},
      {Op::kVmvXS, [](Assembler& as) { as.vmv_x_s(a0, v2); }},
      {Op::kVmvSX, [](Assembler& as) { as.vmv_s_x(v1, a0); }},
      {Op::kVmseqVX, [](Assembler& as) { as.vmseq_vx(v1, v2, a0); }},
      {Op::kVmsltVX, [](Assembler& as) { as.vmslt_vx(v1, v2, a0); }},
      {Op::kVredsumVS, [](Assembler& as) { as.vredsum_vs(v1, v2, v3); }},
      {Op::kVfaddVV, [](Assembler& as) { as.vfadd_vv(v1, v2, v3); }},
      {Op::kVfmulVV, [](Assembler& as) { as.vfmul_vv(v1, v2, v3); }},
      {Op::kVfmulVF, [](Assembler& as) { as.vfmul_vf(v1, v2, fa0); }},
      {Op::kVfmaccVV, [](Assembler& as) { as.vfmacc_vv(v1, v2, v3); }},
      {Op::kVfmaccVF, [](Assembler& as) { as.vfmacc_vf(v1, fa0, v2); }},
      {Op::kVfmvVF, [](Assembler& as) { as.vfmv_v_f(v1, fa0); }},
      {Op::kVfmvFS, [](Assembler& as) { as.vfmv_f_s(fa0, v2); }},
      {Op::kVfmvSF, [](Assembler& as) { as.vfmv_s_f(v1, fa0); }},
      {Op::kVfredusumVS,
       [](Assembler& as) { as.vfredusum_vs(v1, v2, v3); }},
      {Op::kVfredosumVS,
       [](Assembler& as) { as.vfredosum_vs(v1, v2, v3); }},
      {Op::kVmergeVVM, [](Assembler& as) { as.vmerge_vvm(v1, v2, v3); }},
      {Op::kVslide1downVX,
       [](Assembler& as) { as.vslide1down_vx(v1, v2, a0); }},
      {Op::kVslidedownVI,
       [](Assembler& as) { as.vslidedown_vi(v1, v2, 2); }},
  };
  for (const Case& test_case : cases) {
    const auto inst = encode_one(test_case.emit);
    ASSERT_EQ(inst.op, test_case.op)
        << "expected " << op_name(test_case.op) << " got "
        << op_name(inst.op);
  }
}

TEST(EncoderRoundTrip, VectorImmediateSignedness) {
  const auto inst = with([](Assembler& as) { as.vadd_vi(v1, v2, -5); });
  EXPECT_EQ(inst.imm, -5);
  const auto shift = with([](Assembler& as) { as.vsll_vi(v1, v2, 31); });
  // 31 encodes as 0b11111 which sign-extends to -1; the executor masks
  // shifts by SEW-1, so the semantics are unaffected.
  EXPECT_EQ(shift.imm & 0x1F, 31);
}

}  // namespace
}  // namespace coyote::isa
