// Property tests for the programmatic config surface (core/config_io.h):
// every documented key maps to a knob, and the parse→emit→parse cycle is a
// fixpoint — the round-trip guarantee the sweep engine and the results
// tables rely on.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/config_io.h"
#include "core/simulator.h"
#include "kernels/program_menu.h"

namespace coyote::core {
namespace {

/// A non-default, still-valid override for every documented key. The
/// coverage assertion below forces this table to grow whenever a knob is
/// added, so new keys cannot ship without round-trip coverage.
const std::map<std::string, std::string>& alternate_values() {
  static const std::map<std::string, std::string> values = {
      {"topo.cores", "12"},
      {"topo.cores_per_tile", "4"},
      {"core.vlen_bits", "256"},
      {"core.l1d_kb", "16"},
      {"core.l1i_kb", "64"},
      {"l2.size_kb", "512"},
      {"l2.ways", "8"},
      {"l2.mshrs", "32"},
      {"l2.banks_per_tile", "4"},
      {"l2.hit_latency", "10"},
      {"l2.miss_latency", "6"},
      {"l2.sharing", "private"},
      {"l2.mapping", "page-to-bank"},
      {"l2.prefetch", "next-line"},
      {"l2.prefetch_degree", "3"},
      {"l2.replacement", "fifo"},
      {"l2.coherence", "mesi"},
      {"topo.mesh", "2x4"},
      {"noc.model", "mesh"},
      {"noc.latency", "9"},
      {"noc.mesh_width", "2"},
      {"noc.mesh_hop_latency", "2"},
      {"noc.mesh_router_latency", "3"},
      {"noc.link_bandwidth", "2"},
      {"noc.buffer_flits", "16"},
      {"noc.flit_bytes", "32"},
      {"llc.enable", "true"},
      {"llc.size_kb", "4096"},
      {"llc.ways", "8"},
      {"llc.hit_latency", "25"},
      {"mc.count", "4"},
      {"mc.latency", "150"},
      {"mc.cycles_per_request", "8"},
      {"mc.model", "dram"},
      {"sim.interleave_quantum", "16"},
      {"sim.fast_forward", "true"},
      {"sim.batched_stepping", "false"},
      {"sim.watchdog_cycles", "100000"},
      {"fault.enable", "true"},
      {"fault.seed", "7"},
      {"fault.count", "3"},
      {"fault.targets", "mem+reg"},
      {"fault.window_begin", "10"},
      {"fault.window_end", "999"},
      {"fault.noc_retries", "2"},
      {"fault.noc_timeout", "64"},
      {"fault.mc_stall_cycles", "128"},
      {"ckpt.ffwd_instructions", "1000"},
      {"ckpt.warmup", "false"},
      {"ckpt.warmup_window", "500"},
      {"ckpt.stop_at_roi", "false"},
      {"iss.dbb_cache", "false"},
      {"iss.dbb_blocks", "256"},
      {"workload.kernel", "axpy"},
      {"workload.elf", "tests/fixtures/hello.elf"},
      {"workload.size", "48"},
      {"workload.seed", "7"},
  };
  return values;
}

TEST(ConfigIo, DocumentedKeysAreNonEmptyAndDescribed) {
  ASSERT_FALSE(config_keys().empty());
  for (const ConfigKeyInfo& info : config_keys()) {
    EXPECT_NE(info.key.find('.'), std::string::npos) << info.key;
    EXPECT_FALSE(info.default_value.empty()) << info.key;
    EXPECT_FALSE(info.description.empty()) << info.key;
    EXPECT_NE(config_usage().find(info.key), std::string::npos)
        << info.key << " missing from --help text";
  }
}

TEST(ConfigIo, AlternateTableCoversEveryDocumentedKey) {
  const auto& table = alternate_values();
  EXPECT_EQ(table.size(), config_keys().size());
  for (const ConfigKeyInfo& info : config_keys()) {
    ASSERT_TRUE(table.count(info.key))
        << "no alternate value for documented key " << info.key
        << " — extend alternate_values() when adding config knobs";
    EXPECT_NE(table.at(info.key), info.default_value)
        << info.key << ": alternate must differ from the default";
  }
}

TEST(ConfigIo, DefaultsRoundTripAsFixpoint) {
  // An empty map takes every documented default and emits them all back —
  // except keys marked !emit_when_default (frozen-table compatibility),
  // which must be *absent* while at their default.
  const simfw::ConfigMap emitted =
      config_to_map(config_from_map(simfw::ConfigMap{}));
  std::size_t expected_keys = 0;
  for (const ConfigKeyInfo& info : config_keys()) {
    if (info.emit_when_default) ++expected_keys;
  }
  EXPECT_EQ(emitted.values().size(), expected_keys);
  for (const ConfigKeyInfo& info : config_keys()) {
    if (info.emit_when_default) {
      EXPECT_EQ(emitted.get(info.key), info.default_value) << info.key;
    } else {
      EXPECT_FALSE(emitted.has(info.key))
          << info.key << " must be omitted while it holds its default";
    }
  }
  const simfw::ConfigMap again = config_to_map(config_from_map(emitted));
  EXPECT_EQ(emitted.values(), again.values());
  // A struct-default SimConfig (1 core — the library default, distinct
  // from the CLI's 8) also round-trips as a fixpoint.
  const simfw::ConfigMap structural = config_to_map(SimConfig{});
  EXPECT_EQ(structural.values(),
            config_to_map(config_from_map(structural)).values());
}

TEST(ConfigIo, EveryKeySurvivesRoundTripWithNonDefaultValue) {
  for (const ConfigKeyInfo& info : config_keys()) {
    simfw::ConfigMap map;
    map.set(info.key, alternate_values().at(info.key));
    const SimConfig parsed = config_from_map(map);
    const simfw::ConfigMap emitted = config_to_map(parsed);
    EXPECT_EQ(emitted.get(info.key), alternate_values().at(info.key))
        << info.key << " did not survive parse -> emit";
    const simfw::ConfigMap again = config_to_map(config_from_map(emitted));
    EXPECT_EQ(emitted.values(), again.values())
        << info.key << ": parse -> emit -> parse is not a fixpoint";
  }
}

TEST(ConfigIo, AllAlternatesTogetherRoundTrip) {
  simfw::ConfigMap map;
  for (const auto& [key, value] : alternate_values()) map.set(key, value);
  const simfw::ConfigMap emitted = config_to_map(config_from_map(map));
  EXPECT_EQ(emitted.values(), map.values());
}

TEST(ConfigIo, CoresKnobDrivesTopology) {
  simfw::ConfigMap map;
  map.set("topo.cores", "16");
  map.set("topo.cores_per_tile", "4");
  const SimConfig config = config_from_map(map);
  EXPECT_EQ(config.num_cores, 16u);
  EXPECT_EQ(config.num_tiles(), 4u);
}

TEST(ConfigIo, UnknownKeysThrowInsteadOfBeingIgnored) {
  {
    simfw::ConfigMap map;
    map.set("l2.sizekb", "1");  // typo'd leaf
    EXPECT_THROW(config_from_map(map), ConfigError);
  }
  {
    simfw::ConfigMap map;
    map.set("llx.size_kb", "1");  // typo'd group
    EXPECT_THROW(config_from_map(map), ConfigError);
  }
  {
    simfw::ConfigMap map;
    map.set("cores", "8");  // missing group
    EXPECT_THROW(config_from_map(map), ConfigError);
  }
}

TEST(ConfigIo, InvalidValuesThrow) {
  const auto reject = [](const char* key, const char* value) {
    simfw::ConfigMap map;
    map.set(key, value);
    EXPECT_THROW(config_from_map(map), ConfigError) << key << "=" << value;
  };
  reject("l2.sharing", "both");
  reject("l2.mapping", "diagonal");
  reject("l2.prefetch", "always");
  reject("l2.replacement", "plru");
  reject("l2.coherence", "mosi");
  reject("noc.model", "torus");
  reject("mc.model", "hbm");
  reject("llc.enable", "maybe");
  reject("topo.cores", "0");           // SimConfig::validate
  reject("sim.interleave_quantum", "0");
}

TEST(ConfigIo, FaultKeysNegativePaths) {
  const auto reject = [](const char* key, const char* value) {
    simfw::ConfigMap map;
    map.set(key, value);
    EXPECT_THROW(config_from_map(map), ConfigError) << key << "=" << value;
  };
  reject("fault.seeed", "1");        // typo'd leaf in the fault group
  reject("fault.enable", "yes");     // not a bool literal
  reject("fault.seed", "banana");    // malformed number
  reject("fault.seed", "");          // empty value
  reject("fault.count", "0");        // a plan must contain >= 1 event
  reject("fault.targets", "");       // no targets at all
  reject("fault.targets", "cosmic"); // unknown target token
  reject("fault.targets", "mem,reg");// wrong separator (axes own ',')
  {
    simfw::ConfigMap map;             // inverted injection window
    map.set("fault.window_begin", "100");
    map.set("fault.window_end", "50");
    EXPECT_THROW(config_from_map(map), ConfigError);
  }
  // The offending key is named in the message, so a 40-point campaign
  // spec that dies tells the user *which* token to fix.
  try {
    simfw::ConfigMap map;
    map.set("fault.targets", "cosmic");
    config_from_map(map);
    FAIL() << "bad fault.targets accepted";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("fault.targets"),
              std::string::npos)
        << error.what();
  }
}

// Property over the documented surface: every key rejects a mangled
// spelling and an empty value — nothing is silently ignored or defaulted.
TEST(ConfigIo, EveryDocumentedKeyRejectsMangledSpellingAndEmptyValue) {
  for (const ConfigKeyInfo& info : config_keys()) {
    {
      simfw::ConfigMap map;
      map.set(info.key + "_bogus", info.default_value);
      EXPECT_THROW(config_from_map(map), ConfigError) << info.key;
    }
    {
      simfw::ConfigMap map;
      map.set(info.key, "");
      EXPECT_THROW(config_from_map(map), ConfigError)
          << info.key << " accepted an empty value";
    }
  }
}

TEST(ConfigIo, ParsedConfigBuildsAndRunsDeterministically) {
  // The alternate design point is a valid machine end to end, and parsing
  // the emitted map reproduces it bit-for-bit in simulated time.
  simfw::ConfigMap map;
  map.set("topo.cores", "4");
  map.set("topo.cores_per_tile", "2");
  map.set("core.l1d_kb", "4");
  map.set("l2.size_kb", "8");
  map.set("l2.mapping", "page-to-bank");
  map.set("llc.enable", "true");
  map.set("llc.size_kb", "64");
  const auto run_cycles = [](const SimConfig& config) {
    Simulator sim(config);
    const auto program = kernels::build_named_kernel(
        "matmul_scalar", config.num_cores, 16, 11, sim.memory());
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(100'000'000);
    EXPECT_TRUE(result.all_exited);
    return result.cycles;
  };
  const SimConfig first = config_from_map(map);
  const SimConfig second = config_from_map(config_to_map(first));
  EXPECT_EQ(run_cycles(first), run_cycles(second));
  EXPECT_EQ(config_to_map(first).values(), config_to_map(second).values());
}

}  // namespace
}  // namespace coyote::core
