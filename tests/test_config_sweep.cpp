// Configuration-space property sweep: for every combination of L2 sharing,
// mapping policy, NoC model, MC model and LLC presence, a mixed kernel set
// must (a) produce host-reference-correct results and (b) be bit-
// deterministic in simulated time. This is the "any design point you can
// configure is a valid machine" contract of a design-space-exploration tool.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.h"
#include "kernels/kernels.h"

namespace coyote::core {
namespace {

struct SweepPoint {
  L2Sharing sharing;
  memhier::MappingPolicy mapping;
  memhier::NocModel noc;
  memhier::McModel mc;
  bool llc;
  bool prefetch;
};

std::string point_name(const ::testing::TestParamInfo<SweepPoint>& info) {
  const SweepPoint& p = info.param;
  std::string name;
  name += p.sharing == L2Sharing::kShared ? "shared" : "private";
  name += p.mapping == memhier::MappingPolicy::kSetInterleave ? "_setil"
                                                              : "_page";
  name += p.noc == memhier::NocModel::kIdealCrossbar ? "_xbar" : "_mesh";
  name += p.mc == memhier::McModel::kFixedLatency ? "_fixed" : "_dram";
  if (p.llc) name += "_llc";
  if (p.prefetch) name += "_pf";
  return name;
}

SimConfig config_for(const SweepPoint& point) {
  SimConfig config;
  config.num_cores = 8;
  config.cores_per_tile = 4;
  config.num_mcs = 2;
  config.l2_sharing = point.sharing;
  config.mapping = point.mapping;
  config.noc.model = point.noc;
  config.noc.mesh_width = 2;
  config.mc.model = point.mc;
  config.llc.enable = point.llc;
  config.llc.size_bytes = 256 * 1024;
  if (point.prefetch) {
    config.l2_bank.prefetch = memhier::PrefetchPolicy::kNextLine;
    config.l2_bank.prefetch_degree = 2;
  }
  // Small caches keep the whole hierarchy exercised on small workloads.
  config.core.l1d_size_bytes = 4 * 1024;
  config.l2_bank.size_bytes = 8 * 1024;
  return config;
}

class ConfigSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(ConfigSweep, MatmulCorrectAndDeterministic) {
  const auto workload = kernels::MatmulWorkload::generate(24, 17);
  const auto run_once = [&]() {
    Simulator sim(config_for(GetParam()));
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 8);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(500'000'000);
    EXPECT_TRUE(result.all_exited);
    const auto expected = workload.reference();
    const auto actual = workload.result(sim.memory());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(expected[i], actual[i], 1e-12);
    }
    return result.cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(ConfigSweep, SpmvGatherCorrect) {
  Simulator sim(config_for(GetParam()));
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(256, 512, 6, 18), 19);
  workload.install(sim.memory());
  const auto program = kernels::build_spmv_row_gather(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-12) << i;
  }
}

TEST_P(ConfigSweep, AtomicHistogramExact) {
  Simulator sim(config_for(GetParam()));
  const auto workload = kernels::HistogramWorkload::generate(2048, 32, 0.5, 20);
  workload.install(sim.memory());
  const auto program = kernels::build_histogram_atomic(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  EXPECT_EQ(workload.reference(), workload.result(sim.memory()));
}

std::vector<SweepPoint> sweep_points() {
  std::vector<SweepPoint> points;
  for (const auto sharing : {L2Sharing::kShared, L2Sharing::kPrivate}) {
    for (const auto mapping : {memhier::MappingPolicy::kSetInterleave,
                               memhier::MappingPolicy::kPageToBank}) {
      for (const auto noc : {memhier::NocModel::kIdealCrossbar,
                             memhier::NocModel::kMesh2D}) {
        // MC model / LLC / prefetch toggles ride along pairwise to keep the
        // matrix at 16 points instead of 64.
        const bool odd = points.size() % 2 != 0;
        points.push_back(SweepPoint{
            sharing, mapping, noc,
            odd ? memhier::McModel::kDramRowBuffer
                : memhier::McModel::kFixedLatency,
            /*llc=*/odd, /*prefetch=*/!odd});
        points.push_back(SweepPoint{
            sharing, mapping, noc,
            odd ? memhier::McModel::kFixedLatency
                : memhier::McModel::kDramRowBuffer,
            /*llc=*/!odd, /*prefetch=*/odd});
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, ConfigSweep,
                         ::testing::ValuesIn(sweep_points()), point_name);

}  // namespace
}  // namespace coyote::core
