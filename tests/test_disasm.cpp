#include "isa/disasm.h"

#include <gtest/gtest.h>

#include "isa/decoder.h"

namespace coyote::isa {
namespace {

std::string dis(std::uint32_t word) { return disassemble(decode(word)); }

TEST(Disasm, ScalarForms) {
  EXPECT_EQ(dis(0x02A58513), "addi a0, a1, 42");
  EXPECT_EQ(dis(0x123452B7), "lui t0, 0x12345");
  EXPECT_EQ(dis(0x00C13823), "sd a2, 16(sp)");
  EXPECT_EQ(dis(0x00B50863), "beq a0, a1, 16");
  EXPECT_EQ(dis(0x02C58533), "mul a0, a1, a2");
  EXPECT_EQ(dis(0x00053507), "fld fa0, 0(a0)");
  EXPECT_EQ(dis(0x00000073), "ecall");
  EXPECT_EQ(dis(0x008000EF), "jal ra, 8");
}

TEST(Disasm, IllegalShowsRawWord) {
  EXPECT_EQ(dis(0xDEADBEFF), "illegal 0xdeadbeff");
}

TEST(Disasm, VectorForms) {
  EXPECT_EQ(dis(0x02057407), "vle64.v v8, (a0)");
  EXPECT_EQ(dis(0x022180D7), "vadd.vv v1, v2, v3");
  // Masked variant shows the v0.t suffix.
  EXPECT_EQ(dis(0x022180D7 & ~(1u << 25)), "vadd.vv v1, v2, v3, v0.t");
}

TEST(Disasm, FmaShowsThreeSources) {
  // fmadd.d ft0, ft1, ft2, ft3
  const std::uint32_t word = 0x43 | (0u << 7) | (7u << 12) | (1u << 15) |
                             (2u << 20) | (1u << 25) | (3u << 27);
  EXPECT_EQ(dis(word), "fmadd.d ft0, ft1, ft2, ft3");
}

TEST(Disasm, EveryDecodedOpDisassemblesNonEmpty) {
  // Fuzz a pile of words; whatever decodes must render something readable.
  for (std::uint64_t seed = 0; seed < 20000; ++seed) {
    const auto word = static_cast<std::uint32_t>(seed * 2654435761u);
    const auto inst = decode(word | 0x3);
    const std::string text = disassemble(inst);
    ASSERT_FALSE(text.empty());
  }
}

}  // namespace
}  // namespace coyote::isa
