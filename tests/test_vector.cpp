// Vector-engine semantics: configuration, memory ops, arithmetic,
// reductions, masking and LMUL behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.h"
#include "iss/hart.h"
#include "testutil.h"

namespace coyote::iss {
namespace {

using isa::Assembler;
using isa::Lmul;
using isa::Sew;
using test::emit_exit;
using test::HartRunner;
using namespace coyote::isa;

constexpr Addr kA = 0x20000;
constexpr Addr kB = 0x21000;
constexpr Addr kC = 0x22000;

TEST(Vector, VsetvliComputesVl) {
  HartRunner runner(512);  // VLEN=512 -> 8 e64 elements at m1
  Assembler as(0x1000);
  as.li(a0, 5);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);   // min(5, 8) = 5
  as.mv(s2, a1);
  as.li(a0, 100);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);   // min(100, 8) = 8
  as.mv(s3, a1);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM4);   // min(100, 32) = 32
  as.mv(s4, a1);
  as.vsetvli(a1, a0, Sew::kE32, Lmul::kM1);   // min(100, 16) = 16
  as.mv(s5, a1);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(s2), 5u);
  EXPECT_EQ(runner.hart().x(s3), 8u);
  EXPECT_EQ(runner.hart().x(s4), 32u);
  EXPECT_EQ(runner.hart().x(s5), 16u);
}

TEST(Vector, VsetvliX0RulesKeepVl) {
  HartRunner runner(512);
  Assembler as(0x1000);
  as.li(a0, 6);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);  // vl = 6
  as.vsetvli(zero, zero, Sew::kE64, Lmul::kM1);  // rd=rs1=x0: keep vl
  as.csrr(s2, 0xC20);  // vl CSR
  as.vsetvli(a2, zero, Sew::kE64, Lmul::kM1);  // rs1=x0, rd!=x0: vl=VLMAX
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(s2), 6u);
  EXPECT_EQ(runner.hart().x(a2), 8u);
}

TEST(Vector, UnitStrideLoadStore) {
  HartRunner runner(512);
  for (int i = 0; i < 8; ++i) {
    runner.memory().write<double>(kA + 8 * i, 1.0 + i);
  }
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(s2, static_cast<std::int64_t>(kC));
  as.vle64(v8, s1);
  as.vse64(v8, s2);
  emit_exit(as);
  runner.run(as);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(runner.memory().read<double>(kC + 8 * i), 1.0 + i);
  }
}

TEST(Vector, StridedLoad) {
  HartRunner runner(512);
  for (int i = 0; i < 32; ++i) {
    runner.memory().write<double>(kA + 8 * i, static_cast<double>(i));
  }
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(s2, 32);  // stride: every 4th element
  as.vlse64(v8, s1, s2);
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v8, s3);
  emit_exit(as);
  runner.run(as);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(runner.memory().read<double>(kC + 8 * i),
              static_cast<double>(4 * i));
  }
}

TEST(Vector, IndexedGatherScatter) {
  HartRunner runner(512);
  for (int i = 0; i < 16; ++i) {
    runner.memory().write<double>(kA + 8 * i, 100.0 + i);
  }
  // Byte-offset indices: gather elements 15, 3, 7, 0.
  const std::uint64_t offsets[] = {15 * 8, 3 * 8, 7 * 8, 0};
  runner.memory().poke_array(kB, offsets, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kB));
  as.vle64(v4, s1);  // indices
  as.li(s2, static_cast<std::int64_t>(kA));
  as.vluxei64(v8, s2, v4);
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vsuxei64(v8, s3, v4);  // scatter back to same offsets in C
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.memory().read<double>(kC + 15 * 8), 115.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 3 * 8), 103.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 7 * 8), 107.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 0), 100.0);
}

TEST(Vector, IntegerArithmeticVVAndVX) {
  HartRunner runner(512);
  const std::uint64_t a_data[] = {1, 2, 3, 4};
  const std::uint64_t b_data[] = {10, 20, 30, 40};
  runner.memory().poke_array(kA, a_data, 4);
  runner.memory().poke_array(kB, b_data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(s2, static_cast<std::int64_t>(kB));
  as.vle64(v1, s1);
  as.vle64(v2, s2);
  as.vadd_vv(v3, v1, v2);        // {11,22,33,44}
  as.li(t0, 100);
  as.vadd_vx(v4, v3, t0);        // {111,122,133,144}
  as.vmul_vv(v5, v1, v2);        // {10,40,90,160}
  as.vsub_vv(v6, v2, v1);        // v6 = v1 - v2?? vsub.vv vd,vs2,vs1: vd=vs2-vs1
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v3, s3);
  as.addi(s3, s3, 32);
  as.vse64(v4, s3);
  as.addi(s3, s3, 32);
  as.vse64(v5, s3);
  as.addi(s3, s3, 32);
  as.vse64(v6, s3);
  emit_exit(as);
  runner.run(as);
  const auto v3_data = runner.memory().peek_array<std::uint64_t>(kC, 4);
  EXPECT_EQ(v3_data, (std::vector<std::uint64_t>{11, 22, 33, 44}));
  const auto v4_data = runner.memory().peek_array<std::uint64_t>(kC + 32, 4);
  EXPECT_EQ(v4_data, (std::vector<std::uint64_t>{111, 122, 133, 144}));
  const auto v5_data = runner.memory().peek_array<std::uint64_t>(kC + 64, 4);
  EXPECT_EQ(v5_data, (std::vector<std::uint64_t>{10, 40, 90, 160}));
  // vsub.vv vd, vs2, vs1 computes vs2 - vs1; we passed (v6, v2, v1) so the
  // assembler operand order vsub_vv(vd, vs2, vs1) gives v2 - v1.
  const auto v6_data = runner.memory().peek_array<std::uint64_t>(kC + 96, 4);
  EXPECT_EQ(v6_data, (std::vector<std::uint64_t>{9, 18, 27, 36}));
}

TEST(Vector, MaskedAddLeavesInactiveElements) {
  HartRunner runner(512);
  const std::uint64_t a_data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  runner.memory().poke_array(kA, a_data, 8);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vmv_v_i(v2, 0);             // destination zeroed
  as.li(t0, 4);
  as.vmslt_vx(v0, v1, t0);       // mask: elements < 4 -> {1,1,1,0,...}
  as.vadd_vi(v2, v1, 10, /*vm=*/false);  // masked add
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v2, s3);
  emit_exit(as);
  runner.run(as);
  const auto out = runner.memory().peek_array<std::uint64_t>(kC, 8);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{11, 12, 13, 0, 0, 0, 0, 0}));
}

TEST(Vector, LmulGroupsSpanRegisters) {
  HartRunner runner(256);  // VLEN=256 -> 4 e64 per reg, m4 -> 16 elements
  std::vector<std::uint64_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i * 3;
  runner.memory().poke_array(kA, data.data(), 16);
  Assembler as(0x1000);
  as.li(a0, 16);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM4);
  as.mv(s2, a1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v8, s1);              // fills v8..v11
  as.vadd_vi(v8, v8, 1);
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v8, s3);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(s2), 16u);
  const auto out = runner.memory().peek_array<std::uint64_t>(kC, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], data[i] + 1);
  // The group really spans v8..v11: v9's low element is element 4.
  const auto* v9_bytes = runner.hart().vreg_data(9);
  std::uint64_t v9_first;
  std::memcpy(&v9_first, v9_bytes, 8);
  EXPECT_EQ(v9_first, data[4] + 1);
}

TEST(Vector, FpArithmeticAndFma) {
  HartRunner runner(512);
  const double a_data[] = {1.0, 2.0, 3.0, 4.0};
  const double b_data[] = {0.5, 0.5, 0.5, 0.5};
  runner.memory().poke_array(kA, a_data, 4);
  runner.memory().poke_array(kB, b_data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(s2, static_cast<std::int64_t>(kB));
  as.vle64(v1, s1);
  as.vle64(v2, s2);
  as.vfadd_vv(v3, v1, v2);             // {1.5, 2.5, 3.5, 4.5}
  as.vfmul_vv(v4, v1, v2);             // {0.5, 1.0, 1.5, 2.0}
  as.li(t0, 2);
  as.fcvt_d_l(fa0, t0);                // 2.0
  as.vfmv_v_f(v5, fa0);                // {2,2,2,2}
  as.vfmacc_vv(v5, v1, v2);            // 2 + a*b = {2.5, 3.0, 3.5, 4.0}
  as.vfmacc_vf(v4, fa0, v1, true);     // 0.5+2*1=2.5, 1+4=5, ...
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v3, s3);
  as.addi(s3, s3, 32);
  as.vse64(v5, s3);
  as.addi(s3, s3, 32);
  as.vse64(v4, s3);
  emit_exit(as);
  runner.run(as);
  const auto v3_out = runner.memory().peek_array<double>(kC, 4);
  EXPECT_EQ(v3_out, (std::vector<double>{1.5, 2.5, 3.5, 4.5}));
  const auto v5_out = runner.memory().peek_array<double>(kC + 32, 4);
  EXPECT_EQ(v5_out, (std::vector<double>{2.5, 3.0, 3.5, 4.0}));
  const auto v4_out = runner.memory().peek_array<double>(kC + 64, 4);
  EXPECT_EQ(v4_out, (std::vector<double>{2.5, 5.0, 7.5, 10.0}));
}

TEST(Vector, Reductions) {
  HartRunner runner(512);
  const std::uint64_t ints[] = {5, 1, 9, 3};
  const double doubles[] = {0.5, 1.5, 2.5, 3.5};
  runner.memory().poke_array(kA, ints, 4);
  runner.memory().poke_array(kB, doubles, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vmv_v_i(v2, 0);
  as.vredsum_vs(v3, v1, v2);     // 18
  as.vmv_x_s(s2, v3);
  as.li(s3, static_cast<std::int64_t>(kB));
  as.vle64(v4, s3);
  as.fmv_d_x(fa0, zero);
  as.vfmv_s_f(v5, fa0);
  as.vfredosum_vs(v6, v4, v5);   // 8.0
  as.vfmv_f_s(fa1, v6);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(s2), 18u);
  EXPECT_DOUBLE_EQ(runner.hart().f64(fa1), 8.0);
}

TEST(Vector, VidVmvAndSlide) {
  HartRunner runner(512);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.vid_v(v1);                  // {0..7}
  as.li(t0, 42);
  as.vslide1down_vx(v2, v1, t0); // {1..7, 42}
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v2, s3);
  as.vmv_x_s(s2, v1);            // 0
  as.li(t1, 7);
  as.vmv_s_x(v1, t1);            // v1[0] = 7
  as.vmv_x_s(s4, v1);
  emit_exit(as);
  runner.run(as);
  const auto out = runner.memory().peek_array<std::uint64_t>(kC, 8);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 42}));
  EXPECT_EQ(runner.hart().x(s2), 0u);
  EXPECT_EQ(runner.hart().x(s4), 7u);
}

TEST(Vector, Sew32Elements) {
  HartRunner runner(512);
  const std::uint32_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  runner.memory().poke_array(kA, data, 8);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE32, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle32(v1, s1);
  as.vadd_vv(v2, v1, v1);
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse32(v2, s3);
  emit_exit(as);
  runner.run(as);
  const auto out = runner.memory().peek_array<std::uint32_t>(kC, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], data[i] * 2);
}

TEST(Vector, FractionalLmulRejected) {
  HartRunner runner(512);
  Assembler as(0x1000);
  // vtype with lmul code 5 (mf8) is unsupported: craft raw vsetvli.
  as.li(a0, 4);
  as.emit(0x57 | (5u << 7) | (7u << 12) | (10u << 15) | (0x05u << 20));
  emit_exit(as);
  EXPECT_THROW(runner.run(as), ExecutionError);
}

TEST(Vector, ElementAccessesRecordedPerElement) {
  HartRunner runner(512);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  emit_exit(as);
  const auto& words = as.finish();
  runner.memory().poke_words(0x1000, words);
  runner.hart().reset(0x1000);
  StepInfo info;
  while (true) {
    const auto inst =
        isa::decode(runner.memory().read<std::uint32_t>(runner.hart().pc()));
    info.clear();
    runner.hart().execute(inst, info);
    if (inst.op == isa::Op::kVle64) break;
  }
  ASSERT_EQ(info.accesses.size(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(info.accesses[i].addr, kA + 8 * i);
    EXPECT_EQ(info.accesses[i].size, 8);
    EXPECT_FALSE(info.accesses[i].is_store);
  }
}

}  // namespace
}  // namespace coyote::iss
