// Scalar executor semantics. Each test assembles a snippet, runs it to the
// exit syscall, and inspects architectural state.
#include "iss/hart.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "iss/csr.h"
#include "testutil.h"

namespace coyote::iss {
namespace {

using isa::Assembler;
using test::emit_exit;
using test::HartRunner;
using namespace coyote::isa;  // register names

TEST(Hart, AluImmediateOps) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 100);
  as.addi(a2, a1, -30);
  as.slti(a3, a1, 101);
  as.sltiu(a4, a1, 99);
  as.xori(a5, a1, 0xFF);
  as.ori(a6, a1, 0x0F);
  as.andi(s2, a1, 0x0F);
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(a2), 70u);
  EXPECT_EQ(hart.x(a3), 1u);
  EXPECT_EQ(hart.x(a4), 0u);
  EXPECT_EQ(hart.x(a5), 155u);
  EXPECT_EQ(hart.x(a6), 111u);
  EXPECT_EQ(hart.x(s2), 4u);
}

TEST(Hart, RegisterZeroIsImmutable) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 5);
  as.add(zero, a1, a1);
  as.mv(a2, zero);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(0), 0u);
  EXPECT_EQ(runner.hart().x(a2), 0u);
}

TEST(Hart, ShiftSemantics) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, -8);
  as.srai(a2, a1, 1);        // -4
  as.srli(a3, a1, 60);       // 0xF
  as.slli(a4, a1, 2);        // -32
  as.li(t0, 3);
  as.sll(a5, a1, t0);        // -64
  as.sra(a6, a1, t0);        // -1
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a2)), -4);
  EXPECT_EQ(hart.x(a3), 0xFu);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a4)), -32);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a5)), -64);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a6)), -1);
}

TEST(Hart, Word32Ops) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 0x7FFFFFFF);
  as.addiw(a2, a1, 1);           // wraps to INT32_MIN, sign-extended
  as.li(t0, 1);
  as.addw(a3, a1, t0);
  as.slliw(a4, t0, 31);          // INT32_MIN
  as.li(t1, 0xFFFFFFFF);
  as.srliw(a5, t1, 4);           // 0x0FFFFFFF
  as.sraiw(a6, t1, 4);           // -1
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a2)), INT64_C(-2147483648));
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a3)), INT64_C(-2147483648));
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a4)), INT64_C(-2147483648));
  EXPECT_EQ(hart.x(a5), 0x0FFFFFFFu);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a6)), -1);
}

TEST(Hart, MulDivEdgeCases) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, std::numeric_limits<std::int64_t>::min());
  as.li(a2, -1);
  as.div(a3, a1, a2);    // overflow -> INT64_MIN
  as.rem(a4, a1, a2);    // overflow -> 0
  as.li(t0, 0);
  as.div(a5, a1, t0);    // div by zero -> -1
  as.rem(a6, a1, t0);    // rem by zero -> dividend
  as.li(s2, 7);
  as.li(s3, -3);
  as.div(s4, s2, s3);    // -2 (trunc toward zero)
  as.rem(s5, s2, s3);    // 1
  as.mulhu(s6, a2, a2);  // (2^64-1)^2 >> 64
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(a3), static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::min()));
  EXPECT_EQ(hart.x(a4), 0u);
  EXPECT_EQ(hart.x(a5), ~0ULL);
  EXPECT_EQ(hart.x(a6), static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::min()));
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s4)), -2);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s5)), 1);
  EXPECT_EQ(hart.x(s6), ~0ULL - 1);  // 0xFFFF...FFFE
}

TEST(Hart, Mulh) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, -2);
  as.li(a2, 3);
  as.mulh(a3, a1, a2);   // high of -6 = -1
  as.mul(a4, a1, a2);    // -6
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a3)), -1);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a4)), -6);
}

TEST(Hart, LoadStoreAllWidths) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(s1, 0x20000);
  as.li(a1, -2);                  // 0xFFFF...FE
  as.sb(a1, 0, s1);
  as.sh(a1, 8, s1);
  as.sw(a1, 16, s1);
  as.sd(a1, 24, s1);
  as.lb(a2, 0, s1);               // -2
  as.lbu(a3, 0, s1);              // 0xFE
  as.lh(a4, 8, s1);               // -2
  as.lhu(a5, 8, s1);              // 0xFFFE
  as.lw(a6, 16, s1);              // -2
  as.lwu(s2, 16, s1);             // 0xFFFFFFFE
  as.ld(s3, 24, s1);              // -2
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a2)), -2);
  EXPECT_EQ(hart.x(a3), 0xFEu);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a4)), -2);
  EXPECT_EQ(hart.x(a5), 0xFFFEu);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a6)), -2);
  EXPECT_EQ(hart.x(s2), 0xFFFFFFFEu);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s3)), -2);
}

TEST(Hart, BranchesAndLoop) {
  // Sum 1..10 with a loop.
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 0);   // sum
  as.li(a2, 1);   // i
  as.li(a3, 10);
  auto loop = as.here();
  as.add(a1, a1, a2);
  as.addi(a2, a2, 1);
  as.ble(a2, a3, loop);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a1), 55u);
}

TEST(Hart, JalJalrLinkage) {
  HartRunner runner;
  Assembler as(0x1000);
  auto func = as.make_label();
  auto after = as.make_label();
  as.li(a1, 0);
  as.call(func);       // jal ra, func
  as.j(after);
  as.bind(func);
  as.li(a1, 99);
  as.ret();
  as.bind(after);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a1), 99u);
}

TEST(Hart, FpDoubleArithmetic) {
  HartRunner runner;
  runner.memory().write<double>(0x20000, 1.5);
  runner.memory().write<double>(0x20008, -0.25);
  Assembler as(0x1000);
  as.li(s1, 0x20000);
  as.fld(fa0, 0, s1);
  as.fld(fa1, 8, s1);
  as.fadd_d(fa2, fa0, fa1);   // 1.25
  as.fsub_d(fa3, fa0, fa1);   // 1.75
  as.fmul_d(fa4, fa0, fa1);   // -0.375
  as.fdiv_d(fa5, fa0, fa1);   // -6
  as.fmadd_d(fa6, fa0, fa1, fa2);  // -0.375 + 1.25 = 0.875
  as.fsqrt_d(fa7, fa2);       // sqrt(1.25)
  as.fmin_d(fs2, fa0, fa1);
  as.fmax_d(fs3, fa0, fa1);
  as.fsd(fa2, 16, s1);
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_DOUBLE_EQ(hart.f64(fa2), 1.25);
  EXPECT_DOUBLE_EQ(hart.f64(fa3), 1.75);
  EXPECT_DOUBLE_EQ(hart.f64(fa4), -0.375);
  EXPECT_DOUBLE_EQ(hart.f64(fa5), -6.0);
  EXPECT_DOUBLE_EQ(hart.f64(fa6), 0.875);
  EXPECT_DOUBLE_EQ(hart.f64(fa7), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(hart.f64(fs2), -0.25);
  EXPECT_DOUBLE_EQ(hart.f64(fs3), 1.5);
  EXPECT_DOUBLE_EQ(runner.memory().read<double>(0x20010), 1.25);
}

TEST(Hart, FpCompareAndConvert) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(t0, -7);
  as.fcvt_d_l(fa0, t0);       // -7.0
  as.li(t1, 3);
  as.fcvt_d_l(fa1, t1);       // 3.0
  as.feq_d(a1, fa0, fa0);     // 1
  as.flt_d(a2, fa0, fa1);     // 1
  as.fle_d(a3, fa1, fa0);     // 0
  as.fcvt_l_d(a4, fa0);       // -7
  as.fmv_x_d(a5, fa1);        // raw bits of 3.0
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(a1), 1u);
  EXPECT_EQ(hart.x(a2), 1u);
  EXPECT_EQ(hart.x(a3), 0u);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a4)), -7);
  EXPECT_EQ(hart.x(a5), 0x4008000000000000ULL);
}

TEST(Hart, FsgnjFamily) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(t0, 5);
  as.fcvt_d_l(fa0, t0);
  as.li(t1, -2);
  as.fcvt_d_l(fa1, t1);
  as.fsgnj_d(fa2, fa0, fa1);  // -5
  as.fmv_d(fa3, fa1);         // -2 (pseudo = fsgnj with same reg)
  emit_exit(as);
  runner.run(as);
  EXPECT_DOUBLE_EQ(runner.hart().f64(fa2), -5.0);
  EXPECT_DOUBLE_EQ(runner.hart().f64(fa3), -2.0);
}

TEST(Hart, CsrAccess) {
  HartRunner runner;
  Assembler as(0x1000);
  as.csrr(a1, csr::kMhartid);
  as.csrr(a2, csr::kVlenb);
  as.csrr(a3, csr::kInstret);
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(a1), 0u);            // hart 0
  EXPECT_EQ(hart.x(a2), 512u / 8);      // vlenb for VLEN=512
  EXPECT_GT(hart.x(a3), 0u);            // some instructions retired
}

TEST(Hart, UnknownCsrThrows) {
  HartRunner runner;
  Assembler as(0x1000);
  as.csrr(a1, 0x123);
  emit_exit(as);
  EXPECT_THROW(runner.run(as), ExecutionError);
}

TEST(Hart, ExitCodePropagates) {
  HartRunner runner;
  Assembler as(0x1000);
  emit_exit(as, 42);
  EXPECT_EQ(runner.run(as), 42);
}

TEST(Hart, WriteSyscallCapturesConsole) {
  HartRunner runner;
  const char message[] = "hi coyote";
  runner.memory().write_bytes(
      0x30000, reinterpret_cast<const std::uint8_t*>(message), 9);
  Assembler as(0x1000);
  as.li(a0, 1);          // fd = stdout
  as.li(a1, 0x30000);    // buf
  as.li(a2, 9);          // count
  as.li(a7, 64);         // write
  as.ecall();
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().console(), "hi coyote");
}

TEST(Hart, IllegalInstructionThrows) {
  HartRunner runner;
  Assembler as(0x1000);
  as.emit(0x0000007F);
  EXPECT_THROW(runner.run(as), ExecutionError);
}

TEST(Hart, InstretCounts) {
  HartRunner runner;
  Assembler as(0x1000);
  as.nop();
  as.nop();
  as.nop();
  emit_exit(as);
  runner.run(as);
  // 3 nops + li a7 + li a0 + ecall = 6.
  EXPECT_EQ(runner.hart().instret(), 6u);
}

TEST(Hart, MemAccessesRecorded) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(s1, 0x20000);
  as.ld(a1, 0, s1);
  emit_exit(as);
  const auto& words = as.finish();
  runner.memory().poke_words(0x1000, words);
  runner.hart().reset(0x1000);
  // Step through the li expansion until we reach the ld.
  StepInfo info;
  while (true) {
    const auto inst =
        isa::decode(runner.memory().read<std::uint32_t>(runner.hart().pc()));
    info.clear();
    runner.hart().execute(inst, info);
    if (inst.op == isa::Op::kLd) break;
  }
  ASSERT_EQ(info.accesses.size(), 1u);
  EXPECT_EQ(info.accesses[0].addr, 0x20000u);
  EXPECT_EQ(info.accesses[0].size, 8);
  EXPECT_FALSE(info.accesses[0].is_store);
}

TEST(Hart, ResetClearsState) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 7);
  emit_exit(as);
  runner.run(as);
  runner.hart().reset(0x1000);
  EXPECT_EQ(runner.hart().x(a1), 0u);
  EXPECT_EQ(runner.hart().pc(), 0x1000u);
  EXPECT_EQ(runner.hart().instret(), 0u);
}

TEST(Hart, BadVlenRejected) {
  SparseMemory memory;
  EXPECT_THROW(Hart(0, &memory, VectorConfig{48}), ConfigError);
  EXPECT_THROW(Hart(0, &memory, VectorConfig{32}), ConfigError);
  EXPECT_THROW(Hart(0, nullptr, VectorConfig{512}), ConfigError);
}

}  // namespace
}  // namespace coyote::iss
