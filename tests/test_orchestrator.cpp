// Full-system integration: the Orchestrator driving cores against the event
// model. Verifies the paper's execution semantics (round-robin stepping,
// RAW stalls resolved by fills, lock-step event advancement), determinism,
// L2 sharing modes, and fast-forward equivalence.
#include "core/orchestrator.h"

#include <gtest/gtest.h>

#include <set>

#include "core/simulator.h"
#include "kernels/kernels.h"
#include "testutil.h"

namespace coyote::core {
namespace {

using isa::Assembler;
using test::emit_exit;
using namespace coyote::isa;

SimConfig small_config(std::uint32_t cores = 2) {
  SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 2;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 1;
  return config;
}

TEST(Orchestrator, SingleInstructionProgramTerminates) {
  Simulator sim(small_config(1));
  Assembler as(0x1000);
  emit_exit(as, 5);
  sim.load_program(0x1000, as.finish(), 0x1000);
  const auto result = sim.run(100000);
  EXPECT_TRUE(result.all_exited);
  EXPECT_EQ(result.exit_codes[0], 5);
  EXPECT_EQ(result.instructions, 3u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(Orchestrator, PerCoreExitCodesViaHartid) {
  Simulator sim(small_config(4));
  Assembler as(0x1000);
  as.csrr(a0, 0xF14);   // exit code = hartid
  as.li(a7, 93);
  as.ecall();
  sim.load_program(0x1000, as.finish(), 0x1000);
  const auto result = sim.run(100000);
  ASSERT_TRUE(result.all_exited);
  for (CoreId core = 0; core < 4; ++core) {
    EXPECT_EQ(result.exit_codes[core], core);
  }
}

TEST(Orchestrator, CycleLimitReported) {
  Simulator sim(small_config(1));
  Assembler as(0x1000);
  auto forever = as.here();
  as.j(forever);
  sim.load_program(0x1000, as.finish(), 0x1000);
  const auto result = sim.run(1000);
  EXPECT_FALSE(result.all_exited);
  EXPECT_TRUE(result.hit_cycle_limit);
  EXPECT_GE(result.cycles, 1000u);
}

TEST(Orchestrator, MemoryLatencyShowsInCycleCount) {
  // A dependent-load chain takes far more cycles than instructions: every
  // L1 miss costs NoC + L2 + NoC (+ memory on L2 miss).
  SimConfig config = small_config(1);
  config.mc.latency = 200;
  Simulator sim(config);
  Assembler as(0x1000);
  as.li(s1, 0x100000);
  // 8 dependent loads from distinct lines: pointer chase style.
  for (int i = 0; i < 8; ++i) {
    as.ld(a1, 0, s1);          // miss
    as.add(s1, s1, a1);        // RAW: stalls until fill
    as.addi(s1, s1, 64);
  }
  emit_exit(as);
  sim.load_program(0x1000, as.finish(), 0x1000);
  const auto result = sim.run(1'000'000);
  ASSERT_TRUE(result.all_exited);
  // At least 8 * mc latency worth of stall cycles.
  EXPECT_GT(result.cycles, 8u * 200u);
  const auto& counters = sim.core(0).counters();
  EXPECT_GT(counters.raw_stall_cycles, 0u);
}

TEST(Orchestrator, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Simulator sim(small_config(4));
    const auto workload = kernels::MatmulWorkload::generate(12, 7);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(10'000'000);
    EXPECT_TRUE(result.all_exited);
    return result.cycles;
  };
  const Cycle first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
}

TEST(Orchestrator, SharedL2SpreadsAcrossAllBanks) {
  SimConfig config = small_config(4);  // 2 tiles -> 4 banks
  config.l2_sharing = L2Sharing::kShared;
  Simulator sim(config);
  // Orchestrator routing: consecutive lines rotate over all four banks.
  auto& orch = sim.orchestrator();
  std::set<BankId> banks;
  for (Addr line = 0; line < 64 * 8; line += 64) {
    banks.insert(orch.bank_for(0, line));
  }
  EXPECT_EQ(banks.size(), 4u);
}

TEST(Orchestrator, PrivateL2StaysInTile) {
  SimConfig config = small_config(4);  // tiles of 2 cores, 2 banks each
  config.l2_sharing = L2Sharing::kPrivate;
  Simulator sim(config);
  auto& orch = sim.orchestrator();
  for (Addr line = 0; line < 64 * 16; line += 64) {
    // Core 0/1 -> tile 0 -> banks {0,1}; core 2/3 -> tile 1 -> banks {2,3}.
    EXPECT_LT(orch.bank_for(0, line), 2u);
    EXPECT_GE(orch.bank_for(3, line), 2u);
  }
}

TEST(Orchestrator, L2StatisticsAccumulate) {
  Simulator sim(small_config(2));
  const auto workload = kernels::MatmulWorkload::generate(16, 3);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 2);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(10'000'000).all_exited);

  std::uint64_t total_accesses = 0;
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    total_accesses +=
        sim.l2_bank(bank).stats().find_counter("accesses").get();
  }
  EXPECT_GT(total_accesses, 0u);
  std::uint64_t mc_reads = sim.mc(0).stats().find_counter("reads").get();
  EXPECT_GT(mc_reads, 0u);
}

TEST(Orchestrator, InterleavedModeProducesSameResults) {
  const auto run_with_quantum = [](std::uint32_t quantum) {
    SimConfig config = small_config(2);
    config.interleave_quantum = quantum;
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(10, 9);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 2);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(10'000'000);
    EXPECT_TRUE(result.all_exited);
    return workload.result(sim.memory());
  };
  // Functional results must be identical regardless of interleaving
  // (only timing fidelity differs).
  EXPECT_EQ(run_with_quantum(1), run_with_quantum(16));
}

TEST(Orchestrator, InterleavedModeTakesFewerSchedulingRounds) {
  const auto cycles_with_quantum = [](std::uint32_t quantum) {
    SimConfig config = small_config(2);
    config.interleave_quantum = quantum;
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(12, 9);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 2);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(100'000'000);
    EXPECT_TRUE(result.all_exited);
    return result;
  };
  const auto accurate = cycles_with_quantum(1);
  const auto fast = cycles_with_quantum(32);
  EXPECT_EQ(accurate.instructions, fast.instructions);
}

TEST(Orchestrator, WritebackTrafficFlowsToMemory) {
  // Tiny L1D forces dirty evictions; writes must reach the MC eventually.
  SimConfig config = small_config(1);
  config.core.l1d_size_bytes = 256;
  config.core.l1d_ways = 2;
  config.l2_bank.size_bytes = 512;  // tiny L2 too
  config.l2_bank.ways = 2;
  Simulator sim(config);
  Assembler as(0x1000);
  as.li(s1, 0x100000);
  as.li(a1, 1);
  // Store to 64 distinct lines: many dirty evictions.
  as.li(a2, 64);
  auto loop = as.here();
  as.sd(a1, 0, s1);
  as.addi(s1, s1, 64);
  as.addi(a2, a2, -1);
  as.bnez(a2, loop);
  emit_exit(as);
  sim.load_program(0x1000, as.finish(), 0x1000);
  ASSERT_TRUE(sim.run(1'000'000).all_exited);
  EXPECT_GT(sim.core(0).counters().writebacks, 0u);
  std::uint64_t wb_in = 0;
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    wb_in += sim.l2_bank(bank).stats().find_counter("writebacks_in").get();
  }
  EXPECT_GT(wb_in, 0u);
}

TEST(Orchestrator, FastForwardCountsStallCycles) {
  SimConfig config = small_config(1);
  config.fast_forward_idle = true;
  config.mc.latency = 500;
  Simulator sim(config);
  Assembler as(0x1000);
  as.li(s1, 0x100000);
  as.ld(a1, 0, s1);
  as.add(a2, a1, a1);  // RAW stall across the whole 500-cycle miss
  emit_exit(as);
  sim.load_program(0x1000, as.finish(), 0x1000);
  ASSERT_TRUE(sim.run(1'000'000).all_exited);
  const auto& counters = sim.core(0).counters();
  // The stall spans roughly the memory latency.
  EXPECT_GT(counters.raw_stall_cycles, 400u);
  EXPECT_GT(sim.orchestrator()
                .stats()
                .find_counter("fast_forwarded_cycles")
                .get(),
            0u);
}

TEST(Orchestrator, MultiCoreFinishesFasterThanSingle) {
  const auto cycles_for = [](std::uint32_t cores) {
    SimConfig config = small_config(cores);
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(24, 5);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, cores);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(100'000'000);
    EXPECT_TRUE(result.all_exited);
    return result.cycles;
  };
  const Cycle one = cycles_for(1);
  const Cycle four = cycles_for(4);
  EXPECT_LT(four, one);           // parallel speedup in simulated time
  EXPECT_LT(four * 2, one * 3);   // at least ~1.5x
}

}  // namespace
}  // namespace coyote::core
