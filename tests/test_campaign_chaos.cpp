// Wire-chaos tests: the campaign service run through a deterministic TCP
// fault injector (ChaosProxy) that resets connections, partitions them
// half-open, truncates frames at arbitrary byte offsets, duplicates
// frames, and flips payload bits — each scenario seeded, each asserting
// the same contract: the final campaign table is byte-identical to the
// in-process engine at --jobs=1, and every record the broker persisted
// loads cleanly. Chaos may slow a campaign down; it must never corrupt
// it, hang it, or crash it.
//
// Every run is bounded by a watchdog that stops the broker and proxy if a
// deadline passes — a hang surfaces as a failed table comparison plus a
// timed_out flag, not a stuck test suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/broker.h"
#include "campaign/chaosproxy.h"
#include "campaign/memo.h"
#include "campaign/net.h"
#include "campaign/protocol.h"
#include "campaign/worker.h"
#include "core/config_io.h"
#include "sweep/point_runner.h"
#include "sweep/sweep.h"

namespace coyote::campaign {
namespace {

using std::chrono::milliseconds;

sweep::SweepSpec chaos_spec() {
  sweep::SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 12;
  spec.seed = 5;
  spec.base.set("topo.cores", "4");
  spec.axes.push_back({"l2.size_kb", {"128", "256"}});
  spec.axes.push_back({"l2.banks_per_tile", {"1", "2"}});
  return spec;
}

std::string engine_json(const sweep::SweepSpec& spec) {
  sweep::SweepEngine::Options options;
  options.jobs = 1;
  return sweep::SweepEngine(options).run(spec).to_json(false);
}

/// Broker options tuned for chaos: fast heartbeats (short worker read
/// deadlines), short leases (fast requeue of partitioned points), and —
/// critically — quarantine off, because every proxied connection shares
/// 127.0.0.1 and chaos-induced protocol errors would otherwise lock the
/// whole fleet out.
Broker::Options chaos_broker_options() {
  Broker::Options options;
  options.heartbeat = milliseconds(150);
  options.lease = milliseconds(1'500);
  options.quarantine_strikes = 0;
  return options;
}

Worker::Options chaos_worker_options(std::uint16_t port, unsigned id) {
  Worker::Options options;
  options.port = port;
  options.name = "chaos" + std::to_string(id);
  options.reconnect_window = milliseconds(10'000);
  options.backoff_base = milliseconds(20);
  options.backoff_max = milliseconds(200);
  options.backoff_seed = 0xB0FF + id;
  options.handshake_timeout = milliseconds(1'000);
  return options;
}

struct ChaosRun {
  std::string table;
  ChaosProxy::Stats stats;
  std::vector<std::string> worker_errors;
  bool timed_out = false;
};

/// Full fleet through the proxy: broker and proxy on their own threads,
/// `workers` Worker instances dialing the proxy port, everything joined,
/// watchdog-bounded.
ChaosRun run_chaos(const sweep::SweepSpec& spec,
                   Broker::Options broker_options,
                   ChaosProxy::Options chaos, unsigned workers,
                   std::chrono::seconds deadline = std::chrono::seconds(90)) {
  Broker broker(spec, std::move(broker_options));
  chaos.upstream_port = broker.listen("127.0.0.1", 0);
  ChaosProxy proxy(chaos);
  const std::uint16_t proxy_port = proxy.listen("127.0.0.1", 0);
  std::thread proxy_thread([&] { proxy.run(); });

  sweep::SweepReport report;
  std::thread server([&] { report = broker.serve(); });

  ChaosRun outcome;
  std::atomic<bool> finished{false};
  std::thread watchdog([&] {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (!finished.load() && std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(milliseconds(100));
    }
    if (!finished.load()) {
      outcome.timed_out = true;
      broker.request_stop();
      proxy.stop();
    }
  });

  outcome.worker_errors.assign(workers, "");
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        Worker worker(chaos_worker_options(proxy_port, w));
        worker.run();
      } catch (const std::exception& e) {
        outcome.worker_errors[w] = e.what();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.join();
  finished.store(true);
  proxy.stop();
  proxy_thread.join();
  watchdog.join();
  outcome.table = report.to_json(false);
  outcome.stats = proxy.stats();
  return outcome;
}

/// Every `.done` record and memo entry a chaos run persisted must load
/// cleanly for its point — a record that exists but does not parse (or
/// parses to the wrong config) means corruption leaked to disk.
void expect_records_clean(const sweep::SweepSpec& spec,
                          const std::string& state_dir,
                          const std::string& memo_dir) {
  const sweep::SweepSpec full = spec.with_workload_keys();
  const auto points = full.expand();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const simfw::ConfigMap norm =
        core::config_to_map(core::config_from_map(points[i]));
    if (!state_dir.empty()) {
      const std::string path =
          state_dir + "/point" + std::to_string(i) + ".done";
      if (std::filesystem::exists(path)) {
        sweep::PointResult loaded;
        loaded.index = i;
        EXPECT_TRUE(sweep::try_load_done_record(path, norm, loaded))
            << "corrupt .done record for point " << i;
      }
    }
    if (!memo_dir.empty()) {
      const MemoStore store(memo_dir);
      const std::uint64_t key = core::config_map_hash(norm);
      if (std::filesystem::exists(store.entry_path(key))) {
        sweep::PointResult loaded;
        loaded.index = i;
        EXPECT_TRUE(store.try_load(key, norm, loaded))
            << "corrupt memo entry for point " << i;
      }
    }
  }
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CampaignChaos, BitFlipsAreDetectedAndNeverReachTheTable) {
  const sweep::SweepSpec spec = chaos_spec();
  ChaosProxy::Options chaos;
  chaos.seed = 11;
  chaos.bitflip_pmil = 80;
  const ChaosRun run = run_chaos(spec, chaos_broker_options(), chaos, 2);
  EXPECT_FALSE(run.timed_out);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_GT(run.stats.bitflips, 0u) << "chaos never fired; weaken the seed";
}

TEST(CampaignChaos, ConnectionResetsAreRiddenOutByReconnect) {
  const sweep::SweepSpec spec = chaos_spec();
  ChaosProxy::Options chaos;
  chaos.seed = 22;
  chaos.reset_pmil = 150;
  const ChaosRun run = run_chaos(spec, chaos_broker_options(), chaos, 2);
  EXPECT_FALSE(run.timed_out);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_GT(run.stats.resets, 0u);
}

TEST(CampaignChaos, TruncatedFramesAtArbitraryOffsetsAreSurvivable) {
  const sweep::SweepSpec spec = chaos_spec();
  ChaosProxy::Options chaos;
  chaos.seed = 33;
  chaos.truncate_pmil = 100;
  const ChaosRun run = run_chaos(spec, chaos_broker_options(), chaos, 2);
  EXPECT_FALSE(run.timed_out);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_GT(run.stats.truncations, 0u);
}

TEST(CampaignChaos, DuplicatedFramesNeverDoublePoints) {
  const sweep::SweepSpec spec = chaos_spec();
  ChaosProxy::Options chaos;
  chaos.seed = 44;
  chaos.duplicate_pmil = 200;
  const ChaosRun run = run_chaos(spec, chaos_broker_options(), chaos, 2);
  EXPECT_FALSE(run.timed_out);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_GT(run.stats.duplications, 0u);
}

TEST(CampaignChaos, HalfOpenPartitionsAreDetectedByDeadlines) {
  const sweep::SweepSpec spec = chaos_spec();
  ChaosProxy::Options chaos;
  chaos.seed = 55;
  chaos.partition_pmil = 60;
  const ChaosRun run = run_chaos(spec, chaos_broker_options(), chaos, 2);
  EXPECT_FALSE(run.timed_out);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_GT(run.stats.partitions, 0u);
}

TEST(CampaignChaos, EverythingAtOnceAcrossFiveSeeds) {
  const sweep::SweepSpec spec = chaos_spec();
  const std::string golden = engine_json(spec);
  for (const std::uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
    const std::string state_dir =
        fresh_dir("chaos_all_state_" + std::to_string(seed));
    const std::string memo_dir =
        fresh_dir("chaos_all_memo_" + std::to_string(seed));
    Broker::Options broker_options = chaos_broker_options();
    broker_options.state_dir = state_dir;
    broker_options.memo_dir = memo_dir;
    ChaosProxy::Options chaos;
    chaos.seed = seed;
    chaos.delay_pmil = 15;
    chaos.delay_max_ms = 5;
    chaos.reset_pmil = 8;
    chaos.partition_pmil = 5;
    chaos.truncate_pmil = 8;
    chaos.duplicate_pmil = 15;
    chaos.bitflip_pmil = 10;
    const ChaosRun run = run_chaos(spec, std::move(broker_options), chaos, 3);
    EXPECT_FALSE(run.timed_out) << "seed " << seed;
    EXPECT_EQ(run.table, golden) << "seed " << seed;
    expect_records_clean(spec, state_dir, memo_dir);
  }
}

TEST(CampaignChaos, BrokerDrainAndRestartResumesTheFleetDirect) {
  // No proxy: SIGTERM-analogue drain mid-campaign, then a new broker on
  // the *same port* resumes from the state dir while the original workers
  // ride their reconnect windows across the gap.
  const sweep::SweepSpec spec = chaos_spec();
  const std::string state_dir = fresh_dir("chaos_restart_direct");
  Broker::Options first_options = chaos_broker_options();
  first_options.state_dir = state_dir;
  first_options.drain_grace = milliseconds(300);
  auto first = std::make_unique<Broker>(spec, std::move(first_options));
  const std::uint16_t port = first->listen("127.0.0.1", 0);
  std::thread first_server([&] { first->serve(); });

  std::vector<std::thread> threads;
  std::vector<std::string> errors(2);
  for (unsigned w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      try {
        Worker worker(chaos_worker_options(port, w));
        worker.run();
      } catch (const std::exception& e) {
        errors[w] = e.what();
      }
    });
  }

  // Drain once at least one point landed (mid-campaign, not before work
  // started and not after it all finished — though either extreme would
  // still pass the final assertions).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (first->num_done() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  first->request_drain();
  first_server.join();
  const std::size_t done_at_drain = first->num_done();
  first.reset();  // releases the port for the restart

  Broker::Options second_options = chaos_broker_options();
  second_options.state_dir = state_dir;
  Broker second(spec, std::move(second_options));
  ASSERT_EQ(second.listen("127.0.0.1", port), port);
  EXPECT_EQ(second.num_done(), done_at_drain);  // resumed, nothing lost
  sweep::SweepReport report;
  std::thread second_server([&] { report = second.serve(); });
  for (auto& thread : threads) thread.join();
  second_server.join();

  for (const auto& error : errors) EXPECT_EQ(error, "");
  EXPECT_EQ(report.to_json(false), engine_json(spec));
  expect_records_clean(spec, state_dir, "");
}

TEST(CampaignChaos, BrokerDrainAndRestartThroughChaosProxy) {
  // The CI smoke scenario in miniature: fleet through the chaos proxy at
  // a fixed seed, broker drained mid-campaign and restarted from its
  // state dir on the same port, final table still byte-identical.
  const sweep::SweepSpec spec = chaos_spec();
  const std::string state_dir = fresh_dir("chaos_restart_proxied");
  Broker::Options first_options = chaos_broker_options();
  first_options.state_dir = state_dir;
  first_options.drain_grace = milliseconds(300);
  auto first = std::make_unique<Broker>(spec, std::move(first_options));
  const std::uint16_t broker_port = first->listen("127.0.0.1", 0);

  ChaosProxy::Options chaos;
  chaos.seed = 777;
  chaos.reset_pmil = 8;
  chaos.duplicate_pmil = 10;
  chaos.bitflip_pmil = 8;
  chaos.upstream_port = broker_port;
  ChaosProxy proxy(chaos);
  const std::uint16_t proxy_port = proxy.listen("127.0.0.1", 0);
  std::thread proxy_thread([&] { proxy.run(); });

  std::thread first_server([&] { first->serve(); });
  std::vector<std::thread> threads;
  std::vector<std::string> errors(2);
  for (unsigned w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      try {
        Worker worker(chaos_worker_options(proxy_port, w));
        worker.run();
      } catch (const std::exception& e) {
        errors[w] = e.what();
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (first->num_done() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  first->request_drain();
  first_server.join();
  first.reset();

  Broker::Options second_options = chaos_broker_options();
  second_options.state_dir = state_dir;
  Broker second(spec, std::move(second_options));
  ASSERT_EQ(second.listen("127.0.0.1", broker_port), broker_port);
  sweep::SweepReport report;
  std::thread second_server([&] { report = second.serve(); });
  for (auto& thread : threads) thread.join();
  second_server.join();
  proxy.stop();
  proxy_thread.join();

  for (const auto& error : errors) EXPECT_EQ(error, "");
  EXPECT_EQ(report.to_json(false), engine_json(spec));
  expect_records_clean(spec, state_dir, "");
}

}  // namespace
}  // namespace coyote::campaign
