#include <gtest/gtest.h>

#include "common/error.h"
#include "simfw/statistics.h"
#include "simfw/unit.h"

namespace coyote::simfw {
namespace {

TEST(Unit, RootPathIsName) {
  Scheduler sched;
  Unit root(&sched, "top");
  EXPECT_EQ(root.path(), "top");
  EXPECT_EQ(root.name(), "top");
  EXPECT_EQ(root.parent(), nullptr);
}

TEST(Unit, ChildPathsAreDotted) {
  Scheduler sched;
  Unit root(&sched, "top");
  Unit tile(&root, "tile0");
  Unit bank(&tile, "l2bank1");
  EXPECT_EQ(bank.path(), "top.tile0.l2bank1");
  EXPECT_EQ(&bank.scheduler(), &sched);
  EXPECT_EQ(tile.children().size(), 1u);
}

TEST(Unit, RejectsBadNames) {
  Scheduler sched;
  Unit root(&sched, "top");
  EXPECT_THROW(Unit(&root, ""), ConfigError);
  EXPECT_THROW(Unit(&root, "a.b"), ConfigError);
  EXPECT_THROW(Unit(static_cast<Unit*>(nullptr), "x"), ConfigError);
  EXPECT_THROW(Unit(static_cast<Scheduler*>(nullptr), "x"), ConfigError);
}

TEST(Unit, RejectsDuplicateSiblings) {
  Scheduler sched;
  Unit root(&sched, "top");
  Unit child(&root, "dup");
  EXPECT_THROW(Unit(&root, "dup"), ConfigError);
}

TEST(Unit, FindByRelativePath) {
  Scheduler sched;
  Unit root(&sched, "top");
  Unit tile(&root, "tile0");
  Unit bank(&tile, "bank3");
  EXPECT_EQ(root.find("tile0"), &tile);
  EXPECT_EQ(root.find("tile0.bank3"), &bank);
  EXPECT_EQ(root.find("tile0.nope"), nullptr);
  EXPECT_EQ(root.find("nope"), nullptr);
}

TEST(Unit, ForEachVisitsPreOrder) {
  Scheduler sched;
  Unit root(&sched, "top");
  Unit a(&root, "a");
  Unit b(&root, "b");
  Unit a1(&a, "a1");
  std::vector<std::string> visited;
  root.for_each([&](Unit& unit) { visited.push_back(unit.name()); });
  EXPECT_EQ(visited, (std::vector<std::string>{"top", "a", "a1", "b"}));
}

TEST(Unit, ChildDestructorDetaches) {
  Scheduler sched;
  Unit root(&sched, "top");
  {
    Unit temp(&root, "temp");
    EXPECT_EQ(root.children().size(), 1u);
  }
  EXPECT_TRUE(root.children().empty());
}

TEST(Stats, CounterBasics) {
  StatisticSet stats;
  Counter& counter = stats.counter("hits", "cache hits");
  EXPECT_EQ(counter.get(), 0u);
  ++counter;
  counter += 4;
  counter.increment();
  EXPECT_EQ(counter.get(), 6u);
  counter.reset();
  EXPECT_EQ(counter.get(), 0u);
  EXPECT_EQ(counter.name(), "hits");
}

TEST(Stats, DuplicateCounterThrows) {
  StatisticSet stats;
  stats.counter("x", "");
  EXPECT_THROW(stats.counter("x", ""), SimError);
}

TEST(Stats, FindCounter) {
  StatisticSet stats;
  Counter& counter = stats.counter("misses", "");
  counter += 3;
  EXPECT_EQ(stats.find_counter("misses").get(), 3u);
  EXPECT_THROW(stats.find_counter("absent"), SimError);
}

TEST(Stats, DerivedStatisticEvaluatesLive) {
  StatisticSet stats;
  Counter& hits = stats.counter("hits", "");
  Counter& total = stats.counter("total", "");
  StatisticDef& rate = stats.statistic("hit_rate", "hits/total", [&]() {
    return total.get() == 0
               ? 0.0
               : static_cast<double>(hits.get()) / total.get();
  });
  EXPECT_EQ(rate.evaluate(), 0.0);
  hits += 3;
  total += 4;
  EXPECT_DOUBLE_EQ(rate.evaluate(), 0.75);
}

TEST(Stats, ResetClearsAllCounters) {
  StatisticSet stats;
  Counter& a = stats.counter("a", "");
  Counter& b = stats.counter("b", "");
  a += 1;
  b += 2;
  stats.reset();
  EXPECT_EQ(a.get(), 0u);
  EXPECT_EQ(b.get(), 0u);
}

TEST(Stats, DistributionSummary) {
  StatisticSet stats;
  DistributionStat& dist = stats.distribution("latency", "per-request");
  EXPECT_EQ(dist.count(), 0u);
  EXPECT_EQ(dist.min(), 0u);
  EXPECT_EQ(dist.mean(), 0.0);
  dist.sample(10);
  dist.sample(0);
  dist.sample(30);
  EXPECT_EQ(dist.count(), 3u);
  EXPECT_EQ(dist.sum(), 40u);
  EXPECT_EQ(dist.min(), 0u);
  EXPECT_EQ(dist.max(), 30u);
  EXPECT_NEAR(dist.mean(), 40.0 / 3.0, 1e-12);
  EXPECT_THROW(stats.distribution("latency", ""), SimError);
  EXPECT_EQ(&stats.find_distribution("latency"), &dist);
  EXPECT_THROW(stats.find_distribution("absent"), SimError);
}

TEST(Stats, DistributionBucketsByBitWidth) {
  StatisticSet stats;
  DistributionStat& dist = stats.distribution("d", "");
  dist.sample(0);    // bucket 0
  dist.sample(1);    // bucket 1
  dist.sample(2);    // bucket 2
  dist.sample(3);    // bucket 2
  dist.sample(255);  // bucket 8
  dist.sample(256);  // bucket 9
  EXPECT_EQ(dist.bucket(0), 1u);
  EXPECT_EQ(dist.bucket(1), 1u);
  EXPECT_EQ(dist.bucket(2), 2u);
  EXPECT_EQ(dist.bucket(8), 1u);
  EXPECT_EQ(dist.bucket(9), 1u);
  dist.reset();
  EXPECT_EQ(dist.count(), 0u);
  EXPECT_EQ(dist.bucket(2), 0u);
}

TEST(Stats, PointerStabilityAcrossGrowth) {
  StatisticSet stats;
  Counter& first = stats.counter("c0", "");
  for (int i = 1; i < 100; ++i) {
    stats.counter(strfmt("c%d", i), "");
  }
  first += 5;
  EXPECT_EQ(stats.find_counter("c0").get(), 5u);
}

}  // namespace
}  // namespace coyote::simfw
