#include "iss/memory.h"

#include <gtest/gtest.h>

namespace coyote::iss {
namespace {

TEST(SparseMemory, UnwrittenReadsAsZero) {
  SparseMemory memory;
  EXPECT_EQ(memory.read<std::uint64_t>(0x1000), 0u);
  EXPECT_EQ(memory.read_u8(0xFFFF'FFFF'0000ULL), 0u);
  EXPECT_EQ(memory.resident_pages(), 0u);
}

TEST(SparseMemory, ReadBackWhatWasWritten) {
  SparseMemory memory;
  memory.write<std::uint64_t>(0x2000, 0x1122334455667788ULL);
  EXPECT_EQ(memory.read<std::uint64_t>(0x2000), 0x1122334455667788ULL);
  EXPECT_EQ(memory.read<std::uint32_t>(0x2000), 0x55667788u);
  EXPECT_EQ(memory.read_u8(0x2007), 0x11u);  // little endian
}

TEST(SparseMemory, TypedSizes) {
  SparseMemory memory;
  memory.write<std::uint8_t>(0x10, 0xAB);
  memory.write<std::uint16_t>(0x12, 0xCDEF);
  memory.write<std::uint32_t>(0x14, 0x12345678);
  memory.write<double>(0x18, 3.25);
  EXPECT_EQ(memory.read<std::uint8_t>(0x10), 0xAB);
  EXPECT_EQ(memory.read<std::uint16_t>(0x12), 0xCDEF);
  EXPECT_EQ(memory.read<std::uint32_t>(0x14), 0x12345678u);
  EXPECT_EQ(memory.read<double>(0x18), 3.25);
}

TEST(SparseMemory, CrossPageAccess) {
  SparseMemory memory;
  const Addr boundary = SparseMemory::kPageSize;  // page 0 / page 1 edge
  memory.write<std::uint64_t>(boundary - 4, 0xAABBCCDD11223344ULL);
  EXPECT_EQ(memory.read<std::uint64_t>(boundary - 4), 0xAABBCCDD11223344ULL);
  EXPECT_EQ(memory.resident_pages(), 2u);
}

TEST(SparseMemory, PagesAllocatedLazily) {
  SparseMemory memory;
  memory.write_u8(0, 1);
  memory.write_u8(SparseMemory::kPageSize * 100, 2);
  EXPECT_EQ(memory.resident_pages(), 2u);
  // Reads never allocate.
  (void)memory.read<std::uint64_t>(SparseMemory::kPageSize * 50);
  EXPECT_EQ(memory.resident_pages(), 2u);
}

TEST(SparseMemory, PokePeekArrays) {
  SparseMemory memory;
  const std::vector<double> data{1.5, -2.5, 3.0};
  memory.poke_array(0x3000, data.data(), data.size());
  EXPECT_EQ(memory.peek_array<double>(0x3000, 3), data);

  memory.poke_words(0x4000, {0x11111111, 0x22222222});
  EXPECT_EQ(memory.read<std::uint32_t>(0x4004), 0x22222222u);
}

TEST(SparseMemory, ByteRangeHelpers) {
  SparseMemory memory;
  const std::uint8_t bytes[] = {1, 2, 3, 4, 5};
  memory.write_bytes(0x5FFE, bytes, 5);  // spans a page boundary
  std::uint8_t out[5] = {};
  memory.read_bytes(0x5FFE, out, 5);
  EXPECT_EQ(memcmp(bytes, out, 5), 0);
}

}  // namespace
}  // namespace coyote::iss
