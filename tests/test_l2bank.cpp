// L2 bank behaviour: hits, misses, MSHR merging, MSHR exhaustion with the
// input queue, writebacks, and latency accounting through the scheduler.
#include "memhier/l2bank.h"

#include <gtest/gtest.h>

#include <vector>

#include "memhier/memctrl.h"

namespace coyote::memhier {
namespace {

struct BankHarness {
  simfw::Scheduler sched;
  simfw::Unit root{&sched, "top"};
  NocConfig noc_config;
  Noc noc;
  McMapper mc_mapper{1, 4096};
  L2BankConfig bank_config;
  std::unique_ptr<L2Bank> bank;
  simfw::DataOutPort<MemRequest> cpu_out{&root, "cpu_out"};
  simfw::DataInPort<MemResponse> cpu_in{&root, "cpu_in"};
  simfw::DataInPort<MemRequest> mem_in{&root, "mem_in"};
  simfw::DataOutPort<MemResponse> mem_out{&root, "mem_out"};

  std::vector<std::pair<Cycle, MemResponse>> responses;
  std::vector<std::pair<Cycle, MemRequest>> mem_requests;

  explicit BankHarness(L2BankConfig config = {},
                       NocConfig noc_cfg = NocConfig{.crossbar_latency = 0})
      : noc_config(noc_cfg),
        noc(&root, noc_config, 1, 1),
        bank_config(config) {
    bank = std::make_unique<L2Bank>(&root, "bank", 0, 0, bank_config, &noc,
                                    &mc_mapper);
    cpu_out.bind(bank->cpu_req_in());
    bank->cpu_resp_out().bind(cpu_in);
    bank->mem_req_out(0).bind(mem_in);
    mem_out.bind(bank->mem_resp_in());
    cpu_in.register_handler([this](const MemResponse& response) {
      responses.push_back({sched.now(), response});
    });
    mem_in.register_handler([this](const MemRequest& request) {
      mem_requests.push_back({sched.now(), request});
    });
  }

  void send(Addr line, MemOp op, CoreId core = 0) {
    cpu_out.send(MemRequest{line, op, core, 0, 0}, 0);
  }
  void fill(Addr line) {
    mem_out.send(MemResponse{line, MemOp::kLoad, 0}, 0);
  }
  std::uint64_t counter(const std::string& name) {
    return bank->stats().find_counter(name).get();
  }
};

TEST(L2Bank, MissForwardsToMcThenHitResponds) {
  L2BankConfig config;
  config.hit_latency = 8;
  config.miss_latency = 3;
  BankHarness harness(config);

  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.mem_requests.size(), 1u);
  EXPECT_EQ(harness.mem_requests[0].second.line_addr, 0x1000u);
  EXPECT_EQ(harness.mem_requests[0].first, 3u);  // miss latency

  harness.fill(0x1000);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 1u);
  EXPECT_TRUE(harness.bank->contains(0x1000));

  // Second access hits, after hit_latency.
  const Cycle start = harness.sched.now();
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 2u);
  EXPECT_EQ(harness.responses[1].first - start, 8u);
  EXPECT_EQ(harness.counter("hits"), 1u);
  EXPECT_EQ(harness.counter("misses"), 1u);
}

TEST(L2Bank, MshrMergesSameLine) {
  BankHarness harness;
  harness.send(0x2000, MemOp::kLoad, 0);
  harness.send(0x2000, MemOp::kLoad, 1);
  harness.send(0x2000, MemOp::kIFetch, 2);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.mem_requests.size(), 1u);  // one forward only
  EXPECT_EQ(harness.counter("merged_misses"), 2u);

  harness.fill(0x2000);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.responses.size(), 3u);  // every waiter answered
}

TEST(L2Bank, MshrExhaustionQueuesRequests) {
  L2BankConfig config;
  config.mshrs = 2;
  BankHarness harness(config);
  harness.send(0x1000, MemOp::kLoad);
  harness.send(0x2000, MemOp::kLoad);
  harness.send(0x3000, MemOp::kLoad);  // queued
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.mem_requests.size(), 2u);
  EXPECT_EQ(harness.bank->mshrs_in_use(), 2u);
  EXPECT_EQ(harness.bank->queued_requests(), 1u);
  EXPECT_EQ(harness.counter("mshr_stalls"), 1u);

  harness.fill(0x1000);
  harness.sched.run_to_completion();
  // The queued request is admitted and forwarded.
  EXPECT_EQ(harness.mem_requests.size(), 3u);
  EXPECT_EQ(harness.bank->queued_requests(), 0u);
}

TEST(L2Bank, QueuedRequestCanHitAfterFill) {
  L2BankConfig config;
  config.mshrs = 1;
  BankHarness harness(config);
  harness.send(0x1000, MemOp::kLoad, 0);
  harness.send(0x1000 + 64, MemOp::kLoad, 1);  // queued (MSHR busy)...
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.bank->queued_requests(), 1u);
  harness.fill(0x1000);
  harness.sched.run_to_completion();
  // ... then misses and forwards on admission.
  EXPECT_EQ(harness.mem_requests.size(), 2u);
}

TEST(L2Bank, QueueDrainsPastHittingRequests) {
  // Regression for a deadlock: with MSHRs exhausted, queued requests to the
  // same (not-yet-allocated) line all hit once that line is filled; the
  // drain loop must admit every one of them, not stop after the first.
  L2BankConfig config;
  config.mshrs = 1;
  BankHarness harness(config);
  harness.send(0x1000, MemOp::kLoad, 0);      // occupies the only MSHR
  harness.send(0x2000, MemOp::kLoad, 1);      // queued
  harness.send(0x2000, MemOp::kLoad, 2);      // queued (same line as above)
  harness.send(0x2000, MemOp::kLoad, 3);      // queued
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.bank->queued_requests(), 3u);

  harness.fill(0x1000);
  harness.sched.run_to_completion();
  harness.fill(0x2000);
  harness.sched.run_to_completion();
  // All four requesters must have been answered.
  EXPECT_EQ(harness.responses.size(), 4u);
  EXPECT_EQ(harness.bank->queued_requests(), 0u);
  EXPECT_EQ(harness.bank->mshrs_in_use(), 0u);
}

TEST(L2Bank, WritebackMarksResidentLineDirty) {
  BankHarness harness;
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x1000);
  harness.sched.run_to_completion();

  harness.send(0x1000, MemOp::kWriteback);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.counter("writebacks_in"), 1u);
  // No forward, no response for writebacks.
  EXPECT_EQ(harness.mem_requests.size(), 1u);
  EXPECT_EQ(harness.responses.size(), 1u);
}

TEST(L2Bank, WritebackMissForwardsToMemory) {
  BankHarness harness;
  harness.send(0x5000, MemOp::kWriteback);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.mem_requests.size(), 1u);
  EXPECT_EQ(harness.mem_requests[0].second.op, MemOp::kWriteback);
  EXPECT_EQ(harness.counter("writebacks_out"), 1u);
}

TEST(L2Bank, DirtyEvictionEmitsWriteback) {
  // Tiny bank: 2 lines total (1 set x 2 ways? use 128B, 2 ways, 64B lines
  // = 1 set). Fill two lines, dirty one, then displace it.
  L2BankConfig config;
  config.size_bytes = 128;
  config.ways = 2;
  BankHarness harness(config);

  harness.send(0x0000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x0000);
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x1000);
  harness.sched.run_to_completion();
  harness.send(0x0000, MemOp::kWriteback);  // dirty the LRU... (touches LRU)
  harness.sched.run_to_completion();

  // Now displace: 0x1000 was touched later? mark_dirty updates LRU, so
  // 0x1000 is LRU. Dirty 0x1000 too, then insert a third line.
  harness.send(0x1000, MemOp::kWriteback);
  harness.send(0x2000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x2000);
  harness.sched.run_to_completion();

  EXPECT_EQ(harness.counter("evictions"), 1u);
  // One of the dirty lines went home.
  std::uint64_t wb_to_mem = 0;
  for (const auto& [cycle, request] : harness.mem_requests) {
    if (request.op == MemOp::kWriteback) ++wb_to_mem;
  }
  EXPECT_EQ(wb_to_mem, 1u);
}

TEST(L2Bank, NocLatencyAddsToResponsePath) {
  L2BankConfig config;
  config.hit_latency = 2;
  BankHarness harness(config, NocConfig{.crossbar_latency = 10});
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x1000);
  harness.sched.run_to_completion();
  const Cycle start = harness.sched.now();
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 2u);
  // hit latency (2) + NoC traversal (10).
  EXPECT_EQ(harness.responses[1].first - start, 12u);
}

TEST(L2Bank, NextLinePrefetchFetchesAhead) {
  L2BankConfig config;
  config.prefetch = PrefetchPolicy::kNextLine;
  config.prefetch_degree = 2;
  BankHarness harness(config);

  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  // Demand miss + 2 prefetches forwarded.
  ASSERT_EQ(harness.mem_requests.size(), 3u);
  EXPECT_EQ(harness.mem_requests[0].second.op, MemOp::kLoad);
  EXPECT_EQ(harness.mem_requests[1].second.op, MemOp::kPrefetch);
  EXPECT_EQ(harness.mem_requests[1].second.line_addr, 0x1040u);
  EXPECT_EQ(harness.mem_requests[2].second.line_addr, 0x1080u);

  harness.fill(0x1000);
  harness.fill(0x1040);
  harness.fill(0x1080);
  harness.sched.run_to_completion();
  // Only the demand got a response; prefetch fills are silent.
  EXPECT_EQ(harness.responses.size(), 1u);
  EXPECT_TRUE(harness.bank->contains(0x1040));
  EXPECT_TRUE(harness.bank->contains(0x1080));

  // The next sequential demand hits and counts as a useful prefetch.
  harness.send(0x1040, MemOp::kLoad);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.responses.size(), 2u);
  EXPECT_EQ(harness.counter("hits"), 1u);
  EXPECT_EQ(harness.counter("prefetches_issued"), 2u);
  EXPECT_EQ(harness.counter("prefetches_useful"), 1u);
}

TEST(L2Bank, DemandMergingIntoInFlightPrefetch) {
  L2BankConfig config;
  config.prefetch = PrefetchPolicy::kNextLine;
  config.prefetch_degree = 1;
  BankHarness harness(config);
  harness.send(0x1000, MemOp::kLoad);     // miss; prefetch 0x1040 issued
  harness.send(0x1040, MemOp::kLoad);     // demand catches the prefetch
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.counter("prefetches_useful"), 1u);
  harness.fill(0x1000);
  harness.fill(0x1040);
  harness.sched.run_to_completion();
  // Both demands answered (the merged one by the prefetch fill).
  EXPECT_EQ(harness.responses.size(), 2u);
}

TEST(L2Bank, PrefetchNeverStarvesDemandMshrs) {
  L2BankConfig config;
  config.prefetch = PrefetchPolicy::kNextLine;
  config.prefetch_degree = 8;
  config.mshrs = 2;
  BankHarness harness(config);
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  // 1 demand MSHR + at most 1 prefetch (cap 2); degree is clipped.
  EXPECT_LE(harness.bank->mshrs_in_use(), 2u);
  EXPECT_EQ(harness.counter("prefetches_issued"), 1u);
}

TEST(L2Bank, PrefetchDisabledByDefault) {
  BankHarness harness;
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.mem_requests.size(), 1u);
  EXPECT_EQ(harness.counter("prefetches_issued"), 0u);
}

TEST(L2Bank, UnexpectedFillThrows) {
  BankHarness harness;
  harness.fill(0x7777000);
  EXPECT_THROW(harness.sched.run_to_completion(), SimError);
}

}  // namespace
}  // namespace coyote::memhier
