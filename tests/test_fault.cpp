// Tests for the deterministic fault-injection subsystem (src/fault) and
// the liveness hardening it leans on: seeded plans replay exactly, the
// differential harness produces all three outcome classes (masked / SDC /
// DUE), the NoC retransmit protocol recovers from single drops and wedges
// without it, the forward-progress watchdog detects a wedged machine
// within its configured bound with a structured diagnostic, and a whole
// resilience campaign is byte-identical across --jobs counts.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "core/config_io.h"
#include "core/simulator.h"
#include "fault/differential.h"
#include "fault/fault.h"
#include "fault/watchdog.h"
#include "kernels/program_menu.h"
#include "sweep/sweep.h"

namespace coyote::fault {
namespace {

using core::SimConfig;
using core::Simulator;

constexpr std::uint64_t kSeed = 9;
constexpr Cycle kBudget = 200'000'000;

SimConfig small_config() {
  SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 4;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  return config;
}

std::unique_ptr<Simulator> build(const SimConfig& config,
                                 const std::string& kernel = "matmul_scalar",
                                 std::uint64_t size = 16) {
  auto sim = std::make_unique<Simulator>(config);
  const kernels::Program program = kernels::build_named_kernel(
      kernel, config.num_cores, size, kSeed, sim->memory());
  sim->load_program(program.base, program.words, program.entry);
  return sim;
}

FaultPlan one_event(FaultKind kind, Cycle cycle, std::uint32_t unit = 0,
                    std::uint32_t bit = 3) {
  FaultPlan plan;
  FaultEvent event;
  event.kind = kind;
  event.cycle = cycle;
  event.unit = unit;
  event.bit = bit;
  plan.events.push_back(event);
  return plan;
}

// ----- plan generation --------------------------------------------------

TEST(FaultPlan, SameSeedSamePlanDifferentSeedDifferentPlan) {
  SimConfig config = small_config();
  config.fault.enable = true;
  config.fault.seed = 42;
  config.fault.count = 20;
  config.fault.targets = "mem+l1d+l2+reg+noc+mc";
  const FaultPlan a = FaultPlan::generate(config);
  const FaultPlan b = FaultPlan::generate(config);
  ASSERT_EQ(a.events.size(), 20u);
  EXPECT_EQ(a.to_string(), b.to_string());
  config.fault.seed = 43;
  EXPECT_NE(FaultPlan::generate(config).to_string(), a.to_string());
}

TEST(FaultPlan, EventsRespectTheInjectionWindow) {
  SimConfig config = small_config();
  config.fault.enable = true;
  config.fault.count = 50;
  config.fault.window_begin = 1'000;
  config.fault.window_end = 2'000;
  for (const FaultEvent& event : FaultPlan::generate(config).events) {
    EXPECT_GE(event.cycle, 1'000u);
    EXPECT_LT(event.cycle, 2'000u);
  }
}

TEST(FaultPlan, NoUsableTargetsThrow) {
  SimConfig config = small_config();
  config.fault.targets = "+";  // resolves to zero tokens
  EXPECT_THROW(FaultPlan::generate(config), ConfigError);
}

// ----- differential classification: the three classes -------------------

TEST(Differential, EventBeyondProgramEndIsMasked) {
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  auto sim = build(config);
  const InjectionResult result = run_injected(
      *sim, one_event(FaultKind::kMemFlip, Cycle{1} << 40), kBudget, digest);
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.injected, 0u);
  EXPECT_EQ(result.detail, "no event fired");
}

TEST(Differential, ScratchMemoryFlipIsSilentDataCorruption) {
  // Both legs make the same scratch page resident; the injected leg flips
  // one bit in it. The program never touches the page, so the run
  // completes — but the end state differs from golden: the definition of
  // SDC.
  constexpr Addr kScratch = 0x900000;
  const SimConfig config = small_config();
  auto golden = build(config);
  golden->memory().write_u8(kScratch, 0xAB);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  auto sim = build(config);
  sim->memory().write_u8(kScratch, 0xAB);
  FaultPlan plan = one_event(FaultKind::kMemFlip, 1);
  plan.events[0].has_explicit_addr = true;
  plan.events[0].addr = kScratch;
  const InjectionResult result = run_injected(*sim, plan, kBudget, digest);
  EXPECT_EQ(result.outcome, Outcome::kSdc);
  EXPECT_EQ(result.injected, 1u);
  EXPECT_TRUE(result.run.all_exited);
  EXPECT_NE(result.digest, digest);
}

TEST(Differential, DroppedResponseWithoutRetransmitIsDue) {
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  SimConfig faulty = config;
  faulty.fault.enable = true;
  faulty.fault.noc_retries = 0;  // retransmit protocol disabled: wedge
  auto sim = build(faulty);
  const InjectionResult result =
      run_injected(*sim, one_event(FaultKind::kNocDrop, 0), kBudget, digest);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_NE(result.detail.find("hang"), std::string::npos) << result.detail;
  EXPECT_EQ(sim->l2_bank(0).fault_lost_messages(), 1u);
}

// ----- NoC retransmit protocol ------------------------------------------

TEST(Retransmit, BoundedRetransmitRecoversFromASingleDrop) {
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  SimConfig faulty = config;
  faulty.fault.enable = true;
  faulty.fault.noc_retries = 3;
  faulty.fault.noc_timeout = 8;  // retransmit backoff base
  auto sim = build(faulty);
  const InjectionResult result =
      run_injected(*sim, one_event(FaultKind::kNocDrop, 0), kBudget, digest);
  // The drop fired, the retransmit re-delivered, the run completed with an
  // end state identical to golden: a purely-temporal fault, i.e. masked.
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.injected, 1u);
  EXPECT_EQ(sim->l2_bank(0).fault_retransmits(), 1u);
  EXPECT_EQ(sim->l2_bank(0).fault_lost_messages(), 0u);
}

TEST(Retransmit, DelayedResponseIsMasked) {
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  SimConfig faulty = config;
  faulty.fault.enable = true;
  auto sim = build(faulty);
  FaultPlan plan = one_event(FaultKind::kNocDelay, 0);
  plan.events[0].pick2 = 100;  // delay selector
  const InjectionResult result = run_injected(*sim, plan, kBudget, digest);
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.injected, 1u);
}

TEST(McStall, TransientControllerStallIsMasked) {
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);

  SimConfig faulty = config;
  faulty.fault.enable = true;
  faulty.fault.mc_stall_cycles = 400;
  auto sim = build(faulty);
  const InjectionResult result =
      run_injected(*sim, one_event(FaultKind::kMcStall, 0), kBudget, digest);
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.injected, 1u);
  EXPECT_EQ(sim->mc(0).fault_stalls(), 1u);
}

TEST(RegisterFlip, ChangesTheRunOrIsMaskedNeverAnError) {
  // A register flip mid-compute can be masked (dead register), SDC or DUE
  // — all three are legitimate classifications; what it must never do is
  // escape as an unclassified error. Sweep a few seeds to exercise it.
  const SimConfig config = small_config();
  auto golden = build(config);
  const std::uint64_t digest = run_golden(*golden, kBudget);
  for (std::uint64_t pick = 0; pick < 4; ++pick) {
    auto sim = build(config);
    FaultPlan plan = one_event(FaultKind::kRegFlip, 2'000, /*unit=*/1,
                               /*bit=*/17);
    plan.events[0].pick = pick;
    const InjectionResult result = run_injected(*sim, plan, kBudget, digest);
    EXPECT_TRUE(result.outcome == Outcome::kMasked ||
                result.outcome == Outcome::kSdc ||
                result.outcome == Outcome::kDue)
        << result.detail;
    EXPECT_EQ(result.injected, 1u);
  }
}

// ----- liveness watchdog -------------------------------------------------

/// Test double: drops every first-attempt response from every bank —
/// the machine wedges as soon as any core misses.
struct DropEverything : memhier::FaultHooks {
  memhier::NetVerdict on_response_send(const memhier::MemResponse&, BankId,
                                       std::uint32_t attempt) override {
    memhier::NetVerdict verdict;
    verdict.drop = attempt == 0;
    return verdict;
  }
  Cycle mc_extra_delay(McId) override { return 0; }
};

TEST(Watchdog, DeadlockOnWedgedTwoCoreLitmus) {
  // The litmus from the acceptance list: two cores, a directory response
  // dropped with the retransmit protocol disabled. The liveness machinery
  // must declare the hang (not spin forever), and the diagnostic must name
  // the blocked cores and the outstanding lines.
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 2;
  config.l2_banks_per_tile = 2;
  auto sim = build(config);
  DropEverything hooks;
  for (BankId bank = 0; bank < sim->num_l2_banks(); ++bank) {
    sim->l2_bank(bank).set_fault_hooks(&hooks, /*retries=*/0, /*backoff=*/1);
  }
  try {
    sim->run(kBudget);
    FAIL() << "wedged machine ran to completion";
  } catch (const HangError& hang) {
    EXPECT_NE(std::string(hang.what()).find("deadlock"), std::string::npos)
        << hang.what();
    EXPECT_NE(hang.diagnostic().find("core 0"), std::string::npos)
        << hang.diagnostic();
    EXPECT_NE(hang.diagnostic().find("waiting on"), std::string::npos)
        << hang.diagnostic();
  }
  EXPECT_LT(sim->scheduler().now(), kBudget);
}

TEST(Watchdog, ForwardProgressWatchdogFiresWithinBound) {
  // Keep the event queue alive with a self-rearming pulse so the
  // empty-queue deadlock detector can never fire: the only way out is the
  // forward-progress watchdog noticing that no instruction retires.
  constexpr Cycle kWatchdog = 5'000;
  SimConfig config = small_config();
  config.watchdog_cycles = kWatchdog;
  auto sim = build(config);
  DropEverything hooks;
  for (BankId bank = 0; bank < sim->num_l2_banks(); ++bank) {
    sim->l2_bank(bank).set_fault_hooks(&hooks, /*retries=*/0, /*backoff=*/1);
  }
  std::function<void()> pulse = [&]() {
    sim->scheduler().schedule(64, simfw::SchedPriority::kTick, pulse);
  };
  pulse();
  try {
    sim->run(kBudget);
    FAIL() << "wedged machine ran to completion";
  } catch (const HangError& hang) {
    EXPECT_NE(std::string(hang.what()).find("watchdog"), std::string::npos)
        << hang.what();
    EXPECT_NE(hang.diagnostic().find("forward-progress"), std::string::npos)
        << hang.diagnostic();
  }
  // Detection within the configured bound: the machine wedges within the
  // first few thousand cycles, so the watchdog must have tripped well
  // before this generous ceiling — not after drifting to the cycle budget.
  EXPECT_LT(sim->scheduler().now(), 10 * kWatchdog);
}

TEST(Watchdog, EnabledButUntriggeredIsBitIdentical) {
  const SimConfig plain = small_config();
  auto a = build(plain);
  const auto ra = a->run(kBudget);
  ASSERT_TRUE(ra.all_exited);

  SimConfig guarded = small_config();
  guarded.watchdog_cycles = 50'000'000;  // far beyond the whole run
  auto b = build(guarded);
  const auto rb = b->run(kBudget);
  ASSERT_TRUE(rb.all_exited);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instructions, rb.instructions);
  EXPECT_EQ(a->report(simfw::ReportFormat::kText),
            b->report(simfw::ReportFormat::kText));
}

// ----- run_guarded (the CLI's graceful-degradation wrapper) --------------

TEST(RunGuarded, NormalCompletionMatchesPlainRun) {
  const SimConfig config = small_config();
  auto plain = build(config);
  const auto expected = plain->run(kBudget);
  ASSERT_TRUE(expected.all_exited);

  // Sliced leg-by-leg (emergency path set, tiny interval) must land on the
  // same simulated totals — quiesce stops do not perturb the machine.
  auto sim = build(config);
  const GuardedOutcome outcome = run_guarded(
      *sim, "matmul_scalar", kBudget, "/tmp/coyote_never_written.ckpt",
      /*checkpoint_interval=*/1'000);
  EXPECT_FALSE(outcome.hung);
  EXPECT_TRUE(outcome.result.all_exited);
  EXPECT_EQ(sim->scheduler().now(), expected.cycles);
}

TEST(RunGuarded, HangReturnsDiagnosticInsteadOfThrowing) {
  SimConfig config = small_config();
  config.watchdog_cycles = 5'000;
  auto sim = build(config);
  DropEverything hooks;
  for (BankId bank = 0; bank < sim->num_l2_banks(); ++bank) {
    sim->l2_bank(bank).set_fault_hooks(&hooks, /*retries=*/0, /*backoff=*/1);
  }
  const GuardedOutcome outcome =
      run_guarded(*sim, "matmul_scalar", kBudget, /*emergency=*/"");
  EXPECT_TRUE(outcome.hung);
  EXPECT_FALSE(outcome.hang_what.empty());
  EXPECT_NE(outcome.hang_diagnostic.find("hang diagnostic"),
            std::string::npos)
      << outcome.hang_diagnostic;
}

// ----- campaign determinism across jobs counts ---------------------------

sweep::SweepSpec campaign_spec() {
  sweep::SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 16;
  spec.seed = kSeed;
  spec.base.set("topo.cores", "4");
  spec.base.set("topo.cores_per_tile", "4");
  spec.base.set("l2.banks_per_tile", "2");
  spec.base.set("mc.count", "2");
  spec.base.set("fault.enable", "true");
  spec.base.set("fault.targets", "mem+reg+noc+mc");
  spec.base.set("fault.window_end", "50000");
  spec.axes = {{"fault.seed", {"1", "2", "3", "4", "5", "6"}}};
  return spec;
}

TEST(Campaign, ByteIdenticalAcrossJobsCounts) {
  sweep::SweepEngine::Options serial;
  serial.jobs = 1;
  serial.max_cycles = kBudget;
  sweep::SweepEngine::Options parallel;
  parallel.jobs = 4;
  parallel.max_cycles = kBudget;
  const sweep::SweepReport a =
      sweep::SweepEngine(serial).run(campaign_spec());
  const sweep::SweepReport b =
      sweep::SweepEngine(parallel).run(campaign_spec());
  ASSERT_EQ(a.points.size(), 6u);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_TRUE(a.points[i].ok) << a.points[i].error;
    EXPECT_FALSE(a.points[i].fault_outcome.empty()) << i;
    EXPECT_EQ(a.points[i].fault_outcome, b.points[i].fault_outcome) << i;
  }
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace coyote::fault
