// Decoded-block cache litmus tests around self-modifying code: the page
// write-generation invalidation must make iss.dbb_cache=on bit-identical to
// the reference interpreter even when executed code is overwritten mid-run —
// by a guest store or by an injected fault flipping a bit of a code page.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "fault/differential.h"
#include "fault/fault.h"
#include "isa/text_asm.h"

namespace coyote::iss {
namespace {

using core::SimConfig;
using core::Simulator;

constexpr Cycle kBudget = 10'000'000;

SimConfig one_core_config(bool dbb) {
  SimConfig config;
  config.num_cores = 1;
  config.cores_per_tile = 1;
  config.core.dbb_cache = dbb;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string strip_dbb_lines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("dbb_") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

// A loop whose body instruction is overwritten *by the loop itself*: pass 1
// executes `addi a0, a0, 1`, then stores the encoding of `addi a0, a0, 2`
// over it, so later passes must re-decode the patched word. Exit code is
// a0, which distinguishes stale decode (3) from correct re-decode (5).
isa::AssembledText assemble_smc_program() {
  const std::uint32_t patched_word =
      isa::assemble_text("addi a0, a0, 2").words.at(0);
  const auto source = [&](Addr patch_addr) {
    std::ostringstream os;
    os << R"(
      .org 0x1000
        li   a0, 0
        li   t2, 0
        li   t3, 3
        li   t0, )"
       << patch_addr << R"(
        li   t1, )"
       << patched_word << R"(
      loop:
      patch:
        addi a0, a0, 1
        sw   t1, 0(t0)
        addi t2, t2, 1
        blt  t2, t3, loop
        li   a7, 93
        ecall
    )";
    return os.str();
  };
  // Two-pass: assemble with a placeholder of the same magnitude to learn
  // where `patch:` lands (li expansion width depends on the immediate),
  // then substitute the real address.
  const Addr placeholder = 0x1FFF;
  const Addr patch_addr =
      isa::assemble_text(source(placeholder)).symbols.at("patch");
  const auto assembled = isa::assemble_text(source(patch_addr));
  EXPECT_EQ(assembled.symbols.at("patch"), patch_addr)
      << "li expansion width changed between passes";
  return assembled;
}

struct SmcOutcome {
  core::RunResult result;
  std::string report;
  std::uint64_t invalidations = 0;
  std::string trace;
};

SmcOutcome run_smc(bool dbb, const std::string& trace_tag) {
  SimConfig config = one_core_config(dbb);
  const std::string dir = ::testing::TempDir();
  config.enable_trace = true;
  config.trace_basename = dir + trace_tag;
  Simulator sim(config);
  const auto assembled = assemble_smc_program();
  sim.load_program(assembled.base, assembled.words, assembled.base);
  SmcOutcome out;
  out.result = sim.run(kBudget);
  out.report = sim.report(simfw::ReportFormat::kText);
  out.invalidations = sim.core(0).dbb_stats().invalidations;
  out.trace = slurp(dir + trace_tag + ".prv");
  return out;
}

TEST(DbbSelfModifyingCode, StoreOverExecutedBlockReDecodes) {
  const SmcOutcome on = run_smc(true, "smc_on");
  const SmcOutcome off = run_smc(false, "smc_off");

  // Correct SMC semantics: 1 (first pass) + 2 + 2 (patched passes).
  ASSERT_TRUE(on.result.all_exited);
  EXPECT_EQ(on.result.exit_codes.at(0), 5);
  EXPECT_EQ(off.result.exit_codes.at(0), 5);

  // The store over the cached block actually retired a decoded block.
  EXPECT_GT(on.invalidations, 0u);
  EXPECT_EQ(off.invalidations, 0u);  // cache off: nothing to invalidate

  // Every simulated observable matches the reference interpreter.
  EXPECT_EQ(on.result.cycles, off.result.cycles);
  EXPECT_EQ(on.result.instructions, off.result.instructions);
  EXPECT_EQ(strip_dbb_lines(on.report), strip_dbb_lines(off.report));
  EXPECT_EQ(on.trace, off.trace);
}

// ----- fault flip into a code page --------------------------------------

// Sum 1..2000; long enough that a mid-run flip lands while the loop block
// is decoded and cached.
const char* kSumSource = R"(
  .org 0x1000
    li   a0, 0
    li   t0, 1
    li   t1, 2000
  loop:
  body:
    add  a0, a0, t0
    addi t0, t0, 1
    ble  t0, t1, loop
    li   a7, 93
    ecall
)";

fault::InjectionResult run_flipped(bool dbb, std::uint64_t golden_digest,
                                   Addr flip_byte, std::uint32_t flip_bit,
                                   std::uint64_t* invalidations) {
  Simulator sim(one_core_config(dbb));
  const auto assembled = isa::assemble_text(kSumSource);
  sim.load_program(assembled.base, assembled.words, assembled.base);
  fault::FaultPlan plan;
  fault::FaultEvent event;
  event.kind = fault::FaultKind::kMemFlip;
  event.cycle = 500;  // mid-loop: the block is decoded and hot
  event.has_explicit_addr = true;
  event.addr = flip_byte;
  event.bit = flip_bit;
  plan.events.push_back(event);
  const auto result = fault::run_injected(sim, plan, kBudget, golden_digest);
  if (invalidations != nullptr) {
    *invalidations = sim.core(0).dbb_stats().invalidations;
  }
  return result;
}

TEST(DbbSelfModifyingCode, FaultFlipIntoCodePageMatchesReference) {
  const auto assembled = isa::assemble_text(kSumSource);
  // Flip bit 30 of the `add a0, a0, t0` word: it becomes `sub`, a valid
  // instruction with a different result — deterministic SDC, and the run
  // still terminates.
  const Addr add_addr = assembled.symbols.at("body");
  const Addr flip_byte = add_addr + 3;
  const std::uint32_t flip_bit = 6;

  const auto golden_digest = [&](bool dbb) {
    Simulator sim(one_core_config(dbb));
    sim.load_program(assembled.base, assembled.words, assembled.base);
    return fault::run_golden(sim, kBudget);
  };
  const std::uint64_t digest_on = golden_digest(true);
  const std::uint64_t digest_off = golden_digest(false);
  EXPECT_EQ(digest_on, digest_off);

  std::uint64_t invalidations_on = 0;
  const auto on =
      run_flipped(true, digest_on, flip_byte, flip_bit, &invalidations_on);
  const auto off = run_flipped(false, digest_off, flip_byte, flip_bit, nullptr);

  // The flip corrupted an executed code page: the cached block retired.
  EXPECT_EQ(on.injected, 1u);
  EXPECT_GT(invalidations_on, 0u);

  // Identical classification and end state with the cache on or off.
  EXPECT_EQ(on.outcome, off.outcome);
  EXPECT_EQ(on.outcome, fault::Outcome::kSdc);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.detail, off.detail);
  EXPECT_EQ(on.run.cycles, off.run.cycles);
  EXPECT_EQ(on.run.instructions, off.run.instructions);
}

// ----- seeded 50-injection campaign -------------------------------------

TEST(DbbFaultCampaign, FiftyInjectionsMatchReference) {
  // One seeded 50-event plan (memory + register flips across the whole
  // machine) replayed against both dispatch paths: classification, digest
  // and fired/skipped counts must agree event for event.
  SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 4;
  config.fault.enable = true;
  config.fault.seed = 17;
  config.fault.count = 50;
  config.fault.targets = "mem+reg";
  config.fault.window_begin = 100;
  config.fault.window_end = 20'000;
  const fault::FaultPlan plan = fault::FaultPlan::generate(config);
  ASSERT_EQ(plan.events.size(), 50u);

  const auto leg = [&](bool dbb, std::uint64_t golden) {
    SimConfig leg_config = config;
    leg_config.core.dbb_cache = dbb;
    Simulator sim(leg_config);
    const auto assembled = isa::assemble_text(kSumSource);
    sim.load_program(assembled.base, assembled.words, assembled.base);
    if (golden == 0) return std::pair{fault::InjectionResult{},
                                      fault::run_golden(sim, kBudget)};
    return std::pair{fault::run_injected(sim, plan, kBudget, golden),
                     golden};
  };

  const std::uint64_t digest_on = leg(true, 0).second;
  const std::uint64_t digest_off = leg(false, 0).second;
  EXPECT_EQ(digest_on, digest_off);

  const auto on = leg(true, digest_on).first;
  const auto off = leg(false, digest_off).first;
  EXPECT_EQ(on.outcome, off.outcome);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.detail, off.detail);
  EXPECT_EQ(on.injected, off.injected);
  EXPECT_EQ(on.skipped, off.skipped);
  EXPECT_EQ(on.run.cycles, off.run.cycles);
  EXPECT_EQ(on.run.instructions, off.run.instructions);
}

}  // namespace
}  // namespace coyote::iss
