// Campaign service integration tests: a real broker and real workers over
// loopback TCP, asserting the contract the whole subsystem exists for —
// the final results table is byte-identical (host timings excluded) to
// the in-process engine at --jobs=1, no matter how many workers serve the
// campaign, whether one of them is killed mid-point, whether a lease
// expires and the point is reassigned, or whether every point replays
// from the memo store.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/broker.h"
#include "campaign/net.h"
#include "campaign/protocol.h"
#include "campaign/worker.h"
#include "sweep/sweep.h"

namespace coyote::campaign {
namespace {

sweep::SweepSpec service_spec() {
  sweep::SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 12;
  spec.seed = 5;
  spec.base.set("topo.cores", "4");
  spec.axes.push_back({"l2.size_kb", {"128", "256"}});
  spec.axes.push_back({"l2.banks_per_tile", {"1", "2"}});
  return spec;
}

// A resilience campaign: exercises the golden-run differential path on
// workers (golden digest computed worker-side, DUE/masked/sdc classes in
// the table) rather than only plain runs.
sweep::SweepSpec fault_spec() {
  sweep::SweepSpec spec = service_spec();
  spec.axes = {{"fault.seed", {"1", "2", "3"}}};
  spec.base.set("fault.enable", "true");
  return spec;
}

std::string engine_json(const sweep::SweepSpec& spec) {
  sweep::SweepEngine::Options options;
  options.jobs = 1;
  return sweep::SweepEngine(options).run(spec).to_json(false);
}

struct ServiceRun {
  std::string table;
  std::vector<std::size_t> executed;  // per worker
};

/// Broker on a loopback ephemeral port, `workers` Worker instances on
/// threads, everything joined before returning.
ServiceRun run_service(const sweep::SweepSpec& spec,
                       Broker::Options broker_options, unsigned workers,
                       const std::function<bool(std::size_t)>& crash_hook =
                           nullptr) {
  Broker broker(spec, std::move(broker_options));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);

  sweep::SweepReport report;
  std::thread server([&] { report = broker.serve(); });

  ServiceRun outcome;
  outcome.executed.assign(workers, 0);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Worker::Options options;
      options.port = port;
      options.name = "w" + std::to_string(w);
      if (w == 0) options.crash_before_result = crash_hook;
      Worker worker(std::move(options));
      outcome.executed[w] = worker.run();
    });
  }
  for (auto& thread : threads) thread.join();
  server.join();
  outcome.table = report.to_json(false);
  return outcome;
}

TEST(CampaignService, OneWorkerMatchesTheInProcessEngineByteForByte) {
  const sweep::SweepSpec spec = service_spec();
  const ServiceRun run = run_service(spec, {}, 1);
  EXPECT_EQ(run.table, engine_json(spec));
  EXPECT_EQ(run.executed[0], spec.expand().size());
}

TEST(CampaignService, FourWorkersMatchTheInProcessEngineByteForByte) {
  const sweep::SweepSpec spec = service_spec();
  const ServiceRun run = run_service(spec, {}, 4);
  EXPECT_EQ(run.table, engine_json(spec));
  std::size_t total = 0;
  for (const std::size_t executed : run.executed) total += executed;
  EXPECT_EQ(total, spec.expand().size());
}

TEST(CampaignService, FaultCampaignClassesMatchAcrossTheWire) {
  const sweep::SweepSpec spec = fault_spec();
  const ServiceRun run = run_service(spec, {}, 2);
  EXPECT_EQ(run.table, engine_json(spec));
}

TEST(CampaignService, KilledWorkerForfeitsItsPointAndTheTableIsIdentical) {
  const sweep::SweepSpec spec = service_spec();

  // Worker 0 hard-closes its connection instead of delivering its first
  // result — the classic mid-campaign kill. The broker requeues the point
  // on the disconnect and worker 1 (started after 0 died, like an
  // operator re-launching) picks up everything, including the forfeited
  // point.
  Broker broker(spec, {});
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  sweep::SweepReport report;
  std::thread server([&] { report = broker.serve(); });

  Worker::Options crash_options;
  crash_options.port = port;
  crash_options.name = "doomed";
  crash_options.crash_before_result = [](std::size_t) { return true; };
  Worker doomed(std::move(crash_options));
  EXPECT_EQ(doomed.run(), 1u);  // executed one point, delivered nothing

  Worker::Options rescue_options;
  rescue_options.port = port;
  rescue_options.name = "rescue";
  Worker rescue(std::move(rescue_options));
  EXPECT_EQ(rescue.run(), spec.expand().size());  // every point, again

  server.join();
  EXPECT_EQ(report.to_json(false), engine_json(spec));
}

TEST(CampaignService, ExpiredLeaseIsReassignedOverTheWire) {
  const sweep::SweepSpec spec = service_spec();
  Broker::Options options;
  options.lease = std::chrono::milliseconds(300);
  options.heartbeat = std::chrono::milliseconds(100);
  Broker broker(spec, std::move(options));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  sweep::SweepReport report;
  std::thread server([&] { report = broker.serve(); });

  // A hand-rolled client leases point 0 and then goes silent — no
  // heartbeat, no result. Holding the socket open keeps the broker from
  // treating it as a disconnect; only lease expiry can free the point.
  Socket stalled = Socket::connect_tcp("127.0.0.1", port);
  FrameDecoder decoder;
  const auto send = [&stalled](const Frame& frame) {
    const std::string wire = encode_frame(frame);
    ASSERT_TRUE(stalled.write_all(wire.data(), wire.size()));
  };
  const auto receive = [&stalled, &decoder]() {
    while (true) {
      if (auto frame = decoder.next()) return *frame;
      char buf[4096];
      const long n = stalled.read_some(buf, sizeof buf);
      if (n <= 0) {
        ADD_FAILURE() << "broker hung up on the stalled client";
        return Frame{};
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  };
  send(encode_hello({kProtocolVersion, "stalled"}));
  ASSERT_EQ(receive().type, FrameType::kWelcome);
  send(encode_request());
  const Frame assigned = receive();
  ASSERT_EQ(assigned.type, FrameType::kAssign);
  EXPECT_EQ(parse_assign(assigned).index, 0u);

  // A live worker drains the rest, parks, and inherits point 0 when the
  // stalled client's lease lapses.
  Worker::Options live_options;
  live_options.port = port;
  live_options.name = "live";
  Worker live(std::move(live_options));
  EXPECT_EQ(live.run(), spec.expand().size());

  server.join();
  stalled.close();
  EXPECT_EQ(report.to_json(false), engine_json(spec));
}

TEST(CampaignService, MemoWarmRerunExecutesNothingAndMatches) {
  const sweep::SweepSpec spec = service_spec();
  const std::string memo_dir = ::testing::TempDir() + "campaign_memo_warm";
  std::filesystem::remove_all(memo_dir);

  Broker::Options cold_options;
  cold_options.memo_dir = memo_dir;
  const ServiceRun cold = run_service(spec, std::move(cold_options), 2);
  EXPECT_EQ(cold.table, engine_json(spec));

  // Same campaign, fresh broker, same store: every point is resolved at
  // construction and the worker is sent away without executing anything.
  Broker::Options warm_options;
  warm_options.memo_dir = memo_dir;
  Broker warm(spec, std::move(warm_options));
  EXPECT_EQ(warm.num_done(), warm.num_points());

  const std::uint16_t port = warm.listen("127.0.0.1", 0);
  sweep::SweepReport report;
  std::thread server([&] { report = warm.serve(); });
  Worker::Options options;
  options.port = port;
  Worker worker(std::move(options));
  EXPECT_EQ(worker.run(), 0u);
  server.join();
  EXPECT_EQ(report.to_json(false), cold.table);
}

TEST(CampaignService, BrokerRestartResumesFromStateDir) {
  const sweep::SweepSpec spec = service_spec();
  const std::string state_dir = ::testing::TempDir() + "campaign_state";
  std::filesystem::remove_all(state_dir);

  Broker::Options first_options;
  first_options.state_dir = state_dir;
  const ServiceRun first = run_service(spec, std::move(first_options), 2);
  EXPECT_EQ(first.table, engine_json(spec));

  // "Restart" the broker against the same state directory: the .done
  // records resolve every point before any worker is needed.
  Broker::Options second_options;
  second_options.state_dir = state_dir;
  Broker restarted(spec, std::move(second_options));
  EXPECT_EQ(restarted.num_done(), restarted.num_points());
}

TEST(CampaignService, ProtocolMismatchGetsATypedErrorReplyThenClose) {
  const sweep::SweepSpec spec = service_spec();
  Broker broker(spec, {});
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  std::thread server([&] { broker.serve(); });

  Socket old_worker = Socket::connect_tcp("127.0.0.1", port);
  const Frame hello = encode_hello({kProtocolVersion - 1, "antique"});
  const std::string wire = encode_frame(hello);
  ASSERT_TRUE(old_worker.write_all(wire.data(), wire.size()));

  // Reply-then-close: first a typed ERROR naming the mismatch, then EOF.
  FrameDecoder decoder;
  std::optional<ErrorFrame> error;
  char buf[4096];
  while (true) {
    const long n = old_worker.read_some(buf, sizeof buf);
    if (n < 0) break;  // closed
    if (n == 0) {
      wait_readable(old_worker.fd(), 1000);
      continue;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (const auto frame = decoder.next()) {
      error = parse_error(*frame);
      break;
    }
  }
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kProtocolMismatch);
  EXPECT_NE(error->message.find("protocol"), std::string::npos);

  broker.request_stop();
  server.join();
}

TEST(CampaignService, RepeatOffendersAreQuarantined) {
  const sweep::SweepSpec spec = service_spec();
  Broker::Options options;
  options.quarantine_strikes = 2;
  options.quarantine_cooldown = std::chrono::milliseconds(60'000);
  Broker broker(spec, std::move(options));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  std::thread server([&] { broker.serve(); });

  const auto offend = [port] {
    Socket bad = Socket::connect_tcp("127.0.0.1", port);
    // An undersized frame: instant ProtocolError, one strike.
    const char junk[] = {4, 0, 0, 0, 9, 9, 9, 9};
    ASSERT_TRUE(bad.write_all(junk, sizeof junk));
    char buf[256];
    while (bad.read_some(buf, sizeof buf) >= 0) {
      wait_readable(bad.fd(), 1000);
    }
  };
  offend();
  offend();

  // Third connection from this address is refused at accept with a typed
  // ERROR{kQuarantined} before close.
  Socket refused = Socket::connect_tcp("127.0.0.1", port);
  FrameDecoder decoder;
  std::optional<ErrorFrame> error;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const long n = refused.read_some(buf, sizeof buf);
    if (n < 0) break;
    if (n == 0) {
      wait_readable(refused.fd(), 200);
      continue;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (const auto frame = decoder.next()) {
      error = parse_error(*frame);
      break;
    }
  }
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kQuarantined);

  broker.request_stop();
  server.join();
}

TEST(CampaignService, JsonProgressStreamsPointEventsWithSources) {
  const sweep::SweepSpec spec = service_spec();
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);

  Broker::Options options;
  options.progress = sweep::ProgressMode::kJson;
  options.progress_out = capture;
  const ServiceRun run = run_service(spec, std::move(options), 1);
  EXPECT_EQ(run.table, engine_json(spec));

  std::rewind(capture);
  std::vector<std::string> lines;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, capture) != nullptr) {
    lines.emplace_back(buf);
  }
  std::fclose(capture);

  std::size_t point_events = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"event\": ", 0), 0u) << line;
    if (line.rfind("{\"event\": \"point\"", 0) == 0) {
      ++point_events;
      EXPECT_NE(line.find("\"source\": \"w0\""), std::string::npos) << line;
    }
  }
  EXPECT_EQ(point_events, spec.expand().size());
  ASSERT_FALSE(lines.empty());
  const std::string& last = lines.back();
  EXPECT_NE(last.find("\"done\": " + std::to_string(spec.expand().size())),
            std::string::npos)
      << last;
}

}  // namespace
}  // namespace coyote::campaign
