// Deeper scalar/vector executor coverage: the ops the main suites don't
// exercise through kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "iss/hart.h"
#include "testutil.h"

namespace coyote::iss {
namespace {

using isa::Assembler;
using isa::Lmul;
using isa::Sew;
using test::emit_exit;
using test::HartRunner;
using namespace coyote::isa;

constexpr Addr kA = 0x20000;
constexpr Addr kC = 0x22000;

TEST(Hart2, LuiAuipcInteraction) {
  HartRunner runner;
  Assembler as(0x1000);
  as.lui(a1, 0x12345);
  as.auipc(a2, 0);            // pc of this instruction
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a1), 0x12345000u);
  EXPECT_EQ(runner.hart().x(a2), 0x1004u);
}

TEST(Hart2, SltVariants) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, -1);
  as.li(a2, 1);
  as.slt(a3, a1, a2);    // -1 < 1 signed: 1
  as.sltu(a4, a1, a2);   // huge unsigned < 1: 0
  as.slti(a5, a1, 0);    // 1
  as.sltiu(a6, a2, -1);  // 1 < 0xFFF... : 1
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a3), 1u);
  EXPECT_EQ(runner.hart().x(a4), 0u);
  EXPECT_EQ(runner.hart().x(a5), 1u);
  EXPECT_EQ(runner.hart().x(a6), 1u);
}

TEST(Hart2, MulhsuAndWideWordOps) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, -1);
  as.li(a2, 2);
  as.mulhsu(a3, a1, a2);   // high of (-1) * 2 (unsigned rs2) = -1
  as.li(t0, 6);
  as.li(t1, -4);
  as.mulw(a4, t0, t1);     // -24
  as.divw(a5, t1, a2);     // -2
  as.divuw(a6, t1, a2);    // 0xFFFFFFFC/2 sign-extended result
  as.remw(s2, t1, t0);     // -4 % 6 = -4
  as.remuw(s3, t1, t0);    // 0xFFFFFFFC % 6
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a3)), -1);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a4)), -24);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a5)), -2);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(a6)),
            static_cast<std::int32_t>(0xFFFFFFFCu / 2));
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s2)), -4);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s3)),
            static_cast<std::int32_t>(0xFFFFFFFCu % 6));
}

TEST(Hart2, FsgnjnAndFsgnjx) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(t0, 3);
  as.fcvt_d_l(fa0, t0);
  as.li(t1, -2);
  as.fcvt_d_l(fa1, t1);
  // fsgnjn.d: magnitude of fa0, inverted sign of fa1 -> +3.
  as.emit(0x53 | (12u << 7) | (1u << 12) | (10u << 15) | (11u << 20) |
          (0x11u << 25));  // fsgnjn.d fa2, fa0, fa1
  // fsgnjx.d: sign xor -> -3.
  as.emit(0x53 | (13u << 7) | (2u << 12) | (10u << 15) | (11u << 20) |
          (0x11u << 25));  // fsgnjx.d fa3, fa0, fa1
  emit_exit(as);
  runner.run(as);
  EXPECT_DOUBLE_EQ(runner.hart().f64(12), 3.0);
  EXPECT_DOUBLE_EQ(runner.hart().f64(13), -3.0);
}

TEST(Hart2, SinglePrecisionArithmeticNanBoxes) {
  HartRunner runner;
  runner.memory().write<float>(kA, 1.5f);
  runner.memory().write<float>(kA + 4, 0.25f);
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.flw(fa0, 0, s1);
  as.flw(fa1, 4, s1);
  as.fadd_s(fa2, fa0, fa1);
  as.fmul_s(fa3, fa0, fa1);
  as.fsw(fa2, 8, s1);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.memory().read<float>(kA + 8), 1.75f);
  // NaN-boxing: upper 32 bits must be all ones.
  EXPECT_EQ(runner.hart().f_bits(13) >> 32, 0xFFFFFFFFu);
}

TEST(Hart2, FcvtWordForms) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(t0, -7);
  as.fcvt_d_w(fa0, t0);     // -7.0 from 32-bit
  as.fcvt_w_d(a1, fa0);     // back to -7
  emit_exit(as);
  runner.run(as);
  EXPECT_DOUBLE_EQ(runner.hart().f64(10), -7.0);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a1)), -7);
}

TEST(Hart2, FenceAndFenceIAreNoOps) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(a1, 1);
  as.fence();
  as.emit(0x0000100F);  // fence.i
  as.addi(a1, a1, 1);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a1), 2u);
}

TEST(Hart2, EbreakExitsWithFailure) {
  HartRunner runner;
  Assembler as(0x1000);
  as.ebreak();
  EXPECT_EQ(runner.run(as), -1);
}

TEST(Hart2, CsrImmediateForms) {
  HartRunner runner;
  Assembler as(0x1000);
  // csrrwi fflags, 0x15 then csrrsi/csrrci variants.
  as.emit(0x73 | (0u << 7) | (5u << 12) | (0x15u << 15) | (0x001u << 20));
  as.csrr(a1, 0x001);
  as.emit(0x73 | (0u << 7) | (6u << 12) | (0x0Au << 15) | (0x001u << 20));
  as.csrr(a2, 0x001);
  as.emit(0x73 | (0u << 7) | (7u << 12) | (0x1Fu << 15) | (0x001u << 20));
  as.csrr(a3, 0x001);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a1), 0x15u);
  EXPECT_EQ(runner.hart().x(a2), 0x1Fu);  // 0x15 | 0x0A
  EXPECT_EQ(runner.hart().x(a3), 0u);     // cleared
}

// ----- vector extras -----

TEST(Hart2, VectorLogicalAndShiftVariants) {
  HartRunner runner(512);
  const std::uint64_t data[] = {0xF0, 0x0F, 0xFF, 0x100};
  runner.memory().poke_array(kA, data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vand_vv(v2, v1, v1);
  as.vor_vv(v3, v1, v2);
  as.vxor_vv(v4, v1, v1);        // zeros
  as.li(t0, 4);
  as.vsll_vx(v5, v1, t0);        // << 4
  as.vsrl_vi(v6, v1, 4);         // >> 4
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v4, s3);
  as.addi(s3, s3, 32);
  as.vse64(v5, s3);
  as.addi(s3, s3, 32);
  as.vse64(v6, s3);
  emit_exit(as);
  runner.run(as);
  const auto zeros = runner.memory().peek_array<std::uint64_t>(kC, 4);
  EXPECT_EQ(zeros, (std::vector<std::uint64_t>{0, 0, 0, 0}));
  const auto shifted = runner.memory().peek_array<std::uint64_t>(kC + 32, 4);
  EXPECT_EQ(shifted, (std::vector<std::uint64_t>{0xF00, 0xF0, 0xFF0, 0x1000}));
  const auto down = runner.memory().peek_array<std::uint64_t>(kC + 64, 4);
  EXPECT_EQ(down, (std::vector<std::uint64_t>{0xF, 0x0, 0xF, 0x10}));
}

TEST(Hart2, VectorSignedArithmetic) {
  HartRunner runner(512);
  const std::uint64_t a_data[] = {static_cast<std::uint64_t>(-6), 7,
                                  static_cast<std::uint64_t>(-2), 9};
  const std::uint64_t b_data[] = {3, static_cast<std::uint64_t>(-2), 5, 4};
  runner.memory().poke_array(kA, a_data, 4);
  runner.memory().poke_array(kA + 0x100, b_data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.li(s2, static_cast<std::int64_t>(kA + 0x100));
  as.vle64(v2, s2);
  // vdiv/vrem signed: a / b elementwise (note operand order: vs2 / vs1).
  as.emit(isa::encode::v_arith(0x21, true, 1, 2, 2, 3));  // vdiv.vv v3,v1,v2
  as.emit(isa::encode::v_arith(0x23, true, 1, 2, 2, 4));  // vrem.vv v4,v1,v2
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v3, s3);
  as.addi(s3, s3, 32);
  as.vse64(v4, s3);
  emit_exit(as);
  runner.run(as);
  const auto quotient = runner.memory().peek_array<std::uint64_t>(kC, 4);
  const auto remainder =
      runner.memory().peek_array<std::uint64_t>(kC + 32, 4);
  const std::int64_t expect_q[] = {-6 / 3, 7 / -2, -2 / 5, 9 / 4};
  const std::int64_t expect_r[] = {-6 % 3, 7 % -2, -2 % 5, 9 % 4};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(quotient[i]), expect_q[i]) << i;
    EXPECT_EQ(static_cast<std::int64_t>(remainder[i]), expect_r[i]) << i;
  }
}

TEST(Hart2, VectorMinMaxAndMerge) {
  HartRunner runner(512);
  const std::uint64_t a_data[] = {5, static_cast<std::uint64_t>(-3), 8, 1};
  const std::uint64_t b_data[] = {2, 4, static_cast<std::uint64_t>(-9), 1};
  runner.memory().poke_array(kA, a_data, 4);
  runner.memory().poke_array(kA + 0x100, b_data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.li(s2, static_cast<std::int64_t>(kA + 0x100));
  as.vle64(v2, s2);
  as.emit(isa::encode::v_arith(0x05, true, 1, 2, 0, 3));  // vmin.vv v3,v1,v2
  as.emit(isa::encode::v_arith(0x07, true, 1, 2, 0, 4));  // vmax.vv v4,v1,v2
  // vmerge.vvm v5 = mask ? v2 : v1 with mask from vmslt.vx v0, v1, x0
  as.vmslt_vx(v0, v1, zero);     // negative elements of a
  as.vmerge_vvm(v5, v1, v2);
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v3, s3);
  as.addi(s3, s3, 32);
  as.vse64(v4, s3);
  as.addi(s3, s3, 32);
  as.vse64(v5, s3);
  emit_exit(as);
  runner.run(as);
  const auto min_out = runner.memory().peek_array<std::uint64_t>(kC, 4);
  const auto max_out = runner.memory().peek_array<std::uint64_t>(kC + 32, 4);
  const auto merge_out =
      runner.memory().peek_array<std::uint64_t>(kC + 64, 4);
  const std::int64_t expect_min[] = {2, -3, -9, 1};
  const std::int64_t expect_max[] = {5, 4, 8, 1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(min_out[i]), expect_min[i]);
    EXPECT_EQ(static_cast<std::int64_t>(max_out[i]), expect_max[i]);
  }
  // merge: where a < 0 take b (v2's elements loaded as vs1=v2? operand
  // order: vmerge_vvm(vd, vs2, vs1) -> mask ? vs1 : vs2 with vs2=v1.
  const std::int64_t expect_merge[] = {5, 4, 8, 1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(merge_out[i]), expect_merge[i]) << i;
  }
}

TEST(Hart2, VectorIntegerReductionsMinMax) {
  HartRunner runner(512);
  const std::uint64_t data[] = {9, static_cast<std::uint64_t>(-4), 17, 0};
  runner.memory().poke_array(kA, data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vmv_s_x(v2, zero);  // seed 0
  as.emit(isa::encode::v_arith(0x07, true, 1, 2, 2, 3));  // vredmax.vs
  as.vmv_x_s(a2, v3);
  as.vmv_s_x(v2, zero);
  as.emit(isa::encode::v_arith(0x05, true, 1, 2, 2, 4));  // vredmin.vs
  as.vmv_x_s(a3, v4);
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a2)), 17);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a3)), -4);
}

TEST(Hart2, VectorSlideUpAndRgather) {
  HartRunner runner(512);
  const std::uint64_t data[] = {10, 11, 12, 13, 14, 15, 16, 17};
  runner.memory().poke_array(kA, data, 8);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vmv_v_i(v2, 0);
  // vslideup.vi v2, v1, 3
  as.emit(isa::encode::v_arith(0x0E, true, 1, 3, 3, 2));
  // vrgather.vv v3, v1, idx where idx = {7,6,...} computed via vid+rsub.
  as.vid_v(v4);
  as.li(t0, 7);
  // vrsub.vx v4, v4, t0 -> 7 - i
  as.emit(isa::encode::v_arith(0x03, true, 4, t0, 4, 4));
  as.emit(isa::encode::v_arith(0x0C, true, 1, 4, 0, 3));  // vrgather v3,v1,v4
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vse64(v2, s3);
  as.addi(s3, s3, 64);
  as.vse64(v3, s3);
  emit_exit(as);
  runner.run(as);
  const auto slide = runner.memory().peek_array<std::uint64_t>(kC, 8);
  EXPECT_EQ(slide,
            (std::vector<std::uint64_t>{0, 0, 0, 10, 11, 12, 13, 14}));
  const auto gathered =
      runner.memory().peek_array<std::uint64_t>(kC + 64, 8);
  EXPECT_EQ(gathered,
            (std::vector<std::uint64_t>{17, 16, 15, 14, 13, 12, 11, 10}));
}

TEST(Hart2, VectorStridedStoreAndFpExtremes) {
  HartRunner runner(512);
  const double data[] = {1.0, -2.0, 3.0, -4.0};
  runner.memory().poke_array(kA, data, 4);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.vfmul_vv(v2, v1, v1);       // squares
  as.emit(isa::encode::v_arith(0x04, true, 1, 2, 1, 3));  // vfmin.vv v3,v1,v2
  as.emit(isa::encode::v_arith(0x06, true, 1, 2, 1, 4));  // vfmax.vv v4,v1,v2
  as.li(s3, static_cast<std::int64_t>(kC));
  as.li(t0, 24);                 // stride 3 doubles
  as.vsse64(v3, s3, t0);
  emit_exit(as);
  runner.run(as);
  // min(v1, v1^2): {1, -2, 3, -4}^2 = {1,4,9,16} -> min {1,-2,3,-4}.
  EXPECT_EQ(runner.memory().read<double>(kC + 0), 1.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 24), -2.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 48), 3.0);
  EXPECT_EQ(runner.memory().read<double>(kC + 72), -4.0);
}

TEST(Hart2, MaskedVectorMemoryOps) {
  HartRunner runner(512);
  const std::uint64_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  runner.memory().poke_array(kA, data, 8);
  Assembler as(0x1000);
  as.li(a0, 8);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.vle64(v1, s1);
  as.li(t0, 5);
  as.vmslt_vx(v0, v1, t0);       // elements < 5
  as.vmv_v_i(v2, -1);
  as.vle64(v2, s1, /*vm=*/false);  // masked load: only first 4 replaced
  as.li(s3, static_cast<std::int64_t>(kC));
  as.vmv_v_i(v3, 0);
  as.vse64(v3, s3);                // clear destination
  as.vse64(v1, s3, /*vm=*/false);  // masked store: only first 4 written
  emit_exit(as);
  runner.run(as);
  const auto out = runner.memory().peek_array<std::uint64_t>(kC, 8);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3, 4, 0, 0, 0, 0}));
  // Masked load left tail at -1.
  std::uint64_t tail;
  std::memcpy(&tail, runner.hart().vreg_data(2) + 7 * 8, 8);
  EXPECT_EQ(tail, ~0ULL);
}

TEST(Hart2, UnsupportedVectorOpThrows) {
  HartRunner runner(512);
  Assembler as(0x1000);
  as.li(a0, 4);
  as.vsetvli(a1, a0, Sew::kE64, Lmul::kM1);
  // vcompress.vm (funct6 0x17 OPMVV) is not implemented.
  as.emit(isa::encode::v_arith(0x17, true, 1, 2, 2, 3));
  emit_exit(as);
  EXPECT_THROW(runner.run(as), ExecutionError);
}

}  // namespace
}  // namespace coyote::iss
