// LLC slice behaviour, standalone and inside the full hierarchy.
#include "memhier/llc.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "kernels/kernels.h"

namespace coyote::memhier {
namespace {

struct LlcHarness {
  simfw::Scheduler sched;
  simfw::Unit root{&sched, "top"};
  Noc noc;
  LlcConfig config;
  std::unique_ptr<LlcSlice> llc;
  simfw::DataOutPort<MemRequest> req_out{&root, "req_out"};
  simfw::DataInPort<MemResponse> resp_in{&root, "resp_in"};
  simfw::DataInPort<MemRequest> dram_in{&root, "dram_in"};
  simfw::DataOutPort<MemResponse> dram_out{&root, "dram_out"};
  std::vector<std::pair<Cycle, MemResponse>> responses;
  std::vector<std::pair<Cycle, MemRequest>> dram_requests;

  explicit LlcHarness(LlcConfig cfg = {})
      : noc(&root, NocConfig{.crossbar_latency = 0}, 1, 1), config(cfg) {
    config.enable = true;
    llc = std::make_unique<LlcSlice>(&root, "llc", 0, config, &noc, 1);
    req_out.bind(llc->req_in());
    llc->resp_out(0).bind(resp_in);
    llc->mem_req_out().bind(dram_in);
    dram_out.bind(llc->mem_resp_in());
    resp_in.register_handler([this](const MemResponse& response) {
      responses.push_back({sched.now(), response});
    });
    dram_in.register_handler([this](const MemRequest& request) {
      dram_requests.push_back({sched.now(), request});
    });
  }

  void send(Addr line, MemOp op = MemOp::kLoad) {
    req_out.send(MemRequest{line, op, 0, 0, 0}, 0);
  }
  void fill(Addr line) { dram_out.send(MemResponse{line, MemOp::kLoad, 0}, 0); }
  std::uint64_t counter(const std::string& name) {
    return llc->stats().find_counter(name).get();
  }
};

TEST(LlcSlice, MissForwardsThenHitFilters) {
  LlcConfig config;
  config.hit_latency = 20;
  LlcHarness harness(config);
  harness.send(0x1000);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.dram_requests.size(), 1u);
  harness.fill(0x1000);
  harness.sched.run_to_completion();
  ASSERT_EQ(harness.responses.size(), 1u);

  const Cycle start = harness.sched.now();
  harness.send(0x1000);  // now a hit: DRAM untouched
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.dram_requests.size(), 1u);
  ASSERT_EQ(harness.responses.size(), 2u);
  EXPECT_EQ(harness.responses[1].first - start, 20u);
  EXPECT_EQ(harness.counter("hits"), 1u);
}

TEST(LlcSlice, MergesConcurrentMissesToOneLine) {
  LlcHarness harness;
  harness.send(0x2000, MemOp::kLoad);
  harness.send(0x2000, MemOp::kIFetch);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.dram_requests.size(), 1u);
  harness.fill(0x2000);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.responses.size(), 2u);
}

TEST(LlcSlice, WritebackAllocatesDirtyAndWritesBackOnEviction) {
  LlcConfig config;
  config.size_bytes = 128;  // 1 set x 2 ways
  config.ways = 2;
  LlcHarness harness(config);
  harness.send(0x0000, MemOp::kWriteback);  // allocate dirty
  harness.sched.run_to_completion();
  EXPECT_TRUE(harness.llc->contains(0x0000));
  EXPECT_TRUE(harness.dram_requests.empty());  // absorbed silently

  // Displace it with two fills.
  harness.send(0x1000, MemOp::kLoad);
  harness.send(0x2000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x1000);
  harness.fill(0x2000);
  harness.sched.run_to_completion();
  bool saw_writeback = false;
  for (const auto& [cycle, request] : harness.dram_requests) {
    if (request.op == MemOp::kWriteback && request.line_addr == 0x0000) {
      saw_writeback = true;
    }
  }
  EXPECT_TRUE(saw_writeback);
  EXPECT_EQ(harness.counter("writebacks_out"), 1u);
}

TEST(LlcSlice, WritebackToResidentLineJustMarksDirty) {
  LlcHarness harness;
  harness.send(0x1000, MemOp::kLoad);
  harness.sched.run_to_completion();
  harness.fill(0x1000);
  harness.sched.run_to_completion();
  harness.send(0x1000, MemOp::kWriteback);
  harness.sched.run_to_completion();
  EXPECT_EQ(harness.counter("writebacks_in"), 1u);
  EXPECT_EQ(harness.counter("writebacks_out"), 0u);
}

TEST(LlcSlice, UnexpectedDramResponseThrows) {
  LlcHarness harness;
  harness.fill(0x9000);
  EXPECT_THROW(harness.sched.run_to_completion(), SimError);
}

}  // namespace
}  // namespace coyote::memhier

namespace coyote::core {
namespace {

TEST(LlcIntegration, ThreeLevelHierarchyRunsAndFilters) {
  SimConfig config;
  config.num_cores = 8;
  config.cores_per_tile = 4;
  config.llc.enable = true;
  config.llc.size_bytes = 512 * 1024;
  // Small L2 so the LLC actually sees reuse traffic.
  config.l2_bank.size_bytes = 2 * 1024;
  config.l2_bank.ways = 2;
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(64, 3);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);

  // Results still correct through three levels.
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-12);
  }

  std::uint64_t llc_hits = 0;
  std::uint64_t llc_accesses = 0;
  for (McId mc = 0; mc < config.num_mcs; ++mc) {
    ASSERT_NE(sim.llc(mc), nullptr);
    llc_hits += sim.llc(mc)->stats().find_counter("hits").get();
    llc_accesses += sim.llc(mc)->stats().find_counter("accesses").get();
  }
  EXPECT_GT(llc_accesses, 0u);
  EXPECT_GT(llc_hits, 0u);  // matmul re-reads B: the LLC must filter some

  // The report includes the new units.
  EXPECT_NE(sim.report().find("top.llc0"), std::string::npos);
}

TEST(LlcIntegration, LlcReducesMemoryReads) {
  const auto mc_reads_with = [](bool llc) {
    SimConfig config;
    config.num_cores = 8;
    config.cores_per_tile = 4;
    config.l2_bank.size_bytes = 2 * 1024;
  config.l2_bank.ways = 2;
    config.llc.enable = llc;
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(64, 3);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 8);
    sim.load_program(program.base, program.words, program.entry);
    EXPECT_TRUE(sim.run(500'000'000).all_exited);
    std::uint64_t reads = 0;
    for (McId mc = 0; mc < config.num_mcs; ++mc) {
      reads += sim.mc(mc).stats().find_counter("reads").get();
    }
    return reads;
  };
  EXPECT_LT(mc_reads_with(true), mc_reads_with(false));
}

TEST(LlcIntegration, DisabledByDefault) {
  SimConfig config;
  config.num_cores = 1;
  Simulator sim(config);
  EXPECT_EQ(sim.llc(0), nullptr);
}

TEST(LlcIntegration, LineMismatchRejected) {
  SimConfig config;
  config.llc.enable = true;
  config.llc.line_bytes = 128;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace coyote::core
