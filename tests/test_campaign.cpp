// Campaign service unit tests: the wire protocol's framing and typed
// payloads (round-trip under arbitrary byte chunkings — TCP guarantees no
// message boundaries, so the decoder must not care how bytes arrive), the
// lease table's deadline machinery under a fake clock, the
// content-addressed memo store's corruption and collision defences, and
// the canonical config hash the store keys by.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "campaign/broker.h"
#include "campaign/lease.h"
#include "campaign/memo.h"
#include "campaign/net.h"
#include "campaign/protocol.h"
#include "common/binio.h"
#include "common/rng.h"
#include "core/config_io.h"
#include "sweep/point_record.h"
#include "sweep/point_runner.h"
#include "sweep/sweep.h"

namespace coyote::campaign {
namespace {

using std::chrono::milliseconds;

// ------------------------------------------------------------ framing --

sweep::PointResult sample_point(std::size_t index) {
  sweep::PointResult point;
  point.index = index;
  point.config.set("topo.cores", "4");
  point.config.set("l2.size_kb", std::to_string(64 << (index % 3)));
  point.ok = index % 4 != 3;
  point.attempts = 1 + static_cast<std::uint32_t>(index % 2);
  if (!point.ok) point.error = "synthetic failure #" + std::to_string(index);
  if (index % 5 == 0) {
    point.fault_outcome = "masked";
    point.fault_detail = "digest match";
  }
  point.run.cycles = 1000 + index * 37;
  point.run.instructions = 500 + index * 13;
  point.run.all_exited = point.ok;
  point.run.exit_codes = {0, static_cast<std::int64_t>(index)};
  point.metrics.emplace_back("l2_miss_rate", 0.125 * static_cast<double>(index));
  return point;
}

std::vector<Frame> sample_conversation() {
  std::vector<Frame> frames;
  frames.push_back(encode_hello({kProtocolVersion, "host:1234"}));
  WelcomeFrame welcome;
  welcome.campaign = "matmul_scalar";
  welcome.heartbeat_ms = 250;
  welcome.lease_ms = 1500;
  welcome.max_cycles = 123456789;
  welcome.max_attempts = 3;
  frames.push_back(encode_welcome(welcome));
  frames.push_back(encode_request());
  AssignFrame assign;
  assign.index = 7;
  assign.config.set("l2.size_kb", "256");
  assign.config.set("workload.kernel", "axpy");
  frames.push_back(encode_assign(assign));
  frames.push_back(encode_heartbeat({7}));
  frames.push_back(encode_heartbeat_ack({7}));
  ProgressFrame progress;
  progress.index = 7;
  progress.phase = "running";
  progress.value = 4200;
  frames.push_back(encode_progress(progress));
  ResultFrame result;
  result.index = 7;
  result.point = sample_point(7);
  frames.push_back(encode_result(result));
  frames.push_back(encode_no_work());
  frames.push_back(encode_error(
      {ErrorCode::kProtocolMismatch, "worker speaks protocol 1"}));
  frames.push_back(encode_shutdown(
      {ShutdownReason::kCampaignComplete, "campaign complete"}));
  return frames;
}

TEST(CampaignProtocol, FramesRoundTripThroughTheDecoderInOnePiece) {
  const std::vector<Frame> frames = sample_conversation();
  std::string wire;
  for (const Frame& frame : frames) wire += encode_frame(frame);

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  for (const Frame& expect : frames) {
    const auto got = decoder.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expect);
  }
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(CampaignProtocol, FramesSurviveArbitraryByteChunking) {
  const std::vector<Frame> frames = sample_conversation();
  std::string wire;
  for (const Frame& frame : frames) wire += encode_frame(frame);

  // Property test: many random chunkings, including a pure 1-byte drip,
  // must reproduce the identical frame sequence.
  Xoshiro256 rng(0xC0FFEE);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder decoder;
    std::vector<Frame> got;
    std::size_t cursor = 0;
    while (cursor < wire.size()) {
      const std::size_t chunk =
          trial == 0 ? 1
                     : 1 + static_cast<std::size_t>(
                               rng.below(std::min<std::uint64_t>(
                                   wire.size() - cursor, 97)));
      decoder.feed(wire.data() + cursor, chunk);
      cursor += chunk;
      while (const auto frame = decoder.next()) got.push_back(*frame);
    }
    ASSERT_EQ(got.size(), frames.size()) << "trial " << trial;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i], frames[i]) << "trial " << trial << " frame " << i;
    }
  }
}

TEST(CampaignProtocol, TypedPayloadsRoundTrip) {
  const HelloFrame hello = parse_hello(encode_hello({kProtocolVersion, "w9"}));
  EXPECT_EQ(hello.protocol, kProtocolVersion);
  EXPECT_EQ(hello.worker, "w9");

  WelcomeFrame welcome;
  welcome.campaign = "spmv";
  welcome.heartbeat_ms = 111;
  welcome.lease_ms = 999;
  welcome.max_cycles = ~std::uint64_t{0};
  welcome.max_attempts = 5;
  const WelcomeFrame welcome2 = parse_welcome(encode_welcome(welcome));
  EXPECT_EQ(welcome2.campaign, "spmv");
  EXPECT_EQ(welcome2.heartbeat_ms, 111u);
  EXPECT_EQ(welcome2.lease_ms, 999u);
  EXPECT_EQ(welcome2.max_cycles, ~std::uint64_t{0});
  EXPECT_EQ(welcome2.max_attempts, 5u);

  AssignFrame assign;
  assign.index = 42;
  assign.config.set("a", "1");
  assign.config.set("b", "two");
  const AssignFrame assign2 = parse_assign(encode_assign(assign));
  EXPECT_EQ(assign2.index, 42u);
  EXPECT_EQ(assign2.config.values(), assign.config.values());

  const ResultFrame result2 =
      parse_result(encode_result({13, sample_point(13)}));
  EXPECT_EQ(result2.index, 13u);
  const sweep::PointResult& expect = sample_point(13);
  EXPECT_EQ(result2.point.to_json(false), expect.to_json(false));
}

TEST(CampaignProtocol, ControlFramesRoundTrip) {
  const ErrorFrame error = parse_error(encode_error(
      {ErrorCode::kQuarantined, "address 10.0.0.9 quarantined"}));
  EXPECT_EQ(error.code, ErrorCode::kQuarantined);
  EXPECT_EQ(error.message, "address 10.0.0.9 quarantined");

  const ShutdownFrame shutdown = parse_shutdown(
      encode_shutdown({ShutdownReason::kDraining, "broker draining"}));
  EXPECT_EQ(shutdown.reason, ShutdownReason::kDraining);
  EXPECT_EQ(shutdown.message, "broker draining");

  // Empty messages are legal — SHUTDOWN is sometimes all the broker has
  // time to say.
  const ShutdownFrame terse = parse_shutdown(
      encode_shutdown({ShutdownReason::kCampaignComplete, ""}));
  EXPECT_EQ(terse.reason, ShutdownReason::kCampaignComplete);
  EXPECT_TRUE(terse.message.empty());

  // Cross-parsing is a typed error, not garbage.
  EXPECT_THROW(parse_shutdown(encode_error({ErrorCode::kMalformedFrame, ""})),
               ProtocolError);
  EXPECT_THROW(parse_error(encode_no_work()), ProtocolError);
}

TEST(CampaignProtocol, ChecksumCatchesEverySingleBitFlip) {
  // Flip every bit of the frame body (type byte, payload, checksum — all
  // bytes past the length prefix) one at a time: each flip must surface as
  // a ProtocolError, never as a silently different frame. This is the
  // integrity floor the chaos suite's bitflip scenarios stand on.
  ResultFrame result;
  result.index = 3;
  result.point = sample_point(3);
  const std::string wire = encode_frame(encode_result(result));
  ASSERT_GT(wire.size(), 4u);
  for (std::size_t byte = 4; byte < wire.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] ^= static_cast<char>(1u << bit);
      FrameDecoder decoder;
      decoder.feed(corrupt.data(), corrupt.size());
      EXPECT_THROW(decoder.next(), ProtocolError)
          << "byte " << byte << " bit " << bit;
    }
  }
  // The pristine frame still decodes — the loop above really was the flip.
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(CampaignProtocol, UndersizedFrameLengthsAreRejected) {
  // v2 frames carry at least a type byte and a 4-byte checksum; a declared
  // length of 1..4 can only come from corruption or an old peer.
  for (std::uint32_t length = 1; length <= 4; ++length) {
    char header[4];
    std::memcpy(header, &length, 4);
    FrameDecoder decoder;
    decoder.feed(header, sizeof header);
    EXPECT_THROW(decoder.next(), ProtocolError) << "length " << length;
  }
}

TEST(CampaignProtocol, ZeroLengthFramesAreRejected) {
  FrameDecoder decoder;
  const char zero[4] = {0, 0, 0, 0};  // u32 length = 0: no type byte
  EXPECT_THROW(
      {
        decoder.feed(zero, sizeof zero);
        decoder.next();
      },
      ProtocolError);
}

TEST(CampaignProtocol, OversizedFramesAreRejectedBeforeBuffering) {
  // Declare a body far over kMaxFrameBytes; the decoder must throw on the
  // header alone instead of waiting for (or allocating) 4 GiB.
  std::uint32_t huge = kMaxFrameBytes + 1;
  char header[5];
  std::memcpy(header, &huge, 4);
  header[4] = 1;
  FrameDecoder decoder;
  EXPECT_THROW(
      {
        decoder.feed(header, sizeof header);
        decoder.next();
      },
      ProtocolError);

  Frame frame;
  frame.type = FrameType::kResult;
  frame.payload.assign(kMaxFrameBytes, 'x');
  EXPECT_THROW(encode_frame(frame), ProtocolError);
}

TEST(CampaignProtocol, TrailingPayloadBytesAreAProtocolError) {
  Frame frame = encode_request();
  frame.payload = "junk the parser must not ignore";
  EXPECT_THROW(parse_hello(frame), ProtocolError);  // wrong type
  frame.type = FrameType::kHello;
  EXPECT_THROW(parse_hello(frame), ProtocolError);  // malformed payload
}

TEST(CampaignProtocol, PointRecordRoundTripsThroughBinaryForm) {
  const sweep::PointResult point = sample_point(3);
  std::ostringstream os;
  {
    BinWriter writer(os);
    sweep::write_point_record(writer, point);
  }
  std::istringstream is(os.str());
  BinReader reader(is);
  sweep::PointResult loaded;
  sweep::read_point_record(reader, loaded);
  loaded.index = point.index;  // records do not carry the slot
  EXPECT_EQ(loaded.to_json(false), point.to_json(false));
  EXPECT_EQ(loaded.attempts, point.attempts);
}

// ------------------------------------------------------------- leases --

struct FakeClock {
  TimePoint now{};
  Clock clock() {
    return [this] { return now; };
  }
  void advance(milliseconds delta) { now += delta; }
};

TEST(CampaignLease, PointsAreHandedOutLowestIndexFirst) {
  FakeClock clock;
  LeaseTable table(3, milliseconds(100));
  EXPECT_EQ(table.acquire(1, clock.now), 0u);
  EXPECT_EQ(table.acquire(2, clock.now), 1u);
  EXPECT_EQ(table.acquire(1, clock.now), 2u);
  EXPECT_EQ(table.acquire(3, clock.now), std::nullopt);
  EXPECT_EQ(table.num_leased(), 3u);
}

TEST(CampaignLease, ExpiryRequeuesAndReassignsDeterministically) {
  FakeClock clock;
  LeaseTable table(2, milliseconds(100));
  ASSERT_EQ(table.acquire(1, clock.now), 0u);
  ASSERT_EQ(table.acquire(2, clock.now), 1u);

  clock.advance(milliseconds(99));
  EXPECT_TRUE(table.expire(clock.now).empty());

  // Worker 2 heartbeats, worker 1 goes silent: only point 0 expires.
  EXPECT_TRUE(table.renew(1, 2, clock.now));
  clock.advance(milliseconds(2));
  EXPECT_EQ(table.expire(clock.now), (std::vector<std::size_t>{0}));
  EXPECT_EQ(table.num_pending(), 1u);

  // The freed point goes to the next requester.
  EXPECT_EQ(table.acquire(3, clock.now), 0u);
}

TEST(CampaignLease, RenewIsOwnerChecked) {
  FakeClock clock;
  LeaseTable table(1, milliseconds(50));
  ASSERT_EQ(table.acquire(1, clock.now), 0u);
  EXPECT_FALSE(table.renew(0, 99, clock.now));  // not the holder
  clock.advance(milliseconds(51));
  ASSERT_EQ(table.expire(clock.now), (std::vector<std::size_t>{0}));
  // The old holder's heartbeat after expiry must not resurrect the lease.
  EXPECT_FALSE(table.renew(0, 1, clock.now));
  EXPECT_EQ(table.acquire(2, clock.now), 0u);
}

TEST(CampaignLease, CompleteDropsDuplicatesAndFinishesTheCampaign) {
  FakeClock clock;
  LeaseTable table(2, milliseconds(100));
  ASSERT_EQ(table.acquire(1, clock.now), 0u);
  EXPECT_TRUE(table.complete(0));
  EXPECT_FALSE(table.complete(0));  // late duplicate from a forfeited worker
  EXPECT_FALSE(table.all_done());
  EXPECT_TRUE(table.complete(1));  // completes straight from pending
  EXPECT_TRUE(table.all_done());
  EXPECT_EQ(table.acquire(1, clock.now), std::nullopt);
}

TEST(CampaignLease, ReleaseWorkerReturnsOnlyItsPoint) {
  FakeClock clock;
  LeaseTable table(2, milliseconds(100));
  ASSERT_EQ(table.acquire(1, clock.now), 0u);
  ASSERT_EQ(table.acquire(2, clock.now), 1u);
  EXPECT_EQ(table.release_worker(1), 0u);
  EXPECT_EQ(table.release_worker(1), std::nullopt);
  EXPECT_EQ(table.num_pending(), 1u);
  EXPECT_EQ(table.num_leased(), 1u);
}

TEST(CampaignLease, NextDeadlineTracksTheEarliestLease) {
  FakeClock clock;
  LeaseTable table(2, milliseconds(100));
  EXPECT_EQ(table.next_deadline(), std::nullopt);
  ASSERT_EQ(table.acquire(1, clock.now), 0u);
  const TimePoint first = *table.next_deadline();
  clock.advance(milliseconds(40));
  ASSERT_EQ(table.acquire(2, clock.now), 1u);
  EXPECT_EQ(*table.next_deadline(), first);  // older lease expires sooner
  ASSERT_TRUE(table.renew(0, 1, clock.now));
  EXPECT_GT(*table.next_deadline(), first);
}

// ------------------------------------------------- drain vs lease race --

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// FakeClock whose now() can be advanced from the test thread while the
/// broker thread reads it: one atomic, no torn reads.
struct SharedFakeClock {
  std::atomic<std::int64_t> ms{0};
  Clock clock() {
    return [this] { return TimePoint{} + milliseconds(ms.load()); };
  }
  void advance(milliseconds delta) { ms += delta.count(); }
};

/// A hand-rolled worker connection for broker-level tests: blocking
/// socket, synchronous send/receive.
struct RawClient {
  Socket sock;
  FrameDecoder decoder;

  explicit RawClient(std::uint16_t port)
      : sock(Socket::connect_tcp("127.0.0.1", port)) {}

  void send(const Frame& frame) {
    const std::string wire = encode_frame(frame);
    ASSERT_TRUE(sock.write_all(wire.data(), wire.size()));
  }

  Frame receive() {
    while (true) {
      if (auto frame = decoder.next()) return *frame;
      char buf[4096];
      const long n = sock.read_some(buf, sizeof buf);
      if (n <= 0) {
        ADD_FAILURE() << "broker hung up";
        return Frame{};
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  }
};

sweep::SweepSpec one_point_spec() {
  sweep::SweepSpec spec;
  spec.kernel = "matmul_scalar";
  spec.size = 12;
  spec.seed = 5;
  spec.base.set("topo.cores", "4");
  return spec;
}

TEST(CampaignDrain, LeaseExpiringDuringDrainLeavesThePointResumable) {
  // A worker leases the only point, the broker is told to drain, and the
  // lease expires inside the grace window: the point must come back as
  // *unassigned* — not handed to anyone, not recorded done — so a broker
  // restart from the same state dir runs it exactly once.
  const std::string state_dir = fresh_dir("campaign_drain_race");
  SharedFakeClock clock;
  Broker::Options options;
  options.clock = clock.clock();
  options.lease = milliseconds(1'000);
  options.heartbeat = milliseconds(200);
  options.drain_grace = milliseconds(60'000);  // expiry races grace, wins
  options.state_dir = state_dir;
  Broker broker(one_point_spec(), std::move(options));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  std::thread server([&] { broker.serve(); });

  RawClient worker(port);
  worker.send(encode_hello({kProtocolVersion, "doomed"}));
  ASSERT_EQ(worker.receive().type, FrameType::kWelcome);
  worker.send(encode_request());
  const Frame assigned = worker.receive();
  ASSERT_EQ(assigned.type, FrameType::kAssign);
  EXPECT_EQ(parse_assign(assigned).index, 0u);

  broker.request_drain();
  clock.advance(milliseconds(1'001));  // past the lease, far from grace
  server.join();

  EXPECT_TRUE(broker.drained_incomplete());
  // Never recorded: the .done file must not exist for the in-flight point.
  EXPECT_FALSE(std::filesystem::exists(state_dir + "/point0.done"));
  // And a restarted broker sees exactly one pending point — not zero (the
  // point survived), not a duplicate record.
  Broker::Options restart;
  restart.state_dir = state_dir;
  Broker resumed(one_point_spec(), std::move(restart));
  EXPECT_EQ(resumed.num_points(), 1u);
  EXPECT_EQ(resumed.num_done(), 0u);
}

TEST(CampaignDrain, ResultDeliveredDuringGraceIsPersistedOnce) {
  // The flip side of the race: the worker beats its lease and delivers
  // during the drain grace. The result must be persisted and the campaign
  // counted complete — drain never discards a finished point.
  const std::string state_dir = fresh_dir("campaign_drain_delivered");
  SharedFakeClock clock;
  Broker::Options options;
  options.clock = clock.clock();
  options.lease = milliseconds(60'000);
  options.drain_grace = milliseconds(60'000);
  options.state_dir = state_dir;
  const sweep::SweepSpec spec = one_point_spec();
  Broker broker(spec, std::move(options));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  std::thread server([&] { broker.serve(); });

  RawClient worker(port);
  worker.send(encode_hello({kProtocolVersion, "prompt"}));
  ASSERT_EQ(worker.receive().type, FrameType::kWelcome);
  worker.send(encode_request());
  const Frame assigned = worker.receive();
  ASSERT_EQ(assigned.type, FrameType::kAssign);

  broker.request_drain();
  // Build a result whose config is the broker's own normalisation of the
  // point, as a real worker would return.
  sweep::PointResult point;
  point.index = 0;
  point.config = core::config_to_map(
      core::config_from_map(parse_assign(assigned).config));
  point.ok = true;
  point.attempts = 1;
  point.run.cycles = 1234;
  point.run.all_exited = true;
  worker.send(encode_result({0, point}));
  worker.sock.close();  // RESULT then FIN: broker finishes without linger
  server.join();

  EXPECT_FALSE(broker.drained_incomplete());  // completed *during* drain
  EXPECT_TRUE(std::filesystem::exists(state_dir + "/point0.done"));
  Broker::Options restart;
  restart.state_dir = state_dir;
  Broker resumed(spec, std::move(restart));
  EXPECT_EQ(resumed.num_done(), 1u);
}

// -------------------------------------------------------- config hash --

TEST(CampaignHash, CanonicalTextIsSortedAndStable) {
  simfw::ConfigMap a;
  a.set("zeta", "1");
  a.set("alpha", "2");
  EXPECT_EQ(core::canonical_config_text(a), "alpha=2\nzeta=1\n");

  simfw::ConfigMap b;
  b.set("alpha", "2");
  b.set("zeta", "1");
  EXPECT_EQ(core::config_map_hash(a), core::config_map_hash(b));

  b.set("zeta", "3");
  EXPECT_NE(core::config_map_hash(a), core::config_map_hash(b));
  EXPECT_EQ(core::config_hash_hex(0x1234abcdu), "000000001234abcd");
}

TEST(CampaignHash, NormalisedConfigHashIsIndependentOfSpelling) {
  simfw::ConfigMap sparse;
  sparse.set("topo.cores", "4");
  const auto full = core::config_to_map(core::config_from_map(sparse));
  // The normalised map names every knob; hashing it keys the *complete*
  // design point, so two spellings of the same machine collide on purpose.
  simfw::ConfigMap padded = sparse;
  padded.set("l2.size_kb", full.get("l2.size_kb"));
  const auto full2 = core::config_to_map(core::config_from_map(padded));
  EXPECT_EQ(core::config_map_hash(full), core::config_map_hash(full2));
}

// --------------------------------------------------------- memo store --

TEST(CampaignMemo, StoreAndLoadRoundTrip) {
  const MemoStore store(fresh_dir("memo_roundtrip"));
  const sweep::PointResult point = sample_point(2);
  const std::uint64_t key = core::config_map_hash(point.config);
  store.store(key, point);

  sweep::PointResult loaded;
  loaded.index = 2;
  ASSERT_TRUE(store.try_load(key, point.config, loaded));
  EXPECT_EQ(loaded.to_json(false), point.to_json(false));
  EXPECT_FALSE(store.try_load(key + 1, point.config, loaded));
}

TEST(CampaignMemo, CorruptEntriesAreMissesNotErrors) {
  const MemoStore store(fresh_dir("memo_corrupt"));
  const sweep::PointResult point = sample_point(4);
  const std::uint64_t key = core::config_map_hash(point.config);
  store.store(key, point);

  // Chop the entry at several byte offsets; every truncation must load as
  // a miss, never throw, never return garbage.
  std::ifstream in(store.entry_path(key), std::ios::binary);
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string bytes = whole.str();
  ASSERT_GT(bytes.size(), 16u);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}, std::size_t{15},
        bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(store.entry_path(key),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    sweep::PointResult loaded;
    EXPECT_FALSE(store.try_load(key, point.config, loaded))
        << "truncated to " << keep << " bytes";
  }

  // Pure garbage under the right name is also just a miss.
  std::ofstream out(store.entry_path(key),
                    std::ios::binary | std::ios::trunc);
  out << "not a memo entry at all";
  out.close();
  sweep::PointResult loaded;
  EXPECT_FALSE(store.try_load(key, point.config, loaded));
}

TEST(CampaignMemo, HashCollisionsAreDetectedByConfigComparison) {
  const MemoStore store(fresh_dir("memo_collision"));
  const sweep::PointResult point = sample_point(6);
  const std::uint64_t key = core::config_map_hash(point.config);
  store.store(key, point);

  // A different design point that (hypothetically) hashed to the same key
  // must verify the stored config and miss, not replay the wrong result.
  simfw::ConfigMap other = point.config;
  other.set("topo.cores", "64");
  sweep::PointResult loaded;
  EXPECT_FALSE(store.try_load(key, other, loaded));
  // The original still hits.
  EXPECT_TRUE(store.try_load(key, point.config, loaded));
}

}  // namespace
}  // namespace coyote::campaign
