// Kernel correctness: every kernel builder, on a spread of core counts and
// problem shapes, must reproduce the host-side reference bit-for-bit (the
// kernels use the same operation order as the references) or within FP
// round-off where the order differs.
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.h"

namespace coyote::kernels {
namespace {

core::SimConfig config_for(std::uint32_t cores) {
  core::SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 4;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  return config;
}

void expect_close(const std::vector<double>& expected,
                  const std::vector<double>& actual, double tolerance) {
  ASSERT_EQ(expected.size(), actual.size());
  double max_err = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    max_err = std::fmax(max_err, std::fabs(expected[i] - actual[i]));
  }
  EXPECT_LE(max_err, tolerance);
}

// ------------------------------------------------------------- matmul --

class MatmulTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MatmulTest, ScalarMatchesReference) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = MatmulWorkload::generate(20, 11);
  workload.install(sim.memory());
  const auto program = build_matmul_scalar(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
}

TEST_P(MatmulTest, VectorMatchesReference) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = MatmulWorkload::generate(20, 13);
  workload.install(sim.memory());
  const auto program = build_matmul_vector(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  // The vector kernel uses FMA; allow round-off differences.
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, MatmulTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Matmul, UnevenPartitioning) {
  // 7 rows over 4 cores: last core gets a short block; rows must all land.
  core::Simulator sim(config_for(4));
  const auto workload = MatmulWorkload::generate(7, 3);
  workload.install(sim.memory());
  const auto program = build_matmul_scalar(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
}

TEST(Matmul, MoreCoresThanRows) {
  core::Simulator sim(config_for(8));
  const auto workload = MatmulWorkload::generate(3, 3);
  workload.install(sim.memory());
  const auto program = build_matmul_scalar(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
}

// --------------------------------------------------------------- spmv --

struct SpmvCase {
  const char* name;
  Program (*build)(const SpmvWorkload&, std::uint32_t);
  double tolerance;
};

class SpmvTest
    : public ::testing::TestWithParam<std::tuple<SpmvCase, std::uint32_t>> {};

TEST_P(SpmvTest, MatchesReference) {
  const auto [kernel, cores] = GetParam();
  core::Simulator sim(config_for(cores));
  auto workload =
      SpmvWorkload::generate(CsrMatrix::random(60, 80, 6, 21), 22);
  workload.install(sim.memory());
  const auto program = kernel.build(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()),
               kernel.tolerance);
}

TEST_P(SpmvTest, BandedMatrix) {
  const auto [kernel, cores] = GetParam();
  core::Simulator sim(config_for(cores));
  auto workload =
      SpmvWorkload::generate(CsrMatrix::banded(48, 48, 5, 16, 31), 32);
  workload.install(sim.memory());
  const auto program = kernel.build(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()),
               kernel.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SpmvTest,
    ::testing::Combine(
        ::testing::Values(
            // The scalar kernel uses fmadd (single rounding) while the host
            // reference rounds twice, so only round-off-level agreement is
            // guaranteed; the pure mul+ordered-add variants match closely
            // too but are not bit-contractual across FP contraction modes.
            SpmvCase{"scalar", build_spmv_scalar, 1e-12},
            SpmvCase{"row_gather", build_spmv_row_gather, 1e-12},
            SpmvCase{"ell", build_spmv_ell, 1e-12},
            SpmvCase{"two_phase", build_spmv_two_phase, 1e-12}),
        ::testing::Values(1u, 2u, 5u, 8u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_cores" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Spmv, EmptyRowsHandled) {
  // A matrix where several rows have no non-zeros at all.
  CsrMatrix matrix;
  matrix.rows = 6;
  matrix.cols = 8;
  matrix.row_ptr = {0, 2, 2, 2, 5, 5, 6};
  matrix.col_idx = {1, 3, 0, 4, 7, 2};
  matrix.values = {1.5, -2.0, 3.0, 0.5, 1.0, -1.0};
  auto workload = SpmvWorkload::generate(std::move(matrix), 77);
  for (const auto build :
       {build_spmv_scalar, build_spmv_row_gather, build_spmv_two_phase}) {
    core::Simulator sim(config_for(2));
    workload.install(sim.memory());
    const auto program = build(workload, 2);
    sim.load_program(program.base, program.words, program.entry);
    ASSERT_TRUE(sim.run(100'000'000).all_exited);
    expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
  }
}

TEST(Spmv, LongRowsSpanMultipleVectorChunks) {
  // Rows of 100 nnz exceed VLMAX (32 at e64/m4 with VLEN=512): the
  // row-gather kernel must iterate chunks within a row.
  core::Simulator sim(config_for(2));
  auto workload =
      SpmvWorkload::generate(CsrMatrix::random(8, 400, 100, 51), 52);
  workload.install(sim.memory());
  const auto program = build_spmv_row_gather(workload, 2);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-12);
}

TEST(Spmv, GatherTouchesMoreLinesThanStream) {
  // Sanity on the data-movement premise: random SpMV gathers touch many
  // more distinct L1 lines per element than the dense stream of values.
  core::Simulator sim(config_for(1));
  auto workload =
      SpmvWorkload::generate(CsrMatrix::random(64, 4096, 8, 91), 92);
  workload.install(sim.memory());
  const auto program = build_spmv_scalar(workload, 1);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto& counters = sim.core(0).counters();
  // Expect a high L1D miss rate relative to a dense kernel's.
  EXPECT_GT(counters.l1d_misses * 10, counters.l1d_accesses);
}

// ------------------------------------------------------------ stencil --

class StencilTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StencilTest, VectorSingleSweep) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = StencilWorkload::generate(300, 1, 61);
  workload.install(sim.memory());
  const auto program = build_stencil_vector(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-14);
}

TEST_P(StencilTest, ScalarSingleSweep) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = StencilWorkload::generate(300, 1, 62);
  workload.install(sim.memory());
  const auto program = build_stencil_scalar(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-14);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, StencilTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Stencil, MultiIterationSingleCore) {
  core::Simulator sim(config_for(1));
  const auto workload = StencilWorkload::generate(128, 5, 63);
  workload.install(sim.memory());
  const auto program = build_stencil_vector(workload, 1);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-13);
}

TEST(Stencil, MultiIterationMulticoreVector) {
  // The former iterations==1 restriction is lifted: the vector builder
  // delegates multicore multi-iteration shapes to the barrier-synchronized
  // variant and the halo cells are exchanged correctly between sweeps.
  core::Simulator sim(config_for(4));
  const auto workload = StencilWorkload::generate(128, 3, 64);
  workload.install(sim.memory());
  const auto program = build_stencil_vector(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-13);
}

TEST(Stencil, MultiIterationMulticoreScalar) {
  core::Simulator sim(config_for(4));
  const auto workload = StencilWorkload::generate(128, 3, 66);
  workload.install(sim.memory());
  const auto program = build_stencil_scalar(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(200'000'000).all_exited);
  expect_close(workload.reference(), workload.result(sim.memory()), 1e-13);
}

TEST(Stencil, BoundariesUntouched) {
  core::Simulator sim(config_for(2));
  const auto workload = StencilWorkload::generate(64, 1, 65);
  workload.install(sim.memory());
  const auto program = build_stencil_vector(workload, 2);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(100'000'000).all_exited);
  const auto result = workload.result(sim.memory());
  EXPECT_EQ(result.front(), workload.src.front());
  EXPECT_EQ(result.back(), workload.src.back());
}

// ----------------------------------------------------------- workloads --

TEST(Workloads, BlockPartitionCoversEverythingOnce) {
  for (std::uint64_t total : {0ull, 1ull, 7ull, 64ull, 100ull}) {
    for (std::uint32_t parts : {1u, 2u, 3u, 8u, 128u}) {
      std::uint64_t covered = 0;
      std::uint64_t last_end = 0;
      for (std::uint32_t part = 0; part < parts; ++part) {
        const Range range = block_partition(total, part, parts);
        EXPECT_LE(range.begin, range.end);
        EXPECT_GE(range.begin, last_end);
        covered += range.end - range.begin;
        last_end = range.end;
      }
      EXPECT_EQ(covered, total) << total << "/" << parts;
      EXPECT_EQ(last_end, total);
    }
  }
}

TEST(Workloads, CsrRandomIsWellFormed) {
  const auto matrix = CsrMatrix::random(50, 70, 7, 5);
  EXPECT_EQ(matrix.row_ptr.size(), 51u);
  EXPECT_EQ(matrix.row_ptr.front(), 0u);
  EXPECT_EQ(matrix.row_ptr.back(), matrix.nnz());
  for (std::size_t r = 0; r < matrix.rows; ++r) {
    EXPECT_LE(matrix.row_ptr[r], matrix.row_ptr[r + 1]);
    for (auto i = matrix.row_ptr[r]; i < matrix.row_ptr[r + 1]; ++i) {
      EXPECT_LT(matrix.col_idx[i], matrix.cols);
      if (i > matrix.row_ptr[r]) {
        EXPECT_LT(matrix.col_idx[i - 1], matrix.col_idx[i]) << "sorted";
      }
    }
  }
}

TEST(Workloads, EveryRowKeepsItsNnzBudget) {
  // Regression: the generators reuse one scratch vector; it must be
  // re-expanded per row or every row after a duplicate shrinks for good.
  const auto sparse = CsrMatrix::random(200, 100000, 8, 3);
  EXPECT_GE(sparse.nnz(), 200u * 7u);
  const auto banded = CsrMatrix::banded(200, 200, 8, 64, 3);
  EXPECT_GE(banded.nnz(), 200u * 6u);
  for (std::size_t r = 1; r < banded.rows; ++r) {
    EXPECT_GE(banded.row_ptr[r + 1] - banded.row_ptr[r], 3u) << "row " << r;
  }
}

TEST(Workloads, BandedMatrixStaysInBand) {
  const std::size_t bandwidth = 20;
  const auto matrix = CsrMatrix::banded(100, 100, 6, bandwidth, 9);
  for (std::size_t r = 0; r < matrix.rows; ++r) {
    const std::uint64_t center = (r * matrix.cols) / matrix.rows;
    for (auto i = matrix.row_ptr[r]; i < matrix.row_ptr[r + 1]; ++i) {
      const std::uint64_t col = matrix.col_idx[i];
      EXPECT_LE(col, center + bandwidth);
      EXPECT_GE(col + bandwidth, center);
    }
  }
}

TEST(Workloads, EllConversionRoundTrips) {
  const auto csr = CsrMatrix::random(30, 40, 5, 17);
  const auto ell = EllMatrix::from_csr(csr);
  EXPECT_EQ(ell.rows, csr.rows);
  // Reconstruct y = A*x from the ELL arrays and compare with CSR SpMV.
  std::vector<double> x(csr.cols);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.25 * (i + 1);
  std::vector<double> y_ell(csr.rows, 0.0);
  for (std::size_t slot = 0; slot < ell.width; ++slot) {
    for (std::size_t r = 0; r < ell.rows; ++r) {
      y_ell[r] += ell.values[slot * ell.rows + r] *
                  x[ell.col_idx[slot * ell.rows + r]];
    }
  }
  std::vector<double> y_csr(csr.rows, 0.0);
  for (std::size_t r = 0; r < csr.rows; ++r) {
    for (auto i = csr.row_ptr[r]; i < csr.row_ptr[r + 1]; ++i) {
      y_csr[r] += csr.values[i] * x[csr.col_idx[i]];
    }
  }
  for (std::size_t r = 0; r < csr.rows; ++r) {
    EXPECT_NEAR(y_ell[r], y_csr[r], 1e-12);
  }
}

TEST(Workloads, DeterministicGeneration) {
  const auto a = MatmulWorkload::generate(8, 5);
  const auto b = MatmulWorkload::generate(8, 5);
  EXPECT_EQ(a.a, b.a);
  EXPECT_EQ(a.b, b.b);
  const auto ca = CsrMatrix::random(10, 10, 3, 5);
  const auto cb = CsrMatrix::random(10, 10, 3, 5);
  EXPECT_EQ(ca.col_idx, cb.col_idx);
  EXPECT_EQ(ca.values, cb.values);
}

}  // namespace
}  // namespace coyote::kernels
