// Shared helpers for the Coyote test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/assembler.h"
#include "isa/decoder.h"
#include "iss/hart.h"
#include "iss/memory.h"

namespace coyote::test {

/// Runs hand-assembled code on a bare Hart (no caches, no timing), stepping
/// until the program exits or `max_steps` is reached.
class HartRunner {
 public:
  explicit HartRunner(unsigned vlen_bits = 512)
      : hart_(0, &memory_, iss::VectorConfig{vlen_bits}) {}

  iss::SparseMemory& memory() { return memory_; }
  iss::Hart& hart() { return hart_; }

  /// Loads `as`'s program and executes from its base.
  /// Returns the exit code; fails the test on step-limit overrun.
  std::int64_t run(isa::Assembler& as, std::uint64_t max_steps = 1'000'000) {
    const auto& words = as.finish();
    memory_.poke_words(as.base(), words);
    hart_.reset(as.base());
    iss::StepInfo info;
    for (std::uint64_t step = 0; step < max_steps; ++step) {
      const auto inst = isa::decode(memory_.read<std::uint32_t>(hart_.pc()));
      info.clear();
      hart_.execute(inst, info);
      if (info.exited) return info.exit_code;
    }
    ADD_FAILURE() << "program did not exit within " << max_steps << " steps";
    return -1;
  }

  /// Executes exactly one instruction; returns the StepInfo.
  iss::StepInfo step_one() {
    const auto inst = isa::decode(memory_.read<std::uint32_t>(hart_.pc()));
    iss::StepInfo info;
    hart_.execute(inst, info);
    return info;
  }

 private:
  iss::SparseMemory memory_;
  iss::Hart hart_;
};

/// Emits the standard exit-syscall epilogue.
inline void emit_exit(isa::Assembler& as, std::int64_t code = 0) {
  as.li(isa::Xreg::a7, 93);
  as.li(isa::Xreg::a0, code);
  as.ecall();
}

}  // namespace coyote::test
