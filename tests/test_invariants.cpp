// Cross-cutting simulator invariants: observation must not perturb timing,
// host-side optimizations must not change simulated results, and statistics
// must balance across the hierarchy.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/simulator.h"
#include "isa/assembler.h"
#include "kernels/kernels.h"

namespace coyote::core {
namespace {

SimConfig base_config(std::uint32_t cores = 8) {
  SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 4;
  config.num_mcs = 2;
  return config;
}

struct RunOutput {
  Cycle cycles;
  std::uint64_t instructions;
  std::vector<double> result;
};

RunOutput run_matmul(const SimConfig& config) {
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(24, 77);
  workload.install(sim.memory());
  const auto program =
      kernels::build_matmul_scalar(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(500'000'000);
  EXPECT_TRUE(result.all_exited);
  return RunOutput{result.cycles, result.instructions,
                   workload.result(sim.memory())};
}

TEST(Invariants, TracingDoesNotPerturbTiming) {
  SimConfig plain = base_config();
  SimConfig traced = base_config();
  traced.enable_trace = true;
  traced.trace_basename = "/tmp/coyote_invariant_trace";
  const auto without = run_matmul(plain);
  const auto with = run_matmul(traced);
  EXPECT_EQ(without.cycles, with.cycles);
  EXPECT_EQ(without.instructions, with.instructions);
  EXPECT_EQ(without.result, with.result);
  for (const char* ext : {".prv", ".pcf", ".row"}) {
    std::remove((std::string("/tmp/coyote_invariant_trace") + ext).c_str());
  }
}

TEST(Invariants, FastForwardIsTimingNeutral) {
  SimConfig slow = base_config();
  slow.mc.latency = 400;  // long idle stretches to skip
  SimConfig fast = slow;
  fast.fast_forward_idle = true;
  const auto stepped = run_matmul(slow);
  const auto jumped = run_matmul(fast);
  EXPECT_EQ(stepped.cycles, jumped.cycles);
  EXPECT_EQ(stepped.instructions, jumped.instructions);
  EXPECT_EQ(stepped.result, jumped.result);
}

TEST(Invariants, L1MissesEqualL2DemandAccesses) {
  // Every L1 miss request (minus writebacks) must appear as exactly one L2
  // access (merged or not); nothing is lost or duplicated in the NoC.
  SimConfig config = base_config();
  Simulator sim(config);
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(512, 2048, 8, 3), 4);
  workload.install(sim.memory());
  const auto program = kernels::build_spmv_scalar(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);

  std::uint64_t l1_misses = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    const auto& counters = sim.core(core).counters();
    l1_misses += counters.l1d_misses + counters.l1i_misses;
  }
  std::uint64_t l2_accesses = 0;
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    l2_accesses += sim.l2_bank(bank).stats().find_counter("accesses").get();
  }
  // CoreModel merges same-line misses into one request, so L2 accesses is
  // bounded by L1 misses and must be nonzero.
  EXPECT_LE(l2_accesses, l1_misses);
  EXPECT_GT(l2_accesses, 0u);
}

TEST(Invariants, FillsMatchRequests) {
  // Every non-writeback request eventually produces exactly one fill.
  SimConfig config = base_config();
  Simulator sim(config);
  const auto workload = kernels::MatmulWorkload::generate(24, 5);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 8);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto& stats = sim.orchestrator().stats();
  const auto requests = stats.find_counter("l1_miss_requests").get();
  const auto fills = stats.find_counter("fills").get();
  std::uint64_t writebacks = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    writebacks += sim.core(core).counters().writebacks;
  }
  EXPECT_EQ(fills + writebacks, requests);
  // No MSHR may remain allocated after a clean exit.
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    EXPECT_EQ(sim.core(core).outstanding_misses(), 0u);
  }
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    EXPECT_EQ(sim.l2_bank(bank).mshrs_in_use(), 0u);
    EXPECT_EQ(sim.l2_bank(bank).queued_requests(), 0u);
  }
}

TEST(Invariants, CycleCsrTracksOrchestratorTime) {
  // A program that reads the cycle CSR twice must observe progress
  // consistent with simulated time.
  SimConfig config = base_config(1);
  Simulator sim(config);
  isa::Assembler as(0x1000);
  as.csrr(isa::a1, 0xC00);
  for (int i = 0; i < 50; ++i) as.nop();
  as.csrr(isa::a2, 0xC00);
  as.sub(isa::a0, isa::a2, isa::a1);
  as.li(isa::a7, 93);
  as.ecall();
  sim.load_program(0x1000, as.finish(), 0x1000);
  const auto result = sim.run(1'000'000);
  ASSERT_TRUE(result.all_exited);
  // 51 instructions retire between the two reads; with ifetch stalls the
  // distance must be at least that.
  EXPECT_GE(result.exit_codes[0], 51);
  EXPECT_LE(result.exit_codes[0], static_cast<std::int64_t>(result.cycles));
}

TEST(Invariants, ReplacementPolicyChangesTimingNotResults) {
  SimConfig lru = base_config();
  lru.core.l1d_size_bytes = 2 * 1024;
  lru.core.l1d_ways = 4;
  SimConfig random_policy = lru;
  random_policy.core.l1_replacement = memhier::Replacement::kRandom;
  random_policy.l2_bank.replacement = memhier::Replacement::kRandom;
  const auto lru_run = run_matmul(lru);
  const auto random_run = run_matmul(random_policy);
  EXPECT_EQ(lru_run.result, random_run.result);      // functional identity
  EXPECT_EQ(lru_run.instructions, random_run.instructions);
  EXPECT_NE(lru_run.cycles, random_run.cycles);      // timing differs
}

TEST(Invariants, VlenChangesTimingNotVectorResults) {
  const auto run_with_vlen = [](unsigned vlen) {
    SimConfig config = base_config(4);
    config.core.vector.vlen_bits = vlen;
    Simulator sim(config);
    const auto workload = kernels::MatmulWorkload::generate(20, 6);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_vector(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(500'000'000);
    EXPECT_TRUE(result.all_exited);
    return std::make_pair(result.instructions,
                          workload.result(sim.memory()));
  };
  const auto narrow = run_with_vlen(128);
  const auto wide = run_with_vlen(2048);
  EXPECT_EQ(narrow.second, wide.second);     // same numerics
  EXPECT_GT(narrow.first, wide.first);       // more instructions at VLEN=128
}

}  // namespace
}  // namespace coyote::core
