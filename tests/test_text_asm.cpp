// Text-assembler tests: parsing, label fixups, directives, error paths, and
// end-to-end execution of assembled source on the hart and the full
// simulator.
#include "isa/text_asm.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "isa/decoder.h"
#include "testutil.h"

namespace coyote::isa {
namespace {

TEST(TextAsm, BasicInstructions) {
  const auto assembled = assemble_text(R"(
    addi a0, a1, 42
    add  t0, t1, t2
    sub  s0, s1, s2
  )");
  ASSERT_EQ(assembled.words.size(), 3u);
  const auto addi_inst = decode(assembled.words[0]);
  EXPECT_EQ(addi_inst.op, Op::kAddi);
  EXPECT_EQ(addi_inst.rd, a0);
  EXPECT_EQ(addi_inst.rs1, a1);
  EXPECT_EQ(addi_inst.imm, 42);
  EXPECT_EQ(decode(assembled.words[1]).op, Op::kAdd);
  EXPECT_EQ(decode(assembled.words[2]).op, Op::kSub);
}

TEST(TextAsm, NumericAndAbiRegisterNames) {
  const auto assembled = assemble_text("add x10, x11, x12");
  const auto inst = decode(assembled.words.at(0));
  EXPECT_EQ(inst.rd, a0);
  EXPECT_EQ(inst.rs1, a1);
  EXPECT_EQ(inst.rs2, a2);
}

TEST(TextAsm, MemoryOperands) {
  const auto assembled = assemble_text(R"(
    ld   a1, 8(sp)
    sd   a1, -16(s0)
    fld  fa0, 0(a0)
  )");
  const auto load = decode(assembled.words[0]);
  EXPECT_EQ(load.op, Op::kLd);
  EXPECT_EQ(load.imm, 8);
  EXPECT_EQ(load.rs1, sp);
  const auto store = decode(assembled.words[1]);
  EXPECT_EQ(store.op, Op::kSd);
  EXPECT_EQ(store.imm, -16);
  EXPECT_EQ(decode(assembled.words[2]).op, Op::kFld);
}

TEST(TextAsm, LabelsForwardAndBackward) {
  const auto assembled = assemble_text(R"(
    top:
      addi a0, a0, 1
      beq  a0, a1, done
      j    top
    done:
      ret
  )");
  EXPECT_EQ(assembled.symbols.at("top"), assembled.base);
  EXPECT_EQ(assembled.symbols.at("done"), assembled.base + 12);
  const auto branch = decode(assembled.words[1]);
  EXPECT_EQ(branch.op, Op::kBeq);
  EXPECT_EQ(branch.imm, 8);  // to done
  const auto jump = decode(assembled.words[2]);
  EXPECT_EQ(jump.op, Op::kJal);
  EXPECT_EQ(jump.imm, -8);  // back to top
}

TEST(TextAsm, CommentsAndBlankLines) {
  const auto assembled = assemble_text(R"(
    # full-line comment
    nop            // trailing comment
    nop            ; another style

  )");
  EXPECT_EQ(assembled.words.size(), 2u);
}

TEST(TextAsm, OrgAndWordDirectives) {
  const auto assembled = assemble_text(R"(
    .org 0x4000
    nop
    .word 0xDEADBEEF
  )");
  EXPECT_EQ(assembled.base, 0x4000u);
  ASSERT_EQ(assembled.words.size(), 2u);
  EXPECT_EQ(assembled.words[1], 0xDEADBEEFu);
}

TEST(TextAsm, PseudoInstructions) {
  const auto assembled = assemble_text(R"(
    li   a0, 0x123456789
    mv   a1, a0
    beqz a1, out
    nop
    out:
    ret
  )");
  EXPECT_GE(assembled.words.size(), 5u);  // li expands to several words
}

TEST(TextAsm, VectorSyntax) {
  const auto assembled = assemble_text(R"(
    vsetvli t0, a0, e64, m4
    vle64.v v8, (a1)
    vfmacc.vf v8, fa0, v16
    vse64.v v8, (a2)
  )");
  EXPECT_EQ(decode(assembled.words[0]).op, Op::kVsetvli);
  EXPECT_EQ(decode(assembled.words[1]).op, Op::kVle64);
  EXPECT_EQ(decode(assembled.words[2]).op, Op::kVfmaccVF);
  EXPECT_EQ(decode(assembled.words[3]).op, Op::kVse64);
}

TEST(TextAsm, AtomicsSyntax) {
  const auto assembled = assemble_text(R"(
    amoadd.d a0, a1, (a2)
    lr.d t0, (a2)
    sc.d t1, t0, (a2)
  )");
  EXPECT_EQ(decode(assembled.words[0]).op, Op::kAmoaddD);
  EXPECT_EQ(decode(assembled.words[1]).op, Op::kLrD);
  EXPECT_EQ(decode(assembled.words[2]).op, Op::kScD);
}

TEST(TextAsm, ErrorsCarryLineNumbers) {
  try {
    assemble_text("nop\nbogus a0, a1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
  EXPECT_THROW(assemble_text("add a0, a1"), AsmError);        // arity
  EXPECT_THROW(assemble_text("add a0, a1, qq"), AsmError);    // bad reg
  EXPECT_THROW(assemble_text("ld a0, 8"), AsmError);          // bad memref
  EXPECT_THROW(assemble_text("addi a0, a0, zz"), AsmError);   // bad imm
  EXPECT_THROW(assemble_text(".bogus 1"), AsmError);          // directive
  EXPECT_THROW(assemble_text("beq a0, a1, nowhere"), AsmError);  // unbound
  EXPECT_THROW(assemble_text("nop\n.org 0x100"), AsmError);   // late .org
}

TEST(TextAsm, ExecutesOnHart) {
  // Sum 1..10, exit with the result as the code.
  const auto assembled = assemble_text(R"(
    .org 0x1000
      li   a0, 0
      li   t0, 1
      li   t1, 10
    loop:
      add  a0, a0, t0
      addi t0, t0, 1
      ble  t0, t1, loop
      li   a7, 93
      ecall
  )");
  test::HartRunner runner;
  runner.memory().poke_words(assembled.base, assembled.words);
  runner.hart().reset(assembled.base);
  iss::StepInfo info;
  for (int i = 0; i < 1000; ++i) {
    const auto inst =
        decode(runner.memory().read<std::uint32_t>(runner.hart().pc()));
    info.clear();
    runner.hart().execute(inst, info);
    if (info.exited) break;
  }
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.exit_code, 55);
}

TEST(TextAsm, ExecutesOnFullSimulatorMulticore) {
  // Each core writes its hartid to out[hartid] and exits.
  const auto assembled = assemble_text(R"(
    .org 0x1000
      csrr t0, 0xF14
      slli t1, t0, 3
      li   t2, 0x20000
      add  t2, t2, t1
      sd   t0, 0(t2)
      li   a7, 93
      li   a0, 0
      ecall
  )");
  core::SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 4;
  core::Simulator sim(config);
  sim.load_program(assembled.base, assembled.words, assembled.base);
  ASSERT_TRUE(sim.run(1'000'000).all_exited);
  for (std::uint64_t core = 0; core < 4; ++core) {
    EXPECT_EQ(sim.memory().read<std::uint64_t>(0x20000 + 8 * core), core);
  }
}

}  // namespace
}  // namespace coyote::isa
