// MESI coherence validation, in three layers:
//   1. Directory unit tests — the protocol state machine in isolation.
//   2. Litmus tests — two-core hand-assembled programs (message passing,
//      write serialization, invalidation, M->S downgrade with writeback)
//      asserting final memory values AND directory/L1 coherence states.
//   3. Differential tests — every program_menu kernel on one core must be
//      cycle-identical and trace-byte-identical between coherence=none and
//      coherence=mesi (a sole core is always granted Exclusive, so the
//      protocol must add zero latency); multicore runs must agree
//      functionally between the modes.
// Plus the cross-hart LR/SC regression: a remote store must kill a
// reservation in every coherence mode.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "isa/assembler.h"
#include "kernels/kernels.h"
#include "kernels/program_menu.h"
#include "memhier/directory.h"

// --------------------------------------------------- directory protocol --

namespace coyote::memhier {
namespace {

MemRequest coh_request(Addr line, MemOp op, CoreId core) {
  MemRequest request;
  request.line_addr = line;
  request.op = op;
  request.core = core;
  return request;
}

constexpr Addr kLine = 0x4000;

TEST(Directory, SoleReaderIsGrantedExclusive) {
  Directory directory(4);
  std::vector<Directory::Probe> probes;
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetS, 0), probes),
            Directory::Action::kProceed);
  EXPECT_TRUE(probes.empty());
  std::optional<MemRequest> next;
  EXPECT_EQ(directory.complete(coh_request(kLine, MemOp::kGetS, 0), next),
            CohGrant::kExclusive);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(directory.owner_of(kLine), 0u);
  EXPECT_EQ(directory.sharer_mask(kLine), 0u);
  EXPECT_FALSE(directory.has_transaction(kLine));
}

TEST(Directory, SecondReaderDowngradesOwnerThenBothShare) {
  Directory directory(4);
  std::vector<Directory::Probe> probes;
  std::optional<MemRequest> next;
  directory.submit(coh_request(kLine, MemOp::kGetS, 0), probes);
  directory.complete(coh_request(kLine, MemOp::kGetS, 0), next);  // 0: E
  probes.clear();
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetS, 1), probes),
            Directory::Action::kBlocked);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].target, 0u);
  EXPECT_TRUE(probes[0].to_shared);
  const auto ready = directory.ack(kLine);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->core, 1u);
  EXPECT_EQ(directory.complete(*ready, next), CohGrant::kShared);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(directory.owner_of(kLine), kInvalidCore);
  EXPECT_EQ(directory.sharer_mask(kLine), 0b11u);
}

TEST(Directory, WriterInvalidatesEverySharer) {
  Directory directory(4);
  std::vector<Directory::Probe> probes;
  std::optional<MemRequest> next;
  // Build up sharers {0, 1} through two serialized GetS transactions.
  directory.submit(coh_request(kLine, MemOp::kGetS, 0), probes);
  directory.complete(coh_request(kLine, MemOp::kGetS, 0), next);
  probes.clear();
  directory.submit(coh_request(kLine, MemOp::kGetS, 1), probes);
  directory.ack(kLine);
  directory.complete(coh_request(kLine, MemOp::kGetS, 1), next);
  // Core 2 writes: both sharers must receive kInv.
  probes.clear();
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetM, 2), probes),
            Directory::Action::kBlocked);
  ASSERT_EQ(probes.size(), 2u);
  for (const auto& probe : probes) EXPECT_FALSE(probe.to_shared);
  EXPECT_FALSE(directory.ack(kLine).has_value());  // one ack pending
  const auto ready = directory.ack(kLine);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(directory.complete(*ready, next), CohGrant::kModified);
  EXPECT_EQ(directory.owner_of(kLine), 2u);
  EXPECT_EQ(directory.sharer_mask(kLine), 0u);
}

TEST(Directory, UpgradeProbesOnlyTheOtherSharers) {
  Directory directory(4);
  std::vector<Directory::Probe> probes;
  std::optional<MemRequest> next;
  directory.submit(coh_request(kLine, MemOp::kGetS, 0), probes);
  directory.complete(coh_request(kLine, MemOp::kGetS, 0), next);
  probes.clear();
  directory.submit(coh_request(kLine, MemOp::kGetS, 1), probes);
  directory.ack(kLine);
  directory.complete(coh_request(kLine, MemOp::kGetS, 1), next);
  // Core 0 upgrades S->M: only core 1 is probed, and core 0 stays a
  // destination of the grant.
  probes.clear();
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetM, 0), probes),
            Directory::Action::kBlocked);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].target, 1u);
  const auto ready = directory.ack(kLine);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(directory.complete(*ready, next), CohGrant::kModified);
  EXPECT_EQ(directory.owner_of(kLine), 0u);
}

TEST(Directory, SameLineTransactionsSerializeInArrivalOrder) {
  Directory directory(4);
  std::vector<Directory::Probe> probes;
  std::optional<MemRequest> next;
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetS, 0), probes),
            Directory::Action::kProceed);
  // A second request on the same line queues without emitting probes.
  probes.clear();
  EXPECT_EQ(directory.submit(coh_request(kLine, MemOp::kGetM, 1), probes),
            Directory::Action::kBlocked);
  EXPECT_TRUE(probes.empty());
  EXPECT_TRUE(directory.has_transaction(kLine));
  // Completing the first pops the queued GetM for re-activation.
  EXPECT_EQ(directory.complete(coh_request(kLine, MemOp::kGetS, 0), next),
            CohGrant::kExclusive);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->op, MemOp::kGetM);
  EXPECT_EQ(next->core, 1u);
  probes.clear();
  EXPECT_EQ(directory.activate(*next, probes), Directory::Action::kBlocked);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].target, 0u);
  EXPECT_FALSE(probes[0].to_shared);
  const auto ready = directory.ack(kLine);
  ASSERT_TRUE(ready.has_value());
  std::optional<MemRequest> after;
  EXPECT_EQ(directory.complete(*ready, after), CohGrant::kModified);
  EXPECT_FALSE(after.has_value());
  EXPECT_EQ(directory.owner_of(kLine), 1u);
  EXPECT_FALSE(directory.has_transaction(kLine));
}

TEST(Directory, DirtyWritebackClearsOwnershipAndEntry) {
  Directory directory(2);
  std::vector<Directory::Probe> probes;
  std::optional<MemRequest> next;
  directory.submit(coh_request(kLine, MemOp::kGetM, 0), probes);
  directory.complete(coh_request(kLine, MemOp::kGetM, 0), next);
  EXPECT_EQ(directory.owner_of(kLine), 0u);
  EXPECT_EQ(directory.tracked_lines(), 1u);
  directory.on_writeback(kLine, 0);
  EXPECT_EQ(directory.owner_of(kLine), kInvalidCore);
  EXPECT_EQ(directory.tracked_lines(), 0u);
}

TEST(Directory, RejectsUnsupportedCoreCounts) {
  EXPECT_THROW(Directory(0), ConfigError);
  EXPECT_THROW(Directory(65), ConfigError);
  EXPECT_NO_THROW(Directory(64));
}

}  // namespace
}  // namespace coyote::memhier

// ----------------------------------------------------------- system level --

namespace coyote::core {
namespace {

using isa::Assembler;
using namespace coyote::isa;

constexpr Addr kTextBase = 0x1000;
constexpr Addr kData = 0x20000;    // one 64B line
constexpr Addr kFlag = 0x20040;    // handshake flag, own line
constexpr Addr kFlag2 = 0x20080;   // second handshake flag, own line
constexpr Addr kResult = 0x200C0;  // result mailbox, own line

SimConfig litmus_config(Coherence coherence) {
  SimConfig config;
  config.num_cores = 2;
  config.cores_per_tile = 1;  // cores on different tiles: probes cross the NoC
  config.coherence = coherence;
  return config;
}

/// Runs `as` on `sim` until both cores exit.
void run_program(Simulator& sim, Assembler& as) {
  const auto& words = as.finish();
  sim.load_program(kTextBase, words, kTextBase);
  const auto result = sim.run(50'000'000);
  ASSERT_TRUE(result.all_exited);
}

void emit_exit(Assembler& as) {
  as.li(a7, 93);
  as.li(a0, 0);
  as.ecall();
}

/// Splits into per-hart code paths on mhartid (two harts).
Assembler::Label emit_hart_split(Assembler& as) {
  as.csrr(t0, 0xF14);
  auto hart1 = as.make_label();
  as.bnez(t0, hart1);
  return hart1;
}

std::uint64_t total_core_probe_hits(Simulator& sim) {
  std::uint64_t total = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    const auto& counters = sim.core(core).counters();
    total += counters.coh_invalidations + counters.coh_downgrades;
  }
  return total;
}

const memhier::Directory* directory_for(Simulator& sim, Addr line) {
  const BankId bank = sim.orchestrator().bank_for(0, line);
  return sim.l2_bank(bank).directory();
}

TEST(CoherenceLitmus, MessagePassing) {
  // Core 0 publishes data then raises a flag; core 1 spins on the flag and
  // reads the data. The consumer must observe 42 and the flag line must
  // have generated at least one probe (whichever core requested it second
  // probes the first requester's copy).
  Simulator sim(litmus_config(Coherence::kMesi));
  Assembler as(kTextBase);
  auto hart1 = emit_hart_split(as);
  // -- core 0 --
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t1, 42);
  as.sd(t1, 0, s1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  as.li(t1, 1);
  as.sd(t1, 0, s2);
  emit_exit(as);
  // -- core 1 --
  as.bind(hart1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  auto spin = as.here();
  as.ld(t2, 0, s2);
  as.beqz(t2, spin);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.ld(t3, 0, s1);
  as.li(s3, static_cast<std::int64_t>(kResult));
  as.sd(t3, 0, s3);
  // Dependent re-read: the bne consumes the loaded value, so the core can
  // only exit after the kResult fill (and everything serialized before it)
  // completed.
  as.li(t5, 42);
  auto verify = as.here();
  as.ld(t4, 0, s3);
  as.bne(t4, t5, verify);
  emit_exit(as);
  run_program(sim, as);
  EXPECT_EQ(sim.memory().read<std::uint64_t>(kResult), 42u);
  EXPECT_GE(total_core_probe_hits(sim), 1u);
}

TEST(CoherenceLitmus, RemoteReadDowngradesModifiedLineWithWriteback) {
  // Core 0 writes kData (M), core 1 reads it: the directory must downgrade
  // core 0 to Shared, carry the dirty data back to the bank, and grant
  // core 1 Shared — leaving both L1s in S and the L2 copy dirty.
  Simulator sim(litmus_config(Coherence::kMesi));
  Assembler as(kTextBase);
  auto hart1 = emit_hart_split(as);
  // -- core 0 --
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t1, 7);
  as.sd(t1, 0, s1);
  as.li(t3, 7);
  auto own = as.here();  // wait for our own upgrade fill (line resident, M)
  as.ld(t2, 0, s1);
  as.bne(t2, t3, own);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  as.li(t1, 1);
  as.sd(t1, 0, s2);
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  auto wait0 = as.here();  // stay alive until core 1 finished its read
  as.ld(t4, 0, s3);
  as.beqz(t4, wait0);
  emit_exit(as);
  // -- core 1 --
  as.bind(hart1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  auto wait1 = as.here();
  as.ld(t2, 0, s2);
  as.beqz(t2, wait1);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t5, 7);
  auto verify = as.here();  // retires only after the kData fill arrived
  as.ld(t3, 0, s1);
  as.bne(t3, t5, verify);
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  as.li(t1, 1);
  as.sd(t1, 0, s3);
  emit_exit(as);
  run_program(sim, as);
  EXPECT_EQ(sim.memory().read<std::uint64_t>(kData), 7u);
  EXPECT_EQ(sim.core(0).l1d_state(kData), memhier::CohState::kShared);
  EXPECT_EQ(sim.core(1).l1d_state(kData), memhier::CohState::kShared);
  const auto* directory = directory_for(sim, kData);
  ASSERT_NE(directory, nullptr);
  EXPECT_EQ(directory->owner_of(kData), kInvalidCore);
  EXPECT_EQ(directory->sharer_mask(kData), 0b11u);
  const BankId bank = sim.orchestrator().bank_for(0, kData);
  EXPECT_TRUE(sim.l2_bank(bank).line_dirty(kData));
  EXPECT_GE(sim.core(0).counters().coh_downgrades, 1u);
}

TEST(CoherenceLitmus, RemoteWriteInvalidatesCachedCopy) {
  // Core 0 reads kData (E), signals, and stays alive; core 1 then writes
  // it. The invalidation probe must remove core 0's copy and leave core 1
  // the sole Modified owner at the directory.
  Simulator sim(litmus_config(Coherence::kMesi));
  sim.memory().write<std::uint64_t>(kData, 5);
  Assembler as(kTextBase);
  auto hart1 = emit_hart_split(as);
  // -- core 0 --
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t3, 5);
  auto own = as.here();
  as.ld(t1, 0, s1);
  as.bne(t1, t3, own);  // fill complete: line resident (E)
  as.li(s2, static_cast<std::int64_t>(kFlag));
  as.li(t4, 1);
  as.sd(t4, 0, s2);
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  auto wait0 = as.here();
  as.ld(t5, 0, s3);
  as.beqz(t5, wait0);
  emit_exit(as);
  // -- core 1 --
  as.bind(hart1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  auto wait1 = as.here();
  as.ld(t5, 0, s2);
  as.beqz(t5, wait1);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t1, 9);
  as.sd(t1, 0, s1);
  as.li(t3, 9);
  auto verify = as.here();
  as.ld(t2, 0, s1);
  as.bne(t2, t3, verify);  // GetM fill complete: core 1 holds M
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  as.li(t4, 1);
  as.sd(t4, 0, s3);
  emit_exit(as);
  run_program(sim, as);
  EXPECT_EQ(sim.memory().read<std::uint64_t>(kData), 9u);
  EXPECT_EQ(sim.core(0).l1d_state(kData), memhier::CohState::kInvalid);
  EXPECT_EQ(sim.core(1).l1d_state(kData), memhier::CohState::kModified);
  const auto* directory = directory_for(sim, kData);
  ASSERT_NE(directory, nullptr);
  EXPECT_EQ(directory->owner_of(kData), 1u);
  EXPECT_GE(sim.core(0).counters().coh_invalidations, 1u);
}

TEST(CoherenceLitmus, WriteSerializationOnOneLine) {
  // Both cores hammer the same line with amoadd; the line ping-pongs
  // M->I->M between the L1s. The sum must be exact and the single-writer
  // invariant must hold at the end.
  constexpr int kAddsPerCore = 200;
  Simulator sim(litmus_config(Coherence::kMesi));
  Assembler as(kTextBase);
  as.csrr(t0, 0xF14);  // both harts run the same loop
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(s2, kAddsPerCore);
  as.li(t1, 1);
  auto loop = as.here();
  as.amoadd_d(t2, t1, s1);
  as.addi(s2, s2, -1);
  as.bnez(s2, loop);
  emit_exit(as);
  run_program(sim, as);
  EXPECT_EQ(sim.memory().read<std::uint64_t>(kData), 2u * kAddsPerCore);
  EXPECT_GE(total_core_probe_hits(sim), 1u);
  // Single-writer invariant on the contested line.
  int exclusive_holders = 0;
  int shared_holders = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    switch (sim.core(core).l1d_state(kData)) {
      case memhier::CohState::kModified:
      case memhier::CohState::kExclusive:
        ++exclusive_holders;
        break;
      case memhier::CohState::kShared:
        ++shared_holders;
        break;
      case memhier::CohState::kInvalid:
        break;
    }
  }
  EXPECT_LE(exclusive_holders, 1);
  if (exclusive_holders == 1) EXPECT_EQ(shared_holders, 0);
}

class StaleScTest : public ::testing::TestWithParam<Coherence> {};

TEST_P(StaleScTest, RemoteStoreKillsReservation) {
  // Core 0 takes a reservation, core 1 overwrites the word, core 0's SC
  // must fail — in every coherence mode, because reservations live in the
  // shared memory and any overlapping store clears them.
  Simulator sim(litmus_config(GetParam()));
  sim.memory().write<std::uint64_t>(kData, 5);
  Assembler as(kTextBase);
  auto hart1 = emit_hart_split(as);
  // -- core 0 --
  as.li(s1, static_cast<std::int64_t>(kData));
  as.lr_d(t1, s1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  as.li(t2, 1);
  as.sd(t2, 0, s2);  // signal: reservation taken
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  auto wait0 = as.here();
  as.ld(t3, 0, s3);
  as.beqz(t3, wait0);  // wait: remote store done
  as.li(t4, 77);
  as.sc_d(t5, t4, s1);  // stale: must fail (t5 != 0)
  as.li(s4, static_cast<std::int64_t>(kResult));
  as.sd(t5, 0, s4);
  emit_exit(as);
  // -- core 1 --
  as.bind(hart1);
  as.li(s2, static_cast<std::int64_t>(kFlag));
  auto wait1 = as.here();
  as.ld(t3, 0, s2);
  as.beqz(t3, wait1);
  as.li(s1, static_cast<std::int64_t>(kData));
  as.li(t1, 9);
  as.sd(t1, 0, s1);  // kills core 0's reservation
  as.li(s3, static_cast<std::int64_t>(kFlag2));
  as.li(t2, 1);
  as.sd(t2, 0, s3);
  emit_exit(as);
  run_program(sim, as);
  EXPECT_NE(sim.memory().read<std::uint64_t>(kResult), 0u)
      << "stale SC succeeded after a remote store";
  EXPECT_EQ(sim.memory().read<std::uint64_t>(kData), 9u)
      << "stale SC overwrote the remote store";
}

INSTANTIATE_TEST_SUITE_P(Modes, StaleScTest,
                         ::testing::Values(Coherence::kNone, Coherence::kMesi),
                         [](const auto& info) {
                           return std::string(coherence_name(info.param));
                         });

// ------------------------------------------------------- differential --

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Small-but-valid problem size per kernel (keeps the 2x14 runs fast).
std::uint64_t small_size(const std::string& name) {
  static const std::map<std::string, std::uint64_t> sizes = {
      {"matmul_scalar", 12}, {"matmul_vector", 12}, {"spmv_scalar", 48},
      {"spmv_row_gather", 48}, {"spmv_ell", 48}, {"spmv_two_phase", 48},
      {"stencil_scalar", 96}, {"stencil_vector", 96}, {"stencil_sync", 96},
      {"stencil2d", 12}, {"histogram", 256}, {"axpy", 256},
      {"dot", 256}, {"fft", 64},
  };
  return sizes.at(name);
}

struct KernelOutcome {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::string prv;
};

KernelOutcome run_named(const std::string& name, Coherence coherence,
                        const std::string& tag) {
  SimConfig config;
  config.num_cores = 1;
  config.coherence = coherence;
  config.enable_trace = true;
  config.trace_basename = ::testing::TempDir() + "coh_" + tag;
  Simulator sim(config);
  const auto program =
      kernels::build_named_kernel(name, 1, small_size(name), 7, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(500'000'000);
  EXPECT_TRUE(result.all_exited) << name;
  return KernelOutcome{result.cycles, result.instructions,
                       slurp(config.trace_basename + ".prv")};
}

TEST(CoherenceDifferential, SingleCoreIsCycleAndTraceIdenticalToNone) {
  // On one core every GetS is granted Exclusive and every upgrade is
  // silent, so MESI must not change a single cycle or trace byte for any
  // kernel in the menu.
  for (const auto& name : kernels::kernel_names()) {
    const auto none = run_named(name, Coherence::kNone, name + "_none");
    const auto mesi = run_named(name, Coherence::kMesi, name + "_mesi");
    EXPECT_EQ(none.cycles, mesi.cycles) << name;
    EXPECT_EQ(none.instructions, mesi.instructions) << name;
    EXPECT_EQ(none.prv, mesi.prv) << name << ": trace differs";
    EXPECT_FALSE(none.prv.empty()) << name;
  }
}

SimConfig multicore_config(Coherence coherence) {
  SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 2;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  config.coherence = coherence;
  return config;
}

std::vector<double> run_matmul_result(Coherence coherence) {
  Simulator sim(multicore_config(coherence));
  const auto workload = kernels::MatmulWorkload::generate(20, 11);
  workload.install(sim.memory());
  const auto program = kernels::build_matmul_scalar(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  EXPECT_TRUE(sim.run(200'000'000).all_exited);
  return workload.result(sim.memory());
}

TEST(CoherenceDifferential, MultiCoreFunctionalResultsMatchNone) {
  // Timing differs with coherence on, but functional outputs must not:
  // matmul partitions are disjoint (bitwise equality) and histogram's
  // atomic adds commute (exact equality).
  EXPECT_EQ(run_matmul_result(Coherence::kNone),
            run_matmul_result(Coherence::kMesi));
  const auto run_histogram = [](Coherence coherence) {
    Simulator sim(multicore_config(coherence));
    const auto workload =
        kernels::HistogramWorkload::generate(2048, 64, 0.5, 9);
    workload.install(sim.memory());
    const auto program = kernels::build_histogram_atomic(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    EXPECT_TRUE(sim.run(500'000'000).all_exited);
    return workload.result(sim.memory());
  };
  const auto none = run_histogram(Coherence::kNone);
  EXPECT_EQ(none, run_histogram(Coherence::kMesi));
  EXPECT_EQ(none, kernels::HistogramWorkload::generate(2048, 64, 0.5, 9)
                      .reference());
}

TEST(CoherenceDifferential, MultiIterationStencilRunsUnderMesi) {
  // The acceptance shape for the lifted stencil restriction: 4 cores,
  // several sweeps, coherence on — halo exchange through the barrier must
  // produce the reference values.
  Simulator sim(multicore_config(Coherence::kMesi));
  const auto workload = kernels::StencilWorkload::generate(257, 5, 13);
  workload.install(sim.memory());
  const auto program = kernels::build_stencil_vector(workload, 4);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-12) << "i=" << i;
  }
  EXPECT_GE(total_core_probe_hits(sim), 1u);
}

}  // namespace
}  // namespace coyote::core
