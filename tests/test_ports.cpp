#include "simfw/port.h"

#include <gtest/gtest.h>

#include <vector>

namespace coyote::simfw {
namespace {

struct Payload {
  int value;
};

class PortTest : public ::testing::Test {
 protected:
  Scheduler sched_;
  Unit root_{&sched_, "top"};
  Unit sender_{&root_, "sender"};
  Unit receiver_{&root_, "receiver"};
};

TEST_F(PortTest, DeliversAfterDelay) {
  DataOutPort<Payload> out(&sender_, "out");
  DataInPort<Payload> in(&receiver_, "in");
  out.bind(in);
  std::vector<std::pair<Cycle, int>> received;
  in.register_handler([&](const Payload& payload) {
    received.push_back({sched_.now(), payload.value});
  });

  out.send(Payload{7}, 3);
  out.send(Payload{9}, 1);
  sched_.run_to_completion();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], (std::pair<Cycle, int>{1, 9}));
  EXPECT_EQ(received[1], (std::pair<Cycle, int>{3, 7}));
}

TEST_F(PortTest, ZeroDelayDeliversSameCycle) {
  DataOutPort<Payload> out(&sender_, "out");
  DataInPort<Payload> in(&receiver_, "in");
  out.bind(in);
  int got = -1;
  in.register_handler([&](const Payload& payload) { got = payload.value; });
  sched_.advance_to(5);
  out.send(Payload{1}, 0);
  sched_.advance_to(5);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(sched_.now(), 5u);
}

TEST_F(PortTest, BroadcastToMultipleInPorts) {
  DataOutPort<Payload> out(&sender_, "out");
  DataInPort<Payload> in1(&receiver_, "in1");
  DataInPort<Payload> in2(&receiver_, "in2");
  out.bind(in1);
  out.bind(in2);
  int count = 0;
  in1.register_handler([&](const Payload&) { ++count; });
  in2.register_handler([&](const Payload&) { ++count; });
  out.send(Payload{0}, 1);
  sched_.run_to_completion();
  EXPECT_EQ(count, 2);
}

TEST_F(PortTest, ManyToOneFanIn) {
  DataOutPort<Payload> out1(&sender_, "out1");
  DataOutPort<Payload> out2(&sender_, "out2");
  DataInPort<Payload> in(&receiver_, "in");
  out1.bind(in);
  out2.bind(in);
  int sum = 0;
  in.register_handler([&](const Payload& payload) { sum += payload.value; });
  out1.send(Payload{1}, 1);
  out2.send(Payload{2}, 1);
  sched_.run_to_completion();
  EXPECT_EQ(sum, 3);
}

TEST_F(PortTest, SendOnUnboundThrows) {
  DataOutPort<Payload> out(&sender_, "out");
  EXPECT_THROW(out.send(Payload{0}, 1), SimError);
}

TEST_F(PortTest, DeliveryWithoutHandlerThrows) {
  DataInPort<Payload> in(&receiver_, "in");
  EXPECT_THROW(in.deliver(Payload{0}), SimError);
}

TEST_F(PortTest, DoubleHandlerRegistrationThrows) {
  DataInPort<Payload> in(&receiver_, "in");
  in.register_handler([](const Payload&) {});
  EXPECT_THROW(in.register_handler([](const Payload&) {}), ConfigError);
}

TEST_F(PortTest, PortDeliveryPrecedesTickPhase) {
  DataOutPort<Payload> out(&sender_, "out");
  DataInPort<Payload> in(&receiver_, "in");
  out.bind(in);
  std::vector<std::string> order;
  in.register_handler([&](const Payload&) { order.push_back("port"); });
  sched_.schedule(2, SchedPriority::kTick, [&] { order.push_back("tick"); });
  out.send(Payload{0}, 2);
  sched_.run_to_completion();
  EXPECT_EQ(order, (std::vector<std::string>{"port", "tick"}));
}

}  // namespace
}  // namespace coyote::simfw
