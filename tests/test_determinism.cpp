// Determinism regression tests for the batched simulation loop: the calendar
// queue, step_block fast paths and idle event-hop must be bit-identical to
// the paper-literal one-instruction-per-round loop (batched_stepping=false).
// Fingerprints compare full statistics reports (every counter in the unit
// tree) and, for the trace test, the produced .prv byte-for-byte.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "kernels/kernels.h"
#include "kernels/program_menu.h"
#include "sweep/sweep.h"

namespace coyote::core {
namespace {

using kernels::MatmulWorkload;
using kernels::SpmvWorkload;

struct Outcome {
  std::string report;
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::vector<std::int64_t> exit_codes;
  std::uint64_t fast_forwarded = 0;
};

SimConfig base_config(std::uint32_t cores) {
  SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 4;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  return config;
}

Outcome run_matmul(SimConfig config) {
  Simulator sim(config);
  const auto workload = MatmulWorkload::generate(24, 11);
  workload.install(sim.memory());
  const auto program =
      kernels::build_matmul_scalar(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(200'000'000);
  EXPECT_TRUE(result.all_exited);
  Outcome out;
  out.report = sim.report(simfw::ReportFormat::kText);
  out.cycles = result.cycles;
  out.instructions = result.instructions;
  out.exit_codes = result.exit_codes;
  out.fast_forwarded = sim.root()
                           .find("orchestrator")
                           ->stats()
                           .find_counter("fast_forwarded_cycles")
                           .get();
  return out;
}

Outcome run_spmv(SimConfig config) {
  Simulator sim(config);
  const auto workload =
      SpmvWorkload::generate(kernels::CsrMatrix::random(60, 80, 6, 21), 22);
  workload.install(sim.memory());
  const auto program = kernels::build_spmv_scalar(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(200'000'000);
  EXPECT_TRUE(result.all_exited);
  Outcome out;
  out.report = sim.report(simfw::ReportFormat::kText);
  out.cycles = result.cycles;
  out.instructions = result.instructions;
  out.exit_codes = result.exit_codes;
  return out;
}

void expect_identical(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.exit_codes, b.exit_codes);
  // The text report renders every counter of every unit (core L1 misses and
  // stalls, L2/LLC/MC/NoC traffic, orchestrator totals) — one comparison
  // covers the whole machine state.
  EXPECT_EQ(a.report, b.report);
}

TEST(Determinism, RepeatedRunsAreIdentical) {
  expect_identical(run_matmul(base_config(4)), run_matmul(base_config(4)));
  expect_identical(run_spmv(base_config(2)), run_spmv(base_config(2)));
}

TEST(Determinism, BatchedMatchesLiteralLoopSingleCore) {
  // One core: exercises the single-active-core block fast path end to end.
  SimConfig batched = base_config(1);
  SimConfig literal = base_config(1);
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
  expect_identical(run_spmv(batched), run_spmv(literal));
}

TEST(Determinism, BatchedMatchesLiteralLoopMultiCore) {
  SimConfig batched = base_config(4);
  SimConfig literal = base_config(4);
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
  expect_identical(run_spmv(batched), run_spmv(literal));
}

TEST(Determinism, BatchedMatchesLiteralLoopWithQuantum) {
  // interleave_quantum > 1 takes the same-cycle step_block path.
  SimConfig batched = base_config(2);
  batched.interleave_quantum = 10;
  SimConfig literal = batched;
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
}

TEST(Determinism, FastForwardIdleOnlyAffectsItsOwnCounter) {
  SimConfig plain = base_config(1);
  SimConfig ff = base_config(1);
  ff.fast_forward_idle = true;
  const Outcome a = run_matmul(plain);
  const Outcome b = run_matmul(ff);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.exit_codes, b.exit_codes);
  EXPECT_EQ(a.fast_forwarded, 0u);
  EXPECT_GT(b.fast_forwarded, 0u);
}

TEST(Determinism, FastForwardIdleMatchesLiteralLoop) {
  SimConfig batched = base_config(2);
  batched.fast_forward_idle = true;
  SimConfig literal = batched;
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Determinism, TraceIsByteIdenticalAcrossPaths) {
  const std::string dir = ::testing::TempDir();
  const auto run_traced = [&](bool batched, const std::string& basename) {
    SimConfig config = base_config(2);
    config.batched_stepping = batched;
    config.enable_trace = true;
    config.trace_basename = dir + basename;
    Simulator sim(config);
    const auto workload = MatmulWorkload::generate(16, 7);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 2);
    sim.load_program(program.base, program.words, program.entry);
    EXPECT_TRUE(sim.run(200'000'000).all_exited);
  };
  run_traced(true, "det_fast");
  run_traced(false, "det_slow");
  EXPECT_EQ(slurp(dir + "det_fast.prv"), slurp(dir + "det_slow.prv"));
  EXPECT_NE(slurp(dir + "det_fast.prv").find("2:"), std::string::npos);
}

// ------------------------------------------------------- MESI coherence --
// The probe/ack machinery adds new scheduler events and port traffic; all
// of it must stay on the deterministic (cycle, priority, sequence) order so
// the batched fast paths and parallel sweeps remain bit-identical.

SimConfig mesi_config(std::uint32_t cores) {
  SimConfig config = base_config(cores);
  config.coherence = Coherence::kMesi;
  return config;
}

TEST(Determinism, MesiRepeatedRunsAreIdentical) {
  expect_identical(run_matmul(mesi_config(4)), run_matmul(mesi_config(4)));
  expect_identical(run_spmv(mesi_config(2)), run_spmv(mesi_config(2)));
}

TEST(Determinism, MesiBatchedMatchesLiteralLoop) {
  SimConfig batched = mesi_config(4);
  SimConfig literal = mesi_config(4);
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
  expect_identical(run_spmv(batched), run_spmv(literal));
}

TEST(Determinism, MesiBatchedMatchesLiteralLoopWithQuantum) {
  SimConfig batched = mesi_config(2);
  batched.interleave_quantum = 10;
  SimConfig literal = batched;
  literal.batched_stepping = false;
  expect_identical(run_matmul(batched), run_matmul(literal));
}

TEST(Determinism, MesiTraceIsByteIdenticalAcrossPaths) {
  const std::string dir = ::testing::TempDir();
  const auto run_traced = [&](bool batched, const std::string& basename) {
    SimConfig config = mesi_config(4);
    config.batched_stepping = batched;
    config.enable_trace = true;
    config.trace_basename = dir + basename;
    Simulator sim(config);
    const auto workload = MatmulWorkload::generate(16, 7);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 4);
    sim.load_program(program.base, program.words, program.entry);
    EXPECT_TRUE(sim.run(200'000'000).all_exited);
  };
  run_traced(true, "mesi_fast");
  run_traced(false, "mesi_slow");
  EXPECT_EQ(slurp(dir + "mesi_fast.prv"), slurp(dir + "mesi_slow.prv"));
}

// ---------------------------------------- decoded-block dispatch (dbb) --
// iss.dbb_cache=on (the default) dispatches pre-decoded micro-op blocks;
// off is the reference fetch+decode interpreter. The two must be
// bit-identical in every simulated observable for every kernel, coherence
// protocol and stepping mode — the only permitted report difference is the
// host-side dbb_* counters, which exist only while the cache is on.

std::string strip_dbb_lines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("dbb_") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

// Small problem sizes so the full matrix (every menu kernel × coherence ×
// stepping × dbb, each cell simulated twice) stays fast.
std::uint64_t dbb_test_size(const std::string& kernel) {
  if (kernel.rfind("matmul", 0) == 0) return 16;
  if (kernel.rfind("spmv", 0) == 0) return 48;
  if (kernel == "stencil_sync") return 512;
  if (kernel.rfind("stencil2d", 0) == 0) return 24;
  if (kernel.rfind("stencil", 0) == 0) return 2048;
  if (kernel == "fft") return 128;
  return 1024;  // histogram, axpy, dot
}

Outcome run_named(SimConfig config, const std::string& kernel) {
  Simulator sim(config);
  const auto program = kernels::build_named_kernel(
      kernel, config.num_cores, dbb_test_size(kernel), 9, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(500'000'000);
  EXPECT_TRUE(result.all_exited) << kernel;
  Outcome out;
  out.report = sim.report(simfw::ReportFormat::kText);
  out.cycles = result.cycles;
  out.instructions = result.instructions;
  out.exit_codes = result.exit_codes;
  return out;
}

void expect_identical_modulo_dbb(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.exit_codes, b.exit_codes);
  EXPECT_EQ(strip_dbb_lines(a.report), strip_dbb_lines(b.report));
}

TEST(Determinism, DbbOnMatchesOffEveryKernelEveryMode) {
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    for (const bool mesi : {false, true}) {
      for (const bool batched : {true, false}) {
        SCOPED_TRACE(info.name + std::string(mesi ? " mesi" : " none") +
                     (batched ? " batched" : " literal"));
        SimConfig on = base_config(2);
        on.batched_stepping = batched;
        if (mesi) on.coherence = Coherence::kMesi;
        SimConfig off = on;
        off.core.dbb_cache = false;
        expect_identical_modulo_dbb(run_named(on, info.name),
                                    run_named(off, info.name));
      }
    }
  }
}

TEST(Determinism, DbbTraceIsByteIdenticalOnOrOff) {
  const std::string dir = ::testing::TempDir();
  const auto run_traced = [&](bool dbb, const std::string& basename) {
    SimConfig config = base_config(2);
    config.core.dbb_cache = dbb;
    config.enable_trace = true;
    config.trace_basename = dir + basename;
    Simulator sim(config);
    const auto workload = MatmulWorkload::generate(16, 7);
    workload.install(sim.memory());
    const auto program = kernels::build_matmul_scalar(workload, 2);
    sim.load_program(program.base, program.words, program.entry);
    EXPECT_TRUE(sim.run(200'000'000).all_exited);
  };
  run_traced(true, "dbb_on");
  run_traced(false, "dbb_off");
  EXPECT_EQ(slurp(dir + "dbb_on.prv"), slurp(dir + "dbb_off.prv"));
}

TEST(Determinism, MesiSweepIsIdenticalAcrossJobCounts) {
  // A small mesi sweep grid must produce byte-identical results tables
  // whether the points run serially or on four workers.
  const auto report_json = [](unsigned jobs) {
    sweep::SweepSpec spec;
    spec.kernel = "matmul_scalar";
    spec.size = 12;
    spec.seed = 5;
    spec.base.set("topo.cores", "4");
    spec.base.set("l2.coherence", "mesi");
    spec.axes.push_back({"l2.size_kb", {"128", "256"}});
    spec.axes.push_back({"topo.cores_per_tile", {"2", "4"}});
    sweep::SweepEngine::Options options;
    options.jobs = jobs;
    const auto report = sweep::SweepEngine(options).run(spec);
    EXPECT_EQ(report.num_ok(), report.points.size());
    return report.to_json(/*include_host_timing=*/false);
  };
  EXPECT_EQ(report_json(1), report_json(4));
}

}  // namespace
}  // namespace coyote::core
