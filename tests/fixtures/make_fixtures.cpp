// Regenerates the committed RV64 ELF fixtures in tests/fixtures/ from
// their .S sources using the in-repo text assembler and ELF writer — no
// cross-toolchain required. The output is deterministic (fixed section
// layout, symbols emitted in map order), so re-running this tool on an
// unchanged source tree reproduces the committed binaries byte for byte.
//
//   build/tests/coyote_make_fixtures        # rewrite tests/fixtures/*.elf
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "isa/text_asm.h"
#include "loader/elf_writer.h"

namespace {

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw coyote::SimError("cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void make_fixture(const std::string& stem) {
  const std::string dir = COYOTE_FIXTURE_DIR;
  const coyote::isa::AssembledText assembled =
      coyote::isa::assemble_text(read_text(dir + "/" + stem + ".S"));
  const auto entry = assembled.symbols.find("_start");
  if (entry == assembled.symbols.end()) {
    throw coyote::SimError(stem + ".S: no _start label");
  }

  coyote::loader::ElfWriterSegment segment;
  segment.vaddr = assembled.base;
  segment.bytes.reserve(assembled.words.size() * 4);
  for (const std::uint32_t word : assembled.words) {
    segment.bytes.push_back(static_cast<std::uint8_t>(word));
    segment.bytes.push_back(static_cast<std::uint8_t>(word >> 8));
    segment.bytes.push_back(static_cast<std::uint8_t>(word >> 16));
    segment.bytes.push_back(static_cast<std::uint8_t>(word >> 24));
  }

  coyote::loader::ElfWriterSpec spec;
  spec.entry = entry->second;
  spec.segments.push_back(std::move(segment));
  spec.symbols = assembled.symbols;
  const std::vector<std::uint8_t> elf = coyote::loader::write_elf64(spec);

  const std::string out_path = dir + "/" + stem + ".elf";
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    throw coyote::SimError("cannot write '" + out_path + "'");
  }
  out.write(reinterpret_cast<const char*>(elf.data()),
            static_cast<std::streamsize>(elf.size()));
  std::printf("wrote %s (%zu bytes, entry 0x%llx)\n", out_path.c_str(),
              elf.size(), static_cast<unsigned long long>(entry->second));
}

}  // namespace

int main() {
  try {
    make_fixture("hello");
    make_fixture("syscalls");
    make_fixture("tohost42");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "make_fixtures: %s\n", error.what());
    return 1;
  }
}
