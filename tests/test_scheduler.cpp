#include "simfw/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"

namespace coyote::simfw {
namespace {

TEST(Scheduler, StartsAtCycleZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0u);
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(5, SchedPriority::kTick, [&] { order.push_back(5); });
  sched.schedule(1, SchedPriority::kTick, [&] { order.push_back(1); });
  sched.schedule(3, SchedPriority::kTick, [&] { order.push_back(3); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(sched.now(), 5u);
}

TEST(Scheduler, SameCycleOrderedByPriorityThenInsertion) {
  Scheduler sched;
  std::vector<std::string> order;
  sched.schedule(2, SchedPriority::kCollection,
                 [&] { order.push_back("collect"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port1"); });
  sched.schedule(2, SchedPriority::kUpdate, [&] { order.push_back("update"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port2"); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<std::string>{"port1", "port2", "update",
                                             "collect"}));
}

TEST(Scheduler, AdvanceToFiresOnlyDueEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(3, SchedPriority::kTick, [&] { ++fired; });
  sched.schedule(10, SchedPriority::kTick, [&] { ++fired; });
  sched.advance_to(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 5u);
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 10u);
}

TEST(Scheduler, TickAdvancesOneCycle) {
  Scheduler sched;
  sched.tick();
  sched.tick();
  EXPECT_EQ(sched.now(), 2u);
}

TEST(Scheduler, CallbackCanScheduleMore) {
  Scheduler sched;
  std::vector<Cycle> fire_times;
  sched.schedule(1, SchedPriority::kTick, [&] {
    fire_times.push_back(sched.now());
    sched.schedule(2, SchedPriority::kTick,
                   [&] { fire_times.push_back(sched.now()); });
  });
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{1, 3}));
}

TEST(Scheduler, ZeroDelayWithinSameAdvance) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(4, SchedPriority::kTick, [&] {
    sched.schedule(0, SchedPriority::kCollection, [&] { ++fired; });
  });
  sched.advance_to(4);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler sched;
  sched.advance_to(10);
  EXPECT_THROW(sched.schedule_at(5, SchedPriority::kTick, [] {}),
               SimError);
}

TEST(Scheduler, RunToCompletionRespectsLimit) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(100, SchedPriority::kTick, [&] { ++fired; });
  EXPECT_EQ(sched.run_to_completion(50), 50u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.run_to_completion(), 100u);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CountsFiredEvents) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) {
    sched.schedule(i, SchedPriority::kTick, [] {});
  }
  sched.run_to_completion();
  EXPECT_EQ(sched.events_fired(), 7u);
}

// Determinism property: two identical schedules produce identical firing
// orders even with many same-cycle events.
TEST(Scheduler, DeterministicOrder) {
  const auto run_once = [] {
    Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sched.schedule(i % 5, static_cast<SchedPriority>(i % 3),
                     [&order, i] { order.push_back(i); });
    }
    sched.run_to_completion();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace coyote::simfw
