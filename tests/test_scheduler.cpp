#include "simfw/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"

namespace coyote::simfw {
namespace {

TEST(Scheduler, StartsAtCycleZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0u);
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(5, SchedPriority::kTick, [&] { order.push_back(5); });
  sched.schedule(1, SchedPriority::kTick, [&] { order.push_back(1); });
  sched.schedule(3, SchedPriority::kTick, [&] { order.push_back(3); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(sched.now(), 5u);
}

TEST(Scheduler, SameCycleOrderedByPriorityThenInsertion) {
  Scheduler sched;
  std::vector<std::string> order;
  sched.schedule(2, SchedPriority::kCollection,
                 [&] { order.push_back("collect"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port1"); });
  sched.schedule(2, SchedPriority::kUpdate, [&] { order.push_back("update"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port2"); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<std::string>{"port1", "port2", "update",
                                             "collect"}));
}

TEST(Scheduler, AdvanceToFiresOnlyDueEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(3, SchedPriority::kTick, [&] { ++fired; });
  sched.schedule(10, SchedPriority::kTick, [&] { ++fired; });
  sched.advance_to(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 5u);
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 10u);
}

TEST(Scheduler, TickAdvancesOneCycle) {
  Scheduler sched;
  sched.tick();
  sched.tick();
  EXPECT_EQ(sched.now(), 2u);
}

TEST(Scheduler, CallbackCanScheduleMore) {
  Scheduler sched;
  std::vector<Cycle> fire_times;
  sched.schedule(1, SchedPriority::kTick, [&] {
    fire_times.push_back(sched.now());
    sched.schedule(2, SchedPriority::kTick,
                   [&] { fire_times.push_back(sched.now()); });
  });
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{1, 3}));
}

TEST(Scheduler, ZeroDelayWithinSameAdvance) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(4, SchedPriority::kTick, [&] {
    sched.schedule(0, SchedPriority::kCollection, [&] { ++fired; });
  });
  sched.advance_to(4);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler sched;
  sched.advance_to(10);
  EXPECT_THROW(sched.schedule_at(5, SchedPriority::kTick, [] {}),
               SimError);
}

TEST(Scheduler, RunToCompletionRespectsLimit) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(100, SchedPriority::kTick, [&] { ++fired; });
  EXPECT_EQ(sched.run_to_completion(50), 50u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.run_to_completion(), 100u);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CountsFiredEvents) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) {
    sched.schedule(i, SchedPriority::kTick, [] {});
  }
  sched.run_to_completion();
  EXPECT_EQ(sched.events_fired(), 7u);
}

// ----- calendar-queue specifics -----
// The scheduler keeps near-future events in a 512-cycle bucket ring and
// parks later ones in an overflow heap; these tests exercise the seams.

TEST(Scheduler, FarFutureEventsCrossTheRingHorizon) {
  Scheduler sched;
  std::vector<Cycle> fire_times;
  const auto note = [&] { fire_times.push_back(sched.now()); };
  // Straddle the 512-cycle ring: in-ring, just inside, just outside, far out.
  for (Cycle delay : {1000000u, 513u, 512u, 511u, 3u}) {
    sched.schedule(delay, SchedPriority::kTick, note);
  }
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{3, 511, 512, 513, 1000000}));
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, HorizonCrossingPreservesSameCycleOrder) {
  // Events for one cycle scheduled from both sides of the horizon: the
  // overflow migrants must still interleave with direct ring insertions in
  // global (priority, insertion) order.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(600, SchedPriority::kTick, [&] { order.push_back(0); });
  sched.schedule(600, SchedPriority::kPortDelivery,
                 [&] { order.push_back(1); });
  sched.advance_to(200);  // 600 is now inside the ring
  sched.schedule_at(600, SchedPriority::kTick, [&] { order.push_back(2); });
  sched.schedule_at(600, SchedPriority::kPortDelivery,
                    [&] { order.push_back(3); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
}

TEST(Scheduler, LargeCallbacksRunAndAreDestroyed) {
  // Callables above the node's inline small-buffer take a heap cell; both
  // paths must run the callback and destroy the captured state exactly once.
  auto counted = std::make_shared<int>(0);
  {
    Scheduler sched;
    struct Big {
      std::shared_ptr<int> hits;
      char padding[96];
      void operator()() const { ++*hits; }
    };
    sched.schedule(2, SchedPriority::kTick, Big{counted, {}});
    sched.schedule(700, SchedPriority::kTick, Big{counted, {}});
    sched.run_to_completion();
    EXPECT_EQ(*counted, 2);
  }
  EXPECT_EQ(counted.use_count(), 1);
}

TEST(Scheduler, DestroysUnfiredCallbacksOnDestruction) {
  // Pending events in the ring and in the overflow heap still own their
  // captured state when the scheduler dies.
  auto alive = std::make_shared<int>(7);
  {
    Scheduler sched;
    sched.schedule(10, SchedPriority::kTick, [keep = alive] { (void)keep; });
    sched.schedule(10000, SchedPriority::kUpdate,
                   [keep = alive] { (void)keep; });
    EXPECT_EQ(alive.use_count(), 3);
  }
  EXPECT_EQ(alive.use_count(), 1);
}

TEST(Scheduler, ManySameCycleEventsKeepInsertionOrder) {
  // Well past the pool's chunk size, all on one cycle and one priority.
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule(4, SchedPriority::kTick, [&order, i] { order.push_back(i); });
  }
  sched.run_to_completion();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NextEventCycleSeesZeroDelayEvent) {
  Scheduler sched;
  sched.advance_to(9);
  sched.schedule(0, SchedPriority::kTick, [] {});
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 9u);
  // advance_to(now) must fire the leftover current-cycle event.
  sched.advance_to(9);
  EXPECT_FALSE(sched.has_pending());
  EXPECT_EQ(sched.now(), 9u);
}

TEST(Scheduler, PoolReuseAcrossManyScheduleFireRounds) {
  // Steady-state churn: nodes recycle through the free list and sequence
  // numbers keep the order stable round after round.
  Scheduler sched;
  std::uint64_t fired = 0;
  for (int round = 0; round < 2000; ++round) {
    sched.schedule(1, SchedPriority::kPortDelivery, [&] { ++fired; });
    sched.schedule(1, SchedPriority::kTick, [&] { ++fired; });
    sched.tick();
  }
  EXPECT_EQ(fired, 4000u);
  EXPECT_FALSE(sched.has_pending());
}

// Determinism property: two identical schedules produce identical firing
// orders even with many same-cycle events.
TEST(Scheduler, DeterministicOrder) {
  const auto run_once = [] {
    Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sched.schedule(i % 5, static_cast<SchedPriority>(i % 3),
                     [&order, i] { order.push_back(i); });
    }
    sched.run_to_completion();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace coyote::simfw
