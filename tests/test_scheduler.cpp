#include "simfw/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"

namespace coyote::simfw {
namespace {

TEST(Scheduler, StartsAtCycleZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0u);
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(5, SchedPriority::kTick, [&] { order.push_back(5); });
  sched.schedule(1, SchedPriority::kTick, [&] { order.push_back(1); });
  sched.schedule(3, SchedPriority::kTick, [&] { order.push_back(3); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(sched.now(), 5u);
}

TEST(Scheduler, SameCycleOrderedByPriorityThenInsertion) {
  Scheduler sched;
  std::vector<std::string> order;
  sched.schedule(2, SchedPriority::kCollection,
                 [&] { order.push_back("collect"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port1"); });
  sched.schedule(2, SchedPriority::kUpdate, [&] { order.push_back("update"); });
  sched.schedule(2, SchedPriority::kPortDelivery,
                 [&] { order.push_back("port2"); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<std::string>{"port1", "port2", "update",
                                             "collect"}));
}

TEST(Scheduler, AdvanceToFiresOnlyDueEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(3, SchedPriority::kTick, [&] { ++fired; });
  sched.schedule(10, SchedPriority::kTick, [&] { ++fired; });
  sched.advance_to(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 5u);
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 10u);
}

TEST(Scheduler, TickAdvancesOneCycle) {
  Scheduler sched;
  sched.tick();
  sched.tick();
  EXPECT_EQ(sched.now(), 2u);
}

TEST(Scheduler, CallbackCanScheduleMore) {
  Scheduler sched;
  std::vector<Cycle> fire_times;
  sched.schedule(1, SchedPriority::kTick, [&] {
    fire_times.push_back(sched.now());
    sched.schedule(2, SchedPriority::kTick,
                   [&] { fire_times.push_back(sched.now()); });
  });
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{1, 3}));
}

TEST(Scheduler, ZeroDelayWithinSameAdvance) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(4, SchedPriority::kTick, [&] {
    sched.schedule(0, SchedPriority::kCollection, [&] { ++fired; });
  });
  sched.advance_to(4);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler sched;
  sched.advance_to(10);
  EXPECT_THROW(sched.schedule_at(5, SchedPriority::kTick, [] {}),
               SimError);
}

TEST(Scheduler, RunToCompletionRespectsLimit) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(100, SchedPriority::kTick, [&] { ++fired; });
  EXPECT_EQ(sched.run_to_completion(50), 50u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.run_to_completion(), 100u);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CountsFiredEvents) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) {
    sched.schedule(i, SchedPriority::kTick, [] {});
  }
  sched.run_to_completion();
  EXPECT_EQ(sched.events_fired(), 7u);
}

// ----- calendar-queue specifics -----
// The scheduler keeps near-future events in a 512-cycle bucket ring and
// parks later ones in an overflow heap; these tests exercise the seams.

TEST(Scheduler, FarFutureEventsCrossTheRingHorizon) {
  Scheduler sched;
  std::vector<Cycle> fire_times;
  const auto note = [&] { fire_times.push_back(sched.now()); };
  // Straddle the 512-cycle ring: in-ring, just inside, just outside, far out.
  for (Cycle delay : {1000000u, 513u, 512u, 511u, 3u}) {
    sched.schedule(delay, SchedPriority::kTick, note);
  }
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{3, 511, 512, 513, 1000000}));
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, HorizonCrossingPreservesSameCycleOrder) {
  // Events for one cycle scheduled from both sides of the horizon: the
  // overflow migrants must still interleave with direct ring insertions in
  // global (priority, insertion) order.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(600, SchedPriority::kTick, [&] { order.push_back(0); });
  sched.schedule(600, SchedPriority::kPortDelivery,
                 [&] { order.push_back(1); });
  sched.advance_to(200);  // 600 is now inside the ring
  sched.schedule_at(600, SchedPriority::kTick, [&] { order.push_back(2); });
  sched.schedule_at(600, SchedPriority::kPortDelivery,
                    [&] { order.push_back(3); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
}

TEST(Scheduler, LargeCallbacksRunAndAreDestroyed) {
  // Callables above the node's inline small-buffer take a heap cell; both
  // paths must run the callback and destroy the captured state exactly once.
  auto counted = std::make_shared<int>(0);
  {
    Scheduler sched;
    struct Big {
      std::shared_ptr<int> hits;
      char padding[96];
      void operator()() const { ++*hits; }
    };
    sched.schedule(2, SchedPriority::kTick, Big{counted, {}});
    sched.schedule(700, SchedPriority::kTick, Big{counted, {}});
    sched.run_to_completion();
    EXPECT_EQ(*counted, 2);
  }
  EXPECT_EQ(counted.use_count(), 1);
}

TEST(Scheduler, DestroysUnfiredCallbacksOnDestruction) {
  // Pending events in the ring and in the overflow heap still own their
  // captured state when the scheduler dies.
  auto alive = std::make_shared<int>(7);
  {
    Scheduler sched;
    sched.schedule(10, SchedPriority::kTick, [keep = alive] { (void)keep; });
    sched.schedule(10000, SchedPriority::kUpdate,
                   [keep = alive] { (void)keep; });
    EXPECT_EQ(alive.use_count(), 3);
  }
  EXPECT_EQ(alive.use_count(), 1);
}

TEST(Scheduler, ManySameCycleEventsKeepInsertionOrder) {
  // Well past the pool's chunk size, all on one cycle and one priority.
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule(4, SchedPriority::kTick, [&order, i] { order.push_back(i); });
  }
  sched.run_to_completion();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NextEventCycleSeesZeroDelayEvent) {
  Scheduler sched;
  sched.advance_to(9);
  sched.schedule(0, SchedPriority::kTick, [] {});
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 9u);
  // advance_to(now) must fire the leftover current-cycle event.
  sched.advance_to(9);
  EXPECT_FALSE(sched.has_pending());
  EXPECT_EQ(sched.now(), 9u);
}

TEST(Scheduler, PoolReuseAcrossManyScheduleFireRounds) {
  // Steady-state churn: nodes recycle through the free list and sequence
  // numbers keep the order stable round after round.
  Scheduler sched;
  std::uint64_t fired = 0;
  for (int round = 0; round < 2000; ++round) {
    sched.schedule(1, SchedPriority::kPortDelivery, [&] { ++fired; });
    sched.schedule(1, SchedPriority::kTick, [&] { ++fired; });
    sched.tick();
  }
  EXPECT_EQ(fired, 4000u);
  EXPECT_FALSE(sched.has_pending());
}

// ----- bucket-ring wraparound at long horizons -----
// The 512-bucket ring indexes by (cycle mod 512), so cycles C, C+512,
// C+1024, ... all alias to one bucket. Long-horizon runs cross the
// wraparound seam thousands of times; these tests pin down that aliased
// cycles never merge, that migration out of the overflow heap stays correct
// across many wraps, and that a clock restored deep into a run (checkpoint
// restore) picks up ring arithmetic exactly where it left off.

TEST(Scheduler, AliasedCyclesInTheSameBucketStayDistinct) {
  // Three events one full ring apart share a bucket index; each must fire
  // on its own cycle, not when the bucket first drains.
  Scheduler sched;
  std::vector<Cycle> fire_times;
  const auto note = [&] { fire_times.push_back(sched.now()); };
  sched.schedule_at(5, SchedPriority::kTick, note);
  sched.schedule_at(5 + 512, SchedPriority::kTick, note);
  sched.schedule_at(5 + 1024, SchedPriority::kTick, note);
  sched.advance_to(5);
  EXPECT_EQ(fire_times, (std::vector<Cycle>{5}));
  EXPECT_TRUE(sched.has_pending());
  EXPECT_EQ(sched.next_event_cycle(), 5u + 512u);
  sched.run_to_completion();
  EXPECT_EQ(fire_times, (std::vector<Cycle>{5, 517, 1029}));
}

TEST(Scheduler, SelfReschedulingChainCrossesManyWraps) {
  // A 700-cycle period never fits in the ring, so every hop parks in the
  // overflow heap and migrates in as time advances — 100 hops sweep the
  // ring seam ~137 times.
  Scheduler sched;
  std::vector<Cycle> fire_times;
  std::function<void()> hop = [&] {
    fire_times.push_back(sched.now());
    if (fire_times.size() < 100) {
      sched.schedule(700, SchedPriority::kTick, hop);
    }
  };
  sched.schedule(700, SchedPriority::kTick, hop);
  sched.run_to_completion();
  ASSERT_EQ(fire_times.size(), 100u);
  for (std::size_t i = 0; i < fire_times.size(); ++i) {
    EXPECT_EQ(fire_times[i], 700u * (i + 1));
  }
  EXPECT_EQ(sched.now(), 70'000u);
}

TEST(Scheduler, MixedRingAndOverflowTrafficOverLongHorizon) {
  // Events sprinkled on both sides of the horizon while time advances in
  // odd-sized steps (so bucket indices hit every alignment): global firing
  // order must be exactly by (cycle, priority, insertion).
  Scheduler sched;
  std::vector<Cycle> fire_times;
  const auto note = [&] { fire_times.push_back(sched.now()); };
  std::vector<Cycle> expected;
  // 40 batches, each scheduling a near event (in-ring), a just-beyond-
  // horizon event and a far event, then advancing by a prime step.
  for (Cycle batch = 0; batch < 40; ++batch) {
    const Cycle base = sched.now();
    for (const Cycle delay : {Cycle{37}, Cycle{511}, Cycle{512}, Cycle{977}}) {
      sched.schedule(delay, SchedPriority::kTick, note);
      expected.push_back(base + delay);
    }
    sched.advance_to(base + 271);
  }
  sched.run_to_completion();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fire_times, expected);
  EXPECT_FALSE(sched.has_pending());
}

TEST(Scheduler, RestoreClockDeepIntoARunKeepsRingArithmeticExact) {
  // A checkpoint restore sets now() to an arbitrary large cycle (not a
  // multiple of the ring size). Scheduling after the jump must behave
  // exactly like a scheduler that walked there cycle by cycle.
  Scheduler sched;
  const Cycle restored = 1'000'000'007;  // prime: every bucket alignment off
  sched.restore_clock(restored, /*next_sequence=*/12345,
                      /*events_fired=*/999);
  EXPECT_EQ(sched.now(), restored);
  EXPECT_EQ(sched.next_sequence(), 12345u);
  EXPECT_EQ(sched.events_fired(), 999u);

  std::vector<Cycle> fire_times;
  const auto note = [&] { fire_times.push_back(sched.now()); };
  sched.schedule(3, SchedPriority::kTick, note);        // in-ring
  sched.schedule(511, SchedPriority::kTick, note);      // last ring slot
  sched.schedule(512, SchedPriority::kTick, note);      // first overflow
  sched.schedule(100'000, SchedPriority::kTick, note);  // far overflow
  EXPECT_THROW(sched.schedule_at(restored - 1, SchedPriority::kTick, [] {}),
               SimError);
  sched.run_to_completion();
  EXPECT_EQ(fire_times,
            (std::vector<Cycle>{restored + 3, restored + 511, restored + 512,
                                restored + 100'000}));
  EXPECT_EQ(sched.events_fired(), 999u + 4u);
}

TEST(Scheduler, RestoreClockEnforcesTheQuiesceInvariant) {
  {  // pending events: not a quiesce point, must refuse
    Scheduler sched;
    sched.schedule(10, SchedPriority::kTick, [] {});
    EXPECT_THROW(sched.restore_clock(100, 1, 0), SimError);
  }
  {  // time must never move backwards
    Scheduler sched;
    sched.advance_to(500);
    EXPECT_THROW(sched.restore_clock(499, 1, 0), SimError);
    sched.restore_clock(500, 1, 0);  // same cycle is fine
    EXPECT_EQ(sched.now(), 500u);
  }
}

// Determinism property: two identical schedules produce identical firing
// orders even with many same-cycle events.
TEST(Scheduler, DeterministicOrder) {
  const auto run_once = [] {
    Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sched.schedule(i % 5, static_cast<SchedPriority>(i % 3),
                     [&order, i] { order.push_back(i); });
    }
    sched.run_to_completion();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace coyote::simfw
