// RV64A semantics (hart level) and the atomic kernels (system level).
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "isa/decoder.h"
#include "kernels/kernels.h"
#include "testutil.h"

namespace coyote::iss {
namespace {

using isa::Assembler;
using test::emit_exit;
using test::HartRunner;
using namespace coyote::isa;

constexpr Addr kA = 0x20000;

TEST(Atomics, DecodeAndNames) {
  // amoadd.d a0, a1, (a2): funct5=0, funct3=3.
  Assembler as(0);
  as.amoadd_d(a0, a1, a2);
  as.lr_d(a3, a4);
  as.sc_d(a5, a6, a7);
  const auto& words = as.finish();
  const auto amo = decode(words[0]);
  EXPECT_EQ(amo.op, Op::kAmoaddD);
  EXPECT_EQ(amo.rd, a0);
  EXPECT_EQ(amo.rs2, a1);
  EXPECT_EQ(amo.rs1, a2);
  EXPECT_EQ(decode(words[1]).op, Op::kLrD);
  EXPECT_EQ(decode(words[2]).op, Op::kScD);
  EXPECT_TRUE(is_amo(Op::kAmoaddD));
  EXPECT_FALSE(is_amo(Op::kAdd));
}

TEST(Atomics, AmoAddReturnsOldValue) {
  HartRunner runner;
  runner.memory().write<std::uint64_t>(kA, 40);
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(a1, 2);
  as.amoadd_d(a2, a1, s1);   // a2 = 40, mem = 42
  as.amoadd_d(a3, a1, s1);   // a3 = 42, mem = 44
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(runner.hart().x(a2), 40u);
  EXPECT_EQ(runner.hart().x(a3), 42u);
  EXPECT_EQ(runner.memory().read<std::uint64_t>(kA), 44u);
}

TEST(Atomics, AmoVarietyD) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(a1, 0b1100);
  as.sd(a1, 0, s1);
  as.li(a2, 0b1010);
  as.amoand_d(a3, a2, s1);   // mem = 0b1000
  as.ld(s2, 0, s1);
  as.amoor_d(a3, a2, s1);    // mem = 0b1010
  as.ld(s3, 0, s1);
  as.amoxor_d(a3, a2, s1);   // mem = 0
  as.ld(s4, 0, s1);
  as.li(a2, -5);
  as.amomin_d(a3, a2, s1);   // mem = min(0, -5) = -5
  as.ld(s5, 0, s1);
  as.li(a2, 3);
  as.amomax_d(a3, a2, s1);   // mem = max(-5, 3) = 3
  as.ld(s6, 0, s1);
  as.li(a2, -1);             // = UINT64_MAX unsigned
  as.amomaxu_d(a3, a2, s1);  // mem = max_u(3, ~0) = ~0
  as.ld(s7, 0, s1);
  as.li(a2, 7);
  as.amominu_d(a3, a2, s1);  // mem = min_u(~0, 7) = 7
  as.ld(s8, 0, s1);
  as.li(a2, 100);
  as.amoswap_d(a3, a2, s1);  // a3 = 7, mem = 100
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(s2), 0b1000u);
  EXPECT_EQ(hart.x(s3), 0b1010u);
  EXPECT_EQ(hart.x(s4), 0u);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s5)), -5);
  EXPECT_EQ(static_cast<std::int64_t>(hart.x(s6)), 3);
  EXPECT_EQ(hart.x(s7), ~0ULL);
  EXPECT_EQ(hart.x(s8), 7u);
  EXPECT_EQ(hart.x(a3), 7u);
  EXPECT_EQ(runner.memory().read<std::uint64_t>(kA), 100u);
}

TEST(Atomics, AmoWordSignExtends) {
  HartRunner runner;
  runner.memory().write<std::uint32_t>(kA, 0xFFFFFFFF);  // -1 as i32
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(a1, 1);
  as.amoadd_w(a2, a1, s1);   // a2 = sext(-1), mem32 = 0
  emit_exit(as);
  runner.run(as);
  EXPECT_EQ(static_cast<std::int64_t>(runner.hart().x(a2)), -1);
  EXPECT_EQ(runner.memory().read<std::uint32_t>(kA), 0u);
}

TEST(Atomics, LrScSuccessAndFailure) {
  HartRunner runner;
  runner.memory().write<std::uint64_t>(kA, 5);
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.lr_d(a1, s1);           // a1 = 5, reservation set
  as.li(a2, 9);
  as.sc_d(a3, a2, s1);       // success: a3 = 0, mem = 9
  as.sc_d(a4, a2, s1);       // no reservation: a4 = 1
  as.lr_d(a1, s1);
  as.li(t0, static_cast<std::int64_t>(kA + 64));
  as.sc_d(a5, a2, t0);       // wrong address: a5 = 1
  emit_exit(as);
  runner.run(as);
  const auto& hart = runner.hart();
  EXPECT_EQ(hart.x(a3), 0u);
  EXPECT_EQ(hart.x(a4), 1u);
  EXPECT_EQ(hart.x(a5), 1u);
  EXPECT_EQ(runner.memory().read<std::uint64_t>(kA), 9u);
}

TEST(Atomics, AmoRecordsLoadAndStoreAccess) {
  HartRunner runner;
  Assembler as(0x1000);
  as.li(s1, static_cast<std::int64_t>(kA));
  as.li(a1, 1);
  as.amoadd_d(a2, a1, s1);
  emit_exit(as);
  const auto& words = as.finish();
  runner.memory().poke_words(0x1000, words);
  runner.hart().reset(0x1000);
  StepInfo info;
  while (true) {
    const auto inst =
        isa::decode(runner.memory().read<std::uint32_t>(runner.hart().pc()));
    info.clear();
    runner.hart().execute(inst, info);
    if (inst.op == Op::kAmoaddD) break;
  }
  ASSERT_EQ(info.accesses.size(), 2u);
  EXPECT_FALSE(info.accesses[0].is_store);
  EXPECT_TRUE(info.accesses[1].is_store);
  EXPECT_EQ(info.accesses[0].addr, kA);
  EXPECT_EQ(info.accesses[1].addr, kA);
}

}  // namespace
}  // namespace coyote::iss

namespace coyote::kernels {
namespace {

core::SimConfig config_for(std::uint32_t cores) {
  core::SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 4;
  config.num_mcs = 2;
  return config;
}

class HistogramTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(HistogramTest, ExactCountsUnderContention) {
  const auto [cores, skew] = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = HistogramWorkload::generate(4096, 64, skew, 9);
  workload.install(sim.memory());
  const auto program = build_histogram_atomic(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  EXPECT_EQ(workload.reference(), workload.result(sim.memory()));
}

INSTANTIATE_TEST_SUITE_P(
    CoresAndSkew, HistogramTest,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 16u),
                       ::testing::Values(0.0, 0.8)),
    [](const auto& info) {
      return "cores" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) > 0 ? "_skewed" : "_uniform");
    });

class SyncStencilTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SyncStencilTest, MultiIterationMulticore) {
  const std::uint32_t cores = GetParam();
  core::Simulator sim(config_for(cores));
  const auto workload = StencilWorkload::generate(257, 6, 13);
  workload.install(sim.memory());
  const auto program = build_stencil_vector_sync(workload, cores);
  sim.load_program(program.base, program.words, program.entry);
  ASSERT_TRUE(sim.run(500'000'000).all_exited);
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SyncStencilTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(SyncStencil, ReRunOnSameSimulatorWorks) {
  // The barrier generation survives in memory between runs; the kernel
  // reads the current value at startup, so back-to-back runs must agree.
  core::Simulator sim(config_for(4));
  const auto workload = StencilWorkload::generate(128, 3, 14);
  const auto program = build_stencil_vector_sync(workload, 4);
  for (int round = 0; round < 2; ++round) {
    workload.install(sim.memory());
    sim.load_program(program.base, program.words, program.entry);
    ASSERT_TRUE(sim.run(500'000'000).all_exited);
    const auto expected = workload.reference();
    const auto actual = workload.result(sim.memory());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(expected[i], actual[i], 1e-12) << "round " << round;
    }
  }
}

TEST(Histogram, SkewParameterValidated) {
  EXPECT_THROW(HistogramWorkload::generate(16, 4, 1.0, 1), ConfigError);
  EXPECT_THROW(HistogramWorkload::generate(16, 0, 0.0, 1), ConfigError);
}

}  // namespace
}  // namespace coyote::kernels
