#include "common/bits.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace coyote {
namespace {

TEST(Bits, ExtractBasic) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 16), 0xDEADu);
  EXPECT_EQ(bits(0xDEADBEEF, 15, 0), 0xBEEFu);
  EXPECT_EQ(bits(0xFF, 7, 0), 0xFFu);
  EXPECT_EQ(bits(0xFF, 3, 0), 0xFu);
  EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(Bits, ExtractSingle) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(1ULL << 63, 63), 1u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FF, 12), 0x7FF);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0, 12), 0);
  EXPECT_EQ(sign_extend(0x80000000ULL, 32),
            -static_cast<std::int64_t>(0x80000000ULL));
  EXPECT_EQ(sign_extend(~0ULL, 64), -1);
  EXPECT_EQ(sign_extend(1, 1), -1);
}

TEST(Bits, SignExtendIgnoresHighGarbage) {
  // Bits above `width` must not affect the result.
  EXPECT_EQ(sign_extend(0xFFFFF123, 12), sign_extend(0x123, 12));
}

TEST(Bits, Pow2Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2_or_zero(0));
  EXPECT_FALSE(is_pow2_or_zero(12));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(1ULL << 40), 40u);
}

TEST(Bits, Alignment) {
  EXPECT_EQ(align_down(0x1234, 0x100), 0x1200u);
  EXPECT_EQ(align_up(0x1234, 0x100), 0x1300u);
  EXPECT_EQ(align_up(0x1200, 0x100), 0x1200u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
}

TEST(Bits, InsertBits) {
  EXPECT_EQ(insert_bits(0, 0x1F, 11, 7), 0x1Fu << 7);
  EXPECT_EQ(insert_bits(~0u, 0, 11, 7), ~0u & ~(0x1Fu << 7));
  EXPECT_EQ(insert_bits(0, ~0u, 31, 0), ~0u);
}

// Property: extract(insert(x)) == x for random fields.
TEST(Bits, InsertExtractRoundTrip) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const unsigned lo = static_cast<unsigned>(rng.below(28));
    const unsigned hi = lo + static_cast<unsigned>(rng.below(31 - lo));
    const auto field = static_cast<std::uint32_t>(rng.next());
    const auto base = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t inserted = insert_bits(base, field, hi, lo);
    const unsigned width = hi - lo + 1;
    const std::uint32_t mask =
        width == 32 ? ~0u : ((1u << width) - 1);
    EXPECT_EQ(bits(inserted, hi, lo), field & mask);
    // Bits outside the field are untouched.
    const std::uint32_t outside_mask = ~(mask << lo);
    EXPECT_EQ(inserted & outside_mask, base & outside_mask);
  }
}

// Property: sign_extend agrees with arithmetic shift implementation.
TEST(Bits, SignExtendMatchesShifts) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    const unsigned width = 1 + static_cast<unsigned>(rng.below(63));
    const std::uint64_t value = rng.next();
    const auto expected = static_cast<std::int64_t>(value << (64 - width)) >>
                          (64 - width);
    EXPECT_EQ(sign_extend(value, width), expected);
  }
}

}  // namespace
}  // namespace coyote
