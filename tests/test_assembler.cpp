#include "isa/assembler.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/decoder.h"
#include "testutil.h"

namespace coyote::isa {
namespace {

TEST(Assembler, PcTracksEmission) {
  Assembler as(0x1000);
  EXPECT_EQ(as.pc(), 0x1000u);
  as.nop();
  EXPECT_EQ(as.pc(), 0x1004u);
  as.nop();
  EXPECT_EQ(as.size_bytes(), 8u);
}

TEST(Assembler, BackwardBranchOffset) {
  Assembler as(0x1000);
  auto top = as.here();
  as.nop();
  as.nop();
  as.beq(a0, a1, top);  // at 0x1008, target 0x1000 -> offset -8
  const auto inst = decode(as.finish().at(2));
  EXPECT_EQ(inst.op, Op::kBeq);
  EXPECT_EQ(inst.imm, -8);
}

TEST(Assembler, ForwardBranchFixup) {
  Assembler as(0x1000);
  auto skip = as.make_label();
  as.bne(a0, a1, skip);  // at 0x1000
  as.nop();
  as.nop();
  as.bind(skip);  // 0x100C -> offset +12
  const auto inst = decode(as.finish().at(0));
  EXPECT_EQ(inst.op, Op::kBne);
  EXPECT_EQ(inst.imm, 12);
}

TEST(Assembler, ForwardJalFixup) {
  Assembler as(0x2000);
  auto target = as.make_label();
  as.jal(ra, target);
  for (int i = 0; i < 100; ++i) as.nop();
  as.bind(target);
  const auto inst = decode(as.finish().at(0));
  EXPECT_EQ(inst.op, Op::kJal);
  EXPECT_EQ(inst.imm, 404);
}

TEST(Assembler, JPseudoUsesZeroLink) {
  Assembler as(0);
  auto label = as.here();
  as.j(label);
  const auto inst = decode(as.finish().at(0));
  EXPECT_EQ(inst.op, Op::kJal);
  EXPECT_EQ(inst.rd, zero);
  EXPECT_EQ(inst.imm, 0);
}

TEST(Assembler, UnboundLabelThrowsAtFinish) {
  Assembler as(0);
  auto label = as.make_label();
  as.beq(a0, a1, label);
  EXPECT_THROW(as.finish(), SimError);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler as(0);
  auto label = as.here();
  EXPECT_THROW(as.bind(label), SimError);
}

TEST(Assembler, BranchOutOfRangeThrows) {
  Assembler as(0);
  auto target = as.make_label();
  as.beq(a0, a1, target);
  for (int i = 0; i < 2000; ++i) as.nop();  // 8000 bytes > +-4K
  as.bind(target);
  EXPECT_THROW(as.finish(), SimError);
}

// li must materialize any 64-bit constant exactly; verified by executing the
// emitted sequence on a hart.
TEST(Assembler, LiMaterializesExactValues) {
  const std::int64_t cases[] = {
      0,
      1,
      -1,
      2047,
      -2048,
      2048,
      4096,
      0x7FFFFFFF,
      static_cast<std::int64_t>(0xFFFFFFFF80000000ULL),
      0x123456789ABCDEFLL,
      -0x123456789ABCDEFLL,
      static_cast<std::int64_t>(0x8000000000000000ULL),
      0x7FFFFFFFFFFFFFFFLL,
      0x10000000LL,
      0xDEADBEEFLL,
  };
  for (const std::int64_t value : cases) {
    test::HartRunner runner;
    Assembler as(0x1000);
    as.li(a1, value);
    test::emit_exit(as);
    runner.run(as);
    EXPECT_EQ(runner.hart().x(a1), static_cast<std::uint64_t>(value))
        << "li " << value;
  }
}

TEST(Assembler, LiRandomProperty) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const auto value = static_cast<std::int64_t>(rng.next());
    test::HartRunner runner;
    Assembler as(0x1000);
    as.li(s3, value);
    test::emit_exit(as);
    runner.run(as);
    ASSERT_EQ(runner.hart().x(s3), static_cast<std::uint64_t>(value));
  }
}

TEST(Assembler, LiToZeroRegisterEmitsNothing) {
  Assembler as(0);
  as.li(zero, 12345);
  EXPECT_EQ(as.finish().size(), 0u);
}

TEST(Assembler, PseudoInstructions) {
  Assembler as(0);
  as.mv(a0, a1);
  as.neg(a2, a3);
  as.seqz(a4, a5);
  as.snez(a6, a7);
  as.ret();
  const auto& words = as.finish();
  EXPECT_EQ(decode(words[0]).op, Op::kAddi);
  EXPECT_EQ(decode(words[1]).op, Op::kSub);
  EXPECT_EQ(decode(words[2]).op, Op::kSltiu);
  EXPECT_EQ(decode(words[3]).op, Op::kSltu);
  const auto ret_inst = decode(words[4]);
  EXPECT_EQ(ret_inst.op, Op::kJalr);
  EXPECT_EQ(ret_inst.rs1, ra);
  EXPECT_EQ(ret_inst.rd, zero);
}

}  // namespace
}  // namespace coyote::isa
