// Quickstart: build a small tiled machine, run the scalar matmul kernel on
// four cores, validate the result against the host reference, and print the
// statistics report — the whole Coyote API in ~60 lines.
#include <cmath>
#include <cstdio>

#include "core/simulator.h"
#include "kernels/kernels.h"

using namespace coyote;

int main() {
  // A 4-core machine: one tile, two L2 banks, two memory controllers.
  core::SimConfig config;
  config.num_cores = 4;
  config.cores_per_tile = 4;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;

  core::Simulator sim(config);

  // Generate a 32x32 dense matmul workload and its baremetal program.
  const auto workload = kernels::MatmulWorkload::generate(32, /*seed=*/42);
  workload.install(sim.memory());
  const auto program =
      kernels::build_matmul_scalar(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);

  const core::RunResult result = sim.run(/*max_cycles=*/50'000'000);
  std::printf("simulated %llu cycles, %llu instructions (%.2f MIPS host)\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.instructions),
              result.mips);
  if (!result.all_exited) {
    std::printf("ERROR: simulation hit the cycle limit\n");
    return 1;
  }

  // Validate C = A*B against the host-side reference.
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  double max_err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    max_err = std::fmax(max_err, std::fabs(expected[i] - actual[i]));
  }
  std::printf("max |error| vs host reference: %g\n", max_err);
  if (max_err > 1e-9) {
    std::printf("ERROR: result mismatch\n");
    return 1;
  }

  std::printf("\n--- statistics ---\n%s", sim.report().c_str());
  return 0;
}
