# Example program for coyote_sim --program: every core streams over a
# private 4 KiB block (so the L1/L2 counters have something to show),
# sums it, stores the result and exits with code 0.
.org 0x1000
    csrr  t0, 0xF14           # hartid
    slli  t1, t0, 12          # 4 KiB per core
    li    s1, 0x100000
    add   s1, s1, t1          # my block
    li    s2, 512             # 512 doublewords
    li    a0, 0
loop:
    ld    t2, 0(s1)
    add   a0, a0, t2
    addi  s1, s1, 8
    addi  s2, s2, -1
    bnez  s2, loop
    csrr  t0, 0xF14
    slli  t1, t0, 3
    li    s3, 0x200000
    add   s3, s3, t1
    sd    a0, 0(s3)           # result[hartid]
    li    a7, 93
    li    a0, 0
    ecall
