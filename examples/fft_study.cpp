// FFT strong-scaling study: runs the barrier-synchronized radix-2 FFT on
// 1..32 cores, validates each run against the host reference, and prints
// speedup plus where the time goes (butterfly work vs barrier stalls) — a
// compact demonstration of studying a synchronization-bound kernel with
// Coyote.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulator.h"
#include "kernels/kernels.h"

using namespace coyote;

int main() {
  const std::size_t n = 1 << 14;
  const auto workload = kernels::FftWorkload::generate(n, 99);
  std::vector<double> expected_re;
  std::vector<double> expected_im;
  workload.reference(expected_re, expected_im);

  std::printf("radix-2 FFT, n = %zu (%u stages), strong scaling\n\n", n,
              static_cast<unsigned>(std::log2(n)));
  std::printf("%6s %12s %10s %14s %16s\n", "cores", "sim cycles", "speedup",
              "instructions", "stall cycles/core");

  Cycle base_cycles = 0;
  for (const std::uint32_t cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::SimConfig config;
    config.num_cores = cores;
    config.cores_per_tile = 8;
    config.num_mcs = 2;
    core::Simulator sim(config);
    workload.install(sim.memory());
    const auto program = kernels::build_fft_scalar(workload, cores);
    sim.load_program(program.base, program.words, program.entry);
    const auto result = sim.run(5'000'000'000ULL);
    if (!result.all_exited) {
      std::printf("ERROR: %u-core run hit the cycle limit\n", cores);
      return 1;
    }

    std::vector<double> actual_re;
    std::vector<double> actual_im;
    workload.result(sim.memory(), actual_re, actual_im);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::fabs(expected_re[i] - actual_re[i]) > 1e-9 ||
          std::fabs(expected_im[i] - actual_im[i]) > 1e-9) {
        std::printf("ERROR: %u-core result mismatch at %zu\n", cores, i);
        return 1;
      }
    }

    std::uint64_t stall_cycles = 0;
    for (CoreId core = 0; core < cores; ++core) {
      stall_cycles += sim.core(core).counters().raw_stall_cycles +
                      sim.core(core).counters().ifetch_stall_cycles;
    }
    if (cores == 1) base_cycles = result.cycles;
    std::printf("%6u %12llu %9.2fx %14llu %16llu\n", cores,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(base_cycles) /
                    static_cast<double>(result.cycles),
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(stall_cycles / cores));
  }

  std::printf(
      "\nall runs validated against the host FFT reference (<= 1e-9).\n"
      "Speedup saturates as per-stage barriers and shared memory bandwidth\n"
      "dominate the shrinking per-core butterfly work.\n");
  return 0;
}
