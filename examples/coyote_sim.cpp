// coyote_sim — the command-line front end: pick a kernel, a core count and
// any memory-hierarchy parameters, run the simulation and get statistics
// (text/CSV/JSON) plus an optional Paraver trace. This is the binary a
// downstream user runs; every option maps to one SimConfig knob via the
// library's config API (core/config_io.h), the same surface the sweep
// engine and every example consume.
//
//   coyote_sim --kernel=spmv_row_gather --cores=64
//       l2.size_kb=512 l2.banks_per_tile=4 l2.mapping=page-to-bank
//       noc.latency=8 mc.latency=150 --report=csv --trace=out/spmv
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "core/run_summary.h"
#include "core/simulator.h"
#include "isa/text_asm.h"
#include "kernels/program_menu.h"

using namespace coyote;

namespace {

struct Options {
  std::string kernel = "matmul_scalar";
  std::string program_path;  ///< assemble & run this .s file instead
  std::string report = "text";
  std::string trace_basename;
  std::string json_out;    ///< versioned run summary destination
  std::uint64_t size = 0;  // problem size; 0 = kernel default
  std::uint64_t seed = 2024;
  simfw::ConfigMap overrides;
};

void usage() {
  std::printf(
      "usage: coyote_sim [--kernel=K | --program=FILE.s] [--cores=N]\n"
      "                  [--size=S] [--seed=X] [--report=text|csv|json]\n"
      "                  [--json-out=FILE] [--trace=BASENAME]\n"
      "                  [key=value ...]\n"
      "\n"
      "--program assembles a RISC-V source file (GNU-style subset; see\n"
      "src/isa/text_asm.h) and runs it on every core. Programs read their\n"
      "core id from the mhartid CSR and exit via the exit syscall.\n"
      "\n"
      "--json-out writes a versioned machine-readable run summary\n"
      "(schema_version %d: config, result, statistics) alongside the\n"
      "--report stream.\n"
      "\n"
      "--cores=N is shorthand for topo.cores=N.\n"
      "\n"
      "kernels:",
      core::kRunSummarySchemaVersion);
  for (const std::string& name : kernels::kernel_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%s", core::config_usage().c_str());
}

int run(const Options& options) {
  core::SimConfig config = core::config_from_map(options.overrides);
  if (!options.trace_basename.empty()) {
    config.enable_trace = true;
    config.trace_basename = options.trace_basename;
  }
  core::Simulator sim(config);

  std::string workload_name = options.kernel;
  if (!options.program_path.empty()) {
    workload_name = options.program_path;
    std::ifstream in(options.program_path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", options.program_path.c_str());
      return 2;
    }
    std::ostringstream source;
    source << in.rdbuf();
    const auto assembled = isa::assemble_text(source.str());
    sim.load_program(assembled.base, assembled.words, assembled.base);
  } else {
    const kernels::Program program =
        kernels::build_named_kernel(options.kernel, config.num_cores,
                                    options.size, options.seed, sim.memory());
    sim.load_program(program.base, program.words, program.entry);
  }

  const auto result = sim.run(~Cycle{0});

  std::fprintf(stderr,
               "# kernel=%s cores=%u sim_cycles=%llu instructions=%llu "
               "host_MIPS=%.2f\n",
               workload_name.c_str(), config.num_cores,
               static_cast<unsigned long long>(result.cycles),
               static_cast<unsigned long long>(result.instructions),
               result.mips);

  simfw::ReportFormat format = simfw::ReportFormat::kText;
  if (options.report == "csv") format = simfw::ReportFormat::kCsv;
  if (options.report == "json") format = simfw::ReportFormat::kJson;
  std::fputs(sim.report(format).c_str(), stdout);

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", options.json_out.c_str());
      return 2;
    }
    out << core::run_summary_json(workload_name, sim, result);
  }
  return result.all_exited ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    try {
      if (arg.rfind("--kernel=", 0) == 0) {
        options.kernel = value_of();
      } else if (arg.rfind("--program=", 0) == 0) {
        options.program_path = value_of();
      } else if (arg.rfind("--cores=", 0) == 0) {
        options.overrides.set("topo.cores", value_of());
      } else if (arg.rfind("--size=", 0) == 0) {
        options.size = std::stoull(value_of());
      } else if (arg.rfind("--seed=", 0) == 0) {
        options.seed = std::stoull(value_of());
      } else if (arg.rfind("--report=", 0) == 0) {
        options.report = value_of();
      } else if (arg.rfind("--json-out=", 0) == 0) {
        options.json_out = value_of();
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_basename = value_of();
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage();
        return 2;
      } else {
        options.overrides.set_from_token(arg);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   error.what());
      return 2;
    }
  }
  try {
    return run(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
