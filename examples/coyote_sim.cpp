// coyote_sim — the command-line front end: pick a kernel, a core count and
// any memory-hierarchy parameters, run the simulation and get statistics
// (text/CSV/JSON) plus an optional Paraver trace. This is the binary a
// downstream user runs; every option maps to one SimConfig knob.
//
//   coyote_sim --kernel=spmv_row_gather --cores=64
//       l2.size_kb=512 l2.banks_per_tile=4 l2.mapping=page-to-bank
//       noc.latency=8 mc.latency=150 --report=csv --trace=out/spmv
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "core/simulator.h"
#include "isa/text_asm.h"
#include "kernels/kernels.h"
#include "simfw/params.h"

using namespace coyote;

namespace {

struct Options {
  std::string kernel = "matmul_scalar";
  std::string program_path;  ///< assemble & run this .s file instead
  std::uint32_t cores = 8;
  std::string report = "text";
  std::string trace_basename;
  std::uint64_t size = 0;  // problem size; 0 = kernel default
  std::uint64_t seed = 2024;
  simfw::ConfigMap overrides;
};

void usage() {
  std::printf(
      "usage: coyote_sim [--kernel=K | --program=FILE.s] [--cores=N]\n"
      "                  [--size=S] [--seed=X] [--report=text|csv|json]\n"
      "                  [--trace=BASENAME] [key=value ...]\n"
      "\n"
      "--program assembles a RISC-V source file (GNU-style subset; see\n"
      "src/isa/text_asm.h) and runs it on every core. Programs read their\n"
      "core id from the mhartid CSR and exit via the exit syscall.\n"
      "\n"
      "kernels: matmul_scalar matmul_vector spmv_scalar spmv_row_gather\n"
      "         spmv_ell spmv_two_phase stencil_scalar stencil_vector\n"
      "         stencil_sync stencil2d histogram axpy dot fft\n"
      "\n"
      "config keys (key=value):\n"
      "  topo.cores_per_tile      cores per VAS-like tile (default 8)\n"
      "  core.vlen_bits           vector register length (default 512)\n"
      "  core.l1d_kb, core.l1i_kb L1 sizes (default 32)\n"
      "  l2.size_kb               per-bank capacity (default 256)\n"
      "  l2.ways, l2.mshrs        associativity / in-flight misses\n"
      "  l2.banks_per_tile        banks per tile (default 2)\n"
      "  l2.hit_latency, l2.miss_latency\n"
      "  l2.sharing               shared | private\n"
      "  l2.mapping               set-interleave | page-to-bank\n"
      "  l2.prefetch              none | next-line\n"
      "  l2.prefetch_degree       lines fetched ahead (default 1)\n"
      "  noc.model                crossbar | mesh\n"
      "  noc.latency              crossbar latency (default 4)\n"
      "  llc.enable               true | false (slice per controller)\n"
      "  llc.size_kb, llc.ways, llc.hit_latency\n"
      "  mc.count, mc.latency, mc.cycles_per_request\n"
      "  mc.model                 fixed | dram\n"
      "  sim.interleave_quantum   instructions per round (default 1)\n"
      "  sim.fast_forward         true | false (default false)\n"
      "  sim.batched_stepping     true | false (default true; false forces\n"
      "                           the paper-literal per-instruction loop —\n"
      "                           results are bit-identical either way)\n");
}

/// Declares the parameter surface, applies command-line overrides, and
/// builds the SimConfig.
core::SimConfig build_config(const Options& options) {
  simfw::ParameterSet topo;
  topo.add("cores_per_tile", std::uint64_t{8}, "cores per tile");
  simfw::ParameterSet core_params;
  core_params.add("vlen_bits", std::uint64_t{512}, "VLEN in bits");
  core_params.add("l1d_kb", std::uint64_t{32}, "L1D capacity");
  core_params.add("l1i_kb", std::uint64_t{32}, "L1I capacity");
  simfw::ParameterSet l2;
  l2.add("size_kb", std::uint64_t{256}, "per-bank capacity");
  l2.add("ways", std::uint64_t{16}, "associativity");
  l2.add("mshrs", std::uint64_t{16}, "in-flight misses per bank");
  l2.add("banks_per_tile", std::uint64_t{2}, "banks per tile");
  l2.add("hit_latency", std::uint64_t{8}, "hit latency");
  l2.add("miss_latency", std::uint64_t{4}, "lookup-to-forward latency");
  l2.add("sharing", std::string("shared"), "shared|private");
  l2.add("mapping", std::string("set-interleave"), "mapping policy");
  l2.add("prefetch", std::string("none"), "none|next-line");
  l2.add("prefetch_degree", std::uint64_t{1}, "lines fetched ahead");
  l2.add("replacement", std::string("lru"), "lru|fifo|random");
  simfw::ParameterSet noc;
  noc.add("model", std::string("crossbar"), "crossbar|mesh");
  noc.add("latency", std::uint64_t{4}, "crossbar latency");
  noc.add("mesh_width", std::uint64_t{4}, "mesh columns");
  noc.add("mesh_hop_latency", std::uint64_t{1}, "per-hop latency");
  simfw::ParameterSet llc;
  llc.add("enable", false, "LLC slice per memory controller");
  llc.add("size_kb", std::uint64_t{2048}, "per-slice capacity");
  llc.add("ways", std::uint64_t{16}, "associativity");
  llc.add("hit_latency", std::uint64_t{20}, "hit latency");
  simfw::ParameterSet mc;
  mc.add("count", std::uint64_t{2}, "memory controllers");
  mc.add("latency", std::uint64_t{100}, "fixed access latency");
  mc.add("cycles_per_request", std::uint64_t{4}, "service rate");
  mc.add("model", std::string("fixed"), "fixed|dram");
  simfw::ParameterSet sim_params;
  sim_params.add("interleave_quantum", std::uint64_t{1},
                 "instructions per core per round");
  sim_params.add("fast_forward", false, "skip all-stalled cycles");
  sim_params.add("batched_stepping", true,
                 "host-side block-stepping fast paths");

  options.overrides.apply("topo", topo);
  options.overrides.apply("core", core_params);
  options.overrides.apply("l2", l2);
  options.overrides.apply("noc", noc);
  options.overrides.apply("llc", llc);
  options.overrides.apply("mc", mc);
  options.overrides.apply("sim", sim_params);

  core::SimConfig config;
  config.num_cores = options.cores;
  config.cores_per_tile =
      static_cast<std::uint32_t>(topo.as<std::uint64_t>("cores_per_tile"));
  config.core.vector.vlen_bits =
      static_cast<unsigned>(core_params.as<std::uint64_t>("vlen_bits"));
  config.core.l1d_size_bytes = core_params.as<std::uint64_t>("l1d_kb") * 1024;
  config.core.l1i_size_bytes = core_params.as<std::uint64_t>("l1i_kb") * 1024;
  config.l2_bank.size_bytes = l2.as<std::uint64_t>("size_kb") * 1024;
  config.l2_bank.ways =
      static_cast<std::uint32_t>(l2.as<std::uint64_t>("ways"));
  config.l2_bank.mshrs =
      static_cast<std::uint32_t>(l2.as<std::uint64_t>("mshrs"));
  config.l2_banks_per_tile =
      static_cast<std::uint32_t>(l2.as<std::uint64_t>("banks_per_tile"));
  config.l2_bank.hit_latency = l2.as<std::uint64_t>("hit_latency");
  config.l2_bank.miss_latency = l2.as<std::uint64_t>("miss_latency");
  const std::string sharing = l2.as<std::string>("sharing");
  if (sharing == "shared") {
    config.l2_sharing = core::L2Sharing::kShared;
  } else if (sharing == "private") {
    config.l2_sharing = core::L2Sharing::kPrivate;
  } else {
    throw ConfigError("l2.sharing must be shared|private");
  }
  config.mapping =
      memhier::mapping_policy_from_string(l2.as<std::string>("mapping"));
  const std::string prefetch = l2.as<std::string>("prefetch");
  if (prefetch == "next-line") {
    config.l2_bank.prefetch = memhier::PrefetchPolicy::kNextLine;
  } else if (prefetch != "none") {
    throw ConfigError("l2.prefetch must be none|next-line");
  }
  config.l2_bank.prefetch_degree =
      static_cast<std::uint32_t>(l2.as<std::uint64_t>("prefetch_degree"));
  const std::string replacement = l2.as<std::string>("replacement");
  if (replacement == "lru") {
    config.l2_bank.replacement = memhier::Replacement::kLru;
  } else if (replacement == "fifo") {
    config.l2_bank.replacement = memhier::Replacement::kFifo;
  } else if (replacement == "random") {
    config.l2_bank.replacement = memhier::Replacement::kRandom;
  } else {
    throw ConfigError("l2.replacement must be lru|fifo|random");
  }
  const std::string noc_model = noc.as<std::string>("model");
  if (noc_model == "crossbar") {
    config.noc.model = memhier::NocModel::kIdealCrossbar;
  } else if (noc_model == "mesh") {
    config.noc.model = memhier::NocModel::kMesh2D;
  } else {
    throw ConfigError("noc.model must be crossbar|mesh");
  }
  config.noc.crossbar_latency = noc.as<std::uint64_t>("latency");
  config.noc.mesh_width =
      static_cast<std::uint32_t>(noc.as<std::uint64_t>("mesh_width"));
  config.noc.mesh_hop_latency = noc.as<std::uint64_t>("mesh_hop_latency");
  config.llc.enable = llc.as<bool>("enable");
  config.llc.size_bytes = llc.as<std::uint64_t>("size_kb") * 1024;
  config.llc.ways = static_cast<std::uint32_t>(llc.as<std::uint64_t>("ways"));
  config.llc.hit_latency = llc.as<std::uint64_t>("hit_latency");
  config.num_mcs = static_cast<std::uint32_t>(mc.as<std::uint64_t>("count"));
  config.mc.latency = mc.as<std::uint64_t>("latency");
  config.mc.cycles_per_request = mc.as<std::uint64_t>("cycles_per_request");
  const std::string mc_model = mc.as<std::string>("model");
  if (mc_model == "fixed") {
    config.mc.model = memhier::McModel::kFixedLatency;
  } else if (mc_model == "dram") {
    config.mc.model = memhier::McModel::kDramRowBuffer;
  } else {
    throw ConfigError("mc.model must be fixed|dram");
  }
  config.interleave_quantum = static_cast<std::uint32_t>(
      sim_params.as<std::uint64_t>("interleave_quantum"));
  config.fast_forward_idle = sim_params.as<bool>("fast_forward");
  config.batched_stepping = sim_params.as<bool>("batched_stepping");
  if (!options.trace_basename.empty()) {
    config.enable_trace = true;
    config.trace_basename = options.trace_basename;
  }
  return config;
}

int run(const Options& options) {
  const core::SimConfig config = build_config(options);
  core::Simulator sim(config);

  kernels::Program program;
  const std::uint64_t seed = options.seed;
  const std::string& kernel = options.kernel;
  if (!options.program_path.empty()) {
    std::ifstream in(options.program_path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   options.program_path.c_str());
      return 2;
    }
    std::ostringstream source;
    source << in.rdbuf();
    const auto assembled = isa::assemble_text(source.str());
    program.base = assembled.base;
    program.entry = assembled.base;
    program.words = assembled.words;
  } else if (kernel == "matmul_scalar" || kernel == "matmul_vector") {
    const std::size_t n = options.size ? options.size : 96;
    const auto workload = kernels::MatmulWorkload::generate(n, seed);
    workload.install(sim.memory());
    program = kernel == "matmul_scalar"
                  ? kernels::build_matmul_scalar(workload, options.cores)
                  : kernels::build_matmul_vector(workload, options.cores);
  } else if (kernel.rfind("spmv_", 0) == 0) {
    const std::size_t rows = options.size ? options.size : 8192;
    const auto workload = kernels::SpmvWorkload::generate(
        kernels::CsrMatrix::random(rows, rows, 16, seed), seed + 1);
    workload.install(sim.memory());
    if (kernel == "spmv_scalar") {
      program = kernels::build_spmv_scalar(workload, options.cores);
    } else if (kernel == "spmv_row_gather") {
      program = kernels::build_spmv_row_gather(workload, options.cores);
    } else if (kernel == "spmv_ell") {
      program = kernels::build_spmv_ell(workload, options.cores);
    } else if (kernel == "spmv_two_phase") {
      program = kernels::build_spmv_two_phase(workload, options.cores);
    } else {
      std::fprintf(stderr, "unknown kernel '%s'\n", kernel.c_str());
      return 2;
    }
  } else if (kernel == "stencil_scalar" || kernel == "stencil_vector") {
    const std::size_t n = options.size ? options.size : (1 << 18);
    const auto workload = kernels::StencilWorkload::generate(n, 1, seed);
    workload.install(sim.memory());
    program = kernel == "stencil_scalar"
                  ? kernels::build_stencil_scalar(workload, options.cores)
                  : kernels::build_stencil_vector(workload, options.cores);
  } else if (kernel == "stencil_sync") {
    const std::size_t n = options.size ? options.size : (1 << 16);
    const auto workload = kernels::StencilWorkload::generate(n, 8, seed);
    workload.install(sim.memory());
    program = kernels::build_stencil_vector_sync(workload, options.cores);
  } else if (kernel == "histogram") {
    const std::size_t n = options.size ? options.size : (1 << 16);
    const auto workload =
        kernels::HistogramWorkload::generate(n, 1024, 0.0, seed);
    workload.install(sim.memory());
    program = kernels::build_histogram_atomic(workload, options.cores);
  } else if (kernel == "stencil2d") {
    const std::size_t n = options.size ? options.size : 512;
    const auto workload = kernels::Stencil2dWorkload::generate(n, n, seed);
    workload.install(sim.memory());
    program = kernels::build_stencil2d_vector(workload, options.cores);
  } else if (kernel == "axpy" || kernel == "dot") {
    const std::size_t n = options.size ? options.size : (1 << 18);
    const auto workload = kernels::Blas1Workload::generate(n, seed);
    workload.install(sim.memory());
    program = kernel == "axpy"
                  ? kernels::build_axpy_vector(workload, options.cores)
                  : kernels::build_dot_vector(workload, options.cores);
  } else if (kernel == "fft") {
    const std::size_t n = options.size ? options.size : (1 << 14);
    const auto workload = kernels::FftWorkload::generate(n, seed);
    workload.install(sim.memory());
    program = kernels::build_fft_scalar(workload, options.cores);
  } else {
    std::fprintf(stderr, "unknown kernel '%s'\n", kernel.c_str());
    return 2;
  }

  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(~Cycle{0});

  std::fprintf(stderr,
               "# kernel=%s cores=%u sim_cycles=%llu instructions=%llu "
               "host_MIPS=%.2f\n",
               options.program_path.empty() ? kernel.c_str()
                                            : options.program_path.c_str(),
               options.cores,
               static_cast<unsigned long long>(result.cycles),
               static_cast<unsigned long long>(result.instructions),
               result.mips);

  simfw::ReportFormat format = simfw::ReportFormat::kText;
  if (options.report == "csv") format = simfw::ReportFormat::kCsv;
  if (options.report == "json") format = simfw::ReportFormat::kJson;
  std::fputs(sim.report(format).c_str(), stdout);
  return result.all_exited ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    try {
      if (arg.rfind("--kernel=", 0) == 0) {
        options.kernel = value_of();
      } else if (arg.rfind("--program=", 0) == 0) {
        options.program_path = value_of();
      } else if (arg.rfind("--cores=", 0) == 0) {
        options.cores = static_cast<std::uint32_t>(std::stoul(value_of()));
      } else if (arg.rfind("--size=", 0) == 0) {
        options.size = std::stoull(value_of());
      } else if (arg.rfind("--seed=", 0) == 0) {
        options.seed = std::stoull(value_of());
      } else if (arg.rfind("--report=", 0) == 0) {
        options.report = value_of();
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_basename = value_of();
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage();
        return 2;
      } else {
        options.overrides.set_from_token(arg);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   error.what());
      return 2;
    }
  }
  try {
    return run(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
