// coyote_sim — the command-line front end: pick a kernel, a core count and
// any memory-hierarchy parameters, run the simulation and get statistics
// (text/CSV/JSON) plus an optional Paraver trace. This is the binary a
// downstream user runs; every option maps to one SimConfig knob via the
// library's config API (core/config_io.h), the same surface the sweep
// engine and every example consume.
//
//   coyote_sim --kernel=spmv_row_gather --cores=64
//       l2.size_kb=512 l2.banks_per_tile=4 l2.mapping=page-to-bank
//       noc.latency=8 mc.latency=150 --report=csv --trace=out/spmv
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/fastforward.h"
#include "common/error.h"
#include "core/config_io.h"
#include "core/run_summary.h"
#include "core/simulator.h"
#include "fault/fault.h"
#include "fault/watchdog.h"
#include "isa/text_asm.h"
#include "kernels/program_menu.h"

using namespace coyote;

namespace {

struct Options {
  std::string kernel = "matmul_scalar";
  std::string program_path;  ///< assemble & run this .s file instead
  std::string report = "text";
  std::string trace_basename;
  std::string json_out;        ///< versioned run summary destination
  std::string checkpoint_out;  ///< cut a checkpoint here mid-run
  std::string checkpoint_in;   ///< resume from this checkpoint instead
  Cycle checkpoint_at = 0;     ///< earliest cycle for the checkpoint cut
  /// On a watchdog/deadlock hang, write the last quiesce-point state here.
  std::string emergency_checkpoint;
  std::uint64_t size = 0;  // problem size; 0 = kernel default
  std::uint64_t seed = 2024;
  simfw::ConfigMap overrides;
};

void usage() {
  std::printf(
      "usage: coyote_sim [--kernel=K | --program=FILE.s] [--cores=N]\n"
      "                  [--size=S] [--seed=X] [--report=text|csv|json]\n"
      "                  [--json-out=FILE] [--trace=BASENAME]\n"
      "                  [--ffwd=N] [--checkpoint-out=FILE]\n"
      "                  [--checkpoint-at=CYCLE] [--checkpoint-in=FILE]\n"
      "                  [--watchdog=N] [--emergency-checkpoint=FILE]\n"
      "                  [--list-kernels] [key=value ...]\n"
      "\n"
      "--program assembles a RISC-V source file (GNU-style subset; see\n"
      "src/isa/text_asm.h) and runs it on every core. Programs read their\n"
      "core id from the mhartid CSR and exit via the exit syscall.\n"
      "\n"
      "--json-out writes a versioned machine-readable run summary\n"
      "(schema_version %d: config, result, statistics) alongside the\n"
      "--report stream.\n"
      "\n"
      "--ffwd=N fast-forwards up to N instructions per core functionally\n"
      "(Spike-style, warming the caches) before detailed simulation;\n"
      "shorthand for ckpt.ffwd_instructions=N. --checkpoint-out cuts a\n"
      "checkpoint at the first quiesce point at or after --checkpoint-at\n"
      "cycles (default 0), then keeps running; --checkpoint-in resumes a\n"
      "saved run bit-identically (no kernel/config arguments needed).\n"
      "\n"
      "--cores=N is shorthand for topo.cores=N; --watchdog=N for\n"
      "sim.watchdog_cycles=N (declare a hang after N cycles with no retired\n"
      "instruction). On a hang the statistics and trace are still emitted,\n"
      "a structured diagnostic goes to stderr, --emergency-checkpoint=FILE\n"
      "receives the last quiesce-point state, and the exit code is 3.\n"
      "fault.* keys arm deterministic fault injection (see README).\n"
      "\n"
      "exit codes: 0 ok, 1 execution error, 2 config/usage error, 3 hang.\n"
      "\n"
      "kernels (see --list-kernels for descriptions):",
      core::kRunSummarySchemaVersion);
  for (const std::string& name : kernels::kernel_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%s", core::config_usage().c_str());
}

void list_kernels() {
  std::size_t width = 0;
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    width = std::max(width, info.name.size());
  }
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    std::printf("%-*s  %s\n", static_cast<int>(width), info.name.c_str(),
                info.description.c_str());
  }
}

int run(const Options& options) {
  std::unique_ptr<core::Simulator> sim;
  std::string workload_name = options.kernel;
  core::RunResult prefix;  // cycles/instructions before the final run leg

  if (!options.checkpoint_in.empty()) {
    ckpt::CheckpointMeta meta;
    sim = ckpt::restore_checkpoint_file(options.checkpoint_in, &meta);
    workload_name = meta.workload;
    std::fprintf(stderr, "# restored %s at cycle %llu (workload %s)\n",
                 options.checkpoint_in.c_str(),
                 static_cast<unsigned long long>(meta.cycle),
                 meta.workload.c_str());
  } else {
    core::SimConfig config = core::config_from_map(options.overrides);
    if (!options.trace_basename.empty()) {
      config.enable_trace = true;
      config.trace_basename = options.trace_basename;
    }
    sim = std::make_unique<core::Simulator>(config);

    if (!options.program_path.empty()) {
      workload_name = options.program_path;
      std::ifstream in(options.program_path);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n",
                     options.program_path.c_str());
        return 2;
      }
      std::ostringstream source;
      source << in.rdbuf();
      const auto assembled = isa::assemble_text(source.str());
      sim->load_program(assembled.base, assembled.words, assembled.base);
    } else {
      const kernels::Program program = kernels::build_named_kernel(
          options.kernel, config.num_cores, options.size, options.seed,
          sim->memory());
      sim->load_program(program.base, program.words, program.entry);
    }

    if (sim->config().ffwd_instructions != 0) {
      const auto t0 = std::chrono::steady_clock::now();
      const ckpt::FfwdResult ffwd = ckpt::fast_forward(*sim);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::fprintf(stderr,
                   "# fast-forwarded %llu instructions in %.2f s "
                   "(%.1f host MIPS)%s%s\n",
                   static_cast<unsigned long long>(ffwd.instructions), secs,
                   secs > 0 ? static_cast<double>(ffwd.instructions) / secs /
                                  1e6
                            : 0.0,
                   ffwd.roi_reached ? " (stopped at ROI marker)" : "",
                   ffwd.all_exited ? " (all programs exited)" : "");
    }
  }

  // Arm deterministic fault injection when the config asks for it. The
  // engine implements the memhier hooks, so it must outlive the run.
  std::unique_ptr<fault::FaultEngine> engine;
  if (sim->config().fault.enable) {
    fault::FaultPlan plan = fault::FaultPlan::generate(sim->config());
    std::fprintf(stderr, "# fault plan (%zu events):\n%s",
                 plan.events.size(), plan.to_string().c_str());
    engine = std::make_unique<fault::FaultEngine>(*sim, std::move(plan));
    engine->arm();
  }

  if (!options.checkpoint_out.empty()) {
    const auto cut = sim->run_to_quiesce(options.checkpoint_at);
    prefix.cycles = cut.cycles;
    prefix.instructions = cut.instructions;
    if (cut.quiesced) {
      ckpt::write_checkpoint_file(*sim, workload_name, options.checkpoint_out);
      std::fprintf(stderr, "# checkpoint written to %s at cycle %llu\n",
                   options.checkpoint_out.c_str(),
                   static_cast<unsigned long long>(sim->scheduler().now()));
    } else {
      std::fprintf(stderr,
                   "# no checkpoint: the run ended before quiescing\n");
    }
  }

  // run_guarded degrades gracefully on a hang: statistics stay live, the
  // trace is flushed, and the structured diagnostic comes back instead of
  // an exception. With no emergency path and the watchdog off this is
  // exactly sim->run().
  const fault::GuardedOutcome outcome = fault::run_guarded(
      *sim, workload_name, ~Cycle{0}, options.emergency_checkpoint);
  auto result = outcome.result;
  result.cycles += prefix.cycles;
  result.instructions += prefix.instructions;
  core::Simulator& sim_ref = *sim;

  if (engine != nullptr) {
    for (const std::string& line : engine->log()) {
      std::fprintf(stderr, "# fault: %s\n", line.c_str());
    }
    std::fprintf(stderr, "# fault events: %llu injected, %llu skipped\n",
                 static_cast<unsigned long long>(engine->injected()),
                 static_cast<unsigned long long>(engine->skipped()));
  }

  std::fprintf(stderr,
               "# kernel=%s cores=%u sim_cycles=%llu instructions=%llu "
               "host_MIPS=%.2f\n",
               workload_name.c_str(), sim_ref.config().num_cores,
               static_cast<unsigned long long>(result.cycles),
               static_cast<unsigned long long>(result.instructions),
               result.mips);

  simfw::ReportFormat format = simfw::ReportFormat::kText;
  if (options.report == "csv") format = simfw::ReportFormat::kCsv;
  if (options.report == "json") format = simfw::ReportFormat::kJson;
  std::fputs(sim_ref.report(format).c_str(), stdout);

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", options.json_out.c_str());
      return 2;
    }
    out << core::run_summary_json(workload_name, sim_ref, result);
  }
  if (outcome.hung) {
    std::fprintf(stderr, "hang: %s\n%s\n", outcome.hang_what.c_str(),
                 outcome.hang_diagnostic.c_str());
    if (!outcome.emergency_checkpoint.empty()) {
      std::fprintf(stderr, "# emergency checkpoint written to %s\n",
                   outcome.emergency_checkpoint.c_str());
    }
    return kExitHang;
  }
  return result.all_exited ? kExitOk : kExitExecutionError;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--list-kernels") {
      list_kernels();
      return 0;
    }
    try {
      if (arg.rfind("--kernel=", 0) == 0) {
        options.kernel = value_of();
      } else if (arg.rfind("--program=", 0) == 0) {
        options.program_path = value_of();
      } else if (arg.rfind("--cores=", 0) == 0) {
        options.overrides.set("topo.cores", value_of());
      } else if (arg.rfind("--size=", 0) == 0) {
        options.size = std::stoull(value_of());
      } else if (arg.rfind("--seed=", 0) == 0) {
        options.seed = std::stoull(value_of());
      } else if (arg.rfind("--report=", 0) == 0) {
        options.report = value_of();
      } else if (arg.rfind("--json-out=", 0) == 0) {
        options.json_out = value_of();
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_basename = value_of();
      } else if (arg.rfind("--ffwd=", 0) == 0) {
        options.overrides.set("ckpt.ffwd_instructions", value_of());
      } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
        options.checkpoint_out = value_of();
      } else if (arg.rfind("--checkpoint-at=", 0) == 0) {
        options.checkpoint_at = std::stoull(value_of());
      } else if (arg.rfind("--checkpoint-in=", 0) == 0) {
        options.checkpoint_in = value_of();
      } else if (arg.rfind("--watchdog=", 0) == 0) {
        options.overrides.set("sim.watchdog_cycles", value_of());
      } else if (arg.rfind("--emergency-checkpoint=", 0) == 0) {
        options.emergency_checkpoint = value_of();
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage();
        return 2;
      } else {
        options.overrides.set_from_token(arg);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   error.what());
      return 2;
    }
  }
  try {
    return run(options);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
