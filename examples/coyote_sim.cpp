// coyote_sim — the command-line front end: pick a workload (an ELF64
// binary, a menu kernel or an assembly listing), a core count and any
// memory-hierarchy parameters, run the simulation and get statistics
// (text/CSV/JSON) plus an optional Paraver trace. This is the binary a
// downstream user runs; every option maps to one SimConfig knob via the
// library's config API (core/config_io.h), the same surface the sweep
// engine and every example consume.
//
//   coyote_sim program.elf --cores=64 --report=csv
//   coyote_sim --kernel=spmv_row_gather --cores=64
//       l2.size_kb=512 l2.banks_per_tile=4 l2.mapping=page-to-bank
//       noc.latency=8 mc.latency=150 --report=csv --trace=out/spmv
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/fastforward.h"
#include "common/error.h"
#include "core/config_io.h"
#include "core/run_summary.h"
#include "core/simulator.h"
#include "core/workload_info.h"
#include "fault/fault.h"
#include "fault/watchdog.h"
#include "isa/text_asm.h"
#include "kernels/program_menu.h"
#include "loader/elf.h"
#include "loader/workload.h"

using namespace coyote;

namespace {

struct Options {
  std::string program_path;  ///< assemble & run this .s file instead
  std::string elf_path;      ///< positional ELF argument (workload.elf)
  bool kernel_flag = false;  ///< --kernel was given explicitly
  std::string report = "text";
  std::string trace_basename;
  std::string json_out;        ///< versioned run summary destination
  std::string checkpoint_out;  ///< cut a checkpoint here mid-run
  std::string checkpoint_in;   ///< resume from this checkpoint instead
  Cycle checkpoint_at = 0;     ///< earliest cycle for the checkpoint cut
  /// On a watchdog/deadlock hang, write the last quiesce-point state here.
  std::string emergency_checkpoint;
  simfw::ConfigMap overrides;
};

void usage() {
  std::printf(
      "usage: coyote_sim [PROGRAM.elf | --kernel=K | PROGRAM.s] [--cores=N]\n"
      "                  [--size=S] [--seed=X] [--mesh=WxH]\n"
      "                  [--report=text|csv|json]\n"
      "                  [--json-out=FILE] [--trace=BASENAME]\n"
      "                  [--ffwd=N] [--checkpoint-out=FILE]\n"
      "                  [--checkpoint-at=CYCLE] [--checkpoint-in=FILE]\n"
      "                  [--watchdog=N] [--emergency-checkpoint=FILE]\n"
      "                  [--list-workloads] [key=value ...]\n"
      "\n"
      "The workload is one of: a positional statically linked RV64 ELF64\n"
      "executable (shorthand for workload.elf=FILE; syscalls — write, exit,\n"
      "brk, fstat, clock_gettime/gettimeofday — are served by the built-in\n"
      "proxy kernel, via ecall or an HTIF tohost symbol), a --kernel menu\n"
      "entry (workload.kernel=K, problem size/seed via --size/--seed), or a\n"
      "positional .s file assembled with the built-in assembler (GNU-style\n"
      "subset; see src/isa/text_asm.h) and run on every core.\n"
      "\n"
      "--json-out writes a versioned machine-readable run summary\n"
      "(schema_version %d: config, workload_source, result, guest_status,\n"
      "statistics) alongside the --report stream.\n"
      "\n"
      "--ffwd=N fast-forwards up to N instructions per core functionally\n"
      "(Spike-style, warming the caches) before detailed simulation;\n"
      "shorthand for ckpt.ffwd_instructions=N. --checkpoint-out cuts a\n"
      "checkpoint at the first quiesce point at or after --checkpoint-at\n"
      "cycles (default 0), then keeps running; --checkpoint-in resumes a\n"
      "saved run bit-identically (no workload/config arguments needed; an\n"
      "ELF checkpoint is refused if the binary on disk changed).\n"
      "\n"
      "--mesh=WxH is shorthand for noc.model=mesh topo.mesh=WxH: the\n"
      "contended 2D-mesh NoC (per-link bandwidth/buffering, XY routing,\n"
      "round-robin arbitration, credit backpressure) on a WxH grid that\n"
      "must seat every tile and memory controller (topo.mesh=auto derives\n"
      "the height). noc.link_bandwidth / noc.buffer_flits / noc.flit_bytes\n"
      "tune the links; the default noc.model=crossbar is unchanged.\n"
      "\n"
      "--cores=N is shorthand for topo.cores=N; --watchdog=N for\n"
      "sim.watchdog_cycles=N (declare a hang after N cycles with no retired\n"
      "instruction). On a hang the statistics and trace are still emitted,\n"
      "a structured diagnostic goes to stderr, --emergency-checkpoint=FILE\n"
      "receives the last quiesce-point state, and the exit code is 3.\n"
      "fault.* keys arm deterministic fault injection (see README).\n"
      "\n"
      "exit codes: 0 ok, 1 execution error, 2 config/usage error, 3 hang;\n"
      "64+(status mod 64) when the guest itself called exit(status != 0).\n"
      "\n"
      "kernels (see --list-workloads for descriptions):",
      core::kRunSummarySchemaVersion);
  for (const std::string& name : kernels::kernel_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%s", core::config_usage().c_str());
}

void list_workloads() {
  std::size_t width = 0;
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    width = std::max(width, info.name.size());
  }
  for (const kernels::KernelInfo& info : kernels::kernel_menu()) {
    std::printf("%-*s  %s\n", static_cast<int>(width), info.name.c_str(),
                info.description.c_str());
  }
  std::printf(
      "\nAny statically linked RV64 ELF64 executable also runs directly:\n"
      "  coyote_sim path/to/program.elf   (or workload.elf=PATH)\n");
}

/// Folds a finished run into the process exit code (see README):
/// harness codes 0-3 stay reserved; a guest exit(status != 0) maps into
/// the disjoint 64..127 band.
int exit_code_for(const core::RunResult& result) {
  if (!result.all_exited) return kExitExecutionError;
  const std::int64_t status = result.guest_status();
  if (status != 0) {
    return kExitGuestBase + static_cast<int>(status & 63);
  }
  return kExitOk;
}

int run(const Options& options) {
  std::unique_ptr<core::Simulator> sim;
  core::WorkloadInfo workload;
  core::RunResult prefix;  // cycles/instructions before the final run leg

  if (!options.checkpoint_in.empty()) {
    ckpt::CheckpointMeta meta;
    sim = ckpt::restore_checkpoint_file(options.checkpoint_in, &meta);
    workload.kind = meta.workload_kind;
    workload.ref = meta.workload_ref;
    workload.label = meta.workload;
    workload.content_hash = meta.workload_hash;
    if (meta.workload_kind == "elf") {
      // Mismatched-binary guard: restoring the machine state is always
      // self-contained, but silently continuing under a binary that was
      // rebuilt on disk invites confusion — refuse unless the image (the
      // positional path if given, else the recorded one) still matches.
      const std::string image_path =
          !options.elf_path.empty() ? options.elf_path : meta.workload_ref;
      if (!options.elf_path.empty() ||
          std::ifstream(image_path, std::ios::binary).good()) {
        loader::verify_elf_matches(image_path, meta.workload_hash);
      }
    } else if (!options.elf_path.empty()) {
      throw ConfigError(strfmt(
          "--checkpoint-in holds a %s workload ('%s'); it cannot resume "
          "under ELF image '%s'", meta.workload_kind.c_str(),
          meta.workload.c_str(), options.elf_path.c_str()));
    }
    std::fprintf(stderr, "# restored %s at cycle %llu (workload %s)\n",
                 options.checkpoint_in.c_str(),
                 static_cast<unsigned long long>(meta.cycle),
                 meta.workload.c_str());
  } else {
    core::SimConfig config = core::config_from_map(options.overrides);
    if (!options.trace_basename.empty()) {
      config.enable_trace = true;
      config.trace_basename = options.trace_basename;
    }
    sim = std::make_unique<core::Simulator>(config);

    if (!options.program_path.empty()) {
      std::ifstream in(options.program_path);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n",
                     options.program_path.c_str());
        return kExitConfigError;
      }
      std::ostringstream source;
      source << in.rdbuf();
      const std::string text = source.str();
      const auto assembled = isa::assemble_text(text);
      sim->load_program(assembled.base, assembled.words, assembled.base);
      workload.kind = "asm";
      workload.ref = options.program_path;
      workload.label = options.program_path;
      workload.content_hash = loader::fnv1a64(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    } else {
      workload = loader::load_workload(*sim);
    }

    if (sim->config().ffwd_instructions != 0) {
      const auto t0 = std::chrono::steady_clock::now();
      const ckpt::FfwdResult ffwd = ckpt::fast_forward(*sim);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::fprintf(stderr,
                   "# fast-forwarded %llu instructions in %.2f s "
                   "(%.1f host MIPS)%s%s\n",
                   static_cast<unsigned long long>(ffwd.instructions), secs,
                   secs > 0 ? static_cast<double>(ffwd.instructions) / secs /
                                  1e6
                            : 0.0,
                   ffwd.roi_reached ? " (stopped at ROI marker)" : "",
                   ffwd.all_exited ? " (all programs exited)" : "");
    }
  }

  // Arm deterministic fault injection when the config asks for it. The
  // engine implements the memhier hooks, so it must outlive the run.
  std::unique_ptr<fault::FaultEngine> engine;
  if (sim->config().fault.enable) {
    fault::FaultPlan plan = fault::FaultPlan::generate(sim->config());
    std::fprintf(stderr, "# fault plan (%zu events):\n%s",
                 plan.events.size(), plan.to_string().c_str());
    engine = std::make_unique<fault::FaultEngine>(*sim, std::move(plan));
    engine->arm();
  }

  if (!options.checkpoint_out.empty()) {
    const auto cut = sim->run_to_quiesce(options.checkpoint_at);
    prefix.cycles = cut.cycles;
    prefix.instructions = cut.instructions;
    if (cut.quiesced) {
      ckpt::write_checkpoint_file(*sim, workload, options.checkpoint_out);
      std::fprintf(stderr, "# checkpoint written to %s at cycle %llu\n",
                   options.checkpoint_out.c_str(),
                   static_cast<unsigned long long>(sim->scheduler().now()));
    } else {
      std::fprintf(stderr,
                   "# no checkpoint: the run ended before quiescing\n");
    }
  }

  // run_guarded degrades gracefully on a hang: statistics stay live, the
  // trace is flushed, and the structured diagnostic comes back instead of
  // an exception. With no emergency path and the watchdog off this is
  // exactly sim->run().
  const fault::GuardedOutcome outcome = fault::run_guarded(
      *sim, workload, ~Cycle{0}, options.emergency_checkpoint);
  auto result = outcome.result;
  result.cycles += prefix.cycles;
  result.instructions += prefix.instructions;
  core::Simulator& sim_ref = *sim;

  if (engine != nullptr) {
    for (const std::string& line : engine->log()) {
      std::fprintf(stderr, "# fault: %s\n", line.c_str());
    }
    std::fprintf(stderr, "# fault events: %llu injected, %llu skipped\n",
                 static_cast<unsigned long long>(engine->injected()),
                 static_cast<unsigned long long>(engine->skipped()));
  }

  std::fprintf(stderr,
               "# workload=%s cores=%u sim_cycles=%llu instructions=%llu "
               "host_MIPS=%.2f\n",
               workload.label.c_str(), sim_ref.config().num_cores,
               static_cast<unsigned long long>(result.cycles),
               static_cast<unsigned long long>(result.instructions),
               result.mips);

  // Guest console output (syscall write to stdout/stderr) goes to stdout
  // ahead of the statistics report, core by core.
  for (CoreId id = 0; id < sim_ref.num_cores(); ++id) {
    const std::string& console = sim_ref.core(id).hart().console();
    if (!console.empty()) std::fputs(console.c_str(), stdout);
  }

  simfw::ReportFormat format = simfw::ReportFormat::kText;
  if (options.report == "csv") format = simfw::ReportFormat::kCsv;
  if (options.report == "json") format = simfw::ReportFormat::kJson;
  std::fputs(sim_ref.report(format).c_str(), stdout);

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", options.json_out.c_str());
      return kExitConfigError;
    }
    out << core::run_summary_json(workload, sim_ref, result);
  }
  if (outcome.hung) {
    std::fprintf(stderr, "hang: %s\n%s\n", outcome.hang_what.c_str(),
                 outcome.hang_diagnostic.c_str());
    if (!outcome.emergency_checkpoint.empty()) {
      std::fprintf(stderr, "# emergency checkpoint written to %s\n",
                   outcome.emergency_checkpoint.c_str());
    }
    return kExitHang;
  }
  return exit_code_for(result);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--list-workloads" || arg == "--list-kernels") {
      if (arg == "--list-kernels") {
        std::fprintf(stderr,
                     "# --list-kernels is deprecated; use --list-workloads\n");
      }
      list_workloads();
      return 0;
    }
    try {
      if (arg.rfind("--kernel=", 0) == 0) {
        options.overrides.set("workload.kernel", value_of());
        options.kernel_flag = true;
      } else if (arg.rfind("--program=", 0) == 0) {
        std::fprintf(stderr,
                     "# --program=FILE is deprecated; pass the .s file as a "
                     "positional argument\n");
        options.program_path = value_of();
      } else if (arg.rfind("--cores=", 0) == 0) {
        options.overrides.set("topo.cores", value_of());
      } else if (arg.rfind("--size=", 0) == 0) {
        options.overrides.set("workload.size", value_of());
      } else if (arg.rfind("--seed=", 0) == 0) {
        options.overrides.set("workload.seed", value_of());
      } else if (arg.rfind("--mesh=", 0) == 0) {
        options.overrides.set("noc.model", "mesh");
        options.overrides.set("topo.mesh", value_of());
      } else if (arg.rfind("--report=", 0) == 0) {
        options.report = value_of();
      } else if (arg.rfind("--json-out=", 0) == 0) {
        options.json_out = value_of();
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_basename = value_of();
      } else if (arg.rfind("--ffwd=", 0) == 0) {
        options.overrides.set("ckpt.ffwd_instructions", value_of());
      } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
        options.checkpoint_out = value_of();
      } else if (arg.rfind("--checkpoint-at=", 0) == 0) {
        options.checkpoint_at = std::stoull(value_of());
      } else if (arg.rfind("--checkpoint-in=", 0) == 0) {
        options.checkpoint_in = value_of();
      } else if (arg.rfind("--watchdog=", 0) == 0) {
        options.overrides.set("sim.watchdog_cycles", value_of());
      } else if (arg.rfind("--emergency-checkpoint=", 0) == 0) {
        options.emergency_checkpoint = value_of();
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage();
        return 2;
      } else if (arg.find('=') != std::string::npos) {
        options.overrides.set_from_token(arg);
      } else if (ends_with(arg, ".s") || ends_with(arg, ".S")) {
        options.program_path = arg;  // positional assembly listing
      } else {
        // Positional workload: an ELF64 executable.
        if (!options.elf_path.empty()) {
          std::fprintf(stderr, "more than one positional program ('%s', '%s')\n",
                       options.elf_path.c_str(), arg.c_str());
          return 2;
        }
        options.elf_path = arg;
        options.overrides.set("workload.elf", arg);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bad argument '%s': %s\n", arg.c_str(),
                   error.what());
      return 2;
    }
  }
  if (options.kernel_flag && !options.elf_path.empty()) {
    std::fprintf(stderr,
                 "--kernel and a positional ELF are mutually exclusive; "
                 "pick one workload\n");
    return 2;
  }
  if (!options.program_path.empty() &&
      (options.kernel_flag || !options.elf_path.empty())) {
    std::fprintf(stderr,
                 "an assembly listing cannot be combined with --kernel or an "
                 "ELF workload\n");
    return 2;
  }
  try {
    return run(options);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
