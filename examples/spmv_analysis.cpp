// SpMV algorithm study with trace output — the software-developer workflow
// from paper §IV: "Leveraging Coyote, a software developer can quickly
// obtain an overview if the changes in algorithms or data exhibit the
// promising impact on the overall system performance."
//
// Runs the three vector SpMV variants plus the scalar baseline on the same
// matrix, prints a data-movement comparison, and emits a Paraver trace
// (.prv/.pcf/.row) for the winner so the access pattern can be inspected in
// the Paraver visualizer.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "kernels/kernels.h"

using namespace coyote;

namespace {

struct VariantResult {
  std::string name;
  Cycle cycles;
  std::uint64_t instructions;
  std::uint64_t l1d_misses;
  std::uint64_t mc_reads;
};

VariantResult run_variant(
    const std::string& name, const kernels::SpmvWorkload& workload,
    kernels::Program (*build)(const kernels::SpmvWorkload&, std::uint32_t),
    bool with_trace) {
  core::SimConfig config;
  config.num_cores = 16;
  config.cores_per_tile = 8;
  config.num_mcs = 2;
  config.fast_forward_idle = true;
  if (with_trace) {
    config.enable_trace = true;
    config.trace_basename = "spmv_" + name;
  }
  core::Simulator sim(config);
  workload.install(sim.memory());
  const auto program = build(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(2'000'000'000ULL);
  if (!result.all_exited) throw SimError("variant did not finish: " + name);

  // Validate against the host reference before trusting the numbers.
  const auto expected = workload.reference();
  const auto actual = workload.result(sim.memory());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::abs(expected[i] - actual[i]) > 1e-9) {
      throw SimError("variant produced wrong results: " + name);
    }
  }

  VariantResult out{name, result.cycles, result.instructions, 0, 0};
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    out.l1d_misses += sim.core(core).counters().l1d_misses;
  }
  for (McId mc = 0; mc < config.num_mcs; ++mc) {
    out.mc_reads += sim.mc(mc).stats().find_counter("reads").get();
  }
  if (with_trace) {
    std::printf("  trace written: %s.{prv,pcf,row} (%llu events)\n",
                config.trace_basename.c_str(),
                static_cast<unsigned long long>(sim.trace()->record_count()));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("SpMV algorithm comparison on 16 cores\n");
  for (const bool banded : {false, true}) {
    const auto matrix =
        banded ? kernels::CsrMatrix::banded(4096, 4096, 12, 128, 11)
               : kernels::CsrMatrix::random(4096, 4096, 12, 11);
    const auto workload = kernels::SpmvWorkload::generate(matrix, 12);
    std::printf("\n--- %s matrix (4096x4096, ~12 nnz/row, %zu nnz) ---\n",
                banded ? "banded/clustered" : "uniform random",
                workload.matrix.nnz());

    std::vector<VariantResult> results;
    results.push_back(run_variant("scalar", workload,
                                  kernels::build_spmv_scalar, false));
    results.push_back(run_variant("row_gather", workload,
                                  kernels::build_spmv_row_gather, false));
    results.push_back(
        run_variant("ell", workload, kernels::build_spmv_ell, false));
    results.push_back(run_variant("two_phase", workload,
                                  kernels::build_spmv_two_phase, false));

    std::printf("%-12s %12s %14s %12s %10s\n", "variant", "sim cycles",
                "instructions", "L1D misses", "mem reads");
    for (const VariantResult& result : results) {
      std::printf("%-12s %12llu %14llu %12llu %10llu\n", result.name.c_str(),
                  static_cast<unsigned long long>(result.cycles),
                  static_cast<unsigned long long>(result.instructions),
                  static_cast<unsigned long long>(result.l1d_misses),
                  static_cast<unsigned long long>(result.mc_reads));
    }

    if (!banded) {
      // Re-run the fastest vector variant with tracing for Paraver.
      const auto best = std::min_element(
          results.begin() + 1, results.end(),
          [](const auto& a, const auto& b) { return a.cycles < b.cycles; });
      std::printf("fastest vector variant: %s — capturing Paraver trace\n",
                  best->name.c_str());
      const auto build = best->name == "row_gather"
                             ? kernels::build_spmv_row_gather
                             : best->name == "ell" ? kernels::build_spmv_ell
                                                   : kernels::build_spmv_two_phase;
      run_variant(best->name, workload, build, /*with_trace=*/true);
    }
  }
  return 0;
}
