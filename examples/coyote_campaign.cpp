// coyote_campaign — the distributed face of coyote_sweep: shard one
// campaign's points across worker processes, on this host or over TCP
// across several, and emit the exact same JSON results table the
// in-process engine would. Three verbs:
//
//   serve   own the campaign: expand the spec, listen for workers, hand
//           out points, collect results, write the table.
//             coyote_campaign serve --listen=0.0.0.0:7700
//                 --kernel=spmv_row_gather l2.size_kb=128,256,512
//                 --state-dir=state --json-out=table.json
//
//   work    execute points for a broker somewhere else:
//             coyote_campaign work --connect=bighost:7700 --jobs=8
//
//   run     single-host convenience: loopback broker plus N forked
//           worker processes of this same binary, then the table.
//             coyote_campaign run --workers=4 --kernel=... axes...
//
// The table is byte-identical (host timings excluded) to
// `coyote_sweep --jobs=1` on the same spec, no matter how many workers
// serve it, die during it, or replay points from the memo store.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/broker.h"
#include "campaign/worker.h"
#include "common/error.h"
#include "core/config_io.h"
#include "sweep/sweep.h"

using namespace coyote;

namespace {

void usage() {
  std::printf(
      "usage: coyote_campaign serve --listen=HOST:PORT [SPEC...] [OPTIONS]\n"
      "       coyote_campaign work  --connect=HOST:PORT [--jobs=N] "
      "[--name=S]\n"
      "       coyote_campaign run   --workers=N [SPEC...] [OPTIONS]\n"
      "\n"
      "SPEC is coyote_sweep's campaign grammar: [PROGRAM.elf | --kernel=K]\n"
      "[--size=S] [--seed=X] and any mix of key=value overrides and\n"
      "key=v1,v2,... axes (cartesian product).\n"
      "\n"
      "serve/run options:\n"
      "  --max-cycles=C     per-point simulated-cycle budget\n"
      "  --retries=R        extra attempts per failing point (default 1)\n"
      "  --lease-ms=T       worker lease duration (default 10000); a point\n"
      "                     whose worker goes silent this long is requeued\n"
      "  --heartbeat-ms=T   lease-renewal cadence workers follow (2000)\n"
      "  --state-dir=DIR    per-point result records; a restarted broker\n"
      "                     resumes from them\n"
      "  --memo-dir=DIR     content-addressed result store shared across\n"
      "                     campaigns; points whose normalised config was\n"
      "                     already run anywhere replay instead of running\n"
      "  --json-out=FILE    results table destination (default stdout)\n"
      "  --progress=M       line | json | none (default line)\n"
      "\n"
      "The results table is byte-identical (host timings excluded) to\n"
      "`coyote_sweep --jobs=1` on the same SPEC, regardless of worker\n"
      "count, worker crashes, or memo replays.\n"
      "\n"
      "exit codes: 0 ok, 1 execution/point failure, 2 config/usage "
      "error.\n");
}

struct CommonArgs {
  sweep::SweepSpec spec;
  campaign::Broker::Options broker;
  std::string listen;
  std::string connect;
  std::string name;
  unsigned jobs = 1;
  unsigned workers = 2;
  std::uint32_t retries = 1;
  std::string json_out;
};

void split_hostport(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos) {
    throw ConfigError("expected HOST:PORT, got '" + text + "'");
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(std::stoul(text.substr(colon + 1)));
  if (host.empty()) host = "127.0.0.1";
}

CommonArgs parse_args(int argc, char** argv) {
  CommonArgs args;
  args.broker.progress = sweep::ProgressMode::kLine;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      args.spec.kernel = value_of();
    } else if (arg.rfind("--size=", 0) == 0) {
      args.spec.size = std::stoull(value_of());
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.spec.seed = std::stoull(value_of());
    } else if (arg.rfind("--listen=", 0) == 0) {
      args.listen = value_of();
    } else if (arg.rfind("--connect=", 0) == 0) {
      args.connect = value_of();
    } else if (arg.rfind("--name=", 0) == 0) {
      args.name = value_of();
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      args.workers = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      args.broker.max_cycles = std::stoull(value_of());
    } else if (arg.rfind("--retries=", 0) == 0) {
      args.retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.rfind("--lease-ms=", 0) == 0) {
      args.broker.lease = std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--heartbeat-ms=", 0) == 0) {
      args.broker.heartbeat =
          std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      args.broker.state_dir = value_of();
    } else if (arg.rfind("--memo-dir=", 0) == 0) {
      args.broker.memo_dir = value_of();
    } else if (arg.rfind("--json-out=", 0) == 0) {
      args.json_out = value_of();
    } else if (arg.rfind("--progress=", 0) == 0) {
      args.broker.progress = sweep::progress_mode_from_string(value_of());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      std::exit(kExitConfigError);
    } else if (arg.find('=') == std::string::npos) {
      args.spec.base.set("workload.elf", arg);
      args.spec.kernel = arg;
    } else {
      sweep::SweepAxis axis = sweep::axis_from_token(arg);
      if (axis.values.size() == 1) {
        args.spec.base.set(axis.key, axis.values.front());
      } else {
        args.spec.axes.push_back(std::move(axis));
      }
    }
  }
  args.broker.max_attempts = args.retries + 1;
  return args;
}

int emit_report(const sweep::SweepReport& report, const std::string& json_out,
                bool progress) {
  const std::string table = report.to_json();
  if (json_out.empty()) {
    std::fputs(table.c_str(), stdout);
  } else {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_out.c_str());
      return kExitExecutionError;
    }
    out << table;
    if (progress) {
      std::fprintf(stderr, "[campaign] wrote %s\n", json_out.c_str());
    }
  }
  return report.num_failed() == 0 ? 0 : 1;
}

int cmd_serve(CommonArgs args) {
  if (args.listen.empty()) {
    std::fprintf(stderr, "serve: --listen=HOST:PORT is required\n");
    return kExitConfigError;
  }
  std::string host;
  std::uint16_t port = 0;
  split_hostport(args.listen, host, port);
  const bool progress = args.broker.progress != sweep::ProgressMode::kNone;
  campaign::Broker broker(args.spec, std::move(args.broker));
  const std::uint16_t bound = broker.listen(host, port);
  if (progress) {
    std::fprintf(stderr,
                 "[campaign] %zu points (%zu already resolved); listening "
                 "on %s:%u\n",
                 broker.num_points(), broker.num_done(), host.c_str(),
                 bound);
  }
  const sweep::SweepReport report = broker.serve();
  return emit_report(report, args.json_out, progress);
}

int cmd_work(const CommonArgs& args) {
  if (args.connect.empty()) {
    std::fprintf(stderr, "work: --connect=HOST:PORT is required\n");
    return kExitConfigError;
  }
  campaign::Worker::Options options;
  split_hostport(args.connect, options.host, options.port);
  options.name = args.name;
  options.jobs = args.jobs;
  campaign::Worker worker(std::move(options));
  const std::size_t executed = worker.run();
  std::fprintf(stderr, "[campaign] worker done, %zu point%s executed\n",
               executed, executed == 1 ? "" : "s");
  return 0;
}

// run: loopback broker in this process plus N forked `work` subprocesses
// of this same binary — real process isolation (a worker crash cannot
// take the broker down) with single-command ergonomics.
int cmd_run(CommonArgs args) {
  const std::string json_out = args.json_out;
  const bool progress = args.broker.progress != sweep::ProgressMode::kNone;
  campaign::Broker broker(args.spec, std::move(args.broker));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  if (progress) {
    std::fprintf(stderr,
                 "[campaign] %zu points (%zu already resolved), %u worker "
                 "processes on 127.0.0.1:%u\n",
                 broker.num_points(), broker.num_done(), args.workers, port);
  }
  const std::string connect = "--connect=127.0.0.1:" + std::to_string(port);
  std::vector<pid_t> children;
  for (unsigned w = 0; w < args.workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      break;
    }
    if (pid == 0) {
      const std::string name = "--name=worker" + std::to_string(w);
      const char* child_argv[] = {"/proc/self/exe", "work", connect.c_str(),
                                  name.c_str(), "--jobs=1", nullptr};
      ::execv(child_argv[0], const_cast<char* const*>(child_argv));
      std::fprintf(stderr, "exec failed: %s\n", std::strerror(errno));
      ::_exit(127);
    }
    children.push_back(pid);
  }
  if (children.empty()) {
    std::fprintf(stderr, "run: no worker process could be started\n");
    return kExitExecutionError;
  }
  const sweep::SweepReport report = broker.serve();
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) == pid &&
        (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      // The campaign already completed (serve returned a full table), so a
      // misbehaving worker is worth a warning, not a failed run.
      std::fprintf(stderr, "[campaign] worker pid %d exited abnormally\n",
                   static_cast<int>(pid));
    }
  }
  return emit_report(report, json_out, progress);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return kExitConfigError;
  }
  const std::string verb = argv[1];
  try {
    if (verb == "--help" || verb == "-h") {
      usage();
      return 0;
    }
    const CommonArgs args = parse_args(argc, argv);
    if (verb == "serve") return cmd_serve(args);
    if (verb == "work") return cmd_work(args);
    if (verb == "run") return cmd_run(args);
    std::fprintf(stderr, "unknown verb '%s'\n", verb.c_str());
    usage();
    return kExitConfigError;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
