// coyote_campaign — the distributed face of coyote_sweep: shard one
// campaign's points across worker processes, on this host or over TCP
// across several, and emit the exact same JSON results table the
// in-process engine would. Three verbs:
//
//   serve   own the campaign: expand the spec, listen for workers, hand
//           out points, collect results, write the table.
//             coyote_campaign serve --listen=0.0.0.0:7700
//                 --kernel=spmv_row_gather l2.size_kb=128,256,512
//                 --state-dir=state --json-out=table.json
//
//   work    execute points for a broker somewhere else:
//             coyote_campaign work --connect=bighost:7700 --jobs=8
//
//   run     single-host convenience: loopback broker plus N forked
//           worker processes of this same binary, then the table.
//             coyote_campaign run --workers=4 --kernel=... axes...
//
//   chaos   deterministic TCP fault injector for drills: sits between
//           workers and a broker, corrupting the wire per a seed.
//             coyote_campaign chaos --listen=:7701 --connect=host:7700
//                 --chaos-seed=42 --reset-pmil=5 --bitflip-pmil=5
//
// The table is byte-identical (host timings excluded) to
// `coyote_sweep --jobs=1` on the same spec, no matter how many workers
// serve it, die during it, or replay points from the memo store.
//
// SIGTERM/SIGINT ask a serve/run broker to drain gracefully: stop
// assigning, wait --drain-grace-ms for in-flight points, persist state,
// tell the fleet, exit 4. Restarting the same command with the same
// --state-dir resumes where the drain left off.
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/broker.h"
#include "campaign/chaosproxy.h"
#include "campaign/worker.h"
#include "common/error.h"
#include "core/config_io.h"
#include "sweep/sweep.h"

using namespace coyote;

namespace {

void usage() {
  std::printf(
      "usage: coyote_campaign serve --listen=HOST:PORT [SPEC...] [OPTIONS]\n"
      "       coyote_campaign work  --connect=HOST:PORT [--jobs=N] "
      "[--name=S]\n"
      "       coyote_campaign run   --workers=N [SPEC...] [OPTIONS]\n"
      "       coyote_campaign chaos --listen=HOST:PORT --connect=HOST:PORT\n"
      "                             [--chaos-seed=N] [--RATE-pmil=P ...]\n"
      "\n"
      "SPEC is coyote_sweep's campaign grammar: [PROGRAM.elf | --kernel=K]\n"
      "[--size=S] [--seed=X] and any mix of key=value overrides and\n"
      "key=v1,v2,... axes (cartesian product).\n"
      "\n"
      "serve/run options:\n"
      "  --max-cycles=C     per-point simulated-cycle budget\n"
      "  --retries=R        extra attempts per failing point (default 1)\n"
      "  --lease-ms=T       worker lease duration (default 10000); a point\n"
      "                     whose worker goes silent this long is requeued\n"
      "  --heartbeat-ms=T   lease-renewal cadence workers follow (2000)\n"
      "  --state-dir=DIR    per-point result records; a restarted broker\n"
      "                     resumes from them\n"
      "  --memo-dir=DIR     content-addressed result store shared across\n"
      "                     campaigns; points whose normalised config was\n"
      "                     already run anywhere replay instead of running\n"
      "  --json-out=FILE    results table destination (default stdout)\n"
      "  --progress=M       line | json | none (default line)\n"
      "  --drain-grace-ms=T on SIGTERM/SIGINT, wait this long for in-flight\n"
      "                     points before exiting 4 (default 5000)\n"
      "  --max-conns=N      concurrent-connection cap; excess accepts park\n"
      "                     in the listen backlog (default 256)\n"
      "  --quarantine-strikes=N  refuse an address after N protocol errors\n"
      "                     for --quarantine-cooldown-ms; 0 disables (4)\n"
      "  --quarantine-cooldown-ms=T  quarantine duration (default 10000)\n"
      "  --idle-timeout-ms=T drop a silent worker connection after this\n"
      "                     long; 0 = 3x the lease (default 0)\n"
      "\n"
      "work options:\n"
      "  --reconnect-ms=T   keep re-dialing a lost broker (with jittered\n"
      "                     exponential backoff) for this long before\n"
      "                     giving up (default 30000; 0 = no reconnect)\n"
      "\n"
      "chaos options (rates are per forwarded chunk, parts-per-thousand):\n"
      "  --chaos-seed=N     RNG seed driving every fault decision (1)\n"
      "  --delay-pmil=P --delay-max-ms=T --reset-pmil=P\n"
      "  --partition-pmil=P --truncate-pmil=P --duplicate-pmil=P\n"
      "  --bitflip-pmil=P\n"
      "\n"
      "The results table is byte-identical (host timings excluded) to\n"
      "`coyote_sweep --jobs=1` on the same SPEC, regardless of worker\n"
      "count, worker crashes, memo replays, or wire corruption (corrupt\n"
      "frames are detected by checksum and the connection is retried).\n"
      "\n"
      "exit codes: 0 ok, 1 execution/point/worker failure, 2 config/usage\n"
      "error, 4 drained before completion (SIGTERM/SIGINT; state saved,\n"
      "restart to resume).\n");
}

struct CommonArgs {
  sweep::SweepSpec spec;
  campaign::Broker::Options broker;
  campaign::ChaosProxy::Options chaos;
  std::string listen;
  std::string connect;
  std::string name;
  unsigned jobs = 1;
  unsigned workers = 2;
  std::uint32_t retries = 1;
  std::chrono::milliseconds reconnect{30'000};
  std::string json_out;
};

// Signal plumbing: the first SIGTERM/SIGINT asks the broker to drain (or
// the chaos proxy to stop) — both are one atomic store, so async-signal
// safe. A second signal gives up on grace and exits immediately.
std::atomic<campaign::Broker*> g_broker{nullptr};
std::atomic<campaign::ChaosProxy*> g_proxy{nullptr};
std::atomic<int> g_signal_count{0};

void on_signal(int) {
  if (g_signal_count.fetch_add(1) > 0) ::_exit(kExitDrained);
  if (campaign::Broker* broker = g_broker.load()) broker->request_drain();
  if (campaign::ChaosProxy* proxy = g_proxy.load()) proxy->stop();
}

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void split_hostport(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos) {
    throw ConfigError("expected HOST:PORT, got '" + text + "'");
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(std::stoul(text.substr(colon + 1)));
  if (host.empty()) host = "127.0.0.1";
}

CommonArgs parse_args(int argc, char** argv) {
  CommonArgs args;
  args.broker.progress = sweep::ProgressMode::kLine;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      args.spec.kernel = value_of();
    } else if (arg.rfind("--size=", 0) == 0) {
      args.spec.size = std::stoull(value_of());
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.spec.seed = std::stoull(value_of());
    } else if (arg.rfind("--listen=", 0) == 0) {
      args.listen = value_of();
    } else if (arg.rfind("--connect=", 0) == 0) {
      args.connect = value_of();
    } else if (arg.rfind("--name=", 0) == 0) {
      args.name = value_of();
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      args.workers = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      args.broker.max_cycles = std::stoull(value_of());
    } else if (arg.rfind("--retries=", 0) == 0) {
      args.retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.rfind("--lease-ms=", 0) == 0) {
      args.broker.lease = std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--heartbeat-ms=", 0) == 0) {
      args.broker.heartbeat =
          std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      args.broker.state_dir = value_of();
    } else if (arg.rfind("--memo-dir=", 0) == 0) {
      args.broker.memo_dir = value_of();
    } else if (arg.rfind("--json-out=", 0) == 0) {
      args.json_out = value_of();
    } else if (arg.rfind("--progress=", 0) == 0) {
      args.broker.progress = sweep::progress_mode_from_string(value_of());
    } else if (arg.rfind("--drain-grace-ms=", 0) == 0) {
      args.broker.drain_grace =
          std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--max-conns=", 0) == 0) {
      args.broker.max_conns = std::stoul(value_of());
    } else if (arg.rfind("--quarantine-strikes=", 0) == 0) {
      args.broker.quarantine_strikes =
          static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--quarantine-cooldown-ms=", 0) == 0) {
      args.broker.quarantine_cooldown =
          std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      args.broker.idle_timeout =
          std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--reconnect-ms=", 0) == 0) {
      args.reconnect = std::chrono::milliseconds(std::stoll(value_of()));
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      args.chaos.seed = std::stoull(value_of());
    } else if (arg.rfind("--delay-pmil=", 0) == 0) {
      args.chaos.delay_pmil = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--delay-max-ms=", 0) == 0) {
      args.chaos.delay_max_ms = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--reset-pmil=", 0) == 0) {
      args.chaos.reset_pmil = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--partition-pmil=", 0) == 0) {
      args.chaos.partition_pmil =
          static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--truncate-pmil=", 0) == 0) {
      args.chaos.truncate_pmil = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--duplicate-pmil=", 0) == 0) {
      args.chaos.duplicate_pmil =
          static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--bitflip-pmil=", 0) == 0) {
      args.chaos.bitflip_pmil = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      std::exit(kExitConfigError);
    } else if (arg.find('=') == std::string::npos) {
      args.spec.base.set("workload.elf", arg);
      args.spec.kernel = arg;
    } else {
      sweep::SweepAxis axis = sweep::axis_from_token(arg);
      if (axis.values.size() == 1) {
        args.spec.base.set(axis.key, axis.values.front());
      } else {
        args.spec.axes.push_back(std::move(axis));
      }
    }
  }
  args.broker.max_attempts = args.retries + 1;
  return args;
}

int emit_report(const sweep::SweepReport& report, const std::string& json_out,
                bool progress) {
  const std::string table = report.to_json();
  if (json_out.empty()) {
    std::fputs(table.c_str(), stdout);
  } else {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_out.c_str());
      return kExitExecutionError;
    }
    out << table;
    if (progress) {
      std::fprintf(stderr, "[campaign] wrote %s\n", json_out.c_str());
    }
  }
  return report.num_failed() == 0 ? 0 : 1;
}

int cmd_serve(CommonArgs args) {
  if (args.listen.empty()) {
    std::fprintf(stderr, "serve: --listen=HOST:PORT is required\n");
    return kExitConfigError;
  }
  std::string host;
  std::uint16_t port = 0;
  split_hostport(args.listen, host, port);
  const bool progress = args.broker.progress != sweep::ProgressMode::kNone;
  const std::string state_dir = args.broker.state_dir;
  campaign::Broker broker(args.spec, std::move(args.broker));
  const std::uint16_t bound = broker.listen(host, port);
  if (progress) {
    std::fprintf(stderr,
                 "[campaign] %zu points (%zu already resolved); listening "
                 "on %s:%u\n",
                 broker.num_points(), broker.num_done(), host.c_str(),
                 bound);
  }
  g_broker.store(&broker);
  install_signal_handlers();
  const sweep::SweepReport report = broker.serve();
  g_broker.store(nullptr);
  if (broker.drained_incomplete()) {
    // No table: a partial one would be mistaken for results. State (if
    // --state-dir) holds everything finished; rerunning resumes.
    std::fprintf(stderr,
                 "[campaign] drained with %zu/%zu points done%s\n",
                 broker.num_done(), broker.num_points(),
                 state_dir.empty()
                     ? "; no --state-dir, undone work is lost"
                     : ("; restart with --state-dir=" + state_dir +
                        " to resume")
                           .c_str());
    return kExitDrained;
  }
  return emit_report(report, args.json_out, progress);
}

int cmd_work(const CommonArgs& args) {
  if (args.connect.empty()) {
    std::fprintf(stderr, "work: --connect=HOST:PORT is required\n");
    return kExitConfigError;
  }
  campaign::Worker::Options options;
  split_hostport(args.connect, options.host, options.port);
  options.name = args.name;
  options.jobs = args.jobs;
  options.reconnect_window = args.reconnect;
  campaign::Worker worker(std::move(options));
  const std::size_t executed = worker.run();
  std::fprintf(stderr, "[campaign] worker done, %zu point%s executed\n",
               executed, executed == 1 ? "" : "s");
  return 0;
}

// run: loopback broker in this process plus N forked `work` subprocesses
// of this same binary — real process isolation (a worker crash cannot
// take the broker down) with single-command ergonomics.
int cmd_run(CommonArgs args) {
  const std::string json_out = args.json_out;
  const bool progress = args.broker.progress != sweep::ProgressMode::kNone;
  campaign::Broker broker(args.spec, std::move(args.broker));
  const std::uint16_t port = broker.listen("127.0.0.1", 0);
  if (progress) {
    std::fprintf(stderr,
                 "[campaign] %zu points (%zu already resolved), %u worker "
                 "processes on 127.0.0.1:%u\n",
                 broker.num_points(), broker.num_done(), args.workers, port);
  }
  const std::string connect = "--connect=127.0.0.1:" + std::to_string(port);
  const std::string reconnect =
      "--reconnect-ms=" + std::to_string(args.reconnect.count());
  std::vector<pid_t> children;
  for (unsigned w = 0; w < args.workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      break;
    }
    if (pid == 0) {
      const std::string name = "--name=worker" + std::to_string(w);
      const char* child_argv[] = {"/proc/self/exe",  "work",
                                  connect.c_str(),   name.c_str(),
                                  "--jobs=1",        reconnect.c_str(),
                                  nullptr};
      ::execv(child_argv[0], const_cast<char* const*>(child_argv));
      std::fprintf(stderr, "exec failed: %s\n", std::strerror(errno));
      ::_exit(127);
    }
    children.push_back(pid);
  }
  if (children.empty()) {
    std::fprintf(stderr, "run: no worker process could be started\n");
    return kExitExecutionError;
  }
  g_broker.store(&broker);
  install_signal_handlers();
  const sweep::SweepReport report = broker.serve();
  g_broker.store(nullptr);
  if (broker.drained_incomplete()) {
    // Forward the drain: the broker is gone, so standing-by workers would
    // only burn their reconnect windows against a closed port.
    for (const pid_t pid : children) ::kill(pid, SIGTERM);
    for (const pid_t pid : children) ::waitpid(pid, nullptr, 0);
    std::fprintf(stderr, "[campaign] drained with %zu/%zu points done\n",
                 broker.num_done(), broker.num_points());
    return kExitDrained;
  }
  // Reap every worker and remember the first failure: the table decides
  // first (a failed point is exit 1 even if workers exited 0), but a full
  // table with a crashed worker still surfaces that worker's status —
  // silent worker deaths are how fleets rot.
  int worker_status = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) continue;
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    }
    if (code != 0) {
      std::fprintf(stderr,
                   "[campaign] worker pid %d exited with status %d\n",
                   static_cast<int>(pid), code);
      if (worker_status == 0) worker_status = code;
    }
  }
  const int table_status = emit_report(report, json_out, progress);
  return table_status != 0 ? table_status : worker_status;
}

// chaos: a standalone wire-fault injector for operational drills — point
// workers at it instead of the broker and watch the fleet shrug.
int cmd_chaos(CommonArgs args) {
  if (args.listen.empty() || args.connect.empty()) {
    std::fprintf(stderr,
                 "chaos: --listen=HOST:PORT and --connect=HOST:PORT are "
                 "required\n");
    return kExitConfigError;
  }
  std::string listen_host;
  std::uint16_t listen_port = 0;
  split_hostport(args.listen, listen_host, listen_port);
  split_hostport(args.connect, args.chaos.upstream_host,
                 args.chaos.upstream_port);
  campaign::ChaosProxy proxy(args.chaos);
  const std::uint16_t bound = proxy.listen(listen_host, listen_port);
  std::fprintf(stderr,
               "[chaos] forwarding %s:%u -> %s:%u, seed %llu\n",
               listen_host.c_str(), bound, args.chaos.upstream_host.c_str(),
               args.chaos.upstream_port,
               static_cast<unsigned long long>(args.chaos.seed));
  g_proxy.store(&proxy);
  install_signal_handlers();
  proxy.run();
  g_proxy.store(nullptr);
  const auto stats = proxy.stats();
  std::fprintf(stderr,
               "[chaos] %llu connections, %llu chunks, %llu bytes; "
               "%llu delays, %llu resets, %llu partitions, %llu "
               "truncations, %llu duplications, %llu bitflips\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.chunks),
               static_cast<unsigned long long>(stats.bytes),
               static_cast<unsigned long long>(stats.delays),
               static_cast<unsigned long long>(stats.resets),
               static_cast<unsigned long long>(stats.partitions),
               static_cast<unsigned long long>(stats.truncations),
               static_cast<unsigned long long>(stats.duplications),
               static_cast<unsigned long long>(stats.bitflips));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return kExitConfigError;
  }
  const std::string verb = argv[1];
  try {
    if (verb == "--help" || verb == "-h") {
      usage();
      return 0;
    }
    const CommonArgs args = parse_args(argc, argv);
    if (verb == "serve") return cmd_serve(args);
    if (verb == "work") return cmd_work(args);
    if (verb == "run") return cmd_run(args);
    if (verb == "chaos") return cmd_chaos(args);
    std::fprintf(stderr, "unknown verb '%s'\n", verb.c_str());
    usage();
    return kExitConfigError;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
