// Design-space exploration — the workflow Coyote exists for (paper §III:
// "fast and flexible tool for HPC design space exploration"). Sweeps a grid
// of memory-hierarchy design points (L2 capacity, bank count, mapping
// policy, NoC latency) against the SpMV workload and ranks them by
// simulated execution time, printing the kind of first-order comparison
// table an architect would use to pick candidates for FPGA emulation.
//
// The grid is expressed as a sweep::SweepSpec (base config + cartesian
// axes + one explicit extra point) and evaluated by the parallel
// SweepEngine: every design point runs as an independent Simulator on a
// host worker thread, and the ranking below is bit-identical no matter how
// many threads the host offers.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "sweep/sweep.h"

using namespace coyote;

namespace {

/// Harvests the hierarchy metrics the comparison table ranks on.
void collect_metrics(core::Simulator& sim, sweep::PointResult& point) {
  std::uint64_t l1_acc = 0;
  std::uint64_t l1_miss = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    l1_acc += sim.core(core).counters().l1d_accesses;
    l1_miss += sim.core(core).counters().l1d_misses;
  }
  std::uint64_t l2_acc = 0;
  std::uint64_t l2_miss = 0;
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    l2_acc += sim.l2_bank(bank).stats().find_counter("accesses").get();
    l2_miss += sim.l2_bank(bank).stats().find_counter("misses").get();
  }
  std::uint64_t mc_reads = 0;
  for (McId mc = 0; mc < sim.config().num_mcs; ++mc) {
    mc_reads += sim.mc(mc).stats().find_counter("reads").get();
  }
  point.metrics.emplace_back(
      "l1d_miss_rate", l1_acc ? static_cast<double>(l1_miss) / l1_acc : 0.0);
  point.metrics.emplace_back(
      "l2_miss_rate", l2_acc ? static_cast<double>(l2_miss) / l2_acc : 0.0);
  point.metrics.emplace_back("mc_reads", static_cast<double>(mc_reads));
}

std::string point_name(const sweep::PointResult& point) {
  std::string name = point.config.get("l2.size_kb") + "KB x" +
                     point.config.get("l2.banks_per_tile") + " " +
                     point.config.get("l2.mapping");
  if (point.config.get("noc.latency") != "4") name += " slow-noc";
  return name;
}

double metric(const sweep::PointResult& point, const std::string& name) {
  for (const auto& [key, value] : point.metrics) {
    if (key == name) return value;
  }
  return 0.0;
}

}  // namespace

int main() {
  // One representative sparse workload, regenerated per point from the
  // spec seed (deterministic), evaluated across the whole grid.
  sweep::SweepSpec spec;
  spec.kernel = "spmv_row_gather";
  spec.size = 8192;
  spec.seed = 2024;
  spec.base.set("topo.cores", "32");
  spec.base.set("topo.cores_per_tile", "8");
  spec.base.set("mc.count", "2");
  spec.base.set("sim.fast_forward", "true");
  spec.axes = {
      {"l2.size_kb", {"128", "256", "512"}},
      {"l2.banks_per_tile", {"1", "2", "4"}},
      {"l2.mapping", {"set-interleave", "page-to-bank"}},
  };
  simfw::ConfigMap slow_noc;
  slow_noc.set("l2.size_kb", "256");
  slow_noc.set("l2.banks_per_tile", "2");
  slow_noc.set("l2.mapping", "set-interleave");
  slow_noc.set("noc.latency", "32");
  spec.extra_points.push_back(slow_noc);

  sweep::SweepEngine::Options options;
  options.jobs = 0;  // all host cores
  options.max_cycles = 2'000'000'000ULL;
  options.progress = sweep::ProgressMode::kLine;
  options.collect = collect_metrics;

  const auto points = spec.expand();
  std::printf("evaluating %zu design points (32-core SpMV, 8192x8192, "
              "16 nnz/row) in parallel...\n\n",
              points.size());
  const sweep::SweepReport report = sweep::SweepEngine(options).run(spec);

  std::vector<const sweep::PointResult*> ranked;
  for (const auto& point : report.points) {
    if (point.ok) {
      ranked.push_back(&point);
    } else {
      std::fprintf(stderr, "design point %zu failed: %s\n", point.index,
                   point.error.c_str());
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const sweep::PointResult* a, const sweep::PointResult* b) {
              return a->run.cycles < b->run.cycles;
            });

  std::printf("%-38s %12s %10s %10s %10s\n", "design point", "sim cycles",
              "L1D miss", "L2 miss", "mem reads");
  for (const sweep::PointResult* point : ranked) {
    std::printf("%-38s %12llu %9.1f%% %9.1f%% %10llu\n",
                point_name(*point).c_str(),
                static_cast<unsigned long long>(point->run.cycles),
                100.0 * metric(*point, "l1d_miss_rate"),
                100.0 * metric(*point, "l2_miss_rate"),
                static_cast<unsigned long long>(metric(*point, "mc_reads")));
  }
  if (!ranked.empty()) {
    std::printf("\nbest candidate: %s (%llu cycles)\n",
                point_name(*ranked.front()).c_str(),
                static_cast<unsigned long long>(ranked.front()->run.cycles));
  }
  return report.num_failed() == 0 ? 0 : 1;
}
