// Design-space exploration — the workflow Coyote exists for (paper §III:
// "fast and flexible tool for HPC design space exploration"). Sweeps a grid
// of memory-hierarchy design points (L2 capacity, bank count, mapping
// policy, NoC latency) against the SpMV workload and ranks them by
// simulated execution time, printing the kind of first-order comparison
// table an architect would use to pick candidates for FPGA emulation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "kernels/kernels.h"

using namespace coyote;

namespace {

struct DesignPoint {
  std::string name;
  std::uint64_t l2_bank_kb;
  std::uint32_t banks_per_tile;
  memhier::MappingPolicy mapping;
  Cycle noc_latency;
};

struct Outcome {
  DesignPoint point;
  Cycle cycles;
  double l1d_miss_rate;
  double l2_miss_rate;
  std::uint64_t mc_reads;
};

Outcome evaluate(const DesignPoint& point,
                 const kernels::SpmvWorkload& workload) {
  core::SimConfig config;
  config.num_cores = 32;
  config.cores_per_tile = 8;
  config.l2_banks_per_tile = point.banks_per_tile;
  config.num_mcs = 2;
  config.fast_forward_idle = true;
  config.l2_bank.size_bytes = point.l2_bank_kb * 1024;
  config.mapping = point.mapping;
  config.noc.crossbar_latency = point.noc_latency;

  core::Simulator sim(config);
  workload.install(sim.memory());
  const auto program = kernels::build_spmv_row_gather(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  const auto result = sim.run(2'000'000'000ULL);
  if (!result.all_exited) {
    throw SimError("design point did not finish: " + point.name);
  }

  Outcome outcome{point, result.cycles, 0.0, 0.0, 0};
  std::uint64_t l1_acc = 0;
  std::uint64_t l1_miss = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    l1_acc += sim.core(core).counters().l1d_accesses;
    l1_miss += sim.core(core).counters().l1d_misses;
  }
  outcome.l1d_miss_rate = l1_acc ? static_cast<double>(l1_miss) / l1_acc : 0;
  std::uint64_t l2_acc = 0;
  std::uint64_t l2_miss = 0;
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    l2_acc += sim.l2_bank(bank).stats().find_counter("accesses").get();
    l2_miss += sim.l2_bank(bank).stats().find_counter("misses").get();
  }
  outcome.l2_miss_rate = l2_acc ? static_cast<double>(l2_miss) / l2_acc : 0;
  for (McId mc = 0; mc < config.num_mcs; ++mc) {
    outcome.mc_reads += sim.mc(mc).stats().find_counter("reads").get();
  }
  return outcome;
}

}  // namespace

int main() {
  // One representative sparse workload, reused across all design points.
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 2024), 7);

  std::vector<DesignPoint> grid;
  for (const std::uint64_t size_kb : {128ULL, 256ULL, 512ULL}) {
    for (const std::uint32_t banks : {1u, 2u, 4u}) {
      for (const auto policy : {memhier::MappingPolicy::kSetInterleave,
                                memhier::MappingPolicy::kPageToBank}) {
        grid.push_back(DesignPoint{
            std::to_string(size_kb) + "KB x" + std::to_string(banks) + " " +
                memhier::mapping_policy_name(policy),
            size_kb, banks, policy, /*noc_latency=*/4});
      }
    }
  }
  grid.push_back(DesignPoint{"256KB x2 set-interleave slow-noc", 256, 2,
                             memhier::MappingPolicy::kSetInterleave, 32});

  std::printf("evaluating %zu design points (32-core SpMV, 8192x8192, "
              "16 nnz/row)...\n\n",
              grid.size());
  std::vector<Outcome> outcomes;
  outcomes.reserve(grid.size());
  for (const DesignPoint& point : grid) {
    outcomes.push_back(evaluate(point, workload));
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) {
              return a.cycles < b.cycles;
            });

  std::printf("%-38s %12s %10s %10s %10s\n", "design point", "sim cycles",
              "L1D miss", "L2 miss", "mem reads");
  for (const Outcome& outcome : outcomes) {
    std::printf("%-38s %12llu %9.1f%% %9.1f%% %10llu\n",
                outcome.point.name.c_str(),
                static_cast<unsigned long long>(outcome.cycles),
                100.0 * outcome.l1d_miss_rate, 100.0 * outcome.l2_miss_rate,
                static_cast<unsigned long long>(outcome.mc_reads));
  }
  std::printf("\nbest candidate: %s (%llu cycles)\n",
              outcomes.front().point.name.c_str(),
              static_cast<unsigned long long>(outcomes.front().cycles));
  return 0;
}
