// coyote_sweep — the design-space-exploration front end: run one kernel
// across a whole grid of machine configurations in parallel and emit a
// versioned JSON results table. A sweep spec is a base config plus axes:
// any `key=value` token fixes a knob for every point, any `key=v1,v2,v3`
// token sweeps it, and the grid is the cartesian product of the axes.
//
//   coyote_sweep --kernel=spmv_row_gather --jobs=8 topo.cores=32
//       l2.size_kb=128,256,512 l2.banks_per_tile=1,2,4
//       l2.mapping=set-interleave,page-to-bank --json-out=sweep.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "kernels/program_menu.h"
#include "sweep/sweep.h"

using namespace coyote;

namespace {

void usage() {
  std::printf(
      "usage: coyote_sweep [PROGRAM.elf | --kernel=K] [--size=S] [--seed=X]\n"
      "                    [--jobs=N] [--max-cycles=C] [--retries=R]\n"
      "                    [--json-out=FILE] [--resume-dir=DIR]\n"
      "                    [--checkpoint-interval=C] [--quiet] [--dry-run]\n"
      "                    [--progress=line|json|none]\n"
      "                    [key=value | key=v1,v2,...] ...\n"
      "\n"
      "Runs one workload — a positional RV64 ELF64 executable (shorthand\n"
      "for workload.elf=FILE) or menu kernel K — on every point of the\n"
      "config grid spanned by the comma-valued axes (cartesian product),\n"
      "N points at a time on host threads. workload.* keys are sweepable\n"
      "like any other (e.g. workload.elf=a.elf,b.elf compares binaries).\n"
      "Results are reported in SweepSpec::expand() order no matter\n"
      "how the host schedules them; a failing point is retried R extra\n"
      "times, then recorded in the table without stopping the campaign.\n"
      "The JSON table (schema_version %d) goes to --json-out or stdout;\n"
      "a human-readable ranking goes to stderr.\n"
      "\n"
      "  --jobs=N        worker threads (default: all host cores)\n"
      "  --max-cycles=C  per-point simulated-cycle budget (default: none)\n"
      "  --retries=R     extra attempts per failing point (default 1)\n"
      "  --resume-dir=DIR  record per-point results and periodic state\n"
      "                  checkpoints in DIR; re-running the same campaign\n"
      "                  with the same DIR skips completed points and\n"
      "                  continues interrupted ones bit-identically\n"
      "  --checkpoint-interval=C  simulated cycles between per-point\n"
      "                  checkpoint cuts (default 5000000; 0 = only record\n"
      "                  completed points)\n"
      "  --quiet         no progress line, no ranking table\n"
      "  --progress=M    per-point completion reporting on stderr: 'line'\n"
      "                  (default; the overwriting done/total ticker),\n"
      "                  'json' (one machine-readable event per point, for\n"
      "                  monitoring long campaigns), or 'none'\n"
      "  --dry-run       expand and validate the campaign without running\n"
      "                  it: print the axes and every point's normalised\n"
      "                  config hash (the campaign memo key), flag invalid\n"
      "                  points and hash collisions, then exit\n"
      "\n"
      "Engine tokens (consumed before axis parsing, not config keys):\n"
      "  sweep.point_timeout_s=S  per-point wall-clock budget in seconds;\n"
      "                  a point over budget is retried with the budget\n"
      "                  doubled each attempt, then recorded with\n"
      "                  status \"timeout\" (default 0 = no timeout)\n"
      "  sweep.max_retries=R      same as --retries=R\n"
      "\n"
      "Resilience campaigns: set fault.enable=true and sweep fault.seed,\n"
      "e.g. fault.seed=1,2,3,...; each point is classified masked/sdc/due\n"
      "against a shared golden run (see README).\n"
      "\n"
      "exit codes: 0 ok, 1 execution/point failure, 2 config/usage error.\n"
      "\n"
      "kernels:",
      sweep::kSweepSchemaVersion);
  for (const std::string& name : kernels::kernel_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%s", core::config_usage().c_str());
}

void print_ranking(const sweep::SweepReport& report,
                   const std::vector<sweep::SweepAxis>& axes) {
  // Label each point by its swept coordinates only — the fixed part of the
  // config is the same everywhere and would drown the table.
  const auto label = [&axes](const sweep::PointResult& point) {
    std::string text;
    for (const sweep::SweepAxis& axis : axes) {
      if (axis.values.size() < 2) continue;
      if (!text.empty()) text += " ";
      text += axis.key + "=" + point.config.get(axis.key);
    }
    if (text.empty()) text = "point " + std::to_string(point.index);
    return text;
  };
  std::vector<const sweep::PointResult*> ranked;
  for (const auto& point : report.points) {
    if (point.ok) ranked.push_back(&point);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const sweep::PointResult* a, const sweep::PointResult* b) {
              return a->run.cycles < b->run.cycles;
            });
  std::fprintf(stderr, "\n%-52s %14s %14s\n", "design point (swept keys)",
               "sim cycles", "instructions");
  for (const sweep::PointResult* point : ranked) {
    std::fprintf(stderr, "%-52s %14llu %14llu\n", label(*point).c_str(),
                 static_cast<unsigned long long>(point->run.cycles),
                 static_cast<unsigned long long>(point->run.instructions));
  }
  for (const auto& point : report.points) {
    if (!point.ok) {
      std::fprintf(stderr, "%-52s FAILED after %u attempts: %s\n",
                   label(point).c_str(), point.attempts, point.error.c_str());
    }
  }
}

// --dry-run: expand and validate the campaign without simulating anything.
// Each line names a point, its normalised-config hash (the key the campaign
// memo store files it under) and its swept coordinates, so operators can
// audit what a campaign will visit — and spot the two failure modes that
// are otherwise silent: points whose config does not parse, and distinct
// design points whose hashes collide (which would make the memo store
// treat them as one; collisions are detected and rejected at load time,
// this just names them up front).
int dry_run_report(const sweep::SweepSpec& spec) {
  const sweep::SweepSpec expanded = spec.with_workload_keys();
  const auto points = expanded.expand();
  std::printf("[sweep] dry run: %zu points, workload=%s\n", points.size(),
              spec.kernel.c_str());
  for (const sweep::SweepAxis& axis : spec.axes) {
    std::string values;
    for (const std::string& value : axis.values) {
      if (!values.empty()) values += ",";
      values += value;
    }
    std::printf("[sweep] axis %s = %s\n", axis.key.c_str(), values.c_str());
  }
  const auto label = [&spec](const simfw::ConfigMap& point) {
    std::string text;
    for (const sweep::SweepAxis& axis : spec.axes) {
      if (axis.values.size() < 2) continue;
      if (!text.empty()) text += " ";
      text += axis.key + "=" + point.get(axis.key);
    }
    return text;
  };
  std::map<std::uint64_t, std::string> seen;  // hash -> canonical text
  std::size_t invalid = 0;
  std::size_t collisions = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    try {
      const simfw::ConfigMap norm =
          core::config_to_map(core::config_from_map(points[i]));
      const std::uint64_t hash = core::config_map_hash(norm);
      std::printf("point %-6zu %s  %s\n", i,
                  core::config_hash_hex(hash).c_str(),
                  label(points[i]).c_str());
      const std::string text = core::canonical_config_text(norm);
      const auto [it, inserted] = seen.emplace(hash, text);
      if (!inserted && it->second != text) {
        ++collisions;
        std::fprintf(stderr,
                     "[sweep] WARNING: point %zu collides with an earlier "
                     "point under hash %s — the campaign memo store will "
                     "treat the later one as a verification miss\n",
                     i, core::config_hash_hex(hash).c_str());
      }
    } catch (const std::exception& e) {
      ++invalid;
      std::printf("point %-6zu %-16s  INVALID: %s\n", i, "-", e.what());
    }
  }
  if (invalid > 0) {
    std::fprintf(stderr, "[sweep] dry run: %zu invalid point%s\n", invalid,
                 invalid == 1 ? "" : "s");
  }
  if (collisions > 0) {
    std::fprintf(stderr, "[sweep] dry run: %zu hash collision%s\n",
                 collisions, collisions == 1 ? "" : "s");
  }
  return invalid > 0 ? kExitConfigError : 0;
}

int run(int argc, char** argv) {
  sweep::SweepSpec spec;
  sweep::SweepEngine::Options options;
  options.progress = sweep::ProgressMode::kLine;
  std::uint32_t retries = 1;
  std::string json_out;
  bool quiet = false;
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.rfind("--kernel=", 0) == 0) {
      spec.kernel = value_of();
    } else if (arg.rfind("--size=", 0) == 0) {
      spec.size = std::stoull(value_of());
    } else if (arg.rfind("--seed=", 0) == 0) {
      spec.seed = std::stoull(value_of());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      options.max_cycles = std::stoull(value_of());
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value_of();
    } else if (arg.rfind("--resume-dir=", 0) == 0) {
      options.resume_dir = value_of();
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      options.checkpoint_interval = std::stoull(value_of());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg.rfind("--progress=", 0) == 0) {
      options.progress = sweep::progress_mode_from_string(value_of());
    } else if (arg.rfind("--cores=", 0) == 0) {
      // Familiar coyote_sim spelling; topo.cores is the canonical key.
      spec.axes.push_back(
          sweep::axis_from_token("topo.cores=" + value_of()));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return kExitConfigError;
    } else if (arg.rfind("sweep.point_timeout_s=", 0) == 0) {
      // Engine knobs, not simulator config keys: intercept before axis
      // parsing so they never reach config_from_map.
      options.point_timeout_s = std::stod(value_of());
    } else if (arg.rfind("sweep.max_retries=", 0) == 0) {
      retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.find('=') == std::string::npos) {
      // Positional workload: an ELF64 executable shared by every point.
      spec.base.set("workload.elf", arg);
      spec.kernel = arg;  // campaign label in the report/progress line
    } else {
      sweep::SweepAxis axis = sweep::axis_from_token(arg);
      if (axis.values.size() == 1) {
        spec.base.set(axis.key, axis.values.front());
      } else {
        spec.axes.push_back(std::move(axis));
      }
    }
  }
  options.max_attempts = retries + 1;
  if (quiet) options.progress = sweep::ProgressMode::kNone;

  if (dry_run) return dry_run_report(spec);

  const auto points = spec.expand();
  if (!quiet) {
    std::fprintf(stderr, "[sweep] %zu points, kernel=%s, jobs=%u\n",
                 points.size(), spec.kernel.c_str(),
                 options.jobs ? options.jobs
                              : std::thread::hardware_concurrency());
  }
  const sweep::SweepEngine engine(options);
  const sweep::SweepReport report = engine.run(spec);

  if (!quiet) print_ranking(report, spec.axes);
  std::size_t masked = 0, sdc = 0, due = 0;
  for (const auto& point : report.points) {
    masked += point.fault_outcome == "masked" ? 1 : 0;
    sdc += point.fault_outcome == "sdc" ? 1 : 0;
    due += point.fault_outcome == "due" ? 1 : 0;
  }
  if (!quiet && masked + sdc + due > 0) {
    std::fprintf(stderr,
                 "[sweep] resilience: %zu masked, %zu sdc, %zu due\n",
                 masked, sdc, due);
  }
  const std::string table = report.to_json();
  if (json_out.empty()) {
    std::fputs(table.c_str(), stdout);
  } else {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_out.c_str());
      return kExitExecutionError;
    }
    out << table;
    if (!quiet) {
      std::fprintf(stderr, "[sweep] wrote %s\n", json_out.c_str());
    }
  }
  return report.num_failed() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
