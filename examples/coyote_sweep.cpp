// coyote_sweep — the design-space-exploration front end: run one kernel
// across a whole grid of machine configurations in parallel and emit a
// versioned JSON results table. A sweep spec is a base config plus axes:
// any `key=value` token fixes a knob for every point, any `key=v1,v2,v3`
// token sweeps it, and the grid is the cartesian product of the axes.
//
//   coyote_sweep --kernel=spmv_row_gather --jobs=8 topo.cores=32
//       l2.size_kb=128,256,512 l2.banks_per_tile=1,2,4
//       l2.mapping=set-interleave,page-to-bank --json-out=sweep.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "kernels/program_menu.h"
#include "sweep/sweep.h"

using namespace coyote;

namespace {

void usage() {
  std::printf(
      "usage: coyote_sweep [PROGRAM.elf | --kernel=K] [--size=S] [--seed=X]\n"
      "                    [--jobs=N] [--max-cycles=C] [--retries=R]\n"
      "                    [--json-out=FILE] [--resume-dir=DIR]\n"
      "                    [--checkpoint-interval=C] [--quiet]\n"
      "                    [key=value | key=v1,v2,...] ...\n"
      "\n"
      "Runs one workload — a positional RV64 ELF64 executable (shorthand\n"
      "for workload.elf=FILE) or menu kernel K — on every point of the\n"
      "config grid spanned by the comma-valued axes (cartesian product),\n"
      "N points at a time on host threads. workload.* keys are sweepable\n"
      "like any other (e.g. workload.elf=a.elf,b.elf compares binaries).\n"
      "Results are reported in SweepSpec::expand() order no matter\n"
      "how the host schedules them; a failing point is retried R extra\n"
      "times, then recorded in the table without stopping the campaign.\n"
      "The JSON table (schema_version %d) goes to --json-out or stdout;\n"
      "a human-readable ranking goes to stderr.\n"
      "\n"
      "  --jobs=N        worker threads (default: all host cores)\n"
      "  --max-cycles=C  per-point simulated-cycle budget (default: none)\n"
      "  --retries=R     extra attempts per failing point (default 1)\n"
      "  --resume-dir=DIR  record per-point results and periodic state\n"
      "                  checkpoints in DIR; re-running the same campaign\n"
      "                  with the same DIR skips completed points and\n"
      "                  continues interrupted ones bit-identically\n"
      "  --checkpoint-interval=C  simulated cycles between per-point\n"
      "                  checkpoint cuts (default 5000000; 0 = only record\n"
      "                  completed points)\n"
      "  --quiet         no progress line, no ranking table\n"
      "\n"
      "Engine tokens (consumed before axis parsing, not config keys):\n"
      "  sweep.point_timeout_s=S  per-point wall-clock budget in seconds;\n"
      "                  a point over budget is retried with the budget\n"
      "                  doubled each attempt, then recorded with\n"
      "                  status \"timeout\" (default 0 = no timeout)\n"
      "  sweep.max_retries=R      same as --retries=R\n"
      "\n"
      "Resilience campaigns: set fault.enable=true and sweep fault.seed,\n"
      "e.g. fault.seed=1,2,3,...; each point is classified masked/sdc/due\n"
      "against a shared golden run (see README).\n"
      "\n"
      "exit codes: 0 ok, 1 execution/point failure, 2 config/usage error.\n"
      "\n"
      "kernels:",
      sweep::kSweepSchemaVersion);
  for (const std::string& name : kernels::kernel_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%s", core::config_usage().c_str());
}

void print_ranking(const sweep::SweepReport& report,
                   const std::vector<sweep::SweepAxis>& axes) {
  // Label each point by its swept coordinates only — the fixed part of the
  // config is the same everywhere and would drown the table.
  const auto label = [&axes](const sweep::PointResult& point) {
    std::string text;
    for (const sweep::SweepAxis& axis : axes) {
      if (axis.values.size() < 2) continue;
      if (!text.empty()) text += " ";
      text += axis.key + "=" + point.config.get(axis.key);
    }
    if (text.empty()) text = "point " + std::to_string(point.index);
    return text;
  };
  std::vector<const sweep::PointResult*> ranked;
  for (const auto& point : report.points) {
    if (point.ok) ranked.push_back(&point);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const sweep::PointResult* a, const sweep::PointResult* b) {
              return a->run.cycles < b->run.cycles;
            });
  std::fprintf(stderr, "\n%-52s %14s %14s\n", "design point (swept keys)",
               "sim cycles", "instructions");
  for (const sweep::PointResult* point : ranked) {
    std::fprintf(stderr, "%-52s %14llu %14llu\n", label(*point).c_str(),
                 static_cast<unsigned long long>(point->run.cycles),
                 static_cast<unsigned long long>(point->run.instructions));
  }
  for (const auto& point : report.points) {
    if (!point.ok) {
      std::fprintf(stderr, "%-52s FAILED after %u attempts: %s\n",
                   label(point).c_str(), point.attempts, point.error.c_str());
    }
  }
}

int run(int argc, char** argv) {
  sweep::SweepSpec spec;
  sweep::SweepEngine::Options options;
  options.progress = true;
  std::uint32_t retries = 1;
  std::string json_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.rfind("--kernel=", 0) == 0) {
      spec.kernel = value_of();
    } else if (arg.rfind("--size=", 0) == 0) {
      spec.size = std::stoull(value_of());
    } else if (arg.rfind("--seed=", 0) == 0) {
      spec.seed = std::stoull(value_of());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<unsigned>(std::stoul(value_of()));
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      options.max_cycles = std::stoull(value_of());
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value_of();
    } else if (arg.rfind("--resume-dir=", 0) == 0) {
      options.resume_dir = value_of();
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      options.checkpoint_interval = std::stoull(value_of());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--cores=", 0) == 0) {
      // Familiar coyote_sim spelling; topo.cores is the canonical key.
      spec.axes.push_back(
          sweep::axis_from_token("topo.cores=" + value_of()));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return kExitConfigError;
    } else if (arg.rfind("sweep.point_timeout_s=", 0) == 0) {
      // Engine knobs, not simulator config keys: intercept before axis
      // parsing so they never reach config_from_map.
      options.point_timeout_s = std::stod(value_of());
    } else if (arg.rfind("sweep.max_retries=", 0) == 0) {
      retries = static_cast<std::uint32_t>(std::stoul(value_of()));
    } else if (arg.find('=') == std::string::npos) {
      // Positional workload: an ELF64 executable shared by every point.
      spec.base.set("workload.elf", arg);
      spec.kernel = arg;  // campaign label in the report/progress line
    } else {
      sweep::SweepAxis axis = sweep::axis_from_token(arg);
      if (axis.values.size() == 1) {
        spec.base.set(axis.key, axis.values.front());
      } else {
        spec.axes.push_back(std::move(axis));
      }
    }
  }
  options.max_attempts = retries + 1;
  if (quiet) options.progress = false;

  const auto points = spec.expand();
  if (!quiet) {
    std::fprintf(stderr, "[sweep] %zu points, kernel=%s, jobs=%u\n",
                 points.size(), spec.kernel.c_str(),
                 options.jobs ? options.jobs
                              : std::thread::hardware_concurrency());
  }
  const sweep::SweepEngine engine(options);
  const sweep::SweepReport report = engine.run(spec);

  if (!quiet) print_ranking(report, spec.axes);
  std::size_t masked = 0, sdc = 0, due = 0;
  for (const auto& point : report.points) {
    masked += point.fault_outcome == "masked" ? 1 : 0;
    sdc += point.fault_outcome == "sdc" ? 1 : 0;
    due += point.fault_outcome == "due" ? 1 : 0;
  }
  if (!quiet && masked + sdc + due > 0) {
    std::fprintf(stderr,
                 "[sweep] resilience: %zu masked, %zu sdc, %zu due\n",
                 masked, sdc, due);
  }
  const std::string table = report.to_json();
  if (json_out.empty()) {
    std::fputs(table.c_str(), stdout);
  } else {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_out.c_str());
      return kExitExecutionError;
    }
    out << table;
    if (!quiet) {
      std::fprintf(stderr, "[sweep] wrote %s\n", json_out.c_str());
    }
  }
  return report.num_failed() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "config error: %s\n", error.what());
    return kExitConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitExecutionError;
  }
}
