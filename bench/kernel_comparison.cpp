// Ablation A5 — vector vs scalar data movement (paper §III-A: the kernels
// "form a basis to study the behavior of memory accesses under dense and
// sparse workloads"). For every kernel in the suite, reports instructions,
// simulated cycles, and L1D traffic. The vector kernels retire far fewer
// instructions for the same work while generating the same (or more, for
// gather-based SpMV) memory-system traffic — the data-movement focus of the
// tool in one table.
#include "bench_util.h"

namespace coyote::bench {
namespace {

constexpr std::uint32_t kCores = 16;

template <typename Workload>
void run_and_report(
    benchmark::State& state, const Workload& workload,
    kernels::Program (*build)(const Workload&, std::uint32_t)) {
  for (auto _ : state) {
    core::SimConfig config = machine(kCores);
    config.fast_forward_idle = true;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) { return build(workload, n); });
    report(state, run);
    state.counters["l2_accesses"] = static_cast<double>(run.l2_accesses);
    state.counters["mc_reads"] = static_cast<double>(run.mc_reads);
  }
}

const kernels::MatmulWorkload& matmul() {
  static const auto workload = kernels::MatmulWorkload::generate(96, 71);
  return workload;
}
const kernels::SpmvWorkload& spmv() {
  static const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 12, 72), 73);
  return workload;
}
const kernels::StencilWorkload& stencil() {
  static const auto workload =
      kernels::StencilWorkload::generate(1 << 20, 1, 74);
  return workload;
}

void BM_Kernel_MatmulScalar(benchmark::State& state) {
  run_and_report(state, matmul(), kernels::build_matmul_scalar);
}
void BM_Kernel_MatmulVector(benchmark::State& state) {
  run_and_report(state, matmul(), kernels::build_matmul_vector);
}
void BM_Kernel_SpmvScalar(benchmark::State& state) {
  run_and_report(state, spmv(), kernels::build_spmv_scalar);
}
void BM_Kernel_SpmvRowGather(benchmark::State& state) {
  run_and_report(state, spmv(), kernels::build_spmv_row_gather);
}
void BM_Kernel_SpmvEll(benchmark::State& state) {
  run_and_report(state, spmv(), kernels::build_spmv_ell);
}
void BM_Kernel_SpmvTwoPhase(benchmark::State& state) {
  run_and_report(state, spmv(), kernels::build_spmv_two_phase);
}
void BM_Kernel_StencilScalar(benchmark::State& state) {
  run_and_report(state, stencil(), kernels::build_stencil_scalar);
}
void BM_Kernel_StencilVector(benchmark::State& state) {
  run_and_report(state, stencil(), kernels::build_stencil_vector);
}
const kernels::Blas1Workload& blas1() {
  static const auto workload = kernels::Blas1Workload::generate(1 << 19, 75);
  return workload;
}
const kernels::FftWorkload& fft() {
  static const auto workload = kernels::FftWorkload::generate(1 << 14, 76);
  return workload;
}
const kernels::HistogramWorkload& histogram() {
  static const auto workload =
      kernels::HistogramWorkload::generate(1 << 17, 4096, 0.0, 77);
  return workload;
}
void BM_Kernel_Axpy(benchmark::State& state) {
  run_and_report(state, blas1(), kernels::build_axpy_vector);
}
void BM_Kernel_Dot(benchmark::State& state) {
  run_and_report(state, blas1(), kernels::build_dot_vector);
}
void BM_Kernel_Fft(benchmark::State& state) {
  run_and_report(state, fft(), kernels::build_fft_scalar);
}
void BM_Kernel_Histogram(benchmark::State& state) {
  run_and_report(state, histogram(), kernels::build_histogram_atomic);
}
const kernels::Stencil2dWorkload& stencil2d() {
  static const auto workload =
      kernels::Stencil2dWorkload::generate(512, 512, 78);
  return workload;
}
void BM_Kernel_Stencil2d(benchmark::State& state) {
  run_and_report(state, stencil2d(), kernels::build_stencil2d_vector);
}

BENCHMARK(BM_Kernel_MatmulScalar)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_MatmulVector)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_SpmvScalar)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_SpmvRowGather)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_SpmvEll)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_SpmvTwoPhase)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_StencilScalar)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_StencilVector)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_Axpy)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_Dot)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_Fft)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_Histogram)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Kernel_Stencil2d)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
