// Microbenchmarks of the substrate layers: instruction decode/encode, the
// cache tag array, the event scheduler, sparse memory, and raw functional
// hart stepping. These establish where a Coyote cycle's host time goes and
// are regression guards for the hot paths behind Figure 3.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/decoder.h"
#include "iss/dbbcache.h"
#include "iss/hart.h"
#include "iss/memory.h"
#include "memhier/cache_array.h"
#include "simfw/scheduler.h"

namespace coyote {
namespace {

void BM_Decode(benchmark::State& state) {
  // A realistic mix of words taken from an assembled kernel-style loop.
  isa::Assembler as(0x1000);
  as.li(isa::s1, 0x123456789AB);
  as.ld(isa::a1, 8, isa::s1);
  as.fld(isa::fa0, 0, isa::s1);
  as.fmadd_d(isa::fa0, isa::fa1, isa::fa2, isa::fa0);
  as.add(isa::a2, isa::a1, isa::s1);
  as.vsetvli(isa::a3, isa::a2, isa::Sew::kE64, isa::Lmul::kM4);
  as.vle64(isa::v8, isa::s1);
  as.vfmacc_vf(isa::v8, isa::fa0, isa::v16);
  auto loop = as.here();
  as.bne(isa::a1, isa::a2, loop);
  const auto words = as.finish();
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[index]));
    index = (index + 1) % words.size();
  }
}
BENCHMARK(BM_Decode);

void BM_OperandExtraction(benchmark::State& state) {
  const auto inst = isa::decode(0x02A58513);  // addi a0, a1, 42
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::source_regs(inst));
    benchmark::DoNotOptimize(isa::dest_regs(inst));
  }
}
BENCHMARK(BM_OperandExtraction);

void BM_DecodeDispatch(benchmark::State& state) {
  // Per-instruction front-end cost of the two dispatch paths over a
  // straight-line 32-op block: Arg(0) is the reference interpreter (sparse
  // memory fetch + decode + operand extraction every instruction), Arg(1)
  // the decoded-block cache continuation (iss.dbb_cache=on) as it runs in
  // CoreModel::step_one_dbb.
  iss::SparseMemory memory;
  isa::Assembler as(0x1000);
  const auto top = as.here();
  for (int i = 0; i < 31; ++i) as.add(isa::a2, isa::a1, isa::a2);
  as.j(top);
  const auto words = as.finish();
  memory.poke_words(0x1000, words);
  const Addr end = 0x1000 + 4 * static_cast<Addr>(words.size());

  Addr pc = 0x1000;
  if (state.range(0) == 1) {
    iss::DbbCache cache(64);
    const iss::DbbBlock* block = nullptr;
    std::uint32_t index = 0;
    for (auto _ : state) {
      if (block == nullptr || index >= block->ops.size() ||
          block->ops[index].pc != pc ||
          *block->gen_ptr != block->gen) {
        block = cache.acquire(pc, memory);
        index = 0;
      }
      const iss::DbbMicroOp& op = block->ops[index++];
      benchmark::DoNotOptimize(op.inst.op);
      benchmark::DoNotOptimize(op.num_srcs + op.num_dsts);
      pc += 4;
      if (pc == end) pc = 0x1000;
    }
  } else {
    for (auto _ : state) {
      const auto inst = isa::decode(memory.read<std::uint32_t>(pc));
      benchmark::DoNotOptimize(inst.op);
      benchmark::DoNotOptimize(isa::source_regs(inst).size() +
                               isa::dest_regs(inst).size());
      pc += 4;
      if (pc == end) pc = 0x1000;
    }
  }
  state.counters["instr_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeDispatch)->Arg(0)->Arg(1);

void BM_DbbInvalidate(benchmark::State& state) {
  // Cost of one self-modifying-code round trip: a store into the code page
  // (the O(1) write-generation bump every store pays) followed by the
  // acquire that detects the stale block, retires it and re-decodes.
  iss::SparseMemory memory;
  isa::Assembler as(0x1000);
  const auto top = as.here();
  for (int i = 0; i < 7; ++i) as.addi(isa::a1, isa::a1, 1);
  as.j(top);
  const auto words = as.finish();
  memory.poke_words(0x1000, words);
  iss::DbbCache cache(64);
  benchmark::DoNotOptimize(cache.acquire(0x1000, memory));
  for (auto _ : state) {
    memory.write<std::uint32_t>(0x1000, words[0]);  // gen bump
    benchmark::DoNotOptimize(cache.acquire(0x1000, memory));
  }
  state.counters["invalidations_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DbbInvalidate);

void BM_AssembleKernel(benchmark::State& state) {
  for (auto _ : state) {
    isa::Assembler as(0x1000);
    as.li(isa::s1, 0x10000000);
    as.li(isa::a2, 64);
    auto loop = as.here();
    as.fld(isa::fa0, 0, isa::s1);
    as.fmadd_d(isa::fa1, isa::fa0, isa::fa0, isa::fa1);
    as.addi(isa::s1, isa::s1, 8);
    as.addi(isa::a2, isa::a2, -1);
    as.bnez(isa::a2, loop);
    benchmark::DoNotOptimize(as.finish());
  }
}
BENCHMARK(BM_AssembleKernel);

void BM_CacheArrayHit(benchmark::State& state) {
  memhier::CacheArray cache({32 * 1024, 8, 64});
  for (Addr line = 0; line < 32 * 1024; line += 64) cache.insert(line, false);
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(line));
    line = (line + 64) & (32 * 1024 - 1);
  }
}
BENCHMARK(BM_CacheArrayHit);

void BM_CacheArrayMissInsert(benchmark::State& state) {
  memhier::CacheArray cache({32 * 1024, 8, 64});
  Addr line = 0;
  for (auto _ : state) {
    if (!cache.lookup(line)) {
      benchmark::DoNotOptimize(cache.insert(line, false));
    }
    line += 64;  // endless cold stream
  }
}
BENCHMARK(BM_CacheArrayMissInsert);

void BM_SchedulerEventChurn(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  simfw::Scheduler sched;
  std::uint64_t sink = 0;
  // Keep `depth` events in flight; each firing schedules its successor.
  // The callbacks live in a fixed-size vector so self-references stay valid.
  std::vector<std::function<void()>> callbacks(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    callbacks[i] = [&sched, &sink, &self = callbacks[i]]() {
      ++sink;
      sched.schedule(1 + (sink % 7), simfw::SchedPriority::kTick, self);
    };
    sched.schedule(1 + i, simfw::SchedPriority::kTick, callbacks[i]);
  }
  for (auto _ : state) {
    sched.advance_to(sched.now() + 1);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_SchedulerEventChurn)->Arg(8)->Arg(256)->Arg(4096);

void BM_SchedulerScheduleFire(benchmark::State& state) {
  // Calendar-queue throughput with `pending` events resident: schedule one
  // port-delivery event (the size the memory hierarchy sends) and fire one,
  // while a large standing population stresses bucket occupancy. Delays of
  // 1 + (i % 997) make most inserts land beyond the 512-cycle ring, so the
  // overflow heap and its migration path are measured too.
  const auto pending = static_cast<std::size_t>(state.range(0));
  simfw::Scheduler sched;
  std::uint64_t sink = 0;
  // Self-rescheduling population: every fired event immediately schedules
  // its successor, so exactly `pending` events stay resident throughout.
  // The callable is a 16-byte trivially-destructible functor — the shape a
  // port delivery takes through the pooled in-place path.
  struct Event {
    simfw::Scheduler* sched;
    std::uint64_t* sink;
    void operator()() const {
      ++*sink;
      sched->schedule(1 + (*sink % 997), simfw::SchedPriority::kPortDelivery,
                      Event{sched, sink});
    }
  };
  for (std::size_t i = 0; i < pending; ++i) {
    sched.schedule(1 + (i % 997), simfw::SchedPriority::kPortDelivery,
                   Event{&sched, &sink});
  }
  const std::uint64_t fired_before = sched.events_fired();
  for (auto _ : state) {
    sched.advance_to(sched.next_event_cycle());
    benchmark::DoNotOptimize(sink);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(sched.events_fired() - fired_before),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerScheduleFire)->Arg(1000)->Arg(100000);

void BM_SchedulerIdleAdvance(benchmark::State& state) {
  // Cost of hopping simulated time across an empty stretch to a far event —
  // the all-cores-stalled pattern the Orchestrator's idle path leans on.
  simfw::Scheduler sched;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sched.schedule(140, simfw::SchedPriority::kPortDelivery,
                   [&sink] { ++sink; });
    sched.advance_to(sched.next_event_cycle());
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_SchedulerIdleAdvance);

void BM_SparseMemoryRead(benchmark::State& state) {
  iss::SparseMemory memory;
  for (Addr addr = 0; addr < (1 << 20); addr += 4096) {
    memory.write<std::uint64_t>(addr, addr);
  }
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memory.read<std::uint64_t>(rng.below(1 << 20) & ~7ULL));
  }
}
BENCHMARK(BM_SparseMemoryRead);

void BM_HartStepScalarLoop(benchmark::State& state) {
  // Raw functional stepping rate of the ISS on a tight dependency-free
  // loop — the upper bound on per-core simulation speed.
  iss::SparseMemory memory;
  iss::Hart hart(0, &memory, {});
  isa::Assembler as(0x1000);
  auto loop = as.here();
  as.addi(isa::a1, isa::a1, 1);
  as.addi(isa::a2, isa::a2, 3);
  as.xor_(isa::a3, isa::a1, isa::a2);
  as.j(loop);
  memory.poke_words(0x1000, as.finish());
  hart.reset(0x1000);
  iss::StepInfo info;
  for (auto _ : state) {
    const auto inst = isa::decode(memory.read<std::uint32_t>(hart.pc()));
    info.clear();
    hart.execute(inst, info);
  }
  state.counters["instr_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HartStepScalarLoop);

void BM_HartStepVectorFma(benchmark::State& state) {
  iss::SparseMemory memory;
  iss::Hart hart(0, &memory, {512});
  isa::Assembler as(0x1000);
  as.li(isa::a0, 32);
  as.vsetvli(isa::a1, isa::a0, isa::Sew::kE64, isa::Lmul::kM4);
  as.li(isa::s1, 0x100000);
  auto loop = as.here();
  as.vle64(isa::v8, isa::s1);
  as.vfmacc_vv(isa::v16, isa::v8, isa::v8);
  as.j(loop);
  memory.poke_words(0x1000, as.finish());
  hart.reset(0x1000);
  iss::StepInfo info;
  for (auto _ : state) {
    const auto inst = isa::decode(memory.read<std::uint32_t>(hart.pc()));
    info.clear();
    hart.execute(inst, info);
  }
}
BENCHMARK(BM_HartStepVectorFma);

}  // namespace
}  // namespace coyote

BENCHMARK_MAIN();
