// Ablation A4 — NoC and memory sensitivity (paper §III-A/§IV): the NoC is
// "currently modelled as a highly idealized crossbar, that uses fixed,
// configurable latencies"; the memory controllers are the module §IV singles
// out as the high-leverage component ("ample opportunity to tweak and
// optimize just this one module with a global effect on an entire system").
//
// Sweeps: crossbar latency, the 2D-mesh extension, memory latency, memory
// bandwidth (service rate) and the DRAM row-buffer model.
#include "bench_util.h"

namespace coyote::bench {
namespace {

const kernels::SpmvWorkload& spmv_workload() {
  static const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 33), 34);
  return workload;
}

SimRun run_spmv(const core::SimConfig& config) {
  return run_kernel(
      config,
      [&](core::Simulator& sim) { spmv_workload().install(sim.memory()); },
      [&](std::uint32_t n) {
        return kernels::build_spmv_scalar(spmv_workload(), n);
      });
}

void BM_NocCrossbarLatency(benchmark::State& state) {
  const auto latency = static_cast<Cycle>(state.range(0));
  for (auto _ : state) {
    core::SimConfig config = machine(64);
    config.fast_forward_idle = true;
    config.noc.crossbar_latency = latency;
    report(state, run_spmv(config));
  }
}
BENCHMARK(BM_NocCrossbarLatency)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_NocMesh(benchmark::State& state) {
  const auto hop = static_cast<Cycle>(state.range(0));
  for (auto _ : state) {
    core::SimConfig config = machine(64);
    config.fast_forward_idle = true;
    config.noc.model = memhier::NocModel::kMeshOracle;
    config.noc.mesh_width = 4;
    config.noc.mesh_hop_latency = hop;
    report(state, run_spmv(config));
  }
}
BENCHMARK(BM_NocMesh)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MemoryLatency(benchmark::State& state) {
  const auto latency = static_cast<Cycle>(state.range(0));
  for (auto _ : state) {
    core::SimConfig config = machine(64);
    config.fast_forward_idle = true;
    config.mc.latency = latency;
    report(state, run_spmv(config));
  }
}
BENCHMARK(BM_MemoryLatency)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MemoryBandwidth(benchmark::State& state) {
  const auto cycles_per_request = static_cast<Cycle>(state.range(0));
  for (auto _ : state) {
    core::SimConfig config = machine(64);
    config.fast_forward_idle = true;
    config.mc.cycles_per_request = cycles_per_request;
    report(state, run_spmv(config));
  }
}
BENCHMARK(BM_MemoryBandwidth)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_DramRowBuffer(benchmark::State& state) {
  const bool banded = state.range(0) != 0;
  // Banded (clustered) non-zeros give the row buffer locality to exploit —
  // the §IV observation that "clustering of non-zero values in sparse
  // matrices can be exploited".
  const auto workload =
      banded ? kernels::SpmvWorkload::generate(
                   kernels::CsrMatrix::banded(8192, 8192, 16, 256, 35), 36)
             : spmv_workload();
  for (auto _ : state) {
    core::SimConfig config = machine(64);
    config.fast_forward_idle = true;
    config.mc.model = memhier::McModel::kDramRowBuffer;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_spmv_scalar(workload, n);
        });
    report(state, run);
  }
}
BENCHMARK(BM_DramRowBuffer)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
