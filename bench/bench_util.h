// Shared plumbing for the Coyote benchmark harnesses. Every harness builds a
// Simulator from a SimConfig, runs one kernel to completion, and reports the
// paper's metrics as google-benchmark counters:
//   host_MIPS   — aggregate simulation throughput (Figure 3's y-axis)
//   sim_cycles  — simulated execution time of the kernel
//   sim_instr   — instructions retired
#pragma once

#include <benchmark/benchmark.h>

#include <functional>

#include "core/simulator.h"
#include "kernels/kernels.h"

namespace coyote::bench {

/// Standard machine shape used across the harnesses (8-core tiles with two
/// L2 banks each, as in the ACME-like sample system of the paper's Fig. 2).
inline core::SimConfig machine(std::uint32_t cores) {
  core::SimConfig config;
  config.num_cores = cores;
  config.cores_per_tile = 8;
  config.l2_banks_per_tile = 2;
  config.num_mcs = 2;
  return config;
}

struct SimRun {
  core::RunResult result;
  double l1d_miss_rate = 0.0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_bank_access_max = 0;
  std::uint64_t l2_bank_access_min = 0;
  std::uint64_t mc_reads = 0;
  std::uint64_t raw_stall_cycles = 0;
};

/// Builds the simulator, installs the workload via `install`, builds the
/// program via `build`, runs to completion and gathers the metric bundle.
inline SimRun run_kernel(
    const core::SimConfig& config,
    const std::function<void(core::Simulator&)>& install,
    const std::function<kernels::Program(std::uint32_t)>& build) {
  core::Simulator sim(config);
  install(sim);
  const auto program = build(config.num_cores);
  sim.load_program(program.base, program.words, program.entry);

  SimRun run;
  run.result = sim.run(~Cycle{0});
  if (!run.result.all_exited) {
    throw SimError("benchmark kernel did not run to completion");
  }

  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  for (CoreId core = 0; core < sim.num_cores(); ++core) {
    const auto& counters = sim.core(core).counters();
    l1d_accesses += counters.l1d_accesses;
    l1d_misses += counters.l1d_misses;
    run.raw_stall_cycles += counters.raw_stall_cycles;
  }
  run.l1d_miss_rate =
      l1d_accesses == 0 ? 0.0
                        : static_cast<double>(l1d_misses) / l1d_accesses;
  run.l2_bank_access_min = ~std::uint64_t{0};
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    const auto accesses =
        sim.l2_bank(bank).stats().find_counter("accesses").get();
    run.l2_accesses += accesses;
    run.l2_misses += sim.l2_bank(bank).stats().find_counter("misses").get();
    run.l2_bank_access_max = std::max(run.l2_bank_access_max, accesses);
    run.l2_bank_access_min = std::min(run.l2_bank_access_min, accesses);
  }
  for (McId mc = 0; mc < config.num_mcs; ++mc) {
    run.mc_reads += sim.mc(mc).stats().find_counter("reads").get();
  }
  return run;
}

/// Publishes the standard counter set on a benchmark state.
inline void report(benchmark::State& state, const SimRun& run) {
  state.counters["host_MIPS"] = run.result.mips;
  state.counters["sim_cycles"] = static_cast<double>(run.result.cycles);
  state.counters["sim_instr"] =
      static_cast<double>(run.result.instructions);
  state.counters["l1d_miss_rate"] = run.l1d_miss_rate;
}

}  // namespace coyote::bench
