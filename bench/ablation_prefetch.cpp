// Extension ablation — L2 next-line prefetching (paper §III-A future work:
// "different data management policies such as prefetching, streaming ...").
//
// Expected shape: streaming kernels (stencil, dense matmul) benefit —
// sequential lines are fetched before the demand arrives — while the
// random-gather side of SpMV sees little gain and some wasted bandwidth
// (issued-but-unused prefetches). Reported per run: prefetches issued,
// useful fraction, and simulated cycles.
#include "bench_util.h"

namespace coyote::bench {
namespace {

template <typename Workload>
void run_prefetch(benchmark::State& state, const Workload& workload,
                  kernels::Program (*build)(const Workload&, std::uint32_t),
                  std::uint32_t degree) {
  for (auto _ : state) {
    core::SimConfig config = machine(16);
    config.fast_forward_idle = true;
    if (degree > 0) {
      config.l2_bank.prefetch = memhier::PrefetchPolicy::kNextLine;
      config.l2_bank.prefetch_degree = degree;
    }
    core::Simulator sim(config);
    workload.install(sim.memory());
    const auto program = build(workload, config.num_cores);
    sim.load_program(program.base, program.words, program.entry);
    SimRun run;
    run.result = sim.run(~Cycle{0});
    if (!run.result.all_exited) throw SimError("prefetch bench timed out");
    std::uint64_t issued = 0;
    std::uint64_t useful = 0;
    for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
      issued +=
          sim.l2_bank(bank).stats().find_counter("prefetches_issued").get();
      useful +=
          sim.l2_bank(bank).stats().find_counter("prefetches_useful").get();
    }
    for (McId mc = 0; mc < config.num_mcs; ++mc) {
      run.mc_reads += sim.mc(mc).stats().find_counter("reads").get();
    }
    report(state, run);
    state.counters["pf_issued"] = static_cast<double>(issued);
    state.counters["pf_useful_frac"] =
        issued == 0 ? 0.0 : static_cast<double>(useful) / issued;
    state.counters["mc_reads"] = static_cast<double>(run.mc_reads);
  }
}

void BM_Prefetch_Stencil(benchmark::State& state) {
  static const auto workload =
      kernels::StencilWorkload::generate(1 << 20, 1, 81);
  run_prefetch(state, workload, kernels::build_stencil_vector,
               static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_Prefetch_Stencil)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Prefetch_Matmul(benchmark::State& state) {
  static const auto workload = kernels::MatmulWorkload::generate(96, 82);
  run_prefetch(state, workload, kernels::build_matmul_scalar,
               static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_Prefetch_Matmul)
    ->Arg(0)->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Prefetch_SpmvGather(benchmark::State& state) {
  static const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 83), 84);
  run_prefetch(state, workload, kernels::build_spmv_row_gather,
               static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_Prefetch_SpmvGather)
    ->Arg(0)->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
