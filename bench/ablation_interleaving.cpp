// Ablation A1 — Spike-style interleaving (paper §III-A): "interleaving had
// to be disabled in Spike … as the number of cores grows, reuse increases
// and so does performance, as the impact of disabling interleaving
// decreases."
//
// Sweep: quantum 1 (paper-accurate, interleaving disabled) vs 8 vs 64
// instructions per scheduling round, across core counts. The paper's claim
// reads as: host_MIPS(quantum>1) / host_MIPS(quantum=1) shrinks toward 1 as
// the simulated core count grows.
#include "bench_util.h"

namespace coyote::bench {
namespace {

void BM_Interleave_Matmul(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto quantum = static_cast<std::uint32_t>(state.range(1));
  const auto workload = kernels::MatmulWorkload::generate(96, 42);
  for (auto _ : state) {
    core::SimConfig config = machine(cores);
    config.interleave_quantum = quantum;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_matmul_scalar(workload, n);
        });
    report(state, run);
  }
}

BENCHMARK(BM_Interleave_Matmul)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {1, 8, 64}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Fast-forward is a related orchestration optimization (skip cycles where
// every live core sleeps); results are bit-identical, only host time moves.
void BM_FastForward_SpMV(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const bool fast_forward = state.range(1) != 0;
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(16384, 16384, 8, 7), 8);
  for (auto _ : state) {
    core::SimConfig config = machine(cores);
    config.fast_forward_idle = fast_forward;
    config.mc.latency = 300;  // long memory latency: idle stretches matter
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_spmv_scalar(workload, n);
        });
    report(state, run);
  }
}

BENCHMARK(BM_FastForward_SpMV)
    ->ArgsProduct({{1, 8, 32}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
