#!/usr/bin/env python3
"""Benchmark-baseline harness.

Runs the two host-performance benchmarks that guard the simulation loop —
fig3_throughput (end-to-end simulated-MIPS, the paper's Figure 3 metric) and
micro_substrates (decode / cache-array / scheduler / hart hot paths) — with
Google Benchmark's JSON output, plus a 32-point design-space sweep through
the coyote_sweep CLI (the unified config/run API; schema_version-stamped
JSON, host timings excluded so the table is bit-reproducible), and drops
the reports at the repository root:

    BENCH_fig3.json   BENCH_micro.json   BENCH_sweep.json

Every report is stamped with provenance — the git revision it was measured
at (with a "-dirty" suffix for an unclean tree) and a bench_schema_version
for the stamp layout itself — so a baseline found on disk can always be
traced back to the code that produced it.

Regenerate all baselines with a single command:

    python3 bench/baseline.py

Compare a working tree against the committed baseline by writing elsewhere:

    python3 bench/baseline.py --out-dir /tmp/candidate
    # then diff the host_MIPS / events_per_s counters; BENCH_sweep.json
    # must match byte for byte

Options let CI keep the run short (--quick limits fig3 to the 1- and
16-core points, shrinks the sweep grid and skips micro_substrates'
slowest repetitions).
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Version of the provenance stamp added to every BENCH_*.json (not of the
# reports' own payload schemas — the sweep table carries its own).
BENCH_SCHEMA_VERSION = 1


def git_revision() -> str:
    """HEAD's SHA, suffixed with -dirty when the tree has local changes."""
    try:
        sha = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True).stdout.strip()
        dirty = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "status", "--porcelain"],
            capture_output=True, text=True, check=True).stdout.strip()
        return f"{sha}-dirty" if dirty else sha
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def detect_build_type(build_dir: pathlib.Path) -> str:
    """CMAKE_BUILD_TYPE from the build tree's CMakeCache.txt ("unknown"
    when the cache is missing or the variable is unset)."""
    cache = build_dir / "CMakeCache.txt"
    try:
        for line in cache.read_text().splitlines():
            if line.startswith("CMAKE_BUILD_TYPE:"):
                value = line.split("=", 1)[1].strip()
                return value or "unknown"
    except OSError:
        pass
    return "unknown"


def stamp_provenance(out_path: pathlib.Path, git_sha: str,
                     build_type: str) -> None:
    """Adds bench_schema_version + git_sha + build_type to a report,
    deterministically re-serialized so identical runs still compare byte
    for byte."""
    with open(out_path) as fh:
        report = json.load(fh)
    report["bench_schema_version"] = BENCH_SCHEMA_VERSION
    report["git_sha"] = git_sha
    report["build_type"] = build_type
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)
        fh.write("\n")

BENCHMARKS = [
    # (binary name, output file, extra args)
    ("fig3_throughput", "BENCH_fig3.json", []),
    ("micro_substrates", "BENCH_micro.json", []),
]

# The design-space baseline: an 8-core SpMV swept across L2 capacity, bank
# count, mapping policy and NoC model (ideal crossbar vs the contended
# 2D mesh on a 2x2 grid) — 32 points in full mode, 8 in --quick.
SWEEP_ARGS = [
    "--kernel=spmv_scalar", "--size=512", "--seed=2024", "--quiet",
    "topo.cores=8", "core.l1d_kb=4", "topo.mesh=2x2",
    "l2.banks_per_tile=1,2", "l2.mapping=set-interleave,page-to-bank",
    "noc.model=crossbar,mesh",
]
SWEEP_AXIS_FULL = "l2.size_kb=16,32,64,128"
SWEEP_AXIS_QUICK = "l2.size_kb=16,32"


def find_binary(build_dir: pathlib.Path, name: str) -> pathlib.Path:
    candidates = [build_dir / "bench" / name, build_dir / "examples" / name,
                  build_dir / name]
    for path in candidates:
        if path.is_file():
            return path
    raise SystemExit(
        f"error: benchmark binary '{name}' not found under {build_dir} "
        "(build with: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && "
        "cmake --build build -j)"
    )


def run_sweep(build_dir: pathlib.Path, out_path: pathlib.Path,
              quick: bool) -> None:
    binary = find_binary(build_dir, "coyote_sweep")
    axis = SWEEP_AXIS_QUICK if quick else SWEEP_AXIS_FULL
    jobs = os.cpu_count() or 1
    cmd = [str(binary), *SWEEP_ARGS, axis, f"--jobs={jobs}",
           f"--json-out={out_path}"]
    print(f"[baseline] {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True)
    with open(out_path) as fh:
        report = json.load(fh)
    assert report["schema_version"] == 1, report["schema_version"]
    cycles = [p["result"]["cycles"] for p in report["points"] if p["ok"]]
    print(f"[baseline]   sweep: {report['num_points']} points, "
          f"{report['num_failed']} failed, "
          f"sim cycles {min(cycles)}..{max(cycles)}")


def run_one(binary: pathlib.Path, out_path: pathlib.Path, extra: list[str],
            bench_filter: str | None) -> None:
    cmd = [
        str(binary),
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    cmd += extra
    print(f"[baseline] {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True)


def summarize(out_path: pathlib.Path) -> None:
    with open(out_path) as fh:
        report = json.load(fh)
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "?")
        counters = {
            key: bench[key]
            for key in ("host_MIPS", "events_per_s", "instr_per_s")
            if key in bench
        }
        if counters:
            pretty = " ".join(f"{k}={v:.3g}" for k, v in counters.items())
            print(f"[baseline]   {name}: {pretty}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=str(REPO_ROOT / "build"),
                        help="CMake build tree holding bench/ binaries")
    parser.add_argument("--out-dir", default=str(REPO_ROOT),
                        help="where the BENCH_*.json reports are written")
    parser.add_argument("--filter", default=None,
                        help="forwarded as --benchmark_filter to every binary")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fig3 at 1 and 16 cores only, "
                             "skip micro_substrates")
    parser.add_argument("--only",
                        choices=[b[0] for b in BENCHMARKS] + ["coyote_sweep"],
                        help="run a single benchmark binary")
    parser.add_argument("--allow-debug", action="store_true",
                        help="measure a non-Release build anyway (numbers "
                             "are not comparable to committed baselines)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    git_sha = git_revision()
    build_type = detect_build_type(build_dir)
    if build_type != "Release" and not args.allow_debug:
        raise SystemExit(
            f"error: build tree {build_dir} has CMAKE_BUILD_TYPE="
            f"{build_type!r}; host-performance baselines are only "
            "meaningful on Release. Reconfigure with "
            "-DCMAKE_BUILD_TYPE=Release, or pass --allow-debug to measure "
            "anyway (the report is stamped with its build_type either way)."
        )
    print(f"[baseline] git revision: {git_sha}", flush=True)
    print(f"[baseline] build type: {build_type}", flush=True)

    for name, out_name, extra in BENCHMARKS:
        if args.only and name != args.only:
            continue
        if args.quick and name == "micro_substrates":
            continue
        bench_filter = args.filter
        if args.quick and name == "fig3_throughput" and bench_filter is None:
            bench_filter = "/(1|16)/"
        out_path = out_dir / out_name
        run_one(find_binary(build_dir, name), out_path, extra, bench_filter)
        stamp_provenance(out_path, git_sha, build_type)
        summarize(out_path)
        print(f"[baseline] wrote {out_path}")

    if args.only in (None, "coyote_sweep"):
        sweep_path = out_dir / "BENCH_sweep.json"
        run_sweep(build_dir, sweep_path, args.quick)
        stamp_provenance(sweep_path, git_sha, build_type)
        print(f"[baseline] wrote {sweep_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
