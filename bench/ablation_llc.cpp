// Extension ablation — the LLC level of the paper's Fig. 2 sample system
// ("Three levels of cache and 64 cores are depicted"). Measures how a
// memory-side LLC slice per controller filters DRAM traffic when the L2 is
// capacity-stressed, and how much it helps a reuse-free stream (it should
// not).
#include "bench_util.h"

namespace coyote::bench {
namespace {

struct LlcRun {
  SimRun run;
  double llc_hit_rate = 0.0;
  std::uint64_t dram_reads = 0;
};

template <typename Workload>
LlcRun run_llc(const Workload& workload,
               kernels::Program (*build)(const Workload&, std::uint32_t),
               bool enable_llc, std::uint64_t l2_bank_bytes) {
  core::SimConfig config = machine(16);
  config.fast_forward_idle = true;
  config.l2_bank.size_bytes = l2_bank_bytes;
  config.llc.enable = enable_llc;
  core::Simulator sim(config);
  workload.install(sim.memory());
  const auto program = build(workload, config.num_cores);
  sim.load_program(program.base, program.words, program.entry);
  LlcRun out;
  out.run.result = sim.run(~Cycle{0});
  if (!out.run.result.all_exited) throw SimError("LLC bench timed out");
  std::uint64_t hits = 0;
  std::uint64_t accesses = 0;
  for (McId mc = 0; mc < config.num_mcs; ++mc) {
    out.dram_reads += sim.mc(mc).stats().find_counter("reads").get();
    if (enable_llc) {
      hits += sim.llc(mc)->stats().find_counter("hits").get();
      accesses += sim.llc(mc)->stats().find_counter("accesses").get();
    }
  }
  out.llc_hit_rate =
      accesses == 0 ? 0.0 : static_cast<double>(hits) / accesses;
  return out;
}

void BM_Llc_MatmulSmallL2(benchmark::State& state) {
  const bool llc = state.range(0) != 0;
  static const auto workload = kernels::MatmulWorkload::generate(96, 91);
  for (auto _ : state) {
    // 4 KiB L2 banks: far below the working set, so reuse spills downward.
    const LlcRun out =
        run_llc(workload, kernels::build_matmul_scalar, llc, 4 * 1024);
    report(state, out.run);
    state.counters["llc_hit_rate"] = out.llc_hit_rate;
    state.counters["dram_reads"] = static_cast<double>(out.dram_reads);
  }
}
BENCHMARK(BM_Llc_MatmulSmallL2)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Llc_SpmvSmallL2(benchmark::State& state) {
  const bool llc = state.range(0) != 0;
  static const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 92), 93);
  for (auto _ : state) {
    const LlcRun out =
        run_llc(workload, kernels::build_spmv_scalar, llc, 4 * 1024);
    report(state, out.run);
    state.counters["llc_hit_rate"] = out.llc_hit_rate;
    state.counters["dram_reads"] = static_cast<double>(out.dram_reads);
  }
}
BENCHMARK(BM_Llc_SpmvSmallL2)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Llc_StencilStream(benchmark::State& state) {
  // One streaming sweep: zero temporal reuse, the LLC should buy ~nothing.
  const bool llc = state.range(0) != 0;
  static const auto workload =
      kernels::StencilWorkload::generate(1 << 20, 1, 94);
  for (auto _ : state) {
    const LlcRun out =
        run_llc(workload, kernels::build_stencil_vector, llc, 256 * 1024);
    report(state, out.run);
    state.counters["llc_hit_rate"] = out.llc_hit_rate;
    state.counters["dram_reads"] = static_cast<double>(out.dram_reads);
  }
}
BENCHMARK(BM_Llc_StencilStream)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
