// Ablation A2 — L2 data-mapping policies (paper §III-A): "Two different
// well-known data mapping policies have been implemented, that use
// different bits of the address to identify the L2 bank that holds a
// certain memory block: page-to-bank and set-interleaving."
//
// Reports, per policy and kernel, the simulated execution time and the L2
// bank-load imbalance (max/min accesses across banks). Set-interleaving
// spreads a dense stream across all banks; page-to-bank concentrates each
// page's traffic, which hurts streaming kernels and helps page-local ones.
#include "bench_util.h"

namespace coyote::bench {
namespace {

void run_mapping(benchmark::State& state, memhier::MappingPolicy policy,
                 bool vector_kernel) {
  const std::uint32_t cores = 64;
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 5), 6);
  for (auto _ : state) {
    core::SimConfig config = machine(cores);
    config.mapping = policy;
    config.fast_forward_idle = true;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return vector_kernel ? kernels::build_spmv_row_gather(workload, n)
                               : kernels::build_spmv_scalar(workload, n);
        });
    report(state, run);
    state.counters["bank_max_acc"] =
        static_cast<double>(run.l2_bank_access_max);
    state.counters["bank_min_acc"] =
        static_cast<double>(run.l2_bank_access_min);
    state.counters["bank_imbalance"] =
        run.l2_bank_access_min == 0
            ? 0.0
            : static_cast<double>(run.l2_bank_access_max) /
                  static_cast<double>(run.l2_bank_access_min);
  }
}

void BM_Mapping_SetInterleave_SpmvScalar(benchmark::State& state) {
  run_mapping(state, memhier::MappingPolicy::kSetInterleave, false);
}
void BM_Mapping_PageToBank_SpmvScalar(benchmark::State& state) {
  run_mapping(state, memhier::MappingPolicy::kPageToBank, false);
}
void BM_Mapping_SetInterleave_SpmvVector(benchmark::State& state) {
  run_mapping(state, memhier::MappingPolicy::kSetInterleave, true);
}
void BM_Mapping_PageToBank_SpmvVector(benchmark::State& state) {
  run_mapping(state, memhier::MappingPolicy::kPageToBank, true);
}

BENCHMARK(BM_Mapping_SetInterleave_SpmvScalar)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Mapping_PageToBank_SpmvScalar)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Mapping_SetInterleave_SpmvVector)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Mapping_PageToBank_SpmvVector)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Dense streaming case where the policy contrast is sharpest.
void BM_Mapping_Matmul(benchmark::State& state) {
  const auto policy = state.range(0) == 0
                          ? memhier::MappingPolicy::kSetInterleave
                          : memhier::MappingPolicy::kPageToBank;
  const auto workload = kernels::MatmulWorkload::generate(96, 11);
  for (auto _ : state) {
    core::SimConfig config = machine(32);
    config.mapping = policy;
    config.fast_forward_idle = true;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_matmul_scalar(workload, n);
        });
    report(state, run);
    state.counters["bank_imbalance"] =
        run.l2_bank_access_min == 0
            ? 0.0
            : static_cast<double>(run.l2_bank_access_max) /
                  static_cast<double>(run.l2_bank_access_min);
  }
}

BENCHMARK(BM_Mapping_Matmul)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
