// Ablation A3 — L2 organisation (paper §III-A): "The L2 can be configured
// as fully-shared across the system or private to the cores of each tile."
//
// Shared L2 gives each core reach into the full aggregate capacity (good
// for shared read-only data like SpMV's x vector) at the cost of NoC
// traffic to remote banks; private L2 keeps traffic tile-local but
// replicates shared data and wastes capacity.
#include "bench_util.h"

namespace coyote::bench {
namespace {

void run_l2org(benchmark::State& state, core::L2Sharing sharing,
               std::uint32_t cores, bool spmv) {
  const auto matmul = kernels::MatmulWorkload::generate(96, 21);
  const auto spmv_workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(8192, 8192, 16, 22), 23);
  for (auto _ : state) {
    core::SimConfig config = machine(cores);
    config.l2_sharing = sharing;
    config.fast_forward_idle = true;
    // Use a mesh-oracle NoC so remote-bank distance costs cycles without
    // contention noise (keeps the committed baseline numbers comparable).
    config.noc.model = memhier::NocModel::kMeshOracle;
    config.noc.mesh_width = 4;
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) {
          if (spmv) {
            spmv_workload.install(sim.memory());
          } else {
            matmul.install(sim.memory());
          }
        },
        [&](std::uint32_t n) {
          return spmv ? kernels::build_spmv_scalar(spmv_workload, n)
                      : kernels::build_matmul_scalar(matmul, n);
        });
    report(state, run);
    state.counters["l2_miss_rate"] =
        run.l2_accesses == 0
            ? 0.0
            : static_cast<double>(run.l2_misses) / run.l2_accesses;
    state.counters["mc_reads"] = static_cast<double>(run.mc_reads);
  }
}

void BM_L2Shared_Matmul(benchmark::State& state) {
  run_l2org(state, core::L2Sharing::kShared,
            static_cast<std::uint32_t>(state.range(0)), false);
}
void BM_L2Private_Matmul(benchmark::State& state) {
  run_l2org(state, core::L2Sharing::kPrivate,
            static_cast<std::uint32_t>(state.range(0)), false);
}
void BM_L2Shared_Spmv(benchmark::State& state) {
  run_l2org(state, core::L2Sharing::kShared,
            static_cast<std::uint32_t>(state.range(0)), true);
}
void BM_L2Private_Spmv(benchmark::State& state) {
  run_l2org(state, core::L2Sharing::kPrivate,
            static_cast<std::uint32_t>(state.range(0)), true);
}

BENCHMARK(BM_L2Shared_Matmul)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_L2Private_Matmul)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_L2Shared_Spmv)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_L2Private_Spmv)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
