// Figure 3 reproduction: "Evolution of the simulation throughput with the
// number of simulated cores" — aggregate host-side MIPS for scalar matmul
// and scalar SpMV as the simulated core count sweeps 1..128.
//
// The paper's claim is the *shape*: per-cycle round-robin overhead dominates
// at low core counts (Spike interleaving disabled), so aggregate throughput
// grows with the simulated core count and saturates (paper peak: ~6 MIPS at
// 128 cores on their host). Absolute numbers depend on the host machine.
#include "bench_util.h"

namespace coyote::bench {
namespace {

void BM_Fig3_Matmul(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  // Fixed problem (strong scaling): 128 rows so every core count up to 128
  // has at least one row of work.
  const auto workload = kernels::MatmulWorkload::generate(128, 42);
  for (auto _ : state) {
    const SimRun run = run_kernel(
        machine(cores),
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_matmul_scalar(workload, n);
        });
    report(state, run);
  }
}

void BM_Fig3_SpMV(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(65536, 65536, 16, 42), 43);
  for (auto _ : state) {
    const SimRun run = run_kernel(
        machine(cores),
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_spmv_scalar(workload, n);
        });
    report(state, run);
  }
}

// Reference points for the decoded-block dispatch speedup: the same runs
// with iss.dbb_cache=off. Tracked per-commit so the on/off host-MIPS ratio
// (the cache's whole reason to exist) is visible in BENCH_fig3.json and CI,
// not just in a one-off experiment table.
void BM_Fig3_Matmul_NoDbb(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto workload = kernels::MatmulWorkload::generate(128, 42);
  core::SimConfig config = machine(cores);
  config.core.dbb_cache = false;
  for (auto _ : state) {
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_matmul_scalar(workload, n);
        });
    report(state, run);
  }
}

void BM_Fig3_SpMV_NoDbb(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto workload = kernels::SpmvWorkload::generate(
      kernels::CsrMatrix::random(65536, 65536, 16, 42), 43);
  core::SimConfig config = machine(cores);
  config.core.dbb_cache = false;
  for (auto _ : state) {
    const SimRun run = run_kernel(
        config,
        [&](core::Simulator& sim) { workload.install(sim.memory()); },
        [&](std::uint32_t n) {
          return kernels::build_spmv_scalar(workload, n);
        });
    report(state, run);
  }
}

BENCHMARK(BM_Fig3_Matmul)
    ->RangeMultiplier(2)
    ->Range(1, 128)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig3_SpMV)
    ->RangeMultiplier(2)
    ->Range(1, 128)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// The no-dbb references run 1-core only: that is where the per-instruction
// dispatch cost dominates (and where the paper's Fig. 3 starts).
BENCHMARK(BM_Fig3_Matmul_NoDbb)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig3_SpMV_NoDbb)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace coyote::bench

BENCHMARK_MAIN();
