#!/usr/bin/env python3
"""Normalizes a coyote_sim --json-out report for bit-exact comparison.

Drops everything that legitimately varies between two runs of the same
simulated machine: host timing (result.wall_seconds / result.mips), the
iss.dbb_* config echo, and the host-side dbb_* counters the decoded-block
cache adds to each core's stats. What remains — simulated cycles and
instructions, exit codes, and every simulated counter of every unit — must
compare byte for byte between an iss.dbb_cache=on and an off run (CI's
dbb differential smoke), or between any two runs of a deterministic config.

Handles both report shapes: the full --json-out document (config /
result / stats sections) and the flat unit→counters map --report=json
prints on stdout.

Usage: strip_host_fields.py REPORT.json   (normalized JSON on stdout)
"""

import json
import sys


def strip_dbb_keys(node):
    """Recursively drops every dict key starting with dbb_ (the host-side
    decoded-block counters, wherever the report shape puts them)."""
    if isinstance(node, dict):
        for key in [k for k in node if k.startswith("dbb_")]:
            del node[key]
        for value in node.values():
            strip_dbb_keys(value)
    elif isinstance(node, list):
        for value in node:
            strip_dbb_keys(value)


def main() -> int:
    with open(sys.argv[1]) as fh:
        report = json.load(fh)
    result = report.get("result", {})
    result.pop("wall_seconds", None)
    result.pop("mips", None)
    config = report.get("config", {})
    for key in [k for k in config if k.startswith("iss.dbb_")]:
        del config[key]
    strip_dbb_keys(report)
    json.dump(report, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
