#include "core/run_summary.h"

#include <cstdio>
#include <sstream>

#include "core/config_io.h"

namespace coyote::core {

namespace {

std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RunResult::to_json(bool include_host_timing) const {
  std::ostringstream os;
  os << "{\"cycles\": " << cycles << ", \"instructions\": " << instructions
     << ", \"all_exited\": " << (all_exited ? "true" : "false")
     << ", \"hit_cycle_limit\": " << (hit_cycle_limit ? "true" : "false")
     << ", \"exit_codes\": [";
  for (std::size_t i = 0; i < exit_codes.size(); ++i) {
    if (i) os << ", ";
    os << exit_codes[i];
  }
  os << "]";
  if (include_host_timing) {
    os << ", \"wall_seconds\": " << format_double(wall_seconds)
       << ", \"mips\": " << format_double(mips);
  }
  os << "}";
  return os.str();
}

std::string run_summary_json(const WorkloadInfo& workload,
                             const Simulator& sim, const RunResult& result,
                             bool include_host_timing) {
  const bool mesh = sim.noc().contended();
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": "
     << (mesh ? kRunSummaryMeshSchemaVersion : kRunSummarySchemaVersion)
     << ",\n"
     << "  \"kind\": \"run\",\n"
     << "  \"workload\": \"" << json_escape(workload.label) << "\",\n"
     << "  \"workload_source\": {\"kind\": \"" << json_escape(workload.kind)
     << "\", \"ref\": \"" << json_escape(workload.ref)
     << "\", \"content_hash\": \"";
  {
    char hash[32];
    std::snprintf(hash, sizeof hash, "0x%016llx",
                  static_cast<unsigned long long>(workload.content_hash));
    os << hash;
  }
  os << "\"},\n"
     << "  \"config\": {";
  const simfw::ConfigMap map = config_to_map(sim.config());
  bool first = true;
  for (const auto& [key, value] : map.values()) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(key) << "\": \"" << json_escape(value)
       << "\"";
  }
  os << "\n  },\n"
     << "  \"result\": " << result.to_json(include_host_timing) << ",\n"
     << "  \"guest_status\": " << result.guest_status() << ",\n";
  if (mesh) os << "  \"noc\": " << sim.noc().summary_json() << ",\n";
  os << "  \"stats\": " << sim.report(simfw::ReportFormat::kJson) << "}\n";
  return os.str();
}

std::string run_summary_json(const std::string& workload,
                             const Simulator& sim, const RunResult& result,
                             bool include_host_timing) {
  return run_summary_json(WorkloadInfo::from_label(workload), sim, result,
                          include_host_timing);
}

}  // namespace coyote::core
