#include "core/simulator.h"

#include <chrono>

namespace coyote::core {

Simulator::Simulator(const SimConfig& config) : config_(config) {
  config_.validate();

  root_ = std::make_unique<simfw::Unit>(&scheduler_, "top");
  mc_mapper_ = std::make_unique<memhier::McMapper>(config_.num_mcs,
                                                   config_.mc_interleave_bytes);
  noc_ = std::make_unique<memhier::Noc>(root_.get(), config_.noc,
                                        config_.num_tiles(), config_.num_mcs,
                                        config_.core.line_bytes);

  // Memory controllers, optionally fronted by an LLC slice each.
  mcs_.reserve(config_.num_mcs);
  for (McId mc = 0; mc < config_.num_mcs; ++mc) {
    mcs_.push_back(std::make_unique<memhier::MemoryController>(
        root_.get(), strfmt("mc%u", mc), mc, config_.mc, noc_.get(),
        config_.num_l2_banks()));
  }
  if (config_.llc.enable) {
    llcs_.reserve(config_.num_mcs);
    for (McId mc = 0; mc < config_.num_mcs; ++mc) {
      llcs_.push_back(std::make_unique<memhier::LlcSlice>(
          root_.get(), strfmt("llc%u", mc), mc, config_.llc, noc_.get(),
          config_.num_l2_banks()));
      llcs_[mc]->mem_req_out().bind(mcs_[mc]->req_in());
    }
  }

  // Tiles: cores and L2 banks.
  const std::uint32_t num_tiles = config_.num_tiles();
  tile_units_.reserve(num_tiles);
  for (TileId tile = 0; tile < num_tiles; ++tile) {
    tile_units_.push_back(
        std::make_unique<simfw::Unit>(root_.get(), strfmt("tile%u", tile)));
  }

  // Coherence wiring: derived flags pushed into the core and bank configs
  // before either is constructed (same pattern as the prefetch stride).
  const bool coherent = config_.coherence == Coherence::kMesi;
  config_.core.coherent = coherent;
  config_.l2_bank.coherent = coherent;
  config_.l2_bank.num_cores = config_.num_cores;
  config_.l2_bank.cores_per_tile = config_.cores_per_tile;

  cores_.reserve(config_.num_cores);
  for (CoreId id = 0; id < config_.num_cores; ++id) {
    cores_.push_back(
        std::make_unique<iss::CoreModel>(id, &memory_, config_.core));
  }

  // Teach the prefetcher the mapping stride: the next line a bank owns is
  // `num-banks-in-its-interleave-domain` lines away under set-interleaving,
  // or simply the next line under page-to-bank.
  if (config_.l2_bank.prefetch_stride_bytes == 0) {
    if (config_.mapping == memhier::MappingPolicy::kSetInterleave) {
      const std::uint32_t domain =
          config_.l2_sharing == L2Sharing::kShared
              ? config_.num_l2_banks()
              : config_.l2_banks_per_tile;
      config_.l2_bank.prefetch_stride_bytes =
          static_cast<std::uint64_t>(domain) * config_.l2_bank.line_bytes;
    } else {
      config_.l2_bank.prefetch_stride_bytes = config_.l2_bank.line_bytes;
    }
  }

  banks_.reserve(config_.num_l2_banks());
  for (BankId bank = 0; bank < config_.num_l2_banks(); ++bank) {
    const TileId tile = bank / config_.l2_banks_per_tile;
    banks_.push_back(std::make_unique<memhier::L2Bank>(
        tile_units_[tile].get(), strfmt("l2bank%u", bank), bank, tile,
        config_.l2_bank, noc_.get(), mc_mapper_.get()));
    // Bank <-> (LLC slice <->) memory-controller wiring.
    for (McId mc = 0; mc < config_.num_mcs; ++mc) {
      if (config_.llc.enable) {
        banks_[bank]->mem_req_out(mc).bind(llcs_[mc]->req_in());
        llcs_[mc]->resp_out(bank).bind(banks_[bank]->mem_resp_in());
        mcs_[mc]->resp_out(bank).bind(llcs_[mc]->mem_resp_in());
      } else {
        banks_[bank]->mem_req_out(mc).bind(mcs_[mc]->req_in());
        mcs_[mc]->resp_out(bank).bind(banks_[bank]->mem_resp_in());
      }
    }
  }

  if (config_.enable_trace) {
    trace_ = std::make_unique<ParaverTraceWriter>(config_.trace_basename,
                                                  config_.num_cores);
    if (noc_->contended()) {
      // Link-grant waits become Paraver congestion events attributed to the
      // waiting message's originating core.
      ParaverTraceWriter* trace = trace_.get();
      noc_->set_congestion_sink(
          [trace](Cycle cycle, CoreId core, std::uint64_t waited) {
            trace->record(cycle, core, TraceEvent::kNocCongestion, waited);
          });
    }
  }

  orchestrator_ = std::make_unique<Orchestrator>(
      root_.get(), config_, &cores_, &banks_, noc_.get(), trace_.get());

  // Per-core statistics: live views over the CoreModel counters, hung under
  // the owning tile so the report mirrors the topology.
  core_stat_units_.reserve(config_.num_cores);
  for (CoreId id = 0; id < config_.num_cores; ++id) {
    const TileId tile = id / config_.cores_per_tile;
    auto unit = std::make_unique<simfw::Unit>(tile_units_[tile].get(),
                                              strfmt("core%u", id));
    const iss::CoreModel* core = cores_[id].get();
    auto live = [core](std::uint64_t iss::CoreCounters::* member) {
      return [core, member]() {
        return static_cast<double>(core->counters().*member);
      };
    };
    auto& stats = unit->stats();
    stats.statistic("instructions", "instructions retired",
                    live(&iss::CoreCounters::instructions));
    stats.statistic("vector_instructions", "vector instructions retired",
                    live(&iss::CoreCounters::vector_instructions));
    stats.statistic("loads", "data loads executed",
                    live(&iss::CoreCounters::loads));
    stats.statistic("stores", "data stores executed",
                    live(&iss::CoreCounters::stores));
    stats.statistic("l1d_accesses", "L1D line lookups",
                    live(&iss::CoreCounters::l1d_accesses));
    stats.statistic("l1d_misses", "L1D misses",
                    live(&iss::CoreCounters::l1d_misses));
    stats.statistic("l1i_accesses", "L1I line lookups",
                    live(&iss::CoreCounters::l1i_accesses));
    stats.statistic("l1i_misses", "L1I misses",
                    live(&iss::CoreCounters::l1i_misses));
    stats.statistic("raw_stall_cycles",
                    "cycles stalled on RAW vs in-flight fills",
                    live(&iss::CoreCounters::raw_stall_cycles));
    stats.statistic("ifetch_stall_cycles", "cycles stalled on ifetch misses",
                    live(&iss::CoreCounters::ifetch_stall_cycles));
    stats.statistic("writebacks", "dirty L1 lines written back",
                    live(&iss::CoreCounters::writebacks));
    stats.statistic("branch_instructions", "branches and jumps retired",
                    live(&iss::CoreCounters::branch_instructions));
    stats.statistic("fp_instructions", "scalar FP instructions retired",
                    live(&iss::CoreCounters::fp_instructions));
    stats.statistic("amo_instructions", "atomic instructions retired",
                    live(&iss::CoreCounters::amo_instructions));
    if (config_.coherence == Coherence::kMesi) {
      // Registered only in MESI mode so reports under coherence=none are
      // byte-identical to the pre-coherence tool.
      stats.statistic("coh_upgrades", "stores upgrading a Shared line",
                      live(&iss::CoreCounters::coh_upgrades));
      stats.statistic("coh_invalidations", "kInv probes that hit this L1D",
                      live(&iss::CoreCounters::coh_invalidations));
      stats.statistic("coh_downgrades",
                      "kDowngrade probes that hit this L1D",
                      live(&iss::CoreCounters::coh_downgrades));
    }
    if (config_.core.dbb_cache) {
      // Host-side observability of the decoded-block dispatch; registered
      // only when the cache is on so iss.dbb_cache=off reports stay
      // byte-identical to the pre-dbb tool (and differential tests can
      // compare on-vs-off by stripping dbb_ lines alone).
      auto dbb = [core](std::uint64_t iss::DbbStats::* member) {
        return [core, member]() {
          return static_cast<double>(core->dbb_stats().*member);
        };
      };
      stats.statistic("dbb_hits", "decoded-block dispatches from cache",
                      dbb(&iss::DbbStats::hits));
      stats.statistic("dbb_misses", "decoded-block builds",
                      dbb(&iss::DbbStats::misses));
      stats.statistic("dbb_invalidations",
                      "decoded blocks dropped on code-page writes",
                      dbb(&iss::DbbStats::invalidations));
    }
    stats.statistic("l1d_miss_rate", "L1D misses / accesses", [core]() {
      const auto& counters = core->counters();
      return counters.l1d_accesses == 0
                 ? 0.0
                 : static_cast<double>(counters.l1d_misses) /
                       static_cast<double>(counters.l1d_accesses);
    });
    core_stat_units_.push_back(std::move(unit));
  }
}

Simulator::~Simulator() = default;

void Simulator::load_program(Addr base, const std::vector<std::uint32_t>& words,
                             Addr entry) {
  memory_.poke_words(base, words);
  reset_cores(entry);
}

void Simulator::reset_cores(Addr entry) {
  for (auto& core : cores_) core->reset(entry);
}

void Simulator::set_syscall_emulator(
    std::unique_ptr<iss::SyscallEmulatorIf> emulator) {
  syscall_emulator_ = std::move(emulator);
  for (auto& core : cores_) {
    core->hart().set_syscall_emulator(syscall_emulator_.get());
  }
}

RunResult Simulator::run(Cycle max_cycles) {
  return run_to_quiesce(Orchestrator::kNoQuiesce, max_cycles);
}

RunResult Simulator::run_to_quiesce(Cycle min_cycles, Cycle max_cycles) {
  const auto wall_start = std::chrono::steady_clock::now();
  const RunStats stats = orchestrator_->run(max_cycles, min_cycles);
  const auto wall_end = std::chrono::steady_clock::now();

  RunResult result;
  result.cycles = stats.cycles;
  result.instructions = stats.instructions;
  result.all_exited = stats.all_exited;
  result.hit_cycle_limit = stats.hit_cycle_limit;
  result.quiesced = stats.quiesced;
  result.exit_codes = stats.exit_codes;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.mips = result.wall_seconds > 0.0
                    ? static_cast<double>(result.instructions) /
                          result.wall_seconds / 1e6
                    : 0.0;

  if (trace_ != nullptr && stats.all_exited) {
    trace_->finish(scheduler_.now());
  }
  return result;
}

std::string Simulator::report(simfw::ReportFormat format) const {
  return simfw::Report(*root_).to_string(format);
}

}  // namespace coyote::core
