// The public facade: builds the whole simulated machine from a SimConfig
// (cores with L1s, tiles, L2 banks, NoC, memory controllers, orchestrator,
// optional Paraver tracing), loads baremetal programs, runs them, and
// produces statistics reports. This is the API every example, test and
// benchmark in the repository drives.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/sim_config.h"
#include "core/trace.h"
#include "iss/core_model.h"
#include "memhier/l2bank.h"
#include "memhier/llc.h"
#include "memhier/memctrl.h"
#include "memhier/noc.h"
#include "simfw/report.h"
#include "simfw/scheduler.h"

namespace coyote::core {

/// Result of Simulator::run, including host-side throughput (the paper's
/// Figure 3 metric).
struct RunResult {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  bool all_exited = false;
  bool hit_cycle_limit = false;
  /// True when run_to_quiesce() stopped at a quiesce point (event queue
  /// empty, nothing in flight). Not emitted by to_json: a quiesce stop is a
  /// checkpointing artefact, not a simulated outcome.
  bool quiesced = false;
  std::vector<std::int64_t> exit_codes;
  double wall_seconds = 0.0;
  /// Aggregate simulation throughput in million instructions per second.
  double mips = 0.0;

  /// The guest's aggregate exit status: the first non-zero exit(status)
  /// across the cores in core order, or 0 when every program exited
  /// cleanly. This is the value the CLI folds into its process exit code
  /// (64 + (status & 63); see README).
  std::int64_t guest_status() const {
    for (std::int64_t code : exit_codes) {
      if (code != 0) return code;
    }
    return 0;
  }

  /// Renders the result as one JSON object. Simulated quantities (cycles,
  /// instructions, exit state) are always present; `include_host_timing`
  /// adds wall_seconds/mips, which vary run to run and are therefore
  /// excluded from outputs that must be bit-reproducible (sweep tables).
  std::string to_json(bool include_host_timing = true) const;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const SimConfig& config() const { return config_; }
  iss::SparseMemory& memory() { return memory_; }
  simfw::Scheduler& scheduler() { return scheduler_; }
  simfw::Unit& root() { return *root_; }
  const simfw::Unit& root() const { return *root_; }

  std::uint32_t num_cores() const { return config_.num_cores; }
  iss::CoreModel& core(CoreId id) { return *cores_.at(id); }
  memhier::Noc& noc() { return *noc_; }
  const memhier::Noc& noc() const { return *noc_; }
  memhier::L2Bank& l2_bank(BankId id) { return *banks_.at(id); }
  std::uint32_t num_l2_banks() const {
    return static_cast<std::uint32_t>(banks_.size());
  }
  memhier::MemoryController& mc(McId id) { return *mcs_.at(id); }
  /// LLC slice for controller `id`; nullptr when the LLC is disabled.
  memhier::LlcSlice* llc(McId id) {
    return id < llcs_.size() ? llcs_[id].get() : nullptr;
  }
  Orchestrator& orchestrator() { return *orchestrator_; }
  ParaverTraceWriter* trace() { return trace_.get(); }
  /// Line-address -> memory-controller mapping (LLC slices are co-located
  /// with their controller, so this also selects the LLC slice).
  const memhier::McMapper& mc_mapper() const { return *mc_mapper_; }

  /// Copies `words` into simulated memory at `base` and resets every core
  /// to start executing at `entry`.
  void load_program(Addr base, const std::vector<std::uint32_t>& words,
                    Addr entry);

  /// Resets every core to start executing at `entry` (the reset half of
  /// load_program; ELF loading writes memory directly and then calls this).
  void reset_cores(Addr entry);

  /// Installs a host-side syscall emulator (src/loader's proxy kernel) and
  /// attaches it to every hart; while attached, `ecall` and HTIF `tohost`
  /// stores route to it. The simulator owns the emulator so checkpoint
  /// code can serialize its state alongside the machine. nullptr detaches.
  void set_syscall_emulator(std::unique_ptr<iss::SyscallEmulatorIf> emulator);
  iss::SyscallEmulatorIf* syscall_emulator() { return syscall_emulator_.get(); }
  const iss::SyscallEmulatorIf* syscall_emulator() const {
    return syscall_emulator_.get();
  }

  /// Runs until every core's program exits or `max_cycles` elapse.
  RunResult run(Cycle max_cycles = ~Cycle{0});

  /// Runs at least `min_cycles`, then keeps simulating normally until the
  /// first round boundary where the event queue is naturally empty and
  /// stops there with RunResult::quiesced set (the checkpoint cut point).
  /// The run still ends early if every program exits, and unconditionally
  /// at `max_cycles`. Nothing is drained or perturbed: the stop state is
  /// exactly what the uninterrupted run passes through at that round.
  RunResult run_to_quiesce(Cycle min_cycles, Cycle max_cycles = ~Cycle{0});

  /// Renders the statistics tree. Per-core statistics are live views of the
  /// CoreModel counters, so the report is always current.
  std::string report(simfw::ReportFormat format = simfw::ReportFormat::kText)
      const;

 private:
  SimConfig config_;
  simfw::Scheduler scheduler_;
  iss::SparseMemory memory_;

  std::unique_ptr<simfw::Unit> root_;
  std::unique_ptr<memhier::McMapper> mc_mapper_;
  std::unique_ptr<memhier::Noc> noc_;
  std::vector<std::unique_ptr<iss::CoreModel>> cores_;
  std::vector<std::unique_ptr<simfw::Unit>> tile_units_;
  std::vector<std::unique_ptr<simfw::Unit>> core_stat_units_;
  std::vector<std::unique_ptr<memhier::L2Bank>> banks_;
  std::vector<std::unique_ptr<memhier::MemoryController>> mcs_;
  std::vector<std::unique_ptr<memhier::LlcSlice>> llcs_;
  std::unique_ptr<ParaverTraceWriter> trace_;
  std::unique_ptr<Orchestrator> orchestrator_;
  std::unique_ptr<iss::SyscallEmulatorIf> syscall_emulator_;
};

}  // namespace coyote::core
