#include "core/orchestrator.h"

#include <algorithm>
#include <sstream>

#include "common/binio.h"

namespace coyote::core {

using memhier::MemOp;
using memhier::MemRequest;
using memhier::MemResponse;

Orchestrator::Orchestrator(simfw::Unit* parent, const SimConfig& config,
                           std::vector<std::unique_ptr<iss::CoreModel>>* cores,
                           std::vector<std::unique_ptr<memhier::L2Bank>>* banks,
                           memhier::Noc* noc, ParaverTraceWriter* trace)
    : simfw::Unit(parent, "orchestrator"),
      config_(config),
      cores_(cores),
      banks_(banks),
      noc_(noc),
      trace_(trace),
      core_states_(config.num_cores, CoreState::kActive),
      stall_since_(config.num_cores, 0),
      shared_mapper_(config.mapping, config.num_l2_banks(),
                     config.core.line_bytes),
      private_mapper_(config.mapping, config.l2_banks_per_tile,
                      config.core.line_bytes),
      resp_in_(this, "resp_in"),
      exit_codes_(config.num_cores, 0),
      cycles_(stats().counter("cycles", "simulated cycles")),
      retired_(stats().counter("instructions", "instructions retired")),
      l1_miss_requests_(
          stats().counter("l1_miss_requests", "requests sent into the L2")),
      fills_(stats().counter("fills", "line fills delivered to cores")),
      fast_forwarded_cycles_(stats().counter(
          "fast_forwarded_cycles",
          "cycles skipped while every live core was stalled")) {
  coherent_ = config.coherence == Coherence::kMesi;
  if (coherent_) {
    probes_delivered_ = &stats().counter(
        "coh_probes_delivered",
        "invalidation/downgrade probes delivered to L1s");
  }
  req_out_.reserve(banks->size());
  for (BankId bank = 0; bank < banks->size(); ++bank) {
    req_out_.push_back(std::make_unique<simfw::DataOutPort<MemRequest>>(
        this, strfmt("req_out%u", bank)));
    req_out_.back()->bind((*banks)[bank]->cpu_req_in());
    (*banks)[bank]->cpu_resp_out().bind(resp_in_);
  }
  resp_in_.register_handler(
      [this](const MemResponse& response) { on_response(response); });
  live_cores_ = config.num_cores;
  active_cores_ = config.num_cores;

  num_l2_banks_ = config.num_l2_banks();
  req_delay_.resize(static_cast<std::size_t>(config.num_tiles()) *
                    num_l2_banks_);
  req_hops_.resize(req_delay_.size());
  for (TileId tile = 0; tile < config.num_tiles(); ++tile) {
    for (BankId bank = 0; bank < num_l2_banks_; ++bank) {
      const std::uint32_t src = noc->tile_node(tile);
      const std::uint32_t dst = noc->tile_node(tile_of_bank(bank));
      const std::size_t route =
          static_cast<std::size_t>(tile) * num_l2_banks_ + bank;
      req_delay_[route] = noc->latency(src, dst);
      req_hops_[route] = noc->hops(src, dst);
    }
  }
  writeback_buffer_.reserve(8);
}

BankId Orchestrator::bank_for(CoreId core, Addr line_addr) const {
  if (config_.l2_sharing == L2Sharing::kShared) {
    return shared_mapper_.bank_of(line_addr);
  }
  const TileId tile = tile_of_core(core);
  return tile * config_.l2_banks_per_tile + private_mapper_.bank_of(line_addr);
}

void Orchestrator::route_request(CoreId core,
                                 const iss::LineRequest& request) {
  // In MESI mode data misses become directory transactions; instruction
  // fetches and writebacks keep their plain ops (the L1I is read-only and
  // stays outside the protocol).
  MemOp op = coherent_ ? MemOp::kGetS : MemOp::kLoad;
  if (request.is_writeback) {
    op = MemOp::kWriteback;
  } else if (request.is_ifetch) {
    op = MemOp::kIFetch;
  } else if (request.is_store) {
    op = coherent_ ? MemOp::kGetM : MemOp::kStore;
  }
  const BankId bank = bank_for(core, request.line_addr);
  const TileId src_tile = tile_of_core(core);
  ++l1_miss_requests_;
  if (trace_ != nullptr && !request.is_writeback) {
    trace_->record(scheduler().now(), core,
                   request.is_ifetch ? TraceEvent::kL1IMiss
                                     : TraceEvent::kL1DMiss,
                   request.line_addr);
  }
  const MemRequest message{request.line_addr, op, core, src_tile, bank};
  if (noc_->contended()) {
    auto* port = req_out_[bank].get();
    noc_->transmit(noc_->tile_node(src_tile),
                   noc_->tile_node(tile_of_bank(bank)),
                   noc_->message_bytes(message), 0, core,
                   [port, message]() { port->deliver_now(message); });
    return;
  }
  const std::size_t route =
      static_cast<std::size_t>(src_tile) * num_l2_banks_ + bank;
  noc_->record_traversal(req_hops_[route]);
  req_out_[bank]->send(message, req_delay_[route]);
}

void Orchestrator::on_response(const MemResponse& response) {
  if (response.op == MemOp::kInv || response.op == MemOp::kDowngrade) {
    // Directory probe, not a fill: must never reactivate a stalled core.
    handle_probe(response);
    return;
  }
  ++fills_;
  iss::CoreModel& core = *(*cores_)[response.core];
  if (trace_ != nullptr) {
    trace_->record(scheduler().now(), response.core, TraceEvent::kL2MissFill,
                   response.line_addr);
  }
  writeback_buffer_.clear();
  core.fill(response.line_addr, response.grant, writeback_buffer_);
  for (const iss::LineRequest& writeback : writeback_buffer_) {
    route_request(response.core, writeback);
  }
  // The fill may satisfy the dependency (or instruction line) the core is
  // sleeping on: reactivate it. If another dependency is still pending the
  // next step() attempt re-stalls it — one retry per fill, as in the paper.
  if (core_states_[response.core] == CoreState::kStalled) {
    const Cycle now = scheduler().now();
    const Cycle slept = now - stall_since_[response.core];
    // The stalling attempt itself already accounted one cycle.
    if (slept > 1) core.account_stall_cycles(slept - 1);
    if (trace_ != nullptr && slept > 0) {
      trace_->record_state(stall_since_[response.core], now, response.core,
                           TraceState::kStalled);
    }
    core_states_[response.core] = CoreState::kActive;
    ++active_cores_;
  }
}

void Orchestrator::handle_probe(const MemResponse& probe) {
  const bool to_shared = probe.op == MemOp::kDowngrade;
  iss::CoreModel& core = *(*cores_)[probe.core];
  const bool dirty = core.coherence_probe(probe.line_addr, to_shared);
  ++*probes_delivered_;
  if (trace_ != nullptr) {
    trace_->record(scheduler().now(), probe.core, TraceEvent::kCohInv,
                   probe.line_addr);
  }
  // Ack back to the probing bank (the same bank that serves this line for
  // this core); a dirty copy travels home folded into the ack.
  const BankId bank = bank_for(probe.core, probe.line_addr);
  const TileId src_tile = tile_of_core(probe.core);
  const MemRequest ack{probe.line_addr,
                       to_shared ? MemOp::kWbAck : MemOp::kInvAck,
                       probe.core, src_tile, bank, dirty};
  if (noc_->contended()) {
    auto* port = req_out_[bank].get();
    noc_->transmit(noc_->tile_node(src_tile),
                   noc_->tile_node(tile_of_bank(bank)),
                   noc_->message_bytes(ack), 0, probe.core,
                   [port, ack]() { port->deliver_now(ack); });
    return;
  }
  const std::size_t route =
      static_cast<std::size_t>(src_tile) * num_l2_banks_ + bank;
  noc_->record_traversal(req_hops_[route]);
  req_out_[bank]->send(ack, req_delay_[route]);
}

void Orchestrator::step_single_active(Cycle stop_cycle,
                                      iss::CoreStepResult& result) {
  auto& sched = scheduler();
  const Cycle first = sched.now();

  // Find the lone runnable core.
  CoreId id = 0;
  while (core_states_[id] != CoreState::kActive) ++id;
  iss::CoreModel& core = *(*cores_)[id];

  // Cycles the block may cover. In the one-step-per-round loop an event at
  // cycle X fires before X's instruction runs — except at `first`, whose
  // events are still pending when the round steps (they fire in the round's
  // closing advance). The block therefore stops short of the next scheduled
  // event, of the run limit, and of the uint32 step-count cap.
  Cycle span = stop_cycle - first;  // >= 1: run() checked now < stop_cycle
  if (sched.has_pending()) {
    const Cycle event = sched.next_event_cycle();
    span = event > first ? std::min(span, event - first) : 1;
  }
  if (span > kMaxBlockCycles) span = kMaxBlockCycles;

  const std::uint32_t k = core.step_block(
      result, first, static_cast<std::uint32_t>(span), /*advance_cycles=*/true);
  retired_ += k;

  // Cycle of the block's final attempt: the k-th retire sat at
  // first + k - 1; a stalled attempt sits one cycle past the last retire.
  const Cycle last_attempt = result.status == iss::StepStatus::kRetired
                                 ? first + k - 1
                                 : first + k;

  // Park simulated time at that cycle before routing, so the requests'
  // trace records and send delays carry the timestamps the per-round loop
  // would have produced. Nothing fires here: the span ends before the next
  // scheduled event.
  if (last_attempt != first) sched.advance_to(last_attempt);
  for (const iss::LineRequest& request : result.requests) {
    route_request(id, request);
  }

  if (result.status == iss::StepStatus::kRetired) {
    if (result.exited) {
      exit_codes_[id] = result.exit_code;
      core_states_[id] = CoreState::kHalted;
      --live_cores_;
      --active_cores_;
    }
  } else {
    // RAW or ifetch stall: deactivate until a fill arrives. Must happen
    // before the closing advance — the waking fill may fire there.
    core_states_[id] = CoreState::kStalled;
    stall_since_[id] = last_attempt;
    --active_cores_;
  }

  // The round's closing advance, exactly the loop's advance_to(now + 1).
  sched.advance_to(last_attempt + 1);
}

std::string Orchestrator::hang_diagnostic(const char* reason) const {
  std::ostringstream os;
  os << "hang diagnostic (" << reason << ") at cycle " << scheduler().now()
     << "\n";
  for (CoreId id = 0; id < config_.num_cores; ++id) {
    const iss::CoreModel& core = *(*cores_)[id];
    os << "  core " << id << ": ";
    switch (core_states_[id]) {
      case CoreState::kActive:
        os << "active";
        break;
      case CoreState::kHalted:
        os << "halted (exit " << exit_codes_[id] << ")";
        break;
      case CoreState::kStalled:
        os << "stalled since cycle " << stall_since_[id];
        break;
    }
    const std::vector<Addr> waits = core.outstanding_lines();
    if (!waits.empty()) {
      os << ", waiting on";
      for (Addr line : waits) {
        os << strfmt(" 0x%llx", static_cast<unsigned long long>(line));
      }
    }
    os << "\n";
  }
  for (BankId bank = 0; bank < banks_->size(); ++bank) {
    const memhier::L2Bank& l2 = *(*banks_)[bank];
    const std::vector<Addr> mshrs = l2.mshr_lines();
    if (!mshrs.empty() || l2.queued_requests() != 0 ||
        l2.fault_lost_messages() != 0) {
      os << "  l2bank " << bank << ": " << mshrs.size() << " MSHRs";
      for (Addr line : mshrs) {
        os << strfmt(" 0x%llx", static_cast<unsigned long long>(line));
      }
      os << ", " << l2.queued_requests() << " queued, "
         << l2.fault_lost_messages() << " lost messages\n";
    }
    if (l2.directory() != nullptr) {
      const std::vector<Addr> txns = l2.directory()->transaction_lines();
      if (!txns.empty()) {
        os << "  l2bank " << bank << " directory transactions:";
        for (Addr line : txns) {
          os << strfmt(" 0x%llx", static_cast<unsigned long long>(line));
        }
        os << "\n";
      }
    }
  }
  os << "  events pending: " << (scheduler().has_pending() ? "yes" : "no")
     << "\n";
  return os.str();
}

RunStats Orchestrator::run(Cycle max_cycles, Cycle quiesce_after) {
  auto& sched = scheduler();
  const Cycle start_cycle = sched.now();
  const std::uint64_t start_instret = retired_.get();
  const std::uint32_t quantum = config_.interleave_quantum;
  const std::uint32_t num_cores = config_.num_cores;

  // Re-derive scheduling state (cores may have been reset since the last
  // run; halted() is authoritative).
  live_cores_ = 0;
  active_cores_ = 0;
  for (CoreId id = 0; id < num_cores; ++id) {
    if ((*cores_)[id]->halted()) {
      core_states_[id] = CoreState::kHalted;
    } else {
      core_states_[id] = CoreState::kActive;
      ++live_cores_;
      ++active_cores_;
    }
  }

  RunStats stats_out;
  iss::CoreStepResult result;

  // End-of-run cycle, saturated so `start + max_cycles` cannot wrap.
  const Cycle stop_cycle = max_cycles > ~Cycle{0} - start_cycle
                               ? ~Cycle{0}
                               : start_cycle + max_cycles;

  // Liveness watchdog (sim.watchdog_cycles): the deadline slides forward
  // whenever any core retires an instruction; `watchdog` consecutive
  // zero-retire cycles declare the machine hung. Checked at every round
  // boundary, so detection lands within one round of the bound.
  const Cycle watchdog = config_.watchdog_cycles;
  std::uint64_t wd_last_retired = retired_.get();
  Cycle wd_progress_cycle = sched.now();
  const auto wd_deadline = [&]() {
    return watchdog > ~Cycle{0} - wd_progress_cycle
               ? ~Cycle{0}
               : wd_progress_cycle + watchdog;
  };
  const auto watchdog_check = [&]() {
    if (watchdog == 0) return;
    if (retired_.get() != wd_last_retired) {
      wd_last_retired = retired_.get();
      wd_progress_cycle = sched.now();
      return;
    }
    if (sched.now() - wd_progress_cycle >= watchdog) {
      throw HangError(
          strfmt("Orchestrator: watchdog — no instruction retired in %llu "
                 "cycles (sim.watchdog_cycles=%llu)",
                 static_cast<unsigned long long>(sched.now() -
                                                 wd_progress_cycle),
                 static_cast<unsigned long long>(watchdog)),
          hang_diagnostic("forward-progress watchdog"));
    }
  };

  if (!config_.batched_stepping) {
    // Paper-literal loop: one step() call per core per round, requests
    // routed as each instruction produces them. The batched paths below are
    // bit-exact reformulations of this loop; keeping it callable lets the
    // determinism tests cross-check them.
    while (live_cores_ > 0 && sched.now() - start_cycle < max_cycles) {
      watchdog_check();
      // Quiesce stop: the queue is naturally empty at a round boundary —
      // no MSHR, probe or fill is in flight anywhere, so this is exactly
      // the state the uninterrupted run passes through here.
      if (quiesce_after != kNoQuiesce &&
          sched.now() - start_cycle >= quiesce_after && !sched.has_pending() &&
          active_cores_ == live_cores_) {
        stats_out.quiesced = true;
        break;
      }
      if (active_cores_ == 0) {
        // Every live core sleeps on a fill.
        if (!sched.has_pending()) {
          throw HangError(
              "Orchestrator: deadlock — all cores stalled and no events "
              "pending",
              hang_diagnostic("wedged: all cores stalled, event queue empty"));
        }
        if (config_.fast_forward_idle) {
          Cycle wake = std::max(sched.next_event_cycle(), sched.now() + 1);
          if (watchdog != 0) {
            wake = std::min(wake, std::max(wd_deadline(), sched.now() + 1));
          }
          fast_forwarded_cycles_ += wake - sched.now() - 1;
          sched.advance_to(wake);
        } else {
          sched.tick();  // paper-faithful: one cycle at a time
        }
        continue;
      }

      for (CoreId id = 0; id < num_cores; ++id) {
        if (core_states_[id] != CoreState::kActive) continue;
        iss::CoreModel& core = *(*cores_)[id];
        for (std::uint32_t slot = 0; slot < quantum; ++slot) {
          core.step(result, sched.now());
          for (const iss::LineRequest& request : result.requests) {
            route_request(id, request);
          }
          if (result.status == iss::StepStatus::kRetired) {
            ++retired_;
            if (result.exited) {
              exit_codes_[id] = result.exit_code;
              core_states_[id] = CoreState::kHalted;
              --live_cores_;
              --active_cores_;
              break;
            }
            continue;
          }
          // RAW or ifetch stall: deactivate until a fill arrives.
          core_states_[id] = CoreState::kStalled;
          stall_since_[id] = sched.now();
          --active_cores_;
          break;
        }
      }

      sched.advance_to(sched.now() + quantum);
    }
  } else {
    while (live_cores_ > 0 && sched.now() < stop_cycle) {
      watchdog_check();
      // Quiesce stop (see the literal loop above for the invariant).
      if (quiesce_after != kNoQuiesce &&
          sched.now() - start_cycle >= quiesce_after && !sched.has_pending() &&
          active_cores_ == live_cores_) {
        stats_out.quiesced = true;
        break;
      }
      if (active_cores_ == 0) {
        // Every live core sleeps on a fill.
        if (!sched.has_pending()) {
          throw HangError(
              "Orchestrator: deadlock — all cores stalled and no events "
              "pending",
              hang_diagnostic("wedged: all cores stalled, event queue empty"));
        }
        if (config_.fast_forward_idle) {
          Cycle wake = std::max(sched.next_event_cycle(), sched.now() + 1);
          if (watchdog != 0) {
            wake = std::min(wake, std::max(wd_deadline(), sched.now() + 1));
          }
          fast_forwarded_cycles_ += wake - sched.now() - 1;
          sched.advance_to(wake);
        } else {
          // Ticking cycle by cycle through an all-stalled stretch fires
          // nothing and touches no state until the next event, so hopping
          // straight there (capped at the run limit — and at the watchdog
          // deadline, so a hang is declared within the configured bound
          // rather than after a hop to a far-future event) is bit-identical.
          Cycle hop = std::min(
              std::max(sched.next_event_cycle(), sched.now() + 1),
              stop_cycle);
          if (watchdog != 0) {
            hop = std::min(hop, std::max(wd_deadline(), sched.now() + 1));
          }
          sched.advance_to(hop);
        }
        continue;
      }

      if (quantum == 1 && active_cores_ == 1) {
        step_single_active(stop_cycle, result);
        continue;
      }

      for (CoreId id = 0; id < num_cores; ++id) {
        if (core_states_[id] != CoreState::kActive) continue;
        iss::CoreModel& core = *(*cores_)[id];
        // All quantum attempts run at the same cycle; nothing can fire
        // between them, so batching the attempts and routing the block's
        // requests afterwards issues the exact schedule-call sequence the
        // slot-at-a-time loop would.
        retired_ += core.step_block(result, sched.now(), quantum,
                                    /*advance_cycles=*/false);
        for (const iss::LineRequest& request : result.requests) {
          route_request(id, request);
        }
        if (result.status == iss::StepStatus::kRetired) {
          if (result.exited) {
            exit_codes_[id] = result.exit_code;
            core_states_[id] = CoreState::kHalted;
            --live_cores_;
            --active_cores_;
          }
        } else {
          // RAW or ifetch stall: deactivate until a fill arrives.
          core_states_[id] = CoreState::kStalled;
          stall_since_[id] = sched.now();
          --active_cores_;
        }
      }

      sched.advance_to(sched.now() + quantum);
    }
  }

  stats_out.all_exited = live_cores_ == 0;
  stats_out.cycles = sched.now() - start_cycle;
  cycles_ += stats_out.cycles;
  stats_out.instructions = retired_.get() - start_instret;
  stats_out.hit_cycle_limit = !stats_out.all_exited && !stats_out.quiesced;
  stats_out.exit_codes = exit_codes_;
  return stats_out;
}

void Orchestrator::save_state(BinWriter& w) const {
  w.u64(exit_codes_.size());
  for (std::int64_t code : exit_codes_) w.i64(code);
}

void Orchestrator::load_state(BinReader& r) {
  const std::uint64_t n = r.u64();
  if (n != exit_codes_.size()) {
    throw SimError("Orchestrator checkpoint core-count mismatch");
  }
  for (std::int64_t& code : exit_codes_) code = r.i64();
}

}  // namespace coyote::core
