// The Orchestrator (paper §III-A): "Spike and Sparta are slaves to an
// Orchestrator that handles the simulation, keeping track of timing, and
// synchronizing both parts. Every cycle, the Orchestrator first tries to
// simulate an instruction on each of the active cores using Spike … Once an
// instruction has been simulated in each of the active cores, the
// Orchestrator checks if Sparta has any in-flight events for the current
// cycle [and] the Sparta model is advanced to keep it in sync."
//
// Two execution modes:
//  * interleave_quantum == 1 — the paper's cycle-accurate round-robin.
//  * interleave_quantum > 1 — Spike-style interleaving (ablation A1): each
//    core runs up to Q instructions back-to-back per round and the event
//    model advances Q cycles at once. Faster, lower timing fidelity.
//
// Host-performance note: with SimConfig::batched_stepping (the default) the
// per-round dispatch is paid once per *block* instead of once per
// instruction — cores retire through CoreModel::step_block, a lone runnable
// core batches whole miss-to-miss stretches, and all-stalled stretches
// advance in one scheduler hop. Every fast path is constructed to be
// bit-identical to the paper-literal loop (same cycles, counters, event
// ordering and trace records); batched_stepping=false forces the literal
// loop so tests can cross-check the two.
#pragma once

#include <memory>
#include <vector>

#include "core/sim_config.h"
#include "core/trace.h"
#include "iss/core_model.h"
#include "memhier/l2bank.h"
#include "simfw/port.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::core {

/// Outcome of one run() call.
struct RunStats {
  Cycle cycles = 0;               ///< simulated cycles elapsed in this run
  std::uint64_t instructions = 0; ///< instructions retired in this run
  bool all_exited = false;        ///< every core ran to completion
  bool hit_cycle_limit = false;
  bool quiesced = false;          ///< stopped at a quiesce point (see run())
  std::vector<std::int64_t> exit_codes;  ///< per core; 0 until it exits
};

class Orchestrator : public simfw::Unit {
 public:
  Orchestrator(simfw::Unit* parent, const SimConfig& config,
               std::vector<std::unique_ptr<iss::CoreModel>>* cores,
               std::vector<std::unique_ptr<memhier::L2Bank>>* banks,
               memhier::Noc* noc, ParaverTraceWriter* trace);

  /// One request out-port per L2 bank (bound to the bank's cpu_req_in) and
  /// one response in-port shared by all banks.
  simfw::DataOutPort<memhier::MemRequest>& req_out(BankId bank) {
    return *req_out_.at(bank);
  }
  simfw::DataInPort<memhier::MemResponse>& resp_in() { return resp_in_; }

  /// Selects the L2 bank serving `line_addr` for requests from `core`
  /// (shared: system-wide interleave; private: within the core's tile).
  BankId bank_for(CoreId core, Addr line_addr) const;

  TileId tile_of_core(CoreId core) const {
    return core / config_.cores_per_tile;
  }
  TileId tile_of_bank(BankId bank) const {
    return bank / config_.l2_banks_per_tile;
  }

  /// No quiesce stop: run() only returns on completion or the cycle limit.
  static constexpr Cycle kNoQuiesce = ~Cycle{0};

  /// Runs until every core exits or `max_cycles` elapse. When
  /// `quiesce_after` is set, the run additionally stops — with
  /// RunStats::quiesced — at the first round boundary at least
  /// `quiesce_after` cycles in where the event queue is naturally empty
  /// (no miss, fill or coherence transaction in flight anywhere). The
  /// simulation is not perturbed in any way to get there: a quiesce stop
  /// leaves exactly the state the uninterrupted run passes through at that
  /// round, which is what makes checkpoints bit-identical.
  RunStats run(Cycle max_cycles, Cycle quiesce_after = kNoQuiesce);

  /// Checkpoint: the per-core exit codes (every other run() bookkeeping is
  /// re-derived from the cores' halted() state on entry; counters live in
  /// the statistics tree).
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  /// A core exited during functional fast-forward (outside run()); records
  /// its exit code so later RunStats report it like a detailed-mode exit.
  void record_ffwd_exit(CoreId core, std::int64_t code) {
    exit_codes_.at(core) = code;
  }

 private:
  /// Upper bound on the cycles one single-active-core block may cover, so
  /// the block's step count always fits the uint32 interface and a runaway
  /// core still re-checks the run loop's bookkeeping periodically.
  static constexpr Cycle kMaxBlockCycles = Cycle{1} << 20;

  void route_request(CoreId core, const iss::LineRequest& request);
  void on_response(const memhier::MemResponse& response);
  /// Delivers a directory probe (kInv / kDowngrade) to the target L1 and
  /// sends the ack back to the probing bank.
  void handle_probe(const memhier::MemResponse& probe);

  /// Fast path for quantum == 1 with exactly one runnable core: retires a
  /// whole block of instructions (bounded by the next scheduled event and
  /// `stop_cycle`) before paying the round-loop dispatch again. Bit-exact
  /// with the one-instruction-per-round loop.
  void step_single_active(Cycle stop_cycle, iss::CoreStepResult& result);

  /// Scheduling state of one core. Stalled cores are *not* stepped (paper:
  /// "the core is marked as inactive. No further instructions will be
  /// simulated on this core until the dependency is satisfied"); a fill
  /// addressed to the core reactivates it.
  enum class CoreState : std::uint8_t { kActive, kStalled, kHalted };

  /// Renders the structured hang diagnostic carried by HangError: per-core
  /// blocked-on state, per-bank MSHR contents and directory transaction
  /// tables. Pure introspection — safe to call from any wedge state.
  std::string hang_diagnostic(const char* reason) const;

  SimConfig config_;
  std::vector<std::unique_ptr<iss::CoreModel>>* cores_;
  std::vector<std::unique_ptr<memhier::L2Bank>>* banks_;
  memhier::Noc* noc_;
  ParaverTraceWriter* trace_;

  std::vector<CoreState> core_states_;
  std::vector<Cycle> stall_since_;
  std::uint32_t live_cores_ = 0;    ///< not halted
  std::uint32_t active_cores_ = 0;  ///< runnable this round

  memhier::BankMapper shared_mapper_;
  memhier::BankMapper private_mapper_;

  /// Per-(source tile, bank) NoC route tables, precomputed at construction:
  /// request routing is the hottest Orchestrator call and the route never
  /// changes, so the latency/hop math is paid once instead of per miss.
  std::uint32_t num_l2_banks_ = 0;
  std::vector<Cycle> req_delay_;
  std::vector<std::uint32_t> req_hops_;

  simfw::DataInPort<memhier::MemResponse> resp_in_;
  std::vector<std::unique_ptr<simfw::DataOutPort<memhier::MemRequest>>>
      req_out_;

  std::vector<iss::LineRequest> writeback_buffer_;
  std::vector<std::int64_t> exit_codes_;

  simfw::Counter& cycles_;
  simfw::Counter& retired_;
  simfw::Counter& l1_miss_requests_;
  simfw::Counter& fills_;
  simfw::Counter& fast_forwarded_cycles_;

  bool coherent_ = false;  ///< SimConfig::coherence == kMesi
  /// Registered only in MESI mode so the stats tree is unchanged otherwise.
  simfw::Counter* probes_delivered_ = nullptr;
};

}  // namespace coyote::core
