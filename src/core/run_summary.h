// Versioned, machine-readable run summaries. One schema unifies the JSON
// emitted by the coyote_sim front end (--json-out), the sweep engine's
// per-point records and the bench harness, so downstream tooling parses a
// single format:
//
//   {
//     "schema_version": 1,
//     "kind": "run",
//     "workload": "<kernel or program path>",
//     "config": { "<dotted key>": "<value>", ... },   // config_to_map
//     "result": { "cycles": ..., "instructions": ..., ... },
//     "stats":  { "<unit path>": { "<counter>": ..., ... }, ... }
//   }
//
// Bump kRunSummarySchemaVersion on any incompatible change.
#pragma once

#include <string>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "core/workload_info.h"

namespace coyote::core {

// v2: per-core dbb_hits / dbb_misses / dbb_invalidations counters appear
// under "stats" whenever the decoded-block cache is on (the new default).
// v3: "workload_source" object (kind / ref / content_hash — the Workload
// API identity) and "guest_status" (first non-zero guest exit(status)).
// v4: "noc" object (mesh geometry + aggregate link counters) — emitted,
// and the version advanced, only for contended-mesh runs; crossbar and
// mesh-oracle summaries remain byte-identical v3 documents.
inline constexpr int kRunSummarySchemaVersion = 3;
inline constexpr int kRunSummaryMeshSchemaVersion = 4;

/// Escapes `text` for embedding inside a JSON string literal.
std::string json_escape(const std::string& text);

/// Builds the full summary document for one finished run. `sim` supplies
/// the statistics tree; pass `include_host_timing=false` for reproducible
/// output (drops wall_seconds/mips).
std::string run_summary_json(const WorkloadInfo& workload,
                             const Simulator& sim, const RunResult& result,
                             bool include_host_timing = true);

/// Label-only convenience (treated as a kernel-kind workload source).
std::string run_summary_json(const std::string& workload,
                             const Simulator& sim, const RunResult& result,
                             bool include_host_timing = true);

}  // namespace coyote::core
