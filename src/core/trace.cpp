#include "core/trace.h"

#include <algorithm>

#include "common/binio.h"
#include "common/error.h"

namespace coyote::core {

ParaverTraceWriter::ParaverTraceWriter(std::string basename,
                                       std::uint32_t num_cores)
    : basename_(std::move(basename)), num_cores_(num_cores) {}

void ParaverTraceWriter::record(Cycle cycle, CoreId core, TraceEvent event,
                                std::uint64_t value) {
  records_.push_back(Record{cycle, core, event, value});
}

void ParaverTraceWriter::record_state(Cycle begin, Cycle end, CoreId core,
                                      TraceState state) {
  states_.push_back(StateRecord{begin, end, core, state});
}

void ParaverTraceWriter::save_state(BinWriter& w) const {
  w.u64(records_.size());
  for (const Record& rec : records_) {
    w.u64(rec.cycle);
    w.u32(rec.core);
    w.u32(static_cast<std::uint32_t>(rec.event));
    w.u64(rec.value);
  }
  w.u64(states_.size());
  for (const StateRecord& rec : states_) {
    w.u64(rec.begin);
    w.u64(rec.end);
    w.u32(rec.core);
    w.u32(static_cast<std::uint32_t>(rec.state));
  }
}

void ParaverTraceWriter::load_state(BinReader& r) {
  records_.clear();
  states_.clear();
  const std::uint64_t num_records = r.count(1ULL << 40);
  records_.reserve(num_records);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    Record rec;
    rec.cycle = r.u64();
    rec.core = r.u32();
    rec.event = static_cast<TraceEvent>(r.u32());
    rec.value = r.u64();
    records_.push_back(rec);
  }
  const std::uint64_t num_states = r.count(1ULL << 40);
  states_.reserve(num_states);
  for (std::uint64_t i = 0; i < num_states; ++i) {
    StateRecord rec;
    rec.begin = r.u64();
    rec.end = r.u64();
    rec.core = r.u32();
    rec.state = static_cast<TraceState>(r.u32());
    states_.push_back(rec);
  }
}

void ParaverTraceWriter::finish(Cycle total_cycles) {
  // Events arrive in simulated-time order, but state intervals are recorded
  // at their *end* (wake-up), so their begin cycles interleave across cores.
  std::stable_sort(states_.begin(), states_.end(),
                   [](const StateRecord& a, const StateRecord& b) {
                     return a.begin < b.begin;
                   });
  // ----- .prv -----
  {
    std::ofstream prv(basename_ + ".prv");
    if (!prv) throw SimError("trace: cannot open " + basename_ + ".prv");
    // Header: #Paraver(dd/mm/yy at hh:mm):duration:nodes:appls:appl_desc
    // One node with num_cores cpus; one application with one task and
    // num_cores threads, all on node 1.
    prv << "#Paraver (01/01/26 at 00:00):" << total_cycles << ":1("
        << num_cores_ << "):1:1(" << num_cores_ << ":1)\n";
    // Emit in time order, states (type 1) before events (type 2) at equal
    // timestamps — the ordering Paraver's loader prefers.
    std::size_t state_index = 0;
    std::size_t event_index = 0;
    while (state_index < states_.size() || event_index < records_.size()) {
      const bool take_state =
          state_index < states_.size() &&
          (event_index >= records_.size() ||
           states_[state_index].begin <= records_[event_index].cycle);
      if (take_state) {
        const StateRecord& state = states_[state_index++];
        // Record type 1 (state): 1:cpu:appl:task:thread:begin:end:state
        prv << "1:" << (state.core + 1) << ":1:1:" << (state.core + 1) << ":"
            << state.begin << ":" << state.end << ":"
            << static_cast<std::uint32_t>(state.state) << "\n";
      } else {
        const Record& record = records_[event_index++];
        // Record type 2 (event): 2:cpu:appl:task:thread:time:type:value
        prv << "2:" << (record.core + 1) << ":1:1:" << (record.core + 1)
            << ":" << record.cycle << ":"
            << static_cast<std::uint32_t>(record.event) << ":" << record.value
            << "\n";
      }
    }
  }
  // ----- .pcf -----
  {
    std::ofstream pcf(basename_ + ".pcf");
    if (!pcf) throw SimError("trace: cannot open " + basename_ + ".pcf");
    pcf << "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS     "
           "          CYCLES\n\n";
    pcf << "STATES\n1    Running\n5    Stalled on fill\n7    Finished\n\n";
    const auto emit = [&pcf](TraceEvent event, const char* label) {
      pcf << "EVENT_TYPE\n0    " << static_cast<std::uint32_t>(event) << "    "
          << label << "\n\n";
    };
    emit(TraceEvent::kL1DMiss, "Coyote L1D miss (value: line address)");
    emit(TraceEvent::kL1IMiss, "Coyote L1I miss (value: line address)");
    emit(TraceEvent::kRawStall, "Coyote RAW stall (value: stalled cycles)");
    emit(TraceEvent::kL2MissFill, "Coyote fill (value: line address)");
    emit(TraceEvent::kInstrRetired, "Coyote retired (value: instructions)");
    emit(TraceEvent::kCohInv,
         "Coyote coherence invalidation (value: line address)");
    emit(TraceEvent::kNocCongestion,
         "Coyote NoC congestion (value: cycles waited for a link)");
  }
  // ----- .row -----
  {
    std::ofstream row(basename_ + ".row");
    if (!row) throw SimError("trace: cannot open " + basename_ + ".row");
    row << "LEVEL THREAD SIZE " << num_cores_ << "\n";
    for (std::uint32_t core = 0; core < num_cores_; ++core) {
      row << "core." << core << "\n";
    }
  }
}

}  // namespace coyote::core
