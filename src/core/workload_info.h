// The resolved identity of a loaded workload — the vocabulary type every
// subsystem (CLI, sweep, checkpoint, fault harness, run summaries) shares
// so kernel-menu programs, assembled .s files and ELF binaries are treated
// uniformly. Resolution itself (name -> builder, path -> image) lives in
// src/loader; this header stays dependency-free so core can speak the type
// without linking the loader.
#pragma once

#include <cstdint>
#include <string>

namespace coyote::core {

/// Where a workload came from and how to recognise it again.
struct WorkloadInfo {
  /// Source class: "kernel" (program_menu name), "elf" (ELF64 image) or
  /// "asm" (text-assembled .s file).
  std::string kind = "kernel";
  /// The reference that resolves the workload: kernel name or file path.
  std::string ref;
  /// Human-readable label (defaults to `ref`); shown in reports and
  /// checkpoint banners.
  std::string label;
  /// FNV-1a 64 over the image file bytes for "elf"/"asm" sources, so a
  /// checkpoint can refuse restoration against a binary that changed on
  /// disk. 0 for menu kernels (regenerated from name/size/seed).
  std::uint64_t content_hash = 0;

  /// Back-compat shim: the free-form labels older call sites pass become a
  /// kernel-kind WorkloadInfo.
  static WorkloadInfo from_label(const std::string& text) {
    WorkloadInfo info;
    info.ref = text;
    info.label = text;
    return info;
  }
};

}  // namespace coyote::core
