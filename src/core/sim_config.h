// Top-level simulation configuration: the tiled topology (paper §III-A:
// "Coyote models tiled systems that resemble the ACME architecture. Each
// tile holds a number of cores and L2 cache banks"), the L2 organisation
// (fully-shared or tile-private), the data-mapping policy, the NoC and the
// memory controllers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "iss/core_model.h"
#include "memhier/l2bank.h"
#include "memhier/llc.h"
#include "memhier/mapping.h"
#include "memhier/memctrl.h"
#include "memhier/noc.h"

namespace coyote::core {

enum class L2Sharing : std::uint8_t {
  kShared,   ///< one address-interleaved L2 spanning every bank in the system
  kPrivate,  ///< each tile's banks serve only that tile's cores
};

inline const char* l2_sharing_name(L2Sharing sharing) {
  return sharing == L2Sharing::kShared ? "shared" : "private";
}

/// Inter-L1 coherence model. kNone reproduces the paper's original
/// idealization (private L1s, no coherence traffic); kMesi adds a
/// directory-based MESI write-invalidate protocol in the L2 banks.
enum class Coherence : std::uint8_t {
  kNone,
  kMesi,
};

inline const char* coherence_name(Coherence coherence) {
  return coherence == Coherence::kMesi ? "mesi" : "none";
}

/// Deterministic fault-injection plan knobs (config group `fault.*`,
/// consumed by src/fault). All state perturbations and message drops are
/// derived from `seed` alone, so the same plan replays bit-identically.
struct FaultConfig {
  bool enable = false;        ///< default off: zero behavioural footprint
  std::uint64_t seed = 1;     ///< plan RNG seed (a natural sweep axis)
  std::uint32_t count = 1;    ///< injections drawn per run
  /// '+'-separated target classes drawn from mem, l1d, l2, reg, noc, mc.
  /// ('+' rather than ',' so the value survives sweep-axis tokenization.)
  std::string targets = "mem";
  Cycle window_begin = 0;        ///< earliest injection cycle (inclusive)
  Cycle window_end = 100000;     ///< latest injection cycle (exclusive)
  /// NoC drop protocol: how often a dropped directory response is
  /// retransmitted before the message is lost for good. 0 = no retransmit
  /// (a dropped response wedges the requester — the watchdog litmus).
  std::uint32_t noc_retries = 3;
  Cycle noc_timeout = 512;       ///< base retransmit backoff (doubles/attempt)
  Cycle mc_stall_cycles = 256;   ///< transient memory-controller stall length
};

/// Workload selection (config group `workload.*`), resolved by
/// loader::load_workload: either a program_menu kernel by name or an ELF64
/// image by path. Carried inside SimConfig so every consumer of a config —
/// CLI runs, sweep points, checkpoints — names its workload the same way.
struct WorkloadConfig {
  /// Menu kernel to build when no ELF is given.
  std::string kernel = "matmul_scalar";
  /// Path to an ELF64 image; the sentinel "none" (the default) selects the
  /// kernel path instead. When both are set explicitly, the ELF wins (the
  /// CLI additionally rejects conflicting flags up front).
  std::string elf = "none";
  std::uint64_t size = 0;     ///< kernel problem size; 0 = kernel default
  std::uint64_t seed = 2024;  ///< kernel workload-generation seed

  bool is_elf() const { return !elf.empty() && elf != "none"; }
};

struct SimConfig {
  // ----- topology -----
  std::uint32_t num_cores = 1;
  std::uint32_t cores_per_tile = 8;
  std::uint32_t l2_banks_per_tile = 2;

  // ----- cores (ISS + L1, the "Spike side") -----
  iss::CoreConfig core;

  // ----- L2 (the "Sparta side") -----
  L2Sharing l2_sharing = L2Sharing::kShared;
  memhier::L2BankConfig l2_bank;
  memhier::MappingPolicy mapping = memhier::MappingPolicy::kSetInterleave;
  /// Default kNone keeps seed behaviour (and all baselines) bit-identical.
  /// With l2_sharing == kPrivate the directory scope is the tile: only
  /// intra-tile sharers are tracked; cross-tile sharing stays idealized.
  Coherence coherence = Coherence::kNone;

  // ----- interconnect and memory -----
  memhier::NocConfig noc;
  std::uint32_t num_mcs = 2;
  memhier::MemCtrlConfig mc;
  std::uint32_t mc_interleave_bytes = 4096;
  /// Optional third cache level: one LLC slice in front of each memory
  /// controller (the deepest level of the paper's Fig. 2 sample system).
  memhier::LlcConfig llc;

  // ----- orchestration -----
  /// 1 reproduces the paper's cycle-accurate round-robin (interleaving
  /// disabled). Larger values emulate Spike-style interleaving: each core
  /// executes up to this many instructions back-to-back per scheduling
  /// round, trading timing fidelity for simulation speed (ablation A1).
  std::uint32_t interleave_quantum = 1;

  /// When every live core is asleep on a fill, jump simulated time straight
  /// to the next event instead of ticking cycle by cycle. Results are
  /// identical; the flag's only observable effect is the
  /// `fast_forwarded_cycles` statistic it maintains. (With batched_stepping
  /// the default path already advances idle stretches in one hop on the
  /// host side, so this is no longer a speed lever — it is kept as the
  /// paper-era ablation knob.)
  bool fast_forward_idle = false;

  /// Host-side fast path: let the Orchestrator retire instructions in
  /// blocks (and hop over idle stretches) instead of paying the full
  /// per-instruction dispatch every cycle. Simulated results — cycles,
  /// instructions, miss counters, traces — are bit-identical either way;
  /// `false` forces the paper-literal one-instruction-per-call loop and
  /// exists so regression tests can cross-check the two paths.
  bool batched_stepping = true;

  // ----- checkpoint / fast-forward sampling (src/ckpt) -----
  /// Fast-forward budget: execute up to this many instructions per core
  /// purely functionally (Spike-style, no timing) before detailed timing
  /// begins. 0 disables fast-forward. Drivers honouring ffwd_stop_at_roi
  /// may stop earlier at a roi_begin marker.
  std::uint64_t ffwd_instructions = 0;
  /// Warm caches and the directory functionally while fast-forwarding, so
  /// detailed simulation does not start against cold arrays.
  bool ffwd_warmup = true;
  /// SMARTS-style functional-warming window: when non-zero, warm-up applies
  /// only to the last this-many instructions of each core's budget — state
  /// installed earlier in a long skip is overwritten before the handover
  /// anyway, so warming the whole skip is wasted host time. 0 warms the
  /// entire skip. Only meaningful with an instruction-budget fast-forward
  /// (the window is anchored at the budget's end, which a roi_begin stop
  /// may never reach).
  std::uint64_t ffwd_warmup_window = 0;
  /// Stop fast-forwarding when any hart writes the roi_begin CSR (0x800)
  /// even if the instruction budget is not exhausted.
  bool ffwd_stop_at_roi = true;

  // ----- robustness -----
  /// Liveness watchdog: declare the machine hung (HangError with a
  /// structured diagnostic) after this many consecutive simulated cycles
  /// with zero retired instructions across every core. 0 disables the
  /// watchdog, keeping seed behaviour bit-identical.
  Cycle watchdog_cycles = 0;
  /// Fault-injection plan (src/fault); inert while !fault.enable.
  FaultConfig fault;

  // ----- workload -----
  /// What to run (src/loader resolves it); defaults reproduce the classic
  /// matmul_scalar menu path, so configs predating the Workload API behave
  /// unchanged.
  WorkloadConfig workload;

  // ----- outputs -----
  bool enable_trace = false;
  std::string trace_basename = "coyote_trace";

  std::uint32_t num_tiles() const {
    return (num_cores + cores_per_tile - 1) / cores_per_tile;
  }
  std::uint32_t num_l2_banks() const {
    return num_tiles() * l2_banks_per_tile;
  }

  /// Throws ConfigError if inconsistent.
  void validate() const {
    if (num_cores == 0) throw ConfigError("SimConfig: num_cores == 0");
    if (cores_per_tile == 0) {
      throw ConfigError("SimConfig: cores_per_tile == 0");
    }
    if (l2_banks_per_tile == 0) {
      throw ConfigError("SimConfig: l2_banks_per_tile == 0");
    }
    if (num_mcs == 0) throw ConfigError("SimConfig: num_mcs == 0");
    if (interleave_quantum == 0) {
      throw ConfigError("SimConfig: interleave_quantum == 0");
    }
    if (core.dbb_blocks == 0) {
      throw ConfigError("SimConfig: iss.dbb_blocks == 0");
    }
    if (core.line_bytes != l2_bank.line_bytes) {
      throw ConfigError(strfmt(
          "SimConfig: L1 line (%u) != L2 line (%u)", core.line_bytes,
          l2_bank.line_bytes));
    }
    if (mc_interleave_bytes < core.line_bytes) {
      throw ConfigError("SimConfig: MC interleave below line size");
    }
    if (llc.enable && llc.line_bytes != core.line_bytes) {
      throw ConfigError(strfmt("SimConfig: LLC line (%u) != L1 line (%u)",
                               llc.line_bytes, core.line_bytes));
    }
    if (coherence == Coherence::kMesi && num_cores > 64) {
      throw ConfigError(
          "SimConfig: coherence=mesi supports at most 64 cores "
          "(directory sharer bitmask)");
    }
    if (noc.model != memhier::NocModel::kIdealCrossbar &&
        noc.mesh_width == 0) {
      throw ConfigError("SimConfig: noc.mesh_width == 0");
    }
    if (noc.model == memhier::NocModel::kMesh2D) {
      if (noc.mesh_router_latency == 0) {
        throw ConfigError(
            "SimConfig: noc.mesh_router_latency must be >= 1 for "
            "noc.model=mesh");
      }
      if (noc.flit_bytes == 0) {
        throw ConfigError("SimConfig: noc.flit_bytes == 0");
      }
      const std::uint32_t nodes = num_tiles() + num_mcs;
      const std::uint32_t height =
          noc.mesh_height != 0
              ? noc.mesh_height
              : (nodes + noc.mesh_width - 1) / noc.mesh_width;
      if (static_cast<std::uint64_t>(noc.mesh_width) * height < nodes) {
        throw ConfigError(strfmt(
            "SimConfig: topo.mesh=%ux%u seats %u nodes but the machine has "
            "%u (%u tiles + %u MCs) — enlarge the mesh or use topo.mesh=auto",
            noc.mesh_width, height, noc.mesh_width * height, nodes,
            num_tiles(), num_mcs));
      }
      const std::uint32_t data_flits = memhier::flits_for(
          memhier::kMsgHeaderBytes + core.line_bytes, noc.flit_bytes);
      if (noc.buffer_flits != 0 && noc.buffer_flits < data_flits) {
        throw ConfigError(strfmt(
            "SimConfig: noc.buffer_flits=%u cannot hold a full data message "
            "(%u flits of %u bytes) — raise it or use 0 for infinite buffers",
            noc.buffer_flits, data_flits, noc.flit_bytes));
      }
    }
    // The fault plan is validated even while disarmed: a typo'd resilience
    // campaign spec should die at parse time, not when fault.enable flips.
    if (fault.count == 0) throw ConfigError("SimConfig: fault.count == 0");
    if (fault.window_begin >= fault.window_end) {
      throw ConfigError(strfmt(
          "SimConfig: fault.window_begin (%llu) must be below "
          "fault.window_end (%llu)",
          static_cast<unsigned long long>(fault.window_begin),
          static_cast<unsigned long long>(fault.window_end)));
    }
    for (const std::string& target : fault_target_tokens(fault.targets)) {
      if (target != "mem" && target != "l1d" && target != "l2" &&
          target != "reg" && target != "noc" && target != "mc") {
        throw ConfigError(strfmt(
            "SimConfig: fault.targets token '%s' not in "
            "mem|l1d|l2|reg|noc|mc", target.c_str()));
      }
    }
    if (fault_target_tokens(fault.targets).empty()) {
      throw ConfigError("SimConfig: fault.targets is empty");
    }
    // Kernel-name validity is checked at resolution time (core does not
    // link the kernel menu); here only structural emptiness is rejected.
    if (workload.kernel.empty()) {
      throw ConfigError("SimConfig: workload.kernel is empty");
    }
    if (workload.elf.empty()) {
      throw ConfigError(
          "SimConfig: workload.elf is empty (use \"none\" for the kernel "
          "path)");
    }
  }

  /// Splits a fault.targets value into its '+'-separated tokens.
  static std::vector<std::string> fault_target_tokens(
      const std::string& targets) {
    std::vector<std::string> out;
    std::string token;
    for (char c : targets) {
      if (c == '+') {
        if (!token.empty()) out.push_back(token);
        token.clear();
      } else {
        token.push_back(c);
      }
    }
    if (!token.empty()) out.push_back(token);
    return out;
  }
};

}  // namespace coyote::core
