// The programmatic configuration surface: a bidirectional bridge between
// SimConfig (the typed struct the Simulator consumes) and the flat dotted
// `key=value` table users write on the command line, in sweep specs and in
// results files. Extracted from the coyote_sim front end so that every
// entry point — CLI, examples, tests, the sweep engine — drives the same
// parameter table instead of re-implementing its own config plumbing.
//
// Round-trip guarantee: for any ConfigMap `m` accepted by config_from_map,
//
//   config_to_map(config_from_map(m))
//
// is a *complete* map (every knob present, values normalised) and a further
// parse→emit cycle is a fixpoint: parse(emit(parse(m))) == parse(m).
// Capacities speak kibibytes on the map side (`l2.size_kb`), so byte-level
// SimConfig values that are not whole KiB cannot be expressed — the CLI
// surface never produces them.
#pragma once

#include <string>
#include <vector>

#include "core/sim_config.h"
#include "simfw/params.h"

namespace coyote::core {

/// One documented `key=value` knob: dotted path, default and help text.
struct ConfigKeyInfo {
  std::string key;            ///< dotted path, e.g. "l2.size_kb"
  std::string default_value;  ///< rendered default, e.g. "256"
  std::string description;
  /// When false, config_to_map omits the key while it still holds its
  /// default. Used by knobs added after results tables were frozen
  /// (l2.coherence), so historical sweep outputs stay byte-stable.
  bool emit_when_default = true;
};

/// Every knob config_from_map understands, in stable (map) order. This is
/// the single source of truth for `--help` text and for the round-trip
/// property test: a key documented here is guaranteed to parse and to
/// survive config_from_map ∘ config_to_map.
const std::vector<ConfigKeyInfo>& config_keys();

/// Renders the knob table as indented help text (one "key  default  desc"
/// line per knob), shared by the coyote_sim and coyote_sweep front ends.
std::string config_usage();

/// Builds a validated SimConfig from dotted-path overrides. Unknown keys —
/// wrong prefix or wrong leaf — throw ConfigError rather than being
/// silently ignored, so sweep axes cannot typo away. Keys absent from the
/// map take their documented defaults. Trace outputs (enable_trace,
/// trace_basename) are not part of the map surface and stay at defaults.
SimConfig config_from_map(const simfw::ConfigMap& map);

/// Emits the complete, normalised map for `config` (every documented key
/// present, except keys marked !emit_when_default that still hold their
/// default). Inverse of config_from_map under the guarantee above.
simfw::ConfigMap config_to_map(const SimConfig& config);

/// The canonical textual rendering of a config map: one "key=value\n" line
/// per entry in map (i.e. sorted-key) order. Two maps render identically
/// iff they hold the same entries, so this text is the collision-free key
/// for caches indexed by configuration (the fault harness's golden cache,
/// the campaign memo store's verification payload).
std::string canonical_config_text(const simfw::ConfigMap& map);

/// FNV-1a 64 digest of canonical_config_text(map) — the content address
/// used to key cross-campaign memoisation and printed by
/// `coyote_sweep --dry-run`. Equal maps always hash equal; distinct maps
/// hash equal only on a 64-bit collision, which consumers must guard
/// against by verifying the stored map (see campaign::MemoStore).
std::uint64_t config_map_hash(const simfw::ConfigMap& map);

/// Hash of the *normalised* config: config_map_hash(config_to_map(config)).
/// Two spellings of the same design point ("8" vs "0x8", omitted defaults)
/// therefore share one content address.
std::uint64_t config_hash(const SimConfig& config);

/// Renders a config hash as the fixed-width 16-digit lowercase hex string
/// used in memo-store filenames and --dry-run output.
std::string config_hash_hex(std::uint64_t hash);

}  // namespace coyote::core
