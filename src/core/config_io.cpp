#include "core/config_io.h"

#include <array>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace coyote::core {

namespace {

/// The declared parameter surface, one ParameterSet per dotted prefix.
/// Declaration order is the documentation order.
struct ConfigParams {
  simfw::ParameterSet topo;
  simfw::ParameterSet core;
  simfw::ParameterSet l2;
  simfw::ParameterSet noc;
  simfw::ParameterSet llc;
  simfw::ParameterSet mc;
  simfw::ParameterSet sim;
  simfw::ParameterSet iss;
  simfw::ParameterSet ckpt;
  simfw::ParameterSet fault;
  simfw::ParameterSet workload;

  ConfigParams() {
    topo.add("cores", std::uint64_t{8}, "total core count");
    topo.add("cores_per_tile", std::uint64_t{8}, "cores per tile");
    topo.add("mesh", std::string("auto"),
             "mesh geometry WxH, e.g. 4x4 ('auto' fits the node count)");
    core.add("vlen_bits", std::uint64_t{512}, "VLEN in bits");
    core.add("l1d_kb", std::uint64_t{32}, "L1D capacity");
    core.add("l1i_kb", std::uint64_t{32}, "L1I capacity");
    l2.add("size_kb", std::uint64_t{256}, "per-bank capacity");
    l2.add("ways", std::uint64_t{16}, "associativity");
    l2.add("mshrs", std::uint64_t{16}, "in-flight misses per bank");
    l2.add("banks_per_tile", std::uint64_t{2}, "banks per tile");
    l2.add("hit_latency", std::uint64_t{8}, "hit latency");
    l2.add("miss_latency", std::uint64_t{4}, "lookup-to-forward latency");
    l2.add("sharing", std::string("shared"), "shared|private");
    l2.add("mapping", std::string("set-interleave"),
           "set-interleave|page-to-bank");
    l2.add("prefetch", std::string("none"), "none|next-line");
    l2.add("prefetch_degree", std::uint64_t{1}, "lines fetched ahead");
    l2.add("replacement", std::string("lru"), "lru|fifo|random");
    l2.add("coherence", std::string("none"), "none|mesi (L1 coherence)");
    noc.add("model", std::string("crossbar"), "crossbar|mesh-oracle|mesh");
    noc.add("latency", std::uint64_t{4}, "crossbar latency");
    noc.add("mesh_width", std::uint64_t{4}, "mesh columns");
    noc.add("mesh_hop_latency", std::uint64_t{1}, "per-hop latency");
    noc.add("mesh_router_latency", std::uint64_t{2},
            "per-message router pipeline latency (mesh models)");
    noc.add("link_bandwidth", std::uint64_t{1},
            "mesh link bandwidth in flits/cycle (0 = infinite)");
    noc.add("buffer_flits", std::uint64_t{8},
            "per-link input buffer depth in flits (0 = infinite)");
    noc.add("flit_bytes", std::uint64_t{16},
            "flit size for message serialization (mesh)");
    llc.add("enable", false, "LLC slice per memory controller");
    llc.add("size_kb", std::uint64_t{2048}, "per-slice capacity");
    llc.add("ways", std::uint64_t{16}, "associativity");
    llc.add("hit_latency", std::uint64_t{20}, "hit latency");
    mc.add("count", std::uint64_t{2}, "memory controllers");
    mc.add("latency", std::uint64_t{100}, "fixed access latency");
    mc.add("cycles_per_request", std::uint64_t{4}, "service rate");
    mc.add("model", std::string("fixed"), "fixed|dram");
    sim.add("interleave_quantum", std::uint64_t{1},
            "instructions per core per round");
    sim.add("fast_forward", false, "skip all-stalled cycles");
    sim.add("batched_stepping", true, "host-side block-stepping fast paths");
    sim.add("watchdog_cycles", std::uint64_t{0},
            "hang after N zero-retire cycles (0 = watchdog off)");
    iss.add("dbb_cache", true,
            "decoded basic-block dispatch (host speed; bit-identical)");
    iss.add("dbb_blocks", std::uint64_t{1024},
            "decoded-block cache capacity per core");
    ckpt.add("ffwd_instructions", std::uint64_t{0},
             "functional fast-forward budget per core (0 = off)");
    ckpt.add("warmup", true, "warm caches/directory while fast-forwarding");
    ckpt.add("warmup_window", std::uint64_t{0},
             "warm only the last N instructions of the budget (0 = all)");
    ckpt.add("stop_at_roi", true,
             "stop fast-forward at a roi_begin CSR write");
    fault.add("enable", false, "deterministic fault injection");
    fault.add("seed", std::uint64_t{1}, "fault-plan RNG seed");
    fault.add("count", std::uint64_t{1}, "injections per run");
    fault.add("targets", std::string("mem"),
              "'+'-separated: mem|l1d|l2|reg|noc|mc");
    fault.add("window_begin", std::uint64_t{0},
              "earliest injection cycle (inclusive)");
    fault.add("window_end", std::uint64_t{100000},
              "latest injection cycle (exclusive)");
    fault.add("noc_retries", std::uint64_t{3},
              "retransmits before a dropped response is lost");
    fault.add("noc_timeout", std::uint64_t{512},
              "base retransmit backoff in cycles (doubles per attempt)");
    fault.add("mc_stall_cycles", std::uint64_t{256},
              "transient memory-controller stall length");
    workload.add("kernel", std::string("matmul_scalar"),
                 "menu kernel to run (see --list-workloads)");
    workload.add("elf", std::string("none"),
                 "ELF64 image path ('none' = run workload.kernel)");
    workload.add("size", std::uint64_t{0},
                 "kernel problem size (0 = kernel default)");
    workload.add("seed", std::uint64_t{2024}, "kernel workload seed");
  }

  /// Prefix/set pairs in documentation order.
  std::array<std::pair<const char*, simfw::ParameterSet*>, 11> groups() {
    return {{{"topo", &topo},
             {"core", &core},
             {"l2", &l2},
             {"noc", &noc},
             {"llc", &llc},
             {"mc", &mc},
             {"sim", &sim},
             {"iss", &iss},
             {"ckpt", &ckpt},
             {"fault", &fault},
             {"workload", &workload}}};
  }
};

}  // namespace

const std::vector<ConfigKeyInfo>& config_keys() {
  static const std::vector<ConfigKeyInfo> keys = [] {
    std::vector<ConfigKeyInfo> out;
    ConfigParams params;
    for (const auto& [prefix, set] : params.groups()) {
      for (const auto& param : set->all()) {
        out.push_back(ConfigKeyInfo{std::string(prefix) + "." + param->name(),
                                    param->to_string(),
                                    param->description()});
      }
    }
    // l2.coherence, the iss.*/ckpt.*/fault.*/workload.* groups,
    // sim.watchdog_cycles, topo.mesh and the contended-mesh noc.* knobs
    // postdate the frozen sweep/results tables; omitting them at their
    // defaults keeps those outputs byte-stable (see ConfigKeyInfo).
    for (ConfigKeyInfo& info : out) {
      if (info.key == "l2.coherence" || info.key == "sim.watchdog_cycles" ||
          info.key == "topo.mesh" ||
          info.key == "noc.mesh_router_latency" ||
          info.key == "noc.link_bandwidth" ||
          info.key == "noc.buffer_flits" || info.key == "noc.flit_bytes" ||
          info.key.rfind("iss.", 0) == 0 ||
          info.key.rfind("ckpt.", 0) == 0 ||
          info.key.rfind("fault.", 0) == 0 ||
          info.key.rfind("workload.", 0) == 0) {
        info.emit_when_default = false;
      }
    }
    return out;
  }();
  return keys;
}

std::string config_usage() {
  std::ostringstream os;
  os << "config keys (key=value; every key also accepts v1,v2,... as a\n"
        "sweep axis in coyote_sweep):\n";
  for (const ConfigKeyInfo& info : config_keys()) {
    os << "  " << info.key;
    for (std::size_t pad = info.key.size(); pad < 26; ++pad) os << ' ';
    os << info.description << " (default " << info.default_value << ")\n";
  }
  return os.str();
}

SimConfig config_from_map(const simfw::ConfigMap& map) {
  ConfigParams params;

  // Reject unknown prefixes up front: ConfigMap::apply only validates leaves
  // under prefixes we ask it about, and a silently-ignored "llx.size_kb"
  // would corrupt a whole sweep campaign.
  for (const auto& [key, value] : map.values()) {
    (void)value;
    const auto dot = key.find('.');
    if (dot == std::string::npos || dot == 0) {
      throw ConfigError(
          strfmt("config key '%s' is not a dotted path", key.c_str()));
    }
    const std::string prefix = key.substr(0, dot);
    bool known = false;
    for (const auto& [name, set] : params.groups()) {
      (void)set;
      if (prefix == name) known = true;
    }
    if (!known) {
      throw ConfigError(strfmt("unknown config group '%s' (from '%s')",
                               prefix.c_str(), key.c_str()));
    }
  }
  for (const auto& [prefix, set] : params.groups()) {
    map.apply(prefix, *set);
  }

  SimConfig config;
  config.num_cores =
      static_cast<std::uint32_t>(params.topo.as<std::uint64_t>("cores"));
  config.cores_per_tile = static_cast<std::uint32_t>(
      params.topo.as<std::uint64_t>("cores_per_tile"));
  config.core.vector.vlen_bits =
      static_cast<unsigned>(params.core.as<std::uint64_t>("vlen_bits"));
  config.core.l1d_size_bytes =
      params.core.as<std::uint64_t>("l1d_kb") * 1024;
  config.core.l1i_size_bytes =
      params.core.as<std::uint64_t>("l1i_kb") * 1024;
  config.l2_bank.size_bytes = params.l2.as<std::uint64_t>("size_kb") * 1024;
  config.l2_bank.ways =
      static_cast<std::uint32_t>(params.l2.as<std::uint64_t>("ways"));
  config.l2_bank.mshrs =
      static_cast<std::uint32_t>(params.l2.as<std::uint64_t>("mshrs"));
  config.l2_banks_per_tile = static_cast<std::uint32_t>(
      params.l2.as<std::uint64_t>("banks_per_tile"));
  config.l2_bank.hit_latency = params.l2.as<std::uint64_t>("hit_latency");
  config.l2_bank.miss_latency = params.l2.as<std::uint64_t>("miss_latency");
  const std::string sharing = params.l2.as<std::string>("sharing");
  if (sharing == "shared") {
    config.l2_sharing = L2Sharing::kShared;
  } else if (sharing == "private") {
    config.l2_sharing = L2Sharing::kPrivate;
  } else {
    throw ConfigError("l2.sharing must be shared|private");
  }
  config.mapping =
      memhier::mapping_policy_from_string(params.l2.as<std::string>("mapping"));
  const std::string prefetch = params.l2.as<std::string>("prefetch");
  if (prefetch == "next-line") {
    config.l2_bank.prefetch = memhier::PrefetchPolicy::kNextLine;
  } else if (prefetch != "none") {
    throw ConfigError("l2.prefetch must be none|next-line");
  }
  config.l2_bank.prefetch_degree = static_cast<std::uint32_t>(
      params.l2.as<std::uint64_t>("prefetch_degree"));
  const std::string coherence = params.l2.as<std::string>("coherence");
  if (coherence == "none") {
    config.coherence = Coherence::kNone;
  } else if (coherence == "mesi") {
    config.coherence = Coherence::kMesi;
  } else {
    throw ConfigError("l2.coherence must be none|mesi");
  }
  const std::string replacement = params.l2.as<std::string>("replacement");
  if (replacement == "lru") {
    config.l2_bank.replacement = memhier::Replacement::kLru;
  } else if (replacement == "fifo") {
    config.l2_bank.replacement = memhier::Replacement::kFifo;
  } else if (replacement == "random") {
    config.l2_bank.replacement = memhier::Replacement::kRandom;
  } else {
    throw ConfigError("l2.replacement must be lru|fifo|random");
  }
  const std::string noc_model = params.noc.as<std::string>("model");
  if (noc_model == "crossbar") {
    config.noc.model = memhier::NocModel::kIdealCrossbar;
  } else if (noc_model == "mesh-oracle") {
    config.noc.model = memhier::NocModel::kMeshOracle;
  } else if (noc_model == "mesh") {
    config.noc.model = memhier::NocModel::kMesh2D;
  } else {
    throw ConfigError("noc.model must be crossbar|mesh-oracle|mesh");
  }
  config.noc.crossbar_latency = params.noc.as<std::uint64_t>("latency");
  config.noc.mesh_width =
      static_cast<std::uint32_t>(params.noc.as<std::uint64_t>("mesh_width"));
  config.noc.mesh_hop_latency =
      params.noc.as<std::uint64_t>("mesh_hop_latency");
  config.noc.mesh_router_latency =
      params.noc.as<std::uint64_t>("mesh_router_latency");
  config.noc.link_bandwidth = params.noc.as<std::uint64_t>("link_bandwidth");
  config.noc.buffer_flits = static_cast<std::uint32_t>(
      params.noc.as<std::uint64_t>("buffer_flits"));
  config.noc.flit_bytes =
      static_cast<std::uint32_t>(params.noc.as<std::uint64_t>("flit_bytes"));
  // topo.mesh=WxH pins the full mesh rectangle, overriding noc.mesh_width;
  // the default "auto" keeps the width knob and derives the height.
  const std::string mesh_geometry = params.topo.as<std::string>("mesh");
  if (mesh_geometry != "auto") {
    std::uint64_t width = 0;
    std::uint64_t height = 0;
    std::size_t pos = 0;
    while (pos < mesh_geometry.size() && mesh_geometry[pos] >= '0' &&
           mesh_geometry[pos] <= '9') {
      width = width * 10 + static_cast<std::uint64_t>(mesh_geometry[pos] - '0');
      ++pos;
    }
    const std::size_t width_digits = pos;
    const bool has_x = pos < mesh_geometry.size() && mesh_geometry[pos] == 'x';
    if (has_x) ++pos;
    const std::size_t height_start = pos;
    while (pos < mesh_geometry.size() && mesh_geometry[pos] >= '0' &&
           mesh_geometry[pos] <= '9') {
      height =
          height * 10 + static_cast<std::uint64_t>(mesh_geometry[pos] - '0');
      ++pos;
    }
    if (width_digits == 0 || !has_x || pos == height_start ||
        pos != mesh_geometry.size() || width == 0 || height == 0 ||
        width > 0xFFFFFFFFULL || height > 0xFFFFFFFFULL) {
      throw ConfigError(strfmt(
          "topo.mesh must be WxH (e.g. 4x4) or auto, got '%s'",
          mesh_geometry.c_str()));
    }
    config.noc.mesh_width = static_cast<std::uint32_t>(width);
    config.noc.mesh_height = static_cast<std::uint32_t>(height);
  }
  config.llc.enable = params.llc.as<bool>("enable");
  config.llc.size_bytes = params.llc.as<std::uint64_t>("size_kb") * 1024;
  config.llc.ways =
      static_cast<std::uint32_t>(params.llc.as<std::uint64_t>("ways"));
  config.llc.hit_latency = params.llc.as<std::uint64_t>("hit_latency");
  config.num_mcs =
      static_cast<std::uint32_t>(params.mc.as<std::uint64_t>("count"));
  config.mc.latency = params.mc.as<std::uint64_t>("latency");
  config.mc.cycles_per_request =
      params.mc.as<std::uint64_t>("cycles_per_request");
  const std::string mc_model = params.mc.as<std::string>("model");
  if (mc_model == "fixed") {
    config.mc.model = memhier::McModel::kFixedLatency;
  } else if (mc_model == "dram") {
    config.mc.model = memhier::McModel::kDramRowBuffer;
  } else {
    throw ConfigError("mc.model must be fixed|dram");
  }
  config.interleave_quantum = static_cast<std::uint32_t>(
      params.sim.as<std::uint64_t>("interleave_quantum"));
  config.fast_forward_idle = params.sim.as<bool>("fast_forward");
  config.batched_stepping = params.sim.as<bool>("batched_stepping");
  config.core.dbb_cache = params.iss.as<bool>("dbb_cache");
  config.core.dbb_blocks = params.iss.as<std::uint64_t>("dbb_blocks");
  config.ffwd_instructions = params.ckpt.as<std::uint64_t>("ffwd_instructions");
  config.ffwd_warmup = params.ckpt.as<bool>("warmup");
  config.ffwd_warmup_window = params.ckpt.as<std::uint64_t>("warmup_window");
  config.ffwd_stop_at_roi = params.ckpt.as<bool>("stop_at_roi");
  config.watchdog_cycles = params.sim.as<std::uint64_t>("watchdog_cycles");
  config.fault.enable = params.fault.as<bool>("enable");
  config.fault.seed = params.fault.as<std::uint64_t>("seed");
  config.fault.count =
      static_cast<std::uint32_t>(params.fault.as<std::uint64_t>("count"));
  config.fault.targets = params.fault.as<std::string>("targets");
  config.fault.window_begin = params.fault.as<std::uint64_t>("window_begin");
  config.fault.window_end = params.fault.as<std::uint64_t>("window_end");
  config.fault.noc_retries = static_cast<std::uint32_t>(
      params.fault.as<std::uint64_t>("noc_retries"));
  config.fault.noc_timeout = params.fault.as<std::uint64_t>("noc_timeout");
  config.fault.mc_stall_cycles =
      params.fault.as<std::uint64_t>("mc_stall_cycles");
  config.workload.kernel = params.workload.as<std::string>("kernel");
  config.workload.elf = params.workload.as<std::string>("elf");
  config.workload.size = params.workload.as<std::uint64_t>("size");
  config.workload.seed = params.workload.as<std::uint64_t>("seed");
  config.validate();
  return config;
}

simfw::ConfigMap config_to_map(const SimConfig& config) {
  simfw::ConfigMap map;
  const auto set_u64 = [&map](const char* key, std::uint64_t value) {
    map.set(key, std::to_string(value));
  };
  const auto set_bool = [&map](const char* key, bool value) {
    map.set(key, value ? "true" : "false");
  };
  set_u64("topo.cores", config.num_cores);
  set_u64("topo.cores_per_tile", config.cores_per_tile);
  set_u64("core.vlen_bits", config.core.vector.vlen_bits);
  set_u64("core.l1d_kb", config.core.l1d_size_bytes / 1024);
  set_u64("core.l1i_kb", config.core.l1i_size_bytes / 1024);
  set_u64("l2.size_kb", config.l2_bank.size_bytes / 1024);
  set_u64("l2.ways", config.l2_bank.ways);
  set_u64("l2.mshrs", config.l2_bank.mshrs);
  set_u64("l2.banks_per_tile", config.l2_banks_per_tile);
  set_u64("l2.hit_latency", config.l2_bank.hit_latency);
  set_u64("l2.miss_latency", config.l2_bank.miss_latency);
  map.set("l2.sharing", l2_sharing_name(config.l2_sharing));
  map.set("l2.mapping", memhier::mapping_policy_name(config.mapping));
  map.set("l2.prefetch",
          config.l2_bank.prefetch == memhier::PrefetchPolicy::kNextLine
              ? "next-line"
              : "none");
  set_u64("l2.prefetch_degree", config.l2_bank.prefetch_degree);
  map.set("l2.replacement",
          memhier::replacement_name(config.l2_bank.replacement));
  if (config.coherence != Coherence::kNone) {
    map.set("l2.coherence", coherence_name(config.coherence));
  }
  map.set("noc.model",
          config.noc.model == memhier::NocModel::kMesh2D
              ? "mesh"
              : (config.noc.model == memhier::NocModel::kMeshOracle
                     ? "mesh-oracle"
                     : "crossbar"));
  set_u64("noc.latency", config.noc.crossbar_latency);
  set_u64("noc.mesh_width", config.noc.mesh_width);
  set_u64("noc.mesh_hop_latency", config.noc.mesh_hop_latency);
  // topo.mesh and the contended-mesh knobs postdate the frozen outputs:
  // emit only off-default values (same contract as iss.*/ckpt.* below).
  {
    const memhier::NocConfig noc_defaults;
    if (config.noc.mesh_height != 0) {
      map.set("topo.mesh", strfmt("%ux%u", config.noc.mesh_width,
                                  config.noc.mesh_height));
    }
    if (config.noc.mesh_router_latency != noc_defaults.mesh_router_latency) {
      set_u64("noc.mesh_router_latency", config.noc.mesh_router_latency);
    }
    if (config.noc.link_bandwidth != noc_defaults.link_bandwidth) {
      set_u64("noc.link_bandwidth", config.noc.link_bandwidth);
    }
    if (config.noc.buffer_flits != noc_defaults.buffer_flits) {
      set_u64("noc.buffer_flits", config.noc.buffer_flits);
    }
    if (config.noc.flit_bytes != noc_defaults.flit_bytes) {
      set_u64("noc.flit_bytes", config.noc.flit_bytes);
    }
  }
  set_bool("llc.enable", config.llc.enable);
  set_u64("llc.size_kb", config.llc.size_bytes / 1024);
  set_u64("llc.ways", config.llc.ways);
  set_u64("llc.hit_latency", config.llc.hit_latency);
  set_u64("mc.count", config.num_mcs);
  set_u64("mc.latency", config.mc.latency);
  set_u64("mc.cycles_per_request", config.mc.cycles_per_request);
  map.set("mc.model", config.mc.model == memhier::McModel::kDramRowBuffer
                          ? "dram"
                          : "fixed");
  set_u64("sim.interleave_quantum", config.interleave_quantum);
  set_bool("sim.fast_forward", config.fast_forward_idle);
  set_bool("sim.batched_stepping", config.batched_stepping);
  // iss.*/ckpt.* keys postdate the frozen outputs: emit only off-default
  // values so existing sweep tables and run summaries stay byte-identical.
  {
    const iss::CoreConfig core_defaults;
    if (config.core.dbb_cache != core_defaults.dbb_cache) {
      set_bool("iss.dbb_cache", config.core.dbb_cache);
    }
    if (config.core.dbb_blocks != core_defaults.dbb_blocks) {
      set_u64("iss.dbb_blocks", config.core.dbb_blocks);
    }
  }
  if (config.ffwd_instructions != 0) {
    set_u64("ckpt.ffwd_instructions", config.ffwd_instructions);
  }
  if (!config.ffwd_warmup) set_bool("ckpt.warmup", config.ffwd_warmup);
  if (config.ffwd_warmup_window != 0) {
    set_u64("ckpt.warmup_window", config.ffwd_warmup_window);
  }
  if (!config.ffwd_stop_at_roi) {
    set_bool("ckpt.stop_at_roi", config.ffwd_stop_at_roi);
  }
  // sim.watchdog_cycles and fault.* likewise emit only off-default values.
  if (config.watchdog_cycles != 0) {
    set_u64("sim.watchdog_cycles", config.watchdog_cycles);
  }
  const FaultConfig defaults;
  if (config.fault.enable) set_bool("fault.enable", config.fault.enable);
  if (config.fault.seed != defaults.seed) {
    set_u64("fault.seed", config.fault.seed);
  }
  if (config.fault.count != defaults.count) {
    set_u64("fault.count", config.fault.count);
  }
  if (config.fault.targets != defaults.targets) {
    map.set("fault.targets", config.fault.targets);
  }
  if (config.fault.window_begin != defaults.window_begin) {
    set_u64("fault.window_begin", config.fault.window_begin);
  }
  if (config.fault.window_end != defaults.window_end) {
    set_u64("fault.window_end", config.fault.window_end);
  }
  if (config.fault.noc_retries != defaults.noc_retries) {
    set_u64("fault.noc_retries", config.fault.noc_retries);
  }
  if (config.fault.noc_timeout != defaults.noc_timeout) {
    set_u64("fault.noc_timeout", config.fault.noc_timeout);
  }
  if (config.fault.mc_stall_cycles != defaults.mc_stall_cycles) {
    set_u64("fault.mc_stall_cycles", config.fault.mc_stall_cycles);
  }
  // workload.* likewise emits only off-default values, so configs using the
  // classic matmul_scalar menu default produce byte-identical maps to the
  // pre-Workload-API tool.
  const WorkloadConfig workload_defaults;
  if (config.workload.kernel != workload_defaults.kernel) {
    map.set("workload.kernel", config.workload.kernel);
  }
  if (config.workload.elf != workload_defaults.elf) {
    map.set("workload.elf", config.workload.elf);
  }
  if (config.workload.size != workload_defaults.size) {
    set_u64("workload.size", config.workload.size);
  }
  if (config.workload.seed != workload_defaults.seed) {
    set_u64("workload.seed", config.workload.seed);
  }
  return map;
}

std::string canonical_config_text(const simfw::ConfigMap& map) {
  std::string text;
  for (const auto& [key, value] : map.values()) {
    text += key;
    text += '=';
    text += value;
    text += '\n';
  }
  return text;
}

std::uint64_t config_map_hash(const simfw::ConfigMap& map) {
  // FNV-1a 64, the same digest family the fault harness uses for
  // architectural-state digests.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char byte : canonical_config_text(map)) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t config_hash(const SimConfig& config) {
  return config_map_hash(config_to_map(config));
}

std::string config_hash_hex(std::uint64_t hash) {
  char text[17];
  std::snprintf(text, sizeof text, "%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

}  // namespace coyote::core
