// Paraver trace production (paper §III-A: "Simulation outputs … a trace of
// L1 misses. This trace can be analyzed using the Paraver Visualization
// Tools"). Writes the classic three-file set:
//   <base>.prv — the event records,
//   <base>.pcf — event-type/value definitions,
//   <base>.row — object (core) labels.
// Event encoding: one Paraver "thread" per simulated core; punctual events
// carry the event type below and the line address (or stall kind) as value.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::core {

/// Paraver event-type ids emitted by Coyote.
enum class TraceEvent : std::uint32_t {
  kL1DMiss = 42001001,
  kL1IMiss = 42001002,
  kRawStall = 42001003,
  kL2MissFill = 42001004,  ///< fill observed by the core (service completed)
  kInstrRetired = 42001005,
  kCohInv = 42001006,  ///< coherence probe delivered to the core's L1
  kNocCongestion = 42001007,  ///< mesh link-grant wait (value: cycles)

};

/// Paraver thread-state values (record type 1).
enum class TraceState : std::uint32_t {
  kRunning = 1,
  kStalled = 5,   ///< asleep on a RAW dependency or ifetch fill
  kFinished = 7,  ///< program exited
};

class ParaverTraceWriter {
 public:
  /// Buffers records in memory; files are produced by finish().
  ParaverTraceWriter(std::string basename, std::uint32_t num_cores);

  void record(Cycle cycle, CoreId core, TraceEvent event, std::uint64_t value);

  /// Records a state interval [begin, end) for one core (Paraver record
  /// type 1). Gaps between intervals render as running.
  void record_state(Cycle begin, Cycle end, CoreId core, TraceState state);

  std::uint64_t record_count() const {
    return records_.size() + states_.size();
  }

  /// Writes the .prv/.pcf/.row triple. `total_cycles` becomes the trace
  /// duration in the header.
  void finish(Cycle total_cycles);

  /// Checkpoint: the buffered event/state records, so a restored run's
  /// final trace is byte-identical to the uninterrupted run's.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

 private:
  struct Record {
    Cycle cycle;
    CoreId core;
    TraceEvent event;
    std::uint64_t value;
  };
  struct StateRecord {
    Cycle begin;
    Cycle end;
    CoreId core;
    TraceState state;
  };

  std::string basename_;
  std::uint32_t num_cores_;
  std::vector<Record> records_;
  std::vector<StateRecord> states_;
};

}  // namespace coyote::core
