#include "fault/differential.h"

#include "common/error.h"
#include "iss/memory.h"

namespace coyote::fault {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "sdc";
    case Outcome::kDue: return "due";
  }
  return "?";
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

}  // namespace

std::uint64_t end_state_digest(core::Simulator& sim) {
  std::uint64_t h = kFnvOffset;
  const iss::SparseMemory& memory = sim.memory();
  for (Addr page : memory.resident_page_indices()) {
    fnv_u64(h, page);
    fnv_bytes(h, memory.page_data(page), iss::SparseMemory::kPageSize);
  }
  for (CoreId id = 0; id < sim.num_cores(); ++id) {
    const iss::CoreModel& core = sim.core(id);
    const iss::Hart& hart = core.hart();
    fnv_u64(h, hart.pc());
    for (unsigned reg = 1; reg < 32; ++reg) fnv_u64(h, hart.x(reg));
    for (unsigned reg = 0; reg < 32; ++reg) fnv_u64(h, hart.f_bits(reg));
    fnv_u64(h, core.halted() ? 1 : 0);
  }
  return h;
}

std::uint64_t run_golden(core::Simulator& sim, Cycle max_cycles) {
  const core::RunResult result = sim.run(max_cycles);
  if (!result.all_exited) {
    throw SimError(strfmt(
        "fault: golden run did not complete within %llu cycles — the "
        "workload itself never finishes, so injections cannot be classified",
        static_cast<unsigned long long>(max_cycles)));
  }
  std::uint64_t h = end_state_digest(sim);
  for (std::int64_t code : result.exit_codes) {
    fnv_u64(h, static_cast<std::uint64_t>(code));
  }
  return h;
}

InjectionResult run_injected(core::Simulator& sim, const FaultPlan& plan,
                             Cycle max_cycles, std::uint64_t golden_digest) {
  InjectionResult out;
  FaultEngine engine(sim, plan);
  engine.arm();
  try {
    out.run = sim.run(max_cycles);
  } catch (const HangError& hang) {
    out.outcome = Outcome::kDue;
    out.detail = std::string("hang: ") + hang.what();
    out.injected = engine.injected();
    out.skipped = engine.skipped();
    return out;
  } catch (const SimError& error) {
    // Illegal instruction, unmapped access, machine-model invariant blown —
    // the corruption was *detected*. (ExecutionError is a SimError.)
    out.outcome = Outcome::kDue;
    out.detail = std::string("trap: ") + error.what();
    out.injected = engine.injected();
    out.skipped = engine.skipped();
    return out;
  }
  out.injected = engine.injected();
  out.skipped = engine.skipped();
  if (!out.run.all_exited) {
    out.outcome = Outcome::kDue;
    out.detail = strfmt("timeout: not complete after %llu cycles",
                        static_cast<unsigned long long>(out.run.cycles));
    return out;
  }
  std::uint64_t h = end_state_digest(sim);
  for (std::int64_t code : out.run.exit_codes) {
    fnv_u64(h, static_cast<std::uint64_t>(code));
  }
  out.digest = h;
  if (h == golden_digest) {
    out.outcome = Outcome::kMasked;
    out.detail = out.injected == 0 ? "no event fired" : "end state identical";
  } else {
    out.outcome = Outcome::kSdc;
    out.detail = strfmt("digest 0x%016llx != golden 0x%016llx",
                        static_cast<unsigned long long>(h),
                        static_cast<unsigned long long>(golden_digest));
  }
  return out;
}

}  // namespace coyote::fault
