#include "fault/fault.h"

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "iss/memory.h"

namespace coyote::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemFlip: return "mem";
    case FaultKind::kL1dFlip: return "l1d";
    case FaultKind::kL2Flip: return "l2";
    case FaultKind::kRegFlip: return "reg";
    case FaultKind::kNocDrop: return "noc_drop";
    case FaultKind::kNocDelay: return "noc_delay";
    case FaultKind::kMcStall: return "mc_stall";
  }
  return "?";
}

FaultPlan FaultPlan::generate(const core::SimConfig& config) {
  const core::FaultConfig& fc = config.fault;
  // Expand the target tokens into the kind pool; "noc" contributes both the
  // drop and the delay kind so a noc campaign exercises the whole protocol.
  std::vector<FaultKind> pool;
  for (const std::string& token :
       core::SimConfig::fault_target_tokens(fc.targets)) {
    if (token == "mem") pool.push_back(FaultKind::kMemFlip);
    if (token == "l1d") pool.push_back(FaultKind::kL1dFlip);
    if (token == "l2") pool.push_back(FaultKind::kL2Flip);
    if (token == "reg") pool.push_back(FaultKind::kRegFlip);
    if (token == "noc") {
      pool.push_back(FaultKind::kNocDrop);
      pool.push_back(FaultKind::kNocDelay);
    }
    if (token == "mc") pool.push_back(FaultKind::kMcStall);
  }
  if (pool.empty()) {
    throw ConfigError("FaultPlan: fault.targets resolves to no fault kinds");
  }

  FaultPlan plan;
  Xoshiro256 rng(fc.seed);
  plan.events.reserve(fc.count);
  for (std::uint32_t i = 0; i < fc.count; ++i) {
    FaultEvent event;
    event.kind = pool[rng.below(pool.size())];
    event.cycle = fc.window_begin +
                  rng.below(fc.window_end - fc.window_begin);
    event.unit = static_cast<std::uint32_t>(rng.below(1u << 30));
    event.pick = rng.next();
    event.pick2 = rng.next();
    event.bit = static_cast<std::uint32_t>(rng.below(64));
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const FaultEvent& event : events) {
    os << fault_kind_name(event.kind) << " @" << event.cycle << " unit="
       << event.unit << " bit=" << event.bit;
    if (event.has_explicit_addr) {
      os << strfmt(" addr=0x%llx",
                   static_cast<unsigned long long>(event.addr));
    }
    os << "\n";
  }
  return os.str();
}

FaultEngine::FaultEngine(core::Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

void FaultEngine::arm() {
  if (armed_) throw SimError("FaultEngine: arm() called twice");
  armed_ = true;
  const core::FaultConfig& fc = sim_.config().fault;
  bool net = false;
  bool mc = false;
  for (const FaultEvent& event : plan_.events) {
    switch (event.kind) {
      case FaultKind::kNocDrop:
      case FaultKind::kNocDelay:
        net_faults_.push_back(event);
        net = true;
        break;
      case FaultKind::kMcStall:
        mc_faults_.push_back(event);
        mc = true;
        break;
      default:
        // State flips fire as ordinary scheduler events at the lowest
        // priority lane, which both run loops deliver at identical points
        // (the batched paths never step across a pending event), so the
        // injection lands bit-identically however the host executes.
        sim_.scheduler().schedule_at(
            event.cycle, simfw::SchedPriority::kCollection,
            [this, event]() { apply_state_flip(event); });
        break;
    }
  }
  net_consumed_.assign(net_faults_.size(), false);
  mc_consumed_.assign(mc_faults_.size(), false);
  if (net) {
    for (BankId bank = 0; bank < sim_.num_l2_banks(); ++bank) {
      sim_.l2_bank(bank).set_fault_hooks(this, fc.noc_retries,
                                         fc.noc_timeout);
    }
  }
  if (mc) {
    for (McId id = 0; id < sim_.config().num_mcs; ++id) {
      sim_.mc(id).set_fault_hooks(this);
    }
  }
}

memhier::NetVerdict FaultEngine::on_response_send(
    const memhier::MemResponse& resp, BankId bank, std::uint32_t attempt) {
  memhier::NetVerdict verdict;
  if (attempt != 0) return verdict;  // retransmits are never re-dropped
  const Cycle now = sim_.scheduler().now();
  for (std::size_t i = 0; i < net_faults_.size(); ++i) {
    if (net_consumed_[i]) continue;
    const FaultEvent& event = net_faults_[i];
    if (now < event.cycle) continue;
    if (event.unit % sim_.num_l2_banks() != bank) continue;
    net_consumed_[i] = true;
    ++injected_;
    if (event.kind == FaultKind::kNocDrop) {
      verdict.drop = true;
      log_.push_back(strfmt(
          "cycle %llu: noc_drop bank %u line 0x%llx (to core %u)",
          static_cast<unsigned long long>(now), bank,
          static_cast<unsigned long long>(resp.line_addr), resp.core));
    } else {
      verdict.delay =
          1 + event.pick2 % (sim_.config().fault.noc_timeout == 0
                                 ? 1
                                 : sim_.config().fault.noc_timeout);
      log_.push_back(strfmt(
          "cycle %llu: noc_delay bank %u line 0x%llx +%llu cycles",
          static_cast<unsigned long long>(now), bank,
          static_cast<unsigned long long>(resp.line_addr),
          static_cast<unsigned long long>(verdict.delay)));
    }
    return verdict;
  }
  return verdict;
}

Cycle FaultEngine::mc_extra_delay(McId mc) {
  const Cycle now = sim_.scheduler().now();
  for (std::size_t i = 0; i < mc_faults_.size(); ++i) {
    if (mc_consumed_[i]) continue;
    const FaultEvent& event = mc_faults_[i];
    if (now < event.cycle) continue;
    if (event.unit % sim_.config().num_mcs != mc) continue;
    mc_consumed_[i] = true;
    ++injected_;
    log_.push_back(strfmt("cycle %llu: mc_stall mc %u +%llu cycles",
                          static_cast<unsigned long long>(now), mc,
                          static_cast<unsigned long long>(
                              sim_.config().fault.mc_stall_cycles)));
    return sim_.config().fault.mc_stall_cycles;
  }
  return 0;
}

void FaultEngine::flip_memory_bit(Addr byte_addr, std::uint32_t bit,
                                  const char* what) {
  iss::SparseMemory& memory = sim_.memory();
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit % 8));
  memory.write_u8(byte_addr, memory.read_u8(byte_addr) ^ mask);
  ++injected_;
  log_.push_back(strfmt("cycle %llu: %s flip 0x%llx bit %u",
                        static_cast<unsigned long long>(
                            sim_.scheduler().now()),
                        what, static_cast<unsigned long long>(byte_addr),
                        bit % 8));
}

void FaultEngine::apply_state_flip(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kMemFlip: {
      if (event.has_explicit_addr) {
        flip_memory_bit(event.addr, event.bit, "mem");
        return;
      }
      const std::vector<Addr> pages = sim_.memory().resident_page_indices();
      if (pages.empty()) {
        ++skipped_;
        log_.push_back("mem flip skipped: no resident pages");
        return;
      }
      const Addr page = pages[event.pick % pages.size()];
      const Addr byte_addr = (page << iss::SparseMemory::kPageBits) +
                             (event.pick2 % iss::SparseMemory::kPageSize);
      flip_memory_bit(byte_addr, event.bit, "mem");
      return;
    }
    case FaultKind::kL1dFlip:
    case FaultKind::kL2Flip: {
      // Tags are modelled, data lives in the flat backing memory — so a
      // "cache line" flip picks a *resident* line of the chosen array and
      // corrupts its backing bytes (what a particle strike on the data
      // array would corrupt architecturally).
      const char* what = event.kind == FaultKind::kL1dFlip ? "l1d" : "l2";
      memhier::CacheArray* array = nullptr;
      if (event.kind == FaultKind::kL1dFlip) {
        array = &sim_.core(event.unit % sim_.num_cores()).l1d_array();
      } else {
        array = &sim_.l2_bank(event.unit % sim_.num_l2_banks()).array();
      }
      if (event.has_explicit_addr) {
        flip_memory_bit(event.addr, event.bit, what);
        return;
      }
      const std::uint64_t resident = array->resident_lines();
      if (resident == 0) {
        ++skipped_;
        log_.push_back(strfmt("%s flip skipped: no resident lines", what));
        return;
      }
      const Addr line = array->resident_line_at(event.pick % resident);
      flip_memory_bit(line + event.pick2 % array->line_bytes(), event.bit,
                      what);
      return;
    }
    case FaultKind::kRegFlip: {
      iss::Hart& hart = sim_.core(event.unit % sim_.num_cores()).hart();
      const std::uint64_t mask = std::uint64_t{1} << (event.bit % 64);
      // 63 candidate registers: x1..x31 (x0 is hard-wired) then f0..f31.
      const std::uint64_t slot = event.pick % 63;
      if (slot < 31) {
        const unsigned reg = static_cast<unsigned>(slot) + 1;
        hart.set_x(reg, hart.x(reg) ^ mask);
        log_.push_back(strfmt(
            "cycle %llu: reg flip core %u x%u bit %u",
            static_cast<unsigned long long>(sim_.scheduler().now()),
            event.unit % sim_.num_cores(), reg, event.bit % 64));
      } else {
        const unsigned reg = static_cast<unsigned>(slot - 31);
        hart.set_f_bits(reg, hart.f_bits(reg) ^ mask);
        log_.push_back(strfmt(
            "cycle %llu: reg flip core %u f%u bit %u",
            static_cast<unsigned long long>(sim_.scheduler().now()),
            event.unit % sim_.num_cores(), reg, event.bit % 64));
      }
      ++injected_;
      return;
    }
    case FaultKind::kNocDrop:
    case FaultKind::kNocDelay:
    case FaultKind::kMcStall:
      throw SimError("FaultEngine: network fault routed to state-flip path");
  }
}

}  // namespace coyote::fault
