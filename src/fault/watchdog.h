// Graceful hang handling for CLI drivers: run a simulation under the
// liveness watchdog, and when it declares the machine wedged, degrade
// instead of aborting — keep the statistics, flush the Paraver trace, cut
// an emergency checkpoint at the last quiesce point passed, and hand the
// structured hang diagnostic back for the driver to print before exiting
// with kExitHang.
#pragma once

#include <string>

#include "core/simulator.h"
#include "core/workload_info.h"

namespace coyote::fault {

/// Outcome of run_guarded(): either a normal RunResult, or a hang with the
/// diagnostic attached.
struct GuardedOutcome {
  core::RunResult result;
  bool hung = false;
  std::string hang_what;        ///< one-line HangError message
  std::string hang_diagnostic;  ///< multi-line structured diagnostic
  /// Set when an emergency checkpoint was written on a hang.
  std::string emergency_checkpoint;
};

/// Runs `sim` to completion (or `max_cycles`). While running, keeps an
/// in-memory checkpoint of the most recent quiesce point (refreshed at
/// least every `checkpoint_interval` cycles); if the run hangs, that buffer
/// — the last state the machine passed through with nothing in flight — is
/// written to `emergency_checkpoint_path` (skipped when the path is empty
/// or no quiesce point was reached), the trace is flushed, and the
/// diagnostic is returned instead of the exception propagating.
/// With `emergency_checkpoint_path` empty and the watchdog off this is
/// behaviourally identical to sim.run(max_cycles).
GuardedOutcome run_guarded(core::Simulator& sim,
                           const core::WorkloadInfo& workload,
                           Cycle max_cycles,
                           const std::string& emergency_checkpoint_path,
                           Cycle checkpoint_interval = 5'000'000);
/// Label-only convenience (workload identity via WorkloadInfo::from_label).
GuardedOutcome run_guarded(core::Simulator& sim, const std::string& workload,
                           Cycle max_cycles,
                           const std::string& emergency_checkpoint_path,
                           Cycle checkpoint_interval = 5'000'000);

}  // namespace coyote::fault
