// Golden-run differential harness: classifies one fault injection as
//   masked — the run completes and the architectural end state (memory +
//            registers + exit codes) matches the uninjected golden run;
//   SDC    — silent data corruption: the run completes but the end state
//            differs from golden;
//   DUE    — detected/unrecoverable: the injected run traps (SimError /
//            ExecutionError), hangs (HangError from the watchdog or the
//            deadlock detector) or exceeds the cycle budget.
// The caller builds two identically-configured simulators (same kernel,
// same inputs), runs the golden leg once, then any number of injected legs
// against its digest.
#pragma once

#include <cstdint>
#include <string>

#include "core/simulator.h"
#include "fault/fault.h"

namespace coyote::fault {

enum class Outcome : std::uint8_t { kMasked, kSdc, kDue };

const char* outcome_name(Outcome outcome);

/// Result of one injected leg.
struct InjectionResult {
  Outcome outcome = Outcome::kMasked;
  std::string detail;        ///< what happened (hang message, digest delta…)
  core::RunResult run;       ///< the leg's run result (zeroed on a trap)
  std::uint64_t digest = 0;  ///< end-state digest (0 when the leg trapped)
  std::uint64_t injected = 0;  ///< events that actually fired
  std::uint64_t skipped = 0;   ///< events that found no live target
};

/// FNV-1a 64 digest of the architectural end state: every resident memory
/// page (sorted), each core's pc + x1..x31 + f0..f31 + halted flag, and the
/// per-core exit codes. Cycle counts are deliberately excluded — a fault
/// that only perturbs timing (a delayed message, a controller stall) is
/// masked, not SDC.
std::uint64_t end_state_digest(core::Simulator& sim);

/// Runs the uninjected golden leg to completion (throws if the workload
/// does not finish within `max_cycles`) and returns its end-state digest.
std::uint64_t run_golden(core::Simulator& sim, Cycle max_cycles);

/// Arms `plan` on `sim`, runs up to `max_cycles`, and classifies against
/// `golden_digest`. Never throws on simulated failure — traps and hangs
/// are the DUE class, not errors.
InjectionResult run_injected(core::Simulator& sim, const FaultPlan& plan,
                             Cycle max_cycles, std::uint64_t golden_digest);

}  // namespace coyote::fault
