// Deterministic fault injection (the resilience axis of design-space
// exploration): a seeded FaultPlan drawn from `fault.*` config keys, and a
// FaultEngine that arms the plan on a built Simulator — bit flips in sparse
// memory, resident L1D/L2 lines and architectural registers as scheduler
// events at chosen cycles, dropped/delayed directory responses via the
// memhier::FaultHooks retransmit protocol, and transient memory-controller
// stalls. Everything is derived from fault.seed plus simulated state, so a
// campaign replays byte-identically at any --jobs count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/simulator.h"
#include "memhier/fault_hooks.h"

namespace coyote::fault {

enum class FaultKind : std::uint8_t {
  kMemFlip,   ///< flip one bit of one byte in a resident memory page
  kL1dFlip,   ///< flip one bit in the backing word of a resident L1D line
  kL2Flip,    ///< flip one bit in the backing word of a resident L2 line
  kRegFlip,   ///< flip one bit of an architectural x/f register
  kNocDrop,   ///< drop one directory/L2 response (retransmit protocol runs)
  kNocDelay,  ///< delay one directory/L2 response in flight
  kMcStall,   ///< transient extra service delay at one memory controller
};

const char* fault_kind_name(FaultKind kind);

/// One planned injection. State flips (kMemFlip..kRegFlip) fire as
/// scheduler events at `cycle`; network/controller faults arm at `cycle`
/// and trigger on the next matching message/request. All selectors are
/// seeded raw entropy, reduced against the live population at fire time so
/// the plan never needs to know the machine's contents up front.
struct FaultEvent {
  FaultKind kind = FaultKind::kMemFlip;
  Cycle cycle = 0;
  std::uint32_t unit = 0;    ///< core/bank/mc selector (mod population)
  std::uint64_t pick = 0;    ///< victim selector (page/line/register)
  std::uint64_t pick2 = 0;   ///< byte-offset / delay selector
  std::uint32_t bit = 0;     ///< bit index to flip (mod width)
  /// Tests can pin the flip to an exact byte address instead of the seeded
  /// pick (state flips only).
  bool has_explicit_addr = false;
  Addr addr = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Derives the plan from config.fault — same seed, same plan, always.
  static FaultPlan generate(const core::SimConfig& config);

  /// One line per event, for logs and campaign provenance.
  std::string to_string() const;
};

/// Arms a FaultPlan on a Simulator and implements the memhier hook
/// interface. Construct after the program is loaded, call arm() once
/// before running. The engine must outlive the run.
class FaultEngine : public memhier::FaultHooks {
 public:
  FaultEngine(core::Simulator& sim, FaultPlan plan);

  /// Schedules state flips as scheduler events and installs the NoC/MC
  /// hooks (retransmit protocol parameters come from config.fault).
  void arm();

  // ----- memhier::FaultHooks -----
  memhier::NetVerdict on_response_send(const memhier::MemResponse& resp,
                                       BankId bank,
                                       std::uint32_t attempt) override;
  Cycle mc_extra_delay(McId mc) override;

  // ----- results -----
  std::uint64_t injected() const { return injected_; }
  std::uint64_t skipped() const { return skipped_; }
  /// Human-readable record of what each fired event actually hit.
  const std::vector<std::string>& log() const { return log_; }

 private:
  void apply_state_flip(const FaultEvent& event);
  void flip_memory_bit(Addr byte_addr, std::uint32_t bit, const char* what);

  core::Simulator& sim_;
  FaultPlan plan_;
  bool armed_ = false;
  /// Armed network/controller faults, consumed in plan order on match.
  std::vector<FaultEvent> net_faults_;
  std::vector<bool> net_consumed_;
  std::vector<FaultEvent> mc_faults_;
  std::vector<bool> mc_consumed_;
  std::uint64_t injected_ = 0;
  std::uint64_t skipped_ = 0;
  std::vector<std::string> log_;
};

}  // namespace coyote::fault
