#include "fault/watchdog.h"

#include <fstream>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "common/error.h"

namespace coyote::fault {

GuardedOutcome run_guarded(core::Simulator& sim,
                           const core::WorkloadInfo& workload,
                           Cycle max_cycles,
                           const std::string& emergency_checkpoint_path,
                           Cycle checkpoint_interval) {
  GuardedOutcome out;
  const bool keep_checkpoints = !emergency_checkpoint_path.empty();
  std::string last_quiesce;  ///< serialized checkpoint at the last cut
  Cycle last_quiesce_cycle = 0;

  const auto on_hang = [&](const HangError& hang) {
    out.hung = true;
    out.hang_what = hang.what();
    out.hang_diagnostic = hang.diagnostic();
    // Degrade gracefully: the statistics tree is live (the driver can still
    // report it), the trace is flushed up to the wedge cycle, and the last
    // quiesce snapshot — if any — becomes the emergency checkpoint.
    if (sim.trace() != nullptr) sim.trace()->finish(sim.scheduler().now());
    if (keep_checkpoints && !last_quiesce.empty()) {
      std::ofstream os(emergency_checkpoint_path,
                       std::ios::binary | std::ios::trunc);
      if (os) {
        os.write(last_quiesce.data(),
                 static_cast<std::streamsize>(last_quiesce.size()));
        os.flush();
      }
      if (os) {
        out.emergency_checkpoint = strfmt(
            "%s (quiesce point at cycle %llu)",
            emergency_checkpoint_path.c_str(),
            static_cast<unsigned long long>(last_quiesce_cycle));
      }
    }
  };

  if (!keep_checkpoints) {
    // No emergency-checkpoint duty: run in one leg (bit-identical to the
    // plain path, no quiesce probing at all).
    try {
      out.result = sim.run(max_cycles);
    } catch (const HangError& hang) {
      on_hang(hang);
    }
    return out;
  }

  // Sliced run: stop at a quiesce point at least every
  // `checkpoint_interval` cycles and snapshot there. Slicing at natural
  // quiesce points does not perturb the simulation (PR 4 invariant), so
  // the overall run stays bit-identical to an unsliced one.
  core::RunResult total;
  try {
    // A fresh (or just-restored) machine has nothing in flight, so the
    // starting cycle is usually a free snapshot: a hang before the first
    // interval then still leaves a restorable emergency checkpoint. An
    // armed fault plan pre-schedules its injection events, in which case
    // the start is not a quiesce point and the snapshot is skipped.
    if (!sim.scheduler().has_pending()) {
      std::ostringstream os(std::ios::binary);
      ckpt::write_checkpoint(sim, workload, os);
      last_quiesce = os.str();
      last_quiesce_cycle = sim.scheduler().now();
    }
    while (true) {
      const Cycle elapsed = total.cycles;
      if (elapsed >= max_cycles) {
        total.hit_cycle_limit = true;
        break;
      }
      const Cycle budget = max_cycles - elapsed;
      const core::RunResult leg =
          sim.run_to_quiesce(std::min(checkpoint_interval, budget), budget);
      total.cycles += leg.cycles;
      total.instructions += leg.instructions;
      total.all_exited = leg.all_exited;
      total.hit_cycle_limit = leg.hit_cycle_limit;
      total.exit_codes = leg.exit_codes;
      total.wall_seconds += leg.wall_seconds;
      if (leg.all_exited || leg.hit_cycle_limit) break;
      if (leg.quiesced) {
        std::ostringstream os(std::ios::binary);
        ckpt::write_checkpoint(sim, workload, os);
        last_quiesce = os.str();
        last_quiesce_cycle = sim.scheduler().now();
      }
    }
    const double secs = total.wall_seconds;
    total.mips = secs > 0
                     ? static_cast<double>(total.instructions) / secs / 1e6
                     : 0.0;
    out.result = total;
  } catch (const HangError& hang) {
    out.result = total;  // cycles/instructions up to the last completed leg
    on_hang(hang);
  }
  return out;
}

GuardedOutcome run_guarded(core::Simulator& sim, const std::string& workload,
                           Cycle max_cycles,
                           const std::string& emergency_checkpoint_path,
                           Cycle checkpoint_interval) {
  return run_guarded(sim, core::WorkloadInfo::from_label(workload), max_cycles,
                     emergency_checkpoint_path, checkpoint_interval);
}

}  // namespace coyote::fault
