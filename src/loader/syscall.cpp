#include "loader/syscall.h"

#include <string>

#include "common/binio.h"
#include "common/error.h"
#include "iss/memory.h"

namespace coyote::loader {

namespace {

// Linux errno values, returned negated.
constexpr std::int64_t kEbadf = 9;
constexpr std::int64_t kEspipe = 29;

// Simulated wall clock: one cycle == 1 ns (a 1 GHz nominal core), so time
// syscalls are pure functions of the simulated cycle and runs are
// bit-reproducible.
constexpr std::uint64_t kCyclesPerSecond = 1'000'000'000ull;

// Guardrail: a write() count beyond this is treated as a corrupt guest
// argument rather than a transfer to attempt.
constexpr std::uint64_t kMaxWriteBytes = 16ull << 20;

std::uint64_t read_guest_u64(iss::SparseMemory& memory, Addr addr) {
  std::uint8_t raw[8];
  memory.read_bytes(addr, raw, sizeof raw);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | raw[i];
  return value;
}

void write_guest_u64(iss::SparseMemory& memory, Addr addr,
                     std::uint64_t value) {
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(value >> (8 * i));
  memory.write_bytes(addr, raw, sizeof raw);
}

void write_guest_u32(iss::SparseMemory& memory, Addr addr,
                     std::uint32_t value) {
  std::uint8_t raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>(value >> (8 * i));
  memory.write_bytes(addr, raw, sizeof raw);
}

}  // namespace

ProxyKernel::ProxyKernel(GuestLayout layout)
    : layout_(layout), brk_(layout.heap_base) {}

Addr ProxyKernel::initial_sp(unsigned hart_id) const {
  const Addr sp =
      layout_.stack_top - std::uint64_t{hart_id} * layout_.stack_bytes_per_hart;
  return sp & ~Addr{15};
}

void ProxyKernel::execute_syscall(iss::IssSyscallIf& hart) {
  const std::uint64_t number = hart.read_register(17);  // a7
  const std::uint64_t a0 = hart.read_register(10);
  const std::uint64_t a1 = hart.read_register(11);
  const std::uint64_t a2 = hart.read_register(12);
  bool exited = false;
  std::int64_t status = 0;
  const std::int64_t result =
      dispatch(hart, number, a0, a1, a2, &exited, &status);
  if (exited) {
    hart.sys_exit(status);
    return;
  }
  hart.write_register(10, static_cast<std::uint64_t>(result));
}

void ProxyKernel::handle_tohost(iss::IssSyscallIf& hart, std::uint64_t value) {
  if (value == 0) return;  // fromhost acknowledgement pattern; nothing to do
  if (value & 1) {
    // HTIF exit: tohost = (code << 1) | 1.
    hart.sys_exit(static_cast<std::int64_t>(value >> 1));
    return;
  }
  // riscv-pk magic memory: tohost holds the address of an 8-u64 block
  // {n, a0, a1, a2, ...}; the result goes back into block[0] and the
  // fromhost doorbell (when the image exports one) is rung with 1.
  iss::SparseMemory& memory = hart.guest_memory();
  const Addr block = static_cast<Addr>(value);
  const std::uint64_t number = read_guest_u64(memory, block);
  const std::uint64_t a0 = read_guest_u64(memory, block + 8);
  const std::uint64_t a1 = read_guest_u64(memory, block + 16);
  const std::uint64_t a2 = read_guest_u64(memory, block + 24);
  bool exited = false;
  std::int64_t status = 0;
  const std::int64_t result =
      dispatch(hart, number, a0, a1, a2, &exited, &status);
  if (exited) {
    hart.sys_exit(status);
    return;
  }
  write_guest_u64(memory, block, static_cast<std::uint64_t>(result));
  if (fromhost_addr_ != 0) write_guest_u64(memory, fromhost_addr_, 1);
}

std::int64_t ProxyKernel::dispatch(iss::IssSyscallIf& hart,
                                   std::uint64_t number, std::uint64_t a0,
                                   std::uint64_t a1, std::uint64_t a2,
                                   bool* exited, std::int64_t* exit_status) {
  switch (number) {
    case kSysExit:
    case kSysExitGroup:
      *exited = true;
      *exit_status = static_cast<std::int64_t>(a0);
      return 0;
    case kSysWrite: {
      if (a0 != 1 && a0 != 2) return -kEbadf;
      if (a2 > kMaxWriteBytes) {
        throw ExecutionError(strfmt(
            "proxy kernel: hart %u write(fd=%llu) with implausible count "
            "%llu bytes — corrupt guest arguments", hart.hart_id(),
            static_cast<unsigned long long>(a0),
            static_cast<unsigned long long>(a2)));
      }
      std::string text(static_cast<std::size_t>(a2), '\0');
      hart.guest_memory().read_bytes(
          static_cast<Addr>(a1),
          reinterpret_cast<std::uint8_t*>(text.data()), text.size());
      hart.console_write(text);
      return static_cast<std::int64_t>(a2);
    }
    case kSysRead:
      return 0;  // EOF: no input devices exist in the simulated machine
    case kSysClose:
      return 0;
    case kSysLseek:
      return -kEspipe;  // the console fds are not seekable
    case kSysFstat: {
      if (a0 > 2) return -kEbadf;
      // Zeroed riscv64 `struct stat` (128 bytes) describing a character
      // device, which makes newlib treat the fd as an unbuffered tty.
      std::uint8_t zero[128] = {};
      iss::SparseMemory& memory = hart.guest_memory();
      memory.write_bytes(static_cast<Addr>(a1), zero, sizeof zero);
      write_guest_u32(memory, static_cast<Addr>(a1) + 16, 0x2190);  // st_mode
      write_guest_u32(memory, static_cast<Addr>(a1) + 20, 1);       // st_nlink
      write_guest_u32(memory, static_cast<Addr>(a1) + 56, 1024);  // st_blksize
      return 0;
    }
    case kSysClockGettime: {
      const Cycle now = hart.cycle();
      iss::SparseMemory& memory = hart.guest_memory();
      write_guest_u64(memory, static_cast<Addr>(a1), now / kCyclesPerSecond);
      write_guest_u64(memory, static_cast<Addr>(a1) + 8,
                      now % kCyclesPerSecond);
      return 0;
    }
    case kSysGettimeofday: {
      const Cycle now = hart.cycle();
      iss::SparseMemory& memory = hart.guest_memory();
      write_guest_u64(memory, static_cast<Addr>(a0), now / kCyclesPerSecond);
      write_guest_u64(memory, static_cast<Addr>(a0) + 8,
                      (now % kCyclesPerSecond) / 1000);
      return 0;
    }
    case kSysBrk: {
      const Addr requested = static_cast<Addr>(a0);
      if (requested >= layout_.heap_base &&
          (layout_.heap_limit == 0 || requested <= layout_.heap_limit)) {
        brk_ = requested;
      }
      return static_cast<std::int64_t>(brk_);  // Linux brk: new (or old) break
    }
    default:
      throw ExecutionError(strfmt(
          "proxy kernel: hart %u raised unimplemented syscall %llu "
          "(a0=0x%llx); supported: write(64) read(63) close(57) lseek(62) "
          "fstat(80) brk(214) clock_gettime(113) gettimeofday(169) "
          "exit(93) exit_group(94)", hart.hart_id(),
          static_cast<unsigned long long>(number),
          static_cast<unsigned long long>(a0)));
  }
}

void ProxyKernel::save_state(BinWriter& w) const {
  w.u64(layout_.stack_top);
  w.u64(layout_.stack_bytes_per_hart);
  w.u64(layout_.heap_base);
  w.u64(layout_.heap_limit);
  w.u64(brk_);
  w.u64(fromhost_addr_);
}

void ProxyKernel::load_state(BinReader& r) {
  layout_.stack_top = r.u64();
  layout_.stack_bytes_per_hart = r.u64();
  layout_.heap_base = r.u64();
  layout_.heap_limit = r.u64();
  brk_ = r.u64();
  fromhost_addr_ = r.u64();
}

}  // namespace coyote::loader
