// ELF64 executable loading: parses statically linked RV64 ET_EXEC images,
// maps their PT_LOAD segments into SparseMemory, and surfaces the symbols
// the proxy kernel needs (tohost/fromhost). Deliberately minimal — no
// relocation, no dynamic linking, no interpreter — matching what a
// `-static -nostartfiles` RISC-V cross build (or this repo's own
// elf_writer) produces. Every malformed-input path throws ConfigError
// with an actionable message naming the file and the fix.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace coyote::iss {
class SparseMemory;
}  // namespace coyote::iss

namespace coyote::loader {

/// e_machine for RISC-V.
inline constexpr std::uint16_t kEmRiscv = 243;

/// One PT_LOAD program header, in file order.
struct ElfSegment {
  Addr vaddr = 0;
  std::uint64_t file_offset = 0;
  std::uint64_t filesz = 0;
  std::uint64_t memsz = 0;  ///< >= filesz; the tail is zero-initialised.
  std::uint32_t flags = 0;  ///< PF_X|PF_W|PF_R bits (informational).
};

/// A parsed (not yet mapped) image.
struct ElfImage {
  Addr entry = 0;
  std::vector<ElfSegment> segments;
  Addr load_min = 0;  ///< Lowest PT_LOAD vaddr.
  Addr load_max = 0;  ///< One past the highest PT_LOAD vaddr+memsz.
  /// Defined, named .symtab entries (HTIF needs tohost/fromhost).
  std::map<std::string, Addr> symbols;
  /// FNV-1a 64 over the whole file — the Workload API content identity
  /// stamped into run summaries and checkpoint metadata.
  std::uint64_t content_hash = 0;
};

/// FNV-1a 64-bit over a byte range (same parameters as the fault
/// campaign's end-state digest).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t count,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Slurps a file; throws ConfigError when it cannot be opened.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Parses and validates an ELF64 little-endian RV64 ET_EXEC image.
/// `name` labels error messages (pass the file path).
ElfImage parse_elf64(const std::vector<std::uint8_t>& bytes,
                     const std::string& name = "<elf>");

/// parse_elf64 + copies every PT_LOAD's file bytes into `memory` at its
/// vaddr. The memsz > filesz tail (bss) is left untouched: SparseMemory
/// reads unwritten bytes as zero, so the image must not overlay segments.
ElfImage load_elf64(const std::vector<std::uint8_t>& bytes,
                    iss::SparseMemory& memory,
                    const std::string& name = "<elf>");

}  // namespace coyote::loader
