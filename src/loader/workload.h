// The unified Workload API: one resolution path from a SimConfig's
// `workload.*` keys to a machine ready to run, shared by every front end
// (coyote_sim, coyote_sweep, the sweep engine, checkpoint restore and the
// fault campaign's golden runs). `workload.elf` names an ELF64 image
// (loaded via src/loader/elf and given a proxy kernel for syscalls);
// otherwise `workload.kernel` names a menu kernel built by src/kernels.
#pragma once

#include <cstdint>
#include <string>

#include "core/sim_config.h"
#include "core/workload_info.h"

namespace coyote::core {
class Simulator;
}  // namespace coyote::core

namespace coyote::loader {

/// Identity of the workload `config` selects, without touching a
/// simulator: kind/ref/label plus, for ELF workloads, the image's current
/// content hash (the file is read and hashed).
core::WorkloadInfo resolve_workload_info(const core::SimConfig& config);

/// Loads the workload selected by `sim.config().workload` into the
/// machine and resets every core to its entry point. Menu kernels go
/// through kernels::build_named_kernel + load_program; ELF images are
/// mapped segment by segment, get a ProxyKernel attached for ecall/HTIF
/// handling, and each hart starts with sp in its own stack slot and
/// a0 = hart id. Returns the workload's identity for labelling.
core::WorkloadInfo load_workload(core::Simulator& sim);

/// Attaches a default-constructed ProxyKernel to `sim` (checkpoint
/// restore: the serialized emulator state is loaded over it afterwards,
/// and each hart's tohost address travels in the hart's own state).
void attach_proxy_kernel(core::Simulator& sim);

/// Stable label for checkpoint resume matching: menu kernels render as
/// "<name> size=<n> seed=<n>" (the historical sweep label), ELF workloads
/// as "elf:<path>#<content-hash>" so a rebuilt binary never resumes a
/// stale checkpoint.
std::string resume_label(const core::SimConfig& config);

/// Refuses (throws ConfigError) when the file at `elf_path` no longer
/// hashes to `expected_hash` — the mismatched-binary restore guard.
void verify_elf_matches(const std::string& elf_path,
                        std::uint64_t expected_hash);

}  // namespace coyote::loader
