#include "loader/elf.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "iss/memory.h"

namespace coyote::loader {

namespace {

// ELF constants (only what the validator needs).
constexpr std::uint8_t kClass64 = 2;
constexpr std::uint8_t kDataLsb = 1;
constexpr std::uint16_t kEtExec = 2;
constexpr std::uint16_t kEtDyn = 3;
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::size_t kEhdrSize = 64;
constexpr std::size_t kPhdrSize = 56;
constexpr std::size_t kShdrSize = 64;
constexpr std::size_t kSymSize = 24;

class ByteReader {
 public:
  ByteReader(const std::vector<std::uint8_t>& bytes, const std::string& name)
      : bytes_(bytes), name_(name) {}

  std::uint8_t u8(std::size_t off) const {
    check(off, 1);
    return bytes_[off];
  }
  std::uint16_t u16(std::size_t off) const { return read<std::uint16_t>(off); }
  std::uint32_t u32(std::size_t off) const { return read<std::uint32_t>(off); }
  std::uint64_t u64(std::size_t off) const { return read<std::uint64_t>(off); }

  void check(std::size_t off, std::size_t count) const {
    if (off + count < off || off + count > bytes_.size()) {
      throw ConfigError(strfmt(
          "%s: truncated ELF: need bytes [%zu, %zu) but the file is only "
          "%zu bytes long (was the download or copy cut short?)",
          name_.c_str(), off, off + count, bytes_.size()));
    }
  }

  std::size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  T read(std::size_t off) const {
    check(off, sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + off, sizeof(T));
    return value;  // host is little-endian; EI_DATA checked before use.
  }

  const std::vector<std::uint8_t>& bytes_;
  const std::string& name_;
};

std::string machine_name(std::uint16_t machine) {
  switch (machine) {
    case 3: return "x86 (EM_386)";
    case 40: return "ARM (EM_ARM)";
    case 62: return "x86-64 (EM_X86_64)";
    case 183: return "AArch64 (EM_AARCH64)";
    default: return strfmt("e_machine=%u", machine);
  }
}

// Pulls named, defined symbols out of the first SHT_SYMTAB section, if the
// image carries one. Symbol tables are optional; parse failures here are
// still hard errors because a damaged section header table means a damaged
// file.
void read_symbols(const ByteReader& r, ElfImage& image,
                  const std::string& name) {
  const std::uint64_t shoff = r.u64(0x28);
  const std::uint16_t shentsize = r.u16(0x3a);
  const std::uint16_t shnum = r.u16(0x3c);
  if (shoff == 0 || shnum == 0) return;
  if (shentsize != kShdrSize) {
    throw ConfigError(strfmt(
        "%s: unexpected section header size %u (ELF64 requires %zu)",
        name.c_str(), shentsize, kShdrSize));
  }
  for (std::uint16_t i = 0; i < shnum; ++i) {
    const std::size_t sh = shoff + std::size_t{i} * kShdrSize;
    if (r.u32(sh + 0x04) != kShtSymtab) continue;
    const std::uint64_t sym_off = r.u64(sh + 0x18);
    const std::uint64_t sym_size = r.u64(sh + 0x20);
    const std::uint32_t strtab_index = r.u32(sh + 0x28);
    if (strtab_index >= shnum) {
      throw ConfigError(strfmt("%s: symtab links to missing strtab section %u",
                               name.c_str(), strtab_index));
    }
    const std::size_t st = shoff + std::size_t{strtab_index} * kShdrSize;
    const std::uint64_t str_off = r.u64(st + 0x18);
    const std::uint64_t str_size = r.u64(st + 0x20);
    r.check(str_off, str_size);
    for (std::uint64_t off = 0; off + kSymSize <= sym_size; off += kSymSize) {
      const std::size_t sym = sym_off + off;
      const std::uint32_t name_off = r.u32(sym + 0x00);
      if (name_off == 0 || name_off >= str_size) continue;
      std::string sym_name;
      for (std::uint64_t c = str_off + name_off; c < str_off + str_size; ++c) {
        const char ch = static_cast<char>(r.u8(c));
        if (ch == '\0') break;
        sym_name.push_back(ch);
      }
      if (!sym_name.empty()) {
        image.symbols[sym_name] = static_cast<Addr>(r.u64(sym + 0x08));
      }
    }
    return;
  }
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t count,
                      std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw ConfigError(strfmt(
        "cannot open '%s': no such file or unreadable (workload.elf must "
        "name an existing ELF64 image; run with --list-workloads for the "
        "built-in kernel menu)", path.c_str()));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

ElfImage parse_elf64(const std::vector<std::uint8_t>& bytes,
                     const std::string& name) {
  const ByteReader r(bytes, name);
  if (bytes.size() < kEhdrSize) {
    throw ConfigError(strfmt(
        "%s: not an ELF file: only %zu bytes, smaller than the %zu-byte "
        "ELF64 header", name.c_str(), bytes.size(), kEhdrSize));
  }
  if (!(bytes[0] == 0x7f && bytes[1] == 'E' && bytes[2] == 'L' &&
        bytes[3] == 'F')) {
    throw ConfigError(strfmt(
        "%s: not an ELF file (bad magic %02x %02x %02x %02x; expected "
        "7f 45 4c 46). Pass an ELF executable or a kernel name via "
        "--kernel.", name.c_str(), bytes[0], bytes[1], bytes[2], bytes[3]));
  }
  if (bytes[4] != kClass64) {
    throw ConfigError(strfmt(
        "%s: 32-bit ELF (ELFCLASS32); this simulator executes RV64 only — "
        "rebuild with a 64-bit target (e.g. -march=rv64imad -mabi=lp64d)",
        name.c_str()));
  }
  if (bytes[5] != kDataLsb) {
    throw ConfigError(strfmt(
        "%s: big-endian ELF; RISC-V images must be little-endian "
        "(EI_DATA=ELFDATA2LSB)", name.c_str()));
  }
  const std::uint16_t machine = r.u16(0x12);
  if (machine != kEmRiscv) {
    throw ConfigError(strfmt(
        "%s: built for %s, not RISC-V (e_machine=%u); cross-compile with a "
        "riscv64 toolchain", name.c_str(), machine_name(machine).c_str(),
        machine));
  }
  const std::uint16_t type = r.u16(0x10);
  if (type != kEtExec) {
    const char* hint = type == kEtDyn
        ? " (position-independent / dynamic image; relink with "
          "-static -no-pie)"
        : "";
    throw ConfigError(strfmt(
        "%s: not a statically linked executable (e_type=%u, need "
        "ET_EXEC=2)%s", name.c_str(), type, hint));
  }

  ElfImage image;
  image.entry = static_cast<Addr>(r.u64(0x18));
  image.content_hash = fnv1a64(bytes.data(), bytes.size());

  const std::uint64_t phoff = r.u64(0x20);
  const std::uint16_t phentsize = r.u16(0x36);
  const std::uint16_t phnum = r.u16(0x38);
  if (phnum == 0) {
    throw ConfigError(strfmt("%s: no program headers — nothing to load",
                             name.c_str()));
  }
  if (phentsize != kPhdrSize) {
    throw ConfigError(strfmt(
        "%s: unexpected program header size %u (ELF64 requires %zu)",
        name.c_str(), phentsize, kPhdrSize));
  }
  image.load_min = ~Addr{0};
  image.load_max = 0;
  for (std::uint16_t i = 0; i < phnum; ++i) {
    const std::size_t ph = phoff + std::size_t{i} * kPhdrSize;
    if (r.u32(ph + 0x00) != kPtLoad) continue;
    ElfSegment seg;
    seg.flags = r.u32(ph + 0x04);
    seg.file_offset = r.u64(ph + 0x08);
    seg.vaddr = static_cast<Addr>(r.u64(ph + 0x10));
    seg.filesz = r.u64(ph + 0x20);
    seg.memsz = r.u64(ph + 0x28);
    if (seg.memsz < seg.filesz) {
      throw ConfigError(strfmt(
          "%s: PT_LOAD %u has memsz (%llu) < filesz (%llu) — corrupt "
          "program header", name.c_str(), i,
          static_cast<unsigned long long>(seg.memsz),
          static_cast<unsigned long long>(seg.filesz)));
    }
    r.check(seg.file_offset, seg.filesz);  // truncated-segment guard
    if (seg.memsz == 0) continue;
    image.load_min = std::min(image.load_min, seg.vaddr);
    image.load_max = std::max(image.load_max, seg.vaddr + seg.memsz);
    image.segments.push_back(seg);
  }
  if (image.segments.empty()) {
    throw ConfigError(strfmt(
        "%s: no non-empty PT_LOAD segments — the image carries no code or "
        "data to map", name.c_str()));
  }
  if (image.entry < image.load_min || image.entry >= image.load_max) {
    throw ConfigError(strfmt(
        "%s: entry point 0x%llx lies outside the loaded range "
        "[0x%llx, 0x%llx)", name.c_str(),
        static_cast<unsigned long long>(image.entry),
        static_cast<unsigned long long>(image.load_min),
        static_cast<unsigned long long>(image.load_max)));
  }
  read_symbols(r, image, name);
  return image;
}

ElfImage load_elf64(const std::vector<std::uint8_t>& bytes,
                    iss::SparseMemory& memory, const std::string& name) {
  const ElfImage image = parse_elf64(bytes, name);
  for (const ElfSegment& seg : image.segments) {
    if (seg.filesz > 0) {
      memory.write_bytes(seg.vaddr, bytes.data() + seg.file_offset,
                         static_cast<std::size_t>(seg.filesz));
    }
  }
  return image;
}

}  // namespace coyote::loader
