#include "loader/workload.h"

#include <memory>

#include "common/error.h"
#include "core/simulator.h"
#include "kernels/program_menu.h"
#include "loader/elf.h"
#include "loader/syscall.h"

namespace coyote::loader {

namespace {

constexpr Addr kPageMask = 0xFFF;

GuestLayout layout_for(const ElfImage& image, std::uint32_t num_cores,
                       const std::string& name) {
  GuestLayout layout;
  const Addr stack_bottom =
      layout.stack_top -
      std::uint64_t{num_cores} * layout.stack_bytes_per_hart;
  if (image.load_max + kPageMask + 1 > stack_bottom) {
    throw ConfigError(strfmt(
        "%s: image extends to 0x%llx, colliding with the %u hart stacks "
        "growing down from 0x%llx — link the program lower (the menu "
        "kernels load at 0x10000)", name.c_str(),
        static_cast<unsigned long long>(image.load_max), num_cores,
        static_cast<unsigned long long>(layout.stack_top)));
  }
  layout.heap_base = (image.load_max + kPageMask) & ~kPageMask;
  layout.heap_limit = stack_bottom - (kPageMask + 1);  // one guard page
  return layout;
}

}  // namespace

core::WorkloadInfo resolve_workload_info(const core::SimConfig& config) {
  core::WorkloadInfo info;
  if (config.workload.is_elf()) {
    const std::vector<std::uint8_t> bytes = read_file(config.workload.elf);
    info.kind = "elf";
    info.ref = config.workload.elf;
    info.label = config.workload.elf;
    info.content_hash = fnv1a64(bytes.data(), bytes.size());
  } else {
    info.kind = "kernel";
    info.ref = config.workload.kernel;
    info.label = config.workload.kernel;
  }
  return info;
}

core::WorkloadInfo load_workload(core::Simulator& sim) {
  const core::SimConfig& config = sim.config();
  const core::WorkloadConfig& wl = config.workload;
  core::WorkloadInfo info;

  if (wl.is_elf()) {
    const std::vector<std::uint8_t> bytes = read_file(wl.elf);
    const ElfImage image = load_elf64(bytes, sim.memory(), wl.elf);
    const GuestLayout layout = layout_for(image, config.num_cores, wl.elf);
    auto kernel = std::make_unique<ProxyKernel>(layout);
    const auto fromhost = image.symbols.find("fromhost");
    if (fromhost != image.symbols.end()) {
      kernel->set_fromhost_addr(fromhost->second);
    }
    const auto tohost = image.symbols.find("tohost");
    const Addr tohost_addr =
        tohost != image.symbols.end() ? tohost->second : 0;
    const ProxyKernel* pk = kernel.get();
    sim.set_syscall_emulator(std::move(kernel));
    sim.reset_cores(image.entry);
    for (CoreId id = 0; id < sim.num_cores(); ++id) {
      iss::Hart& hart = sim.core(id).hart();
      hart.set_tohost_addr(tohost_addr);
      hart.set_x(2, pk->initial_sp(id));  // sp: per-hart stack slot
      hart.set_x(10, id);                 // a0: hart id
    }
    info.kind = "elf";
    info.ref = wl.elf;
    info.label = wl.elf;
    info.content_hash = image.content_hash;
    return info;
  }

  const kernels::Program program = kernels::build_named_kernel(
      wl.kernel, config.num_cores, wl.size, wl.seed, sim.memory());
  sim.load_program(program.base, program.words, program.entry);
  info.kind = "kernel";
  info.ref = wl.kernel;
  info.label = wl.kernel;
  return info;
}

void attach_proxy_kernel(core::Simulator& sim) {
  sim.set_syscall_emulator(std::make_unique<ProxyKernel>());
}

std::string resume_label(const core::SimConfig& config) {
  if (config.workload.is_elf()) {
    const std::vector<std::uint8_t> bytes = read_file(config.workload.elf);
    return strfmt("elf:%s#%016llx", config.workload.elf.c_str(),
                  static_cast<unsigned long long>(
                      fnv1a64(bytes.data(), bytes.size())));
  }
  return strfmt("%s size=%llu seed=%llu", config.workload.kernel.c_str(),
                static_cast<unsigned long long>(config.workload.size),
                static_cast<unsigned long long>(config.workload.seed));
}

void verify_elf_matches(const std::string& elf_path,
                        std::uint64_t expected_hash) {
  const std::vector<std::uint8_t> bytes = read_file(elf_path);
  const std::uint64_t actual = fnv1a64(bytes.data(), bytes.size());
  if (actual != expected_hash) {
    throw ConfigError(strfmt(
        "checkpoint was taken from a different build of '%s' (image hash "
        "0x%016llx, checkpoint expects 0x%016llx) — restore with the "
        "original binary or rerun from scratch", elf_path.c_str(),
        static_cast<unsigned long long>(actual),
        static_cast<unsigned long long>(expected_hash)));
  }
}

}  // namespace coyote::loader
