// The proxy kernel: a host-side emulation of the handful of Linux/newlib
// syscalls a statically linked RV64 program needs to run bare inside the
// simulator — write, exit/exit_group, brk, fstat, read/close/lseek stubs,
// and cycle-derived (deterministic) clock_gettime/gettimeofday. Programs
// reach it through `ecall` or through HTIF `tohost` stores (LSB set =
// exit(value >> 1), LSB clear = a riscv-pk magic-memory syscall block).
// Implements iss::SyscallEmulatorIf, so harts and CoreModel never see this
// header; only the loader and checkpoint restore construct one.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "iss/syscall_if.h"

namespace coyote::loader {

/// The guest address-space layout the proxy kernel manages. Stacks grow
/// down from stack_top (one stack_bytes_per_hart slot per hart); the brk
/// heap grows up from heap_base (end of the loaded image) and is capped at
/// heap_limit (below the lowest stack).
struct GuestLayout {
  Addr stack_top = 0x7FFF'F000;
  std::uint64_t stack_bytes_per_hart = 1ull << 20;
  Addr heap_base = 0;
  Addr heap_limit = 0;
};

/// Linux RV64 syscall numbers the proxy kernel implements.
inline constexpr std::uint64_t kSysClose = 57;
inline constexpr std::uint64_t kSysLseek = 62;
inline constexpr std::uint64_t kSysRead = 63;
inline constexpr std::uint64_t kSysWrite = 64;
inline constexpr std::uint64_t kSysFstat = 80;
inline constexpr std::uint64_t kSysExit = 93;
inline constexpr std::uint64_t kSysExitGroup = 94;
inline constexpr std::uint64_t kSysClockGettime = 113;
inline constexpr std::uint64_t kSysGettimeofday = 169;
inline constexpr std::uint64_t kSysBrk = 214;

class ProxyKernel final : public iss::SyscallEmulatorIf {
 public:
  explicit ProxyKernel(GuestLayout layout = {});

  const GuestLayout& layout() const { return layout_; }
  /// Initial stack pointer for `hart_id` (16-byte aligned, one descending
  /// slot per hart).
  Addr initial_sp(unsigned hart_id) const;
  /// Arms the fromhost side of the HTIF channel (0 = absent: magic-mem
  /// completions then skip the fromhost doorbell write).
  void set_fromhost_addr(Addr addr) { fromhost_addr_ = addr; }
  Addr brk_cursor() const { return brk_; }

  void execute_syscall(iss::IssSyscallIf& hart) override;
  void handle_tohost(iss::IssSyscallIf& hart, std::uint64_t value) override;
  void save_state(BinWriter& w) const override;
  void load_state(BinReader& r) override;

 private:
  /// Shared core of both trap paths. Returns the syscall result (negative
  /// errno on failure, Linux-style); sets *exited for exit/exit_group.
  std::int64_t dispatch(iss::IssSyscallIf& hart, std::uint64_t number,
                        std::uint64_t a0, std::uint64_t a1, std::uint64_t a2,
                        bool* exited, std::int64_t* exit_status);

  GuestLayout layout_;
  Addr brk_ = 0;
  Addr fromhost_addr_ = 0;
};

}  // namespace coyote::loader
