#include "loader/elf_writer.h"

#include <cstring>

#include "common/error.h"
#include "loader/elf.h"

namespace coyote::loader {

namespace {

class ByteSink {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void raw(const void* data, std::size_t count) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + count);
  }
  void pad_to(std::size_t offset) {
    if (bytes_.size() > offset) {
      throw SimError("elf_writer: layout overrun");
    }
    bytes_.resize(offset, 0);
  }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

std::size_t align8(std::size_t offset) { return (offset + 7) & ~std::size_t{7}; }

}  // namespace

std::vector<std::uint8_t> write_elf64(const ElfWriterSpec& spec) {
  if (spec.segments.empty()) {
    throw ConfigError("elf_writer: an image needs at least one segment");
  }
  constexpr std::size_t kEhdrSize = 64;
  constexpr std::size_t kPhdrSize = 56;
  constexpr std::size_t kShdrSize = 64;
  constexpr std::size_t kSymSize = 24;
  const std::size_t num_segments = spec.segments.size();

  // Layout: ehdr | phdrs | segment bytes | .symtab | .strtab | .shstrtab
  // | shdrs. Everything position-computed up front so headers can point
  // forward.
  std::size_t offset = kEhdrSize + num_segments * kPhdrSize;
  std::vector<std::size_t> seg_offsets;
  for (const ElfWriterSegment& seg : spec.segments) {
    offset = align8(offset);
    seg_offsets.push_back(offset);
    offset += seg.bytes.size();
  }
  const std::size_t symtab_offset = align8(offset);
  const std::size_t num_syms = 1 + spec.symbols.size();  // + null symbol
  const std::size_t symtab_size = num_syms * kSymSize;

  std::string strtab("\0", 1);
  std::vector<std::uint32_t> name_offsets;
  for (const auto& [name, addr] : spec.symbols) {
    (void)addr;
    name_offsets.push_back(static_cast<std::uint32_t>(strtab.size()));
    strtab += name;
    strtab.push_back('\0');
  }
  const std::size_t strtab_offset = symtab_offset + symtab_size;

  const std::string shstrtab = std::string("\0", 1) + ".symtab" + '\0' +
                               ".strtab" + '\0' + ".shstrtab" + '\0';
  const std::uint32_t shname_symtab = 1;
  const std::uint32_t shname_strtab = 1 + 8;
  const std::uint32_t shname_shstrtab = 1 + 8 + 8;
  const std::size_t shstrtab_offset = strtab_offset + strtab.size();
  const std::size_t shoff = align8(shstrtab_offset + shstrtab.size());

  ByteSink out;
  // ELF header.
  const std::uint8_t ident[16] = {0x7f, 'E', 'L', 'F', 2, 1, 1, 0,
                                  0,    0,   0,   0,   0, 0, 0, 0};
  out.raw(ident, sizeof ident);
  out.u16(2);                 // e_type = ET_EXEC
  out.u16(kEmRiscv);          // e_machine
  out.u32(1);                 // e_version
  out.u64(spec.entry);        // e_entry
  out.u64(kEhdrSize);         // e_phoff
  out.u64(shoff);             // e_shoff
  out.u32(0);                 // e_flags
  out.u16(kEhdrSize);         // e_ehsize
  out.u16(kPhdrSize);         // e_phentsize
  out.u16(static_cast<std::uint16_t>(num_segments));  // e_phnum
  out.u16(kShdrSize);         // e_shentsize
  out.u16(4);                 // e_shnum (null, symtab, strtab, shstrtab)
  out.u16(3);                 // e_shstrndx

  // Program headers.
  for (std::size_t i = 0; i < num_segments; ++i) {
    const ElfWriterSegment& seg = spec.segments[i];
    const std::uint64_t memsz =
        seg.memsz != 0 ? seg.memsz : seg.bytes.size();
    out.u32(1);                       // p_type = PT_LOAD
    out.u32(seg.flags);               // p_flags
    out.u64(seg_offsets[i]);          // p_offset
    out.u64(seg.vaddr);               // p_vaddr
    out.u64(seg.vaddr);               // p_paddr
    out.u64(seg.bytes.size());        // p_filesz
    out.u64(memsz);                   // p_memsz
    out.u64(8);                       // p_align
  }

  // Segment payloads.
  for (std::size_t i = 0; i < num_segments; ++i) {
    out.pad_to(seg_offsets[i]);
    out.raw(spec.segments[i].bytes.data(), spec.segments[i].bytes.size());
  }

  // .symtab: null entry then one global absolute symbol per map entry.
  out.pad_to(symtab_offset);
  for (std::size_t i = 0; i < kSymSize; ++i) out.u8(0);
  std::size_t sym_index = 0;
  for (const auto& [name, addr] : spec.symbols) {
    (void)name;
    out.u32(name_offsets[sym_index++]);  // st_name
    out.u8(0x10);                        // st_info = GLOBAL | NOTYPE
    out.u8(0);                           // st_other
    out.u16(0xfff1);                     // st_shndx = SHN_ABS
    out.u64(addr);                       // st_value
    out.u64(0);                          // st_size
  }

  out.raw(strtab.data(), strtab.size());
  out.pad_to(shstrtab_offset);
  out.raw(shstrtab.data(), shstrtab.size());

  // Section headers.
  out.pad_to(shoff);
  auto shdr = [&out](std::uint32_t name, std::uint32_t type,
                     std::uint64_t file_offset, std::uint64_t size,
                     std::uint32_t link, std::uint32_t info,
                     std::uint64_t entsize) {
    out.u32(name);
    out.u32(type);
    out.u64(0);            // sh_flags
    out.u64(0);            // sh_addr
    out.u64(file_offset);  // sh_offset
    out.u64(size);         // sh_size
    out.u32(link);
    out.u32(info);
    out.u64(type == 2 ? 8 : 1);  // sh_addralign
    out.u64(entsize);
  };
  shdr(0, 0, 0, 0, 0, 0, 0);  // SHN_UNDEF
  shdr(shname_symtab, 2, symtab_offset, symtab_size, /*link=strtab*/ 2,
       /*info: first global*/ 1, kSymSize);
  shdr(shname_strtab, 3, strtab_offset, strtab.size(), 0, 0, 0);
  shdr(shname_shstrtab, 3, shstrtab_offset, shstrtab.size(), 0, 0, 0);

  return out.take();
}

}  // namespace coyote::loader
