// Minimal ELF64 writer: enough of the format (header, PT_LOAD program
// headers, a .symtab/.strtab pair) to produce statically linked RV64
// ET_EXEC images that parse_elf64 round-trips bit-faithfully. This is how
// the committed test fixtures are generated (the container has no RISC-V
// cross toolchain) and how the differential test wraps a menu-built kernel
// image into an ELF.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace coyote::loader {

struct ElfWriterSegment {
  Addr vaddr = 0;
  std::vector<std::uint8_t> bytes;
  /// Total in-memory size; 0 means bytes.size() (no bss tail).
  std::uint64_t memsz = 0;
  std::uint32_t flags = 7;  ///< PF_R|PF_W|PF_X by default.
};

struct ElfWriterSpec {
  Addr entry = 0;
  std::vector<ElfWriterSegment> segments;
  /// Emitted as global absolute .symtab entries (tohost, fromhost, ...).
  std::map<std::string, Addr> symbols;
};

/// Serialises `spec` into an ELF64/RV64/ET_EXEC image.
std::vector<std::uint8_t> write_elf64(const ElfWriterSpec& spec);

}  // namespace coyote::loader
