// Report generation: walks a unit tree and renders every counter and derived
// statistic as text, CSV or JSON — the simulator's "simulation outputs
// statistics" surface (paper §III-A).
#pragma once

#include <iosfwd>
#include <string>

#include "simfw/unit.h"

namespace coyote::simfw {

enum class ReportFormat { kText, kCsv, kJson };

class Report {
 public:
  explicit Report(const Unit& root) : root_(&root) {}

  /// Renders the whole subtree in the requested format.
  void write(std::ostream& os, ReportFormat format) const;

  /// Convenience: renders to a string.
  std::string to_string(ReportFormat format) const;

 private:
  void write_text(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;

  const Unit* root_;
};

}  // namespace coyote::simfw
