// Typed parameter sets with string-based overrides, modelled on Sparta's
// ParameterSet + the "--config key=value" style the Coyote CLI exposes
// (L2 size/associativity/line size/banks/MSHRs/latencies, NoC latency, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.h"

namespace coyote::simfw {

/// One named, typed, defaulted, optionally-validated parameter.
class Parameter {
 public:
  using Value = std::variant<bool, std::int64_t, std::uint64_t, double,
                             std::string>;
  using Validator = std::function<bool(const Value&)>;

  Parameter(std::string name, Value default_value, std::string description,
            Validator validator = nullptr)
      : name_(std::move(name)),
        description_(std::move(description)),
        value_(default_value),
        default_(std::move(default_value)),
        validator_(std::move(validator)) {}

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const Value& value() const { return value_; }
  const Value& default_value() const { return default_; }
  bool is_default() const { return value_ == default_; }

  template <typename T>
  T as() const {
    if (const T* held = std::get_if<T>(&value_)) return *held;
    throw ConfigError(strfmt("parameter '%s': wrong type requested",
                             name_.c_str()));
  }

  /// Sets from a typed value; runs the validator.
  void set(Value value);

  /// Sets from a string ("true", "42", "3.5", "foo") parsed against the
  /// type of the default value.
  void set_from_string(const std::string& text);

  /// Renders the current value as a string.
  std::string to_string() const;

 private:
  std::string name_;
  std::string description_;
  Value value_;
  Value default_;
  Validator validator_;
};

/// A named collection of parameters, typically one per configurable unit.
class ParameterSet {
 public:
  ParameterSet() = default;
  ParameterSet(const ParameterSet&) = delete;
  ParameterSet& operator=(const ParameterSet&) = delete;

  Parameter& add(std::string name, Parameter::Value default_value,
                 std::string description,
                 Parameter::Validator validator = nullptr);

  bool has(const std::string& name) const;
  Parameter& get(const std::string& name);
  const Parameter& get(const std::string& name) const;

  template <typename T>
  T as(const std::string& name) const {
    return get(name).as<T>();
  }

  const std::vector<std::unique_ptr<Parameter>>& all() const {
    return params_;
  }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// A flat map of dotted-path overrides ("l2.size_kb" -> "1024"), the
/// in-memory equivalent of a Coyote command line / config file.
class ConfigMap {
 public:
  ConfigMap() = default;

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  /// Parses one "key=value" token.
  void set_from_token(const std::string& token);

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  const std::string& get(const std::string& key) const;

  /// Applies every override whose key starts with "<prefix>." to the
  /// matching parameter in `params`; unknown keys under the prefix throw.
  /// Returns the number of parameters overridden.
  std::size_t apply(const std::string& prefix, ParameterSet& params) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace coyote::simfw
