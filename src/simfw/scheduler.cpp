#include "simfw/scheduler.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace coyote::simfw {

Scheduler::Scheduler() = default;

Scheduler::~Scheduler() {
  // Destroy the callbacks of events still pending (armed nodes are reachable
  // through the buckets and the overflow heap; pool chunks free themselves).
  for (Bucket& bucket : buckets_) {
    for (EventNode* node : bucket.head) {
      for (; node != nullptr; node = node->next) {
        if (node->destroy != nullptr) node->destroy(node);
      }
    }
  }
  for (EventNode* node : overflow_) {
    if (node->destroy != nullptr) node->destroy(node);
  }
}

void Scheduler::check_not_past(Cycle when) const {
  if (when < now_) {
    throw SimError(strfmt("Scheduler: event scheduled in the past (at=%llu, "
                          "now=%llu)",
                          static_cast<unsigned long long>(when),
                          static_cast<unsigned long long>(now_)));
  }
}

Scheduler::EventNode* Scheduler::grow_pool() {
  chunks_.push_back(std::make_unique<EventNode[]>(kNodesPerChunk));
  EventNode* chunk = chunks_.back().get();
  // Link all but the first into the free list; hand the first to the caller.
  for (std::size_t i = 1; i + 1 < kNodesPerChunk; ++i) {
    chunk[i].next = &chunk[i + 1];
  }
  chunk[kNodesPerChunk - 1].next = free_;
  free_ = &chunk[1];
  return &chunk[0];
}

void Scheduler::enqueue(EventNode* node) {
  ++num_pending_;
  if (node->when - now_ < kNumBuckets) {
    push_bucket(node);
  } else {
    overflow_.push_back(node);
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  }
}

void Scheduler::push_bucket(EventNode* node) {
  Bucket& bucket = buckets_[node->when & kBucketCycleMask];
  node->next = nullptr;
  const std::uint8_t lane = node->priority;
  if (bucket.tail[lane] != nullptr) {
    bucket.tail[lane]->next = node;
  } else {
    bucket.head[lane] = node;
  }
  bucket.tail[lane] = node;
  if (bucket.count++ == 0) {
    const std::size_t index = node->when & kBucketCycleMask;
    occupancy_[index / 64] |= std::uint64_t{1} << (index % 64);
  }
}

void Scheduler::migrate_overflow() {
  // Heap pops deliver (when, priority, sequence) order, and any event for a
  // cycle newly inside the horizon migrates before a fresh schedule_at can
  // append directly to that cycle's bucket, so lane FIFO order stays the
  // global sequence order.
  while (!overflow_.empty() && overflow_.front()->when - now_ < kNumBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    EventNode* node = overflow_.back();
    overflow_.pop_back();
    push_bucket(node);
  }
}

void Scheduler::fire_current_cycle() {
  Bucket& bucket = buckets_[now_ & kBucketCycleMask];
  while (bucket.count != 0) {
    // Re-scan from the lowest lane after every callback: a callback may
    // schedule a same-cycle event in an earlier phase, which (matching the
    // old priority-queue comparator) must fire before later-phase leftovers.
    for (std::size_t lane = 0; lane < kNumLanes; ++lane) {
      EventNode* node = bucket.head[lane];
      if (node == nullptr) continue;
      bucket.head[lane] = node->next;
      if (node->next == nullptr) bucket.tail[lane] = nullptr;
      if (--bucket.count == 0) {
        const std::size_t index = now_ & kBucketCycleMask;
        occupancy_[index / 64] &= ~(std::uint64_t{1} << (index % 64));
      }
      --num_pending_;
      ++events_fired_;
      node->invoke(node);
      if (node->destroy != nullptr) node->destroy(node);
      release_node(node);
      break;
    }
  }
}

Cycle Scheduler::next_pending_cycle() const {
  // Ring scan: buckets only hold events in [now_, now_ + kNumBuckets), so
  // the first occupied bucket in circular order from now_ is the earliest
  // ring event. Overflow events are all at or beyond the horizon.
  if (num_pending_ != overflow_.size()) {
    const std::size_t start = now_ & kBucketCycleMask;
    const std::size_t first_word = start / 64;
    const std::size_t first_bit = start % 64;
    for (std::size_t i = 0; i <= kOccupancyWords; ++i) {
      const std::size_t w = (first_word + i) % kOccupancyWords;
      std::uint64_t word = occupancy_[w];
      if (i == 0) {
        word &= ~std::uint64_t{0} << first_bit;
      } else if (i == kOccupancyWords) {
        word &= (std::uint64_t{1} << first_bit) - 1;
      }
      if (word == 0) continue;
      const std::size_t index =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      return now_ + ((index - start) & kBucketCycleMask);
    }
  }
  if (!overflow_.empty()) return overflow_.front()->when;
  return kNoCycle;
}

Cycle Scheduler::next_event_cycle() const { return next_pending_cycle(); }

void Scheduler::advance_to(Cycle cycle) {
  if (cycle < now_) return;
  for (;;) {
    fire_current_cycle();
    if (now_ >= cycle) break;
    const Cycle next = next_pending_cycle();
    if (next == kNoCycle || next > cycle) {
      set_now(cycle);
      break;
    }
    set_now(next);
  }
}

Cycle Scheduler::run_to_completion(Cycle max_cycle) {
  while (has_pending()) {
    const Cycle next = next_pending_cycle();
    if (next > max_cycle) break;
    advance_to(next);
  }
  // With an explicit bound, time still passes up to that bound even if no
  // event lands exactly on it (the unbounded default stops at the last
  // event instead of jumping to the end of time).
  if (max_cycle != ~Cycle{0} && now_ < max_cycle) advance_to(max_cycle);
  return now_;
}

void Scheduler::restore_clock(Cycle now, std::uint64_t next_sequence,
                              std::uint64_t events_fired) {
  if (has_pending()) {
    throw SimError(
        "Scheduler::restore_clock: events pending — checkpoints may only be "
        "restored into a quiesced scheduler");
  }
  if (now < now_) {
    throw SimError("Scheduler::restore_clock: time never moves backwards");
  }
  now_ = now;
  next_sequence_ = next_sequence;
  events_fired_ = events_fired;
}

}  // namespace coyote::simfw
