#include "simfw/scheduler.h"

#include "common/error.h"

namespace coyote::simfw {

void Scheduler::schedule_at(Cycle when, SchedPriority priority, Callback cb) {
  if (when < now_) {
    throw SimError(strfmt("Scheduler: event scheduled in the past (at=%llu, "
                          "now=%llu)",
                          static_cast<unsigned long long>(when),
                          static_cast<unsigned long long>(now_)));
  }
  queue_.push(Entry{when, static_cast<std::uint8_t>(priority),
                    next_sequence_++, std::move(cb)});
}

void Scheduler::advance_to(Cycle cycle) {
  while (!queue_.empty() && queue_.top().when <= cycle) {
    // The queue owns the callback; move it out before popping so a callback
    // that schedules new events does not invalidate the entry under us.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    ++events_fired_;
    entry.callback();
  }
  now_ = cycle;
}

Cycle Scheduler::run_to_completion(Cycle max_cycle) {
  while (!queue_.empty() && queue_.top().when <= max_cycle) {
    advance_to(queue_.top().when);
  }
  // With an explicit bound, time still passes up to that bound even if no
  // event lands exactly on it (the unbounded default stops at the last
  // event instead of jumping to the end of time).
  if (max_cycle != ~Cycle{0} && now_ < max_cycle) now_ = max_cycle;
  return now_;
}

}  // namespace coyote::simfw
