// Typed, latency-carrying message ports between units, modelled on Sparta's
// DataInPort/DataOutPort. An out-port bound to an in-port delivers payloads
// through the scheduler after a configurable delay; delivery runs in the
// kPortDelivery phase so all same-cycle messages are visible before unit
// updates.
//
// send() goes through the scheduler's pooled small-buffer event path: the
// delivery closure (destination pointer + payload) is constructed in-place
// in a pooled event node, so sending a cache-line message allocates nothing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "simfw/unit.h"

namespace coyote::simfw {

template <typename T>
class DataInPort;

template <typename T>
class DataOutPort {
 public:
  DataOutPort(Unit* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}

  DataOutPort(const DataOutPort&) = delete;
  DataOutPort& operator=(const DataOutPort&) = delete;

  const std::string& name() const { return name_; }

  /// Binds this out-port to `in`. One out-port may feed several in-ports
  /// (broadcast); each send is delivered to all of them.
  void bind(DataInPort<T>& in) { destinations_.push_back(&in); }

  bool is_bound() const { return !destinations_.empty(); }

  /// Sends `payload`, delivered `delay` cycles from now (0 = later this
  /// cycle, in the port-delivery phase).
  void send(T payload, Cycle delay = 0);

  /// Delivers `payload` synchronously, bypassing the scheduler. Used by the
  /// contended-NoC drain, which already runs in the port-delivery phase and
  /// owns the ordering of same-cycle deliveries.
  void deliver_now(const T& payload) {
    if (destinations_.empty()) {
      throw SimError(strfmt("port '%s.%s': deliver_now on unbound port",
                            owner_->path().c_str(), name_.c_str()));
    }
    for (DataInPort<T>* destination : destinations_) {
      destination->deliver(payload);
    }
  }

 private:
  Unit* owner_;
  std::string name_;
  std::vector<DataInPort<T>*> destinations_;
};

template <typename T>
class DataInPort {
 public:
  using Handler = std::function<void(const T&)>;

  DataInPort(Unit* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}

  DataInPort(const DataInPort&) = delete;
  DataInPort& operator=(const DataInPort&) = delete;

  const std::string& name() const { return name_; }

  /// Registers the handler invoked on delivery. Exactly one handler.
  void register_handler(Handler handler) {
    if (handler_) {
      throw ConfigError(strfmt("port '%s.%s': handler already registered",
                               owner_->path().c_str(), name_.c_str()));
    }
    handler_ = std::move(handler);
  }

  Unit& owner() const { return *owner_; }

  /// Delivers a payload immediately (bypassing the scheduler). Used by the
  /// out-port's scheduled callback and by unit tests.
  void deliver(const T& payload) {
    if (!handler_) {
      throw SimError(strfmt("port '%s.%s': delivery with no handler",
                            owner_->path().c_str(), name_.c_str()));
    }
    handler_(payload);
  }

 private:
  Unit* owner_;
  std::string name_;
  Handler handler_;
};

template <typename T>
void DataOutPort<T>::send(T payload, Cycle delay) {
  if (destinations_.empty()) {
    throw SimError(strfmt("port '%s.%s': send on unbound port",
                          owner_->path().c_str(), name_.c_str()));
  }
  if (destinations_.size() == 1) {
    DataInPort<T>* destination = destinations_.front();
    owner_->scheduler().schedule(
        delay, SchedPriority::kPortDelivery,
        [destination, payload = std::move(payload)]() mutable {
          destination->deliver(payload);
        });
    return;
  }
  for (DataInPort<T>* destination : destinations_) {
    owner_->scheduler().schedule(delay, SchedPriority::kPortDelivery,
                                 [destination, payload]() {
                                   destination->deliver(payload);
                                 });
  }
}

}  // namespace coyote::simfw
