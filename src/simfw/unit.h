// Unit: a named node in the simulated-machine tree (Sparta's TreeNode+Unit
// rolled into one). Every modelled component (an L2 bank, the NoC, a memory
// controller) derives from Unit; the tree gives stable dotted names
// ("top.tile0.l2bank1") used by configuration and reporting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simfw/scheduler.h"
#include "simfw/statistics.h"

namespace coyote::simfw {

class Unit {
 public:
  /// Constructs a root unit (no parent). The scheduler must outlive the tree.
  Unit(Scheduler* scheduler, std::string name);

  /// Constructs a child of `parent`.
  Unit(Unit* parent, std::string name);

  virtual ~Unit();

  Unit(const Unit&) = delete;
  Unit& operator=(const Unit&) = delete;

  const std::string& name() const { return name_; }
  /// Dotted path from the root, e.g. "top.tile0.l2bank1".
  const std::string& path() const { return path_; }

  Unit* parent() const { return parent_; }
  const std::vector<Unit*>& children() const { return children_; }

  Scheduler& scheduler() const { return *scheduler_; }
  StatisticSet& stats() { return stats_; }
  const StatisticSet& stats() const { return stats_; }

  /// Finds a descendant by relative dotted path; nullptr if absent.
  Unit* find(const std::string& relative_path);

  /// Depth-first pre-order traversal of this subtree.
  template <typename Fn>
  void for_each(Fn&& fn) {
    fn(*this);
    for (Unit* child : children_) child->for_each(fn);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    fn(static_cast<const Unit&>(*this));
    for (const Unit* child : children_) child->for_each(fn);
  }

 private:
  Unit* parent_ = nullptr;
  Scheduler* scheduler_ = nullptr;
  std::string name_;
  std::string path_;
  std::vector<Unit*> children_;
  StatisticSet stats_;
};

}  // namespace coyote::simfw
