#include "simfw/unit.h"

#include <algorithm>

#include "common/error.h"

namespace coyote::simfw {

Unit::Unit(Scheduler* scheduler, std::string name)
    : scheduler_(scheduler), name_(std::move(name)), path_(name_) {
  if (scheduler_ == nullptr) {
    throw ConfigError("root Unit requires a scheduler");
  }
  if (name_.empty() || name_.find('.') != std::string::npos) {
    throw ConfigError(strfmt("invalid unit name '%s'", name_.c_str()));
  }
}

Unit::Unit(Unit* parent, std::string name)
    : parent_(parent), name_(std::move(name)) {
  if (parent_ == nullptr) throw ConfigError("child Unit requires a parent");
  if (name_.empty() || name_.find('.') != std::string::npos) {
    throw ConfigError(strfmt("invalid unit name '%s'", name_.c_str()));
  }
  for (const Unit* sibling : parent_->children_) {
    if (sibling->name() == name_) {
      throw ConfigError(strfmt("duplicate child unit '%s' under '%s'",
                               name_.c_str(), parent_->path().c_str()));
    }
  }
  scheduler_ = parent_->scheduler_;
  path_ = parent_->path_ + "." + name_;
  parent_->children_.push_back(this);
}

Unit::~Unit() {
  if (parent_ != nullptr) {
    auto& siblings = parent_->children_;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), this),
                   siblings.end());
  }
}

Unit* Unit::find(const std::string& relative_path) {
  const auto dot = relative_path.find('.');
  const std::string head = relative_path.substr(0, dot);
  for (Unit* child : children_) {
    if (child->name() == head) {
      if (dot == std::string::npos) return child;
      return child->find(relative_path.substr(dot + 1));
    }
  }
  return nullptr;
}

}  // namespace coyote::simfw
