// Discrete-event scheduler — the heart of the Sparta-equivalent framework.
//
// Coyote's Orchestrator advances simulated time in lock-step with the
// functional cores: after stepping each active core for the current cycle it
// fires every event the memory-hierarchy model has scheduled for that cycle
// (paper §III-A). The scheduler therefore exposes both an absolute
// `advance_to(cycle)` used by the Orchestrator and a free-running
// `run_to_completion()` used by standalone framework tests.
//
// Determinism: events firing on the same cycle are ordered by (priority,
// insertion sequence). Two identically-configured simulations are
// bit-reproducible.
//
// Implementation: a bucketed calendar queue. Events within the next
// kNumBuckets cycles live in a ring of per-cycle buckets, each bucket an
// array of intrusive FIFO lanes (one lane per SchedPriority); events beyond
// the horizon wait in a small min-heap and migrate into the ring as time
// advances. Event nodes come from a pooled free-list and callbacks are
// constructed in-place in the node (48-byte small-buffer, heap fallback), so
// the steady-state schedule/fire cycle performs no allocation. This is the
// hot structure behind the paper's Figure 3 throughput metric: scheduling
// and firing are O(1) with no malloc, and advancing across empty cycles
// (cores all stalled on fills) costs a bitmap scan instead of a heap
// operation per cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace coyote::simfw {

/// Intra-cycle ordering groups, lowest fires first. Mirrors the Sparta
/// scheduling-phase concept: port deliveries happen before unit updates so a
/// unit observes all same-cycle inputs, collection/stat updates run last.
enum class SchedPriority : std::uint8_t {
  kPortDelivery = 0,  ///< in-port handler invocations
  kUpdate = 1,        ///< unit state-machine updates
  kTick = 2,          ///< default for ad-hoc events
  kCollection = 3,    ///< statistics / trace collection
};

class Scheduler {
 public:
  /// Legacy convenience alias; any callable is accepted directly and stored
  /// without a std::function wrapper.
  using Callback = std::function<void()>;

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated cycle.
  Cycle now() const { return now_; }

  /// Schedules `fn` to fire `delay` cycles from now (0 == later this cycle,
  /// allowed only while the scheduler is firing the current cycle or before
  /// the cycle has been fired).
  template <typename F>
  void schedule(Cycle delay, SchedPriority priority, F&& fn) {
    schedule_at(now_ + delay, priority, std::forward<F>(fn));
  }

  /// Schedules `fn` at the absolute cycle `when` (must be >= now()).
  template <typename F>
  void schedule_at(Cycle when, SchedPriority priority, F&& fn) {
    check_not_past(when);
    EventNode* node = acquire_node();
    node->when = when;
    node->priority = static_cast<std::uint8_t>(priority) & kLaneMask;
    node->sequence = next_sequence_++;
    try {
      node->bind(std::forward<F>(fn));
    } catch (...) {
      release_node(node);
      throw;
    }
    enqueue(node);
  }

  /// True iff any event remains in the queue.
  bool has_pending() const { return num_pending_ != 0; }

  /// Cycle of the earliest pending event. Requires has_pending().
  Cycle next_event_cycle() const;

  /// Number of events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  /// Sequence number the next scheduled event will receive (checkpointing).
  std::uint64_t next_sequence() const { return next_sequence_; }

  /// Fires, in deterministic order, every event scheduled at a cycle
  /// <= `cycle`, then sets now() == cycle. Events that reschedule at the
  /// current cycle are honored within the same call. A `cycle` in the past
  /// is a no-op (time never moves backwards).
  void advance_to(Cycle cycle);

  /// Equivalent to advance_to(now()+1): the per-cycle tick the Orchestrator
  /// uses.
  void tick() { advance_to(now_ + 1); }

  /// Runs until the queue drains or `max_cycle` is reached; returns the
  /// final value of now().
  Cycle run_to_completion(Cycle max_cycle = ~Cycle{0});

  /// Checkpoint restore: sets the clock and bookkeeping of a quiesced
  /// scheduler (queue must be empty — checkpoints are only cut at quiesce
  /// points, so no event callbacks ever need serializing). Throws SimError
  /// if any event is pending.
  void restore_clock(Cycle now, std::uint64_t next_sequence,
                     std::uint64_t events_fired);

 private:
  static constexpr std::size_t kNumLanes = 4;  // one per SchedPriority
  static constexpr std::uint8_t kLaneMask = kNumLanes - 1;
  /// Ring size; must be a power of two and exceed every latency any unit
  /// schedules with (the deepest path here — NoC + LLC + DRAM row miss — is
  /// well under 200 cycles). Longer delays take the overflow heap.
  static constexpr std::size_t kNumBuckets = 512;
  static constexpr Cycle kBucketCycleMask = kNumBuckets - 1;
  static constexpr std::size_t kOccupancyWords = kNumBuckets / 64;
  static constexpr std::size_t kNodesPerChunk = 256;
  static constexpr Cycle kNoCycle = ~Cycle{0};

  /// One pooled event. The callback is constructed in-place in `storage`
  /// (or, beyond kInlineBytes, in a heap cell pointed to from `storage`);
  /// nodes never move while armed, so callables need no move support.
  struct EventNode {
    EventNode* next = nullptr;
    Cycle when = 0;
    std::uint64_t sequence = 0;
    void (*invoke)(EventNode*) = nullptr;
    void (*destroy)(EventNode*) = nullptr;  ///< null: trivially destructible
    std::uint8_t priority = 0;

    static constexpr std::size_t kInlineBytes = 48;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];

    template <typename F>
    void bind(F&& fn) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineBytes &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(storage)) Fn(std::forward<F>(fn));
        invoke = [](EventNode* n) {
          (*std::launder(reinterpret_cast<Fn*>(n->storage)))();
        };
        if constexpr (std::is_trivially_destructible_v<Fn>) {
          destroy = nullptr;
        } else {
          destroy = [](EventNode* n) {
            std::launder(reinterpret_cast<Fn*>(n->storage))->~Fn();
          };
        }
      } else {
        Fn* heap = new Fn(std::forward<F>(fn));
        ::new (static_cast<void*>(storage)) Fn*(heap);
        invoke = [](EventNode* n) {
          (**std::launder(reinterpret_cast<Fn**>(n->storage)))();
        };
        destroy = [](EventNode* n) {
          delete *std::launder(reinterpret_cast<Fn**>(n->storage));
        };
      }
    }
  };

  /// One simulated cycle's worth of events: an intrusive FIFO per priority.
  struct Bucket {
    EventNode* head[kNumLanes] = {};
    EventNode* tail[kNumLanes] = {};
    std::uint32_t count = 0;
  };

  /// Min-heap order for beyond-horizon events: (when, priority, sequence).
  struct OverflowLater {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->when != b->when) return a->when > b->when;
      if (a->priority != b->priority) return a->priority > b->priority;
      return a->sequence > b->sequence;
    }
  };

  void check_not_past(Cycle when) const;
  EventNode* acquire_node() {
    EventNode* node = free_;
    if (node == nullptr) return grow_pool();
    free_ = node->next;
    return node;
  }
  void release_node(EventNode* node) {
    node->next = free_;
    free_ = node;
  }
  EventNode* grow_pool();

  void enqueue(EventNode* node);
  void push_bucket(EventNode* node);
  /// Moves every overflow event that entered the ring's horizon into its
  /// bucket. Must run after every change of now_ so that heap order (which
  /// encodes priority/sequence) is preserved ahead of direct insertions.
  void migrate_overflow();
  void set_now(Cycle cycle) {
    now_ = cycle;
    if (!overflow_.empty()) migrate_overflow();
  }
  /// Fires every event at now_ (including ones scheduled mid-firing) in
  /// (priority, sequence) order.
  void fire_current_cycle();
  /// Earliest cycle >= now_ with a pending event, or kNoCycle.
  Cycle next_pending_cycle() const;

  std::vector<Bucket> buckets_{kNumBuckets};
  std::uint64_t occupancy_[kOccupancyWords] = {};
  std::vector<EventNode*> overflow_;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_ = nullptr;

  Cycle now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_fired_ = 0;
  std::size_t num_pending_ = 0;
};

}  // namespace coyote::simfw
