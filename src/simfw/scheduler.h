// Discrete-event scheduler — the heart of the Sparta-equivalent framework.
//
// Coyote's Orchestrator advances simulated time in lock-step with the
// functional cores: after stepping each active core for the current cycle it
// fires every event the memory-hierarchy model has scheduled for that cycle
// (paper §III-A). The scheduler therefore exposes both an absolute
// `advance_to(cycle)` used by the Orchestrator and a free-running
// `run_to_completion()` used by standalone framework tests.
//
// Determinism: events firing on the same cycle are ordered by (priority,
// insertion sequence). Two identically-configured simulations are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace coyote::simfw {

/// Intra-cycle ordering groups, lowest fires first. Mirrors the Sparta
/// scheduling-phase concept: port deliveries happen before unit updates so a
/// unit observes all same-cycle inputs, collection/stat updates run last.
enum class SchedPriority : std::uint8_t {
  kPortDelivery = 0,  ///< in-port handler invocations
  kUpdate = 1,        ///< unit state-machine updates
  kTick = 2,          ///< default for ad-hoc events
  kCollection = 3,    ///< statistics / trace collection
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated cycle.
  Cycle now() const { return now_; }

  /// Schedules `cb` to fire `delay` cycles from now (0 == later this cycle,
  /// allowed only while the scheduler is firing the current cycle or before
  /// the cycle has been fired).
  void schedule(Cycle delay, SchedPriority priority, Callback cb) {
    schedule_at(now_ + delay, priority, std::move(cb));
  }

  /// Schedules `cb` at the absolute cycle `when` (must be >= now()).
  void schedule_at(Cycle when, SchedPriority priority, Callback cb);

  /// True iff any event remains in the queue.
  bool has_pending() const { return !queue_.empty(); }

  /// Cycle of the earliest pending event. Requires has_pending().
  Cycle next_event_cycle() const { return queue_.top().when; }

  /// Number of events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  /// Fires, in deterministic order, every event scheduled at a cycle
  /// <= `cycle`, then sets now() == cycle. Events that reschedule at the
  /// current cycle are honored within the same call.
  void advance_to(Cycle cycle);

  /// Equivalent to advance_to(now()+1): the per-cycle tick the Orchestrator
  /// uses.
  void tick() { advance_to(now_ + 1); }

  /// Runs until the queue drains or `max_cycle` is reached; returns the
  /// final value of now().
  Cycle run_to_completion(Cycle max_cycle = ~Cycle{0});

 private:
  struct Entry {
    Cycle when;
    std::uint8_t priority;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Cycle now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_fired_ = 0;
};

}  // namespace coyote::simfw
