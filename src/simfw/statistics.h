// Counters and derived statistics, organised per unit like Sparta's
// StatisticSet. Counters are plain 64-bit accumulators; StatisticDefs are
// named closures evaluated at report time (e.g. miss rate = misses/accesses).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace coyote::simfw {

/// A monotonically-increasing 64-bit event counter.
class Counter {
 public:
  Counter(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  std::uint64_t get() const { return value_; }
  void increment(std::uint64_t by = 1) { value_ += by; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t by) {
    value_ += by;
    return *this;
  }
  /// Resets to zero (used between benchmark repetitions).
  void reset() { value_ = 0; }
  /// Restores an absolute value (checkpoint restore only).
  void set(std::uint64_t value) { value_ = value; }

 private:
  std::string name_;
  std::string description_;
  std::uint64_t value_ = 0;
};

/// A derived, report-time statistic (ratio, sum, ...).
class StatisticDef {
 public:
  using Evaluator = std::function<double()>;

  StatisticDef(std::string name, std::string description, Evaluator evaluator)
      : name_(std::move(name)),
        description_(std::move(description)),
        evaluator_(std::move(evaluator)) {}

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  double evaluate() const { return evaluator_(); }

 private:
  std::string name_;
  std::string description_;
  Evaluator evaluator_;
};

/// A sampled distribution: count/sum/min/max plus power-of-two buckets
/// (bucket i counts samples whose bit-width is i, i.e. value in
/// [2^(i-1), 2^i)). Used for latencies and occupancies where a single
/// accumulator hides the tail.
class DistributionStat {
 public:
  static constexpr unsigned kBuckets = 65;  // bit-width 0..64

  DistributionStat(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  void sample(std::uint64_t value) {
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : (value < min_ ? value : min_);
    max_ = value > max_ ? value : max_;
    ++buckets_[bit_width(value)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Samples with bit-width `i` (value in [2^(i-1), 2^i); bucket 0 = zeros).
  std::uint64_t bucket(unsigned i) const { return buckets_[i]; }

  void reset() {
    count_ = sum_ = min_ = max_ = 0;
    for (auto& bucket : buckets_) bucket = 0;
  }

  /// Restores raw accumulator state (checkpoint restore only). `min` must be
  /// the raw internal minimum (0 when count == 0).
  void restore(std::uint64_t count, std::uint64_t sum, std::uint64_t min,
               std::uint64_t max, const std::uint64_t (&buckets)[kBuckets]) {
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    for (unsigned i = 0; i < kBuckets; ++i) buckets_[i] = buckets[i];
  }
  /// Raw internal minimum regardless of count (checkpoint save only).
  std::uint64_t raw_min() const { return min_; }

 private:
  static unsigned bit_width(std::uint64_t value) {
    unsigned width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width;
  }

  std::string name_;
  std::string description_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// The set of counters and derived statistics owned by one unit.
/// Pointers returned by the register functions remain valid for the life of
/// the set (node-based storage).
class StatisticSet {
 public:
  StatisticSet() = default;
  StatisticSet(const StatisticSet&) = delete;
  StatisticSet& operator=(const StatisticSet&) = delete;

  Counter& counter(const std::string& name, const std::string& description);
  StatisticDef& statistic(const std::string& name,
                          const std::string& description,
                          StatisticDef::Evaluator evaluator);
  DistributionStat& distribution(const std::string& name,
                                 const std::string& description);

  /// Lookup by name; throws SimError if absent.
  const Counter& find_counter(const std::string& name) const;
  const DistributionStat& find_distribution(const std::string& name) const;

  const std::vector<std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::vector<std::unique_ptr<StatisticDef>>& statistics() const {
    return statistics_;
  }
  const std::vector<std::unique_ptr<DistributionStat>>& distributions()
      const {
    return distributions_;
  }

  /// Resets every counter and distribution to zero.
  void reset();

 private:
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<StatisticDef>> statistics_;
  std::vector<std::unique_ptr<DistributionStat>> distributions_;
};

}  // namespace coyote::simfw
