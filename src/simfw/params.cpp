#include "simfw/params.h"

#include <cstdlib>

namespace coyote::simfw {

void Parameter::set(Value value) {
  if (value.index() != default_.index()) {
    throw ConfigError(
        strfmt("parameter '%s': type mismatch on set", name_.c_str()));
  }
  if (validator_ && !validator_(value)) {
    throw ConfigError(strfmt("parameter '%s': value rejected by validator",
                             name_.c_str()));
  }
  value_ = std::move(value);
}

void Parameter::set_from_string(const std::string& text) {
  try {
    if (std::holds_alternative<bool>(default_)) {
      if (text == "true" || text == "1") {
        set(true);
      } else if (text == "false" || text == "0") {
        set(false);
      } else {
        throw ConfigError(strfmt("parameter '%s': bad bool '%s'",
                                 name_.c_str(), text.c_str()));
      }
    } else if (std::holds_alternative<std::int64_t>(default_)) {
      set(static_cast<std::int64_t>(std::stoll(text, nullptr, 0)));
    } else if (std::holds_alternative<std::uint64_t>(default_)) {
      set(static_cast<std::uint64_t>(std::stoull(text, nullptr, 0)));
    } else if (std::holds_alternative<double>(default_)) {
      set(std::stod(text));
    } else {
      set(text);
    }
  } catch (const std::invalid_argument&) {
    throw ConfigError(strfmt("parameter '%s': cannot parse '%s'",
                             name_.c_str(), text.c_str()));
  } catch (const std::out_of_range&) {
    throw ConfigError(strfmt("parameter '%s': value '%s' out of range",
                             name_.c_str(), text.c_str()));
  }
}

std::string Parameter::to_string() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b ? "true" : "false";
  if (const auto* i = std::get_if<std::int64_t>(&value_))
    return std::to_string(*i);
  if (const auto* u = std::get_if<std::uint64_t>(&value_))
    return std::to_string(*u);
  if (const auto* d = std::get_if<double>(&value_)) return std::to_string(*d);
  return std::get<std::string>(value_);
}

Parameter& ParameterSet::add(std::string name, Parameter::Value default_value,
                             std::string description,
                             Parameter::Validator validator) {
  if (has(name)) {
    throw ConfigError(strfmt("duplicate parameter '%s'", name.c_str()));
  }
  params_.push_back(std::make_unique<Parameter>(
      std::move(name), std::move(default_value), std::move(description),
      std::move(validator)));
  return *params_.back();
}

bool ParameterSet::has(const std::string& name) const {
  for (const auto& param : params_) {
    if (param->name() == name) return true;
  }
  return false;
}

Parameter& ParameterSet::get(const std::string& name) {
  for (const auto& param : params_) {
    if (param->name() == name) return *param;
  }
  throw ConfigError(strfmt("no parameter named '%s'", name.c_str()));
}

const Parameter& ParameterSet::get(const std::string& name) const {
  for (const auto& param : params_) {
    if (param->name() == name) return *param;
  }
  throw ConfigError(strfmt("no parameter named '%s'", name.c_str()));
}

void ConfigMap::set_from_token(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ConfigError(strfmt("bad config token '%s' (want key=value)",
                             token.c_str()));
  }
  set(token.substr(0, eq), token.substr(eq + 1));
}

const std::string& ConfigMap::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw ConfigError(strfmt("no config value for '%s'", key.c_str()));
  }
  return it->second;
}

std::size_t ConfigMap::apply(const std::string& prefix,
                             ParameterSet& params) const {
  const std::string full_prefix = prefix + ".";
  std::size_t applied = 0;
  for (const auto& [key, value] : values_) {
    if (key.rfind(full_prefix, 0) != 0) continue;
    const std::string leaf = key.substr(full_prefix.size());
    if (!params.has(leaf)) {
      throw ConfigError(strfmt("unknown parameter '%s' (from override '%s')",
                               leaf.c_str(), key.c_str()));
    }
    params.get(leaf).set_from_string(value);
    ++applied;
  }
  return applied;
}

}  // namespace coyote::simfw
