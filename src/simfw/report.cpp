#include "simfw/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace coyote::simfw {

void Report::write(std::ostream& os, ReportFormat format) const {
  switch (format) {
    case ReportFormat::kText:
      write_text(os);
      return;
    case ReportFormat::kCsv:
      write_csv(os);
      return;
    case ReportFormat::kJson:
      write_json(os);
      return;
  }
}

std::string Report::to_string(ReportFormat format) const {
  std::ostringstream os;
  write(os, format);
  return os.str();
}

void Report::write_text(std::ostream& os) const {
  root_->for_each([&os](const Unit& unit) {
    const auto& stats = unit.stats();
    if (stats.counters().empty() && stats.statistics().empty() &&
        stats.distributions().empty()) {
      return;
    }
    os << unit.path() << ":\n";
    for (const auto& counter : stats.counters()) {
      os << "  " << std::left << std::setw(32) << counter->name()
         << std::right << std::setw(16) << counter->get() << "  # "
         << counter->description() << "\n";
    }
    for (const auto& stat : stats.statistics()) {
      const double value = stat->evaluate();
      os << "  " << std::left << std::setw(32) << stat->name() << std::right
         << std::setw(16) << std::fixed << std::setprecision(4) << value
         << "  # " << stat->description() << "\n";
      os.unsetf(std::ios::fixed);
    }
    for (const auto& dist : stats.distributions()) {
      os << "  " << std::left << std::setw(32) << dist->name() << std::right
         << " count=" << dist->count() << " mean=" << std::fixed
         << std::setprecision(2) << dist->mean() << " min=" << dist->min()
         << " max=" << dist->max() << "  # " << dist->description() << "\n";
      os.unsetf(std::ios::fixed);
    }
  });
}

void Report::write_csv(std::ostream& os) const {
  os << "unit,name,kind,value\n";
  root_->for_each([&os](const Unit& unit) {
    for (const auto& counter : unit.stats().counters()) {
      os << unit.path() << "," << counter->name() << ",counter,"
         << counter->get() << "\n";
    }
    for (const auto& stat : unit.stats().statistics()) {
      os << unit.path() << "," << stat->name() << ",statistic,"
         << stat->evaluate() << "\n";
    }
    for (const auto& dist : unit.stats().distributions()) {
      os << unit.path() << "," << dist->name() << ".count,distribution,"
         << dist->count() << "\n";
      os << unit.path() << "," << dist->name() << ".mean,distribution,"
         << dist->mean() << "\n";
      os << unit.path() << "," << dist->name() << ".min,distribution,"
         << dist->min() << "\n";
      os << unit.path() << "," << dist->name() << ".max,distribution,"
         << dist->max() << "\n";
    }
  });
}

namespace {
void json_number(std::ostream& os, double value) {
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "null";
  }
}
}  // namespace

void Report::write_json(std::ostream& os) const {
  os << "{\n";
  bool first_unit = true;
  root_->for_each([&](const Unit& unit) {
    const auto& stats = unit.stats();
    if (stats.counters().empty() && stats.statistics().empty() &&
        stats.distributions().empty()) {
      return;
    }
    if (!first_unit) os << ",\n";
    first_unit = false;
    os << "  \"" << unit.path() << "\": {";
    bool first = true;
    for (const auto& counter : stats.counters()) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << counter->name() << "\": " << counter->get();
    }
    for (const auto& stat : stats.statistics()) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << stat->name() << "\": ";
      json_number(os, stat->evaluate());
    }
    for (const auto& dist : stats.distributions()) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << dist->name() << "\": {\"count\": " << dist->count()
         << ", \"mean\": ";
      json_number(os, dist->mean());
      os << ", \"min\": " << dist->min() << ", \"max\": " << dist->max()
         << "}";
    }
    os << "}";
  });
  os << "\n}\n";
}

}  // namespace coyote::simfw
