#include "simfw/statistics.h"

namespace coyote::simfw {

Counter& StatisticSet::counter(const std::string& name,
                               const std::string& description) {
  for (const auto& existing : counters_) {
    if (existing->name() == name) {
      throw SimError(strfmt("duplicate counter '%s'", name.c_str()));
    }
  }
  counters_.push_back(std::make_unique<Counter>(name, description));
  return *counters_.back();
}

StatisticDef& StatisticSet::statistic(const std::string& name,
                                      const std::string& description,
                                      StatisticDef::Evaluator evaluator) {
  statistics_.push_back(
      std::make_unique<StatisticDef>(name, description, std::move(evaluator)));
  return *statistics_.back();
}

DistributionStat& StatisticSet::distribution(const std::string& name,
                                             const std::string& description) {
  for (const auto& existing : distributions_) {
    if (existing->name() == name) {
      throw SimError(strfmt("duplicate distribution '%s'", name.c_str()));
    }
  }
  distributions_.push_back(
      std::make_unique<DistributionStat>(name, description));
  return *distributions_.back();
}

const Counter& StatisticSet::find_counter(const std::string& name) const {
  for (const auto& counter : counters_) {
    if (counter->name() == name) return *counter;
  }
  throw SimError(strfmt("no counter named '%s'", name.c_str()));
}

const DistributionStat& StatisticSet::find_distribution(
    const std::string& name) const {
  for (const auto& distribution : distributions_) {
    if (distribution->name() == name) return *distribution;
  }
  throw SimError(strfmt("no distribution named '%s'", name.c_str()));
}

void StatisticSet::reset() {
  for (auto& counter : counters_) counter->reset();
  for (auto& distribution : distributions_) distribution->reset();
}

}  // namespace coyote::simfw
