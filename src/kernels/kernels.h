// Baremetal kernel builders (paper §III-A: "Four different kernels have been
// adapted to baremetal simulation in Spike and can be executed using Coyote
// … scalar matrix multiplication, vector matrix multiplication, vector SpMV
// (three different implementations of the algorithm) and vector stencil").
// Coyote additionally ships scalar SpMV (used by Figure 3) and a scalar
// stencil (for the vector-vs-scalar comparison).
//
// Every builder emits genuine RV64 machine code through the Assembler. Work
// is block-partitioned over the cores at run time via the mhartid CSR; all
// workload constants (sizes, array addresses) are baked into the
// instruction stream. Each core exits through the exit syscall when its
// share is done.
#pragma once

#include <cstdint>

#include "kernels/program.h"
#include "kernels/workloads.h"

namespace coyote::kernels {

/// C = A * B, scalar FP (fld/fmadd.d inner loop).
Program build_matmul_scalar(const MatmulWorkload& workload,
                            std::uint32_t num_cores);

/// C = A * B, vectorized over output columns (vle64/vfmacc.vf, LMUL=4).
Program build_matmul_vector(const MatmulWorkload& workload,
                            std::uint32_t num_cores);

/// y = A x over CSR, scalar (the second Figure-3 workload).
Program build_spmv_scalar(const SpmvWorkload& workload,
                          std::uint32_t num_cores);

/// SpMV variant 1 — CSR row-gather: per row, vector chunks of the row's
/// non-zeros; columns gathered from x with vluxei64; ordered-sum reduction.
Program build_spmv_row_gather(const SpmvWorkload& workload,
                              std::uint32_t num_cores);

/// SpMV variant 2 — ELLPACK slot-major: vectorized across rows; unit-stride
/// loads of the slot arrays plus a gather of x per slot.
Program build_spmv_ell(const SpmvWorkload& workload, std::uint32_t num_cores);

/// SpMV variant 3 — two-phase: phase 1 streams all of the core's non-zeros
/// in vector chunks writing an intermediate product array; phase 2 reduces
/// products per row with scalar code. Trades extra memory traffic for long
/// unit-stride vectors.
Program build_spmv_two_phase(const SpmvWorkload& workload,
                             std::uint32_t num_cores);

/// 1D 3-point stencil, vectorized interior sweep. Multicore runs with
/// iterations > 1 delegate to build_stencil_vector_sync so neighbouring
/// partitions' halo cells are exchanged at a barrier between sweeps.
Program build_stencil_vector(const StencilWorkload& workload,
                             std::uint32_t num_cores);

/// Scalar reference version of the stencil. Multicore runs with
/// iterations > 1 insert the same sense-reversal barrier between sweeps.
Program build_stencil_scalar(const StencilWorkload& workload,
                             std::uint32_t num_cores);

/// Barrier-synchronized vector stencil: supports iterations > 1 on
/// multiple cores by separating sweeps with a sense-reversal barrier built
/// on amoadd.d (RV64A). Functional results are exact in every coherence
/// mode; with l2.coherence=mesi the invalidation/downgrade traffic of the
/// halo exchange is modelled too (DESIGN.md §5).
Program build_stencil_vector_sync(const StencilWorkload& workload,
                                  std::uint32_t num_cores);

/// Histogram with atomic bin updates (amoadd.d): the whole data stream is
/// block-partitioned and all cores update the shared bins array.
Program build_histogram_atomic(const HistogramWorkload& workload,
                               std::uint32_t num_cores);

/// 2D 5-point stencil, vectorized along rows; interior rows are
/// block-partitioned over the cores (single sweep, like the 1D multicore
/// case).
Program build_stencil2d_vector(const Stencil2dWorkload& workload,
                               std::uint32_t num_cores);

/// BLAS-1 AXPY, vectorized: y = alpha*x + y.
Program build_axpy_vector(const Blas1Workload& workload,
                          std::uint32_t num_cores);

/// BLAS-1 DOT, vectorized with ordered reduction; each core writes its
/// partial sum to partials[hartid] (summed host-side or by a final pass).
Program build_dot_vector(const Blas1Workload& workload,
                         std::uint32_t num_cores);

/// In-place radix-2 DIT FFT, scalar complex arithmetic, butterflies
/// block-partitioned per stage with an amoadd.d barrier between stages —
/// the "FFT" entry of the paper's future-work kernel list.
Program build_fft_scalar(const FftWorkload& workload,
                         std::uint32_t num_cores);

}  // namespace coyote::kernels
