// Workload construction: deterministic dense matrices, random CSR sparse
// matrices (with optional clustering of non-zeros, the property §IV of the
// paper calls out for MC studies), the ELLPACK conversion used by one SpMV
// variant, and host-side reference computations for validating simulated
// results.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "iss/memory.h"
#include "kernels/layout.h"

namespace coyote::kernels {

// ---------------------------------------------------------------- dense --
/// Row-major dense double-precision matmul workload: C = A * B, square N x N.
struct MatmulWorkload {
  std::size_t n = 0;
  std::vector<double> a;
  std::vector<double> b;
  Addr a_addr = 0;
  Addr b_addr = 0;
  Addr c_addr = 0;

  static MatmulWorkload generate(std::size_t n, std::uint64_t seed);

  /// Pokes A and B into simulated memory (C is implicitly zero).
  void install(iss::SparseMemory& memory) const;
  /// Host-side C = A*B.
  std::vector<double> reference() const;
  /// Reads C back from simulated memory.
  std::vector<double> result(const iss::SparseMemory& memory) const;
};

// --------------------------------------------------------------- sparse --
/// Compressed-sparse-row matrix with 64-bit indices.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint64_t> row_ptr;  // rows+1 entries
  std::vector<std::uint64_t> col_idx;  // nnz entries, sorted per row
  std::vector<double> values;          // nnz entries

  std::size_t nnz() const { return col_idx.size(); }

  /// Uniformly-random pattern with `nnz_per_row` non-zeros per row.
  static CsrMatrix random(std::size_t rows, std::size_t cols,
                          std::size_t nnz_per_row, std::uint64_t seed);

  /// Clustered pattern: non-zeros of each row drawn from a narrow window
  /// around the diagonal (banded), modelling the locality §IV discusses.
  static CsrMatrix banded(std::size_t rows, std::size_t cols,
                          std::size_t nnz_per_row, std::size_t bandwidth,
                          std::uint64_t seed);
};

/// ELLPACK view of a CSR matrix: fixed `width` slots per row, column-major
/// slot arrays (slot-major storage gives the vector kernel unit-stride
/// access), padded with (col=0, value=0).
struct EllMatrix {
  std::size_t rows = 0;
  std::size_t width = 0;
  std::vector<std::uint64_t> col_idx;  // width * rows, slot-major
  std::vector<double> values;          // width * rows, slot-major

  static EllMatrix from_csr(const CsrMatrix& csr);
};

/// SpMV workload: y = A * x. Installs CSR arrays, the dense vector x, and —
/// for the variants that need them — the ELL arrays and the intermediate
/// product buffer.
struct SpmvWorkload {
  CsrMatrix matrix;
  EllMatrix ell;
  std::vector<double> x;

  Addr row_ptr_addr = 0;
  Addr col_idx_addr = 0;
  Addr values_addr = 0;
  Addr x_addr = 0;
  Addr y_addr = 0;
  Addr ell_col_addr = 0;
  Addr ell_val_addr = 0;
  Addr prod_addr = 0;  ///< nnz-sized scratch for the two-phase variant

  static SpmvWorkload generate(CsrMatrix matrix, std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  std::vector<double> reference() const;
  std::vector<double> result(const iss::SparseMemory& memory) const;
};

// -------------------------------------------------------------- stencil --
/// 1D 3-point stencil: dst[i] = c0*src[i-1] + c1*src[i] + c2*src[i+1] for
/// i in [1, n-1); boundary cells are copied through. `iterations` sweeps
/// ping-pong between the two buffers; multicore multi-iteration runs are
/// barrier-synchronized between sweeps.
struct StencilWorkload {
  std::size_t n = 0;
  std::uint32_t iterations = 1;
  double c0 = 0.25;
  double c1 = 0.5;
  double c2 = 0.25;
  std::vector<double> src;

  Addr src_addr = 0;
  Addr dst_addr = 0;

  static StencilWorkload generate(std::size_t n, std::uint32_t iterations,
                                  std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  std::vector<double> reference() const;
  /// Reads the final buffer (dst for odd iteration counts, src for even).
  std::vector<double> result(const iss::SparseMemory& memory) const;
};

// ----------------------------------------------------------- stencil2d --
/// 2D 5-point stencil, single Jacobi sweep over the interior of an
/// nx x ny row-major grid:
///   dst[i][j] = cc*src[i][j] + cn*(src[i-1][j] + src[i+1][j]
///                                  + src[i][j-1] + src[i][j+1]).
struct Stencil2dWorkload {
  std::size_t nx = 0;  ///< rows
  std::size_t ny = 0;  ///< columns
  double cc = 0.5;
  double cn = 0.125;
  std::vector<double> src;

  Addr src_addr = 0;
  Addr dst_addr = 0;

  static Stencil2dWorkload generate(std::size_t nx, std::size_t ny,
                                    std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  std::vector<double> reference() const;
  std::vector<double> result(const iss::SparseMemory& memory) const;
};

// -------------------------------------------------------------- blas-1 --
/// AXPY (y = alpha*x + y) and DOT (sum x[i]*y[i]) share one workload.
struct Blas1Workload {
  std::size_t n = 0;
  double alpha = 0.0;
  std::vector<double> x;
  std::vector<double> y;

  Addr x_addr = 0;
  Addr y_addr = 0;
  Addr partials_addr = 0;  ///< per-core DOT partial sums

  static Blas1Workload generate(std::size_t n, std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  std::vector<double> axpy_reference() const;
  std::vector<double> axpy_result(const iss::SparseMemory& memory) const;
  double dot_reference() const;
  /// Sums the per-core partials the DOT kernel leaves in memory.
  double dot_result(const iss::SparseMemory& memory,
                    std::uint32_t num_cores) const;
};

// ----------------------------------------------------------------- fft --
/// In-place radix-2 decimation-in-time FFT on complex data held as split
/// re[]/im[] arrays (one of the kernels the paper lists as future work).
/// install() stores the input in bit-reversed order, as the iterative DIT
/// expects; twiddle factors are precomputed host-side.
struct FftWorkload {
  std::size_t n = 0;  // power of two
  std::vector<double> in_re;
  std::vector<double> in_im;

  Addr re_addr = 0;
  Addr im_addr = 0;
  Addr tw_re_addr = 0;
  Addr tw_im_addr = 0;

  static FftWorkload generate(std::size_t n, std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  /// Host-side DFT of the original (natural-order) input.
  void reference(std::vector<double>& out_re,
                 std::vector<double>& out_im) const;
  void result(const iss::SparseMemory& memory, std::vector<double>& out_re,
              std::vector<double>& out_im) const;
};

// ------------------------------------------------------------ histogram --
/// Histogram workload (HPDA-style): count occurrences of each value in a
/// data stream. The atomic kernel updates shared bins with amoadd.d, so
/// any partitioning of the stream across cores yields exact counts.
struct HistogramWorkload {
  std::size_t n = 0;
  std::size_t bins = 0;
  std::vector<std::uint64_t> data;  // values in [0, bins)

  Addr data_addr = 0;
  Addr bins_addr = 0;

  /// `skew` in [0,1): 0 = uniform bins; larger values concentrate traffic
  /// on low bins (contention study).
  static HistogramWorkload generate(std::size_t n, std::size_t bins,
                                    double skew, std::uint64_t seed);

  void install(iss::SparseMemory& memory) const;
  std::vector<std::uint64_t> reference() const;
  std::vector<std::uint64_t> result(const iss::SparseMemory& memory) const;
};

/// Splits `total` items into a contiguous [begin, end) block for `part` of
/// `parts` (block partitioning used by every kernel).
struct Range {
  std::uint64_t begin;
  std::uint64_t end;
};
Range block_partition(std::uint64_t total, std::uint32_t part,
                      std::uint32_t parts);

}  // namespace coyote::kernels
