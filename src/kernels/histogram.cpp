// Histogram kernel with atomic shared-bin updates (RV64A).
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_exit;
using detail::emit_partition;
using isa::Assembler;
using isa::Xreg;

Program build_histogram_atomic(const HistogramWorkload& workload,
                               std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Register map:
  //   s5 = element cursor, s6 = element end
  //   s1 = walking &data[i], s2 = bins base
  //   a1 = value, a2 = &bins[value], t2 = +1
  emit_partition(as, workload.n, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s2, static_cast<std::int64_t>(workload.bins_addr));
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.li(Xreg::s1, static_cast<std::int64_t>(workload.data_addr));
  as.add(Xreg::s1, Xreg::s1, Xreg::t0);
  as.li(Xreg::t2, 1);

  auto loop = as.here();
  as.ld(Xreg::a1, 0, Xreg::s1);       // value
  as.slli(Xreg::a2, Xreg::a1, 3);
  as.add(Xreg::a2, Xreg::a2, Xreg::s2);
  as.amoadd_d(Xreg::zero, Xreg::t2, Xreg::a2);  // bins[value] += 1
  as.addi(Xreg::s1, Xreg::s1, 8);
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
