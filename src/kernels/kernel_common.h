// Shared assembly idioms for the kernel builders.
#pragma once

#include <cstring>

#include "isa/assembler.h"
#include "kernels/workloads.h"

namespace coyote::kernels::detail {

using isa::Assembler;
using isa::Freg;
using isa::Xreg;

/// Emits the run-time block partition: begin = min(hart*per_part, total),
/// end = min(begin+per_part, total). Clobbers t0/t1.
inline void emit_partition(Assembler& as, std::uint64_t total,
                           std::uint32_t parts, Xreg begin, Xreg end) {
  const std::uint64_t per_part = (total + parts - 1) / parts;
  as.csrr(Xreg::t0, 0xF14);  // mhartid
  as.li(Xreg::t1, static_cast<std::int64_t>(per_part));
  as.mul(begin, Xreg::t0, Xreg::t1);
  as.li(Xreg::t0, static_cast<std::int64_t>(total));
  as.add(end, begin, Xreg::t1);
  auto begin_ok = as.make_label();
  as.ble(begin, Xreg::t0, begin_ok);
  as.mv(begin, Xreg::t0);
  as.bind(begin_ok);
  auto end_ok = as.make_label();
  as.ble(end, Xreg::t0, end_ok);
  as.mv(end, Xreg::t0);
  as.bind(end_ok);
}

/// Emits the exit syscall (code 0).
inline void emit_exit(Assembler& as) {
  as.li(Xreg::a7, 93);
  as.li(Xreg::a0, 0);
  as.ecall();
}

/// Materializes a double constant into an f register via its bit pattern.
inline void emit_load_f64(Assembler& as, Freg dest, Xreg scratch,
                          double value) {
  std::int64_t bits;
  std::memcpy(&bits, &value, 8);
  as.li(scratch, bits);
  as.fmv_d_x(dest, scratch);
}

/// Emits a sense-reversal barrier over amoadd.d. `base` holds the barrier
/// address (arrival counter at +0, generation at +8); `generation` tracks
/// the release count this core has seen (incremented here); `last_count`
/// holds num_cores-1. Clobbers t2..t5. No-op for a single core.
inline void emit_barrier(Assembler& as, std::uint32_t num_cores, Xreg base,
                         Xreg generation, Xreg last_count) {
  if (num_cores <= 1) return;
  as.addi(generation, generation, 1);
  as.li(Xreg::t2, 1);
  as.amoadd_d(Xreg::t3, Xreg::t2, base);
  auto wait = as.make_label();
  auto done = as.make_label();
  as.bne(Xreg::t3, last_count, wait);
  // Last arriver: reset the counter, then release the next generation.
  as.sd(Xreg::zero, 0, base);
  as.addi(Xreg::t4, base, 8);
  as.amoadd_d(Xreg::zero, Xreg::t2, Xreg::t4);
  as.j(done);
  as.bind(wait);
  as.addi(Xreg::t4, base, 8);
  auto spin = as.here();
  as.ld(Xreg::t5, 0, Xreg::t4);
  as.blt(Xreg::t5, generation, spin);
  as.bind(done);
}

}  // namespace coyote::kernels::detail
