// Sparse matrix-vector multiplication kernels: scalar CSR plus the three
// vector variants the paper lists (row-gather, ELLPACK, two-phase).
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_exit;
using detail::emit_partition;
using isa::Assembler;
using isa::Freg;
using isa::Lmul;
using isa::Sew;
using isa::Vreg;
using isa::Xreg;

Program build_spmv_scalar(const SpmvWorkload& workload,
                          std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Register map:
  //   s5 = row, s6 = row end
  //   s1 = row_ptr, s4 = x, s7 = y
  //   s8 = walking &col[idx], s9 = walking &val[idx]
  //   a2 = idx, a3 = row end idx, a4 = scratch
  emit_partition(as, workload.matrix.rows, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.row_ptr_addr));
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.y_addr));

  // idx = row_ptr[begin]; col/val pointers track idx.
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a2, 0, Xreg::t0);
  as.slli(Xreg::t1, Xreg::a2, 3);
  as.li(Xreg::s8, static_cast<std::int64_t>(workload.col_idx_addr));
  as.add(Xreg::s8, Xreg::s8, Xreg::t1);
  as.li(Xreg::s9, static_cast<std::int64_t>(workload.values_addr));
  as.add(Xreg::s9, Xreg::s9, Xreg::t1);

  auto loop_row = as.here();
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a3, 8, Xreg::t0);        // row_ptr[row+1]
  as.fmv_d_x(Freg::fa0, Xreg::zero);
  auto row_done = as.make_label();
  auto loop_nnz = as.here();
  as.bge(Xreg::a2, Xreg::a3, row_done);
  as.ld(Xreg::a4, 0, Xreg::s8);        // column index
  as.slli(Xreg::a4, Xreg::a4, 3);
  as.add(Xreg::a4, Xreg::a4, Xreg::s4);
  as.fld(Freg::ft0, 0, Xreg::s9);      // value
  as.fld(Freg::ft1, 0, Xreg::a4);      // x[col]
  as.fmadd_d(Freg::fa0, Freg::ft0, Freg::ft1, Freg::fa0);
  as.addi(Xreg::s8, Xreg::s8, 8);
  as.addi(Xreg::s9, Xreg::s9, 8);
  as.addi(Xreg::a2, Xreg::a2, 1);
  as.j(loop_nnz);
  as.bind(row_done);
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s7);
  as.fsd(Freg::fa0, 0, Xreg::t0);      // y[row]
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop_row);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_spmv_row_gather(const SpmvWorkload& workload,
                              std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Register map:
  //   s5 = row, s6 = row end; s1 = row_ptr, s4 = x, s7 = y
  //   s8 = col base, s9 = val base
  //   a2 = idx, a3 = row end idx, a4 = avl, a5 = vl, a6 = idx*8
  //   v8 = column indices / byte offsets, v16 = gathered x, v24 = values,
  //   v4 = reduction scalar
  emit_partition(as, workload.matrix.rows, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.row_ptr_addr));
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.y_addr));
  as.li(Xreg::s8, static_cast<std::int64_t>(workload.col_idx_addr));
  as.li(Xreg::s9, static_cast<std::int64_t>(workload.values_addr));

  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a2, 0, Xreg::t0);        // idx = row_ptr[begin]

  auto loop_row = as.here();
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a3, 8, Xreg::t0);
  as.fmv_d_x(Freg::fa0, Xreg::zero);
  auto row_done = as.make_label();
  auto loop_chunk = as.here();
  as.sub(Xreg::a4, Xreg::a3, Xreg::a2);
  as.beqz(Xreg::a4, row_done);
  as.vsetvli(Xreg::a5, Xreg::a4, Sew::kE64, Lmul::kM4);
  as.slli(Xreg::a6, Xreg::a2, 3);
  as.add(Xreg::t0, Xreg::a6, Xreg::s8);
  as.vle64(Vreg::v8, Xreg::t0);        // column indices
  as.vsll_vi(Vreg::v8, Vreg::v8, 3);   // to byte offsets
  as.vluxei64(Vreg::v16, Xreg::s4, Vreg::v8);  // gather x
  as.add(Xreg::t0, Xreg::a6, Xreg::s9);
  as.vle64(Vreg::v24, Xreg::t0);       // values
  as.vfmul_vv(Vreg::v16, Vreg::v16, Vreg::v24);
  as.vfmv_s_f(Vreg::v4, Freg::fa0);
  as.vfredosum_vs(Vreg::v4, Vreg::v16, Vreg::v4);
  as.vfmv_f_s(Freg::fa0, Vreg::v4);
  as.add(Xreg::a2, Xreg::a2, Xreg::a5);
  as.j(loop_chunk);
  as.bind(row_done);
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s7);
  as.fsd(Freg::fa0, 0, Xreg::t0);
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop_row);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_spmv_ell(const SpmvWorkload& workload, std::uint32_t num_cores) {
  Assembler as(kTextBase);
  const auto rows = static_cast<std::int64_t>(workload.ell.rows);
  const auto width = static_cast<std::int64_t>(workload.ell.width);

  // Register map:
  //   s5 = row block cursor, s6 = row end
  //   s3 = rows*8 (slot stride), s4 = x, s7 = y
  //   s8 = ell_col base, s9 = ell_val base, s2 = slot count
  //   a2 = avl, a3 = vl, a4 = walking &ell_col[slot][r],
  //   a5 = walking &ell_val[slot][r], a6 = slot countdown
  //   v8 = accumulator, v16 = indices, v24 = gathered x, v28 = values
  emit_partition(as, workload.ell.rows, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s3, rows * 8);
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.y_addr));
  as.li(Xreg::s8, static_cast<std::int64_t>(workload.ell_col_addr));
  as.li(Xreg::s9, static_cast<std::int64_t>(workload.ell_val_addr));
  as.li(Xreg::s2, width);
  as.fmv_d_x(Freg::ft0, Xreg::zero);

  auto loop_rblock = as.here();
  as.sub(Xreg::a2, Xreg::s6, Xreg::s5);
  as.vsetvli(Xreg::a3, Xreg::a2, Sew::kE64, Lmul::kM4);
  as.vfmv_v_f(Vreg::v8, Freg::ft0);    // acc = 0
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::a4, Xreg::t0, Xreg::s8);
  as.add(Xreg::a5, Xreg::t0, Xreg::s9);
  as.mv(Xreg::a6, Xreg::s2);
  auto store = as.make_label();
  as.beqz(Xreg::a6, store);            // width == 0
  auto loop_slot = as.here();
  as.vle64(Vreg::v16, Xreg::a4);       // slot column indices (unit stride)
  as.vsll_vi(Vreg::v16, Vreg::v16, 3);
  as.vluxei64(Vreg::v24, Xreg::s4, Vreg::v16);  // gather x
  as.vle64(Vreg::v28, Xreg::a5);       // slot values (unit stride)
  as.vfmacc_vv(Vreg::v8, Vreg::v28, Vreg::v24);
  as.add(Xreg::a4, Xreg::a4, Xreg::s3);
  as.add(Xreg::a5, Xreg::a5, Xreg::s3);
  as.addi(Xreg::a6, Xreg::a6, -1);
  as.bnez(Xreg::a6, loop_slot);
  as.bind(store);
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s7);
  as.vse64(Vreg::v8, Xreg::t0);        // y[r..r+vl)
  as.add(Xreg::s5, Xreg::s5, Xreg::a3);
  as.blt(Xreg::s5, Xreg::s6, loop_rblock);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_spmv_two_phase(const SpmvWorkload& workload,
                             std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Phase 1: prod[i] = val[i] * x[col[i]] for the core's nnz range, in
  // vector chunks. Phase 2: scalar per-row reduction of prod[].
  //
  // Register map:
  //   s5 = row begin, s6 = row end; s1 = row_ptr, s4 = x, s7 = y
  //   s8 = col base, s9 = val base, s10 = prod base
  //   a2 = idx, a3 = phase-1 end idx / row end idx, a4/a5/a6 = scratch
  emit_partition(as, workload.matrix.rows, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.row_ptr_addr));
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.y_addr));
  as.li(Xreg::s8, static_cast<std::int64_t>(workload.col_idx_addr));
  as.li(Xreg::s9, static_cast<std::int64_t>(workload.values_addr));
  as.li(Xreg::s10, static_cast<std::int64_t>(workload.prod_addr));

  // a2 = row_ptr[begin], a3 = row_ptr[end]
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a2, 0, Xreg::t0);
  as.slli(Xreg::t0, Xreg::s6, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a3, 0, Xreg::t0);
  as.mv(Xreg::s11, Xreg::a2);          // remember phase-2 start idx

  auto phase2 = as.make_label();
  auto loop_chunk = as.here();
  as.sub(Xreg::a4, Xreg::a3, Xreg::a2);
  as.beqz(Xreg::a4, phase2);
  as.vsetvli(Xreg::a5, Xreg::a4, Sew::kE64, Lmul::kM4);
  as.slli(Xreg::a6, Xreg::a2, 3);
  as.add(Xreg::t0, Xreg::a6, Xreg::s8);
  as.vle64(Vreg::v8, Xreg::t0);        // columns
  as.vsll_vi(Vreg::v8, Vreg::v8, 3);
  as.vluxei64(Vreg::v16, Xreg::s4, Vreg::v8);
  as.add(Xreg::t0, Xreg::a6, Xreg::s9);
  as.vle64(Vreg::v24, Xreg::t0);       // values
  as.vfmul_vv(Vreg::v16, Vreg::v16, Vreg::v24);
  as.add(Xreg::t0, Xreg::a6, Xreg::s10);
  as.vse64(Vreg::v16, Xreg::t0);       // prod[idx..idx+vl)
  as.add(Xreg::a2, Xreg::a2, Xreg::a5);
  as.j(loop_chunk);

  as.bind(phase2);
  // Scalar reduction: idx = s11; walk rows again.
  as.mv(Xreg::a2, Xreg::s11);
  as.slli(Xreg::t0, Xreg::a2, 3);
  as.add(Xreg::s10, Xreg::s10, Xreg::t0);  // &prod[idx]
  auto loop_row = as.here();
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.ld(Xreg::a3, 8, Xreg::t0);        // row end idx
  as.fmv_d_x(Freg::fa0, Xreg::zero);
  auto row_done = as.make_label();
  auto loop_nnz = as.here();
  as.bge(Xreg::a2, Xreg::a3, row_done);
  as.fld(Freg::ft0, 0, Xreg::s10);
  as.fadd_d(Freg::fa0, Freg::fa0, Freg::ft0);
  as.addi(Xreg::s10, Xreg::s10, 8);
  as.addi(Xreg::a2, Xreg::a2, 1);
  as.j(loop_nnz);
  as.bind(row_done);
  as.slli(Xreg::t0, Xreg::s5, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s7);
  as.fsd(Freg::fa0, 0, Xreg::t0);
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop_row);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
