#include "kernels/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"

namespace coyote::kernels {

namespace {

constexpr double kPi = 3.14159265358979323846;

Addr place_after(Addr addr, std::size_t bytes) {
  return align_up(addr + bytes, kArrayAlign);
}

}  // namespace

Range block_partition(std::uint64_t total, std::uint32_t part,
                      std::uint32_t parts) {
  const std::uint64_t per_part = (total + parts - 1) / parts;
  const std::uint64_t begin = std::min<std::uint64_t>(per_part * part, total);
  const std::uint64_t end = std::min<std::uint64_t>(begin + per_part, total);
  return Range{begin, end};
}

// ---------------------------------------------------------------- dense --

MatmulWorkload MatmulWorkload::generate(std::size_t n, std::uint64_t seed) {
  MatmulWorkload workload;
  workload.n = n;
  workload.a.resize(n * n);
  workload.b.resize(n * n);
  Xoshiro256 rng(seed);
  for (double& value : workload.a) value = rng.uniform(-1.0, 1.0);
  for (double& value : workload.b) value = rng.uniform(-1.0, 1.0);
  workload.a_addr = kDataBase;
  workload.b_addr = place_after(workload.a_addr, n * n * 8);
  workload.c_addr = place_after(workload.b_addr, n * n * 8);
  return workload;
}

void MatmulWorkload::install(iss::SparseMemory& memory) const {
  memory.poke_array(a_addr, a.data(), a.size());
  memory.poke_array(b_addr, b.data(), b.size());
  // Zero C so stale results from a previous run cannot leak through.
  const std::vector<double> zeros(n * n, 0.0);
  memory.poke_array(c_addr, zeros.data(), zeros.size());
}

std::vector<double> MatmulWorkload::reference() const {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  return c;
}

std::vector<double> MatmulWorkload::result(
    const iss::SparseMemory& memory) const {
  return memory.peek_array<double>(c_addr, n * n);
}

// --------------------------------------------------------------- sparse --

CsrMatrix CsrMatrix::random(std::size_t rows, std::size_t cols,
                            std::size_t nnz_per_row, std::uint64_t seed) {
  if (nnz_per_row > cols) {
    throw ConfigError("CsrMatrix::random: nnz_per_row > cols");
  }
  CsrMatrix matrix;
  matrix.rows = rows;
  matrix.cols = cols;
  matrix.row_ptr.reserve(rows + 1);
  matrix.row_ptr.push_back(0);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> row;
  for (std::size_t r = 0; r < rows; ++r) {
    // Sample distinct column indices, then sort for CSR canonical form.
    row.assign(nnz_per_row, 0);
    for (auto& col : row) col = rng.below(cols);
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (const std::uint64_t col : row) {
      matrix.col_idx.push_back(col);
      matrix.values.push_back(rng.uniform(-1.0, 1.0));
    }
    matrix.row_ptr.push_back(matrix.col_idx.size());
  }
  return matrix;
}

CsrMatrix CsrMatrix::banded(std::size_t rows, std::size_t cols,
                            std::size_t nnz_per_row, std::size_t bandwidth,
                            std::uint64_t seed) {
  if (bandwidth == 0) throw ConfigError("CsrMatrix::banded: zero bandwidth");
  CsrMatrix matrix;
  matrix.rows = rows;
  matrix.cols = cols;
  matrix.row_ptr.reserve(rows + 1);
  matrix.row_ptr.push_back(0);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> row;
  for (std::size_t r = 0; r < rows; ++r) {
    row.assign(nnz_per_row, 0);
    const std::uint64_t center =
        cols > 1 ? (static_cast<std::uint64_t>(r) * cols) / rows : 0;
    const std::uint64_t lo = center > bandwidth / 2 ? center - bandwidth / 2 : 0;
    const std::uint64_t hi = std::min<std::uint64_t>(lo + bandwidth, cols);
    for (auto& col : row) col = lo + rng.below(hi - lo);
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (const std::uint64_t col : row) {
      matrix.col_idx.push_back(col);
      matrix.values.push_back(rng.uniform(-1.0, 1.0));
    }
    matrix.row_ptr.push_back(matrix.col_idx.size());
  }
  return matrix;
}

EllMatrix EllMatrix::from_csr(const CsrMatrix& csr) {
  EllMatrix ell;
  ell.rows = csr.rows;
  for (std::size_t r = 0; r < csr.rows; ++r) {
    ell.width = std::max<std::size_t>(
        ell.width, csr.row_ptr[r + 1] - csr.row_ptr[r]);
  }
  ell.col_idx.assign(ell.width * ell.rows, 0);
  ell.values.assign(ell.width * ell.rows, 0.0);
  for (std::size_t r = 0; r < csr.rows; ++r) {
    const std::uint64_t begin = csr.row_ptr[r];
    const std::uint64_t end = csr.row_ptr[r + 1];
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::size_t slot = i - begin;
      // Slot-major: all rows' slot-s entries are contiguous.
      ell.col_idx[slot * ell.rows + r] = csr.col_idx[i];
      ell.values[slot * ell.rows + r] = csr.values[i];
    }
  }
  return ell;
}

SpmvWorkload SpmvWorkload::generate(CsrMatrix matrix, std::uint64_t seed) {
  SpmvWorkload workload;
  workload.matrix = std::move(matrix);
  workload.ell = EllMatrix::from_csr(workload.matrix);
  workload.x.resize(workload.matrix.cols);
  Xoshiro256 rng(seed ^ 0x5197C0DEULL);
  for (double& value : workload.x) value = rng.uniform(-1.0, 1.0);

  const CsrMatrix& m = workload.matrix;
  workload.row_ptr_addr = kDataBase;
  workload.col_idx_addr =
      place_after(workload.row_ptr_addr, m.row_ptr.size() * 8);
  workload.values_addr =
      place_after(workload.col_idx_addr, m.col_idx.size() * 8);
  workload.x_addr = place_after(workload.values_addr, m.values.size() * 8);
  workload.y_addr = place_after(workload.x_addr, workload.x.size() * 8);
  workload.ell_col_addr = place_after(workload.y_addr, m.rows * 8);
  workload.ell_val_addr =
      place_after(workload.ell_col_addr, workload.ell.col_idx.size() * 8);
  workload.prod_addr =
      place_after(workload.ell_val_addr, workload.ell.values.size() * 8);
  return workload;
}

void SpmvWorkload::install(iss::SparseMemory& memory) const {
  const CsrMatrix& m = matrix;
  memory.poke_array(row_ptr_addr, m.row_ptr.data(), m.row_ptr.size());
  memory.poke_array(col_idx_addr, m.col_idx.data(), m.col_idx.size());
  memory.poke_array(values_addr, m.values.data(), m.values.size());
  memory.poke_array(x_addr, x.data(), x.size());
  const std::vector<double> zeros(m.rows, 0.0);
  memory.poke_array(y_addr, zeros.data(), zeros.size());
  memory.poke_array(ell_col_addr, ell.col_idx.data(), ell.col_idx.size());
  memory.poke_array(ell_val_addr, ell.values.data(), ell.values.size());
}

std::vector<double> SpmvWorkload::reference() const {
  std::vector<double> y(matrix.rows, 0.0);
  for (std::size_t r = 0; r < matrix.rows; ++r) {
    double acc = 0.0;
    for (std::uint64_t i = matrix.row_ptr[r]; i < matrix.row_ptr[r + 1]; ++i) {
      acc += matrix.values[i] * x[matrix.col_idx[i]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> SpmvWorkload::result(
    const iss::SparseMemory& memory) const {
  return memory.peek_array<double>(y_addr, matrix.rows);
}

// ----------------------------------------------------------- stencil2d --

Stencil2dWorkload Stencil2dWorkload::generate(std::size_t nx, std::size_t ny,
                                              std::uint64_t seed) {
  if (nx < 3 || ny < 3) {
    throw ConfigError("Stencil2dWorkload: grid must be at least 3x3");
  }
  Stencil2dWorkload workload;
  workload.nx = nx;
  workload.ny = ny;
  workload.src.resize(nx * ny);
  Xoshiro256 rng(seed ^ 0x57E2CD2ULL);
  for (double& value : workload.src) value = rng.uniform(0.0, 1.0);
  workload.src_addr = kDataBase;
  workload.dst_addr = place_after(workload.src_addr, nx * ny * 8);
  return workload;
}

void Stencil2dWorkload::install(iss::SparseMemory& memory) const {
  memory.poke_array(src_addr, src.data(), src.size());
  // Boundary cells copy through; start dst as a copy of src.
  memory.poke_array(dst_addr, src.data(), src.size());
}

std::vector<double> Stencil2dWorkload::reference() const {
  std::vector<double> out = src;
  for (std::size_t i = 1; i + 1 < nx; ++i) {
    for (std::size_t j = 1; j + 1 < ny; ++j) {
      out[i * ny + j] =
          cc * src[i * ny + j] +
          cn * (src[(i - 1) * ny + j] + src[(i + 1) * ny + j] +
                src[i * ny + j - 1] + src[i * ny + j + 1]);
    }
  }
  return out;
}

std::vector<double> Stencil2dWorkload::result(
    const iss::SparseMemory& memory) const {
  return memory.peek_array<double>(dst_addr, nx * ny);
}

// -------------------------------------------------------------- blas-1 --

Blas1Workload Blas1Workload::generate(std::size_t n, std::uint64_t seed) {
  Blas1Workload workload;
  workload.n = n;
  Xoshiro256 rng(seed ^ 0xB1A51ULL);
  workload.alpha = rng.uniform(-2.0, 2.0);
  workload.x.resize(n);
  workload.y.resize(n);
  for (double& value : workload.x) value = rng.uniform(-1.0, 1.0);
  for (double& value : workload.y) value = rng.uniform(-1.0, 1.0);
  workload.x_addr = kDataBase;
  workload.y_addr = place_after(workload.x_addr, n * 8);
  workload.partials_addr = place_after(workload.y_addr, n * 8);
  return workload;
}

void Blas1Workload::install(iss::SparseMemory& memory) const {
  memory.poke_array(x_addr, x.data(), x.size());
  memory.poke_array(y_addr, y.data(), y.size());
  const std::vector<double> zeros(256, 0.0);  // generous partials area
  memory.poke_array(partials_addr, zeros.data(), zeros.size());
}

std::vector<double> Blas1Workload::axpy_reference() const {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

std::vector<double> Blas1Workload::axpy_result(
    const iss::SparseMemory& memory) const {
  return memory.peek_array<double>(y_addr, n);
}

double Blas1Workload::dot_reference() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double Blas1Workload::dot_result(const iss::SparseMemory& memory,
                                 std::uint32_t num_cores) const {
  const auto partials =
      memory.peek_array<double>(partials_addr, num_cores);
  double acc = 0.0;
  for (const double partial : partials) acc += partial;
  return acc;
}

// ----------------------------------------------------------------- fft --

namespace {

std::size_t bit_reverse(std::size_t value, unsigned bits_count) {
  std::size_t out = 0;
  for (unsigned b = 0; b < bits_count; ++b) {
    out = (out << 1) | ((value >> b) & 1);
  }
  return out;
}

}  // namespace

FftWorkload FftWorkload::generate(std::size_t n, std::uint64_t seed) {
  if (!is_pow2(n) || n < 2) {
    throw ConfigError("FftWorkload: n must be a power of two >= 2");
  }
  FftWorkload workload;
  workload.n = n;
  workload.in_re.resize(n);
  workload.in_im.resize(n);
  Xoshiro256 rng(seed ^ 0xFF7ULL);
  for (std::size_t i = 0; i < n; ++i) {
    workload.in_re[i] = rng.uniform(-1.0, 1.0);
    workload.in_im[i] = rng.uniform(-1.0, 1.0);
  }
  workload.re_addr = kDataBase;
  workload.im_addr = place_after(workload.re_addr, n * 8);
  workload.tw_re_addr = place_after(workload.im_addr, n * 8);
  workload.tw_im_addr = place_after(workload.tw_re_addr, n / 2 * 8);
  return workload;
}

void FftWorkload::install(iss::SparseMemory& memory) const {
  const unsigned bits_count = log2_exact(n);
  std::vector<double> rev_re(n);
  std::vector<double> rev_im(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse(i, bits_count);
    rev_re[j] = in_re[i];
    rev_im[j] = in_im[i];
  }
  memory.poke_array(re_addr, rev_re.data(), n);
  memory.poke_array(im_addr, rev_im.data(), n);
  std::vector<double> tw_re(n / 2);
  std::vector<double> tw_im(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) {
    const double angle = -2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(n);
    tw_re[j] = std::cos(angle);
    tw_im[j] = std::sin(angle);
  }
  memory.poke_array(tw_re_addr, tw_re.data(), n / 2);
  memory.poke_array(tw_im_addr, tw_im.data(), n / 2);
}

void FftWorkload::reference(std::vector<double>& out_re,
                            std::vector<double>& out_im) const {
  // Host-side iterative radix-2 FFT (double precision), same algorithm the
  // kernel runs, so agreement is tight; an O(n^2) DFT check of *this*
  // reference lives in the test suite.
  const unsigned bits_count = log2_exact(n);
  out_re.resize(n);
  out_im.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse(i, bits_count);
    out_re[j] = in_re[i];
    out_im[j] = in_im[i];
  }
  for (std::size_t m = 2; m <= n; m <<= 1) {
    const std::size_t hm = m / 2;
    const std::size_t stride = n / m;
    for (std::size_t block = 0; block < n; block += m) {
      for (std::size_t j = 0; j < hm; ++j) {
        const double angle = -2.0 * kPi *
                             static_cast<double>(j * stride) /
                             static_cast<double>(n);
        const double twr = std::cos(angle);
        const double twi = std::sin(angle);
        const std::size_t i0 = block + j;
        const std::size_t i1 = i0 + hm;
        const double tr = twr * out_re[i1] - twi * out_im[i1];
        const double ti = twr * out_im[i1] + twi * out_re[i1];
        const double r0 = out_re[i0];
        const double m0 = out_im[i0];
        out_re[i0] = r0 + tr;
        out_im[i0] = m0 + ti;
        out_re[i1] = r0 - tr;
        out_im[i1] = m0 - ti;
      }
    }
  }
}

void FftWorkload::result(const iss::SparseMemory& memory,
                         std::vector<double>& out_re,
                         std::vector<double>& out_im) const {
  out_re = memory.peek_array<double>(re_addr, n);
  out_im = memory.peek_array<double>(im_addr, n);
}

// ------------------------------------------------------------ histogram --

HistogramWorkload HistogramWorkload::generate(std::size_t n, std::size_t bins,
                                              double skew,
                                              std::uint64_t seed) {
  if (bins == 0) throw ConfigError("HistogramWorkload: zero bins");
  if (skew < 0.0 || skew >= 1.0) {
    throw ConfigError("HistogramWorkload: skew must be in [0, 1)");
  }
  HistogramWorkload workload;
  workload.n = n;
  workload.bins = bins;
  workload.data.resize(n);
  Xoshiro256 rng(seed ^ 0x415D06ULL);
  for (auto& value : workload.data) {
    // Power-style skew: u^(1/(1-skew)) concentrates mass near bin 0.
    const double u = rng.uniform();
    const double shaped = skew == 0.0 ? u : std::pow(u, 1.0 / (1.0 - skew));
    value = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(shaped * static_cast<double>(bins)),
        bins - 1);
  }
  workload.data_addr = kDataBase;
  workload.bins_addr = place_after(workload.data_addr, n * 8);
  return workload;
}

void HistogramWorkload::install(iss::SparseMemory& memory) const {
  memory.poke_array(data_addr, data.data(), data.size());
  const std::vector<std::uint64_t> zeros(bins, 0);
  memory.poke_array(bins_addr, zeros.data(), zeros.size());
}

std::vector<std::uint64_t> HistogramWorkload::reference() const {
  std::vector<std::uint64_t> counts(bins, 0);
  for (const auto value : data) ++counts[value];
  return counts;
}

std::vector<std::uint64_t> HistogramWorkload::result(
    const iss::SparseMemory& memory) const {
  return memory.peek_array<std::uint64_t>(bins_addr, bins);
}

// -------------------------------------------------------------- stencil --

StencilWorkload StencilWorkload::generate(std::size_t n,
                                          std::uint32_t iterations,
                                          std::uint64_t seed) {
  if (n < 2) throw ConfigError("StencilWorkload: n must be >= 2");
  StencilWorkload workload;
  workload.n = n;
  workload.iterations = iterations;
  workload.src.resize(n);
  Xoshiro256 rng(seed ^ 0x57E2C11ULL);
  for (double& value : workload.src) value = rng.uniform(0.0, 1.0);
  workload.src_addr = kDataBase;
  workload.dst_addr = place_after(workload.src_addr, n * 8);
  return workload;
}

void StencilWorkload::install(iss::SparseMemory& memory) const {
  memory.poke_array(src_addr, src.data(), src.size());
  // dst starts as a copy so the untouched boundary cells are already right.
  memory.poke_array(dst_addr, src.data(), src.size());
}

std::vector<double> StencilWorkload::reference() const {
  std::vector<double> from = src;
  std::vector<double> to = src;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      to[i] = c0 * from[i - 1] + c1 * from[i] + c2 * from[i + 1];
    }
    std::swap(from, to);
  }
  return from;
}

std::vector<double> StencilWorkload::result(
    const iss::SparseMemory& memory) const {
  const Addr final_addr = (iterations % 2 == 1) ? dst_addr : src_addr;
  return memory.peek_array<double>(final_addr, n);
}

}  // namespace coyote::kernels
