// 1D 3-point stencil kernels (vector and scalar).
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_barrier;
using detail::emit_exit;
using detail::emit_load_f64;
using detail::emit_partition;
using isa::Assembler;
using isa::Freg;
using isa::Lmul;
using isa::Sew;
using isa::Vreg;
using isa::Xreg;

Program build_stencil_vector(const StencilWorkload& workload,
                             std::uint32_t num_cores) {
  // Multicore multi-iteration sweeps need the halo cells of neighbouring
  // partitions to be visible between sweeps, so they take the
  // barrier-synchronized variant. (Functional values are always exchanged
  // through the shared memory; with l2.coherence=mesi the invalidation
  // traffic is modelled too.)
  if (num_cores > 1 && workload.iterations != 1) {
    return build_stencil_vector_sync(workload, num_cores);
  }
  Assembler as(kTextBase);

  // Interior points are [1, n-1); partition the n-2 of them.
  // Register map:
  //   s10 = partition begin (0-based interior index), s11 = partition end
  //   s1 = src buffer, s2 = dst buffer, s3 = iteration countdown
  //   fa1/fa2/fa3 = c0/c1/c2
  //   a1 = i (absolute), a2 = i end, a3 = avl, a4 = vl
  //   v8 = result, v16/v24 = neighbours
  emit_partition(as, workload.n - 2, num_cores, Xreg::s10, Xreg::s11);
  auto done = as.make_label();
  as.bge(Xreg::s10, Xreg::s11, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.src_addr));
  as.li(Xreg::s2, static_cast<std::int64_t>(workload.dst_addr));
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.iterations));
  emit_load_f64(as, Freg::fa1, Xreg::t0, workload.c0);
  emit_load_f64(as, Freg::fa2, Xreg::t0, workload.c1);
  emit_load_f64(as, Freg::fa3, Xreg::t0, workload.c2);

  auto loop_iter = as.here();
  as.addi(Xreg::a1, Xreg::s10, 1);   // first absolute interior index
  as.addi(Xreg::a2, Xreg::s11, 1);
  auto iter_done = as.make_label();
  auto loop_block = as.here();
  as.bge(Xreg::a1, Xreg::a2, iter_done);
  as.sub(Xreg::a3, Xreg::a2, Xreg::a1);
  as.vsetvli(Xreg::a4, Xreg::a3, Sew::kE64, Lmul::kM4);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);  // &src[i]
  as.addi(Xreg::t1, Xreg::t0, -8);
  as.vle64(Vreg::v8, Xreg::t1);          // src[i-1 ..)
  as.vfmul_vf(Vreg::v8, Vreg::v8, Freg::fa1);
  as.vle64(Vreg::v16, Xreg::t0);         // src[i ..)
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  as.addi(Xreg::t1, Xreg::t0, 8);
  as.vle64(Vreg::v24, Xreg::t1);         // src[i+1 ..)
  as.vfmacc_vf(Vreg::v8, Freg::fa3, Vreg::v24);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s2);  // &dst[i]
  as.vse64(Vreg::v8, Xreg::t0);
  as.add(Xreg::a1, Xreg::a1, Xreg::a4);
  as.j(loop_block);
  as.bind(iter_done);
  // Swap src/dst for the next sweep.
  as.mv(Xreg::t0, Xreg::s1);
  as.mv(Xreg::s1, Xreg::s2);
  as.mv(Xreg::s2, Xreg::t0);
  as.addi(Xreg::s3, Xreg::s3, -1);
  as.bnez(Xreg::s3, loop_iter);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_stencil_vector_sync(const StencilWorkload& workload,
                                  std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // As build_stencil_vector, plus a sense-reversal barrier between sweeps:
  //   s7 = barrier base (counter at +0, generation at +8)
  //   s8 = generation this core waits for next
  //   s9 = num_cores - 1 (last-arriver test)
  // The last core to arrive resets the counter and then bumps the
  // generation; everyone else spins on the generation word. Values read
  // while spinning are functionally current (one flat memory); with
  // l2.coherence=mesi the generation line's invalidate/refetch traffic is
  // timed as well.
  emit_partition(as, workload.n - 2, num_cores, Xreg::s10, Xreg::s11);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.src_addr));
  as.li(Xreg::s2, static_cast<std::int64_t>(workload.dst_addr));
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.iterations));
  as.li(Xreg::s7, static_cast<std::int64_t>(kBarrierBase));
  as.ld(Xreg::s8, 8, Xreg::s7);  // current generation (survives reruns)
  as.li(Xreg::s9, static_cast<std::int64_t>(num_cores) - 1);
  emit_load_f64(as, Freg::fa1, Xreg::t0, workload.c0);
  emit_load_f64(as, Freg::fa2, Xreg::t0, workload.c1);
  emit_load_f64(as, Freg::fa3, Xreg::t0, workload.c2);

  auto loop_iter = as.here();
  as.addi(Xreg::a1, Xreg::s10, 1);
  as.addi(Xreg::a2, Xreg::s11, 1);
  auto iter_done = as.make_label();
  auto loop_block = as.here();
  as.bge(Xreg::a1, Xreg::a2, iter_done);
  as.sub(Xreg::a3, Xreg::a2, Xreg::a1);
  as.vsetvli(Xreg::a4, Xreg::a3, Sew::kE64, Lmul::kM4);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.addi(Xreg::t1, Xreg::t0, -8);
  as.vle64(Vreg::v8, Xreg::t1);
  as.vfmul_vf(Vreg::v8, Vreg::v8, Freg::fa1);
  as.vle64(Vreg::v16, Xreg::t0);
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  as.addi(Xreg::t1, Xreg::t0, 8);
  as.vle64(Vreg::v24, Xreg::t1);
  as.vfmacc_vf(Vreg::v8, Freg::fa3, Vreg::v24);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s2);
  as.vse64(Vreg::v8, Xreg::t0);
  as.add(Xreg::a1, Xreg::a1, Xreg::a4);
  as.j(loop_block);
  as.bind(iter_done);

  // ---- barrier ----
  as.addi(Xreg::s8, Xreg::s8, 1);      // generation we wait to see
  as.li(Xreg::t2, 1);
  as.amoadd_d(Xreg::t3, Xreg::t2, Xreg::s7);  // arrival count
  auto wait = as.make_label();
  auto barrier_done = as.make_label();
  as.bne(Xreg::t3, Xreg::s9, wait);
  // Last arriver: reset the counter, then release the generation.
  as.sd(Xreg::zero, 0, Xreg::s7);
  as.addi(Xreg::t4, Xreg::s7, 8);
  as.amoadd_d(Xreg::zero, Xreg::t2, Xreg::t4);
  as.j(barrier_done);
  as.bind(wait);
  as.addi(Xreg::t4, Xreg::s7, 8);
  auto spin = as.here();
  as.ld(Xreg::t5, 0, Xreg::t4);
  as.blt(Xreg::t5, Xreg::s8, spin);
  as.bind(barrier_done);

  // Swap buffers and iterate.
  as.mv(Xreg::t0, Xreg::s1);
  as.mv(Xreg::s1, Xreg::s2);
  as.mv(Xreg::s2, Xreg::t0);
  as.addi(Xreg::s3, Xreg::s3, -1);
  as.bnez(Xreg::s3, loop_iter);

  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_stencil2d_vector(const Stencil2dWorkload& workload,
                               std::uint32_t num_cores) {
  Assembler as(kTextBase);
  const auto ny = static_cast<std::int64_t>(workload.ny);

  // Interior rows [1, nx-1) are partitioned; within a row the interior
  // columns [1, ny-1) are processed in vector blocks.
  // Register map:
  //   s10/s11 = row range (0-based over interior rows)
  //   s1 = src, s2 = dst, s3 = ny*8 (row stride in bytes)
  //   fa1 = cc, fa2 = cn
  //   a1 = absolute row i, a2 = row end, a3 = column j, a4 = avl, a5 = vl
  //   t0 = &src[i][j], t1 = scratch address
  //   v8 = acc, v16 = neighbour loads
  emit_partition(as, workload.nx - 2, num_cores, Xreg::s10, Xreg::s11);
  auto done = as.make_label();
  as.bge(Xreg::s10, Xreg::s11, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.src_addr));
  as.li(Xreg::s2, static_cast<std::int64_t>(workload.dst_addr));
  as.li(Xreg::s3, ny * 8);
  emit_load_f64(as, Freg::fa1, Xreg::t0, workload.cc);
  emit_load_f64(as, Freg::fa2, Xreg::t0, workload.cn);
  as.li(Xreg::s4, ny - 1);  // interior column end

  as.addi(Xreg::a1, Xreg::s10, 1);
  as.addi(Xreg::a2, Xreg::s11, 1);
  auto loop_row = as.here();
  as.li(Xreg::a3, 1);
  auto row_done = as.make_label();
  auto loop_block = as.here();
  as.bge(Xreg::a3, Xreg::s4, row_done);
  as.sub(Xreg::a4, Xreg::s4, Xreg::a3);
  as.vsetvli(Xreg::a5, Xreg::a4, Sew::kE64, Lmul::kM4);
  // t0 = &src[i][j] = src + (i*ny + j)*8.
  as.mul(Xreg::t0, Xreg::a1, Xreg::s3);
  as.slli(Xreg::t1, Xreg::a3, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::t1);
  as.add(Xreg::t0, Xreg::t0, Xreg::s1);
  as.vle64(Vreg::v8, Xreg::t0);              // centre
  as.vfmul_vf(Vreg::v8, Vreg::v8, Freg::fa1);
  as.sub(Xreg::t1, Xreg::t0, Xreg::s3);      // north
  as.vle64(Vreg::v16, Xreg::t1);
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  as.add(Xreg::t1, Xreg::t0, Xreg::s3);      // south
  as.vle64(Vreg::v16, Xreg::t1);
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  as.addi(Xreg::t1, Xreg::t0, -8);           // west
  as.vle64(Vreg::v16, Xreg::t1);
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  as.addi(Xreg::t1, Xreg::t0, 8);            // east
  as.vle64(Vreg::v16, Xreg::t1);
  as.vfmacc_vf(Vreg::v8, Freg::fa2, Vreg::v16);
  // Store to dst at the same offset.
  as.sub(Xreg::t0, Xreg::t0, Xreg::s1);
  as.add(Xreg::t0, Xreg::t0, Xreg::s2);
  as.vse64(Vreg::v8, Xreg::t0);
  as.add(Xreg::a3, Xreg::a3, Xreg::a5);
  as.j(loop_block);
  as.bind(row_done);
  as.addi(Xreg::a1, Xreg::a1, 1);
  as.blt(Xreg::a1, Xreg::a2, loop_row);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_stencil_scalar(const StencilWorkload& workload,
                             std::uint32_t num_cores) {
  Assembler as(kTextBase);
  // Multicore multi-iteration sweeps insert a sense-reversal barrier
  // between sweeps (s7 = barrier base, s8 = generation, s9 = cores-1) and
  // every core — empty partition or not — must reach it, so the early exit
  // is only emitted for barrier-free shapes. Those shapes produce exactly
  // the instruction stream this builder always produced.
  const bool barrier = num_cores > 1 && workload.iterations != 1;

  // Register map mirrors the vector version; ft0..ft2 hold the neighbours.
  emit_partition(as, workload.n - 2, num_cores, Xreg::s10, Xreg::s11);
  auto done = as.make_label();
  if (!barrier) as.bge(Xreg::s10, Xreg::s11, done);

  as.li(Xreg::s1, static_cast<std::int64_t>(workload.src_addr));
  as.li(Xreg::s2, static_cast<std::int64_t>(workload.dst_addr));
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.iterations));
  if (barrier) {
    as.li(Xreg::s7, static_cast<std::int64_t>(kBarrierBase));
    as.ld(Xreg::s8, 8, Xreg::s7);  // current generation (survives reruns)
    as.li(Xreg::s9, static_cast<std::int64_t>(num_cores) - 1);
  }
  emit_load_f64(as, Freg::fa1, Xreg::t0, workload.c0);
  emit_load_f64(as, Freg::fa2, Xreg::t0, workload.c1);
  emit_load_f64(as, Freg::fa3, Xreg::t0, workload.c2);

  auto loop_iter = as.here();
  as.addi(Xreg::a1, Xreg::s10, 1);
  as.addi(Xreg::a2, Xreg::s11, 1);
  // a4 = &src[i], a5 = &dst[i]
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::a4, Xreg::t0, Xreg::s1);
  as.add(Xreg::a5, Xreg::t0, Xreg::s2);
  auto iter_done = as.make_label();
  auto loop_i = as.here();
  as.bge(Xreg::a1, Xreg::a2, iter_done);
  as.fld(Freg::ft0, -8, Xreg::a4);
  as.fld(Freg::ft1, 0, Xreg::a4);
  as.fld(Freg::ft2, 8, Xreg::a4);
  as.fmul_d(Freg::fa0, Freg::ft0, Freg::fa1);
  as.fmadd_d(Freg::fa0, Freg::ft1, Freg::fa2, Freg::fa0);
  as.fmadd_d(Freg::fa0, Freg::ft2, Freg::fa3, Freg::fa0);
  as.fsd(Freg::fa0, 0, Xreg::a5);
  as.addi(Xreg::a4, Xreg::a4, 8);
  as.addi(Xreg::a5, Xreg::a5, 8);
  as.addi(Xreg::a1, Xreg::a1, 1);
  as.j(loop_i);
  as.bind(iter_done);
  if (barrier) emit_barrier(as, num_cores, Xreg::s7, Xreg::s8, Xreg::s9);
  as.mv(Xreg::t0, Xreg::s1);
  as.mv(Xreg::s1, Xreg::s2);
  as.mv(Xreg::s2, Xreg::t0);
  as.addi(Xreg::s3, Xreg::s3, -1);
  as.bnez(Xreg::s3, loop_iter);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
