// Name-driven kernel construction: the one place that maps a kernel name
// ("spmv_row_gather", "stencil2d", ...) to workload generation + program
// building. Extracted from the coyote_sim front end so that the CLI, the
// sweep engine and examples all agree on what a kernel name means, which
// default problem size it gets, and how its workload derives from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iss/memory.h"
#include "kernels/program.h"

namespace coyote::kernels {

/// One menu entry: a kernel name build_named_kernel accepts plus a one-line
/// description (surfaced by `coyote_sim --list-kernels`).
struct KernelInfo {
  std::string name;
  std::string description;
};

/// Every kernel build_named_kernel accepts, in documentation order.
const std::vector<KernelInfo>& kernel_menu();

/// Every kernel name build_named_kernel accepts, in documentation order
/// (the names column of kernel_menu()).
const std::vector<std::string>& kernel_names();

/// True when `name` is on the menu (what build_named_kernel accepts).
bool has_kernel(const std::string& name);

/// Generates the named kernel's workload deterministically from `seed`
/// (`size == 0` selects the kernel's default problem size), installs it
/// into `memory`, and returns the ready-to-load program partitioned over
/// `num_cores`. Throws ConfigError for an unknown name. Pure apart from
/// the writes into `memory`: safe to call concurrently on distinct
/// memories, and identical arguments yield bit-identical programs and
/// memory images.
Program build_named_kernel(const std::string& name, std::uint32_t num_cores,
                           std::uint64_t size, std::uint64_t seed,
                           iss::SparseMemory& memory);

}  // namespace coyote::kernels
