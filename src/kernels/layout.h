// Baremetal address-space convention shared by every kernel: code low,
// parameter-free (all workload constants are baked into the instruction
// stream by the builders), data in a high flat region.
#pragma once

#include "common/types.h"

namespace coyote::kernels {

/// Where kernel code is loaded.
inline constexpr Addr kTextBase = 0x0001'0000;

/// Base of the workload data region.
inline constexpr Addr kDataBase = 0x1000'0000;

/// Synchronization scratch (barrier counter at +0, generation at +8) for
/// kernels that use RV64A primitives.
inline constexpr Addr kBarrierBase = 0x0F00'0000;

/// Alignment applied between consecutively-placed arrays (one page, so the
/// page-to-bank policy sees distinct pages per array).
inline constexpr Addr kArrayAlign = 4096;

}  // namespace coyote::kernels
