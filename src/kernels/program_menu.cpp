#include "kernels/program_menu.h"

#include "common/error.h"
#include "kernels/kernels.h"

namespace coyote::kernels {

const std::vector<KernelInfo>& kernel_menu() {
  static const std::vector<KernelInfo> menu = {
      {"matmul_scalar",
       "dense matrix multiply, scalar RV64IMFD inner loop (default n=96)"},
      {"matmul_vector",
       "dense matrix multiply, RVV-vectorized inner loop (default n=96)"},
      {"spmv_scalar",
       "sparse matrix-vector product, CSR, scalar loop (default 8192 rows)"},
      {"spmv_row_gather",
       "sparse matrix-vector product, CSR with vector-gathered rows"},
      {"spmv_ell",
       "sparse matrix-vector product, ELLPACK layout, vectorized"},
      {"spmv_two_phase",
       "sparse matrix-vector product, gather/compute phase split"},
      {"stencil_scalar",
       "1D 3-point stencil, scalar loop (default n=2^18)"},
      {"stencil_vector",
       "1D 3-point stencil, RVV-vectorized (default n=2^18)"},
      {"stencil_sync",
       "1D stencil, 8 time steps with inter-core barriers (default n=2^16)"},
      {"stencil2d",
       "2D 5-point stencil, RVV-vectorized rows (default 512x512)"},
      {"histogram",
       "histogram over random keys using AMO increments (default n=2^16)"},
      {"axpy", "BLAS-1 y = a*x + y, RVV-vectorized (default n=2^18)"},
      {"dot", "BLAS-1 dot product with tree reduction (default n=2^18)"},
      {"fft", "radix-2 complex FFT, scalar butterflies (default n=2^14)"},
  };
  return menu;
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all;
    for (const KernelInfo& info : kernel_menu()) all.push_back(info.name);
    return all;
  }();
  return names;
}

bool has_kernel(const std::string& name) {
  for (const KernelInfo& info : kernel_menu()) {
    if (info.name == name) return true;
  }
  return false;
}

Program build_named_kernel(const std::string& name, std::uint32_t num_cores,
                           std::uint64_t size, std::uint64_t seed,
                           iss::SparseMemory& memory) {
  if (name == "matmul_scalar" || name == "matmul_vector") {
    const std::size_t n = size ? size : 96;
    const auto workload = MatmulWorkload::generate(n, seed);
    workload.install(memory);
    return name == "matmul_scalar"
               ? build_matmul_scalar(workload, num_cores)
               : build_matmul_vector(workload, num_cores);
  }
  if (name.rfind("spmv_", 0) == 0) {
    const std::size_t rows = size ? size : 8192;
    const auto workload = SpmvWorkload::generate(
        CsrMatrix::random(rows, rows, 16, seed), seed + 1);
    workload.install(memory);
    if (name == "spmv_scalar") return build_spmv_scalar(workload, num_cores);
    if (name == "spmv_row_gather") {
      return build_spmv_row_gather(workload, num_cores);
    }
    if (name == "spmv_ell") return build_spmv_ell(workload, num_cores);
    if (name == "spmv_two_phase") {
      return build_spmv_two_phase(workload, num_cores);
    }
    throw ConfigError(strfmt("unknown kernel '%s'", name.c_str()));
  }
  if (name == "stencil_scalar" || name == "stencil_vector") {
    const std::size_t n = size ? size : (1 << 18);
    const auto workload = StencilWorkload::generate(n, 1, seed);
    workload.install(memory);
    return name == "stencil_scalar"
               ? build_stencil_scalar(workload, num_cores)
               : build_stencil_vector(workload, num_cores);
  }
  if (name == "stencil_sync") {
    const std::size_t n = size ? size : (1 << 16);
    const auto workload = StencilWorkload::generate(n, 8, seed);
    workload.install(memory);
    return build_stencil_vector_sync(workload, num_cores);
  }
  if (name == "stencil2d") {
    const std::size_t n = size ? size : 512;
    const auto workload = Stencil2dWorkload::generate(n, n, seed);
    workload.install(memory);
    return build_stencil2d_vector(workload, num_cores);
  }
  if (name == "histogram") {
    const std::size_t n = size ? size : (1 << 16);
    const auto workload = HistogramWorkload::generate(n, 1024, 0.0, seed);
    workload.install(memory);
    return build_histogram_atomic(workload, num_cores);
  }
  if (name == "axpy" || name == "dot") {
    const std::size_t n = size ? size : (1 << 18);
    const auto workload = Blas1Workload::generate(n, seed);
    workload.install(memory);
    return name == "axpy" ? build_axpy_vector(workload, num_cores)
                          : build_dot_vector(workload, num_cores);
  }
  if (name == "fft") {
    const std::size_t n = size ? size : (1 << 14);
    const auto workload = FftWorkload::generate(n, seed);
    workload.install(memory);
    return build_fft_scalar(workload, num_cores);
  }
  throw ConfigError(strfmt("unknown kernel '%s'", name.c_str()));
}

}  // namespace coyote::kernels
