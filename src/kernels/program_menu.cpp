#include "kernels/program_menu.h"

#include "common/error.h"
#include "kernels/kernels.h"

namespace coyote::kernels {

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names = {
      "matmul_scalar", "matmul_vector", "spmv_scalar",   "spmv_row_gather",
      "spmv_ell",      "spmv_two_phase", "stencil_scalar", "stencil_vector",
      "stencil_sync",  "stencil2d",      "histogram",      "axpy",
      "dot",           "fft"};
  return names;
}

Program build_named_kernel(const std::string& name, std::uint32_t num_cores,
                           std::uint64_t size, std::uint64_t seed,
                           iss::SparseMemory& memory) {
  if (name == "matmul_scalar" || name == "matmul_vector") {
    const std::size_t n = size ? size : 96;
    const auto workload = MatmulWorkload::generate(n, seed);
    workload.install(memory);
    return name == "matmul_scalar"
               ? build_matmul_scalar(workload, num_cores)
               : build_matmul_vector(workload, num_cores);
  }
  if (name.rfind("spmv_", 0) == 0) {
    const std::size_t rows = size ? size : 8192;
    const auto workload = SpmvWorkload::generate(
        CsrMatrix::random(rows, rows, 16, seed), seed + 1);
    workload.install(memory);
    if (name == "spmv_scalar") return build_spmv_scalar(workload, num_cores);
    if (name == "spmv_row_gather") {
      return build_spmv_row_gather(workload, num_cores);
    }
    if (name == "spmv_ell") return build_spmv_ell(workload, num_cores);
    if (name == "spmv_two_phase") {
      return build_spmv_two_phase(workload, num_cores);
    }
    throw ConfigError(strfmt("unknown kernel '%s'", name.c_str()));
  }
  if (name == "stencil_scalar" || name == "stencil_vector") {
    const std::size_t n = size ? size : (1 << 18);
    const auto workload = StencilWorkload::generate(n, 1, seed);
    workload.install(memory);
    return name == "stencil_scalar"
               ? build_stencil_scalar(workload, num_cores)
               : build_stencil_vector(workload, num_cores);
  }
  if (name == "stencil_sync") {
    const std::size_t n = size ? size : (1 << 16);
    const auto workload = StencilWorkload::generate(n, 8, seed);
    workload.install(memory);
    return build_stencil_vector_sync(workload, num_cores);
  }
  if (name == "stencil2d") {
    const std::size_t n = size ? size : 512;
    const auto workload = Stencil2dWorkload::generate(n, n, seed);
    workload.install(memory);
    return build_stencil2d_vector(workload, num_cores);
  }
  if (name == "histogram") {
    const std::size_t n = size ? size : (1 << 16);
    const auto workload = HistogramWorkload::generate(n, 1024, 0.0, seed);
    workload.install(memory);
    return build_histogram_atomic(workload, num_cores);
  }
  if (name == "axpy" || name == "dot") {
    const std::size_t n = size ? size : (1 << 18);
    const auto workload = Blas1Workload::generate(n, seed);
    workload.install(memory);
    return name == "axpy" ? build_axpy_vector(workload, num_cores)
                          : build_dot_vector(workload, num_cores);
  }
  if (name == "fft") {
    const std::size_t n = size ? size : (1 << 14);
    const auto workload = FftWorkload::generate(n, seed);
    workload.install(memory);
    return build_fft_scalar(workload, num_cores);
  }
  throw ConfigError(strfmt("unknown kernel '%s'", name.c_str()));
}

}  // namespace coyote::kernels
