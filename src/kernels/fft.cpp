// Iterative radix-2 decimation-in-time FFT, scalar complex arithmetic.
// Every stage block-partitions the n/2 butterflies over the cores; stages
// are separated by an amoadd.d sense-reversal barrier (butterflies of one
// stage touch disjoint element pairs, so only stage boundaries need
// ordering). Stage constants (m, m/2, twiddle stride) are baked into the
// instruction stream by the builder since n is fixed at build time.
#include "common/bits.h"
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_barrier;
using detail::emit_exit;
using detail::emit_partition;
using isa::Assembler;
using isa::Freg;
using isa::Xreg;

Program build_fft_scalar(const FftWorkload& workload,
                         std::uint32_t num_cores) {
  const std::size_t n = workload.n;
  const unsigned log2n = log2_exact(n);
  Assembler as(kTextBase);

  // Register map:
  //   s1 = re base, s2 = im base, s3 = tw_re base, s4 = tw_im base
  //   s5 = barrier base, s6 = barrier generation, s9 = num_cores-1
  //   s10/s11 = butterfly range [begin, end) over k in [0, n/2)
  //   per stage: t6 = hm*8 (byte distance between pair halves)
  //   a1 = k, a2 = block, a3 = j, a4 = i0, a5/a6 = scratch
  emit_partition(as, n / 2, num_cores, Xreg::s10, Xreg::s11);
  as.li(Xreg::s1, static_cast<std::int64_t>(workload.re_addr));
  as.li(Xreg::s2, static_cast<std::int64_t>(workload.im_addr));
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.tw_re_addr));
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.tw_im_addr));
  as.li(Xreg::s5, static_cast<std::int64_t>(kBarrierBase));
  as.ld(Xreg::s6, 8, Xreg::s5);  // current barrier generation
  as.li(Xreg::s9, static_cast<std::int64_t>(num_cores) - 1);

  for (unsigned stage = 1; stage <= log2n; ++stage) {
    const unsigned log2m = stage;
    const unsigned log2hm = stage - 1;
    const unsigned log2stride = log2n - stage;  // twiddle index stride

    as.li(Xreg::t6, static_cast<std::int64_t>(8) << log2hm);  // hm bytes
    as.mv(Xreg::a1, Xreg::s10);
    auto stage_done = as.make_label();
    auto loop = as.here();
    as.bge(Xreg::a1, Xreg::s11, stage_done);
    // block = k >> log2hm; j = k - (block << log2hm); i0 = block*m + j.
    as.srli(Xreg::a2, Xreg::a1, log2hm);
    as.slli(Xreg::a3, Xreg::a2, log2hm);
    as.sub(Xreg::a3, Xreg::a1, Xreg::a3);
    as.slli(Xreg::a4, Xreg::a2, log2m);
    as.add(Xreg::a4, Xreg::a4, Xreg::a3);
    // Twiddle w = tw[j << log2stride].
    as.slli(Xreg::a5, Xreg::a3, log2stride + 3);
    as.add(Xreg::a6, Xreg::a5, Xreg::s3);
    as.fld(Freg::ft0, 0, Xreg::a6);       // twr
    as.add(Xreg::a6, Xreg::a5, Xreg::s4);
    as.fld(Freg::ft1, 0, Xreg::a6);       // twi
    // Element addresses.
    as.slli(Xreg::a5, Xreg::a4, 3);
    as.add(Xreg::t0, Xreg::a5, Xreg::s1);  // &re[i0]
    as.add(Xreg::t1, Xreg::a5, Xreg::s2);  // &im[i0]
    as.fld(Freg::fa0, 0, Xreg::t0);        // re0
    as.fld(Freg::fa1, 0, Xreg::t1);        // im0
    as.add(Xreg::t0, Xreg::t0, Xreg::t6);  // &re[i1]
    as.add(Xreg::t1, Xreg::t1, Xreg::t6);  // &im[i1]
    as.fld(Freg::fa2, 0, Xreg::t0);        // re1
    as.fld(Freg::fa3, 0, Xreg::t1);        // im1
    // t = w * x1 (complex): tr = twr*re1 - twi*im1; ti = twr*im1 + twi*re1.
    as.fmul_d(Freg::fa4, Freg::ft0, Freg::fa2);
    as.fmul_d(Freg::fa5, Freg::ft1, Freg::fa3);
    as.fsub_d(Freg::fa4, Freg::fa4, Freg::fa5);
    as.fmul_d(Freg::fa6, Freg::ft0, Freg::fa3);
    as.fmul_d(Freg::fa7, Freg::ft1, Freg::fa2);
    as.fadd_d(Freg::fa6, Freg::fa6, Freg::fa7);
    // x1' = x0 - t (pointers currently at i1), then x0' = x0 + t.
    as.fsub_d(Freg::ft2, Freg::fa0, Freg::fa4);
    as.fsd(Freg::ft2, 0, Xreg::t0);
    as.fsub_d(Freg::ft3, Freg::fa1, Freg::fa6);
    as.fsd(Freg::ft3, 0, Xreg::t1);
    as.sub(Xreg::t0, Xreg::t0, Xreg::t6);
    as.sub(Xreg::t1, Xreg::t1, Xreg::t6);
    as.fadd_d(Freg::ft2, Freg::fa0, Freg::fa4);
    as.fsd(Freg::ft2, 0, Xreg::t0);
    as.fadd_d(Freg::ft3, Freg::fa1, Freg::fa6);
    as.fsd(Freg::ft3, 0, Xreg::t1);
    as.addi(Xreg::a1, Xreg::a1, 1);
    as.j(loop);
    as.bind(stage_done);

    if (stage != log2n) {
      emit_barrier(as, num_cores, Xreg::s5, Xreg::s6, Xreg::s9);
    }
  }

  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
