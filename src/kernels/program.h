// A finished baremetal program: machine words plus load/entry addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace coyote::kernels {

struct Program {
  Addr base = 0;
  Addr entry = 0;
  std::vector<std::uint32_t> words;

  std::size_t size_bytes() const { return words.size() * 4; }
};

}  // namespace coyote::kernels
