// BLAS-1 kernels: vectorized AXPY and DOT.
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_exit;
using detail::emit_load_f64;
using detail::emit_partition;
using isa::Assembler;
using isa::Freg;
using isa::Lmul;
using isa::Sew;
using isa::Vreg;
using isa::Xreg;

Program build_axpy_vector(const Blas1Workload& workload,
                          std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Register map: s10/s11 = element range; s4 = x, s5 = y; fa1 = alpha;
  // a1 = cursor, a2 = avl, a3 = vl.
  emit_partition(as, workload.n, num_cores, Xreg::s10, Xreg::s11);
  auto done = as.make_label();
  as.bge(Xreg::s10, Xreg::s11, done);

  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s5, static_cast<std::int64_t>(workload.y_addr));
  emit_load_f64(as, Freg::fa1, Xreg::t0, workload.alpha);

  as.mv(Xreg::a1, Xreg::s10);
  auto loop = as.here();
  as.sub(Xreg::a2, Xreg::s11, Xreg::a1);
  as.vsetvli(Xreg::a3, Xreg::a2, Sew::kE64, Lmul::kM8);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t1, Xreg::t0, Xreg::s4);
  as.vle64(Vreg::v8, Xreg::t1);          // x block
  as.add(Xreg::t1, Xreg::t0, Xreg::s5);
  as.vle64(Vreg::v16, Xreg::t1);         // y block
  as.vfmacc_vf(Vreg::v16, Freg::fa1, Vreg::v8);
  as.vse64(Vreg::v16, Xreg::t1);
  as.add(Xreg::a1, Xreg::a1, Xreg::a3);
  as.blt(Xreg::a1, Xreg::s11, loop);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_dot_vector(const Blas1Workload& workload,
                         std::uint32_t num_cores) {
  Assembler as(kTextBase);

  // Register map: as AXPY plus fa0 = running partial sum; the ordered
  // vector reduction keeps per-chunk summation deterministic.
  emit_partition(as, workload.n, num_cores, Xreg::s10, Xreg::s11);

  as.li(Xreg::s4, static_cast<std::int64_t>(workload.x_addr));
  as.li(Xreg::s5, static_cast<std::int64_t>(workload.y_addr));
  as.fmv_d_x(Freg::fa0, Xreg::zero);

  auto store = as.make_label();
  as.bge(Xreg::s10, Xreg::s11, store);
  as.mv(Xreg::a1, Xreg::s10);
  auto loop = as.here();
  as.sub(Xreg::a2, Xreg::s11, Xreg::a1);
  as.vsetvli(Xreg::a3, Xreg::a2, Sew::kE64, Lmul::kM8);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t1, Xreg::t0, Xreg::s4);
  as.vle64(Vreg::v8, Xreg::t1);
  as.add(Xreg::t1, Xreg::t0, Xreg::s5);
  as.vle64(Vreg::v16, Xreg::t1);
  as.vfmul_vv(Vreg::v8, Vreg::v8, Vreg::v16);
  as.vfmv_s_f(Vreg::v24, Freg::fa0);
  as.vfredosum_vs(Vreg::v24, Vreg::v8, Vreg::v24);
  as.vfmv_f_s(Freg::fa0, Vreg::v24);
  as.add(Xreg::a1, Xreg::a1, Xreg::a3);
  as.blt(Xreg::a1, Xreg::s11, loop);

  as.bind(store);
  // partials[mhartid] = fa0
  as.csrr(Xreg::t0, 0xF14);
  as.slli(Xreg::t0, Xreg::t0, 3);
  as.li(Xreg::t1, static_cast<std::int64_t>(workload.partials_addr));
  as.add(Xreg::t1, Xreg::t1, Xreg::t0);
  as.fsd(Freg::fa0, 0, Xreg::t1);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
