// Dense matrix-multiplication kernels (scalar and vector).
#include "kernels/kernel_common.h"
#include "kernels/kernels.h"
#include "kernels/layout.h"

namespace coyote::kernels {

using detail::emit_exit;
using detail::emit_load_f64;
using detail::emit_partition;
using isa::Assembler;
using isa::Freg;
using isa::Lmul;
using isa::Sew;
using isa::Vreg;
using isa::Xreg;

Program build_matmul_scalar(const MatmulWorkload& workload,
                            std::uint32_t num_cores) {
  const auto n = static_cast<std::int64_t>(workload.n);
  Assembler as(kTextBase);

  // Register map:
  //   s5 = i (row), s6 = row end
  //   s1 = N, s2 = N*8
  //   s3 = &A[i][0], s4 = &C[i][j], s7 = B base
  //   a1 = j, a2 = &B[0][j]
  //   a3 = k countdown, a4 = walking &A[i][k], a5 = walking &B[k][j]
  emit_partition(as, workload.n, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s1, n);
  as.li(Xreg::s2, n * 8);
  as.mul(Xreg::t0, Xreg::s5, Xreg::s2);  // byte offset of first owned row
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.a_addr));
  as.add(Xreg::s3, Xreg::s3, Xreg::t0);
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.c_addr));
  as.add(Xreg::s4, Xreg::s4, Xreg::t0);
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.b_addr));

  auto loop_i = as.here();
  as.li(Xreg::a1, 0);
  as.mv(Xreg::a2, Xreg::s7);
  auto loop_j = as.here();
  as.fmv_d_x(Freg::fa0, Xreg::zero);  // acc = 0.0
  as.mv(Xreg::a4, Xreg::s3);
  as.mv(Xreg::a5, Xreg::a2);
  as.mv(Xreg::a3, Xreg::s1);
  auto loop_k = as.here();
  as.fld(Freg::ft0, 0, Xreg::a4);      // A[i][k]
  as.fld(Freg::ft1, 0, Xreg::a5);      // B[k][j]
  as.fmadd_d(Freg::fa0, Freg::ft0, Freg::ft1, Freg::fa0);
  as.addi(Xreg::a4, Xreg::a4, 8);
  as.add(Xreg::a5, Xreg::a5, Xreg::s2);
  as.addi(Xreg::a3, Xreg::a3, -1);
  as.bnez(Xreg::a3, loop_k);
  as.fsd(Freg::fa0, 0, Xreg::s4);      // C[i][j]
  as.addi(Xreg::s4, Xreg::s4, 8);
  as.addi(Xreg::a2, Xreg::a2, 8);
  as.addi(Xreg::a1, Xreg::a1, 1);
  as.blt(Xreg::a1, Xreg::s1, loop_j);
  as.add(Xreg::s3, Xreg::s3, Xreg::s2);
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop_i);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

Program build_matmul_vector(const MatmulWorkload& workload,
                            std::uint32_t num_cores) {
  const auto n = static_cast<std::int64_t>(workload.n);
  Assembler as(kTextBase);

  // Register map:
  //   s5 = i, s6 = row end; s1 = N, s2 = N*8
  //   s3 = &A[i][0], s4 = &C[i][0], s7 = B base
  //   a1 = j, a2 = avl, a3 = vl
  //   a4 = walking &B[k][j], a5 = walking &A[i][k], a6 = k countdown
  //   v8..v11 = C accumulator (LMUL=4), v16..v19 = B row slice
  emit_partition(as, workload.n, num_cores, Xreg::s5, Xreg::s6);
  auto done = as.make_label();
  as.bge(Xreg::s5, Xreg::s6, done);

  as.li(Xreg::s1, n);
  as.li(Xreg::s2, n * 8);
  as.mul(Xreg::t0, Xreg::s5, Xreg::s2);
  as.li(Xreg::s3, static_cast<std::int64_t>(workload.a_addr));
  as.add(Xreg::s3, Xreg::s3, Xreg::t0);
  as.li(Xreg::s4, static_cast<std::int64_t>(workload.c_addr));
  as.add(Xreg::s4, Xreg::s4, Xreg::t0);
  as.li(Xreg::s7, static_cast<std::int64_t>(workload.b_addr));
  as.fmv_d_x(Freg::ft0, Xreg::zero);

  auto loop_i = as.here();
  as.li(Xreg::a1, 0);
  auto loop_j = as.here();
  as.sub(Xreg::a2, Xreg::s1, Xreg::a1);
  as.vsetvli(Xreg::a3, Xreg::a2, Sew::kE64, Lmul::kM4);
  as.vfmv_v_f(Vreg::v8, Freg::ft0);  // acc = 0
  as.slli(Xreg::a4, Xreg::a1, 3);
  as.add(Xreg::a4, Xreg::a4, Xreg::s7);  // &B[0][j]
  as.mv(Xreg::a5, Xreg::s3);
  as.mv(Xreg::a6, Xreg::s1);
  auto loop_k = as.here();
  as.fld(Freg::ft1, 0, Xreg::a5);        // A[i][k]
  as.vle64(Vreg::v16, Xreg::a4);         // B[k][j..j+vl)
  as.vfmacc_vf(Vreg::v8, Freg::ft1, Vreg::v16);
  as.addi(Xreg::a5, Xreg::a5, 8);
  as.add(Xreg::a4, Xreg::a4, Xreg::s2);
  as.addi(Xreg::a6, Xreg::a6, -1);
  as.bnez(Xreg::a6, loop_k);
  as.slli(Xreg::t0, Xreg::a1, 3);
  as.add(Xreg::t0, Xreg::t0, Xreg::s4);
  as.vse64(Vreg::v8, Xreg::t0);          // C[i][j..j+vl)
  as.add(Xreg::a1, Xreg::a1, Xreg::a3);
  as.blt(Xreg::a1, Xreg::s1, loop_j);
  as.add(Xreg::s3, Xreg::s3, Xreg::s2);
  as.add(Xreg::s4, Xreg::s4, Xreg::s2);
  as.addi(Xreg::s5, Xreg::s5, 1);
  as.blt(Xreg::s5, Xreg::s6, loop_i);

  as.bind(done);
  emit_exit(as);
  return Program{kTextBase, kTextBase, as.finish()};
}

}  // namespace coyote::kernels
