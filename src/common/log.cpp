#include "common/log.h"

#include <cstdio>

#include "common/error.h"

namespace coyote {

LogLevel Log::level_ = LogLevel::kWarn;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace coyote
