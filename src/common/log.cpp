#include "common/log.h"

#include <cstdio>
#include <mutex>

#include "common/error.h"

namespace coyote {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  // One pre-formatted buffer + one locked fputs per line: concurrent
  // writers can never tear or interleave a line.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex sink_mutex;
  const std::lock_guard<std::mutex> lock(sink_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace coyote
