// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used as
// the integrity footer of checkpoint files and sweep .done records. Header-
// only, table-driven, with the table built once at first use; the algorithm
// matches zlib's crc32() so external tooling can cross-check footers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace coyote {

class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    const std::array<std::uint32_t, 256>& t = table();
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < n; ++i) {
      crc = t[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    }
    state_ = crc;
  }

  /// The CRC of everything fed to update() so far.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  static const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        out[i] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace coyote
