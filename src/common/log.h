// Minimal leveled logger. Logging in the simulator hot loop is guarded by a
// level check so a disabled message costs one branch (a relaxed atomic load).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace coyote {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide log sink writing to stderr. Thread-safe: concurrent
/// Simulator instances (the sweep engine runs one per worker thread) may
/// log at the same time, and each call emits exactly one whole line — no
/// interleaving or tearing.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Emits one line: "[LEVEL] message". Atomic per call.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::atomic<LogLevel> level_;
};

#define COYOTE_LOG(level, ...)                                     \
  do {                                                             \
    if (::coyote::Log::enabled(level)) {                           \
      ::coyote::Log::write(level, ::coyote::strfmt(__VA_ARGS__));  \
    }                                                              \
  } while (0)

#define COYOTE_DEBUG(...) COYOTE_LOG(::coyote::LogLevel::kDebug, __VA_ARGS__)
#define COYOTE_INFO(...) COYOTE_LOG(::coyote::LogLevel::kInfo, __VA_ARGS__)
#define COYOTE_WARN(...) COYOTE_LOG(::coyote::LogLevel::kWarn, __VA_ARGS__)
#define COYOTE_ERROR(...) COYOTE_LOG(::coyote::LogLevel::kError, __VA_ARGS__)

}  // namespace coyote
