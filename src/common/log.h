// Minimal leveled logger. Logging in the simulator hot loop is guarded by a
// level check so a disabled message costs one branch.
#pragma once

#include <cstdint>
#include <string>

namespace coyote {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide log sink writing to stderr. Not synchronized: the simulator
/// is single-threaded by design (determinism).
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }
  static bool enabled(LogLevel level) { return level >= level_; }

  /// Emits one line: "[LEVEL] message".
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

#define COYOTE_LOG(level, ...)                                     \
  do {                                                             \
    if (::coyote::Log::enabled(level)) {                           \
      ::coyote::Log::write(level, ::coyote::strfmt(__VA_ARGS__));  \
    }                                                              \
  } while (0)

#define COYOTE_DEBUG(...) COYOTE_LOG(::coyote::LogLevel::kDebug, __VA_ARGS__)
#define COYOTE_INFO(...) COYOTE_LOG(::coyote::LogLevel::kInfo, __VA_ARGS__)
#define COYOTE_WARN(...) COYOTE_LOG(::coyote::LogLevel::kWarn, __VA_ARGS__)
#define COYOTE_ERROR(...) COYOTE_LOG(::coyote::LogLevel::kError, __VA_ARGS__)

}  // namespace coyote
