// Bit-manipulation helpers used by the ISA encoders/decoders and the cache
// index/tag arithmetic. All helpers are constexpr and total (no UB for the
// documented argument ranges).
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace coyote {

/// Extracts bits [lo, hi] (inclusive, hi >= lo, hi < 64) of `value`,
/// right-aligned.
constexpr std::uint64_t bits(std::uint64_t value, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < 64);
  const unsigned width = hi - lo + 1;
  if (width == 64) return value >> lo;
  return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/// Extracts the single bit `pos` of `value`.
constexpr std::uint64_t bit(std::uint64_t value, unsigned pos) {
  assert(pos < 64);
  return (value >> pos) & 1;
}

/// Sign-extends the low `width` bits of `value` to 64 bits (1 <= width <= 64).
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<std::int64_t>(value);
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  value &= mask;
  return static_cast<std::int64_t>((value ^ sign) - sign);
}

/// True iff `value` is zero or a power of two.
constexpr bool is_pow2_or_zero(std::uint64_t value) {
  return (value & (value - 1)) == 0;
}

/// True iff `value` is a (nonzero) power of two.
constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && is_pow2_or_zero(value);
}

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t value) {
  assert(is_pow2(value));
  unsigned n = 0;
  while ((value & 1) == 0) {
    value >>= 1;
    ++n;
  }
  return n;
}

/// Rounds `value` down to a multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_down(std::uint64_t value, std::uint64_t align) {
  assert(is_pow2(align));
  return value & ~(align - 1);
}

/// Rounds `value` up to a multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  assert(is_pow2(align));
  return (value + align - 1) & ~(align - 1);
}

/// Inserts the low `width` bits of `field` into `base` at bit position `lo`.
constexpr std::uint32_t insert_bits(std::uint32_t base, std::uint32_t field,
                                    unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < 32);
  const unsigned width = hi - lo + 1;
  const std::uint32_t mask =
      (width == 32) ? ~std::uint32_t{0} : ((std::uint32_t{1} << width) - 1);
  return (base & ~(mask << lo)) | ((field & mask) << lo);
}

}  // namespace coyote
