// Error reporting. Coyote follows the C++ Core Guidelines' advice to use
// exceptions for error handling: configuration mistakes and simulated-machine
// faults (misaligned vector accesses, illegal instructions in a kernel, ...)
// are programming errors of the *user of the simulator* and abort the
// simulation with a diagnostic.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace coyote {

/// Base class for every error Coyote raises.
class SimError : public std::runtime_error {
 public:
  explicit SimError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// A structural/configuration mistake (bad parameter value, mismatched
/// topology, ...). Raised while building the simulated machine.
class ConfigError : public SimError {
 public:
  explicit ConfigError(std::string what) : SimError(std::move(what)) {}
};

/// A fault raised by the simulated machine itself (illegal instruction,
/// access to unmapped memory when strict, ...).
class ExecutionError : public SimError {
 public:
  explicit ExecutionError(std::string what) : SimError(std::move(what)) {}
};

/// The liveness watchdog (or the deadlock detector) declared the simulated
/// machine wedged: either every live core is stalled with no event that
/// could unblock it, or `sim.watchdog_cycles` simulated cycles elapsed with
/// zero retired instructions. Carries a structured multi-line diagnostic
/// (per-core blocked-on state, directory transaction table, MSHR contents)
/// alongside the one-line what().
class HangError : public SimError {
 public:
  HangError(std::string what, std::string diagnostic)
      : SimError(std::move(what)), diagnostic_(std::move(diagnostic)) {}

  const std::string& diagnostic() const { return diagnostic_; }

 private:
  std::string diagnostic_;
};

// Documented process exit codes shared by coyote_sim and coyote_sweep
// (see README): distinguish "your config is wrong" from "the simulated
// program failed" from "the machine hung and the watchdog fired".
inline constexpr int kExitOk = 0;
inline constexpr int kExitExecutionError = 1;
inline constexpr int kExitConfigError = 2;
inline constexpr int kExitHang = 3;
/// A campaign broker (or `coyote_campaign run` fleet) that was asked to
/// drain (SIGTERM/SIGINT) and exited before the campaign completed. The
/// state directory holds everything done so far; restarting the same
/// command resumes. Distinct from 1/2/3 so orchestration scripts can tell
/// "drained, restart me" from "failed".
inline constexpr int kExitDrained = 4;
/// A guest program that ran to completion but called exit(status != 0)
/// maps to kExitGuestBase + (status mod 64): disjoint from the harness
/// codes above, wraparound-free within the 8-bit POSIX exit range.
inline constexpr int kExitGuestBase = 64;

/// printf-style message formatting for exception texts.
[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace coyote
