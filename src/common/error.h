// Error reporting. Coyote follows the C++ Core Guidelines' advice to use
// exceptions for error handling: configuration mistakes and simulated-machine
// faults (misaligned vector accesses, illegal instructions in a kernel, ...)
// are programming errors of the *user of the simulator* and abort the
// simulation with a diagnostic.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace coyote {

/// Base class for every error Coyote raises.
class SimError : public std::runtime_error {
 public:
  explicit SimError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// A structural/configuration mistake (bad parameter value, mismatched
/// topology, ...). Raised while building the simulated machine.
class ConfigError : public SimError {
 public:
  explicit ConfigError(std::string what) : SimError(std::move(what)) {}
};

/// A fault raised by the simulated machine itself (illegal instruction,
/// access to unmapped memory when strict, ...).
class ExecutionError : public SimError {
 public:
  explicit ExecutionError(std::string what) : SimError(std::move(what)) {}
};

/// printf-style message formatting for exception texts.
[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace coyote
