// Fundamental scalar types shared across every Coyote module.
#pragma once

#include <cstdint>

namespace coyote {

/// A physical (== virtual, we run baremetal without translation) byte address.
using Addr = std::uint64_t;

/// A simulated-time cycle count.
using Cycle = std::uint64_t;

/// Identifies a simulated hardware thread (core). Dense, 0-based.
using CoreId = std::uint32_t;

/// Identifies a tile (group of cores sharing L2 banks). Dense, 0-based.
using TileId = std::uint32_t;

/// Identifies an L2 bank within the whole system. Dense, 0-based.
using BankId = std::uint32_t;

/// Identifies a memory controller. Dense, 0-based.
using McId = std::uint32_t;

/// Sentinel for "no core".
inline constexpr CoreId kInvalidCore = ~CoreId{0};

}  // namespace coyote
