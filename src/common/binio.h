// Minimal little-endian binary serialization primitives for the checkpoint
// subsystem. Header-only so every component library can expose
// save_state(BinWriter&) / load_state(BinReader&) without new link
// dependencies. Both endpoints track their byte offset and maintain a
// running CRC-32 of everything written/read, so container formats can
// append an integrity footer (see ckpt::write_checkpoint) and truncation
// errors can name the exact offset. Readers are bounds-checked and throw
// SimError on truncated or malformed input; writers never fail short of
// stream errors.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/error.h"

namespace coyote {

/// Serializes primitives to an ostream in little-endian byte order,
/// independent of host endianness.
class BinWriter {
 public:
  explicit BinWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { put(&v, 1); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    put(s.data(), s.size());
  }

  void bytes(const void* data, std::size_t n) { put(data, n); }

  /// Length-prefixed byte blob.
  void blob(const void* data, std::size_t n) {
    u64(n);
    put(data, n);
  }

  /// Bytes written so far.
  std::uint64_t offset() const { return offset_; }

  /// CRC-32 of every byte written so far.
  std::uint32_t crc() const { return crc_.value(); }

  std::ostream& stream() { return out_; }

 private:
  template <typename T>
  void put_le(T v) {
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    put(buf, sizeof(T));
  }

  void put(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out_) {
      throw SimError(strfmt("binio: write failed at offset %llu",
                            static_cast<unsigned long long>(offset_)));
    }
    crc_.update(data, n);
    offset_ += n;
  }

  std::ostream& out_;
  std::uint64_t offset_ = 0;
  Crc32 crc_;
};

/// Bounds-checked little-endian reader over an istream.
class BinReader {
 public:
  explicit BinReader(std::istream& in) : in_(in) {}

  std::uint8_t u8() {
    std::uint8_t v;
    get(&v, 1);
    return v;
  }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }

  std::string str() {
    std::uint64_t n = u64();
    check_size(n);
    std::string s(static_cast<std::size_t>(n), '\0');
    get(s.data(), s.size());
    return s;
  }

  void bytes(void* data, std::size_t n) { get(data, n); }

  std::vector<std::uint8_t> blob() {
    std::uint64_t n = u64();
    check_size(n);
    std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
    get(v.data(), v.size());
    return v;
  }

  /// Reads a count that will size a container; rejects absurd values so a
  /// corrupt stream cannot trigger a huge allocation.
  std::uint64_t count(std::uint64_t max = (1ULL << 32)) {
    std::uint64_t n = u64();
    if (n > max) {
      throw SimError(strfmt(
          "binio: implausible element count %llu at offset %llu",
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(offset_ - 8)));
    }
    return n;
  }

  /// Bytes consumed so far.
  std::uint64_t offset() const { return offset_; }

  /// CRC-32 of every byte consumed so far.
  std::uint32_t crc() const { return crc_.value(); }

  std::istream& stream() { return in_; }

 private:
  template <typename T>
  T get_le() {
    std::uint8_t buf[sizeof(T)];
    get(buf, sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(buf[i]) << (8 * i)));
    }
    return v;
  }

  void check_size(std::uint64_t n) const {
    if (n > (1ULL << 32)) {
      throw SimError(strfmt(
          "binio: implausible blob size %llu at offset %llu",
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(offset_ - 8)));
    }
  }

  void get(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw SimError(strfmt(
          "binio: truncated input at offset %llu (wanted %llu more bytes, "
          "got %llu)",
          static_cast<unsigned long long>(offset_),
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(in_.gcount())));
    }
    crc_.update(data, n);
    offset_ += n;
  }

  std::istream& in_;
  std::uint64_t offset_ = 0;
  Crc32 crc_;
};

}  // namespace coyote
