// Deterministic pseudo-random number generation for workload construction
// (sparse-matrix patterns, synthetic data). Implements SplitMix64 (seeding)
// and xoshiro256** (stream), both public-domain algorithms by Blackman &
// Vigna. We do not use <random> engines here so that generated workloads are
// bit-identical across standard libraries — benchmarks depend on it.
#pragma once

#include <array>
#include <cstdint>

namespace coyote {

/// SplitMix64: expands a 64-bit seed into a well-mixed stream; used to seed
/// Xoshiro256 and acceptable alone for short sequences.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// bias is negligible (<2^-32) for the bounds used in workload generation.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace coyote
