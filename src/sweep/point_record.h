// The serialized form of one completed campaign point, shared by every
// consumer that persists or transports point outcomes: the sweep engine's
// per-point `.done` resume records, the campaign memo store's
// content-addressed entries, and the broker/worker protocol's RESULT
// frames. One format means a point that completed anywhere — in process,
// on a remote worker, or in a previous campaign — replays into a results
// table byte-identical to running it fresh.
//
// The record carries everything PointResult::to_json renders except the
// point index (ownership of the slot stays with the reader): the full
// normalised config map, ok/attempts/error, status and fault
// classification, the RunResult, and the collected metrics.
#pragma once

#include "common/binio.h"
#include "sweep/sweep.h"

namespace coyote::sweep {

/// Bump on any layout change; readers treat other versions as "no record".
inline constexpr std::uint32_t kPointRecordVersion = 3;

/// Serializes `point` (config, outcome flags, run result, metrics) minus
/// its index. The version tag is NOT written here — container formats
/// (done files, memo entries, frames) carry their own magic/version.
void write_point_record(BinWriter& w, const PointResult& point);

/// Reads a record into `point`, leaving `point.index` untouched. Throws
/// SimError on truncated or malformed input; callers treat that as "no
/// usable record" (re-run the point), never as a fatal campaign error.
void read_point_record(BinReader& r, PointResult& point);

}  // namespace coyote::sweep
