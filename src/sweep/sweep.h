// Parallel design-space sweep engine — the programmatic face of the
// paper's headline use case (§I, §III: "fast and flexible tool for HPC
// design space exploration"). A sweep is a set of configuration points
// (a base ConfigMap, cartesian axes over any documented config key, and
// optional explicit points); the engine runs each point as an independent
// Simulator on a host thread pool, isolates failures, and aggregates the
// outcomes into a versioned, machine-readable results table.
//
// Determinism contract: per-point results are a pure function of the point
// itself — Simulator instances share no mutable state (see DESIGN.md),
// workloads regenerate from the spec seed, and host-side scheduling only
// decides *when* a point runs, never *what* it computes. An N-point sweep
// at jobs=8 therefore produces a bit-identical report (host timings
// excluded) to the same sweep at jobs=1; tests/test_sweep.cpp and the CI
// ThreadSanitizer job enforce this.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "simfw/params.h"
#include "sweep/progress.h"

namespace coyote::sweep {

/// Schema of SweepReport::to_json; bump on incompatible change.
inline constexpr int kSweepSchemaVersion = 1;

/// One swept dimension: a config key and the values it takes.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses one "key=v1,v2,v3" token into an axis (a single value is a
/// one-point axis, i.e. a plain override). Throws ConfigError on bad shape.
SweepAxis axis_from_token(const std::string& token);

/// A sweep campaign: which kernel to run and which config points to visit.
struct SweepSpec {
  std::string kernel = "matmul_scalar";
  std::uint64_t size = 0;    ///< problem size; 0 = kernel default
  std::uint64_t seed = 2024; ///< workload seed, shared by every point

  /// Overrides applied to every point (defaults for unlisted keys).
  simfw::ConfigMap base;
  /// Cartesian axes: the grid is the product of all axis value lists,
  /// overlaid on `base` in axis order.
  std::vector<SweepAxis> axes;
  /// Explicit extra points, each overlaid on `base`.
  std::vector<simfw::ConfigMap> extra_points;

  /// Expands the grid + extras into the ordered point list the engine
  /// visits. Deterministic: axis order × value order, then extras.
  std::vector<simfw::ConfigMap> expand() const;

  /// Returns a copy with the spec-level kernel/size/seed fields folded into
  /// `workload.*` base keys (unless a base key, axis or extra point already
  /// pins them), so every expanded point's config map is self-describing.
  /// Both the in-process engine and the campaign broker expand through
  /// this, which is what makes their tables comparable byte for byte.
  SweepSpec with_workload_keys() const;
};

/// Outcome of one configuration point.
struct PointResult {
  std::size_t index = 0;        ///< position in SweepSpec::expand() order
  simfw::ConfigMap config;      ///< complete normalised map (config_to_map)
  bool ok = false;
  std::uint32_t attempts = 0;   ///< 1 on first-try success
  std::string error;            ///< last failure message when !ok
  /// "timeout" when every attempt blew the wall-clock budget; empty
  /// otherwise. Emitted to JSON only when set, so pre-existing tables stay
  /// byte-stable.
  std::string status;
  /// Resilience campaigns (fault.enable=true): the differential-harness
  /// class for this point — "masked", "sdc" or "due" — plus the classifier
  /// detail (digest delta, hang message, trap…). Empty on ordinary sweeps.
  std::string fault_outcome;
  std::string fault_detail;
  core::RunResult run;          ///< valid when ok
  /// Named scalar metrics captured by the collect hook (miss rates, ...).
  std::vector<std::pair<std::string, double>> metrics;

  std::string to_json(bool include_host_timing = false) const;
};

/// Aggregated campaign outcome.
struct SweepReport {
  std::string workload;            ///< kernel name or custom label
  std::vector<PointResult> points; ///< in expand() order, all points
  std::size_t num_ok() const;
  std::size_t num_failed() const { return points.size() - num_ok(); }
  /// Fastest successful point by simulated cycles; nullptr if none.
  const PointResult* best_by_cycles() const;
  /// The versioned results table ({"schema_version": 1, "kind": "sweep", ...}).
  /// Deterministic across jobs counts when host timings are excluded.
  std::string to_json(bool include_host_timing = false) const;
};

class SweepEngine {
 public:
  struct Options {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    unsigned jobs = 0;
    /// Runs per point before recording it as failed.
    std::uint32_t max_attempts = 2;
    /// Per-point simulated-cycle budget; a point that hits it fails.
    Cycle max_cycles = ~Cycle{0};
    /// Per-point wall-clock budget in seconds; 0 = no timeout. A point that
    /// exceeds it is abandoned at the next probe boundary and retried with
    /// a doubled budget (exponential backoff), up to max_attempts tries,
    /// then recorded failed with status "timeout". Kernel mode only.
    double point_timeout_s = 0.0;
    /// Simulated cycles between wall-clock probes while point_timeout_s is
    /// armed (the budget is only checked at probe boundaries). The default
    /// is coarse enough that probing costs nothing; tests shrink it.
    Cycle timeout_probe_cycles = 1'000'000;
    /// Per-point completion reporting on stderr: the classic overwriting
    /// "\r[sweep] done/total" line, machine-readable JSON events for long
    /// campaigns, or silence. See sweep/progress.h.
    ProgressMode progress = ProgressMode::kNone;
    /// Kernel-mode hook run after each successful point (on the worker
    /// thread, one caller at a time per point) to harvest statistics from
    /// the finished machine into PointResult::metrics. Must be thread-safe
    /// with respect to itself and must derive metrics only from `sim` and
    /// the result, or determinism across jobs counts is lost.
    std::function<void(core::Simulator& sim, PointResult& point)> collect;
    /// Resume directory (kernel mode only). When set, every completed
    /// point leaves a result record (`point<i>.done`) and long-running
    /// points leave periodic state checkpoints (`point<i>.ckpt`, cut at
    /// quiesce points every `checkpoint_interval` simulated cycles).
    /// Re-running the same campaign with the same directory skips
    /// completed points and restores interrupted ones from their last
    /// checkpoint; per-point outcomes are bit-identical to an
    /// uninterrupted run. Records that do not match a point's full
    /// normalised config (or fail to parse) are ignored, so a changed
    /// campaign never resumes stale state.
    std::string resume_dir;
    /// Simulated cycles between per-point checkpoint cuts while
    /// `resume_dir` is set; 0 disables mid-point checkpoints (completed
    /// points are still recorded and skipped on resume).
    Cycle checkpoint_interval = 5'000'000;
  };

  /// A custom per-point body: build/run whatever `config` means and return
  /// the RunResult. Runs on a worker thread; may record metrics.
  using PointRunner =
      std::function<core::RunResult(const core::SimConfig& config,
                                    PointResult& point)>;

  SweepEngine() = default;
  explicit SweepEngine(Options options) : options_(std::move(options)) {}

  /// Kernel mode: each point parses via core::config_from_map, builds the
  /// spec's kernel (workload regenerated from spec.seed) and runs to
  /// completion. A throwing point is retried, then recorded failed — the
  /// campaign always finishes.
  SweepReport run(const SweepSpec& spec) const;

  /// Custom mode: the caller supplies the per-point body (used by examples
  /// that share a pre-generated workload or rank bespoke metrics).
  SweepReport run(std::vector<simfw::ConfigMap> points,
                  const PointRunner& runner,
                  std::string workload_label = "custom") const;

 private:
  /// Thread-pool scheduling shared by both modes: an atomic cursor over
  /// the point list, `body` invoked once per point (point.index and the
  /// raw point.config pre-set), completions fed to the progress sink.
  SweepReport run_indexed(
      std::vector<simfw::ConfigMap> points,
      const std::function<void(PointResult& point)>& body,
      std::string workload_label) const;

  Options options_{};
};

}  // namespace coyote::sweep
