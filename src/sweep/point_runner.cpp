#include "sweep/point_runner.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "ckpt/checkpoint.h"
#include "common/binio.h"
#include "common/error.h"
#include "common/log.h"
#include "core/config_io.h"
#include "fault/differential.h"
#include "fault/fault.h"
#include "loader/workload.h"
#include "sweep/point_record.h"

namespace coyote::sweep {

namespace {

constexpr std::uint32_t kDoneMagic = 0x43594B44;  // "DKYC" little-endian

std::unique_ptr<core::Simulator> build_point(const core::SimConfig& config) {
  auto sim = std::make_unique<core::Simulator>(config);
  loader::load_workload(*sim);
  return sim;
}

std::unique_ptr<core::Simulator> try_restore_point(
    const std::string& path, const std::string& workload,
    const simfw::ConfigMap& expect) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return nullptr;
  try {
    ckpt::CheckpointMeta meta;
    auto sim = ckpt::restore_checkpoint(is, &meta);
    if (meta.workload != workload ||
        meta.config.values() != expect.values()) {
      return nullptr;
    }
    return sim;
  } catch (const std::exception& e) {
    // Stale or corrupt checkpoint: restart the point (from its last good
    // record if any, else from scratch). Never fatal.
    COYOTE_WARN("sweep resume: ignoring unusable checkpoint %s (%s)",
                path.c_str(), e.what());
    return nullptr;
  }
}

void write_point_checkpoint(core::Simulator& sim, const std::string& workload,
                            const std::string& path) {
  const std::string tmp = path + ".tmp";
  ckpt::write_checkpoint_file(sim, workload, tmp);
  std::filesystem::rename(tmp, path);
}

}  // namespace

void run_point_with_retries(
    PointResult& point, std::uint32_t max_attempts,
    const std::function<core::RunResult(const core::SimConfig&,
                                        PointResult&)>& body) {
  if (max_attempts == 0) max_attempts = 1;
  point.attempts = 0;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++point.attempts;
    point.metrics.clear();
    point.status.clear();
    point.fault_outcome.clear();
    point.fault_detail.clear();
    try {
      const core::SimConfig config = core::config_from_map(point.config);
      // Record the *complete* map so every row of the results table names
      // its full design point, not just the swept keys.
      point.config = core::config_to_map(config);
      point.run = body(config, point);
      point.ok = true;
      point.error.clear();
      break;
    } catch (const std::exception& e) {
      point.ok = false;
      point.error = e.what();
    } catch (...) {
      point.ok = false;
      point.error = "unknown error";
    }
  }
}

void rename_durable(const std::string& tmp, const std::string& path) {
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  std::filesystem::rename(tmp, path);
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dirfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);  // the rename itself must reach disk
    ::close(dirfd);
  }
}

void write_done_record(const std::string& path, const PointResult& point) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SimError("sweep resume: cannot write " + tmp);
    BinWriter w(os);
    w.u32(kDoneMagic);
    w.u32(kPointRecordVersion);
    write_point_record(w, point);
    os.flush();
    if (!os) throw SimError("sweep resume: write failed for " + tmp);
  }
  rename_durable(tmp, path);
}

bool try_load_done_record(const std::string& path,
                          const simfw::ConfigMap& expect,
                          PointResult& point) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  PointResult loaded;
  try {
    BinReader r(is);
    if (r.u32() != kDoneMagic) {
      COYOTE_WARN("sweep resume: %s is not a done record; re-running point",
                  path.c_str());
      return false;
    }
    if (const std::uint32_t version = r.u32();
        version != kPointRecordVersion) {
      // Old-format records are expected after an upgrade; re-run quietly.
      return false;
    }
    read_point_record(r, loaded);
  } catch (const std::exception& e) {
    // Truncated or unparseable — the machine died mid-write, the disk
    // lied, someone chopped bytes. The point is simply "not done".
    COYOTE_WARN("sweep resume: corrupt record %s (%s); re-running point",
                path.c_str(), e.what());
    return false;
  }
  if (loaded.config.values() != expect.values()) return false;
  const std::size_t index = point.index;
  point = std::move(loaded);
  point.index = index;
  return true;
}

std::uint64_t PointExecutor::golden_digest(const core::SimConfig& config) {
  core::SimConfig golden = config;
  golden.fault.enable = false;
  const std::string key =
      core::canonical_config_text(core::config_to_map(golden));
  // The mutex is held across the golden run itself: the first arrival
  // computes, everyone else waits and reuses — identical digests
  // regardless of jobs count or arrival order.
  const std::lock_guard<std::mutex> lock(golden_mutex_);
  const auto it = golden_cache_.find(key);
  if (it != golden_cache_.end()) return it->second;
  auto sim = build_point(golden);
  const std::uint64_t digest = fault::run_golden(*sim, options_.max_cycles);
  golden_cache_.emplace(key, digest);
  return digest;
}

void PointExecutor::run_point(PointResult& point) {
  run_point_with_retries(
      point, options_.max_attempts,
      [this](const core::SimConfig& config, PointResult& p) {
        return execute(config, p);
      });
}

core::RunResult PointExecutor::execute(const core::SimConfig& config,
                                       PointResult& point) {
  const Cycle max_cycles = options_.max_cycles;
  const std::string& resume_dir = options_.resume_dir;
  const Cycle interval = options_.checkpoint_interval;
  const std::string stem =
      resume_dir.empty()
          ? std::string()
          : resume_dir + "/point" + std::to_string(point.index);
  if (!resume_dir.empty()) {
    // Completed on a previous run: reuse the recorded result verbatim.
    if (try_load_done_record(stem + ".done", point.config, point)) {
      return point.run;
    }
  }

  // ----- resilience campaign point --------------------------------------
  // Golden leg once per unique fault-free config, then the injected leg,
  // classified masked/sdc/due. A DUE (trap, hang, cycle-budget blow-out)
  // is a *measured outcome*, not a point failure — the point reports ok
  // with its class attached.
  if (config.fault.enable) {
    const std::uint64_t digest = golden_digest(config);
    auto sim = build_point(config);
    const fault::FaultPlan plan = fault::FaultPlan::generate(config);
    const fault::InjectionResult injected =
        fault::run_injected(*sim, plan, max_cycles, digest);
    point.fault_outcome = fault::outcome_name(injected.outcome);
    point.fault_detail = injected.detail;
    core::RunResult result = injected.run;
    if (injected.outcome != fault::Outcome::kDue) {
      result.cycles = sim->scheduler().now();
      result.instructions = sim->root()
                                .find("orchestrator")
                                ->stats()
                                .find_counter("instructions")
                                .get();
      if (options_.collect) options_.collect(*sim, point);
    }
    if (!resume_dir.empty()) {
      PointResult record = point;
      record.ok = true;
      record.error.clear();
      record.run = result;
      write_done_record(stem + ".done", record);
    }
    return result;
  }

  // The resume key names the workload (kernel/size/seed, or the ELF path
  // plus its content hash), so a checkpoint from a different campaign —
  // or from a rebuilt binary — in the same directory never resumes into
  // this point. Per point, because workload.* keys are sweepable.
  const std::string resume_label = loader::resume_label(config);
  std::unique_ptr<core::Simulator> sim;
  if (!resume_dir.empty()) {
    sim = try_restore_point(stem + ".ckpt", resume_label, point.config);
  }
  if (sim == nullptr) sim = build_point(config);

  // Wall-clock budget for this attempt: exponential backoff doubles it
  // on every retry, so a point that was merely unlucky (loaded host, cold
  // caches) gets progressively more headroom before being written off.
  const auto wall_start = std::chrono::steady_clock::now();
  const double budget_s =
      options_.point_timeout_s > 0.0
          ? options_.point_timeout_s *
                static_cast<double>(
                    1u << std::min<std::uint32_t>(point.attempts - 1, 20))
          : 0.0;

  // Run in checkpoint-interval slices (one slice = the whole budget when
  // checkpointing is off). Quiesce stops do not perturb the simulation,
  // so the sliced run is bit-identical to an uninterrupted one. An armed
  // timeout additionally caps every leg at timeout_probe_cycles so the
  // wall clock is probed promptly.
  const bool ckpt_slicing = !resume_dir.empty() && interval != 0;
  core::RunResult result;
  while (true) {
    const Cycle elapsed = sim->scheduler().now();
    const Cycle remaining =
        max_cycles == ~Cycle{0}
            ? ~Cycle{0}
            : (elapsed < max_cycles ? max_cycles - elapsed : 0);
    const Cycle leg_cap =
        budget_s > 0.0
            ? std::min(remaining,
                       std::max<Cycle>(options_.timeout_probe_cycles, 1))
            : remaining;
    if (ckpt_slicing) {
      result = sim->run_to_quiesce(std::min(interval, leg_cap), leg_cap);
      if (result.quiesced && !result.all_exited) {
        write_point_checkpoint(*sim, resume_label, stem + ".ckpt");
      }
    } else if (budget_s > 0.0) {
      result = sim->run(leg_cap);
    } else {
      result = sim->run(remaining);
      break;
    }
    if (result.all_exited) break;
    if (max_cycles != ~Cycle{0} && sim->scheduler().now() >= max_cycles) {
      result.hit_cycle_limit = true;
      break;
    }
    if (budget_s > 0.0) {
      const double spent = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
      if (spent > budget_s) {
        point.status = "timeout";
        throw SimError(strfmt(
            "point exceeded its wall-clock budget (%.3fs > %.3fs, "
            "attempt %u)",
            spent, budget_s, point.attempts));
      }
    }
  }
  if (!result.all_exited) {
    throw SimError(result.hit_cycle_limit
                       ? "point hit the cycle budget before completion"
                       : "point stalled before completion");
  }
  // Totals from the authoritative machine state rather than the last run
  // leg, so a resumed point reports the same numbers as a fresh one.
  result.cycles = sim->scheduler().now();
  result.instructions = sim->root()
                            .find("orchestrator")
                            ->stats()
                            .find_counter("instructions")
                            .get();
  if (options_.collect) options_.collect(*sim, point);
  if (!resume_dir.empty()) {
    PointResult record = point;
    record.ok = true;
    record.error.clear();
    record.run = result;
    write_done_record(stem + ".done", record);
    std::error_code ignored;
    std::filesystem::remove(stem + ".ckpt", ignored);
  }
  return result;
}

}  // namespace coyote::sweep
