// The per-point execution seam shared by the in-process sweep engine and
// the campaign service's workers. Everything that decides *what a point
// computes* — config normalisation, the retry loop, golden-run
// differentials for fault points, checkpoint resume, wall-clock budgets —
// lives here, behind one class, so a point produces byte-identical table
// rows whether SweepEngine ran it on a host thread or a remote worker ran
// it and shipped the record back over TCP.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "core/sim_config.h"
#include "core/simulator.h"
#include "sweep/sweep.h"

namespace coyote::sweep {

/// Runs `body` against the point's config with the engine's retry
/// discipline: up to `max_attempts` tries, each attempt re-normalising the
/// config (config_from_map → config_to_map, so the table names the full
/// design point), capturing failures into point.error instead of throwing.
/// `point.index` and `point.config` (raw map) must be set on entry; every
/// other field is (re)written.
void run_point_with_retries(
    PointResult& point, std::uint32_t max_attempts,
    const std::function<core::RunResult(const core::SimConfig&,
                                        PointResult&)>& body);

/// Durable commit of a fully-written temp file: fsync the file, rename it
/// over `path`, fsync the containing directory. Rename alone survives a
/// process crash but not a power cut — without the syncs, a machine dying
/// after rename can leave a zero-length or half-written "committed" file,
/// which campaign restart would then warn about and silently re-run.
void rename_durable(const std::string& tmp, const std::string& path);

/// Writes `point` as a crash-safe `.done` record (tmp + fsync + rename +
/// dir fsync): container magic/version plus the shared point record. The
/// record is the resume and reassignment ground truth — a point with a
/// parseable, config-matching record is done; anything else is not.
void write_done_record(const std::string& path, const PointResult& point);

/// Loads a `.done` record into `point` iff it parses and its stored config
/// equals `expect` (the point's full normalised map). A record that exists
/// but is truncated or unparseable is treated as "not done": the function
/// warns (COYOTE_WARN) and returns false so the point re-runs — corrupt
/// state never crashes a campaign or poisons the table. A clean record for
/// a *different* config (stale directory) is ignored silently.
bool try_load_done_record(const std::string& path,
                          const simfw::ConfigMap& expect, PointResult& point);

/// Executes campaign points one at a time. Stateless across points except
/// for the golden-run digest cache (fault campaigns share one golden run
/// per unique fault-free config, exactly like PR 5's in-engine cache) —
/// thread-safe, so one executor may serve every engine worker thread.
class PointExecutor {
 public:
  struct Options {
    /// Runs per point before recording it as failed.
    std::uint32_t max_attempts = 2;
    /// Per-point simulated-cycle budget; a point that hits it fails.
    Cycle max_cycles = ~Cycle{0};
    /// Per-point wall-clock budget (0 = none); doubled on every retry.
    double point_timeout_s = 0.0;
    /// Simulated cycles between wall-clock probes when the budget is armed.
    Cycle timeout_probe_cycles = 1'000'000;
    /// Post-success metrics hook (see SweepEngine::Options::collect).
    std::function<void(core::Simulator& sim, PointResult& point)> collect;
    /// Resume directory: per-point `.done` records and periodic `.ckpt`
    /// checkpoints. Empty = no persistence (campaign workers run with this
    /// empty; the broker persists records centrally instead).
    std::string resume_dir;
    /// Simulated cycles between checkpoint cuts while resume_dir is set.
    Cycle checkpoint_interval = 5'000'000;
  };

  PointExecutor() = default;
  explicit PointExecutor(Options options) : options_(std::move(options)) {}

  const Options& options() const { return options_; }

  /// The full per-point body: retry loop + execution. Fills every field of
  /// `point` except index; never throws. Thread-safe.
  void run_point(PointResult& point);

 private:
  core::RunResult execute(const core::SimConfig& config, PointResult& point);
  std::uint64_t golden_digest(const core::SimConfig& config);

  Options options_{};
  std::mutex golden_mutex_;
  std::map<std::string, std::uint64_t> golden_cache_;
};

}  // namespace coyote::sweep
