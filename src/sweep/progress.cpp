#include "sweep/progress.h"

#include "common/error.h"
#include "core/run_summary.h"
#include "sweep/sweep.h"

namespace coyote::sweep {

ProgressMode progress_mode_from_string(const std::string& text) {
  if (text == "none") return ProgressMode::kNone;
  if (text == "line") return ProgressMode::kLine;
  if (text == "json") return ProgressMode::kJson;
  throw ConfigError(strfmt("bad progress mode '%s' (want line, json or none)",
                           text.c_str()));
}

ProgressSink::ProgressSink(ProgressMode mode, std::size_t total,
                           std::FILE* out)
    : mode_(mode), total_(total), out_(out ? out : stderr) {}

void ProgressSink::point_done(const PointResult& point,
                              const std::string& source) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!point.ok) ++failed_;
  if (mode_ == ProgressMode::kLine) {
    std::fprintf(out_, "\r[sweep] %zu/%zu points done, %zu failed%s", done_,
                 total_, failed_, done_ == total_ ? "\n" : "");
    std::fflush(out_);
  } else if (mode_ == ProgressMode::kJson) {
    std::string line = "{\"event\": \"point\", \"index\": " +
                       std::to_string(point.index) +
                       ", \"ok\": " + (point.ok ? "true" : "false") +
                       ", \"done\": " + std::to_string(done_) +
                       ", \"total\": " + std::to_string(total_) +
                       ", \"failed\": " + std::to_string(failed_);
    if (!point.status.empty()) {
      line += ", \"status\": \"" + core::json_escape(point.status) + "\"";
    }
    if (!point.fault_outcome.empty()) {
      line += ", \"fault_outcome\": \"" +
              core::json_escape(point.fault_outcome) + "\"";
    }
    line += ", \"source\": \"" + core::json_escape(source) + "\"}\n";
    std::fputs(line.c_str(), out_);
    std::fflush(out_);
  }
}

void ProgressSink::note(const std::string& text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == ProgressMode::kLine) {
    std::fprintf(out_, "[campaign] %s\n", text.c_str());
    std::fflush(out_);
  } else if (mode_ == ProgressMode::kJson) {
    std::fprintf(out_, "{\"event\": \"note\", \"text\": \"%s\"}\n",
                 core::json_escape(text).c_str());
    std::fflush(out_);
  }
}

void ProgressSink::point_progress(std::size_t index, const std::string& phase,
                                  std::uint64_t value,
                                  const std::string& source) {
  if (mode_ != ProgressMode::kJson) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out_,
               "{\"event\": \"progress\", \"index\": %zu, \"phase\": \"%s\", "
               "\"value\": %llu, \"source\": \"%s\"}\n",
               index, core::json_escape(phase).c_str(),
               static_cast<unsigned long long>(value),
               core::json_escape(source).c_str());
  std::fflush(out_);
}

std::size_t ProgressSink::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::size_t ProgressSink::failed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

}  // namespace coyote::sweep
