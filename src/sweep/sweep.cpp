#include "sweep/sweep.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "core/config_io.h"
#include "core/run_summary.h"
#include "sweep/point_runner.h"

namespace coyote::sweep {

SweepAxis axis_from_token(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    throw ConfigError(strfmt("bad sweep token '%s' (want key=v1,v2,...)",
                             token.c_str()));
  }
  SweepAxis axis;
  axis.key = token.substr(0, eq);
  std::string values = token.substr(eq + 1);
  std::size_t start = 0;
  while (true) {
    const auto comma = values.find(',', start);
    const std::string value = values.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (value.empty()) {
      throw ConfigError(strfmt("empty value in sweep axis '%s'",
                               token.c_str()));
    }
    axis.values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axis;
}

std::vector<simfw::ConfigMap> SweepSpec::expand() const {
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) {
      throw ConfigError(strfmt("sweep axis '%s' has no values",
                               axis.key.c_str()));
    }
  }
  std::vector<simfw::ConfigMap> points;
  // Odometer over the axes, last axis fastest — the order a nested loop
  // over the axes in declaration order would visit.
  std::vector<std::size_t> index(axes.size(), 0);
  while (true) {
    simfw::ConfigMap point = base;
    for (std::size_t axis = 0; axis < axes.size(); ++axis) {
      point.set(axes[axis].key, axes[axis].values[index[axis]]);
    }
    points.push_back(std::move(point));
    bool rolled_over = true;
    for (std::size_t digit = axes.size(); digit-- > 0;) {
      if (++index[digit] < axes[digit].values.size()) {
        rolled_over = false;
        break;
      }
      index[digit] = 0;
    }
    if (rolled_over) break;  // no axes, or the odometer wrapped: grid done
  }
  for (const simfw::ConfigMap& extra : extra_points) {
    simfw::ConfigMap point = base;
    for (const auto& [key, value] : extra.values()) point.set(key, value);
    points.push_back(std::move(point));
  }
  return points;
}

SweepSpec SweepSpec::with_workload_keys() const {
  SweepSpec effective = *this;
  const auto point_sets = [this](const std::string& key) {
    if (base.has(key)) return true;
    for (const SweepAxis& axis : axes) {
      if (axis.key == key) return true;
    }
    for (const simfw::ConfigMap& extra : extra_points) {
      if (extra.has(key)) return true;
    }
    return false;
  };
  if (!point_sets("workload.kernel") && !point_sets("workload.elf")) {
    effective.base.set("workload.kernel", kernel);
  }
  if (!point_sets("workload.size") && size != 0) {
    effective.base.set("workload.size", std::to_string(size));
  }
  if (!point_sets("workload.seed")) {
    effective.base.set("workload.seed", std::to_string(seed));
  }
  return effective;
}

std::string PointResult::to_json(bool include_host_timing) const {
  std::ostringstream os;
  os << "{\"index\": " << index << ", \"ok\": " << (ok ? "true" : "false")
     << ", \"attempts\": " << attempts << ", \"error\": ";
  if (error.empty()) {
    os << "null";
  } else {
    os << "\"" << core::json_escape(error) << "\"";
  }
  os << ", \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config.values()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << core::json_escape(key) << "\": \""
       << core::json_escape(value) << "\"";
  }
  os << "}, \"result\": "
     << (ok ? run.to_json(include_host_timing) : std::string("null"));
  os << ", \"metrics\": {";
  first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) os << ", ";
    first = false;
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
    os << "\"" << core::json_escape(name) << "\": " << buffer;
  }
  os << "}";
  // Robustness fields appear only when set, so ordinary sweep tables stay
  // byte-identical to the pre-fault schema.
  if (!status.empty()) {
    os << ", \"status\": \"" << core::json_escape(status) << "\"";
  }
  if (!fault_outcome.empty()) {
    os << ", \"fault_outcome\": \"" << core::json_escape(fault_outcome)
       << "\", \"fault_detail\": \"" << core::json_escape(fault_detail)
       << "\"";
  }
  os << "}";
  return os.str();
}

std::size_t SweepReport::num_ok() const {
  std::size_t ok = 0;
  for (const PointResult& point : points) ok += point.ok ? 1 : 0;
  return ok;
}

const PointResult* SweepReport::best_by_cycles() const {
  const PointResult* best = nullptr;
  for (const PointResult& point : points) {
    if (!point.ok) continue;
    if (!best || point.run.cycles < best->run.cycles) best = &point;
  }
  return best;
}

std::string SweepReport::to_json(bool include_host_timing) const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << kSweepSchemaVersion << ",\n"
     << "  \"kind\": \"sweep\",\n"
     << "  \"workload\": \"" << core::json_escape(workload) << "\",\n"
     << "  \"num_points\": " << points.size() << ",\n"
     << "  \"num_failed\": " << num_failed() << ",\n"
     << "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << points[i].to_json(include_host_timing);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

SweepReport SweepEngine::run_indexed(
    std::vector<simfw::ConfigMap> points,
    const std::function<void(PointResult& point)>& body,
    std::string workload_label) const {
  SweepReport report;
  report.workload = std::move(workload_label);
  report.points.resize(points.size());

  // Shared-queue work distribution: one atomic cursor, workers pull the
  // next unclaimed point. Results land in a slot per point, so the report
  // is independent of which worker ran what and when.
  std::atomic<std::size_t> cursor{0};
  ProgressSink sink(options_.progress, points.size());

  const auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      PointResult& point = report.points[i];
      point.index = i;
      point.config = points[i];
      body(point);
      sink.point_done(point, "run");
    }
  };

  unsigned jobs = options_.jobs ? options_.jobs
                                : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (jobs > points.size()) jobs = static_cast<unsigned>(points.size());
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  return report;
}

SweepReport SweepEngine::run(std::vector<simfw::ConfigMap> points,
                             const PointRunner& runner,
                             std::string workload_label) const {
  const std::uint32_t max_attempts = options_.max_attempts;
  return run_indexed(
      std::move(points),
      [&runner, max_attempts](PointResult& point) {
        run_point_with_retries(point, max_attempts, runner);
      },
      std::move(workload_label));
}

SweepReport SweepEngine::run(const SweepSpec& spec) const {
  PointExecutor::Options exec;
  exec.max_attempts = options_.max_attempts;
  exec.max_cycles = options_.max_cycles;
  exec.point_timeout_s = options_.point_timeout_s;
  exec.timeout_probe_cycles = options_.timeout_probe_cycles;
  exec.collect = options_.collect;
  exec.resume_dir = options_.resume_dir;
  exec.checkpoint_interval = options_.checkpoint_interval;
  if (!exec.resume_dir.empty()) {
    std::filesystem::create_directories(exec.resume_dir);
  }
  PointExecutor executor(std::move(exec));
  return run_indexed(
      spec.with_workload_keys().expand(),
      [&executor](PointResult& point) { executor.run_point(point); },
      spec.kernel);
}

}  // namespace coyote::sweep
