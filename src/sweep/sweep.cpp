#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "ckpt/checkpoint.h"
#include "common/binio.h"
#include "common/error.h"
#include "core/config_io.h"
#include "core/run_summary.h"
#include "fault/differential.h"
#include "loader/workload.h"

namespace coyote::sweep {

namespace {

// ----- per-point resume records ----------------------------------------
// A completed point leaves a `.done` record: its full normalised config
// (the resume key — a record that does not match is ignored), the
// RunResult and the collected metrics. In-progress points leave ordinary
// checkpoints (`.ckpt`, ckpt/checkpoint.h) cut at quiesce points. Both are
// written to a temp file and renamed, so an interrupted write never leaves
// a record that parses.

constexpr std::uint32_t kDoneMagic = 0x43594B44;  // "DKYC" little-endian
// v2: status + fault_outcome/fault_detail fields (v1 records re-run).
constexpr std::uint32_t kDoneVersion = 2;

void write_done_record(const std::string& path, const PointResult& point,
                       const core::RunResult& run) {
  const simfw::ConfigMap& config = point.config;
  const std::vector<std::pair<std::string, double>>& metrics = point.metrics;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SimError("sweep resume: cannot write " + tmp);
    BinWriter w(os);
    w.u32(kDoneMagic);
    w.u32(kDoneVersion);
    w.u64(config.values().size());
    for (const auto& [key, value] : config.values()) {
      w.str(key);
      w.str(value);
    }
    w.u64(run.cycles);
    w.u64(run.instructions);
    w.b(run.all_exited);
    w.u64(run.exit_codes.size());
    for (std::int64_t code : run.exit_codes) w.i64(code);
    w.u64(metrics.size());
    for (const auto& [name, value] : metrics) {
      w.str(name);
      std::uint64_t bits;
      std::memcpy(&bits, &value, sizeof bits);
      w.u64(bits);
    }
    w.str(point.status);
    w.str(point.fault_outcome);
    w.str(point.fault_detail);
    os.flush();
    if (!os) throw SimError("sweep resume: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<core::RunResult> try_load_done(const std::string& path,
                                             const simfw::ConfigMap& expect,
                                             PointResult& point) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  try {
    BinReader r(is);
    if (r.u32() != kDoneMagic || r.u32() != kDoneVersion) return std::nullopt;
    simfw::ConfigMap config;
    const std::uint64_t num_keys = r.count(1 << 20);
    for (std::uint64_t i = 0; i < num_keys; ++i) {
      const std::string key = r.str();
      config.set(key, r.str());
    }
    if (config.values() != expect.values()) return std::nullopt;
    core::RunResult run;
    run.cycles = r.u64();
    run.instructions = r.u64();
    run.all_exited = r.b();
    const std::uint64_t num_codes = r.count(1 << 20);
    run.exit_codes.reserve(num_codes);
    for (std::uint64_t i = 0; i < num_codes; ++i) {
      run.exit_codes.push_back(r.i64());
    }
    point.metrics.clear();
    const std::uint64_t num_metrics = r.count(1 << 20);
    for (std::uint64_t i = 0; i < num_metrics; ++i) {
      const std::string name = r.str();
      const std::uint64_t bits = r.u64();
      double value;
      std::memcpy(&value, &bits, sizeof value);
      point.metrics.emplace_back(name, value);
    }
    point.status = r.str();
    point.fault_outcome = r.str();
    point.fault_detail = r.str();
    return run;
  } catch (const std::exception&) {
    return std::nullopt;  // truncated/corrupt record: re-run the point
  }
}

std::unique_ptr<core::Simulator> try_restore_point(
    const std::string& path, const std::string& workload,
    const simfw::ConfigMap& expect) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return nullptr;
  try {
    ckpt::CheckpointMeta meta;
    auto sim = ckpt::restore_checkpoint(is, &meta);
    if (meta.workload != workload ||
        meta.config.values() != expect.values()) {
      return nullptr;
    }
    return sim;
  } catch (const std::exception&) {
    return nullptr;  // stale/corrupt checkpoint: restart the point
  }
}

void write_point_checkpoint(core::Simulator& sim, const std::string& workload,
                            const std::string& path) {
  const std::string tmp = path + ".tmp";
  ckpt::write_checkpoint_file(sim, workload, tmp);
  std::filesystem::rename(tmp, path);
}

}  // namespace

SweepAxis axis_from_token(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    throw ConfigError(strfmt("bad sweep token '%s' (want key=v1,v2,...)",
                             token.c_str()));
  }
  SweepAxis axis;
  axis.key = token.substr(0, eq);
  std::string values = token.substr(eq + 1);
  std::size_t start = 0;
  while (true) {
    const auto comma = values.find(',', start);
    const std::string value = values.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (value.empty()) {
      throw ConfigError(strfmt("empty value in sweep axis '%s'",
                               token.c_str()));
    }
    axis.values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axis;
}

std::vector<simfw::ConfigMap> SweepSpec::expand() const {
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) {
      throw ConfigError(strfmt("sweep axis '%s' has no values",
                               axis.key.c_str()));
    }
  }
  std::vector<simfw::ConfigMap> points;
  // Odometer over the axes, last axis fastest — the order a nested loop
  // over the axes in declaration order would visit.
  std::vector<std::size_t> index(axes.size(), 0);
  while (true) {
    simfw::ConfigMap point = base;
    for (std::size_t axis = 0; axis < axes.size(); ++axis) {
      point.set(axes[axis].key, axes[axis].values[index[axis]]);
    }
    points.push_back(std::move(point));
    bool rolled_over = true;
    for (std::size_t digit = axes.size(); digit-- > 0;) {
      if (++index[digit] < axes[digit].values.size()) {
        rolled_over = false;
        break;
      }
      index[digit] = 0;
    }
    if (rolled_over) break;  // no axes, or the odometer wrapped: grid done
  }
  for (const simfw::ConfigMap& extra : extra_points) {
    simfw::ConfigMap point = base;
    for (const auto& [key, value] : extra.values()) point.set(key, value);
    points.push_back(std::move(point));
  }
  return points;
}

std::string PointResult::to_json(bool include_host_timing) const {
  std::ostringstream os;
  os << "{\"index\": " << index << ", \"ok\": " << (ok ? "true" : "false")
     << ", \"attempts\": " << attempts << ", \"error\": ";
  if (error.empty()) {
    os << "null";
  } else {
    os << "\"" << core::json_escape(error) << "\"";
  }
  os << ", \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config.values()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << core::json_escape(key) << "\": \""
       << core::json_escape(value) << "\"";
  }
  os << "}, \"result\": "
     << (ok ? run.to_json(include_host_timing) : std::string("null"));
  os << ", \"metrics\": {";
  first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) os << ", ";
    first = false;
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
    os << "\"" << core::json_escape(name) << "\": " << buffer;
  }
  os << "}";
  // Robustness fields appear only when set, so ordinary sweep tables stay
  // byte-identical to the pre-fault schema.
  if (!status.empty()) {
    os << ", \"status\": \"" << core::json_escape(status) << "\"";
  }
  if (!fault_outcome.empty()) {
    os << ", \"fault_outcome\": \"" << core::json_escape(fault_outcome)
       << "\", \"fault_detail\": \"" << core::json_escape(fault_detail)
       << "\"";
  }
  os << "}";
  return os.str();
}

std::size_t SweepReport::num_ok() const {
  std::size_t ok = 0;
  for (const PointResult& point : points) ok += point.ok ? 1 : 0;
  return ok;
}

const PointResult* SweepReport::best_by_cycles() const {
  const PointResult* best = nullptr;
  for (const PointResult& point : points) {
    if (!point.ok) continue;
    if (!best || point.run.cycles < best->run.cycles) best = &point;
  }
  return best;
}

std::string SweepReport::to_json(bool include_host_timing) const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << kSweepSchemaVersion << ",\n"
     << "  \"kind\": \"sweep\",\n"
     << "  \"workload\": \"" << core::json_escape(workload) << "\",\n"
     << "  \"num_points\": " << points.size() << ",\n"
     << "  \"num_failed\": " << num_failed() << ",\n"
     << "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << points[i].to_json(include_host_timing);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

SweepReport SweepEngine::run(std::vector<simfw::ConfigMap> points,
                             const PointRunner& runner,
                             std::string workload_label) const {
  SweepReport report;
  report.workload = std::move(workload_label);
  report.points.resize(points.size());

  // Shared-queue work distribution: one atomic cursor, workers pull the
  // next unclaimed point. Results land in a slot per point, so the report
  // is independent of which worker ran what and when.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::mutex progress_mutex;

  const std::uint32_t max_attempts =
      options_.max_attempts ? options_.max_attempts : 1;
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      PointResult& point = report.points[i];
      point.index = i;
      point.config = points[i];
      for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        ++point.attempts;
        point.metrics.clear();
        point.status.clear();
        point.fault_outcome.clear();
        point.fault_detail.clear();
        try {
          const core::SimConfig config = core::config_from_map(point.config);
          // Record the *complete* map so every row of the results table
          // names its full design point, not just the swept keys.
          point.config = core::config_to_map(config);
          point.run = runner(config, point);
          point.ok = true;
          point.error.clear();
          break;
        } catch (const std::exception& e) {
          point.ok = false;
          point.error = e.what();
        } catch (...) {
          point.ok = false;
          point.error = "unknown error";
        }
      }
      const std::size_t now_done = done.fetch_add(1) + 1;
      const std::size_t now_failed =
          failed.fetch_add(point.ok ? 0 : 1) + (point.ok ? 0 : 1);
      if (options_.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr, "\r[sweep] %zu/%zu points done, %zu failed%s",
                     now_done, points.size(), now_failed,
                     now_done == points.size() ? "\n" : "");
        std::fflush(stderr);
      }
    }
  };

  unsigned jobs = options_.jobs ? options_.jobs
                                : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (jobs > points.size()) jobs = static_cast<unsigned>(points.size());
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }
  return report;
}

SweepReport SweepEngine::run(const SweepSpec& spec) const {
  const Cycle max_cycles = options_.max_cycles;
  const auto& collect = options_.collect;
  const std::string resume_dir = options_.resume_dir;
  const Cycle interval = options_.checkpoint_interval;
  if (!resume_dir.empty()) {
    std::filesystem::create_directories(resume_dir);
  }

  // Fold the spec's kernel/size/seed into the workload.* config keys so
  // every point's config map is self-describing (the unified Workload API)
  // and workload.elf / workload.kernel work as sweep axes. A key already
  // pinned by the base, an axis or an extra point wins over the spec field.
  SweepSpec effective = spec;
  const auto point_sets = [&spec](const std::string& key) {
    if (spec.base.has(key)) return true;
    for (const SweepAxis& axis : spec.axes) {
      if (axis.key == key) return true;
    }
    for (const simfw::ConfigMap& extra : spec.extra_points) {
      if (extra.has(key)) return true;
    }
    return false;
  };
  if (!point_sets("workload.kernel") && !point_sets("workload.elf")) {
    effective.base.set("workload.kernel", spec.kernel);
  }
  if (!point_sets("workload.size") && spec.size != 0) {
    effective.base.set("workload.size", std::to_string(spec.size));
  }
  if (!point_sets("workload.seed")) {
    effective.base.set("workload.seed", std::to_string(spec.seed));
  }

  // Golden-run digest cache for resilience campaigns: every point whose
  // fault-free machine config is identical (the usual case — an injection
  // campaign sweeps fault.seed over one design point) shares one golden
  // run. Keyed by the full normalised fault-free config, so the cache can
  // never alias two different machines. The mutex is held across the golden
  // run itself: the first arrival computes, everyone else waits and reuses
  // — identical digests regardless of jobs count or arrival order.
  std::mutex golden_mutex;
  std::map<std::string, std::uint64_t> golden_cache;
  const auto build_point = [&](const core::SimConfig& config) {
    auto sim = std::make_unique<core::Simulator>(config);
    loader::load_workload(*sim);
    return sim;
  };
  const auto golden_digest = [&](const core::SimConfig& config) {
    core::SimConfig golden = config;
    golden.fault.enable = false;
    std::string key;
    const simfw::ConfigMap golden_map = core::config_to_map(golden);
    for (const auto& [k, v] : golden_map.values()) {
      key += k;
      key += '=';
      key += v;
      key += '\n';
    }
    const std::lock_guard<std::mutex> lock(golden_mutex);
    const auto it = golden_cache.find(key);
    if (it != golden_cache.end()) return it->second;
    auto sim = build_point(golden);
    const std::uint64_t digest = fault::run_golden(*sim, max_cycles);
    golden_cache.emplace(key, digest);
    return digest;
  };

  const auto runner = [&](const core::SimConfig& config, PointResult& point) {
    const std::string stem =
        resume_dir.empty()
            ? std::string()
            : resume_dir + "/point" + std::to_string(point.index);
    if (!resume_dir.empty()) {
      // Completed on a previous run: reuse the recorded result verbatim.
      if (auto done = try_load_done(stem + ".done", point.config, point)) {
        return *done;
      }
    }

    // ----- resilience campaign point ------------------------------------
    // Golden leg once per unique fault-free config, then the injected leg,
    // classified masked/sdc/due. A DUE (trap, hang, cycle-budget blow-out)
    // is a *measured outcome*, not a point failure — the point reports ok
    // with its class attached.
    if (config.fault.enable) {
      const std::uint64_t digest = golden_digest(config);
      auto sim = build_point(config);
      const fault::FaultPlan plan = fault::FaultPlan::generate(config);
      const fault::InjectionResult injected =
          fault::run_injected(*sim, plan, max_cycles, digest);
      point.fault_outcome = fault::outcome_name(injected.outcome);
      point.fault_detail = injected.detail;
      core::RunResult result = injected.run;
      if (injected.outcome != fault::Outcome::kDue) {
        result.cycles = sim->scheduler().now();
        result.instructions = sim->root()
                                  .find("orchestrator")
                                  ->stats()
                                  .find_counter("instructions")
                                  .get();
        if (collect) collect(*sim, point);
      }
      if (!resume_dir.empty()) {
        write_done_record(stem + ".done", point, result);
      }
      return result;
    }

    // The resume key names the workload (kernel/size/seed, or the ELF path
    // plus its content hash), so a checkpoint from a different campaign —
    // or from a rebuilt binary — in the same directory never resumes into
    // this point. Per point, because workload.* keys are sweepable.
    const std::string resume_label = loader::resume_label(config);
    std::unique_ptr<core::Simulator> sim;
    if (!resume_dir.empty()) {
      sim = try_restore_point(stem + ".ckpt", resume_label, point.config);
    }
    if (sim == nullptr) sim = build_point(config);

    // Wall-clock budget for this attempt: exponential backoff doubles it
    // on every retry, so a point that was merely unlucky (loaded host, cold
    // caches) gets progressively more headroom before being written off.
    const auto wall_start = std::chrono::steady_clock::now();
    const double budget_s =
        options_.point_timeout_s > 0.0
            ? options_.point_timeout_s *
                  static_cast<double>(
                      1u << std::min<std::uint32_t>(point.attempts - 1, 20))
            : 0.0;

    // Run in checkpoint-interval slices (one slice = the whole budget when
    // checkpointing is off). Quiesce stops do not perturb the simulation,
    // so the sliced run is bit-identical to an uninterrupted one. An armed
    // timeout additionally caps every leg at kTimeoutProbeCycles so the
    // wall clock is probed promptly.
    const bool ckpt_slicing = !resume_dir.empty() && interval != 0;
    core::RunResult result;
    while (true) {
      const Cycle elapsed = sim->scheduler().now();
      const Cycle remaining =
          max_cycles == ~Cycle{0}
              ? ~Cycle{0}
              : (elapsed < max_cycles ? max_cycles - elapsed : 0);
      const Cycle leg_cap =
          budget_s > 0.0
              ? std::min(remaining,
                         std::max<Cycle>(options_.timeout_probe_cycles, 1))
              : remaining;
      if (ckpt_slicing) {
        result = sim->run_to_quiesce(std::min(interval, leg_cap), leg_cap);
        if (result.quiesced && !result.all_exited) {
          write_point_checkpoint(*sim, resume_label, stem + ".ckpt");
        }
      } else if (budget_s > 0.0) {
        result = sim->run(leg_cap);
      } else {
        result = sim->run(remaining);
        break;
      }
      if (result.all_exited) break;
      if (max_cycles != ~Cycle{0} && sim->scheduler().now() >= max_cycles) {
        result.hit_cycle_limit = true;
        break;
      }
      if (budget_s > 0.0) {
        const double spent = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
        if (spent > budget_s) {
          point.status = "timeout";
          throw SimError(strfmt(
              "point exceeded its wall-clock budget (%.3fs > %.3fs, "
              "attempt %u)",
              spent, budget_s, point.attempts));
        }
      }
    }
    if (!result.all_exited) {
      throw SimError(result.hit_cycle_limit
                         ? "point hit the cycle budget before completion"
                         : "point stalled before completion");
    }
    // Totals from the authoritative machine state rather than the last run
    // leg, so a resumed point reports the same numbers as a fresh one.
    result.cycles = sim->scheduler().now();
    result.instructions = sim->root()
                              .find("orchestrator")
                              ->stats()
                              .find_counter("instructions")
                              .get();
    if (collect) collect(*sim, point);
    if (!resume_dir.empty()) {
      write_done_record(stem + ".done", point, result);
      std::error_code ignored;
      std::filesystem::remove(stem + ".ckpt", ignored);
    }
    return result;
  };
  return run(effective.expand(), runner, spec.kernel);
}

}  // namespace coyote::sweep
