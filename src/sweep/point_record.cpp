#include "sweep/point_record.h"

#include <cstring>

namespace coyote::sweep {

void write_point_record(BinWriter& w, const PointResult& point) {
  w.u64(point.config.values().size());
  for (const auto& [key, value] : point.config.values()) {
    w.str(key);
    w.str(value);
  }
  w.b(point.ok);
  w.u32(point.attempts);
  w.str(point.error);
  w.str(point.status);
  w.str(point.fault_outcome);
  w.str(point.fault_detail);
  w.u64(point.run.cycles);
  w.u64(point.run.instructions);
  w.b(point.run.all_exited);
  w.b(point.run.hit_cycle_limit);
  w.u64(point.run.exit_codes.size());
  for (std::int64_t code : point.run.exit_codes) w.i64(code);
  w.u64(point.metrics.size());
  for (const auto& [name, value] : point.metrics) {
    w.str(name);
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    w.u64(bits);
  }
}

void read_point_record(BinReader& r, PointResult& point) {
  simfw::ConfigMap config;
  const std::uint64_t num_keys = r.count(1 << 20);
  for (std::uint64_t i = 0; i < num_keys; ++i) {
    const std::string key = r.str();
    config.set(key, r.str());
  }
  point.config = std::move(config);
  point.ok = r.b();
  point.attempts = r.u32();
  point.error = r.str();
  point.status = r.str();
  point.fault_outcome = r.str();
  point.fault_detail = r.str();
  point.run = core::RunResult{};
  point.run.cycles = r.u64();
  point.run.instructions = r.u64();
  point.run.all_exited = r.b();
  point.run.hit_cycle_limit = r.b();
  const std::uint64_t num_codes = r.count(1 << 20);
  point.run.exit_codes.clear();
  point.run.exit_codes.reserve(num_codes);
  for (std::uint64_t i = 0; i < num_codes; ++i) {
    point.run.exit_codes.push_back(r.i64());
  }
  point.metrics.clear();
  const std::uint64_t num_metrics = r.count(1 << 20);
  for (std::uint64_t i = 0; i < num_metrics; ++i) {
    const std::string name = r.str();
    const std::uint64_t bits = r.u64();
    double value;
    std::memcpy(&value, &bits, sizeof value);
    point.metrics.emplace_back(name, value);
  }
}

}  // namespace coyote::sweep
