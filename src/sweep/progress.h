// Shared campaign progress sink. The sweep engine's worker threads and the
// campaign broker's event loop both report per-point completions here
// instead of hand-rolling stderr writes, so every front end offers the
// same three surfaces (--progress=line|json|none):
//
//   line  the classic single overwriting "\r[sweep] done/total" ticker
//   json  one machine-readable event object per line (long campaigns are
//         monitored by tools, not eyeballs)
//   none  silence
//
// Thread-safe: completions arrive from any engine worker thread; each call
// emits at most one whole line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace coyote::sweep {

struct PointResult;

enum class ProgressMode { kNone, kLine, kJson };

/// Parses "none" / "line" / "json"; throws ConfigError otherwise.
ProgressMode progress_mode_from_string(const std::string& text);

class ProgressSink {
 public:
  /// `total` is the campaign's point count; `out` defaults to stderr and is
  /// overridable so tests can capture the stream.
  ProgressSink(ProgressMode mode, std::size_t total, std::FILE* out = nullptr);

  /// Records one finished point. `source` names who produced the result —
  /// "run" (executed here), "memo", "resume", or a worker id — and is
  /// emitted in json mode so campaign logs attribute every completion.
  void point_done(const PointResult& point, const std::string& source);

  /// Free-form campaign lifecycle line (worker joined, lease expired, ...).
  /// Rendered as "[campaign] text" in line mode, a {"event": "note"} object
  /// in json mode, nothing in none mode.
  void note(const std::string& text);

  /// Mid-point status stream (the broker forwards workers' PROGRESS
  /// frames here). Emitted in json mode only — the line ticker shows
  /// completions, not partial work.
  void point_progress(std::size_t index, const std::string& phase,
                      std::uint64_t value, const std::string& source);

  std::size_t done() const;
  std::size_t failed() const;

 private:
  const ProgressMode mode_;
  const std::size_t total_;
  std::FILE* const out_;
  mutable std::mutex mutex_;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace coyote::sweep
