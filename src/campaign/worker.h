// A campaign worker: connects to a broker, leases points, executes each
// through the shared PointExecutor (the sweep engine's own per-point seam,
// so rows it produces are byte-identical to in-process ones), heartbeats
// while a point runs, and ships the result record back. Workers hold no
// campaign state — kill one at any moment and the broker reassigns its
// point; start another and it just asks for work.
//
// Losing the broker is not fatal: on EOF, reset, read deadline, or a
// SHUTDOWN{kDraining} frame the worker re-dials with seeded, jittered
// exponential backoff for a bounded reconnect window, re-HELLOs, and
// resumes — a broker restarted from the same --state-dir picks the fleet
// back up transparently. Only SHUTDOWN{kCampaignComplete} (or a typed
// ERROR naming an unrecoverable offence: protocol mismatch, quarantine)
// ends a worker for good.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "sweep/point_runner.h"

namespace coyote::campaign {

class Worker {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Display name sent in HELLO; defaults to "pid<pid>".
    std::string name;
    /// Parallel broker connections, each executing one point at a time
    /// (the process-level analogue of SweepEngine jobs).
    unsigned jobs = 1;
    /// How long to keep re-dialing after the broker is lost (connect
    /// refused, EOF/reset, read deadline, SHUTDOWN{kDraining}). The window
    /// restarts at each successful WELCOME, so a flaky link gets the full
    /// window every time it drops. 0 = give up on first loss.
    std::chrono::milliseconds reconnect_window{30'000};
    /// Exponential backoff between re-dials: delay n is
    /// min(backoff_base * 2^n, backoff_max) scaled by a jitter factor in
    /// [0.5, 1.0) drawn from a Xoshiro256 stream seeded with backoff_seed
    /// (mixed with the slot id) — deterministic under test, thundering-herd
    /// safe in production.
    std::chrono::milliseconds backoff_base{100};
    std::chrono::milliseconds backoff_max{2'000};
    std::uint64_t backoff_seed = 0;
    /// How long to wait for WELCOME after sending HELLO before treating
    /// the connection as dead.
    std::chrono::milliseconds handshake_timeout{10'000};
    /// Test hook: called with the point index just before its RESULT would
    /// be sent; returning true hard-closes the connection instead — a
    /// simulated worker crash at the worst possible moment.
    std::function<bool(std::size_t index)> crash_before_result;
  };

  explicit Worker(Options options);

  /// Serves the broker until SHUTDOWN{kCampaignComplete} or until the
  /// reconnect window closes without reaching it. Returns the number of
  /// points executed locally: 0 on a memo-warm campaign where the broker
  /// resolved everything itself. Throws SimError when the broker stays
  /// unreachable past the window or names this worker unrecoverable
  /// (protocol mismatch, quarantined).
  std::size_t run();

 private:
  /// Why one broker session (dial → HELLO → serve) ended.
  struct SessionOutcome {
    enum class Kind {
      kComplete,  ///< SHUTDOWN{kCampaignComplete} (or simulated crash hook)
      kLost,      ///< broker gone/draining/silent — reconnect may succeed
      kFatal,     ///< typed refusal (mismatch, quarantine) — do not retry
    };
    Kind kind = Kind::kLost;
    bool welcomed = false;  ///< handshake completed (resets the window)
    std::string detail;
  };

  std::size_t run_connection(unsigned slot);
  SessionOutcome run_session(unsigned slot, std::size_t& executed);
  sweep::PointExecutor& executor(std::uint64_t max_cycles,
                                 std::uint32_t max_attempts);

  Options options_;
  /// One executor for every connection so fault campaigns share the
  /// golden-run digest cache across this process's slots (it is
  /// thread-safe); built from the first WELCOME, which every connection
  /// receives identically.
  std::mutex executor_mutex_;
  std::unique_ptr<sweep::PointExecutor> executor_;
};

}  // namespace coyote::campaign
