// A campaign worker: connects to a broker, leases points, executes each
// through the shared PointExecutor (the sweep engine's own per-point seam,
// so rows it produces are byte-identical to in-process ones), heartbeats
// while a point runs, and ships the result record back. Workers hold no
// campaign state — kill one at any moment and the broker reassigns its
// point; start another and it just asks for work.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "sweep/point_runner.h"

namespace coyote::campaign {

class Worker {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Display name sent in HELLO; defaults to "pid<pid>".
    std::string name;
    /// Parallel broker connections, each executing one point at a time
    /// (the process-level analogue of SweepEngine jobs).
    unsigned jobs = 1;
    /// Test hook: called with the point index just before its RESULT would
    /// be sent; returning true hard-closes the connection instead — a
    /// simulated worker crash at the worst possible moment.
    std::function<bool(std::size_t index)> crash_before_result;
  };

  explicit Worker(Options options);

  /// Serves the broker until it answers NO_WORK or goes away (EOF — the
  /// campaign ended). Returns the number of points executed locally: 0 on
  /// a memo-warm campaign where the broker resolved everything itself.
  /// Throws SimError on connect failure or a protocol violation.
  std::size_t run();

 private:
  std::size_t run_connection(unsigned slot);
  sweep::PointExecutor& executor(std::uint64_t max_cycles,
                                 std::uint32_t max_attempts);

  Options options_;
  /// One executor for every connection so fault campaigns share the
  /// golden-run digest cache across this process's slots (it is
  /// thread-safe); built from the first WELCOME, which every connection
  /// receives identically.
  std::mutex executor_mutex_;
  std::unique_ptr<sweep::PointExecutor> executor_;
};

}  // namespace coyote::campaign
